#!/usr/bin/env python3
"""Fast documentation consistency check, runnable without a build.

Mirrors tests/docs_consistency_test.cc so CI can fail doc drift in seconds
(the gtest still runs in tier-1 for local `ctest` coverage):

  1. relative markdown links in README.md, ROADMAP.md, and docs/ resolve;
  2. every BENCH_*.json named by README/docs exists under bench/;
  3. the README quotes the ROADMAP's tier-1 verify line verbatim;
  4. no user-facing doc hard-codes an "N tests pass" claim.

Exit 0 when clean, 1 with one line per violation otherwise.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\]\(([^)]+)\)")
BENCH_RE = re.compile(r"BENCH_[A-Za-z0-9_]+\.json")
VERIFY_RE = re.compile(r"\*\*Tier-1 verify:\*\* `([^`]+)`")
STALE_COUNT_RE = re.compile(r"\b[0-9]+\+?\s+tests\s+pass", re.IGNORECASE)


def user_docs():
    docs = [ROOT / "README.md"]
    docs += sorted((ROOT / "docs").glob("*.md"))
    return docs


def main():
    errors = []

    # 1. Relative links resolve (anchors and absolute URLs out of scope).
    for doc in user_docs() + [ROOT / "ROADMAP.md"]:
        text = doc.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if not target or target.startswith("#") or "://" in target:
                continue
            target = target.split("#", 1)[0]
            if not (doc.parent / target).exists():
                errors.append(f"{doc.relative_to(ROOT)}: broken link -> {target}")

    # 2. Named bench baselines are committed (ROADMAP exempt: future benches).
    named = set()
    for doc in user_docs():
        named.update(BENCH_RE.findall(doc.read_text(encoding="utf-8")))
    if len(named) < 6:
        errors.append(f"only {len(named)} BENCH_*.json named in README/docs; "
                      "the six gated baselines should all be documented")
    for name in sorted(named):
        if not (ROOT / "bench" / name).exists():
            errors.append(f"{name} referenced in README/docs but missing from bench/")

    # 3. README carries the ROADMAP tier-1 verify line verbatim.
    roadmap = (ROOT / "ROADMAP.md").read_text(encoding="utf-8")
    m = VERIFY_RE.search(roadmap)
    if not m:
        errors.append("ROADMAP.md lost its '**Tier-1 verify:** `...`' line")
    elif m.group(1) not in (ROOT / "README.md").read_text(encoding="utf-8"):
        errors.append("README.md diverged from the ROADMAP tier-1 verify line: "
                      + m.group(1))

    # 4. No hard-coded test counts — they go stale every PR.
    for doc in user_docs() + [ROOT / "ROADMAP.md"]:
        stale = STALE_COUNT_RE.search(doc.read_text(encoding="utf-8"))
        if stale:
            errors.append(f"{doc.relative_to(ROOT)}: hard-coded test count "
                          f'"{stale.group(0)}" — phrase it without the number')

    for err in errors:
        print(f"docs-check: {err}", file=sys.stderr)
    if not errors:
        print(f"docs-check: OK ({len(user_docs())} docs, "
              f"{len(named)} bench baselines verified)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
