// data/: Table invariants, row access, slicing, CSV round-trip.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/csv_table.h"
#include "data/table.h"

namespace uae::data {
namespace {

Table MakeTable() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts("a", {1, 2, 3, 1}));
  cols.push_back(Column::FromInts("b", {10, 10, 30, 40}));
  return Table("t", std::move(cols));
}

TEST(TableTest, Basics) {
  Table t = MakeTable();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_cols(), 2);
  EXPECT_EQ(t.ColumnIndex("b"), 1);
  EXPECT_EQ(t.ColumnIndex("zzz"), -1);
  EXPECT_EQ(t.RowCodes(2), (std::vector<int32_t>{2, 1}));
  EXPECT_EQ(t.LargestDomainColumn(), 0);  // Domain 3 vs 3... a={1,2,3}:3, b={10,30,40}:3.
}

TEST(TableTest, AppendRow) {
  Table t = MakeTable();
  ASSERT_TRUE(t.AppendRowCodes({0, 2}).ok());
  EXPECT_EQ(t.num_rows(), 5u);
  EXPECT_EQ(t.column(0).code_at(4), 0);
}

TEST(TableTest, Slice) {
  Table t = MakeTable();
  Table s = t.Slice(1, 3, "slice");
  EXPECT_EQ(s.num_rows(), 2u);
  // Slices keep the parent's domain so codes remain comparable.
  EXPECT_EQ(s.column(0).domain(), t.column(0).domain());
  EXPECT_EQ(s.column(0).code_at(0), t.column(0).code_at(1));
}

TEST(CsvTableTest, RoundTrip) {
  Table t = MakeTable();
  std::string path = "/tmp/uae_table_test.csv";
  ASSERT_TRUE(WriteTableCsv(t, path).ok());
  auto loaded = ReadTableCsv(path, "t2");
  ASSERT_TRUE(loaded.ok());
  const Table& t2 = loaded.value();
  ASSERT_EQ(t2.num_rows(), t.num_rows());
  ASSERT_EQ(t2.num_cols(), t.num_cols());
  for (size_t r = 0; r < t.num_rows(); ++r) {
    for (int c = 0; c < t.num_cols(); ++c) {
      EXPECT_EQ(t2.column(c).ValueForCode(t2.column(c).code_at(r)).AsInt(),
                t.column(c).ValueForCode(t.column(c).code_at(r)).AsInt());
    }
  }
  std::filesystem::remove(path);
}

TEST(CsvTableTest, RaggedCsvRejected) {
  std::string path = "/tmp/uae_table_ragged.csv";
  {
    std::ofstream out(path);
    out << "a,b\n1,2\n3\n";  // Second row is short.
  }
  EXPECT_FALSE(ReadTableCsv(path, "bad").ok());
  std::filesystem::remove(path);
}

TEST(CsvTableTest, MissingFileIsIoError) {
  auto r = ReadTableCsv("/tmp/definitely_not_here_uae.csv", "x");
  EXPECT_FALSE(r.ok());
}

TEST(CsvTableTest, StringColumnsSurvive) {
  std::vector<Column> cols;
  cols.push_back(Column::FromValues(
      "name", {Value(std::string("bob")), Value(std::string("alice"))}));
  cols.push_back(Column::FromInts("age", {30, 25}));
  Table t("people", std::move(cols));
  std::string path = "/tmp/uae_table_str_test.csv";
  ASSERT_TRUE(WriteTableCsv(t, path).ok());
  auto loaded = ReadTableCsv(path, "p");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().column(0).ValueForCode(
                loaded.value().column(0).code_at(0)).AsString(),
            "bob");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace uae::data
