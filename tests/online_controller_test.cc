// online/controller: trigger plumbing (drift / stale-signal / cooldown /
// feedback floor), the max-concurrent-finetune=1 rail, and — the load-bearing
// guarantee — the regression guard provably refusing a worse candidate.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/uae.h"
#include "data/synthetic.h"
#include "online/controller.h"
#include "serve/service.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace uae::online {
namespace {

core::UaeConfig SmallConfig(uint64_t seed = 23) {
  core::UaeConfig cfg;
  cfg.hidden = 32;
  cfg.ps_samples = 64;
  cfg.seed = seed;
  return cfg;
}

/// Labeled easy queries (1-3 filters) over `table`.
workload::Workload LabeledQueries(const data::Table& table, size_t count,
                                  uint64_t seed) {
  workload::GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 3;
  workload::QueryGenerator gen(table, gc, seed);
  return gen.GenerateLabeled(count, nullptr);
}

struct Fixture {
  data::Table table;
  std::shared_ptr<core::Uae> trained;  ///< The healthy incumbent.

  Fixture() : table(data::TinyCorrelated(1000, 3)) {
    trained = std::make_shared<core::Uae>(table, SmallConfig());
    trained->TrainDataEpochs(3);
  }
};

Fixture& Shared() {
  static Fixture* f = new Fixture();
  return *f;
}

// ---- Regression guard ------------------------------------------------------

TEST(RegressionGuardTest, RefusesProvablyWorseCandidate) {
  Fixture& f = Shared();
  // Label the holdout with the incumbent's own estimates: its median q-error
  // is then exactly 1.0 — the attainable minimum — so ANY candidate whose
  // estimates differ is provably worse and must be refused. Queries with
  // estimates comfortably above the q-error floor of 1 row keep a diverging
  // candidate from being floored into a tie.
  workload::Workload holdout;
  for (auto& lq : LabeledQueries(f.table, 48, 7)) {
    double est = f.trained->EstimateCard(lq.query);
    if (est < 4.0) continue;
    lq.card = est;
    holdout.push_back(lq);
  }
  ASSERT_GE(holdout.size(), 8u);
  core::Uae different(f.table, SmallConfig(/*seed=*/99));  // Never trained.
  GuardVerdict verdict =
      EvaluateCandidate(*f.trained, different, holdout, /*guard_max_ratio=*/1.0);
  EXPECT_FALSE(verdict.accept);
  EXPECT_DOUBLE_EQ(verdict.incumbent_median, 1.0);
  EXPECT_GT(verdict.candidate_median, 1.0);
}

TEST(RegressionGuardTest, AcceptsEqualCandidateAndClones) {
  Fixture& f = Shared();
  workload::Workload holdout = LabeledQueries(f.table, 16, 9);
  // A model is never worse than itself ...
  GuardVerdict self = EvaluateCandidate(*f.trained, *f.trained, holdout, 1.0);
  EXPECT_TRUE(self.accept);
  EXPECT_DOUBLE_EQ(self.candidate_median, self.incumbent_median);
  // ... and a Clone() is bit-identical at clone time (PR 3), so it ties.
  std::unique_ptr<core::Uae> clone = f.trained->Clone();
  GuardVerdict cloned = EvaluateCandidate(*f.trained, *clone, holdout, 1.0);
  EXPECT_TRUE(cloned.accept);
  EXPECT_DOUBLE_EQ(cloned.candidate_median, cloned.incumbent_median);
}

TEST(RegressionGuardTest, EmptyHoldoutRejects) {
  Fixture& f = Shared();
  GuardVerdict verdict = EvaluateCandidate(*f.trained, *f.trained, {}, 1.0);
  EXPECT_FALSE(verdict.accept);  // Nothing proven => no swap.
}

// ---- Controller paths ------------------------------------------------------

/// Routes `count` labeled queries through the service as feedback, with the
/// true cardinality scaled by `truth_scale` (1.0 = honest labels; big values
/// fake a drifted/degraded stream).
void Feed(serve::EstimationService& service, AdaptationController& controller,
          const workload::Workload& queries, double truth_scale = 1.0) {
  for (const auto& lq : queries) {
    serve::ServeResult res = service.Estimate(lq.query);
    // truth_scale=1 reports the honest label; larger scales inflate the truth
    // (with a floor, so zero-card queries still register a big q-error).
    controller.OnFeedback(lq.query, res,
                          lq.card * truth_scale + (truth_scale - 1.0));
  }
}

AdaptationConfig FastConfig() {
  AdaptationConfig cfg;
  cfg.finetune_steps = 4;
  cfg.min_feedback = 8;
  cfg.holdout_fraction = 0.25;
  cfg.guard_max_ratio = 100.0;  // Accept-friendly; guard tested separately.
  return cfg;
}

TEST(AdaptationControllerTest, SkipsWithoutDriftOrFeedback) {
  Fixture& f = Shared();
  serve::EstimationService service(f.trained);
  FeedbackCollector collector;
  DriftMonitor monitor({.window = 64, .min_samples = 8, .median_threshold = 3.0});
  AdaptationController controller(&service, &collector, &monitor, FastConfig());

  EXPECT_EQ(controller.AdaptIfDrifted().outcome, AdaptOutcome::kSkippedNoDrift);
  EXPECT_EQ(controller.AdaptNow().outcome, AdaptOutcome::kSkippedNoFeedback);
  EXPECT_EQ(service.CurrentGeneration(), 1u);
  EXPECT_EQ(controller.Stats().skipped, 2u);
  EXPECT_EQ(controller.Stats().attempts, 0u);
}

TEST(AdaptationControllerTest, DriftTriggersPublish) {
  Fixture& f = Shared();
  serve::EstimationService service(f.trained);
  FeedbackCollector collector;
  DriftMonitor monitor({.window = 64, .min_samples = 8, .median_threshold = 3.0});
  AdaptationController controller(&service, &collector, &monitor, FastConfig());

  // Mislabeled truth (x20) makes the served estimates look terrible.
  Feed(service, controller, LabeledQueries(f.table, 16, 11), /*truth_scale=*/20.0);
  ASSERT_TRUE(monitor.Check().fired);

  AdaptationResult result = controller.AdaptIfDrifted();
  EXPECT_EQ(result.outcome, AdaptOutcome::kPublished);
  EXPECT_EQ(result.generation, 2u);
  EXPECT_EQ(service.CurrentGeneration(), 2u);
  EXPECT_GT(result.train_size, 0u);
  EXPECT_GT(result.holdout_size, 0u);
  EXPECT_EQ(controller.Stats().published, 1u);
  EXPECT_EQ(controller.Stats().last_published_generation, 2u);
  // Drain-on-adapt consumed the buffer.
  EXPECT_EQ(collector.Size(), 0u);
}

TEST(AdaptationControllerTest, GuardRefusalKeepsIncumbentServing) {
  Fixture& f = Shared();
  serve::EstimationService service(f.trained);
  FeedbackCollector collector;
  DriftMonitor monitor({.window = 64, .min_samples = 8, .median_threshold = 3.0});
  AdaptationConfig cfg = FastConfig();
  // q-errors are >= 1, so requiring candidate_median <= incumbent_median * 0
  // makes every candidate provably unacceptable: the controller must refuse
  // to publish no matter what fine-tuning produced.
  cfg.guard_max_ratio = 0.0;
  AdaptationController controller(&service, &collector, &monitor, cfg);

  Feed(service, controller, LabeledQueries(f.table, 16, 13), /*truth_scale=*/20.0);
  AdaptationResult result = controller.AdaptIfDrifted();
  EXPECT_EQ(result.outcome, AdaptOutcome::kRejectedByGuard);
  EXPECT_EQ(service.CurrentGeneration(), 1u);  // Incumbent survives.
  EXPECT_EQ(controller.Stats().rejected, 1u);
  EXPECT_EQ(controller.Stats().published, 0u);
  // The expensively-labeled feedback is re-inserted, not discarded: the next
  // attempt does not start from an empty buffer.
  EXPECT_EQ(collector.Size(), 16u);
}

TEST(AdaptationControllerTest, StaleDriftSignalIsIgnored) {
  Fixture& f = Shared();
  serve::EstimationService service(f.trained);
  FeedbackCollector collector;
  DriftMonitor monitor({.window = 64, .min_samples = 8, .median_threshold = 3.0});
  AdaptationController controller(&service, &collector, &monitor, FastConfig());

  Feed(service, controller, LabeledQueries(f.table, 16, 17), /*truth_scale=*/20.0);
  ASSERT_TRUE(monitor.Check().fired);
  // Someone else already swapped the model: the drift report describes the
  // dethroned generation and must not trigger a fine-tune.
  service.PublishSnapshot(f.trained);
  EXPECT_EQ(controller.AdaptIfDrifted().outcome, AdaptOutcome::kSkippedStaleSignal);
  EXPECT_EQ(controller.Stats().attempts, 0u);
}

TEST(AdaptationControllerTest, CooldownBlocksBackToBackAdaptations) {
  Fixture& f = Shared();
  serve::EstimationService service(f.trained);
  FeedbackCollector collector;
  DriftMonitor monitor({.window = 64, .min_samples = 8, .median_threshold = 3.0});
  AdaptationConfig cfg = FastConfig();
  cfg.cooldown_observations = 1000;
  AdaptationController controller(&service, &collector, &monitor, cfg);

  Feed(service, controller, LabeledQueries(f.table, 16, 19), /*truth_scale=*/20.0);
  ASSERT_EQ(controller.AdaptIfDrifted().outcome, AdaptOutcome::kPublished);

  // The new generation degrades immediately too — but fewer than
  // cooldown_observations have arrived since the attempt.
  Feed(service, controller, LabeledQueries(f.table, 16, 21), /*truth_scale=*/20.0);
  ASSERT_TRUE(monitor.Check().fired);
  EXPECT_EQ(controller.AdaptIfDrifted().outcome, AdaptOutcome::kSkippedCooldown);
  EXPECT_EQ(controller.Stats().published, 1u);
}

TEST(AdaptationControllerTest, SecondAdaptationSkipsWhileOneIsInFlight) {
  Fixture& f = Shared();
  serve::EstimationService service(f.trained);
  FeedbackCollector collector({.capacity = 4096});
  DriftMonitor monitor({.window = 64, .min_samples = 8, .median_threshold = 3.0});
  AdaptationConfig cfg = FastConfig();
  cfg.drain_on_adapt = false;  // Keep feedback so both attempts pass the floor.
  // Deterministic handshake (1-core safe): the first adaptation parks inside
  // the lock-held hook until the second one has bounced off the try-lock.
  std::promise<void> in_flight;
  std::promise<void> release;
  cfg.finetune_hook = [&] {
    in_flight.set_value();
    release.get_future().wait();
  };
  AdaptationController controller(&service, &collector, &monitor, cfg);

  Feed(service, controller, LabeledQueries(f.table, 16, 25), /*truth_scale=*/20.0);
  std::thread first([&] {
    EXPECT_EQ(controller.AdaptNow().outcome, AdaptOutcome::kPublished);
  });
  in_flight.get_future().wait();  // First attempt holds the adaptation lock.
  EXPECT_EQ(controller.AdaptNow().outcome, AdaptOutcome::kSkippedBusy);
  release.set_value();
  first.join();
  EXPECT_EQ(controller.Stats().published, 1u);
  EXPECT_EQ(controller.Stats().attempts, 1u);
}

TEST(AdaptationControllerTest, HybridFinetuneModePublishes) {
  Fixture& f = Shared();
  serve::EstimationService service(f.trained);
  FeedbackCollector collector;
  DriftMonitor monitor({.window = 64, .min_samples = 8, .median_threshold = 3.0});
  AdaptationConfig cfg = FastConfig();
  cfg.hybrid_epochs = 1;  // Alg. 3 (data + query) instead of pure UAE-Q.
  AdaptationController controller(&service, &collector, &monitor, cfg);

  Feed(service, controller, LabeledQueries(f.table, 16, 27), /*truth_scale=*/20.0);
  AdaptationResult result = controller.AdaptIfDrifted();
  EXPECT_EQ(result.outcome, AdaptOutcome::kPublished);
  EXPECT_EQ(service.CurrentGeneration(), 2u);
}

TEST(AdaptationControllerTest, OnFeedbackRoutesToCollectorAndMonitor) {
  Fixture& f = Shared();
  serve::EstimationService service(f.trained);
  FeedbackCollector collector;
  DriftMonitor monitor({.window = 64, .min_samples = 2, .median_threshold = 3.0});
  AdaptationController controller(&service, &collector, &monitor, FastConfig());

  workload::Query q(f.table.num_cols());
  q.AddPredicate({0, workload::Op::kLe, 2, {}}, f.table.column(0).domain());
  serve::ServeResult res = service.Estimate(q);
  controller.OnFeedback(q, res, /*true_card=*/res.card * 8.0 + 1.0);
  EXPECT_EQ(collector.Size(), 1u);
  EXPECT_EQ(monitor.TotalObserved(), 1u);
  EXPECT_GT(monitor.SummaryForGeneration(res.generation).median, 3.0);
  std::vector<FeedbackEntry> entries = collector.Snapshot();
  EXPECT_DOUBLE_EQ(entries[0].estimated_card, res.card);
  EXPECT_EQ(entries[0].generation, res.generation);
}

}  // namespace
}  // namespace uae::online
