// workload/: the exact executor against a naive row-by-row reference, plus
// weighted counts and bitmaps.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace uae::workload {
namespace {

int64_t NaiveCount(const data::Table& t, const Query& q) {
  int64_t n = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) n += q.MatchesRow(t, r) ? 1 : 0;
  return n;
}

TEST(ExecutorTest, MatchesNaiveOnRandomQueries) {
  data::Table t = data::SyntheticDmv(3000, 1);
  GeneratorConfig gc;
  QueryGenerator gen(t, gc, 5);
  for (int i = 0; i < 50; ++i) {
    Query q = gen.Generate();
    EXPECT_EQ(ExecuteCount(t, q), NaiveCount(t, q)) << "query " << i;
  }
}

TEST(ExecutorTest, UnconstrainedCountsAllRows) {
  data::Table t = data::TinyCorrelated(123, 2);
  Query q(t.num_cols());
  EXPECT_EQ(ExecuteCount(t, q), 123);
}

TEST(ExecutorTest, InAndNeqConstraints) {
  data::Table t = data::TinyCorrelated(2000, 3);
  Query q(t.num_cols());
  q.AddPredicate({0, Op::kIn, 0, {0, 2, 5}}, t.column(0).domain());
  q.AddPredicate({1, Op::kNeq, 1, {}}, t.column(1).domain());
  EXPECT_EQ(ExecuteCount(t, q), NaiveCount(t, q));
}

// The chunk-parallel scan must be *exactly* equal to the single-threaded
// reference — integer counts commute, so any chunking/thread count yields the
// identical result. This is the labeling hot path of the feedback loop.
TEST(ExecutorTest, ParallelScanEqualsSequentialReference) {
  data::Table t = data::SyntheticDmv(20000, 7);  // Big enough to chunk.
  GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 4;
  QueryGenerator gen(t, gc, 13);
  for (int i = 0; i < 30; ++i) {
    Query q = gen.Generate();
    EXPECT_EQ(ExecuteCount(t, q), ExecuteCountSequential(t, q)) << "query " << i;
  }
  // Unconstrained + IN/!= kinds go through the same kernel.
  Query all(t.num_cols());
  EXPECT_EQ(ExecuteCountSequential(t, all), static_cast<int64_t>(t.num_rows()));
  Query mixed(t.num_cols());
  mixed.AddPredicate({0, Op::kIn, 0, {1, 3, 9}}, t.column(0).domain());
  mixed.AddPredicate({2, Op::kNeq, 2, {}}, t.column(2).domain());
  EXPECT_EQ(ExecuteCount(t, mixed), ExecuteCountSequential(t, mixed));
}

TEST(ExecutorTest, BatchedCountsMatchPerQueryExecution) {
  data::Table t = data::SyntheticDmv(4000, 9);
  GeneratorConfig gc;
  gc.min_filters = 1;
  QueryGenerator gen(t, gc, 17);
  std::vector<Query> queries;
  for (int i = 0; i < 40; ++i) queries.push_back(gen.Generate());
  std::vector<int64_t> batched = ExecuteCounts(t, queries);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i], ExecuteCount(t, queries[i])) << "query " << i;
  }
  EXPECT_TRUE(ExecuteCounts(t, {}).empty());
}

TEST(ExecutorTest, WeightedCount) {
  // Two rows with fanout codes {0 -> weight 1, 3 -> weight 1/4}.
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", {0, 0, 1}, 2));
  cols.push_back(data::Column::FromCodes("f", {0, 3, 1}, 4));
  data::Table t("t", std::move(cols));
  Query q(2);
  q.AddPredicate({0, Op::kEq, 0, {}}, 2);
  double w = ExecuteWeightedCount(t, q, {1});
  EXPECT_NEAR(w, 1.0 + 0.25, 1e-12);
  // Two weight columns multiply.
  double w2 = ExecuteWeightedCount(t, q, {1, 1});
  EXPECT_NEAR(w2, 1.0 + 0.0625, 1e-12);
}

TEST(ExecutorTest, MatchBitmap) {
  data::Table t = data::TinyCorrelated(100, 4);
  Query q(t.num_cols());
  q.AddPredicate({0, Op::kLe, 2, {}}, t.column(0).domain());
  auto bits = MatchBitmap(t, q, 50);
  ASSERT_EQ(bits.size(), 50u);
  for (size_t r = 0; r < bits.size(); ++r) {
    EXPECT_EQ(bits[r] != 0, q.MatchesRow(t, r));
  }
}

}  // namespace
}  // namespace uae::workload
