// nn/: optimizers converge on a convex problem; gradient clipping bounds the
// global norm.
#include <cmath>

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "nn/ops.h"

namespace uae::nn {
namespace {

// Minimize ||x - target||^2 from a fixed start.
template <typename Opt>
double RunQuadratic(Opt& opt, const Tensor& x, const Mat& target, int steps) {
  double loss_val = 0;
  for (int s = 0; s < steps; ++s) {
    Tensor loss = MseLoss(x, target);
    loss_val = loss->value().at(0, 0);
    Backward(loss);
    opt.Step();
    opt.ZeroGrad();
  }
  return loss_val;
}

TEST(OptimizerTest, SgdConverges) {
  Tensor x = Parameter(Mat::Full(2, 2, 5.f));
  Mat target = Mat::Full(2, 2, 1.f);
  Sgd sgd({{"x", x}}, 0.2f);
  double final_loss = RunQuadratic(sgd, x, target, 100);
  EXPECT_LT(final_loss, 1e-6);
}

TEST(OptimizerTest, AdamConverges) {
  Tensor x = Parameter(Mat::Full(2, 2, 5.f));
  Mat target = Mat::Full(2, 2, 1.f);
  Adam adam({{"x", x}}, 0.1f);
  double final_loss = RunQuadratic(adam, x, target, 300);
  EXPECT_LT(final_loss, 1e-4);
  EXPECT_EQ(adam.step_count(), 300);
}

TEST(OptimizerTest, WeightDecayShrinksWeights) {
  Tensor x = Parameter(Mat::Full(1, 1, 1.f));
  Sgd sgd({{"x", x}}, 0.1f, /*weight_decay=*/0.5f);
  // No loss gradient at all: only decay acts.
  x->grad();  // Allocate zero grad.
  for (int i = 0; i < 10; ++i) sgd.Step();
  EXPECT_LT(x->value().at(0, 0), 1.f);
  EXPECT_GT(x->value().at(0, 0), 0.f);
}

TEST(OptimizerTest, ClipGradNorm) {
  Tensor x = Parameter(Mat::Full(1, 4, 0.f));
  x->grad().Fill(3.f);  // Norm = 6.
  float pre = ClipGradNorm({{"x", x}}, 1.5f);
  EXPECT_NEAR(pre, 6.f, 1e-4f);
  double norm = 0;
  for (size_t i = 0; i < 4; ++i) {
    norm += x->grad().data()[i] * x->grad().data()[i];
  }
  EXPECT_NEAR(std::sqrt(norm), 1.5, 1e-4);
}

TEST(OptimizerTest, ClipNoopBelowThreshold) {
  Tensor x = Parameter(Mat::Full(1, 4, 0.f));
  x->grad().Fill(0.1f);
  ClipGradNorm({{"x", x}}, 10.f);
  EXPECT_FLOAT_EQ(x->grad().data()[0], 0.1f);
}

}  // namespace
}  // namespace uae::nn
