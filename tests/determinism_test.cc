// Deterministic-seed regressions: the same util::Rng seed must produce
// bit-identical ProgressiveSample and SampleTuples results across repeated
// runs, and batched parallel estimation must not depend on the thread count
// or on how the pool schedules chunks.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/progressive.h"
#include "core/uae.h"
#include "data/synthetic.h"
#include "serve/service.h"
#include "util/threadpool.h"
#include "workload/generator.h"

namespace uae::core {
namespace {

UaeConfig SmallConfig() {
  UaeConfig cfg;
  cfg.hidden = 32;
  cfg.ps_samples = 96;
  cfg.seed = 23;
  return cfg;
}

struct Fixture {
  data::Table table;
  Uae uae;
  std::vector<workload::Query> queries;

  Fixture() : table(data::TinyCorrelated(1200, 3)), uae(table, SmallConfig()) {
    uae.TrainDataEpochs(2);
    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 3;
    workload::QueryGenerator gen(table, gc, 31);
    for (const auto& lq : gen.GenerateLabeled(20, nullptr)) {
      queries.push_back(lq.query);
    }
  }
};

Fixture& Shared() {
  static Fixture* f = new Fixture();
  return *f;
}

TEST(DeterminismTest, ProgressiveSampleBitIdenticalAcrossRuns) {
  Fixture& f = Shared();
  for (const auto& q : f.queries) {
    QueryTargets targets = BuildTargets(q, f.table, f.uae.schema());
    util::Rng rng_a(91);
    util::Rng rng_b(91);
    double a = ProgressiveSample(f.uae.model(), targets, 64, &rng_a);
    double b = ProgressiveSample(f.uae.model(), targets, 64, &rng_b);
    EXPECT_DOUBLE_EQ(a, b);
  }
}

TEST(DeterminismTest, ProgressiveSampleWithErrorBitIdenticalAcrossRuns) {
  Fixture& f = Shared();
  QueryTargets targets = BuildTargets(f.queries[0], f.table, f.uae.schema());
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  PsEstimate a = ProgressiveSampleWithError(f.uae.model(), targets, 64, &rng_a);
  PsEstimate b = ProgressiveSampleWithError(f.uae.model(), targets, 64, &rng_b);
  EXPECT_DOUBLE_EQ(a.selectivity, b.selectivity);
  EXPECT_DOUBLE_EQ(a.std_error, b.std_error);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(DeterminismTest, SampleTuplesBitIdenticalAcrossRuns) {
  Fixture& f = Shared();
  util::Rng rng_a(77);
  util::Rng rng_b(77);
  auto a = SampleTuples(f.uae.model(), 50, &rng_a);
  auto b = SampleTuples(f.uae.model(), 50, &rng_b);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  Fixture& f = Shared();
  util::Rng rng_a(1);
  util::Rng rng_b(2);
  auto a = SampleTuples(f.uae.model(), 50, &rng_a);
  auto b = SampleTuples(f.uae.model(), 50, &rng_b);
  EXPECT_NE(a, b);
}

TEST(DeterminismTest, BatchedEstimatesIndependentOfThreadCount) {
  Fixture& f = Shared();
  // Sequential reference.
  std::vector<double> sequential;
  for (const auto& q : f.queries) sequential.push_back(f.uae.EstimateCard(q));
  // The batched path fans across the global pool (whatever its size); it must
  // reproduce the sequential estimates bit for bit, run after run.
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<double> batched = f.uae.EstimateCards(f.queries);
    ASSERT_EQ(batched.size(), sequential.size());
    for (size_t i = 0; i < batched.size(); ++i) {
      EXPECT_DOUBLE_EQ(batched[i], sequential[i]) << "query " << i;
    }
  }
}

TEST(DeterminismTest, ParallelForFromWorkerRunsInline) {
  // Nested ParallelFor (e.g. the GEMM kernels inside a batched estimation
  // worker) must not deadlock the pool; the inner call runs inline.
  std::vector<int> out(64, 0);
  util::ParallelFor(
      0, 8,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          util::ParallelFor(
              0, 8,
              [&](size_t jlo, size_t jhi) {
                for (size_t j = jlo; j < jhi; ++j) out[i * 8 + j] = 1;
              },
              /*min_parallel_size=*/1);
        }
      },
      /*min_parallel_size=*/1);
  for (int v : out) EXPECT_EQ(v, 1);
}

TEST(DeterminismTest, ParallelForFromForeignPoolWorkerFansOut) {
  // The inline rule is per pool, not per process: a worker of a *different*
  // pool (the serving dispatcher pattern) submitting ParallelFor work to the
  // global pool must fan it out there, not silently serialize it.
  if (util::GlobalPool().num_threads() <= 1) GTEST_SKIP();
  util::ThreadPool foreign(1);
  std::atomic<int> ran_on_foreign_worker{0};
  std::atomic<int> cells{0};
  foreign.Submit([&] {
    const std::thread::id me = std::this_thread::get_id();
    util::ParallelFor(
        0, 8,
        [&](size_t lo, size_t hi) {
          if (std::this_thread::get_id() == me) ran_on_foreign_worker.fetch_add(1);
          cells.fetch_add(static_cast<int>(hi - lo));
        },
        /*min_parallel_size=*/1);
  });
  foreign.Wait();
  EXPECT_EQ(cells.load(), 8);
  // The fanned-out chunks execute on global-pool workers while the foreign
  // worker blocks on completion; had the call run inline we'd see the
  // foreign worker's id here.
  EXPECT_EQ(ran_on_foreign_worker.load(), 0);
}

TEST(DeterminismTest, ServiceRequestsFromPoolWorkersDoNotDeadlock) {
  // The micro-batcher drain path depends on global-pool workers never
  // blocking on service futures: if an estimator callback running inside
  // ParallelFor submits to the service and parks, the dispatcher's own
  // fan-out has no workers left and the pool deadlocks. Such requests are
  // answered inline — this hammers exactly that path.
  Fixture& f = Shared();
  auto model = std::shared_ptr<const Uae>(f.uae.Clone());
  serve::ServiceConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 50;
  serve::EstimationService service(model, cfg);

  std::vector<double> sequential;
  for (const auto& q : f.queries) sequential.push_back(model->EstimateCard(q));

  std::vector<double> served(f.queries.size(), 0.0);
  util::ParallelFor(
      0, f.queries.size(),
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          served[i] = service.Estimate(f.queries[i]).card;
        }
      },
      /*min_parallel_size=*/1);

  for (size_t i = 0; i < served.size(); ++i) {
    EXPECT_DOUBLE_EQ(served[i], sequential[i]) << "query " << i;
  }
  // From inside the pool the service must have answered on the calling
  // threads (inline) rather than through the dispatcher queue.
  if (util::GlobalPool().num_threads() > 1) {
    EXPECT_GT(service.Stats().inline_requests, 0u);
  }
}

TEST(DeterminismTest, WavefrontServiceTrafficFromPoolWorkersDoesNotDeadlock) {
  // Wavefront regression for the PR 3 inline-answer rule: the batched
  // EstimateCards path now advances all micro-batched queries through shared
  // wavefront forwards, whose wave fan-out itself calls ParallelFor. Pool
  // workers submitting to the service must still be answered inline (their
  // nested wave loop runs inline too — no workers left to park on), the
  // dispatcher's wavefront fan-out must still spread over the global pool,
  // and every answer must stay the bitwise-pure function of (model, query).
  Fixture& f = Shared();
  auto model = std::shared_ptr<const Uae>(f.uae.Clone());
  serve::ServiceConfig cfg;
  cfg.max_batch = 8;       // Coalesce enough queries that waves really batch.
  cfg.max_wait_us = 200;
  serve::EstimationService service(model, cfg);

  std::vector<double> sequential;
  for (const auto& q : f.queries) sequential.push_back(model->EstimateCard(q));

  std::atomic<int> mismatches{0};
  // Outside threads exercise the queued micro-batch -> wavefront path while
  // pool workers exercise the inline path, concurrently.
  std::thread outside([&] {
    for (int r = 0; r < 2; ++r) {
      for (size_t i = 0; i < f.queries.size(); ++i) {
        if (service.Estimate(f.queries[i]).card != sequential[i]) {
          mismatches.fetch_add(1);
        }
      }
    }
  });
  util::ParallelFor(
      0, f.queries.size(),
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          if (service.Estimate(f.queries[i]).card != sequential[i]) {
            mismatches.fetch_add(1);
          }
        }
      },
      /*min_parallel_size=*/1);
  outside.join();
  EXPECT_EQ(mismatches.load(), 0);

  // And the raw batched entry point agrees with the served answers bit for
  // bit: service traffic and direct wavefront calls are the same estimates.
  std::vector<double> batched = f.uae.EstimateCards(f.queries);
  ASSERT_EQ(batched.size(), sequential.size());
  for (size_t i = 0; i < batched.size(); ++i) {
    double cloned = model->EstimateCards(
        std::span<const workload::Query>(&f.queries[i], 1))[0];
    EXPECT_DOUBLE_EQ(batched[i], sequential[i]) << "query " << i;
    EXPECT_DOUBLE_EQ(cloned, sequential[i]) << "query " << i;
  }
}

TEST(DeterminismTest, MixedInlineAndQueuedTrafficStaysDeterministic) {
  // Plain client threads (queued + micro-batched) racing pool-worker callers
  // (inline) against one service: every answer must still be the pure
  // function of (model, query).
  Fixture& f = Shared();
  auto model = std::shared_ptr<const Uae>(f.uae.Clone());
  serve::EstimationService service(model);

  std::vector<double> sequential;
  for (const auto& q : f.queries) sequential.push_back(model->EstimateCard(q));

  std::atomic<int> mismatches{0};
  std::thread outside([&] {
    for (int r = 0; r < 3; ++r) {
      for (size_t i = 0; i < f.queries.size(); ++i) {
        if (service.Estimate(f.queries[i]).card != sequential[i]) {
          mismatches.fetch_add(1);
        }
      }
    }
  });
  util::ParallelFor(
      0, f.queries.size(),
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          if (service.Estimate(f.queries[i]).card != sequential[i]) {
            mismatches.fetch_add(1);
          }
        }
      },
      /*min_parallel_size=*/1);
  outside.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace uae::core
