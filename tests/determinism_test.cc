// Deterministic-seed regressions: the same util::Rng seed must produce
// bit-identical ProgressiveSample and SampleTuples results across repeated
// runs, and batched parallel estimation must not depend on the thread count
// or on how the pool schedules chunks.
#include <gtest/gtest.h>

#include <vector>

#include "core/progressive.h"
#include "core/uae.h"
#include "data/synthetic.h"
#include "util/threadpool.h"
#include "workload/generator.h"

namespace uae::core {
namespace {

UaeConfig SmallConfig() {
  UaeConfig cfg;
  cfg.hidden = 32;
  cfg.ps_samples = 96;
  cfg.seed = 23;
  return cfg;
}

struct Fixture {
  data::Table table;
  Uae uae;
  std::vector<workload::Query> queries;

  Fixture() : table(data::TinyCorrelated(1200, 3)), uae(table, SmallConfig()) {
    uae.TrainDataEpochs(2);
    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 3;
    workload::QueryGenerator gen(table, gc, 31);
    for (const auto& lq : gen.GenerateLabeled(20, nullptr)) {
      queries.push_back(lq.query);
    }
  }
};

Fixture& Shared() {
  static Fixture* f = new Fixture();
  return *f;
}

TEST(DeterminismTest, ProgressiveSampleBitIdenticalAcrossRuns) {
  Fixture& f = Shared();
  for (const auto& q : f.queries) {
    QueryTargets targets = BuildTargets(q, f.table, f.uae.schema());
    util::Rng rng_a(91);
    util::Rng rng_b(91);
    double a = ProgressiveSample(f.uae.model(), targets, 64, &rng_a);
    double b = ProgressiveSample(f.uae.model(), targets, 64, &rng_b);
    EXPECT_DOUBLE_EQ(a, b);
  }
}

TEST(DeterminismTest, ProgressiveSampleWithErrorBitIdenticalAcrossRuns) {
  Fixture& f = Shared();
  QueryTargets targets = BuildTargets(f.queries[0], f.table, f.uae.schema());
  util::Rng rng_a(5);
  util::Rng rng_b(5);
  PsEstimate a = ProgressiveSampleWithError(f.uae.model(), targets, 64, &rng_a);
  PsEstimate b = ProgressiveSampleWithError(f.uae.model(), targets, 64, &rng_b);
  EXPECT_DOUBLE_EQ(a.selectivity, b.selectivity);
  EXPECT_DOUBLE_EQ(a.std_error, b.std_error);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(DeterminismTest, SampleTuplesBitIdenticalAcrossRuns) {
  Fixture& f = Shared();
  util::Rng rng_a(77);
  util::Rng rng_b(77);
  auto a = SampleTuples(f.uae.model(), 50, &rng_a);
  auto b = SampleTuples(f.uae.model(), 50, &rng_b);
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  Fixture& f = Shared();
  util::Rng rng_a(1);
  util::Rng rng_b(2);
  auto a = SampleTuples(f.uae.model(), 50, &rng_a);
  auto b = SampleTuples(f.uae.model(), 50, &rng_b);
  EXPECT_NE(a, b);
}

TEST(DeterminismTest, BatchedEstimatesIndependentOfThreadCount) {
  Fixture& f = Shared();
  // Sequential reference.
  std::vector<double> sequential;
  for (const auto& q : f.queries) sequential.push_back(f.uae.EstimateCard(q));
  // The batched path fans across the global pool (whatever its size); it must
  // reproduce the sequential estimates bit for bit, run after run.
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<double> batched = f.uae.EstimateCards(f.queries);
    ASSERT_EQ(batched.size(), sequential.size());
    for (size_t i = 0; i < batched.size(); ++i) {
      EXPECT_DOUBLE_EQ(batched[i], sequential[i]) << "query " << i;
    }
  }
}

TEST(DeterminismTest, ParallelForFromWorkerRunsInline) {
  // Nested ParallelFor (e.g. the GEMM kernels inside a batched estimation
  // worker) must not deadlock the pool; the inner call runs inline.
  std::vector<int> out(64, 0);
  util::ParallelFor(
      0, 8,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          util::ParallelFor(
              0, 8,
              [&](size_t jlo, size_t jhi) {
                for (size_t j = jlo; j < jhi; ++j) out[i * 8 + j] = 1;
              },
              /*min_parallel_size=*/1);
        }
      },
      /*min_parallel_size=*/1);
  for (int v : out) EXPECT_EQ(v, 1);
}

}  // namespace
}  // namespace uae::core
