// data/: Value ordering, order-preserving dictionary columns, code lookups.
#include <gtest/gtest.h>

#include "data/column.h"

namespace uae::data {
namespace {

TEST(ValueTest, OrderingAndToString) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(std::string("abc")), Value(std::string("abd")));
  EXPECT_LT(Value(1.5), Value(2.5));
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(std::string("x")).ToString(), "x");
  EXPECT_TRUE(Value(int64_t{3}).IsNumeric());
  EXPECT_FALSE(Value(std::string("s")).IsNumeric());
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).Numeric(), 3.0);
}

TEST(ColumnTest, OrderPreservingDictionary) {
  Column c = Column::FromInts("x", {30, 10, 20, 10, 30, 30});
  EXPECT_EQ(c.domain(), 3);
  EXPECT_EQ(c.num_rows(), 6u);
  // Codes follow value order: 10 -> 0, 20 -> 1, 30 -> 2.
  EXPECT_EQ(c.code_at(0), 2);
  EXPECT_EQ(c.code_at(1), 0);
  EXPECT_EQ(c.code_at(2), 1);
  EXPECT_EQ(c.ValueForCode(0).AsInt(), 10);
  EXPECT_EQ(c.ValueForCode(2).AsInt(), 30);
}

TEST(ColumnTest, CodeLookups) {
  Column c = Column::FromInts("x", {10, 20, 40});
  EXPECT_EQ(c.CodeForValue(Value(int64_t{20})).value(), 1);
  EXPECT_FALSE(c.CodeForValue(Value(int64_t{30})).has_value());
  // LowerBound / UpperBound behave like std::lower_bound on the dictionary.
  EXPECT_EQ(c.LowerBoundCode(Value(int64_t{15})), 1);
  EXPECT_EQ(c.LowerBoundCode(Value(int64_t{20})), 1);
  EXPECT_EQ(c.UpperBoundCode(Value(int64_t{20})), 2);
  EXPECT_EQ(c.LowerBoundCode(Value(int64_t{100})), 3);
}

TEST(ColumnTest, StringDictionary) {
  Column c = Column::FromValues(
      "s", {Value(std::string("Tim")), Value(std::string("James")),
            Value(std::string("Paul")), Value(std::string("James"))});
  // Sorted: James=0, Paul=1, Tim=2 — the paper's §4.2 example.
  EXPECT_EQ(c.domain(), 3);
  EXPECT_EQ(c.code_at(0), 2);
  EXPECT_EQ(c.code_at(1), 0);
  EXPECT_EQ(c.code_at(3), 0);
}

TEST(ColumnTest, Frequencies) {
  Column c = Column::FromCodes("x", {0, 1, 1, 2, 1}, 4);
  const auto& f = c.Frequencies();
  EXPECT_EQ(f, (std::vector<int64_t>{1, 3, 1, 0}));
  c.AppendCode(3);
  EXPECT_EQ(c.Frequencies()[3], 1);
  EXPECT_EQ(c.num_rows(), 6u);
}

TEST(ColumnTest, FromCodesIdentityDictionary) {
  Column c = Column::FromCodes("x", {5, 0, 3}, 6);
  EXPECT_EQ(c.domain(), 6);
  EXPECT_EQ(c.ValueForCode(5).AsInt(), 5);
}

}  // namespace
}  // namespace uae::data
