// ingest/: IngestService queueing + routing + staleness + compaction —
//  * multi-producer appends all land, in a published prefix, with per-shard
//    DeltaBuffer routing that matches the partitioner;
//  * unseen values are counted and flagged as overflow rows;
//  * StalenessMonitor fires the right triggers for the right shards;
//  * compaction (auto and explicit) folds without changing what any row
//    index reads;
//  * Flush() is a producer-visible barrier; invalid pre-encoded rows are
//    rejected, not applied.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "ingest/service.h"
#include "ingest/staleness.h"
#include "shard/partitioner.h"

namespace uae::ingest {
namespace {

struct Fixture {
  data::Table table;
  shard::HorizontalPartitioner partitioner;

  explicit Fixture(int num_shards = 4, size_t rows = 2000)
      : table(data::SyntheticDmv(rows, 7)),
        partitioner(table, [num_shards] {
          shard::PartitionConfig pc;
          pc.num_shards = num_shards;
          return pc;
        }()) {}
};

TEST(IngestServiceTest, MultiProducerAppendsAllLand) {
  Fixture f;
  IngestConfig cfg;
  cfg.compact_min_delta = 0;  // Keep everything in the delta for inspection.
  IngestService svc(&f.table, &f.partitioner, cfg);
  const size_t before = f.table.num_rows();

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&svc, &f, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Copy an existing row's codes: always in-domain.
        std::vector<int32_t> codes =
            f.table.RowCodes(static_cast<size_t>(p * 13 + i) % 2000);
        ASSERT_TRUE(svc.AppendCodes(std::move(codes)));
      }
    });
  }
  for (auto& t : producers) t.join();
  svc.Flush();

  EXPECT_EQ(f.table.num_rows(), before + kProducers * kPerProducer);
  IngestStats st = svc.stats();
  EXPECT_EQ(st.rows_appended, static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(st.rows_rejected, 0u);
  size_t routed = 0;
  for (int s = 0; s < svc.num_shards(); ++s) routed += svc.shard_buffer(s).size();
  EXPECT_EQ(routed, static_cast<size_t>(kProducers * kPerProducer));
}

TEST(IngestServiceTest, RoutingMatchesPartitionerAndRowsReadBack) {
  Fixture f(4, 500);
  IngestConfig cfg;
  cfg.compact_min_delta = 0;
  IngestService svc(&f.table, &f.partitioner, cfg);
  const int pcol = f.partitioner.partition_col();

  for (size_t r = 0; r < 64; ++r) {
    ASSERT_TRUE(svc.AppendCodes(f.table.RowCodes(r)));
  }
  svc.Flush();

  for (int s = 0; s < svc.num_shards(); ++s) {
    const DeltaBuffer& buf = svc.shard_buffer(s);
    for (size_t i = 0; i < buf.size(); ++i) {
      const size_t row = buf.row_at(i);
      EXPECT_GE(row, 500u);  // Delta rows only.
      EXPECT_FALSE(buf.overflow_at(i));
      EXPECT_EQ(f.partitioner.ShardForCode(f.table.column(pcol).code_at(row)), s);
    }
  }
}

TEST(IngestServiceTest, UnseenValuesCountedAndFlagged) {
  // A 3-column integer table so we control the value space exactly.
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromInts("k", {0, 10, 20, 30, 40, 50, 60, 70}));
  cols.push_back(data::Column::FromInts("x", {1, 1, 2, 2, 3, 3, 4, 4}));
  cols.push_back(data::Column::FromInts("y", {5, 6, 5, 6, 5, 6, 5, 6}));
  data::Table table("t", std::move(cols));
  shard::PartitionConfig pc;
  pc.num_shards = 2;
  pc.partition_col = 0;
  shard::HorizontalPartitioner part(table, pc);
  IngestConfig cfg;
  cfg.compact_min_delta = 0;
  IngestService svc(&table, &part, cfg);

  // Seen row, then a row with an unseen partition value (35 sorts between 30
  // and 40 -> routed by value), then an unseen non-partition value.
  ASSERT_TRUE(svc.Append({data::Value(int64_t{10}), data::Value(int64_t{1}),
                          data::Value(int64_t{5})}));
  ASSERT_TRUE(svc.Append({data::Value(int64_t{35}), data::Value(int64_t{2}),
                          data::Value(int64_t{6})}));
  ASSERT_TRUE(svc.Append({data::Value(int64_t{20}), data::Value(int64_t{9}),
                          data::Value(int64_t{5})}));
  svc.Flush();

  IngestStats st = svc.stats();
  EXPECT_EQ(st.rows_appended, 3u);
  EXPECT_EQ(st.unseen_values, 2u);   // 35 and 9.
  EXPECT_EQ(st.overflow_rows, 2u);   // Rows 2 and 3.
  size_t overflow = 0;
  for (int s = 0; s < svc.num_shards(); ++s) {
    overflow += svc.shard_buffer(s).overflow_rows();
  }
  EXPECT_EQ(overflow, 2u);
  // The unseen partition value routed to the shard owning its sort position.
  const data::Column& k = table.column(0);
  const int expect_shard =
      part.ShardForCode(k.LowerBoundCode(data::Value(int64_t{35})));
  EXPECT_EQ(part.ShardForIngestCode(*k.CodeForValue(data::Value(int64_t{35})), k),
            expect_shard);
}

TEST(IngestServiceTest, InvalidPreEncodedRowsRejected) {
  Fixture f(2, 200);
  IngestConfig cfg;
  cfg.compact_min_delta = 0;
  IngestService svc(&f.table, &f.partitioner, cfg);
  ASSERT_TRUE(svc.AppendCodes({0}));                        // Wrong arity.
  ASSERT_TRUE(svc.AppendCodes(std::vector<int32_t>(        // Out of domain.
      static_cast<size_t>(f.table.num_cols()), 1 << 20)));
  ASSERT_TRUE(svc.AppendCodes(f.table.RowCodes(0)));        // Valid.
  svc.Flush();
  IngestStats st = svc.stats();
  EXPECT_EQ(st.rows_rejected, 2u);
  EXPECT_EQ(st.rows_appended, 1u);
  EXPECT_EQ(f.table.num_rows(), 201u);
}

TEST(IngestServiceTest, AutoCompactionFoldsWithoutChangingReads) {
  Fixture f(2, 300);
  IngestConfig cfg;
  cfg.compact_min_delta = 64;
  IngestService svc(&f.table, &f.partitioner, cfg);
  // Snapshot the rows to replay BEFORE streaming: once auto-compaction can
  // run, unpinned reads of live rows are off-contract.
  std::vector<std::vector<int32_t>> appended;
  for (size_t i = 0; i < 200; ++i) appended.push_back(f.table.RowCodes(i % 300));
  for (const auto& codes : appended) ASSERT_TRUE(svc.AppendCodes(codes));
  svc.Flush();
  EXPECT_GT(svc.stats().compactions, 0u);
  EXPECT_EQ(f.table.num_rows(), 500u);
  // Every appended row reads back at its global index, compacted or not.
  for (size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(f.table.RowCodes(300 + i), appended[i]) << "row " << i;
  }
  // Explicit compaction folds the remainder.
  svc.CompactNow();
  EXPECT_EQ(f.table.delta_rows(), 0u);
  EXPECT_EQ(f.table.base_rows(), 500u);
  EXPECT_EQ(svc.stats().folded_rows, 200u);
}

TEST(IngestServiceTest, CloseUnblocksAndRejectsProducers) {
  Fixture f(2, 100);
  IngestService svc(&f.table, &f.partitioner);
  ASSERT_TRUE(svc.AppendCodes(f.table.RowCodes(0)));
  svc.Flush();
  svc.Close();
  EXPECT_FALSE(svc.AppendCodes(f.table.RowCodes(1)));
  EXPECT_EQ(f.table.num_rows(), 101u);
}

TEST(StalenessMonitorTest, TriggersFireForTheRightShards) {
  Fixture f(4, 2000);
  IngestConfig cfg;
  cfg.compact_min_delta = 0;
  IngestService svc(&f.table, &f.partitioner, cfg);

  // Route ~80 rows into shard 0 only: replay rows whose partition code lives
  // in shard 0.
  const int pcol = f.partitioner.partition_col();
  size_t sent = 0;
  for (size_t r = 0; r < 2000 && sent < 80; ++r) {
    if (f.partitioner.ShardForCode(f.table.column(pcol).code_at(r)) == 0) {
      ASSERT_TRUE(svc.AppendCodes(f.table.RowCodes(r)));
      ++sent;
    }
  }
  ASSERT_EQ(sent, 80u);
  svc.Flush();

  StalenessConfig sc;
  sc.trigger_rows = 64;
  sc.trigger_delta_ratio = 0;   // Disabled.
  sc.trigger_unseen_rows = 0;   // Disabled.
  StalenessMonitor monitor(&svc, sc);
  EXPECT_EQ(monitor.StaleShards(), (std::vector<int>{0}));

  std::vector<ShardStaleness> snap = monitor.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_TRUE(snap[0].stale);
  EXPECT_EQ(snap[0].rows_since_refresh, 80u);
  EXPECT_FALSE(snap[1].stale);

  // The ratio trigger fires relative to each shard's base rows.
  StalenessConfig ratio_cfg;
  ratio_cfg.trigger_rows = 0;
  ratio_cfg.trigger_delta_ratio = 0.10;
  ratio_cfg.trigger_unseen_rows = 0;
  StalenessMonitor ratio_monitor(&svc, ratio_cfg);
  ASSERT_GT(svc.shard_base_rows(0), 0u);
  const double ratio =
      80.0 / static_cast<double>(svc.shard_base_rows(0));
  EXPECT_EQ(ratio_monitor.Snapshot()[0].stale, ratio >= 0.10);

  // MarkRefreshed clears the signal.
  svc.mutable_shard_buffer(0).MarkRefreshed(svc.shard_buffer(0).size());
  EXPECT_TRUE(monitor.StaleShards().empty());
}

}  // namespace
}  // namespace uae::ingest
