// online/drift: rolling per-generation q-error quantiles and the drift
// trigger — min-sample gating, threshold logic, generation separation, and
// window aging.
#include <gtest/gtest.h>

#include "online/drift.h"

namespace uae::online {
namespace {

TEST(DriftMonitorTest, QuietBelowMinSamples) {
  DriftMonitor monitor({.window = 64, .min_samples = 10, .median_threshold = 2.0});
  for (int i = 0; i < 9; ++i) monitor.Observe(1, 100.0);
  DriftReport report = monitor.Check();
  EXPECT_FALSE(report.fired);  // Degraded but not yet statistically backed.
  EXPECT_EQ(report.samples, 9u);
  EXPECT_DOUBLE_EQ(report.median, 100.0);
  monitor.Observe(1, 100.0);
  EXPECT_TRUE(monitor.Check().fired);
}

TEST(DriftMonitorTest, QuietOnHealthyTraffic) {
  DriftMonitor monitor({.window = 64, .min_samples = 8, .median_threshold = 3.0});
  for (int i = 0; i < 50; ++i) monitor.Observe(1, 1.0 + 0.01 * i);
  DriftReport report = monitor.Check();
  EXPECT_FALSE(report.fired);
  EXPECT_LT(report.median, 3.0);
  EXPECT_EQ(monitor.TotalObserved(), 50u);
}

TEST(DriftMonitorTest, FiresOnDegradedMedian) {
  DriftMonitor monitor({.window = 64, .min_samples = 8, .median_threshold = 3.0});
  for (int i = 0; i < 20; ++i) monitor.Observe(4, 8.0);
  DriftReport report = monitor.Check();
  EXPECT_TRUE(report.fired);
  EXPECT_EQ(report.generation, 4u);
  EXPECT_DOUBLE_EQ(report.median, 8.0);
}

TEST(DriftMonitorTest, P95SecondaryTrigger) {
  // Median is healthy; the tail is not. Only fires when p95 gating is on.
  DriftConfig median_only{.window = 64, .min_samples = 10, .median_threshold = 3.0};
  DriftConfig with_p95 = median_only;
  with_p95.p95_threshold = 10.0;
  DriftMonitor a(median_only), b(with_p95);
  for (int i = 0; i < 20; ++i) {
    double err = (i % 10 == 0) ? 100.0 : 1.1;  // 10% catastrophic tail.
    a.Observe(1, err);
    b.Observe(1, err);
  }
  EXPECT_FALSE(a.Check().fired);
  EXPECT_TRUE(b.Check().fired);
  EXPECT_GT(b.Check().p95, 10.0);
}

TEST(DriftMonitorTest, EvaluatesNewestGenerationOnly) {
  DriftMonitor monitor({.window = 128, .min_samples = 8, .median_threshold = 3.0});
  // Generation 1 went bad ...
  for (int i = 0; i < 30; ++i) monitor.Observe(1, 50.0);
  EXPECT_TRUE(monitor.Check().fired);
  // ... and was replaced; the new snapshot serves well. The old generation's
  // tail must not keep the alarm ringing.
  for (int i = 0; i < 10; ++i) monitor.Observe(2, 1.2);
  DriftReport report = monitor.Check();
  EXPECT_EQ(report.generation, 2u);
  EXPECT_EQ(report.samples, 10u);
  EXPECT_FALSE(report.fired);
  // Both generations remain individually inspectable while in the window.
  EXPECT_DOUBLE_EQ(monitor.SummaryForGeneration(1).median, 50.0);
  EXPECT_DOUBLE_EQ(monitor.SummaryForGeneration(2).median, 1.2);
  EXPECT_EQ(monitor.SummaryForGeneration(3).count, 0u);
}

TEST(DriftMonitorTest, WindowAgesOutOldSamples) {
  DriftMonitor monitor({.window = 4, .min_samples = 2, .median_threshold = 3.0});
  for (int i = 0; i < 4; ++i) monitor.Observe(1, 100.0);
  EXPECT_TRUE(monitor.Check().fired);
  // Four healthy samples push every degraded one out of the window.
  for (int i = 0; i < 4; ++i) monitor.Observe(1, 1.0);
  DriftReport report = monitor.Check();
  EXPECT_FALSE(report.fired);
  EXPECT_DOUBLE_EQ(report.median, 1.0);
  EXPECT_EQ(report.samples, 4u);
  EXPECT_EQ(monitor.TotalObserved(), 8u);
}

}  // namespace
}  // namespace uae::online
