// Differentiable progressive sampling: gradient flow, loss decrease when
// training from queries alone (UAE-Q), and factorized-column handling.
#include <gtest/gtest.h>

#include "core/dps.h"
#include "core/uae.h"
#include "data/synthetic.h"
#include "nn/optimizer.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace uae::core {
namespace {

TEST(DpsTest, GradientsReachAllParameters) {
  data::Table t = data::TinyCorrelated(500, 3);
  data::VirtualSchema vs = data::VirtualSchema::Build(t, 0, 4);
  MadeConfig mc;
  mc.hidden = 16;
  mc.blocks = 1;
  mc.seed = 2;
  MadeModel model(&vs, mc);

  workload::Query q(t.num_cols());
  q.AddPredicate({0, workload::Op::kLe, 3, {}}, t.column(0).domain());
  q.AddPredicate({2, workload::Op::kGe, 2, {}}, t.column(2).domain());
  QueryTargets targets = BuildTargets(q, t, vs);

  DpsConfig dc;
  dc.samples = 8;
  util::Rng rng(4);
  nn::Tensor loss = DpsQueryLoss(model, {&targets}, {0.2}, dc, &rng);
  EXPECT_GT(loss->value().at(0, 0), 0.f);
  nn::Backward(loss);
  // Heads for constrained columns and the trunk must receive gradient.
  int with_grad = 0;
  for (const auto& p : model.Parameters()) {
    if (p.tensor->has_grad() && p.tensor->grad().AbsMax() > 0.f) ++with_grad;
  }
  EXPECT_GE(with_grad, 4) << "too few parameters received gradient through DPS";
}

TEST(DpsTest, QueryOnlyTrainingReducesLoss) {
  data::Table t = data::TinyCorrelated(2000, 6);
  UaeConfig cfg;
  cfg.hidden = 32;
  cfg.dps_samples = 16;
  cfg.query_batch = 8;
  cfg.lr = 5e-3f;
  cfg.seed = 6;
  Uae uae(t, cfg);

  workload::GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 2;
  workload::QueryGenerator gen(t, gc, 123);
  auto train = gen.GenerateLabeled(60, nullptr);

  // Measure mean q-error on the training queries before and after UAE-Q.
  auto mean_qerr = [&]() {
    double total = 0;
    for (const auto& lq : train) {
      total += workload::QError(uae.EstimateCard(lq.query), lq.card);
    }
    return total / static_cast<double>(train.size());
  };
  double before = mean_qerr();
  uae.TrainQuerySteps(train, 120);
  double after = mean_qerr();
  EXPECT_LT(after, before) << "UAE-Q did not improve over the untrained model";
  EXPECT_LT(after, 4.0) << "UAE-Q accuracy too weak: " << after;
}

TEST(DpsTest, HandlesFactorizedRangeTargets) {
  // Force factorization of an 8-valued column into 2 digits of 2 bits... use
  // TinyCorrelated column 0 (domain 8) with threshold 4, bits 2.
  data::Table t = data::TinyCorrelated(800, 9);
  data::VirtualSchema vs = data::VirtualSchema::Build(t, 4, 2);
  ASSERT_TRUE(vs.IsFactorized(0));
  MadeConfig mc;
  mc.hidden = 16;
  mc.seed = 3;
  MadeModel model(&vs, mc);
  workload::Query q(t.num_cols());
  q.AddPredicate({0, workload::Op::kGe, 2, {}}, t.column(0).domain());
  q.AddPredicate({0, workload::Op::kLe, 5, {}}, t.column(0).domain());
  QueryTargets targets = BuildTargets(q, t, vs);
  DpsConfig dc;
  dc.samples = 16;
  util::Rng rng(8);
  nn::Tensor loss = DpsQueryLoss(model, {&targets}, {0.3}, dc, &rng);
  EXPECT_TRUE(std::isfinite(loss->value().at(0, 0)));
  nn::Backward(loss);  // Must not crash; digit states steer the masks.
}

TEST(DpsTest, MixedConstrainedAndWildcardBatch) {
  data::Table t = data::TinyCorrelated(500, 5);
  data::VirtualSchema vs = data::VirtualSchema::Build(t, 0, 4);
  MadeConfig mc;
  mc.hidden = 16;
  mc.seed = 9;
  MadeModel model(&vs, mc);
  // Query A constrains column 0 only; query B constrains column 2 only.
  workload::Query qa(t.num_cols());
  qa.AddPredicate({0, workload::Op::kLe, 4, {}}, t.column(0).domain());
  workload::Query qb(t.num_cols());
  qb.AddPredicate({2, workload::Op::kGe, 1, {}}, t.column(2).domain());
  QueryTargets ta = BuildTargets(qa, t, vs);
  QueryTargets tb = BuildTargets(qb, t, vs);
  DpsConfig dc;
  dc.samples = 8;
  util::Rng rng(10);
  nn::Tensor loss = DpsQueryLoss(model, {&ta, &tb}, {0.5, 0.4}, dc, &rng);
  EXPECT_TRUE(std::isfinite(loss->value().at(0, 0)));
  nn::Backward(loss);
}

}  // namespace
}  // namespace uae::core
