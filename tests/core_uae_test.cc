// core/: the UAE facade — hybrid training (Alg. 3), incremental data and
// workload ingestion (§4.5), checkpointing, and join estimation (§4.6).
#include <filesystem>

#include <gtest/gtest.h>

#include "core/uae.h"
#include "data/imdb_star.h"
#include "data/synthetic.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/join_workload.h"
#include "workload/metrics.h"

namespace uae::core {
namespace {

UaeConfig SmallConfig() {
  UaeConfig cfg;
  cfg.hidden = 32;
  cfg.data_batch = 256;
  cfg.dps_samples = 16;
  cfg.query_batch = 8;
  cfg.ps_samples = 128;
  cfg.lr = 5e-3f;
  cfg.seed = 23;
  return cfg;
}

TEST(UaeTest, HybridTrainingImprovesAccuracy) {
  data::Table t = data::TinyCorrelated(3000, 31);
  workload::GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 2;
  workload::QueryGenerator gen(t, gc, 41);
  auto train = gen.GenerateLabeled(80, nullptr);
  auto test = gen.GenerateLabeled(40, nullptr);

  Uae uae(t, SmallConfig());
  auto mean_err = [&]() {
    double s = 0;
    for (const auto& lq : test) {
      s += workload::QError(uae.EstimateCard(lq.query), lq.card);
    }
    return s / static_cast<double>(test.size());
  };
  double before = mean_err();
  int called = 0;
  uae.TrainHybridEpochs(train, 8, [&](const TrainStats& s) {
    ++called;
    EXPECT_GE(s.data_loss, 0.0);
  });
  EXPECT_EQ(called, 8);
  double after = mean_err();
  EXPECT_LT(after, before);
  EXPECT_LT(after, 2.0);
}

TEST(UaeTest, IncrementalDataIngestion) {
  // Train on a skewed first half, then ingest a second half with a different
  // distribution; estimates on the new region must improve.
  size_t n = 4000;
  data::Table full = data::TinyCorrelated(n, 51);
  data::Table first = full.Slice(0, n / 2, "first");
  data::Table delta = full.Slice(n / 2, n, "delta");

  Uae uae(first, SmallConfig());
  uae.TrainDataEpochs(15);
  EXPECT_EQ(uae.num_rows(), n / 2);
  uae.IngestDataRows(delta, 10);
  EXPECT_EQ(uae.num_rows(), n);

  // After ingestion the model's total row count and distribution cover the
  // full table: a broad query should be near-exact.
  workload::Query q(full.num_cols());
  q.AddPredicate({0, workload::Op::kLe, 3, {}}, full.column(0).domain());
  double truth = static_cast<double>(workload::ExecuteCount(full, q));
  EXPECT_LT(workload::QError(uae.EstimateCard(q), truth), 1.6);
}

TEST(UaeTest, IngestWorkloadAdaptsToShiftedQueries) {
  data::Table t = data::SyntheticDmv(6000, 61);
  UaeConfig cfg = SmallConfig();
  Uae uae(t, cfg);
  uae.TrainDataEpochs(2);

  workload::GeneratorConfig shifted;
  shifted.center_min = 0.7;
  shifted.center_max = 0.9;
  workload::QueryGenerator gen(t, shifted, 71);
  auto train = gen.GenerateLabeled(150, nullptr);
  auto test = gen.GenerateLabeled(50, nullptr);
  auto mean_err = [&]() {
    double s = 0;
    for (const auto& lq : test) {
      s += workload::QError(uae.EstimateCard(lq.query), lq.card);
    }
    return s / static_cast<double>(test.size());
  };
  double before = mean_err();
  uae.IngestWorkload(train, 4);
  double after = mean_err();
  EXPECT_LE(after, before * 1.05) << "workload ingestion made things worse";
}

TEST(UaeTest, SaveLoadRoundTripPreservesEstimates) {
  data::Table t = data::TinyCorrelated(1500, 81);
  UaeConfig cfg = SmallConfig();
  Uae uae(t, cfg);
  uae.TrainDataEpochs(6);
  std::string path = "/tmp/uae_core_test_ckpt.bin";
  ASSERT_TRUE(uae.Save(path).ok());

  Uae restored(t, cfg);
  ASSERT_TRUE(restored.Load(path).ok());
  workload::Query q(t.num_cols());
  q.AddPredicate({0, workload::Op::kLe, 4, {}}, t.column(0).domain());
  // Same weights + same seed state per call is not guaranteed (PS rng), so
  // compare estimates loosely.
  double a = uae.EstimateSelectivity(q);
  double b = restored.EstimateSelectivity(q);
  EXPECT_NEAR(a, b, 0.1 * std::max(a, b) + 0.01);
  std::filesystem::remove(path);
}

TEST(UaeTest, JoinEstimationOnUniverse) {
  data::ImdbStarConfig sc;
  sc.num_titles = 600;
  sc.seed = 5;
  data::JoinUniverse uni = data::BuildImdbStar(sc);
  UaeConfig cfg = SmallConfig();
  cfg.factor_threshold = 64;
  cfg.factor_bits = 5;
  Uae uae(uni, cfg);
  uae.TrainDataEpochs(10);

  workload::JoinGeneratorConfig gc;
  gc.focused = false;
  workload::JoinQueryGenerator gen(uni, gc, 91);
  auto w = gen.GenerateLabeled(25, nullptr);
  std::vector<double> errors;
  for (const auto& lq : w) {
    errors.push_back(workload::QError(uae.EstimateJoinCard(lq.query), lq.card));
  }
  EXPECT_LT(util::Quantile(errors, 0.5), 3.0) << "join median q-error too high";
}

TEST(UaeTest, HybridJoinTrainingRuns) {
  data::ImdbStarConfig sc;
  sc.num_titles = 400;
  data::JoinUniverse uni = data::BuildImdbStar(sc);
  UaeConfig cfg = SmallConfig();
  cfg.lambda = 10.f;
  Uae uae(uni, cfg);
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 101);
  auto train = gen.GenerateLabeled(30, nullptr);
  uae.TrainHybridEpochs(train, 1);  // Smoke: must run through DPS with
                                    // factorized + weighted targets.
  double est = uae.EstimateJoinCard(train[0].query);
  EXPECT_GE(est, 0.0);
  EXPECT_TRUE(std::isfinite(est));
}

TEST(UaeTest, SizeAndSchemaIntrospection) {
  data::Table t = data::TinyCorrelated(500, 3);
  Uae uae(t, SmallConfig());
  EXPECT_GT(uae.SizeBytes(), 1000u);
  EXPECT_EQ(uae.schema().num_original(), 3);
  EXPECT_EQ(uae.num_rows(), 500u);
}

}  // namespace
}  // namespace uae::core
