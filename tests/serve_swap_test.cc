// Snapshot hot-swap under load: a background trainer publishes progressively
// more-trained model snapshots while client threads hammer the service. Every
// response must be attributable to exactly one published snapshot generation
// — its cardinality bit-identical to what that generation's model computes
// sequentially — i.e. no torn reads, no stale cache entries leaking across a
// swap, and per-client generations never moving backwards. Runs under the
// ASan/UBSan sanitizer job (unit label) and the TSan serve job.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/uae.h"
#include "data/synthetic.h"
#include "serve/service.h"
#include "workload/generator.h"

namespace uae::serve {
namespace {

core::UaeConfig SmallConfig() {
  core::UaeConfig cfg;
  cfg.hidden = 24;
  cfg.ps_samples = 48;
  cfg.seed = 7;
  return cfg;
}

struct SwapFixture {
  static constexpr int kGenerations = 4;

  data::Table table;
  /// variants[g-1] is the model published as generation g; each is the
  /// previous one cloned and trained one epoch further, so every generation
  /// has distinct parameters.
  std::vector<std::shared_ptr<core::Uae>> variants;
  std::vector<workload::Query> queries;
  /// expected[g-1][i]: sequential EstimateCard of queries[i] on variants[g-1].
  std::vector<std::vector<double>> expected;

  SwapFixture() : table(data::TinyCorrelated(700, 3)) {
    auto base = std::make_shared<core::Uae>(table, SmallConfig());
    base->TrainDataEpochs(1);
    variants.push_back(base);
    for (int g = 1; g < kGenerations; ++g) {
      std::shared_ptr<core::Uae> next = variants.back()->Clone();
      next->TrainDataEpochs(1);
      variants.push_back(std::move(next));
    }

    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 3;
    workload::QueryGenerator gen(table, gc, 13);
    for (const auto& lq : gen.GenerateLabeled(12, nullptr)) {
      queries.push_back(lq.query);
    }
    for (const auto& v : variants) {
      std::vector<double> cards;
      for (const auto& q : queries) cards.push_back(v->EstimateCard(q));
      expected.push_back(std::move(cards));
    }
  }
};

SwapFixture& Shared() {
  static SwapFixture* f = new SwapFixture();
  return *f;
}

TEST(ServeSwapTest, DistinctGenerationsProduceDistinctEstimates) {
  SwapFixture& f = Shared();
  // The attribution check below is only meaningful if generations actually
  // disagree on some query.
  bool any_difference = false;
  for (size_t i = 0; i < f.queries.size() && !any_difference; ++i) {
    any_difference = f.expected[0][i] != f.expected.back()[i];
  }
  EXPECT_TRUE(any_difference);
}

TEST(ServeSwapTest, EveryResponseAttributableToOnePublishedSnapshot) {
  SwapFixture& f = Shared();
  constexpr int kThreads = 6;
  constexpr int kRounds = 12;
  const size_t total =
      static_cast<size_t>(kThreads) * kRounds * f.queries.size();

  ServiceConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 100;
  EstimationService service(f.variants[0], cfg);

  std::atomic<size_t> completed{0};
  std::atomic<int> torn{0};           ///< card not matching the reported gen.
  std::atomic<int> bad_gen{0};        ///< gen outside the published set.
  std::atomic<int> regressions{0};    ///< per-client generation went backwards.
  std::mutex seen_mu;
  std::set<uint64_t> seen_generations;

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      uint64_t last_gen = 0;
      for (int r = 0; r < kRounds; ++r) {
        // Deterministic interleave (single-core machines included): at the
        // round boundaries aligned with the trainer's publish thresholds,
        // wait until that generation is live before continuing to hammer.
        if (r > 0 && r % (kRounds / SwapFixture::kGenerations) == 0) {
          uint64_t want =
              1 + static_cast<uint64_t>(r) /
                      (kRounds / SwapFixture::kGenerations);
          while (service.CurrentGeneration() < want) std::this_thread::yield();
        }
        for (size_t i = 0; i < f.queries.size(); ++i) {
          size_t qi = (i + static_cast<size_t>(t)) % f.queries.size();
          ServeResult res = service.Estimate(f.queries[qi]);
          completed.fetch_add(1);
          if (res.generation < 1 ||
              res.generation > static_cast<uint64_t>(SwapFixture::kGenerations)) {
            bad_gen.fetch_add(1);
            continue;
          }
          // The headline invariant: the value is exactly what the reported
          // generation's model computes for this query — nothing in between
          // two snapshots, nothing cached from an older one.
          if (res.card != f.expected[res.generation - 1][qi]) {
            torn.fetch_add(1);
          }
          // Read-read coherence on the snapshot slot: a client's observed
          // generation never decreases across its sequential requests.
          if (res.generation < last_gen) regressions.fetch_add(1);
          last_gen = std::max(last_gen, res.generation);
          std::lock_guard<std::mutex> lock(seen_mu);
          seen_generations.insert(res.generation);
        }
      }
    });
  }

  // Trainer: publish generation g once ~(g-1)/K of the traffic has
  // completed, so swaps land mid-stream rather than before or after the
  // hammering. The threshold sits one client-round of slack below the
  // clients' own wait boundary, so the publish is always reachable.
  std::thread trainer([&] {
    const size_t slack = static_cast<size_t>(kThreads) * f.queries.size();
    for (int g = 2; g <= SwapFixture::kGenerations; ++g) {
      size_t boundary = (total * static_cast<size_t>(g - 1)) /
                        SwapFixture::kGenerations;
      size_t threshold = boundary > slack ? boundary - slack : 0;
      while (completed.load() < threshold) std::this_thread::yield();
      uint64_t published = service.PublishSnapshot(
          f.variants[static_cast<size_t>(g - 1)]);
      EXPECT_EQ(published, static_cast<uint64_t>(g));
    }
  });

  for (auto& c : clients) c.join();
  trainer.join();

  EXPECT_EQ(bad_gen.load(), 0);
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(regressions.load(), 0);
  EXPECT_EQ(completed.load(), total);
  EXPECT_EQ(service.CurrentGeneration(),
            static_cast<uint64_t>(SwapFixture::kGenerations));
  // The round-boundary handshake guarantees both the initial and the final
  // generation served real traffic.
  EXPECT_GE(seen_generations.size(), 2u);
  EXPECT_TRUE(seen_generations.count(1) > 0);
  EXPECT_TRUE(
      seen_generations.count(static_cast<uint64_t>(SwapFixture::kGenerations)) >
      0);
}

TEST(ServeSwapTest, SwapInvalidatesCachedResults) {
  SwapFixture& f = Shared();
  EstimationService service(f.variants[0]);
  const workload::Query& q = f.queries[0];

  ServeResult before = service.Estimate(q);
  EXPECT_EQ(before.generation, 1u);
  EXPECT_EQ(before.card, f.expected[0][0]);
  EXPECT_TRUE(service.Estimate(q).cache_hit);

  service.PublishSnapshot(f.variants[1]);
  ServeResult after = service.Estimate(q);
  EXPECT_EQ(after.generation, 2u);
  EXPECT_FALSE(after.cache_hit);  // Generation key change == cold cache.
  EXPECT_EQ(after.card, f.expected[1][0]);
  EXPECT_TRUE(service.Estimate(q).cache_hit);
}

TEST(ServeSwapTest, PublishWhileIdleBumpsGenerationMonotonically) {
  SwapFixture& f = Shared();
  EstimationService service(f.variants[0]);
  EXPECT_EQ(service.CurrentGeneration(), 1u);
  EXPECT_EQ(service.PublishSnapshot(f.variants[1]), 2u);
  EXPECT_EQ(service.PublishSnapshot(f.variants[2]), 3u);
  EXPECT_EQ(service.CurrentGeneration(), 3u);
  EXPECT_EQ(service.Stats().snapshots_published, 2u);
}

TEST(ServeSwapTest, TrainerClonePublishLoopUnderLoad) {
  // End-to-end shape of the intended deployment: the trainer owns a live
  // model, keeps training it, and publishes Clone()s — while clients read.
  SwapFixture& f = Shared();
  auto live = f.variants[0]->Clone();

  EstimationService service(
      std::shared_ptr<const core::Uae>(live->Clone()));
  std::atomic<bool> stop{false};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const auto& q : f.queries) {
          ServeResult res = service.Estimate(q);
          if (res.generation < 1) mismatches.fetch_add(1);
        }
      }
    });
  }

  for (int step = 0; step < 2; ++step) {
    live->TrainDataEpochs(1);
    service.PublishSnapshot(std::shared_ptr<const core::Uae>(live->Clone()));
  }
  stop.store(true);
  for (auto& c : clients) c.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(service.CurrentGeneration(), 3u);
}

}  // namespace
}  // namespace uae::serve
