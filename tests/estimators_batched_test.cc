// Batched estimation path: EstimateCards must return exactly the same values
// as the sequential per-query EstimateCard loop for every estimator in the
// zoo, regardless of batch composition, call order, or thread count.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/uae.h"
#include "data/synthetic.h"
#include "estimators/bayesnet.h"
#include "estimators/feedback_kde.h"
#include "estimators/histogram.h"
#include "estimators/kde.h"
#include "estimators/lr.h"
#include "estimators/mscn.h"
#include "estimators/oracle.h"
#include "estimators/sampling.h"
#include "estimators/spn.h"
#include "estimators/uae_adapter.h"
#include "workload/generator.h"

namespace uae::estimators {
namespace {

struct Zoo {
  data::Table table;
  workload::Workload train;
  std::vector<workload::Query> queries;
  std::unique_ptr<core::Uae> uae;
  std::vector<std::unique_ptr<CardinalityEstimator>> estimators;

  Zoo() : table(data::TinyCorrelated(1500, 3)) {
    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 2;
    workload::QueryGenerator gen(table, gc, 7);
    train = gen.GenerateLabeled(60, nullptr);
    for (const auto& lq : gen.GenerateLabeled(24, nullptr)) {
      queries.push_back(lq.query);
    }

    core::UaeConfig uc;
    uc.hidden = 32;
    uc.ps_samples = 64;
    uc.seed = 11;
    uae = std::make_unique<core::Uae>(table, uc);
    uae->TrainDataEpochs(2);

    auto lr = std::make_unique<LrEstimator>(table);
    lr->Train(train);
    estimators.push_back(std::move(lr));

    MscnConfig mc;
    mc.seed = 3;
    auto mscn = std::make_unique<MscnEstimator>(table, mc);
    mscn->Train(train);
    estimators.push_back(std::move(mscn));

    auto ms = std::make_unique<MscnSamplingEstimator>(table, 200, mc);
    ms->Train(train);
    estimators.push_back(std::move(ms));

    estimators.push_back(std::make_unique<SamplingEstimator>(table, 0.05, 5));
    estimators.push_back(
        std::make_unique<BayesNetEstimator>(table, 2000, 0.1, 5));
    estimators.push_back(std::make_unique<KdeEstimator>(table, 200, 5));

    auto fkde = std::make_unique<FeedbackKdeEstimator>(table, 200, 5);
    fkde->TuneBandwidths(train, /*epochs=*/2);
    estimators.push_back(std::move(fkde));

    SpnConfig sc;
    sc.seed = 5;
    estimators.push_back(std::make_unique<SpnEstimator>(table, sc));
    estimators.push_back(
        std::make_unique<HistogramAviEstimator>(table, /*buckets_per_column=*/16));
    estimators.push_back(std::make_unique<OracleEstimator>(table));
    estimators.push_back(std::make_unique<UaeAdapter>(uae.get(), "UAE"));
  }
};

Zoo& SharedZoo() {
  static Zoo* zoo = new Zoo();
  return *zoo;
}

TEST(BatchedEstimationTest, BatchedMatchesSequentialForEveryEstimator) {
  Zoo& zoo = SharedZoo();
  ASSERT_EQ(zoo.estimators.size(), 11u);
  for (const auto& est : zoo.estimators) {
    std::vector<double> batched = est->EstimateCards(zoo.queries);
    ASSERT_EQ(batched.size(), zoo.queries.size()) << est->name();
    for (size_t i = 0; i < zoo.queries.size(); ++i) {
      EXPECT_DOUBLE_EQ(batched[i], est->EstimateCard(zoo.queries[i]))
          << est->name() << " query " << i;
    }
  }
}

TEST(BatchedEstimationTest, BatchCompositionDoesNotChangeResults) {
  Zoo& zoo = SharedZoo();
  for (const auto& est : zoo.estimators) {
    std::vector<double> whole = est->EstimateCards(zoo.queries);
    // Re-estimate in two halves; results must be unchanged.
    size_t mid = zoo.queries.size() / 2;
    std::span<const workload::Query> all(zoo.queries);
    std::vector<double> first = est->EstimateCards(all.subspan(0, mid));
    std::vector<double> second = est->EstimateCards(all.subspan(mid));
    ASSERT_EQ(first.size() + second.size(), whole.size());
    for (size_t i = 0; i < mid; ++i) {
      EXPECT_DOUBLE_EQ(first[i], whole[i]) << est->name();
    }
    for (size_t i = mid; i < whole.size(); ++i) {
      EXPECT_DOUBLE_EQ(second[i - mid], whole[i]) << est->name();
    }
  }
}

TEST(BatchedEstimationTest, EmptyAndSingletonBatches) {
  Zoo& zoo = SharedZoo();
  for (const auto& est : zoo.estimators) {
    EXPECT_TRUE(est->EstimateCards({}).empty()) << est->name();
    std::span<const workload::Query> all(zoo.queries);
    std::vector<double> one = est->EstimateCards(all.subspan(0, 1));
    ASSERT_EQ(one.size(), 1u);
    EXPECT_DOUBLE_EQ(one[0], est->EstimateCard(zoo.queries[0])) << est->name();
  }
}

TEST(BatchedEstimationTest, UaeEstimatesAreCallOrderIndependent) {
  Zoo& zoo = SharedZoo();
  // Estimating the same query twice in a row gives bit-identical results:
  // the progressive-sampling RNG is derived per query, not shared state.
  for (const auto& q : zoo.queries) {
    EXPECT_DOUBLE_EQ(zoo.uae->EstimateCard(q), zoo.uae->EstimateCard(q));
  }
  // And reversing the evaluation order changes nothing.
  std::vector<double> forward;
  for (const auto& q : zoo.queries) forward.push_back(zoo.uae->EstimateCard(q));
  for (size_t i = zoo.queries.size(); i-- > 0;) {
    EXPECT_DOUBLE_EQ(zoo.uae->EstimateCard(zoo.queries[i]), forward[i]);
  }
}

}  // namespace
}  // namespace uae::estimators
