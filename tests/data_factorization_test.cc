// data/: column factorization — digit decomposition, composition, virtual
// schema bookkeeping, and the digit-range bounds used for range predicates.
#include <gtest/gtest.h>

#include "core/targets.h"
#include "data/factorization.h"
#include "data/synthetic.h"

namespace uae::data {
namespace {

Table BigDomainTable() {
  std::vector<int32_t> codes;
  for (int32_t i = 0; i < 1000; ++i) codes.push_back(i % 1000);
  std::vector<Column> cols;
  cols.push_back(Column::FromCodes("big", std::move(codes), 1000));
  cols.push_back(Column::FromCodes("small", std::vector<int32_t>(1000, 1), 4));
  return Table("t", std::move(cols));
}

TEST(FactorizationTest, NoFactorizationBelowThreshold) {
  Table t = BigDomainTable();
  VirtualSchema vs = VirtualSchema::Build(t, /*threshold=*/2048, /*bits=*/8);
  EXPECT_EQ(vs.num_virtual(), 2);
  EXPECT_FALSE(vs.IsFactorized(0));
  EXPECT_EQ(vs.vcol(0).domain, 1000);
}

TEST(FactorizationTest, SplitsLargeDomains) {
  Table t = BigDomainTable();
  VirtualSchema vs = VirtualSchema::Build(t, /*threshold=*/256, /*bits=*/5);
  // 1000 needs 10 bits -> 2 digits of 5 bits; msd domain = 999>>5 + 1 = 32.
  EXPECT_TRUE(vs.IsFactorized(0));
  EXPECT_FALSE(vs.IsFactorized(1));
  ASSERT_EQ(vs.VirtualsOf(0).size(), 2u);
  EXPECT_EQ(vs.vcol(0).domain, 32);
  EXPECT_EQ(vs.vcol(1).domain, 32);
  EXPECT_EQ(vs.num_virtual(), 3);
}

TEST(FactorizationTest, DecomposeComposeRoundTrip) {
  Table t = BigDomainTable();
  VirtualSchema vs = VirtualSchema::Build(t, 256, 5);
  for (int32_t code : {0, 1, 31, 32, 512, 999}) {
    std::vector<int32_t> digits;
    for (int vc : vs.VirtualsOf(0)) digits.push_back(vs.Digit(vc, code));
    EXPECT_EQ(vs.Compose(0, digits), code) << "code " << code;
  }
}

TEST(FactorizationTest, EncodeRowMatchesDigits) {
  Table t = BigDomainTable();
  VirtualSchema vs = VirtualSchema::Build(t, 256, 5);
  std::vector<int32_t> orig = {777, 2};
  std::vector<int32_t> virt;
  vs.EncodeRow(orig, &virt);
  ASSERT_EQ(virt.size(), 3u);
  EXPECT_EQ(virt[0], 777 >> 5);
  EXPECT_EQ(virt[1], 777 & 31);
  EXPECT_EQ(virt[2], 2);
}

TEST(FactorizationTest, DigitRangeBoundsEnumerateExactly) {
  // For every range [lo,hi], walking digits most-significant-first with
  // DigitRangeState must admit exactly the codes in [lo,hi].
  Table t = BigDomainTable();
  VirtualSchema vs = VirtualSchema::Build(t, 256, 5);
  const auto& vcs = vs.VirtualsOf(0);
  auto in_range_via_digits = [&](int32_t code, int32_t lo, int32_t hi) {
    core::DigitRangeState state(t.num_cols());
    for (int vc : vcs) {
      int32_t dlo = 0, dhi = 0;
      state.DigitBounds(vs, vc, lo, hi, &dlo, &dhi);
      int32_t digit = vs.Digit(vc, code);
      if (digit < dlo || digit > dhi) return false;
      state.Advance(vs, vc, lo, hi, digit);
    }
    return true;
  };
  const std::pair<int32_t, int32_t> ranges[] = {
      {0, 999}, {100, 100}, {31, 32}, {0, 31}, {960, 999}, {123, 456}};
  for (auto [lo, hi] : ranges) {
    for (int32_t code = 0; code < 1000; ++code) {
      EXPECT_EQ(in_range_via_digits(code, lo, hi), code >= lo && code <= hi)
          << "code " << code << " range [" << lo << "," << hi << "]";
    }
  }
}

}  // namespace
}  // namespace uae::data
