// Numerical gradient checks for every autograd op: perturb each parameter
// entry, compare (f(x+h)-f(x-h))/2h against the analytic gradient.
#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "nn/ops.h"
#include "util/rng.h"

namespace uae::nn {
namespace {

using BuildFn = std::function<Tensor(const std::vector<Tensor>&)>;

// Checks d(loss)/d(params) numerically. `build` must construct the full graph
// from the parameter tensors each time it is called.
void CheckGradients(std::vector<Tensor> params, const BuildFn& build,
                    float tol = 2e-2f) {
  Tensor loss = build(params);
  ASSERT_EQ(loss->rows(), 1);
  ASSERT_EQ(loss->cols(), 1);
  Backward(loss);
  const float h = 1e-3f;
  for (size_t pi = 0; pi < params.size(); ++pi) {
    Mat analytic = params[pi]->grad();
    for (int r = 0; r < params[pi]->rows(); ++r) {
      for (int c = 0; c < params[pi]->cols(); ++c) {
        float orig = params[pi]->value().at(r, c);
        params[pi]->mutable_value().at(r, c) = orig + h;
        float up = build(params)->value().at(0, 0);
        params[pi]->mutable_value().at(r, c) = orig - h;
        float down = build(params)->value().at(0, 0);
        params[pi]->mutable_value().at(r, c) = orig;
        float numeric = (up - down) / (2 * h);
        float a = analytic.at(r, c);
        float denom = std::max({1.f, std::fabs(a), std::fabs(numeric)});
        EXPECT_NEAR(a, numeric, tol * denom)
            << "param " << pi << " entry (" << r << "," << c << ")";
      }
    }
    params[pi]->ZeroGrad();
  }
}

std::vector<Tensor> MakeParams(const std::vector<std::pair<int, int>>& shapes,
                               uint64_t seed = 3) {
  util::Rng rng(seed);
  std::vector<Tensor> out;
  for (auto [r, c] : shapes) out.push_back(Parameter(Mat::Gaussian(r, c, 0.5f, &rng)));
  return out;
}

TEST(AutogradTest, MatMulAndMean) {
  CheckGradients(MakeParams({{3, 4}, {4, 5}}), [](const std::vector<Tensor>& p) {
    return MeanAll(MatMul(p[0], p[1]));
  });
}

TEST(AutogradTest, AddSubMul) {
  CheckGradients(MakeParams({{3, 4}, {3, 4}, {3, 4}}),
                 [](const std::vector<Tensor>& p) {
                   return SumAll(Mul(Add(p[0], p[1]), Sub(p[0], p[2])));
                 });
}

TEST(AutogradTest, BiasRelu) {
  CheckGradients(MakeParams({{4, 3}, {1, 3}}), [](const std::vector<Tensor>& p) {
    return MeanAll(Relu(AddBias(p[0], p[1])));
  });
}

TEST(AutogradTest, FusedAddBiasRelu) {
  CheckGradients(MakeParams({{4, 3}, {1, 3}}), [](const std::vector<Tensor>& p) {
    return MeanAll(AddBiasRelu(p[0], p[1]));
  });
}

TEST(AutogradTest, FusedAddBiasReluMatchesUnfusedForwardAndGrad) {
  auto params = MakeParams({{5, 4}, {1, 4}, {5, 4}}, 11);
  auto fused = MakeParams({{5, 4}, {1, 4}, {5, 4}}, 11);
  Tensor a = MeanAll(Mul(Relu(AddBias(params[0], params[1])), params[2]));
  Tensor b = MeanAll(Mul(AddBiasRelu(fused[0], fused[1]), fused[2]));
  ASSERT_FLOAT_EQ(a->value().at(0, 0), b->value().at(0, 0));
  Backward(a);
  Backward(b);
  for (size_t i = 0; i < params.size(); ++i) {
    for (int r = 0; r < params[i]->rows(); ++r) {
      for (int c = 0; c < params[i]->cols(); ++c) {
        EXPECT_FLOAT_EQ(params[i]->grad().at(r, c), fused[i]->grad().at(r, c))
            << "param " << i << " (" << r << "," << c << ")";
      }
    }
  }
}

TEST(AutogradTest, SoftmaxRows) {
  // Weighted sum of softmax outputs exercises the full Jacobian.
  Mat w(3, 5);
  util::Rng rng(7);
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  CheckGradients(MakeParams({{3, 5}}), [w](const std::vector<Tensor>& p) {
    return SumAll(MulConstMat(SoftmaxRowsOp(p[0]), w));
  });
}

TEST(AutogradTest, LogSoftmaxRows) {
  Mat w(3, 5);
  util::Rng rng(9);
  for (size_t i = 0; i < w.size(); ++i) w.data()[i] = static_cast<float>(rng.Uniform(-1, 1));
  CheckGradients(MakeParams({{3, 5}}), [w](const std::vector<Tensor>& p) {
    return SumAll(MulConstMat(LogSoftmaxRowsOp(p[0]), w));
  });
}

TEST(AutogradTest, MaskedMatMulRespectsMask) {
  Mat mask(4, 3);
  mask.at(0, 0) = 1;
  mask.at(1, 1) = 1;
  mask.at(2, 2) = 1;
  mask.at(3, 0) = 1;
  auto params = MakeParams({{2, 4}, {4, 3}});
  CheckGradients(params, [mask](const std::vector<Tensor>& p) {
    return SumAll(MaskedMatMul(p[0], p[1], mask));
  });
  // Masked-out weight entries must receive exactly zero gradient.
  Tensor loss = SumAll(MaskedMatMul(params[0], params[1], mask));
  Backward(loss);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (mask.at(r, c) == 0.f) {
        EXPECT_EQ(params[1]->grad().at(r, c), 0.f) << r << "," << c;
      }
    }
  }
}

TEST(AutogradTest, RowSumConcatSlice) {
  CheckGradients(MakeParams({{3, 2}, {3, 4}}), [](const std::vector<Tensor>& p) {
    Tensor cat = ConcatCols({p[0], p[1]});
    return MeanAll(RowSum(cat));
  });
  CheckGradients(MakeParams({{6, 3}}), [](const std::vector<Tensor>& p) {
    return SumAll(SliceRows(p[0], 1, 4));
  });
}

TEST(AutogradTest, SegmentMean) {
  CheckGradients(MakeParams({{6, 1}}), [](const std::vector<Tensor>& p) {
    return SumAll(SegmentMean(p[0], 3));
  });
}

TEST(AutogradTest, EmbeddingLookup) {
  std::vector<int32_t> codes = {0, 2, 2, 1};
  CheckGradients(MakeParams({{3, 4}}), [codes](const std::vector<Tensor>& p) {
    return MeanAll(EmbeddingLookup(p[0], codes));
  });
}

TEST(AutogradTest, CrossEntropyLogits) {
  std::vector<int32_t> targets = {1, 0, 3};
  CheckGradients(MakeParams({{3, 4}}), [targets](const std::vector<Tensor>& p) {
    return CrossEntropyLogits(p[0], targets);
  });
}

TEST(AutogradTest, CrossEntropyWithWeights) {
  std::vector<int32_t> targets = {1, 0, 3};
  std::vector<float> weights = {0.5f, 2.f, 1.f};
  CheckGradients(MakeParams({{3, 4}}), [targets, weights](const std::vector<Tensor>& p) {
    return CrossEntropyLogits(p[0], targets, &weights);
  });
}

TEST(AutogradTest, QErrorLoss) {
  // Positive predictions via softmax then a row-sum slice trick: use exp-free
  // construction — abs values via Mul(p,p) to stay positive.
  Mat truth(3, 1);
  truth.at(0, 0) = 0.1f;
  truth.at(1, 0) = 0.5f;
  truth.at(2, 0) = 0.01f;
  CheckGradients(MakeParams({{3, 1}}), [truth](const std::vector<Tensor>& p) {
    Tensor positive = Mul(p[0], p[0]);
    return QErrorLoss(positive, truth, 1e-4f);
  });
}

TEST(AutogradTest, MseLoss) {
  Mat target(3, 2);
  target.Fill(0.3f);
  CheckGradients(MakeParams({{3, 2}}), [target](const std::vector<Tensor>& p) {
    return MseLoss(p[0], target);
  });
}

TEST(AutogradTest, ScaleAndAddConst) {
  Mat c(2, 3);
  c.Fill(0.7f);
  CheckGradients(MakeParams({{2, 3}}), [c](const std::vector<Tensor>& p) {
    return MeanAll(Scale(AddConstMat(p[0], c), 1.7f));
  });
}

TEST(AutogradTest, NoGradModeBuildsNoGraph) {
  auto params = MakeParams({{2, 2}, {2, 2}});
  NoGradGuard guard;
  Tensor out = MatMul(params[0], params[1]);
  EXPECT_FALSE(out->requires_grad());
  EXPECT_TRUE(out->parents().empty());
}

TEST(AutogradTest, GradAccumulatesAcrossUses) {
  // f = sum(p + p) => df/dp = 2.
  auto params = MakeParams({{2, 2}});
  Tensor loss = SumAll(Add(params[0], params[0]));
  Backward(loss);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(params[0]->grad().at(r, c), 2.f);
  }
}

}  // namespace
}  // namespace uae::nn
