// Direct coverage of nn/serialize: SaveParams/LoadParams round-trips for the
// two trained model families (MadeModel via core::Uae, MSCN), bitwise param
// equality plus identical estimates after reload, the in-memory
// Serialize/Deserialize/Copy variants, and the failure modes (bad magic,
// name/shape/count mismatches).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/uae.h"
#include "data/synthetic.h"
#include "estimators/mscn.h"
#include "nn/serialize.h"
#include "workload/generator.h"

namespace uae::nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void ExpectParamsBitwiseEqual(const std::vector<NamedParam>& a,
                              const std::vector<NamedParam>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    const Mat& ma = a[i].tensor->value();
    const Mat& mb = b[i].tensor->value();
    ASSERT_EQ(ma.rows(), mb.rows()) << a[i].name;
    ASSERT_EQ(ma.cols(), mb.cols()) << a[i].name;
    for (size_t k = 0; k < ma.size(); ++k) {
      ASSERT_EQ(ma.data()[k], mb.data()[k]) << a[i].name << " scalar " << k;
    }
  }
}

core::UaeConfig SmallUaeConfig() {
  core::UaeConfig cfg;
  cfg.hidden = 24;
  cfg.ps_samples = 64;
  cfg.seed = 11;
  return cfg;
}

TEST(NnSerializeTest, MadeModelRoundTripBitwiseAndEstimates) {
  data::Table table = data::TinyCorrelated(800, 3);
  core::Uae trained(table, SmallUaeConfig());
  trained.TrainDataEpochs(2);

  const std::string path = TempPath("made_roundtrip.bin");
  ASSERT_TRUE(trained.Save(path).ok());

  // A freshly-initialized model (same architecture, same seed) whose weights
  // differ from the trained ones until the checkpoint loads.
  core::Uae restored(table, SmallUaeConfig());
  ASSERT_TRUE(restored.Load(path).ok());
  ExpectParamsBitwiseEqual(trained.model().Parameters(),
                           restored.model().Parameters());

  workload::QueryGenerator gen(table, {}, 17);
  for (const auto& lq : gen.GenerateLabeled(12, nullptr)) {
    EXPECT_DOUBLE_EQ(trained.EstimateCard(lq.query),
                     restored.EstimateCard(lq.query));
  }
  std::remove(path.c_str());
}

TEST(NnSerializeTest, MscnRoundTripBitwiseAndEstimates) {
  data::Table table = data::TinyCorrelated(800, 3);
  workload::TrainTestWorkloads w = workload::GenerateTrainTest(table, 80, 10, 5);

  estimators::MscnConfig mc;
  mc.hidden = 24;
  mc.epochs = 6;
  estimators::MscnEstimator trained(table, mc);
  trained.Train(w.train);

  const std::string path = TempPath("mscn_roundtrip.bin");
  auto trained_params = trained.Parameters();
  ASSERT_TRUE(SaveParams(path, trained_params).ok());

  // Same config + same workload fixes the label-normalization range; one
  // training epoch leaves the weights different until LoadParams restores
  // the checkpointed ones.
  estimators::MscnConfig mc_b = mc;
  mc_b.epochs = 1;
  estimators::MscnEstimator restored(table, mc_b);
  restored.Train(w.train);
  auto restored_params = restored.Parameters();
  ASSERT_TRUE(LoadParams(path, &restored_params).ok());

  ExpectParamsBitwiseEqual(trained_params, restored.Parameters());
  for (const auto& lq : w.test_in_workload) {
    EXPECT_DOUBLE_EQ(trained.EstimateCard(lq.query),
                     restored.EstimateCard(lq.query));
  }
  std::remove(path.c_str());
}

TEST(NnSerializeTest, InMemorySerializeDeserializeRoundTrip) {
  data::Table table = data::TinyCorrelated(400, 2);
  core::Uae a(table, SmallUaeConfig());
  a.TrainDataEpochs(1);

  std::string blob = SerializeParams(a.model().Parameters());
  EXPECT_GT(blob.size(), ParamBytes(a.model().Parameters()));  // + headers.

  core::Uae b(table, SmallUaeConfig());
  auto b_params = b.model().Parameters();
  ASSERT_TRUE(DeserializeParams(blob, &b_params).ok());
  ExpectParamsBitwiseEqual(a.model().Parameters(), b.model().Parameters());
}

TEST(NnSerializeTest, CopyParamsTransfersValues) {
  data::Table table = data::TinyCorrelated(400, 2);
  core::Uae a(table, SmallUaeConfig());
  a.TrainDataEpochs(1);
  core::Uae b(table, SmallUaeConfig());

  auto b_params = b.model().Parameters();
  ASSERT_TRUE(CopyParams(a.model().Parameters(), &b_params).ok());
  ExpectParamsBitwiseEqual(a.model().Parameters(), b.model().Parameters());
}

TEST(NnSerializeTest, UaeCloneIsBitIdenticalAndIndependent) {
  data::Table table = data::TinyCorrelated(800, 3);
  core::Uae original(table, SmallUaeConfig());
  original.TrainDataEpochs(2);

  std::unique_ptr<core::Uae> clone = original.Clone();
  ExpectParamsBitwiseEqual(original.model().Parameters(),
                           clone->model().Parameters());

  workload::QueryGenerator gen(table, {}, 29);
  auto labeled = gen.GenerateLabeled(8, nullptr);
  for (const auto& lq : labeled) {
    EXPECT_DOUBLE_EQ(original.EstimateCard(lq.query),
                     clone->EstimateCard(lq.query));
  }

  // Training the original must not move the clone.
  std::string before = SerializeParams(clone->model().Parameters());
  original.TrainDataEpochs(1);
  EXPECT_EQ(before, SerializeParams(clone->model().Parameters()));
}

TEST(NnSerializeTest, LoadRejectsBadMagic) {
  const std::string path = TempPath("bad_magic.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOPE....", f);
  std::fclose(f);

  data::Table table = data::TinyCorrelated(200, 2);
  core::Uae uae(table, SmallUaeConfig());
  auto params = uae.model().Parameters();
  util::Status st = LoadParams(path, &params);
  EXPECT_FALSE(st.ok());
  std::remove(path.c_str());
}

TEST(NnSerializeTest, MismatchedArchitectureRejected) {
  data::Table table = data::TinyCorrelated(200, 2);
  core::Uae small(table, SmallUaeConfig());
  core::UaeConfig big_cfg = SmallUaeConfig();
  big_cfg.hidden = 48;
  core::Uae big(table, big_cfg);

  const std::string path = TempPath("arch_mismatch.bin");
  ASSERT_TRUE(small.Save(path).ok());
  EXPECT_FALSE(big.Load(path).ok());

  // Count mismatch through the in-memory path.
  auto small_params = small.model().Parameters();
  auto truncated = small_params;
  truncated.pop_back();
  EXPECT_FALSE(CopyParams(small_params, &truncated).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace uae::nn
