// End-to-end closed loop (the acceptance scenario): a data-only model serves
// traffic, the workload shifts to a narrow region, ground-truth feedback
// flows back, the drift monitor fires, the controller fine-tunes a clone and
// hot-swaps it — and median q-error on the shifted region improves >= 2x over
// the stale model. Fixed seeds; all interleavings are handshake-gated so the
// test is deterministic on a 1-core box and under TSan.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/uae.h"
#include "data/synthetic.h"
#include "online/controller.h"
#include "serve/service.h"
#include "util/quantiles.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace uae::online {
namespace {

constexpr uint64_t kSeed = 7;

struct Scenario {
  data::Table table;
  std::shared_ptr<core::Uae> model;   ///< Data-only trained; goes stale.
  std::vector<workload::Query> warm;  ///< In-distribution traffic.
  std::vector<workload::Query> shift_stream;  ///< Shifted feedback traffic.
  std::vector<int64_t> shift_truths;
  workload::Workload shifted_test;    ///< Held-out shifted evaluation set.

  Scenario() : table(data::SyntheticDmv(5000, 3)) {
    core::UaeConfig config;
    config.hidden = 32;
    config.ps_samples = 128;
    config.seed = kSeed;
    model = std::make_shared<core::Uae>(table, config);
    model->TrainDataEpochs(1);

    workload::GeneratorConfig in_dist;
    workload::QueryGenerator warm_gen(table, in_dist, kSeed + 11);
    for (int i = 0; i < 64; ++i) warm.push_back(warm_gen.Generate());

    // The shift: traffic concentrates on a narrow band of the bounded column
    // with mid-range cardinalities (see bench/online_adaptation.cc).
    workload::GeneratorConfig shifted;
    shifted.center_min = 0.7;
    shifted.center_max = 0.9;
    shifted.min_filters = 1;
    shifted.max_filters = 2;
    shifted.target_volume = 0.1;
    std::unordered_set<uint64_t> seen;
    workload::QueryGenerator shift_gen(table, shifted, kSeed + 23);
    for (int i = 0; i < 160; ++i) {
      shift_stream.push_back(shift_gen.Generate());
      seen.insert(shift_stream.back().Fingerprint());
    }
    shift_truths = workload::ExecuteCounts(table, shift_stream);
    workload::QueryGenerator test_gen(table, shifted, kSeed + 31);
    shifted_test = test_gen.GenerateLabeled(40, &seen);
  }
};

Scenario& Shared() {
  static Scenario* s = new Scenario();
  return *s;
}

DriftConfig MonitorConfig() {
  return {.window = 512, .min_samples = 48, .median_threshold = 2.0};
}

AdaptationConfig ControllerConfig() {
  AdaptationConfig cfg;
  cfg.finetune_steps = 160;
  cfg.min_feedback = 48;
  cfg.holdout_fraction = 0.25;
  cfg.split_seed = kSeed;
  return cfg;
}

void Feed(serve::EstimationService& service, AdaptationController& controller,
          const std::vector<workload::Query>& queries,
          const std::vector<int64_t>& truths) {
  for (size_t i = 0; i < queries.size(); ++i) {
    serve::ServeResult res = service.Estimate(queries[i]);
    controller.OnFeedback(queries[i], res, static_cast<double>(truths[i]));
  }
}

double MedianQError(const core::ServableModel& model,
                    const workload::Workload& test) {
  std::vector<double> errors = workload::EvaluateQErrorsBatched(
      test, [&](std::span<const workload::Query> qs) {
        return model.EstimateCards(qs);
      });
  return util::Quantile(std::move(errors), 0.5);
}

TEST(OnlineAdaptationE2ETest, DriftTriggeredFinetuneRecoversAccuracy) {
  Scenario& s = Shared();
  serve::EstimationService service(s.model);
  FeedbackCollector collector({.capacity = 1024, .seed = kSeed});
  DriftMonitor monitor(MonitorConfig());
  AdaptationController controller(&service, &collector, &monitor,
                                  ControllerConfig());

  // Phase 1: in-distribution traffic — the monitor must stay quiet.
  std::vector<int64_t> warm_truths = workload::ExecuteCounts(s.table, s.warm);
  Feed(service, controller, s.warm, warm_truths);
  EXPECT_FALSE(monitor.Check().fired);
  EXPECT_EQ(controller.AdaptIfDrifted().outcome, AdaptOutcome::kSkippedNoDrift);

  // Phase 2: the shift. Served estimates degrade; the monitor notices.
  Feed(service, controller, s.shift_stream, s.shift_truths);
  DriftReport report = monitor.Check();
  EXPECT_TRUE(report.fired);
  EXPECT_EQ(report.generation, 1u);
  EXPECT_GT(report.median, 2.0);

  double stale_median = MedianQError(*s.model, s.shifted_test);

  // Phase 3: closed-loop adaptation — fine-tune, guard, hot-swap.
  AdaptationResult result = controller.AdaptIfDrifted();
  ASSERT_EQ(result.outcome, AdaptOutcome::kPublished);
  EXPECT_EQ(result.generation, 2u);
  EXPECT_EQ(service.CurrentGeneration(), 2u);
  EXPECT_LT(result.candidate_median, result.incumbent_median);

  // The acceptance bar: >= 2x median q-error improvement on the shifted
  // region (measured ~3x on the dev box; the margin absorbs cross-ISA
  // training-trajectory differences).
  std::shared_ptr<const serve::ModelSnapshot> snap = service.CurrentSnapshot();
  double adapted_median = MedianQError(*snap->model, s.shifted_test);
  EXPECT_LE(adapted_median * 2.0, stale_median)
      << "stale " << stale_median << " vs adapted " << adapted_median;

  // Served answers now come from the adapted snapshot, bit-identical to it.
  for (int i = 0; i < 4; ++i) {
    serve::ServeResult res = service.Estimate(s.shifted_test[static_cast<size_t>(i)].query);
    EXPECT_EQ(res.generation, 2u);
    EXPECT_DOUBLE_EQ(res.card, snap->model->EstimateCard(
                                   s.shifted_test[static_cast<size_t>(i)].query));
  }

  // Per-generation accounting covers every response.
  uint64_t answered = 0;
  for (const auto& [gen, count] : service.AnsweredByGeneration()) answered += count;
  EXPECT_EQ(answered, service.Stats().requests);
  EXPECT_EQ(service.AnsweredForGeneration(1),
            static_cast<uint64_t>(s.warm.size() + s.shift_stream.size()));
}

TEST(OnlineAdaptationE2ETest, BackgroundControllerAdaptsAutonomously) {
  Scenario& s = Shared();
  serve::EstimationService service(s.model);
  FeedbackCollector collector({.capacity = 1024, .seed = kSeed});
  DriftMonitor monitor(MonitorConfig());
  AdaptationConfig cfg = ControllerConfig();
  cfg.period_ms = 5;
  AdaptationController controller(&service, &collector, &monitor, cfg);

  // All feedback lands before the poll thread starts, so the drained
  // mini-workload (and hence the published model) is deterministic; the
  // background thread only decides *when*, not *what*.
  Feed(service, controller, s.shift_stream, s.shift_truths);
  ASSERT_TRUE(monitor.Check().fired);
  double stale_median = MedianQError(*s.model, s.shifted_test);

  controller.Start();
  EXPECT_TRUE(controller.running());
  auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(5);
  while (service.CurrentGeneration() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  controller.Stop();
  EXPECT_FALSE(controller.running());

  ASSERT_EQ(service.CurrentGeneration(), 2u) << "controller never adapted";
  EXPECT_EQ(controller.Stats().published, 1u);
  double adapted_median =
      MedianQError(*service.CurrentSnapshot()->model, s.shifted_test);
  EXPECT_LE(adapted_median * 2.0, stale_median);
}

}  // namespace
}  // namespace uae::online
