// util/: status, rng determinism + distributions, threadpool, math, quantiles,
// CSV round-trip, string helpers.
#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/mathutil.h"
#include "util/quantiles.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/threadpool.h"

namespace uae::util {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad"), std::string::npos);
}

TEST(ResultTest, ValueAndStatus) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::NotFound("missing"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, ZipfSkewsTowardZero) {
  Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[static_cast<size_t>(rng.Zipf(100, 1.2))];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 2000);  // Head value dominates under s=1.2.
  int64_t total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 20000);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(6);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[static_cast<size_t>(rng.Zipf(10, 0.0))];
  for (int c : counts) EXPECT_NEAR(c, 2000, 300);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(8);
  std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / 10000.0, 0.6, 0.03);
  EXPECT_NEAR(counts[1] / 10000.0, 0.3, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(9);
  auto s = rng.SampleWithoutReplacement(1000, 50);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(std::unique(s.begin(), s.end()), s.end());
  EXPECT_EQ(s.size(), 50u);
  for (size_t v : s) EXPECT_LT(v, 1000u);
}

TEST(RngTest, GumbelMeanIsEulerGamma) {
  Rng rng(10);
  double total = 0;
  for (int i = 0; i < 50000; ++i) total += rng.Gumbel();
  EXPECT_NEAR(total / 50000, 0.5772, 0.05);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  std::vector<int> hits(10000, 0);
  ParallelFor(0, hits.size(), [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i] += 1;
  }, /*min_parallel_size=*/64);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(MathTest, LogSumExpStable) {
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogSumExp({0.0, 0.0, 0.0}), std::log(3.0), 1e-12);
}

TEST(MathTest, NormalCdf) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-3);
}

TEST(MathTest, SkewnessSigns) {
  std::vector<double> right_skewed = {1, 1, 1, 1, 2, 2, 3, 10, 20};
  EXPECT_GT(Skewness(right_skewed), 1.0);
  std::vector<double> symmetric = {1, 2, 3, 4, 5, 6, 7};
  EXPECT_NEAR(Skewness(symmetric), 0.0, 1e-9);
}

TEST(MathTest, MutualInformationIdenticalColumns) {
  std::vector<int32_t> a = {0, 1, 2, 0, 1, 2, 0, 1};
  double mi = MutualInformation(a, 3, a, 3);
  EXPECT_NEAR(mi, Entropy(a, 3), 1e-9);
  EXPECT_NEAR(NormalizedMutualInformation(a, 3, a, 3), 1.0, 1e-9);
}

TEST(MathTest, MutualInformationIndependent) {
  // Perfectly independent uniform pair.
  std::vector<int32_t> a, b;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      a.push_back(i);
      b.push_back(j);
    }
  }
  EXPECT_NEAR(MutualInformation(a, 4, b, 4), 0.0, 1e-9);
}

TEST(QuantilesTest, BasicQuantiles) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
}

TEST(QuantilesTest, Summarize) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  ErrorSummary s = Summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_EQ(s.count, 100u);
}

TEST(QuantilesTest, SummarizeBitwiseMatchesPerQuantileSorts) {
  // Regression for the single-sort Summarize: it used to call Quantile()
  // three times (copy + sort each); the one-sort-and-index path must stay
  // BITWISE identical to per-quantile Quantile() calls on the same sample.
  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 501; ++i) {
    xs.push_back(std::exp(rng.Uniform() * 20.0 - 10.0));
  }
  ErrorSummary s = Summarize(xs);
  EXPECT_EQ(s.median, Quantile(xs, 0.5));
  EXPECT_EQ(s.p95, Quantile(xs, 0.95));
  EXPECT_EQ(s.p99, Quantile(xs, 0.99));
}

TEST(QuantilesTest, QuantileSortedMatchesQuantile) {
  std::vector<double> xs = {5, 1, 3, 2, 4, 9, 7};
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(QuantileSorted(sorted, q), Quantile(xs, q)) << "q=" << q;
  }
  EXPECT_EQ(QuantileSorted({}, 0.5), 0.0);
}

TEST(QuantilesTest, FormatErrorDistinguishesNanFromInf) {
  // Regression: NaN used to format as "inf".
  EXPECT_EQ(FormatError(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(FormatError(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(FormatError(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(FormatError(1.0), "1.000");
  EXPECT_EQ(FormatError(123.4), "123.4");
}

TEST(CsvTest, RoundTripWithQuoting) {
  CsvDocument doc;
  doc.header = {"a", "b"};
  doc.rows = {{"1", "hello, world"}, {"2", "with \"quotes\""}};
  std::string path = "/tmp/uae_csv_test.csv";
  ASSERT_TRUE(WriteCsv(path, doc).ok());
  auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().header, doc.header);
  EXPECT_EQ(loaded.value().rows, doc.rows);
  std::filesystem::remove(path);
}

TEST(CsvTest, MissingFileIsError) {
  auto r = ReadCsv("/tmp/definitely_missing_uae.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(StringTest, SplitJoinTrim) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Join({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(Trim("  hi \n"), "hi");
  EXPECT_TRUE(StartsWith("--rows=5", "--"));
  EXPECT_EQ(StrFormat("%d-%s", 3, "a"), "3-a");
}

}  // namespace
}  // namespace uae::util
