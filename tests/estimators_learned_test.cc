// estimators/: the learned baselines — LR (ridge solver + fit), MSCN (base and
// +sampling), and the DeepDB-style SPN (structure + accuracy + weighted
// expectations).
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "estimators/lr.h"
#include "estimators/mscn.h"
#include "estimators/spn.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace uae::estimators {
namespace {

TEST(LrTest, SolveRidgeExact) {
  // Solve [[2,0],[0,4]] x = [2,8] -> x = (1,2) with tiny ridge.
  auto x = SolveRidge({{2, 0}, {0, 4}}, {2, 8}, 1e-9);
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 1.0, 1e-6);
  EXPECT_NEAR(x[1], 2.0, 1e-6);
}

TEST(LrTest, SolveRidgeSingularIsFinite) {
  auto x = SolveRidge({{1, 1}, {1, 1}}, {2, 2}, 1e-6);
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
}

TEST(LrTest, LearnsMonotoneRangeWidths) {
  data::Table t = data::SyntheticCensus(8000, 3);
  workload::GeneratorConfig gc;
  workload::QueryGenerator gen(t, gc, 5);
  auto train = gen.GenerateLabeled(300, nullptr);
  LrEstimator lr(t);
  lr.Train(train);
  // Different ranges produce different (finite, positive) predictions.
  int bc = t.LargestDomainColumn();
  int32_t domain = t.column(bc).domain();
  workload::Query narrow(t.num_cols()), wide(t.num_cols());
  narrow.AddPredicate({bc, workload::Op::kLe, domain / 10, {}}, domain);
  wide.AddPredicate({bc, workload::Op::kLe, domain - 1, {}}, domain);
  EXPECT_GT(lr.EstimateCard(narrow), 0.0);
  EXPECT_GT(lr.EstimateCard(wide), 0.0);
  EXPECT_NE(lr.EstimateCard(narrow), lr.EstimateCard(wide));
  // It achieves nontrivial accuracy on its own training distribution.
  std::vector<double> errors;
  for (const auto& lq : train) {
    errors.push_back(workload::QError(lr.EstimateCard(lq.query), lq.card));
  }
  EXPECT_LT(util::Quantile(errors, 0.5), 8.0);
}

TEST(MscnTest, LearnsTrainingDistribution) {
  data::Table t = data::SyntheticCensus(8000, 7);
  workload::GeneratorConfig gc;
  workload::QueryGenerator gen(t, gc, 9);
  auto train = gen.GenerateLabeled(300, nullptr);
  auto test = gen.GenerateLabeled(60, nullptr);
  MscnConfig mc;
  mc.epochs = 20;
  mc.seed = 3;
  MscnEstimator mscn(t, mc);
  mscn.Train(train);
  std::vector<double> errors;
  for (const auto& lq : test) {
    errors.push_back(workload::QError(mscn.EstimateCard(lq.query), lq.card));
  }
  EXPECT_LT(util::Quantile(errors, 0.5), 6.0) << "MSCN failed to learn";
}

TEST(MscnTest, SamplingFeaturesImproveAccuracy) {
  data::Table t = data::SyntheticDmv(10000, 11);
  workload::GeneratorConfig gc;
  workload::QueryGenerator gen(t, gc, 13);
  auto train = gen.GenerateLabeled(600, nullptr);
  // Random (out-of-workload) test queries: the regime where extra data
  // features help most (§5.2 finding 7).
  workload::GeneratorConfig rc;
  rc.use_bounded = false;
  rc.min_filters = 2;
  workload::QueryGenerator rgen(t, rc, 14);
  auto test = rgen.GenerateLabeled(80, nullptr);

  MscnConfig mc;
  mc.epochs = 20;
  MscnEstimator base(t, mc);
  base.Train(train);
  MscnSamplingEstimator with_sample(t, 1000, mc);
  with_sample.Train(train);
  auto mean_err = [&](const CardinalityEstimator& e) {
    double total = 0;
    for (const auto& lq : test) {
      total += workload::QError(e.EstimateCard(lq.query), lq.card);
    }
    return total / static_cast<double>(test.size());
  };
  EXPECT_LT(mean_err(with_sample), mean_err(base));
}

TEST(MscnTest, ExtraDimValidation) {
  data::Table t = data::TinyCorrelated(500, 15);
  MscnConfig mc;
  mc.extra_dim = 2;
  MscnEstimator mscn(t, mc);
  workload::GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 2;
  workload::QueryGenerator gen(t, gc, 17);
  auto train = gen.GenerateLabeled(20, nullptr);
  std::vector<std::vector<float>> extras(train.size(), {0.5f, 1.f});
  mscn.Train(train, &extras);
  EXPECT_GT(mscn.EstimateCardExtra(train[0].query, {0.5f, 1.f}), 0.0);
}

TEST(SpnTest, ProductSplitOnIndependentColumns) {
  // Two independent columns: the root should be a product (no sum needed
  // above it for estimation accuracy; we check structure has >= 1 product and
  // estimates are accurate).
  util::Rng rng(19);
  size_t n = 6000;
  std::vector<int32_t> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng.UniformInt(0, 9));
    b[i] = static_cast<int32_t>(rng.UniformInt(0, 9));
  }
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", std::move(a), 10));
  cols.push_back(data::Column::FromCodes("b", std::move(b), 10));
  data::Table t("indep", std::move(cols));
  SpnConfig sc;
  SpnEstimator spn(t, sc);
  EXPECT_GE(spn.num_product_nodes(), 1);
  workload::Query q(2);
  q.AddPredicate({0, workload::Op::kLe, 4, {}}, 10);
  q.AddPredicate({1, workload::Op::kGe, 5, {}}, 10);
  double truth = static_cast<double>(workload::ExecuteCount(t, q));
  EXPECT_LT(workload::QError(spn.EstimateCard(q), truth), 1.3);
}

TEST(SpnTest, SumSplitsCaptureCorrelation) {
  data::Table t = data::TinyCorrelated(8000, 21);
  SpnConfig sc;
  sc.min_instances = 256;
  sc.corr_threshold = 0.05;  // Fine-grained: force conditioning.
  SpnEstimator spn(t, sc);
  EXPECT_GE(spn.num_sum_nodes(), 1);
  workload::GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 2;
  workload::QueryGenerator gen(t, gc, 23);
  auto w = gen.GenerateLabeled(40, nullptr);
  std::vector<double> errors;
  for (const auto& lq : w) {
    errors.push_back(workload::QError(spn.EstimateCard(lq.query), lq.card));
  }
  EXPECT_LT(util::Quantile(errors, 0.5), 2.0);
}

TEST(SpnTest, WeightedExpectationAtLeaves) {
  // E[w(v)] with w(v) = 1/(v+1) over a known histogram.
  std::vector<int32_t> f;
  for (int i = 0; i < 1000; ++i) f.push_back(i % 2 == 0 ? 0 : 1);  // Half 0, half 1.
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("fanout", std::move(f), 2));
  data::Table t("w", std::move(cols));
  SpnConfig sc;
  SpnEstimator spn(t, sc);
  workload::Query q(1);
  std::unordered_map<int, std::vector<float>> weights;
  weights[0] = {1.f, 0.5f};
  // E = 0.5*1 + 0.5*0.5 = 0.75.
  EXPECT_NEAR(spn.EstimateSelectivityWeighted(q, weights), 0.75, 1e-6);
}

TEST(SpnTest, SizeIsReported) {
  data::Table t = data::TinyCorrelated(2000, 25);
  SpnConfig sc;
  SpnEstimator spn(t, sc);
  EXPECT_GT(spn.SizeBytes(), 100u);
  EXPECT_GE(spn.num_leaves(), t.num_cols());
}

}  // namespace
}  // namespace uae::estimators
