// Quantized serving path: int8 weight round-trip bounds, quantized-GEMM
// parity against the naive reference kernel, end-to-end q-error degradation
// bounds for a QuantizedUae against its fp32 source, and the publish guard —
// a deliberately corrupted candidate must be refused while the fp32 incumbent
// keeps serving bit-identical answers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/quant.h"
#include "core/uae.h"
#include "data/synthetic.h"
#include "nn/kernels.h"
#include "nn/kernels_ref.h"
#include "online/controller.h"
#include "serve/quantize.h"
#include "serve/service.h"
#include "util/quantiles.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace uae {
namespace {

double QError(double est, double truth) {
  est = std::max(est, 1.0);
  truth = std::max(truth, 1.0);
  return std::max(est / truth, truth / est);
}

TEST(QuantizeKernelTest, RoundTripErrorBoundedByHalfScalePerRow) {
  util::Rng rng(5);
  nn::Mat w = nn::Mat::Gaussian(37, 53, 0.8f, &rng);
  nn::QuantizedMat qm = nn::QuantizePerRowAbsMax(w);
  ASSERT_EQ(qm.rows, w.rows());
  ASSERT_EQ(qm.cols, w.cols());
  nn::Mat back(w.rows(), w.cols());
  nn::Dequantize(qm, &back);
  for (int r = 0; r < w.rows(); ++r) {
    const float scale = qm.scales[static_cast<size_t>(r)];
    // Symmetric absmax: scale spans the row's largest magnitude.
    float absmax = 0.f;
    for (int c = 0; c < w.cols(); ++c) absmax = std::max(absmax, std::abs(w.at(r, c)));
    EXPECT_NEAR(scale * 127.f, absmax, 1e-4f) << "row " << r;
    // Round-to-nearest: every element reconstructs within half a step.
    for (int c = 0; c < w.cols(); ++c) {
      EXPECT_LE(std::abs(back.at(r, c) - w.at(r, c)), 0.5f * scale + 1e-7f)
          << "(" << r << ", " << c << ")";
    }
  }
}

TEST(QuantizeKernelTest, ZeroRowsQuantizeExactly) {
  nn::Mat w(4, 9);  // All-zero rows must not divide by zero and round-trip to 0.
  nn::QuantizedMat qm = nn::QuantizePerRowAbsMax(w);
  nn::Mat back(4, 9);
  nn::Dequantize(qm, &back);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 9; ++c) EXPECT_EQ(back.at(r, c), 0.f);
  }
}

TEST(QuantizeKernelTest, QuantGemmMatchesReferenceKernel) {
  // The tiled int8 GEMM reorders the k-reduction relative to the naive
  // reference; values must agree within accumulation tolerance.
  util::Rng rng(11);
  const std::tuple<int, int, int> shapes[] = {{1, 40, 33}, {5, 64, 17}, {23, 96, 64}};
  for (auto [m, k, n] : shapes) {
    nn::Mat a = nn::Mat::Gaussian(m, k, 1.0f, &rng);
    nn::Mat w = nn::Mat::Gaussian(k, n, 0.5f, &rng);
    nn::QuantizedMat qw = nn::QuantizeColsAsRows(w);
    ASSERT_EQ(qw.rows, n);
    ASSERT_EQ(qw.cols, k);
    nn::Mat c_opt(m, n);
    nn::Mat c_ref(m, n);
    nn::GemmNtQuantAccum(a, qw, &c_opt);
    nn::ref::GemmNtQuantAccum(a, qw, &c_ref);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        EXPECT_NEAR(c_opt.at(i, j), c_ref.at(i, j),
                    1e-4f * (1.f + std::abs(c_ref.at(i, j))))
            << m << "x" << k << "x" << n << " at (" << i << ", " << j << ")";
      }
    }
  }
}

TEST(QuantizeKernelTest, QuantGemmApproximatesFp32Gemm) {
  util::Rng rng(13);
  const int m = 8, k = 64, n = 48;
  nn::Mat a = nn::Mat::Gaussian(m, k, 1.0f, &rng);
  nn::Mat w = nn::Mat::Gaussian(k, n, 0.5f, &rng);
  nn::Mat c_fp(m, n);
  nn::GemmAccum(a, w, &c_fp);
  nn::Mat c_q(m, n);
  nn::GemmNtQuantAccum(a, nn::QuantizeColsAsRows(w), &c_q);
  // Worst-case dequant error per output: k * (scale/2) * mean|a|; use a loose
  // empirical bound that still catches a broken scale or transpose.
  double worst = 0.0;
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      worst = std::max(worst, static_cast<double>(std::abs(c_q.at(i, j) - c_fp.at(i, j))));
    }
  }
  EXPECT_LT(worst, 0.25) << "int8 GEMM drifted far from fp32";
}

struct QuantFixture {
  data::Table table;
  core::Uae uae;
  workload::Workload holdout;

  QuantFixture() : table(data::TinyCorrelated(1500, 3)), uae(table, Config()) {
    uae.TrainDataEpochs(3);
    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 3;
    workload::QueryGenerator gen(table, gc, 53);
    holdout = gen.GenerateLabeled(48, nullptr);
  }

  static core::UaeConfig Config() {
    core::UaeConfig cfg;
    cfg.hidden = 32;
    cfg.ps_samples = 64;
    cfg.seed = 71;
    return cfg;
  }

  std::vector<double> MedianQErrors(const core::ServableModel& model) const {
    std::vector<double> qerrs;
    for (const auto& lq : holdout) {
      qerrs.push_back(QError(model.EstimateCard(lq.query), lq.card));
    }
    return qerrs;
  }
};

QuantFixture& Shared() {
  static QuantFixture* f = new QuantFixture();
  return *f;
}

TEST(QuantizedUaeTest, EndToEndQErrorDegradationBounded) {
  QuantFixture& f = Shared();
  core::QuantizedUae quant(f.uae);
  std::vector<double> fp32 = f.MedianQErrors(f.uae);
  std::vector<double> int8 = f.MedianQErrors(quant);
  const double fp32_median = util::Quantile(fp32, 0.5);
  const double int8_median = util::Quantile(int8, 0.5);
  // Faithful int8 must stay close to its source on the seeded workload; 1.25x
  // median headroom is far above observed drift but catches real breakage.
  EXPECT_LE(int8_median, fp32_median * 1.25)
      << "fp32 median " << fp32_median << " int8 median " << int8_median;
  // And it must genuinely be the compressed plane: ~4x smaller weights.
  EXPECT_LT(quant.SizeBytes(), f.uae.SizeBytes());
}

TEST(QuantizedUaeTest, CloneSharesBackendAndStaysPure) {
  QuantFixture& f = Shared();
  auto quant = std::make_shared<core::QuantizedUae>(f.uae);
  std::shared_ptr<core::ServableModel> clone = quant->CloneServable();
  const auto& q = f.holdout[0].query;
  EXPECT_EQ(clone->EstimateCard(q), quant->EstimateCard(q));
  EXPECT_EQ(clone->SizeBytes(), quant->SizeBytes());
  // Frozen snapshot: fine-tuning routes nothing.
  core::FineTuneSpec spec;
  EXPECT_EQ(clone->FineTune(f.holdout, spec), 0u);
}

TEST(QuantizePublishTest, FaithfulCandidatePublishes) {
  QuantFixture& f = Shared();
  auto fp32 = std::shared_ptr<const core::Uae>(f.uae.Clone());
  serve::EstimationService service(fp32);
  const uint64_t gen0 = service.CurrentGeneration();

  serve::QuantizedPublishOptions opts;
  opts.guard_max_ratio = 1.25;  // Same headroom as the degradation bound.
  auto candidate = std::make_shared<core::QuantizedUae>(f.uae);
  serve::QuantizedPublishResult res =
      serve::PublishQuantizedSnapshot(&service, candidate, f.holdout, opts);
  EXPECT_TRUE(res.published);
  EXPECT_EQ(res.generation, gen0 + 1);
  EXPECT_EQ(service.CurrentGeneration(), gen0 + 1);
  // The served plane is now the quantized snapshot.
  const auto& q = f.holdout[0].query;
  EXPECT_EQ(service.EstimateCard(q), candidate->EstimateCard(q));
}

TEST(QuantizePublishTest, CorruptedCandidateIsRefusedAndIncumbentKeepsServing) {
  QuantFixture& f = Shared();
  auto fp32 = std::shared_ptr<const core::Uae>(f.uae.Clone());
  serve::EstimationService service(fp32);
  const uint64_t gen0 = service.CurrentGeneration();

  // Blow up every dequantization scale: estimates become garbage, the holdout
  // guard must refuse, and nothing about the served snapshot may change.
  core::QuantizeOptions bad;
  bad.scale_multiplier = 64.f;
  auto candidate = std::make_shared<core::QuantizedUae>(f.uae, bad);
  serve::QuantizedPublishResult res =
      serve::PublishQuantizedSnapshot(&service, candidate, f.holdout);
  EXPECT_FALSE(res.published);
  EXPECT_EQ(res.generation, 0u);
  EXPECT_GT(res.candidate_median, res.incumbent_median);
  EXPECT_EQ(service.CurrentGeneration(), gen0);

  // Incumbent answers stay bit-identical to the pre-publish fp32 estimates.
  for (size_t i = 0; i < 8; ++i) {
    const auto& q = f.holdout[i].query;
    EXPECT_EQ(service.EstimateCard(q), fp32->EstimateCard(q)) << "query " << i;
  }

  // An empty holdout proves nothing and must also refuse.
  serve::QuantizedPublishResult empty_res = serve::PublishQuantizedSnapshot(
      &service, std::make_shared<core::QuantizedUae>(f.uae), {});
  EXPECT_FALSE(empty_res.published);
  EXPECT_EQ(service.CurrentGeneration(), gen0);
}

}  // namespace
}  // namespace uae
