// online/feedback: the concurrent labeled-feedback buffer — retention
// policies (sliding window vs seeded reservoir), drain semantics,
// buffer -> Workload conversion, and thread safety.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "online/feedback.h"

namespace uae::online {
namespace {

/// An entry whose true_card encodes its arrival index (queries irrelevant).
FeedbackEntry Entry(int i, uint64_t generation = 1) {
  FeedbackEntry e;
  e.query = workload::Query(2);
  e.query.AddPredicate({0, workload::Op::kEq, static_cast<int32_t>(i % 7), {}}, 8);
  e.true_card = static_cast<double>(i);
  e.estimated_card = static_cast<double>(i) * 2.0;
  e.generation = generation;
  return e;
}

std::vector<double> Cards(const std::vector<FeedbackEntry>& entries) {
  std::vector<double> out;
  for (const auto& e : entries) out.push_back(e.true_card);
  return out;
}

TEST(FeedbackCollectorTest, SlidingWindowKeepsNewestInArrivalOrder) {
  FeedbackCollector collector({.capacity = 4, .policy = FeedbackPolicy::kSlidingWindow});
  for (int i = 0; i < 7; ++i) collector.Add(Entry(i));
  EXPECT_EQ(collector.Size(), 4u);
  EXPECT_EQ(collector.TotalObserved(), 7u);
  EXPECT_EQ(Cards(collector.Snapshot()), (std::vector<double>{3, 4, 5, 6}));
}

TEST(FeedbackCollectorTest, PartialBufferIsArrivalOrdered) {
  FeedbackCollector collector({.capacity = 8});
  for (int i = 0; i < 3; ++i) collector.Add(Entry(i));
  EXPECT_EQ(Cards(collector.Snapshot()), (std::vector<double>{0, 1, 2}));
}

TEST(FeedbackCollectorTest, ReservoirIsBoundedAndSeedDeterministic) {
  FeedbackConfig cfg{.capacity = 8, .policy = FeedbackPolicy::kReservoir, .seed = 5};
  FeedbackCollector a(cfg), b(cfg);
  for (int i = 0; i < 200; ++i) {
    a.Add(Entry(i));
    b.Add(Entry(i));
  }
  EXPECT_EQ(a.Size(), 8u);
  EXPECT_EQ(a.TotalObserved(), 200u);
  // Same seed + same stream => identical reservoir contents.
  EXPECT_EQ(Cards(a.Snapshot()), Cards(b.Snapshot()));
  // The reservoir must not just keep the first (or last) capacity entries.
  std::vector<double> kept = Cards(a.Snapshot());
  EXPECT_TRUE(std::any_of(kept.begin(), kept.end(), [](double c) { return c >= 8; }));
}

TEST(FeedbackCollectorTest, ReservoirKeepsSamplingAfterDrain) {
  FeedbackConfig cfg{.capacity = 8, .policy = FeedbackPolicy::kReservoir, .seed = 5};
  FeedbackCollector collector(cfg);
  for (int i = 0; i < 500; ++i) collector.Add(Entry(i));
  EXPECT_EQ(collector.Drain().size(), 8u);
  // The reservoir restarts over the post-drain stream: it must refill and
  // keep admitting late entries (with a lifetime denominator it would accept
  // entry n with probability 8/(500+n) and effectively freeze on the first 8).
  for (int i = 1000; i < 1200; ++i) collector.Add(Entry(i));
  std::vector<double> kept = Cards(collector.Snapshot());
  EXPECT_EQ(kept.size(), 8u);
  for (double c : kept) EXPECT_GE(c, 1000.0);  // All from the new stream...
  EXPECT_TRUE(std::any_of(kept.begin(), kept.end(),
                          [](double c) { return c >= 1008; }));  // ...not just
  // the first `capacity` of it.
}

TEST(FeedbackCollectorTest, DrainEmptiesAndReturnsEverything) {
  FeedbackCollector collector({.capacity = 16});
  for (int i = 0; i < 5; ++i) collector.Add(Entry(i));
  std::vector<FeedbackEntry> drained = collector.Drain();
  EXPECT_EQ(drained.size(), 5u);
  EXPECT_EQ(collector.Size(), 0u);
  EXPECT_EQ(collector.TotalObserved(), 5u);  // Observation count survives.
  // The ring restarts cleanly after a drain.
  for (int i = 10; i < 13; ++i) collector.Add(Entry(i));
  EXPECT_EQ(Cards(collector.Snapshot()), (std::vector<double>{10, 11, 12}));
}

TEST(FeedbackCollectorTest, ToWorkloadDerivesSelectivities) {
  FeedbackCollector collector({.capacity = 8});
  collector.Add(Entry(3));
  collector.Add(Entry(10));
  workload::Workload w = collector.SnapshotWorkload(/*num_rows=*/100);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0].card, 3.0);
  EXPECT_DOUBLE_EQ(w[0].selectivity, 0.03);
  EXPECT_DOUBLE_EQ(w[1].card, 10.0);
  EXPECT_DOUBLE_EQ(w[1].selectivity, 0.10);
  EXPECT_EQ(w[0].query.Fingerprint(), Entry(3).query.Fingerprint());
}

TEST(FeedbackCollectorTest, ConcurrentAddsLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  FeedbackCollector collector({.capacity = kThreads * kPerThread});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        collector.Add(Entry(t * kPerThread + i, static_cast<uint64_t>(t)));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(collector.Size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(collector.TotalObserved(), static_cast<uint64_t>(kThreads * kPerThread));
  // Every entry arrived exactly once, whatever the interleaving.
  std::vector<double> cards = Cards(collector.Snapshot());
  std::set<double> unique(cards.begin(), cards.end());
  EXPECT_EQ(unique.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST(FeedbackCollectorTest, ConcurrentAddsUnderEvictionStayBounded) {
  FeedbackCollector collector(
      {.capacity = 64, .policy = FeedbackPolicy::kReservoir, .seed = 3});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 1000; ++i) collector.Add(Entry(i, static_cast<uint64_t>(t)));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(collector.Size(), 64u);
  EXPECT_EQ(collector.TotalObserved(), 4000u);
}

}  // namespace
}  // namespace uae::online
