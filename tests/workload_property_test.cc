// Property-based round-trip and fuzz tests for workload/parser and
// workload/persistence:
//  * parse -> print -> parse: FormatQuery output re-parses to a BITWISE
//    identical query, for seeded random queries over every constraint kind
//    (ranges incl. boundary codes, equality, !=, IN-lists, intersections)
//    over int and string dictionaries;
//  * Save -> Load: persisted workloads reload bitwise (constraints and
//    %.17g-printed cards/selectivities), including degenerate constraints;
//  * fuzz: mutated CSV lines and garbage predicate text must come back as
//    util::Status — never a crash or an uncaught exception.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/column.h"
#include "data/table.h"
#include "util/rng.h"
#include "workload/parser.h"
#include "workload/persistence.h"
#include "workload/query.h"

namespace uae::workload {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// A table covering the dictionary shapes the grammar must survive: int
/// columns (incl. a single-value domain and negative values), and a string
/// column with quotes-free values.
data::Table PropertyTable() {
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromInts("small", {0, 1, 2, 0, 1, 2, 1}));
  cols.push_back(data::Column::FromInts("single", {7, 7, 7, 7, 7, 7, 7}));
  cols.push_back(data::Column::FromInts(
      "wide", {-100, -3, 0, 5, 19, 400, 100000}));
  cols.push_back(data::Column::FromValues(
      "label", {data::Value(std::string("alpha")), data::Value(std::string("beta")),
                data::Value(std::string("gamma x")), data::Value(std::string("delta")),
                data::Value(std::string("eps_1")), data::Value(std::string("zeta")),
                data::Value(std::string("eta"))}));
  return data::Table("prop", std::move(cols));
}

bool SameConstraint(const Constraint& a, const Constraint& b) {
  return a.kind == b.kind && a.lo == b.lo && a.hi == b.hi && a.neq == b.neq &&
         a.in_codes == b.in_codes;
}

bool SameQuery(const Query& a, const Query& b) {
  if (a.num_cols() != b.num_cols()) return false;
  for (int c = 0; c < a.num_cols(); ++c) {
    if (!SameConstraint(a.constraint(c), b.constraint(c))) return false;
  }
  return true;
}

/// Seeded random query built through AddPredicate (so it is normalized the
/// same way parsed queries are). Exercises all kinds and boundary codes.
Query RandomQuery(const data::Table& t, util::Rng* rng) {
  Query q(t.num_cols());
  for (int c = 0; c < t.num_cols(); ++c) {
    const int32_t domain = t.column(c).domain();
    if (rng->Bernoulli(0.35)) continue;  // Unconstrained column.
    auto code = [&]() -> int32_t {
      // Bias toward boundary values.
      double u = rng->Uniform();
      if (u < 0.15) return 0;
      if (u < 0.3) return domain - 1;
      return static_cast<int32_t>(rng->UniformInt(0, domain - 1));
    };
    switch (rng->UniformInt(0, 4)) {
      case 0:
        q.AddPredicate({c, Op::kEq, code(), {}}, domain);
        break;
      case 1: {  // Two-sided range, lo <= hi.
        int32_t a = code(), b = code();
        if (a > b) std::swap(a, b);
        q.AddPredicate({c, Op::kGe, a, {}}, domain);
        q.AddPredicate({c, Op::kLe, b, {}}, domain);
        break;
      }
      case 2: {  // One-sided range, kept non-empty.
        if (rng->Bernoulli(0.5)) {
          q.AddPredicate({c, Op::kLe, code(), {}}, domain);
        } else {
          q.AddPredicate({c, Op::kGe, code(), {}}, domain);
        }
        break;
      }
      case 3:
        q.AddPredicate({c, Op::kNeq, code(), {}}, domain);
        break;
      default: {  // IN-list, possibly unsorted with duplicates.
        std::vector<int32_t> codes;
        int k = static_cast<int>(rng->UniformInt(1, std::min<int32_t>(domain, 5)));
        for (int i = 0; i < k; ++i) codes.push_back(code());
        q.AddPredicate({c, Op::kIn, 0, std::move(codes)}, domain);
        break;
      }
    }
  }
  return q;
}

bool HasEmptyConstraint(const data::Table& t, const Query& q) {
  for (int c = 0; c < q.num_cols(); ++c) {
    if (q.constraint(c).IsActive() &&
        q.constraint(c).IsEmpty(t.column(c).domain())) {
      return true;
    }
  }
  return false;
}

TEST(ParserPropertyTest, FormatParseRoundTripIsBitwiseFixpoint) {
  data::Table t = PropertyTable();
  util::Rng rng(2024);
  int checked = 0;
  for (int iter = 0; iter < 400; ++iter) {
    Query q = RandomQuery(t, &rng);
    if (HasEmptyConstraint(t, q)) continue;  // Not expressible in the grammar.
    auto text = FormatQuery(t, q);
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    auto parsed = ParseQuery(t, text.value());
    ASSERT_TRUE(parsed.ok()) << "'" << text.value()
                             << "': " << parsed.status().ToString();
    EXPECT_TRUE(SameQuery(q, parsed.value())) << "'" << text.value() << "'";
    EXPECT_EQ(q.Fingerprint(), parsed.value().Fingerprint());
    // print(parse(print(q))) == print(q): the text form is a fixpoint too.
    auto text2 = FormatQuery(t, parsed.value());
    ASSERT_TRUE(text2.ok());
    EXPECT_EQ(text.value(), text2.value());
    ++checked;
  }
  EXPECT_GT(checked, 300);  // The skip path must stay rare.
}

TEST(ParserPropertyTest, FormatRejectsInexpressibleConstraints) {
  data::Table t = PropertyTable();
  // Empty range.
  Query empty(t.num_cols());
  empty.AddPredicate({0, Op::kLt, 0, {}}, t.column(0).domain());
  EXPECT_FALSE(FormatQuery(t, empty).ok());
  // Out-of-dictionary range bounds would silently normalize through the
  // round trip (lo=-3 reparsing as lo=0) — they must be rejected instead.
  Query oob(t.num_cols());
  oob.mutable_constraint(2).kind = Constraint::Kind::kRange;
  oob.mutable_constraint(2).lo = -3;
  oob.mutable_constraint(2).hi = 4;
  EXPECT_FALSE(FormatQuery(t, oob).ok());
  oob.mutable_constraint(2).lo = 0;
  oob.mutable_constraint(2).hi = t.column(2).domain() + 5;
  EXPECT_FALSE(FormatQuery(t, oob).ok());
  // Column-count mismatch.
  EXPECT_FALSE(FormatQuery(t, Query(2)).ok());
  // Unconstrained query renders as "" and parses back unconstrained.
  auto blank = FormatQuery(t, Query(t.num_cols()));
  ASSERT_TRUE(blank.ok());
  EXPECT_EQ(blank.value(), "");
  auto parsed = ParseQuery(t, blank.value());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().NumConstrained(), 0);
}

TEST(ParserPropertyTest, FuzzedPredicateTextReturnsStatusNotCrash) {
  data::Table t = PropertyTable();
  util::Rng rng(77);
  const std::string charset =
      "abyz_019 =!<>()',\".-+AND IN BETWEEN\t%$\\\xff\x01";
  int parsed_ok = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::string text;
    int len = static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < len; ++i) {
      text += charset[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(charset.size()) - 1))];
    }
    auto result = ParseQuery(t, text);  // Must not throw or abort.
    parsed_ok += result.ok() ? 1 : 0;
  }
  // Plenty of rejects happened (the corpus is mostly garbage).
  EXPECT_LT(parsed_ok, 1500);
}

TEST(ParserPropertyTest, MutatedValidPredicatesReturnStatusNotCrash) {
  data::Table t = PropertyTable();
  util::Rng rng(123);
  for (int iter = 0; iter < 200; ++iter) {
    Query q = RandomQuery(t, &rng);
    if (HasEmptyConstraint(t, q)) continue;
    auto text_or = FormatQuery(t, q);
    ASSERT_TRUE(text_or.ok());
    std::string text = text_or.value();
    if (text.empty()) continue;
    // A handful of single-edit mutants per valid string: substitution,
    // insertion, deletion, truncation — including pathological numbers.
    for (int m = 0; m < 8; ++m) {
      std::string mutant = text;
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutant.size()) - 1));
      switch (rng.UniformInt(0, 3)) {
        case 0:
          mutant[pos] = static_cast<char>(rng.UniformInt(1, 255));
          break;
        case 1:
          mutant.insert(pos, std::string(static_cast<size_t>(rng.UniformInt(1, 30)),
                                         '9'));
          break;
        case 2:
          mutant.erase(pos, 1);
          break;
        default:
          mutant.resize(pos);
          break;
      }
      (void)ParseQuery(t, mutant);  // Status either way; never a crash.
    }
  }
  // A huge numeric literal must come back as Status, not std::out_of_range.
  std::string huge = "wide <= 9" + std::string(400, '9');
  EXPECT_FALSE(ParseQuery(t, huge).ok());
  EXPECT_FALSE(ParseQuery(t, huge + ".5").ok());
}

Workload RandomWorkload(const data::Table& t, util::Rng* rng, size_t count) {
  Workload w;
  for (size_t i = 0; i < count; ++i) {
    LabeledQuery lq;
    lq.query = RandomQuery(t, rng);
    // Cards across the double range, incl. values that need all 17 digits.
    switch (rng->UniformInt(0, 3)) {
      case 0:
        lq.card = static_cast<double>(rng->UniformInt(0, 1 << 30));
        break;
      case 1:
        lq.card = rng->Uniform(0.0, 1e300);
        break;
      case 2:
        lq.card = rng->Uniform(0.0, 1.0) * 1e-300;
        break;
      default:
        lq.card = rng->Uniform(0.0, 1e6);
        break;
    }
    lq.selectivity = rng->Uniform();
    w.push_back(lq);
  }
  return w;
}

TEST(PersistencePropertyTest, SaveLoadIsBitwiseFixpoint) {
  data::Table t = PropertyTable();
  util::Rng rng(31337);
  const std::string path = TempPath("uae_workload_property.csv");
  for (int round = 0; round < 8; ++round) {
    Workload w = RandomWorkload(t, &rng, 24);
    ASSERT_TRUE(SaveWorkload(w, t.num_cols(), path).ok());
    auto loaded = LoadWorkload(path, t.num_cols());
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded.value().size(), w.size());
    for (size_t i = 0; i < w.size(); ++i) {
      EXPECT_TRUE(SameQuery(w[i].query, loaded.value()[i].query)) << i;
      // %.17g round-trips doubles exactly.
      EXPECT_EQ(w[i].card, loaded.value()[i].card) << i;
      EXPECT_EQ(w[i].selectivity, loaded.value()[i].selectivity) << i;
    }
    // Save(Load(Save(w))) produces byte-identical CSV.
    std::string first;
    {
      std::ifstream in(path);
      std::stringstream ss;
      ss << in.rdbuf();
      first = ss.str();
    }
    ASSERT_TRUE(SaveWorkload(loaded.value(), t.num_cols(), path).ok());
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(first, ss.str());
  }
  std::filesystem::remove(path);
}

TEST(PersistencePropertyTest, FuzzedCsvLinesReturnStatusNotCrash) {
  data::Table t = PropertyTable();
  util::Rng rng(999);
  Workload w = RandomWorkload(t, &rng, 12);
  const std::string path = TempPath("uae_workload_fuzz_base.csv");
  ASSERT_TRUE(SaveWorkload(w, t.num_cols(), path).ok());
  std::string base;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    base = ss.str();
  }
  ASSERT_FALSE(base.empty());
  // The unmodified file loads; seeded single-edit mutants must never crash.
  ASSERT_TRUE(LoadWorkload(path, t.num_cols()).ok());
  const std::string mutant_path = TempPath("uae_workload_fuzz_mutant.csv");
  int rejected = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string mutant = base;
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(mutant.size()) - 1));
    switch (rng.UniformInt(0, 4)) {
      case 0:
        mutant[pos] = static_cast<char>(rng.UniformInt(1, 255));
        break;
      case 1:
        mutant.insert(pos, 1, static_cast<char>(rng.UniformInt(32, 126)));
        break;
      case 2:
        mutant.erase(pos, std::min<size_t>(mutant.size() - pos,
                                           static_cast<size_t>(rng.UniformInt(1, 40))));
        break;
      case 3:
        mutant.insert(pos, std::string(static_cast<size_t>(rng.UniformInt(1, 50)),
                                       '9'));
        break;
      default: {  // Swap two random lines.
        std::vector<std::string> lines;
        std::stringstream ss(mutant);
        std::string line;
        while (std::getline(ss, line)) lines.push_back(line);
        if (lines.size() >= 2) {
          size_t a = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(lines.size()) - 1));
          size_t b = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(lines.size()) - 1));
          std::swap(lines[a], lines[b]);
          mutant.clear();
          for (const auto& l : lines) mutant += l + "\n";
        }
        break;
      }
    }
    {
      std::ofstream out(mutant_path, std::ios::trunc);
      out << mutant;
    }
    auto result = LoadWorkload(mutant_path, t.num_cols());  // No crash/throw.
    rejected += result.ok() ? 0 : 1;
  }
  // The format has real integrity checks: most single edits are caught.
  EXPECT_GT(rejected, 100);
  std::filesystem::remove(path);
  std::filesystem::remove(mutant_path);
}

TEST(PersistencePropertyTest, SpecificMalformedShapesAreRejected) {
  data::Table t = PropertyTable();
  const std::string path = TempPath("uae_workload_malformed_shapes.csv");
  auto load_text = [&](const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    out << "query_id,col,kind,lo,hi,neq,in_codes\n" << text;
    out.close();
    return LoadWorkload(path, t.num_cols());
  };
  EXPECT_FALSE(load_text("0,0,range,1\n").ok());             // Too few fields.
  EXPECT_FALSE(load_text("0,0,blob,1,2,-1,\n").ok());        // Unknown kind.
  EXPECT_FALSE(load_text("0,9,range,1,2,-1,\n").ok());       // Column overflow.
  EXPECT_FALSE(load_text("5,0,range,1,2,-1,\n").ok());       // Out-of-order id.
  EXPECT_FALSE(load_text("0,0,range,x,2,-1,\n").ok());       // Bad integer.
  EXPECT_FALSE(load_text("0,-1,card,1e,0.5,,\n").ok());      // Bad double.
  EXPECT_FALSE(load_text("0,0,in,0,0,-1,1|x|3\n").ok());     // Bad IN code.
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace uae::workload
