// workload/persistence: SaveWorkload/LoadWorkload round-trips (every
// constraint kind, IN-lists, cardinalities bitwise) and malformed-CSV
// rejection.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "data/synthetic.h"
#include "workload/generator.h"
#include "workload/persistence.h"

namespace uae::workload {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// All four constraint kinds (and an empty IN-list edge) across three
/// queries, with cardinalities that exercise the %.17g round-trip.
Workload MixedWorkload(int num_cols) {
  Workload w;
  {
    LabeledQuery lq;
    lq.query = Query(num_cols);
    Constraint& range = lq.query.mutable_constraint(0);
    range.kind = Constraint::Kind::kRange;
    range.lo = -3;
    range.hi = 17;
    Constraint& neq = lq.query.mutable_constraint(1);
    neq.kind = Constraint::Kind::kNotEqual;
    neq.neq = 5;
    lq.card = 12345.0;
    lq.selectivity = 12345.0 / 77777.0;  // Not exactly representable.
    w.push_back(lq);
  }
  {
    LabeledQuery lq;
    lq.query = Query(num_cols);
    Constraint& in = lq.query.mutable_constraint(2);
    in.kind = Constraint::Kind::kIn;
    in.in_codes = {0, 7, 19, 2047};
    lq.card = 1.0 / 3.0;  // Join cards are weighted doubles.
    lq.selectivity = 1e-9;
    w.push_back(lq);
  }
  {
    LabeledQuery lq;  // Fully unconstrained query, zero cardinality.
    lq.query = Query(num_cols);
    lq.card = 0.0;
    lq.selectivity = 0.0;
    w.push_back(lq);
  }
  return w;
}

void ExpectSameWorkload(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    // Bitwise: %.17g round-trips doubles exactly.
    EXPECT_EQ(a[i].card, b[i].card);
    EXPECT_EQ(a[i].selectivity, b[i].selectivity);
    ASSERT_EQ(a[i].query.num_cols(), b[i].query.num_cols());
    EXPECT_EQ(a[i].query.Fingerprint(), b[i].query.Fingerprint());
    for (int c = 0; c < a[i].query.num_cols(); ++c) {
      const Constraint& ca = a[i].query.constraint(c);
      const Constraint& cb = b[i].query.constraint(c);
      EXPECT_EQ(ca.kind, cb.kind);
      if (ca.kind == Constraint::Kind::kRange) {
        EXPECT_EQ(ca.lo, cb.lo);
        EXPECT_EQ(ca.hi, cb.hi);
      }
      if (ca.kind == Constraint::Kind::kNotEqual) {
        EXPECT_EQ(ca.neq, cb.neq);
      }
      if (ca.kind == Constraint::Kind::kIn) {
        EXPECT_EQ(ca.in_codes, cb.in_codes);
      }
    }
  }
}

TEST(WorkloadPersistenceTest, RoundTripAllConstraintKinds) {
  const std::string path = TempPath("uae_workload_mixed.csv");
  Workload original = MixedWorkload(4);
  ASSERT_TRUE(SaveWorkload(original, 4, path).ok());
  auto loaded = LoadWorkload(path, 4);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ExpectSameWorkload(original, loaded.value());
  std::filesystem::remove(path);
}

TEST(WorkloadPersistenceTest, RoundTripGeneratedWorkload) {
  const std::string path = TempPath("uae_workload_generated.csv");
  data::Table t = data::SyntheticDmv(2000, 17);
  GeneratorConfig gc;
  gc.min_filters = 1;
  QueryGenerator gen(t, gc, 29);
  Workload original = gen.GenerateLabeled(40, nullptr);
  ASSERT_TRUE(SaveWorkload(original, t.num_cols(), path).ok());
  auto loaded = LoadWorkload(path, t.num_cols());
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ExpectSameWorkload(original, loaded.value());
  std::filesystem::remove(path);
}

TEST(WorkloadPersistenceTest, SaveRejectsColumnCountMismatch) {
  const std::string path = TempPath("uae_workload_mismatch.csv");
  Workload w = MixedWorkload(4);
  EXPECT_FALSE(SaveWorkload(w, 6, path).ok());
}

class MalformedCsvTest : public ::testing::Test {
 protected:
  /// Writes `body` under the canonical header and loads it with num_cols=4.
  util::Result<Workload> LoadBody(const std::string& body) {
    path_ = TempPath("uae_workload_malformed.csv");
    std::ofstream out(path_);
    out << "query_id,col,kind,lo,hi,neq,in_codes\n" << body;
    out.close();
    return LoadWorkload(path_, 4);
  }
  void TearDown() override {
    if (!path_.empty()) std::filesystem::remove(path_);
  }
  std::string path_;
};

TEST_F(MalformedCsvTest, MissingFileFails) {
  EXPECT_FALSE(LoadWorkload(TempPath("uae_no_such_file.csv"), 4).ok());
}

TEST_F(MalformedCsvTest, WrongFieldCountRejected) {
  EXPECT_FALSE(LoadBody("0,0,range,1\n").ok());
}

TEST_F(MalformedCsvTest, BadIntegerRejected) {
  EXPECT_FALSE(LoadBody("0,zero,range,1,2,,\n").ok());
  EXPECT_FALSE(LoadBody("0,0,range,low,2,,\n").ok());
  EXPECT_FALSE(LoadBody("0,0,neq,,,x7,\n").ok());
  EXPECT_FALSE(LoadBody("0,0,in,,,,1|two|3\n").ok());
}

TEST_F(MalformedCsvTest, BadCardinalityRejected) {
  EXPECT_FALSE(LoadBody("0,-1,card,ten,0.1,,\n").ok());
  EXPECT_FALSE(LoadBody("0,-1,card,10,many,,\n").ok());
}

TEST_F(MalformedCsvTest, UnknownKindRejected) {
  EXPECT_FALSE(LoadBody("0,0,between,1,2,,\n").ok());
}

TEST_F(MalformedCsvTest, ColumnOutOfRangeRejected) {
  EXPECT_FALSE(LoadBody("0,9,range,1,2,,\n").ok());
  EXPECT_FALSE(LoadBody("0,-2,range,1,2,,\n").ok());
}

TEST_F(MalformedCsvTest, OutOfOrderQueryIdsRejected) {
  EXPECT_FALSE(LoadBody("1,0,range,1,2,,\n").ok());
}

TEST_F(MalformedCsvTest, ValidBodyStillLoads) {
  auto loaded = LoadBody("0,0,range,1,2,,\n0,-1,card,10,0.005,,\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].card, 10.0);
}

}  // namespace
}  // namespace uae::workload
