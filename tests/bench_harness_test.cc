// bench/: the shared harness — flag parsing and dataset dispatch.
#include <gtest/gtest.h>

#include "bench/harness.h"

namespace uae::bench {
namespace {

TEST(FlagsTest, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "--rows=5000", "--lambda=0.01", "--name=dmv",
                        "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("rows", 0), 5000);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lambda", 0.0), 0.01);
  EXPECT_EQ(flags.GetString("name", ""), "dmv");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  // Defaults for absent keys.
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_EQ(flags.GetString("missing", "x"), "x");
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagsTest, IgnoresNonFlagArguments) {
  const char* argv[] = {"prog", "positional", "-single-dash", "--ok=1"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("ok", 0), 1);
  EXPECT_EQ(flags.GetInt("positional", 3), 3);
}

TEST(BenchConfigTest, FromFlagsOverrides) {
  const char* argv[] = {"prog", "--rows=123", "--epochs=9", "--hidden=32"};
  Flags flags(4, const_cast<char**>(argv));
  BenchConfig config = BenchConfig::FromFlags(flags);
  EXPECT_EQ(config.rows, 123u);
  EXPECT_EQ(config.uae_epochs, 9);
  EXPECT_EQ(config.hidden, 32);
  core::UaeConfig uc = config.ToUaeConfig();
  EXPECT_EQ(uc.hidden, 32);
}

TEST(BenchDatasetTest, DispatchesByName) {
  data::Table dmv = BuildDataset("dmv", 500, 1);
  EXPECT_EQ(dmv.num_cols(), 11);
  data::Table census = BuildDataset("census", 500, 1);
  EXPECT_EQ(census.num_cols(), 14);
  data::Table kdd = BuildDataset("kdd", 500, 1);
  EXPECT_EQ(kdd.num_cols(), 100);
}

}  // namespace
}  // namespace uae::bench
