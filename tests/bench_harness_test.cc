// bench/: the shared harness — flag parsing, dataset dispatch, and the
// hoisted-workload evaluation path (prepare once, evaluate many estimator
// rows).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <vector>

#include "bench/harness.h"
#include "data/synthetic.h"
#include "estimators/oracle.h"
#include "util/quantiles.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace uae::bench {
namespace {

TEST(FlagsTest, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "--rows=5000", "--lambda=0.01", "--name=dmv",
                        "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("rows", 0), 5000);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lambda", 0.0), 0.01);
  EXPECT_EQ(flags.GetString("name", ""), "dmv");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  // Defaults for absent keys.
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_EQ(flags.GetString("missing", "x"), "x");
  EXPECT_FALSE(flags.GetBool("missing", false));
}

TEST(FlagsTest, IgnoresNonFlagArguments) {
  const char* argv[] = {"prog", "positional", "-single-dash", "--ok=1"};
  Flags flags(4, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("ok", 0), 1);
  EXPECT_EQ(flags.GetInt("positional", 3), 3);
}

TEST(BenchConfigTest, FromFlagsOverrides) {
  const char* argv[] = {"prog", "--rows=123", "--epochs=9", "--hidden=32"};
  Flags flags(4, const_cast<char**>(argv));
  BenchConfig config = BenchConfig::FromFlags(flags);
  EXPECT_EQ(config.rows, 123u);
  EXPECT_EQ(config.uae_epochs, 9);
  EXPECT_EQ(config.hidden, 32);
  core::UaeConfig uc = config.ToUaeConfig();
  EXPECT_EQ(uc.hidden, 32);
}

TEST(BenchDatasetTest, DispatchesByName) {
  data::Table dmv = BuildDataset("dmv", 500, 1);
  EXPECT_EQ(dmv.num_cols(), 11);
  data::Table census = BuildDataset("census", 500, 1);
  EXPECT_EQ(census.num_cols(), 14);
  data::Table kdd = BuildDataset("kdd", 500, 1);
  EXPECT_EQ(kdd.num_cols(), 100);
}

/// Counts the per-workload evaluation work an estimator row triggers — the
/// regression the PreparedWorkload hoist fixes: setup must happen once per
/// workload, not once per (estimator row x workload).
class CountingEstimator : public estimators::CardinalityEstimator {
 public:
  explicit CountingEstimator(double card) : card_(card) {}
  std::string name() const override { return "counting"; }
  double EstimateCard(const workload::Query&) const override {
    single_calls.fetch_add(1);
    return card_;
  }
  std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const override {
    batch_calls.fetch_add(1);
    batched_queries.fetch_add(queries.size());
    return std::vector<double>(queries.size(), card_);
  }
  size_t SizeBytes() const override { return 0; }

  mutable std::atomic<int> single_calls{0};
  mutable std::atomic<int> batch_calls{0};
  mutable std::atomic<size_t> batched_queries{0};

 private:
  double card_;
};

struct HarnessFixture {
  data::Table table = data::TinyCorrelated(400, 3);
  workload::Workload in_workload, random_workload;

  HarnessFixture() {
    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 2;
    workload::QueryGenerator gen(table, gc, 9);
    for (int i = 0; i < 12; ++i) {
      workload::LabeledQuery lq;
      lq.query = gen.Generate();
      lq.card = static_cast<double>(workload::ExecuteCount(table, lq.query));
      (i % 2 == 0 ? in_workload : random_workload).push_back(lq);
    }
  }
};

TEST(EvaluateEstimatorTest, PreparedPathMatchesLegacyPathExactly) {
  HarnessFixture f;
  estimators::OracleEstimator oracle(f.table);
  ResultRow legacy =
      EvaluateEstimator("oracle", oracle, f.in_workload, f.random_workload);
  PreparedWorkload prep_in = PrepareWorkload(f.in_workload);
  PreparedWorkload prep_random = PrepareWorkload(f.random_workload);
  ResultRow prepared = EvaluateEstimator("oracle", oracle, prep_in, prep_random);
  EXPECT_DOUBLE_EQ(legacy.in_workload.mean, prepared.in_workload.mean);
  EXPECT_DOUBLE_EQ(legacy.in_workload.median, prepared.in_workload.median);
  EXPECT_DOUBLE_EQ(legacy.in_workload.max, prepared.in_workload.max);
  EXPECT_DOUBLE_EQ(legacy.random.mean, prepared.random.mean);
  EXPECT_DOUBLE_EQ(legacy.random.max, prepared.random.max);
  EXPECT_EQ(legacy.size_bytes, prepared.size_bytes);
}

TEST(QuantileAggregationTest, HarnessQuantilesAreSharedUtilQuantiles) {
  // Regression pin: every bench aggregation routes through util/quantiles —
  // no bench keeps a private nearest-rank copy. On a fixed vector the shared
  // linear-interpolation quantile is pinned exactly, and where a nearest-rank
  // reimplementation would diverge (even-count medians) we assert the
  // divergence, so reintroducing one cannot silently pass.
  const std::vector<double> odd = {5.0, 1.0, 9.0, 3.0, 7.0};
  // Odd count: interpolation and nearest-rank agree on the median.
  EXPECT_DOUBLE_EQ(util::Quantile(odd, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(util::Quantile(odd, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(util::Quantile(odd, 1.0), 9.0);

  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  // Even count: interpolation averages the middle pair...
  EXPECT_DOUBLE_EQ(util::Quantile(even, 0.5), 2.5);
  // ...where nearest-rank (ceil(q*n) with either rounding) picks an element.
  auto nearest_rank = [](std::vector<double> xs, double q) {
    std::sort(xs.begin(), xs.end());
    size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(xs.size())));
    return xs[std::min(xs.size() - 1, rank == 0 ? 0 : rank - 1)];
  };
  EXPECT_EQ(nearest_rank(even, 0.5), 2.0);
  EXPECT_NE(util::Quantile(even, 0.5), nearest_rank(even, 0.5));
  // Pin the interpolated p95 of a fixed 10-sample vector (pos = 8.55).
  const std::vector<double> ten = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(util::Quantile(ten, 0.95), 9.55);

  // And Summarize is Quantile applied at the canonical points.
  util::ErrorSummary s = util::Summarize(ten);
  EXPECT_DOUBLE_EQ(s.median, util::Quantile(ten, 0.5));
  EXPECT_DOUBLE_EQ(s.p95, util::Quantile(ten, 0.95));
  EXPECT_DOUBLE_EQ(s.p99, util::Quantile(ten, 0.99));
  EXPECT_DOUBLE_EQ(s.max, 10.0);
}

TEST(QuantileAggregationTest, HarnessSummariesEqualUtilSummarizeOfQErrors) {
  // The harness's per-workload ErrorSummary must be exactly
  // util::Summarize(per-query q-errors) — same shared aggregation, no local
  // re-derivation anywhere between EstimateCards and the report row.
  HarnessFixture f;
  estimators::OracleEstimator oracle(f.table);
  PreparedWorkload prep_in = PrepareWorkload(f.in_workload);
  PreparedWorkload prep_random = PrepareWorkload(f.random_workload);
  ResultRow row = EvaluateEstimator("oracle", oracle, prep_in, prep_random);

  std::vector<double> cards = oracle.EstimateCards(prep_in.queries);
  std::vector<double> errors;
  for (size_t i = 0; i < cards.size(); ++i) {
    errors.push_back(workload::QError(cards[i], prep_in.true_cards[i]));
  }
  util::ErrorSummary expect = util::Summarize(errors);
  EXPECT_DOUBLE_EQ(row.in_workload.mean, expect.mean);
  EXPECT_DOUBLE_EQ(row.in_workload.median, expect.median);
  EXPECT_DOUBLE_EQ(row.in_workload.p95, expect.p95);
  EXPECT_DOUBLE_EQ(row.in_workload.p99, expect.p99);
  EXPECT_DOUBLE_EQ(row.in_workload.max, expect.max);
  EXPECT_EQ(row.in_workload.count, expect.count);
}

TEST(EvaluateEstimatorTest, PreparedWorkloadIsReusedAcrossEstimatorRows) {
  HarnessFixture f;
  PreparedWorkload prep_in = PrepareWorkload(f.in_workload);
  PreparedWorkload prep_random = PrepareWorkload(f.random_workload);
  ASSERT_EQ(prep_in.queries.size(), f.in_workload.size());
  ASSERT_EQ(prep_in.true_cards.size(), f.in_workload.size());
  const workload::Query* queries_before = prep_in.queries.data();

  CountingEstimator a(10.0), b(20.0);
  (void)EvaluateEstimator("a", a, prep_in, prep_random);
  (void)EvaluateEstimator("b", b, prep_in, prep_random);

  // Exactly ONE batched call per (row, workload) — never a per-query loop,
  // never a second setup pass — and each call sees the whole workload.
  EXPECT_EQ(a.batch_calls.load(), 2);
  EXPECT_EQ(b.batch_calls.load(), 2);
  EXPECT_EQ(a.single_calls.load(), 0);
  EXPECT_EQ(a.batched_queries.load(),
            f.in_workload.size() + f.random_workload.size());
  // Evaluation does not rebuild or mutate the prepared workload.
  EXPECT_EQ(prep_in.queries.data(), queries_before);
  EXPECT_EQ(prep_in.queries.size(), f.in_workload.size());
}

}  // namespace
}  // namespace uae::bench
