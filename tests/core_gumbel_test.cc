// core/: the Gumbel-Softmax trick (Alg. 1) — samples are valid relaxed
// one-hots, follow the categorical distribution in expectation of their
// argmax, and sharpen toward one-hot as tau -> 0.
#include <cmath>

#include <gtest/gtest.h>

#include "core/gumbel.h"

namespace uae::core {
namespace {

TEST(GumbelTest, SamplesAreDistributions) {
  util::Rng rng(3);
  std::vector<float> pi = {0.2f, 0.5f, 0.3f};
  for (int i = 0; i < 100; ++i) {
    auto y = GsSample(pi, 1.0f, &rng);
    float sum = 0;
    for (float v : y) {
      EXPECT_GE(v, 0.f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.f, 1e-5f);
  }
}

TEST(GumbelTest, ArgmaxFollowsCategorical) {
  // The Gumbel-max property: argmax(log pi + g) ~ Categorical(pi). The
  // softmax relaxation preserves the argmax.
  util::Rng rng(5);
  std::vector<float> pi = {0.1f, 0.6f, 0.3f};
  std::vector<int> counts(3, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto y = GsSample(pi, 0.5f, &rng);
    int arg = 0;
    for (int j = 1; j < 3; ++j) {
      if (y[static_cast<size_t>(j)] > y[static_cast<size_t>(arg)]) arg = j;
    }
    ++counts[static_cast<size_t>(arg)];
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(counts[static_cast<size_t>(j)] / static_cast<double>(n),
                pi[static_cast<size_t>(j)], 0.02)
        << "class " << j;
  }
}

class GumbelTemperature : public ::testing::TestWithParam<float> {};

TEST_P(GumbelTemperature, LowerTauIsSharper) {
  // Mean max-coordinate grows as tau decreases.
  util::Rng rng(7);
  std::vector<float> pi = {0.25f, 0.25f, 0.25f, 0.25f};
  float tau = GetParam();
  double mean_max = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto y = GsSample(pi, tau, &rng);
    mean_max += *std::max_element(y.begin(), y.end());
  }
  mean_max /= n;
  if (tau <= 0.11f) {
    EXPECT_GT(mean_max, 0.9);  // Nearly one-hot.
  } else if (tau >= 9.f) {
    EXPECT_LT(mean_max, 0.5);  // Nearly uniform.
  }
}

INSTANTIATE_TEST_SUITE_P(Taus, GumbelTemperature,
                         ::testing::Values(0.1f, 1.0f, 10.f));

TEST(GumbelTest, ZeroProbabilityNeverSampled) {
  util::Rng rng(9);
  std::vector<float> pi = {0.5f, 0.f, 0.5f};
  for (int i = 0; i < 500; ++i) {
    auto y = GsSample(pi, 1.0f, &rng);
    EXPECT_LT(y[1], 1e-6f);
  }
}

TEST(GumbelTest, NoiseMatrixStatistics) {
  nn::Mat g(50, 40);
  util::Rng rng(11);
  FillGumbelNoise(&g, &rng);
  double mean = g.Sum() / static_cast<double>(g.size());
  EXPECT_NEAR(mean, 0.5772, 0.08);  // Euler–Mascheroni constant.
}

}  // namespace
}  // namespace uae::core
