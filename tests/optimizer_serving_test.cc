// ServedCardProvider: the optimizer-in-the-loop serving path. Pins the parity
// contract (service-routed sub-plan estimates are bit-identical to direct
// model calls for a fixed snapshot generation), concurrent planner threads
// sharing one provider, transparent hot-swap pickup of a published quantized
// snapshot, and the SubplanMemo short-circuit.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/quant.h"
#include "core/uae.h"
#include "data/imdb_star.h"
#include "optimizer/card_provider.h"
#include "optimizer/dp_optimizer.h"
#include "optimizer/subplan_memo.h"
#include "serve/service.h"
#include "workload/join_workload.h"

namespace uae::optimizer {
namespace {

core::UaeConfig SmallConfig() {
  core::UaeConfig cfg;
  cfg.hidden = 24;
  cfg.ps_samples = 32;
  cfg.seed = 7;
  return cfg;
}

/// Non-empty submasks of `mask` the DP's enumeration can ask a provider for.
std::vector<uint32_t> Submasks(uint32_t mask) {
  std::vector<uint32_t> out;
  for (uint32_t s = 1; s <= mask; ++s) {
    if ((s & mask) == s) out.push_back(s);
  }
  return out;
}

struct ServingFixture {
  data::JoinUniverse uni;
  std::shared_ptr<core::Uae> uae;
  std::vector<workload::JoinQuery> queries;

  ServingFixture() {
    data::ImdbStarConfig c;
    c.num_titles = 600;
    c.seed = 9;
    uni = data::BuildImdbStar(c);
    uae = std::make_shared<core::Uae>(uni, SmallConfig());
    uae->TrainDataEpochs(1);
    workload::JoinGeneratorConfig gc;
    gc.focused = true;
    workload::JoinQueryGenerator gen(uni, gc, 33);
    for (int i = 0; i < 3; ++i) queries.push_back(gen.Generate());
  }

  double Direct(const workload::JoinQuery& q, uint32_t submask) const {
    return uae->EstimateJoinCard(workload::RestrictToSubset(uni, q, submask));
  }
};

ServingFixture& Shared() {
  static ServingFixture* f = new ServingFixture();
  return *f;
}

TEST(ServedCardProviderTest, BitIdenticalToDirectPathForFixedGeneration) {
  ServingFixture& f = Shared();
  serve::EstimationService service(f.uae->CloneServable());
  ServedCardProvider served(f.uni, &service);
  ASSERT_EQ(service.CurrentGeneration(), 1u);

  for (const workload::JoinQuery& q : f.queries) {
    std::vector<uint32_t> subs = Submasks(q.table_mask);
    // Half the sub-plans go through the Prewarm fan-out (async micro-batches
    // that land in the result cache), half through cold Card() calls — both
    // must be bitwise equal to the direct model call.
    served.Prewarm(q, std::span<const uint32_t>(subs.data(), subs.size() / 2));
    for (uint32_t s : subs) {
      EXPECT_EQ(served.Card(q, s), f.Direct(q, s))
          << "mask=" << q.table_mask << " submask=" << s;
    }
  }
  EXPECT_EQ(service.CurrentGeneration(), 1u) << "no publish happened";
  EXPECT_GT(served.stats().service_requests, 0u);
  EXPECT_EQ(served.stats().memo_hits, 0u) << "no memo attached";
}

TEST(ServedCardProviderTest, ConcurrentPlannersSharingOneProviderAgree) {
  ServingFixture& f = Shared();
  serve::EstimationService service(f.uae->CloneServable());
  ServedCardProvider served(f.uni, &service);

  // Reference plans from the single-threaded direct provider.
  std::vector<PlanResult> reference;
  UaeCardProvider direct(f.uni, f.uae.get(), "UAE-direct");
  for (const auto& q : f.queries) {
    reference.push_back(OptimizeJoinOrder(f.uni, q, &direct));
  }

  // Several planner threads plan the SAME workload through ONE shared
  // provider: their Prewarm fan-outs coalesce into shared micro-batches and
  // race on the result cache, yet every thread must reproduce the reference
  // plans bitwise (join order AND estimated C_out cost).
  constexpr int kThreads = 4;
  std::vector<std::vector<PlanResult>> plans(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (const auto& q : f.queries) {
          plans[static_cast<size_t>(t)].push_back(
              OptimizeJoinOrder(f.uni, q, &served));
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(plans[static_cast<size_t>(t)].size(), reference.size());
    for (size_t i = 0; i < reference.size(); ++i) {
      const PlanResult& got = plans[static_cast<size_t>(t)][i];
      EXPECT_EQ(got.join_order, reference[i].join_order)
          << "thread " << t << " query " << i;
      EXPECT_EQ(got.estimated_cost, reference[i].estimated_cost)
          << "thread " << t << " query " << i;
    }
  }
  serve::ServiceStats stats = service.Stats();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(stats.cache_hits, 0u)
      << "threads re-planning the same workload should share cached results";
}

TEST(ServedCardProviderTest, PicksUpPublishedQuantizedSnapshot) {
  ServingFixture& f = Shared();
  serve::EstimationService service(f.uae->CloneServable());
  ServedCardProvider served(f.uni, &service);
  const workload::JoinQuery& q = f.queries.front();

  // Generation 1: the full-precision model answers.
  EXPECT_EQ(served.Card(q, q.table_mask), f.Direct(q, q.table_mask));

  // Publish an int8-quantized snapshot — the serving plane the optimizer is
  // supposed to pick up transparently, with no provider-side invalidation.
  auto quant = std::make_shared<core::QuantizedUae>(*f.uae);
  ASSERT_TRUE(quant->SupportsJoinQueries());
  EXPECT_EQ(service.PublishSnapshot(quant), 2u);

  int changed = 0;
  for (uint32_t s : Submasks(q.table_mask)) {
    workload::JoinQuery sub = workload::RestrictToSubset(f.uni, q, s);
    serve::ServeResult r = service.EstimateJoin(sub);
    EXPECT_EQ(r.generation, 2u) << "submask " << s;
    // Bit-identical to calling the quantized model directly...
    EXPECT_EQ(r.card, quant->EstimateJoinCard(sub)) << "submask " << s;
    EXPECT_EQ(served.Card(q, s), r.card) << "submask " << s;
    // ... and (generically) different from the full-precision answer.
    if (r.card != f.Direct(q, s)) ++changed;
  }
  EXPECT_GT(changed, 0) << "quantization left every sub-plan estimate "
                           "bit-identical; hot-swap test is vacuous";
}

TEST(ServedCardProviderTest, MemoShortCircuitsServiceCalls) {
  ServingFixture& f = Shared();
  serve::EstimationService service(f.uae->CloneServable());
  SubplanMemo memo;
  ServedCardProvider served(f.uni, &service, &memo);
  const workload::JoinQuery& q = f.queries.front();

  // Seed the memo with an "observed truth" for the full sub-plan.
  workload::JoinQuery full =
      workload::RestrictToSubset(f.uni, q, q.table_mask);
  memo.Observe(SubplanFss(f.uni, full), 777.0);

  // The memo stores log(card); compare against its own exp() round trip.
  EXPECT_EQ(served.Card(q, q.table_mask), *memo.Lookup(SubplanFss(f.uni, full)))
      << "memoized sub-plans must bypass the model entirely";
  EXPECT_NEAR(served.Card(q, q.table_mask), 777.0, 1e-9);
  EXPECT_EQ(served.stats().memo_hits, 2u);
  EXPECT_EQ(served.stats().service_requests, 0u);
  EXPECT_EQ(service.Stats().requests, 0u);

  // A sub-plan the memo has never observed still routes to the service.
  uint32_t sub = q.table_mask & (q.table_mask - 1);  // Drop lowest bit.
  ASSERT_NE(sub, 0u);
  EXPECT_EQ(served.Card(q, sub), f.Direct(q, sub));
  EXPECT_EQ(served.stats().service_requests, 1u);

  // Prewarm skips memoized sub-plans (without counting them as answered
  // estimates) and issues the rest.
  std::vector<uint32_t> subs = Submasks(q.table_mask);
  served.Prewarm(q, subs);
  EXPECT_EQ(served.stats().memo_hits, 2u);
  EXPECT_EQ(served.stats().service_requests, 1u + subs.size() - 1);
}

}  // namespace
}  // namespace uae::optimizer
