// SPN backend: the three spn.cc bugfix regressions (overflow-dictionary
// leaf sizing, deterministic product-split child order, col_weights length
// validation) plus the ServableModel conformance suite for
// estimators::SpnServable — clone bitwise-independence, fine-tune
// determinism across thread counts, the adaptation guard refusing a worse
// fine-tuned SPN, the router promoting the SPN for a query class where its
// shadow q-error wins, hot-swap under concurrent clients (run under TSan via
// the unit-spn label), and per-shard SPN instantiation through
// shard::ShardedServable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/synthetic.h"
#include "data/table.h"
#include "estimators/histogram.h"
#include "estimators/servable_adapter.h"
#include "estimators/spn.h"
#include "estimators/spn_servable.h"
#include "online/controller.h"
#include "online/feedback.h"
#include "router/router.h"
#include "serve/service.h"
#include "shard/sharded_servable.h"
#include "util/rng.h"
#include "util/threadpool.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace uae {
namespace {

using estimators::SpnConfig;
using estimators::SpnEstimator;
using estimators::SpnServable;
using estimators::SpnServableConfig;

/// Labeled band workload over `table` (truths executed against the table).
workload::Workload BandWorkload(const data::Table& table, int count,
                                uint64_t seed) {
  workload::GeneratorConfig gc;
  gc.min_filters = 2;
  gc.max_filters = 2;
  gc.center_min = 0.6;
  gc.center_max = 0.9;
  gc.target_volume = 0.1;
  workload::QueryGenerator gen(table, gc, seed);
  return gen.GenerateLabeled(count, nullptr);
}

double MedianQError(const core::ServableModel& model,
                    const workload::Workload& test) {
  std::vector<double> errors = workload::EvaluateQErrorsBatched(
      test, [&](std::span<const workload::Query> qs) {
        return model.EstimateCards(qs);
      });
  return util::Quantile(std::move(errors), 0.5);
}

// ---- Bugfix regressions -----------------------------------------------------

// MakeLeaf used to size `hist` by column.domain() while indexing with
// code_at(r): rows appended through the PR 9 streaming path carry
// overflow-dictionary codes >= domain(), so building an SPN on a table with
// appended unseen values wrote past the histogram (ASan-visible pre-fix).
TEST(SpnBugfixTest, OverflowDictionaryCodesStayInBounds) {
  util::Rng rng(41);
  const size_t n = 1500;
  std::vector<int32_t> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng.UniformInt(0, 7));
    b[i] = static_cast<int32_t>(rng.UniformInt(0, 7));
  }
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", std::move(a), 8));
  cols.push_back(data::Column::FromCodes("b", std::move(b), 8));
  data::Table t("overflow", std::move(cols));
  const int32_t frozen = t.column(0).domain();
  ASSERT_EQ(frozen, 8);

  // Append rows whose column-0 value was never seen at freeze time: they get
  // stable overflow codes at and above domain().
  std::vector<int32_t> codes;
  for (int i = 0; i < 40; ++i) {
    std::vector<data::Value> row = {data::Value(int64_t{100 + i % 3}),
                                    data::Value(int64_t{i % 8})};
    t.EncodeAppendRow(row, &codes);
    ASSERT_TRUE(t.AppendDeltaRowCodes(codes).ok());
  }
  ASSERT_GT(t.column(0).total_domain(), frozen);

  SpnConfig sc;
  sc.min_instances = 128;
  SpnEstimator spn(t, sc);  // Pre-fix: heap-buffer-overflow here.

  // The overflow rows are real probability mass: an equality query on the
  // first overflow code must see its appended rows.
  workload::Query q(t.num_cols());
  workload::Predicate pred;
  pred.col = 0;
  pred.op = workload::Op::kEq;
  pred.code = frozen;  // First overflow code (value 100).
  q.AddPredicate(pred, t.column(0).total_domain());
  const double truth = static_cast<double>(workload::ExecuteCount(t, q));
  ASSERT_GT(truth, 0.0);
  EXPECT_GT(spn.EstimateCard(q), 0.0);
  EXPECT_LT(workload::QError(spn.EstimateCard(q), truth), 4.0);
}

// Product-split children used to be emitted in std::unordered_map iteration
// order — stdlib-hash-dependent, violating docs/DETERMINISM.md. The fix pins
// the canonical order: children ascending by their group's smallest member
// column. With independent columns every group is a singleton, so the
// preorder leaf columns must be exactly 0..k-1 (pre-fix, libstdc++'s
// iteration order reverses them).
TEST(SpnBugfixTest, ProductChildrenOrderedBySmallestMemberColumn) {
  util::Rng rng(43);
  const size_t n = 4000;
  const int k = 5;
  std::vector<std::vector<int32_t>> codes(k, std::vector<int32_t>(n));
  for (int c = 0; c < k; ++c) {
    for (size_t i = 0; i < n; ++i) {
      codes[static_cast<size_t>(c)][i] =
          static_cast<int32_t>(rng.UniformInt(0, 9));
    }
  }
  std::vector<data::Column> cols;
  for (int c = 0; c < k; ++c) {
    cols.push_back(data::Column::FromCodes("c" + std::to_string(c),
                                           std::move(codes[static_cast<size_t>(c)]),
                                           10));
  }
  data::Table t("indep5", std::move(cols));
  SpnConfig sc;
  SpnEstimator spn(t, sc);
  ASSERT_GE(spn.num_product_nodes(), 1);

  const std::vector<int> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(spn.PreorderLeafColumns(), expected);

  // Build-twice bitwise: same (table, config) => identical structure and
  // parameters, pinned at the bit level.
  SpnEstimator again(t, sc);
  EXPECT_EQ(spn.StructureSignature(), again.StructureSignature());
}

// Evaluate's weighted-leaf path used to read it->second[v] for every
// v < hist.size() without checking the caller's vector length — a silent
// out-of-bounds read for a short col_weights vector. Now it CHECK-fails.
TEST(SpnBugfixTest, ShortColWeightsVectorIsRejected) {
  std::vector<int32_t> f;
  for (int i = 0; i < 1000; ++i) f.push_back(i % 2);
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("fanout", std::move(f), 2));
  data::Table t("w", std::move(cols));
  SpnConfig sc;
  SpnEstimator spn(t, sc);
  workload::Query q(1);
  std::unordered_map<int, std::vector<float>> short_weights;
  short_weights[0] = {1.f};  // Leaf histogram has 2 bins.
  EXPECT_DEATH_IF_SUPPORTED(
      spn.EstimateSelectivityWeighted(q, short_weights), "col_weights");

  // A full-length vector still evaluates the expectation.
  std::unordered_map<int, std::vector<float>> ok_weights;
  ok_weights[0] = {1.f, 0.5f};
  EXPECT_NEAR(spn.EstimateSelectivityWeighted(q, ok_weights), 0.75, 1e-6);
}

// ---- ServableModel conformance ----------------------------------------------

/// Two strongly coupled columns (b tracks a up to small noise): the
/// independence assumption is off by roughly the band width on conjunctive
/// range queries, so a product-only SPN has real accuracy headroom for
/// query-driven fine-tuning.
data::Table MakeCorrelatedPair(size_t n, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int32_t> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng.UniformInt(0, 63));
    b[i] = std::clamp<int32_t>(
        a[i] + static_cast<int32_t>(rng.UniformInt(0, 4)) - 2, 0, 63);
  }
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", std::move(a), 64));
  cols.push_back(data::Column::FromCodes("b", std::move(b), 64));
  return data::Table("corr_pair", std::move(cols));
}

struct SpnScenario {
  data::Table table;
  workload::Workload train;
  workload::Workload test;

  SpnScenario() : table(MakeCorrelatedPair(8000, 21)) {
    train = BandWorkload(table, 96, 101);
    test = BandWorkload(table, 48, 707);
  }

  /// A deliberately coarse SPN: an impossible correlation threshold forces a
  /// pure product (independence) factorization, so there is real accuracy
  /// headroom for query-driven fine-tuning on the correlated band.
  SpnServableConfig StaleConfig() const {
    SpnServableConfig config;
    config.spn.corr_threshold = 2.0;
    config.spn.min_instances = 256;
    return config;
  }

  /// A fine-grained SPN (conditioning sum splits): accurate out of the box.
  SpnServableConfig AccurateConfig() const {
    SpnServableConfig config;
    config.spn.corr_threshold = 0.05;
    config.spn.min_instances = 256;
    return config;
  }
};

SpnScenario& Shared() {
  static SpnScenario* s = new SpnScenario();
  return *s;
}

std::string Signature(const core::ServableModel& model) {
  return dynamic_cast<const SpnServable&>(model).spn().StructureSignature();
}

TEST(SpnServableTest, FineTuneImprovesHeldOutAccuracy) {
  SpnScenario& s = Shared();
  auto stale = std::make_shared<SpnServable>(s.table, s.StaleConfig());
  const double stale_median = MedianQError(*stale, s.test);

  auto tuned = stale->CloneServable();
  core::FineTuneSpec spec;
  spec.query_steps = 512;
  EXPECT_GT(tuned->FineTune(s.train, spec), 0u);
  const double tuned_median = MedianQError(*tuned, s.test);
  EXPECT_LT(tuned_median, stale_median)
      << "stale " << stale_median << " vs tuned " << tuned_median;
}

TEST(SpnServableTest, CloneIsBitwiseIndependent) {
  SpnScenario& s = Shared();
  auto original = std::make_shared<SpnServable>(s.table, s.StaleConfig());
  const std::string before = Signature(*original);

  auto clone = original->CloneServable();
  EXPECT_EQ(Signature(*clone), before);  // Bit-identical parameters.

  // Fine-tuning the clone must not move a single bit of the original.
  core::FineTuneSpec spec;
  spec.query_steps = 256;
  ASSERT_GT(clone->FineTune(s.train, spec), 0u);
  EXPECT_NE(Signature(*clone), before);  // The clone really trained...
  EXPECT_EQ(Signature(*original), before);  // ...and the original did not.

  // And the original's estimates are bitwise what they were.
  for (size_t i = 0; i < 8; ++i) {
    const double card = original->EstimateCard(s.test[i].query);
    EXPECT_DOUBLE_EQ(
        card, SpnServable(s.table, s.StaleConfig()).EstimateCard(s.test[i].query));
  }
}

TEST(SpnServableTest, FineTuneIsDeterministicAcrossThreadCounts) {
  SpnScenario& s = Shared();
  auto base = std::make_shared<SpnServable>(s.table, s.StaleConfig());
  core::FineTuneSpec spec;
  spec.query_steps = 200;

  // Inline on this thread.
  auto inline_clone = base->CloneServable();
  const size_t used_inline = inline_clone->FineTune(s.train, spec);

  // Inside a pool worker (the adaptation controller's poll thread shape) and
  // concurrently with unrelated pool traffic.
  auto worker_clone = base->CloneServable();
  size_t used_worker = 0;
  std::thread worker([&] { used_worker = worker_clone->FineTune(s.train, spec); });
  worker.join();

  EXPECT_EQ(used_inline, used_worker);
  EXPECT_EQ(Signature(*inline_clone), Signature(*worker_clone));

  // Batched estimation is bitwise the sequential path at any batch split.
  std::vector<workload::Query> queries;
  for (const auto& lq : s.test) queries.push_back(lq.query);
  const std::vector<double> batched = inline_clone->EstimateCards(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], inline_clone->EstimateCard(queries[i]));
  }
}

TEST(SpnServableTest, GuardRefusesWorseFineTunedCandidate) {
  SpnScenario& s = Shared();
  auto incumbent = std::make_shared<SpnServable>(s.table, s.AccurateConfig());

  // Corrupt the labels: every query claims the full table matches. The
  // fine-tune dutifully inflates the candidate toward nonsense.
  workload::Workload corrupted = s.train;
  for (auto& lq : corrupted) {
    lq.card = static_cast<double>(s.table.num_rows());
    lq.selectivity = 1.0;
  }
  auto candidate = incumbent->CloneServable();
  core::FineTuneSpec spec;
  spec.query_steps = 512;
  ASSERT_GT(candidate->FineTune(corrupted, spec), 0u);

  const online::GuardVerdict verdict =
      online::EvaluateCandidate(*incumbent, *candidate, s.test,
                                /*guard_max_ratio=*/1.05);
  EXPECT_FALSE(verdict.accept);
  EXPECT_GT(verdict.candidate_median, verdict.incumbent_median);

  // Sanity: a genuinely fine-tuned candidate from a stale incumbent passes.
  auto stale = std::make_shared<SpnServable>(s.table, s.StaleConfig());
  auto good = stale->CloneServable();
  ASSERT_GT(good->FineTune(s.train, spec), 0u);
  EXPECT_TRUE(online::EvaluateCandidate(*stale, *good, s.test, 1.05).accept);
}

TEST(SpnServableTest, RouterPromotesSpnWhereItsShadowQErrorWins) {
  SpnScenario& s = Shared();
  std::vector<int32_t> domains;
  for (int c = 0; c < s.table.num_cols(); ++c) {
    domains.push_back(s.table.column(c).domain());
  }
  // Primary: an attribute-value-independence histogram — systematically wrong
  // on the correlated conjunctions below. Alt: the fine-grained SPN.
  auto histogram =
      std::make_shared<estimators::HistogramAviEstimator>(s.table, 8);
  auto primary = std::make_shared<estimators::ServableEstimatorAdapter>(
      histogram, s.table.num_rows(), /*seed=*/3);
  auto spn = std::make_shared<SpnServable>(s.table, s.AccurateConfig());

  router::RouterConfig rc;
  rc.knn.min_points = 1u << 20;  // Keep the kNN path out of this contest.
  auto router = std::make_unique<router::HybridRouter>(primary, histogram,
                                                       domains, rc);
  router->SetAltBackend(spn);

  // One structural class: a two-sided conjunction on the correlated columns,
  // literals varying per entry (the alt must win on rolling shadow q-error,
  // not on memorized repeats).
  auto template_query = [&](int32_t lo) {
    workload::Query q(s.table.num_cols());
    workload::Predicate p0;
    p0.col = 0;
    p0.op = workload::Op::kGe;
    p0.code = lo;
    q.AddPredicate(p0, domains[0]);
    workload::Predicate p1;
    p1.col = 1;
    p1.op = workload::Op::kGe;
    p1.code = static_cast<int32_t>(domains[1] / 2);
    q.AddPredicate(p1, domains[1]);
    return q;
  };

  for (int round = 0; round < 4; ++round) {
    std::vector<online::FeedbackEntry> batch;
    for (int32_t lo = domains[0] / 2; lo < domains[0] - 1; ++lo) {
      online::FeedbackEntry e;
      e.query = template_query(lo);
      e.true_card =
          static_cast<double>(workload::ExecuteCount(s.table, e.query));
      e.estimated_card = primary->EstimateCard(e.query);  // Served by primary.
      e.generation = 1;
      batch.push_back(std::move(e));
    }
    ASSERT_EQ(router->ObserveFeedback(batch), batch.size());
  }

  const workload::Query probe = template_query(domains[0] / 2);
  ASSERT_EQ(router->RouteFor(probe), router::Backend::kAlt);
  EXPECT_GE(router->RouterStats().alt_classes, 1u);
  // Alt-routed estimates are bitwise the SPN's own answers, single and
  // batched.
  EXPECT_DOUBLE_EQ(router->EstimateCard(probe), spn->EstimateCard(probe));
  const std::vector<workload::Query> batch{probe, template_query(domains[0] / 2 + 1)};
  const std::vector<double> routed = router->EstimateCards(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(routed[i], spn->EstimateCard(batch[i]));
  }
  // An unseen class (different filter structure) still routes to the primary.
  workload::Query unseen(s.table.num_cols());
  workload::Predicate up;
  up.col = 0;
  up.op = workload::Op::kLe;
  up.code = domains[0] / 2;
  unseen.AddPredicate(up, domains[0]);
  EXPECT_EQ(router->RouteFor(unseen), router::Backend::kPrimary);
}

TEST(SpnServableTest, HotSwapUnderConcurrentClients) {
  SpnScenario& s = Shared();
  auto stale = std::make_shared<SpnServable>(s.table, s.StaleConfig());
  auto tuned_model = stale->CloneServable();
  core::FineTuneSpec spec;
  spec.query_steps = 256;
  ASSERT_GT(tuned_model->FineTune(s.train, spec), 0u);
  std::shared_ptr<const core::ServableModel> tuned = std::move(tuned_model);

  // Ground truth per generation, precomputed single-threaded.
  std::vector<workload::Query> queries;
  for (const auto& lq : s.test) queries.push_back(lq.query);
  std::vector<double> expect_g1, expect_g2;
  for (const auto& q : queries) {
    expect_g1.push_back(stale->EstimateCard(q));
    expect_g2.push_back(tuned->EstimateCard(q));
  }

  serve::EstimationService service(stale);
  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (int rep = 0; rep < 20; ++rep) {
        for (size_t i = 0; i < queries.size(); ++i) {
          const serve::ServeResult res = service.Estimate(queries[i]);
          const double want =
              res.generation == 1 ? expect_g1[i] : expect_g2[i];
          if (res.card != want) failed.store(true);
        }
        if (c == 0 && rep == 5) service.PublishSnapshot(tuned);
      }
    });
  }
  for (auto& t : clients) t.join();
  // Every response was bitwise attributable to the snapshot that served it.
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(service.CurrentGeneration(), 2u);
}

TEST(SpnServableTest, AdaptationControllerRoundTrip) {
  SpnScenario& s = Shared();
  auto stale = std::make_shared<SpnServable>(s.table, s.StaleConfig());
  const double stale_median = MedianQError(*stale, s.test);

  serve::EstimationService service(stale);
  online::FeedbackCollector collector({.capacity = 1024, .seed = 5});
  online::DriftMonitor monitor(
      {.window = 512, .min_samples = 48, .median_threshold = 1.2});
  online::AdaptationConfig cfg;
  cfg.finetune_steps = 512;
  cfg.min_feedback = 48;
  cfg.holdout_fraction = 0.25;
  cfg.split_seed = 5;
  online::AdaptationController controller(&service, &collector, &monitor, cfg);

  // Serve the band traffic the coarse SPN is systematically wrong on.
  for (const auto& lq : s.train) {
    const serve::ServeResult res = service.Estimate(lq.query);
    controller.OnFeedback(lq.query, res, static_cast<double>(lq.card));
  }
  ASSERT_TRUE(monitor.Check().fired);

  // Closed loop: clone -> FineTune -> guard -> hot-swap, all through the
  // ServableModel interface.
  const online::AdaptationResult result = controller.AdaptIfDrifted();
  ASSERT_EQ(result.outcome, online::AdaptOutcome::kPublished);
  EXPECT_EQ(service.CurrentGeneration(), 2u);
  EXPECT_LT(result.candidate_median, result.incumbent_median);

  const auto snap = service.CurrentSnapshot();
  const double adapted_median = MedianQError(*snap->model, s.test);
  EXPECT_LT(adapted_median, stale_median)
      << "stale " << stale_median << " vs adapted " << adapted_median;
  // The incumbent object itself was never mutated (clone-based adaptation).
  EXPECT_DOUBLE_EQ(MedianQError(*stale, s.test), stale_median);
}

// ---- Per-shard SPN deployment ----------------------------------------------

TEST(SpnShardingTest, PerShardSpnsPruneRouteAndStayIsolated) {
  SpnScenario& s = Shared();
  shard::ShardedServableConfig config;
  config.partition.num_shards = 4;
  config.partition.partition_col = 0;
  config.base_seed = 31;
  // Product-only shard SPNs: the two-predicate pinned feedback below is then
  // guaranteed to carry a truth/estimate gap, so fine-tuning must move bits.
  SpnServableConfig spn_config;
  spn_config.spn.corr_threshold = 2.0;
  spn_config.spn.min_instances = 128;

  auto factory = [&](const data::Table& shard_table, int /*shard_id*/,
                     uint64_t shard_seed) -> std::shared_ptr<core::ServableModel> {
    SpnServableConfig sc = spn_config;
    sc.spn.seed = shard_seed;
    return std::make_shared<SpnServable>(shard_table, sc);
  };
  shard::ShardedServable sharded(s.table, config, factory);
  ASSERT_EQ(sharded.num_shards(), 4);

  // A query pinned to one shard by an equality on the partition column, plus
  // a correlated second predicate the product-only shard SPN must misestimate:
  // pruning must answer with exactly that shard's model.
  const shard::ShardDescriptor& shard0 = sharded.partitioner().shard(0);
  workload::Query pinned(s.table.num_cols());
  workload::Predicate pred;
  pred.col = sharded.partitioner().partition_col();
  pred.op = workload::Op::kEq;
  pred.code = shard0.code_lo;
  pinned.AddPredicate(pred, s.table.column(pred.col).domain());
  workload::Predicate second;
  second.col = 1;
  second.op = workload::Op::kLe;
  second.code = shard0.code_lo;  // b tracks a, so this is far from independent.
  pinned.AddPredicate(second, s.table.column(1).domain());
  ASSERT_EQ(sharded.partitioner().CandidateShards(pinned),
            std::vector<int>{0});
  EXPECT_DOUBLE_EQ(sharded.EstimateCard(pinned),
                   sharded.shard_model(0).EstimateCard(pinned));

  // Batched == sequential, bitwise, across the pruned fan-out.
  std::vector<workload::Query> queries{pinned};
  for (const auto& lq : s.test) queries.push_back(lq.query);
  const std::vector<double> batched = sharded.EstimateCards(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], sharded.EstimateCard(queries[i]));
  }

  // Fine-tune with feedback that routes only to shard 0: the other shards
  // must stay bitwise identical, and spanning queries are dropped.
  std::vector<std::string> before;
  for (int sh = 0; sh < sharded.num_shards(); ++sh) {
    before.push_back(Signature(sharded.shard_model(sh)));
  }
  workload::Workload feedback;
  workload::LabeledQuery pinned_lq;
  pinned_lq.query = pinned;
  pinned_lq.card = static_cast<double>(workload::ExecuteCount(s.table, pinned));
  feedback.push_back(pinned_lq);
  workload::Query span_q(s.table.num_cols());  // No partition-column filter:
  workload::Predicate sp;                      // every shard is a candidate.
  sp.col = 1;
  sp.op = workload::Op::kGe;
  sp.code = 32;
  span_q.AddPredicate(sp, s.table.column(1).domain());
  workload::LabeledQuery spanning;
  spanning.query = span_q;
  spanning.card = static_cast<double>(workload::ExecuteCount(s.table, span_q));
  feedback.push_back(spanning);

  std::vector<workload::Workload> routed;
  EXPECT_EQ(sharded.RouteWorkload(feedback, &routed), 1u);  // Spanning drop.
  ASSERT_EQ(routed[0].size(), 1u);

  auto clone = sharded.CloneServable();
  core::FineTuneSpec spec;
  spec.query_steps = 64;
  EXPECT_GT(clone->FineTune(feedback, spec), 0u);
  auto& sharded_clone = dynamic_cast<shard::ShardedServable&>(*clone);
  EXPECT_NE(Signature(sharded_clone.shard_model(0)), before[0]);
  for (int sh = 1; sh < sharded.num_shards(); ++sh) {
    EXPECT_EQ(Signature(sharded_clone.shard_model(sh)), before[static_cast<size_t>(sh)]);
  }
  // The clone's training never touched the source deployment.
  for (int sh = 0; sh < sharded.num_shards(); ++sh) {
    EXPECT_EQ(Signature(sharded.shard_model(sh)), before[static_cast<size_t>(sh)]);
  }
}

}  // namespace
}  // namespace uae
