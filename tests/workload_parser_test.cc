// workload/: the predicate-expression parser and workload persistence.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/parser.h"
#include "workload/persistence.h"

namespace uae::workload {
namespace {

data::Table IntTable() {
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromInts("age", {20, 25, 30, 35, 40, 25, 30}));
  cols.push_back(data::Column::FromInts("dept", {1, 2, 3, 1, 2, 3, 1}));
  return data::Table("t", std::move(cols));
}

TEST(ParserTest, ComparisonOperators) {
  data::Table t = IntTable();
  auto q = ParseQuery(t, "age >= 25 AND dept = 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ExecuteCount(t, q.value()), 2);  // (25,2) and (40,2).

  auto q2 = ParseQuery(t, "age < 30");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(ExecuteCount(t, q2.value()), 3);  // 20, 25, 25.

  auto q3 = ParseQuery(t, "age != 30");
  ASSERT_TRUE(q3.ok());
  EXPECT_EQ(ExecuteCount(t, q3.value()), 5);
}

TEST(ParserTest, BetweenAndIn) {
  data::Table t = IntTable();
  auto q = ParseQuery(t, "age BETWEEN 25 AND 35");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ExecuteCount(t, q.value()), 5);

  auto q2 = ParseQuery(t, "dept IN (1, 3)");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(ExecuteCount(t, q2.value()), 5);
}

TEST(ParserTest, AbsentLiteralsSnapForRanges) {
  data::Table t = IntTable();
  // 27 is not in the dictionary; >= 27 means codes of {30, 35, 40}.
  auto q = ParseQuery(t, "age >= 27");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ExecuteCount(t, q.value()), 4);
  // Equality on an absent literal is an error.
  EXPECT_FALSE(ParseQuery(t, "age = 27").ok());
}

TEST(ParserTest, EmptyStringIsUnconstrained) {
  data::Table t = IntTable();
  auto q = ParseQuery(t, "");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().NumConstrained(), 0);
}

TEST(ParserTest, SyntaxErrors) {
  data::Table t = IntTable();
  EXPECT_FALSE(ParseQuery(t, "bogus_col = 1").ok());
  EXPECT_FALSE(ParseQuery(t, "age >> 5").ok());
  EXPECT_FALSE(ParseQuery(t, "age = 25 OR dept = 1").ok());
  EXPECT_FALSE(ParseQuery(t, "age BETWEEN 20").ok());
  EXPECT_FALSE(ParseQuery(t, "dept IN ()").ok());
  EXPECT_FALSE(ParseQuery(t, "age = 'hello'").ok());  // Type mismatch.
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  data::Table t = IntTable();
  auto q = ParseQuery(t, "age between 25 and 35 and dept in (1)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(ExecuteCount(t, q.value()), 2);  // (25..35) with dept 1: 35,30.
}

TEST(PersistenceTest, RoundTripPreservesQueriesAndCards) {
  data::Table t = data::SyntheticDmv(4000, 3);
  GeneratorConfig gc;
  QueryGenerator gen(t, gc, 7);
  Workload w = gen.GenerateLabeled(40, nullptr);
  // Add one IN and one != constraint so all kinds are exercised.
  {
    Query q(t.num_cols());
    q.AddPredicate({0, Op::kNeq, 1, {}}, t.column(0).domain());
    q.AddPredicate({3, Op::kIn, 0, {2, 5, 9}}, t.column(3).domain());
    LabeledQuery lq;
    lq.card = static_cast<double>(ExecuteCount(t, q));
    lq.selectivity = lq.card / static_cast<double>(t.num_rows());
    lq.query = std::move(q);
    w.push_back(std::move(lq));
  }

  std::string path = "/tmp/uae_workload_test.csv";
  ASSERT_TRUE(SaveWorkload(w, t.num_cols(), path).ok());
  auto loaded = LoadWorkload(path, t.num_cols());
  ASSERT_TRUE(loaded.ok());
  const Workload& w2 = loaded.value();
  ASSERT_EQ(w2.size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(w2[i].query.Fingerprint(), w[i].query.Fingerprint()) << "query " << i;
    EXPECT_DOUBLE_EQ(w2[i].card, w[i].card);
    EXPECT_DOUBLE_EQ(w2[i].selectivity, w[i].selectivity);
  }
  std::filesystem::remove(path);
}

TEST(PersistenceTest, LoadRejectsGarbage) {
  std::string path = "/tmp/uae_workload_bad.csv";
  {
    std::ofstream out(path);
    out << "query_id,col,kind,lo,hi,neq,in_codes\n0,99,range,1,2,,\n";
  }
  EXPECT_FALSE(LoadWorkload(path, 5).ok());  // Column out of range.
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace uae::workload
