// End-to-end reproductions of the paper's qualitative claims at test scale:
//  * deep AR models beat AVI histograms on correlated data (G1);
//  * UAE-Q learns the distribution from queries alone (contribution 1);
//  * hybrid UAE improves the in-workload tail over data-only training
//    (finding 8) while staying robust on random queries (finding 9).
#include <gtest/gtest.h>

#include "core/uae.h"
#include "data/synthetic.h"
#include "estimators/histogram.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace uae {
namespace {

core::UaeConfig Config() {
  core::UaeConfig cfg;
  cfg.hidden = 48;
  cfg.data_batch = 256;
  cfg.dps_samples = 16;
  cfg.query_batch = 8;
  cfg.ps_samples = 160;
  cfg.lr = 5e-3f;
  cfg.seed = 3;
  return cfg;
}

TEST(IntegrationTest, DeepArBeatsAviOnCorrelatedData) {
  data::Table t = data::TinyCorrelated(6000, 7);
  core::Uae uae(t, Config());
  uae.TrainDataEpochs(20);
  estimators::HistogramAviEstimator avi(t, 64);

  workload::GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 2;
  workload::QueryGenerator gen(t, gc, 11);
  auto w = gen.GenerateLabeled(60, nullptr);
  std::vector<double> uae_err, avi_err;
  for (const auto& lq : w) {
    uae_err.push_back(workload::QError(uae.EstimateCard(lq.query), lq.card));
    avi_err.push_back(workload::QError(avi.EstimateCard(lq.query), lq.card));
  }
  EXPECT_LT(util::Quantile(uae_err, 0.5), util::Quantile(avi_err, 0.5));
  EXPECT_LT(util::Quantile(uae_err, 0.95), util::Quantile(avi_err, 0.95));
}

TEST(IntegrationTest, UaeQLearnsDistributionFromQueriesAlone) {
  // Train purely on (query, selectivity) feedback; the model must become far
  // better than its random initialization on held-out queries of the same
  // workload.
  data::Table t = data::TinyCorrelated(4000, 13);
  core::Uae uae_q(t, Config());
  // Selective (equality-heavy) queries where an untrained model errs badly.
  workload::GeneratorConfig gc;
  gc.min_filters = 2;
  gc.max_filters = 3;
  gc.eq_op_prob = 0.8;
  workload::QueryGenerator gen(t, gc, 17);
  auto train = gen.GenerateLabeled(150, nullptr);
  auto test = gen.GenerateLabeled(50, nullptr);
  auto mean_err = [&]() {
    double s = 0;
    for (const auto& lq : test) {
      s += workload::QError(uae_q.EstimateCard(lq.query), lq.card);
    }
    return s / static_cast<double>(test.size());
  };
  double untrained = mean_err();
  uae_q.TrainQuerySteps(train, 400);
  double trained = mean_err();
  EXPECT_LT(trained, untrained);
  EXPECT_LT(trained, 3.5);
}

TEST(IntegrationTest, HybridImprovesInWorkloadTailOverDataOnly) {
  // Skewed table + workload focused on the sparse tail region: data-only
  // training under-fits the region, the supervised signal fixes it.
  data::Table t = data::SyntheticDmv(15000, 19);
  workload::GeneratorConfig gc;
  gc.center_min = 0.5;  // Tail half of the Zipf-skewed bounded column.
  gc.center_max = 1.0;
  workload::QueryGenerator gen(t, gc, 23);
  auto train = gen.GenerateLabeled(400, nullptr);
  workload::QueryGenerator test_gen(t, gc, 29);
  auto test = gen.GenerateLabeled(80, nullptr);

  core::UaeConfig cfg = Config();
  cfg.seed = 7;
  core::Uae naru(t, cfg);
  naru.TrainDataEpochs(3);
  core::Uae hybrid(t, cfg);
  hybrid.TrainHybridEpochs(train, 3);

  auto p95 = [&](const core::Uae& model) {
    std::vector<double> errors;
    for (const auto& lq : test) {
      errors.push_back(workload::QError(model.EstimateCard(lq.query), lq.card));
    }
    return util::Quantile(errors, 0.95);
  };
  double naru_p95 = p95(naru);
  double hybrid_p95 = p95(hybrid);
  EXPECT_LE(hybrid_p95, naru_p95 * 1.1)
      << "hybrid tail should not regress vs data-only (naru=" << naru_p95
      << " hybrid=" << hybrid_p95 << ")";
}

TEST(IntegrationTest, HybridStaysRobustOnRandomQueries) {
  data::Table t = data::SyntheticCensus(12000, 31);
  workload::TrainTestWorkloads w = workload::GenerateTrainTest(t, 300, 60, 37);
  core::UaeConfig cfg = Config();
  core::Uae hybrid(t, cfg);
  hybrid.TrainHybridEpochs(w.train, 3);
  std::vector<double> errors;
  for (const auto& lq : w.test_random) {
    errors.push_back(workload::QError(hybrid.EstimateCard(lq.query), lq.card));
  }
  // Robustness: random-query median stays tame (query-driven models blow up
  // here — see Table 3 where MSCN's random median is ~35).
  EXPECT_LT(util::Quantile(errors, 0.5), 3.0);
}

}  // namespace
}  // namespace uae
