// workload/: q-error metric properties and selectivity histograms.
#include <gtest/gtest.h>

#include "workload/metrics.h"

namespace uae::workload {
namespace {

TEST(MetricsTest, QErrorSymmetricAndFloored) {
  EXPECT_DOUBLE_EQ(QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(QError(100, 10), 10.0);
  EXPECT_DOUBLE_EQ(QError(10, 100), 10.0);
  // Floor of 1: zero estimates / zero truths do not blow up.
  EXPECT_DOUBLE_EQ(QError(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(QError(0, 50), 50.0);
  EXPECT_DOUBLE_EQ(QError(50, 0), 50.0);
  EXPECT_GE(QError(3.7, 9.1), 1.0);
}

TEST(MetricsTest, EvaluateQErrors) {
  Workload w(3);
  w[0].card = 10;
  w[1].card = 100;
  w[2].card = 1;
  auto errors = EvaluateQErrors(w, [](const Query&) { return 10.0; });
  EXPECT_DOUBLE_EQ(errors[0], 1.0);
  EXPECT_DOUBLE_EQ(errors[1], 10.0);
  EXPECT_DOUBLE_EQ(errors[2], 10.0);
}

TEST(MetricsTest, SelectivityHistogramBuckets) {
  Workload w;
  for (double sel : {0.5, 0.05, 0.005, 1e-7, 1e-9}) {
    LabeledQuery lq;
    lq.selectivity = sel;
    w.push_back(lq);
  }
  SelectivityHistogram h = SelectivityDistribution(w);
  EXPECT_EQ(h.total, 5);
  EXPECT_EQ(h.bucket_counts[7], 1);  // 0.5 in [1e-1, 1e0).
  EXPECT_EQ(h.bucket_counts[6], 1);  // 0.05.
  EXPECT_EQ(h.bucket_counts[5], 1);  // 0.005.
  EXPECT_EQ(h.bucket_counts[1], 1);  // 1e-7.
  EXPECT_EQ(h.bucket_counts[0], 1);  // 1e-9 clamps into the lowest bucket.
  std::string s = FormatSelectivityHistogram(h);
  EXPECT_NE(s.find("20.0%"), std::string::npos);
}

TEST(MetricsTest, FormatResultRow) {
  util::ErrorSummary a;
  a.mean = 1.234;
  a.median = 1.0;
  a.p95 = 20.5;
  a.max = 12345.0;
  std::string row = FormatResultRow("Model-X", 2 << 20, a, a);
  EXPECT_NE(row.find("Model-X"), std::string::npos);
  EXPECT_NE(row.find("2.0MB"), std::string::npos);
  EXPECT_NE(row.find("1.2e+04"), std::string::npos);
}

}  // namespace
}  // namespace uae::workload
