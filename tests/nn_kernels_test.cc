// Parity and edge-shape coverage for the tiled kernel layer: every production
// kernel is checked against the retained reference implementation in
// nn/kernels_ref.h across shapes that exercise full register tiles, row/column
// tails, k-panel boundaries, degenerate 1-extent dims and zero-extent mats.
// Tiling reorders float sums, so GEMM parity is tolerance-bounded (1e-4
// relative with an absolute floor); epilogue fusions must match bitwise.
#include <cmath>
#include <cstring>
#include <tuple>

#include <gtest/gtest.h>

#include "nn/kernels.h"
#include "nn/kernels_ref.h"
#include "nn/mat.h"
#include "util/rng.h"

namespace uae::nn {
namespace {

Mat RandomMat(int rows, int cols, util::Rng* rng) {
  return Mat::Gaussian(rows, cols, 1.f, rng);
}

// Like the one-hot encodings the first MADE layer consumes: mostly zero rows.
Mat SparseMat(int rows, int cols, util::Rng* rng) {
  Mat m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    if (cols == 0) break;
    m.at(r, static_cast<int>(rng->UniformInt(0, cols - 1))) = 1.f;
  }
  return m;
}

void ExpectClose(const Mat& got, const Mat& want, float tol,
                 const char* what) {
  ASSERT_TRUE(got.SameShape(want)) << what;
  for (int r = 0; r < got.rows(); ++r) {
    for (int c = 0; c < got.cols(); ++c) {
      const float g = got.at(r, c), w = want.at(r, c);
      const float scale = std::max({1.f, std::fabs(g), std::fabs(w)});
      ASSERT_NEAR(g, w, tol * scale)
          << what << " mismatch at (" << r << "," << c << ") shape "
          << got.ShapeString();
    }
  }
}

// Shapes: full tiles, remainder rows, column tails straddling kGemmColTile,
// k crossing the kGemmKBlock panel boundary, 1-extent dims, zero-extent dims.
const std::tuple<int, int, int> kShapes[] = {
    {1, 1, 1},    {1, 1, 7},     {1, 5, 1},    {5, 1, 3},   {3, 7, 1},
    {4, 4, 4},    {5, 9, 6},     {17, 33, 29}, {4, 256, 32}, {8, 300, 37},
    {64, 64, 64}, {33, 1, 65},   {128, 96, 80}, {6, 513, 100},
    {0, 5, 3},    {5, 0, 3},     {5, 3, 0},
};

class KernelParity : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(KernelParity, GemmAccum) {
  auto [m, k, n] = GetParam();
  util::Rng rng(uint64_t(m) * 7919 + uint64_t(k) * 131 + n);
  Mat a = RandomMat(m, k, &rng);
  Mat b = RandomMat(k, n, &rng);
  Mat c0 = RandomMat(m, n, &rng);  // nonzero start: accumulation semantics
  Mat got = c0, want = c0;
  GemmAccum(a, b, &got);
  ref::GemmAccum(a, b, &want);
  ExpectClose(got, want, 1e-4f, "GemmAccum");
}

TEST_P(KernelParity, GemmNtAccum) {
  auto [m, k, n] = GetParam();
  util::Rng rng(uint64_t(m) * 7919 + uint64_t(k) * 131 + n + 1);
  Mat a = RandomMat(m, k, &rng);
  Mat bt = RandomMat(n, k, &rng);
  Mat c0 = RandomMat(m, n, &rng);
  Mat got = c0, want = c0;
  GemmNtAccum(a, bt, &got);
  ref::GemmNtAccum(a, bt, &want);
  ExpectClose(got, want, 1e-4f, "GemmNtAccum");
}

TEST_P(KernelParity, GemmTnAccum) {
  auto [m, k, n] = GetParam();
  util::Rng rng(uint64_t(m) * 7919 + uint64_t(k) * 131 + n + 2);
  Mat at = RandomMat(k, m, &rng);
  Mat b = RandomMat(k, n, &rng);
  Mat c0 = RandomMat(m, n, &rng);
  Mat got = c0, want = c0;
  GemmTnAccum(at, b, &got);
  ref::GemmTnAccum(at, b, &want);
  ExpectClose(got, want, 1e-4f, "GemmTnAccum");
}

TEST_P(KernelParity, GemmAccumSparseInputs) {
  auto [m, k, n] = GetParam();
  util::Rng rng(uint64_t(m) * 7919 + uint64_t(k) * 131 + n + 3);
  Mat a = SparseMat(m, k, &rng);  // exercises the quad zero-skip path
  Mat b = RandomMat(k, n, &rng);
  Mat got(m, n), want(m, n);
  GemmAccum(a, b, &got);
  ref::GemmAccum(a, b, &want);
  ExpectClose(got, want, 1e-4f, "GemmAccum(sparse)");
}

INSTANTIATE_TEST_SUITE_P(Shapes, KernelParity, ::testing::ValuesIn(kShapes));

TEST(KernelsDeterminism, RepeatedRunsBitIdentical) {
  // 2*96*96*96 flops > the parallel threshold: the run goes through
  // ParallelFor yet must stay bit-reproducible because row blocks are
  // globally aligned. (m=96 also covers the pure block-grid path.)
  util::Rng rng(7);
  Mat a = RandomMat(96, 192, &rng);
  Mat b = RandomMat(192, 96, &rng);
  Mat c1(96, 96), c2(96, 96);
  GemmAccum(a, b, &c1);
  GemmAccum(a, b, &c2);
  ASSERT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)));

  Mat at = RandomMat(192, 96, &rng);
  Mat d1(96, 96), d2(96, 96);
  GemmTnAccum(at, b, &d1);
  GemmTnAccum(at, b, &d2);
  ASSERT_EQ(0, std::memcmp(d1.data(), d2.data(), d1.size() * sizeof(float)));
}

TEST(KernelsFusion, AddBiasReluMatchesUnfusedBitwise) {
  util::Rng rng(11);
  for (auto [rows, cols] : {std::pair{1, 1}, {3, 5}, {17, 33}, {64, 128}}) {
    Mat in = RandomMat(rows, cols, &rng);
    Mat bias = RandomMat(1, cols, &rng);
    Mat fused(rows, cols), unfused(rows, cols);
    AddBiasReluRows(in, bias, &fused);
    ref::AddBiasRows(in, bias, &unfused);
    ReluInplace(&unfused);
    ASSERT_EQ(0, std::memcmp(fused.data(), unfused.data(),
                             fused.size() * sizeof(float)))
        << rows << "x" << cols;
  }
}

TEST(KernelsFusion, SoftmaxRowsInplaceMatchesOutOfPlace) {
  util::Rng rng(13);
  Mat in = RandomMat(37, 129, &rng);
  Mat out(37, 129);
  SoftmaxRows(in, &out);
  Mat inplace = in;
  SoftmaxRowsInplace(&inplace);
  ASSERT_EQ(0, std::memcmp(out.data(), inplace.data(),
                           out.size() * sizeof(float)));
}

TEST(KernelsSoftmax, MatchesReference) {
  util::Rng rng(17);
  for (auto [rows, cols] : {std::pair{1, 1}, {2, 2}, {5, 31}, {64, 100},
                            {8, 1024}}) {
    Mat in = Mat::Gaussian(rows, cols, 4.f, &rng);  // wide logit range
    Mat got(rows, cols), want(rows, cols);
    SoftmaxRows(in, &got);
    ref::SoftmaxRows(in, &want);
    ExpectClose(got, want, 1e-5f, "SoftmaxRows");
    LogSoftmaxRows(in, &got);
    ref::LogSoftmaxRows(in, &want);
    ExpectClose(got, want, 1e-5f, "LogSoftmaxRows");
  }
}

TEST(KernelsSoftmax, RowsSumToOneUnderExtremeLogits) {
  // -1e9 masked logits and large spreads are what progressive sampling feeds.
  Mat in = Mat::FromVector(2, 4, {-1e9f, 3.f, -1e9f, 2.f,  //
                                  80.f, -80.f, 0.f, 79.5f});
  Mat out(2, 4);
  SoftmaxRows(in, &out);
  for (int r = 0; r < 2; ++r) {
    double sum = 0;
    for (int c = 0; c < 4; ++c) {
      sum += out.at(r, c);
      EXPECT_GE(out.at(r, c), 0.f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
  EXPECT_NEAR(out.at(0, 1), std::exp(1.f) / (1 + std::exp(1.f)), 1e-5);
}

TEST(KernelsFastExp, AccurateOverClampRange) {
  // ~2e-7 stated accuracy; assert 1e-6 with margin across the full range the
  // softmax kernels can produce, plus exact anchors.
  EXPECT_EQ(FastExpf(0.f), 1.f);
  for (int i = 0; i <= 10000; ++i) {
    const float x = -87.f + 175.f * static_cast<float>(i) / 10000.f;
    const double want = std::exp(static_cast<double>(x));
    const double got = FastExpf(x);
    EXPECT_NEAR(got / want, 1.0, 1e-6) << "x=" << x;
  }
  // Clamped tails stay finite and positive.
  EXPECT_GT(FastExpf(-1e9f), 0.f);
  EXPECT_TRUE(std::isfinite(FastExpf(1e9f)));
}

}  // namespace
}  // namespace uae::nn
