// Guards against documentation drift: the README quickstart must carry the
// ROADMAP's tier-1 verify line verbatim, prose must not hard-code test
// counts (they go stale every PR), and every BENCH_*.json a document names
// must exist as a committed baseline under bench/.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#ifndef UAE_REPO_ROOT
#error "UAE_REPO_ROOT must be defined by the build (see CMakeLists.txt)"
#endif

namespace {

namespace fs = std::filesystem;

const fs::path kRoot = UAE_REPO_ROOT;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// README + the docs book: the documents a user actually reads.
std::vector<fs::path> UserDocs() {
  std::vector<fs::path> docs = {kRoot / "README.md"};
  for (const auto& entry : fs::directory_iterator(kRoot / "docs")) {
    if (entry.path().extension() == ".md") docs.push_back(entry.path());
  }
  return docs;
}

TEST(DocsConsistencyTest, DocsBookExists) {
  for (const char* name : {"ARCHITECTURE.md", "BENCHMARKS.md",
                           "DETERMINISM.md"}) {
    EXPECT_TRUE(fs::exists(kRoot / "docs" / name)) << "docs/" << name;
  }
}

TEST(DocsConsistencyTest, ReadmeCarriesTier1VerifyLine) {
  // ROADMAP.md is the source of truth: "**Tier-1 verify:** `<command>`".
  const std::string roadmap = ReadFile(kRoot / "ROADMAP.md");
  std::smatch m;
  ASSERT_TRUE(std::regex_search(
      roadmap, m, std::regex(R"(\*\*Tier-1 verify:\*\* `([^`]+)`)")))
      << "ROADMAP.md lost its tier-1 verify line";
  const std::string verify = m[1].str();
  ASSERT_FALSE(verify.empty());

  // The README quickstart must quote the same command verbatim, so a user
  // following the README runs exactly what the roadmap promises.
  const std::string readme = ReadFile(kRoot / "README.md");
  EXPECT_NE(readme.find(verify), std::string::npos)
      << "README.md diverged from the ROADMAP tier-1 verify line:\n  "
      << verify;
}

TEST(DocsConsistencyTest, NoHardCodedTestCounts) {
  // "N tests pass" claims go stale the moment a PR adds a suite; the verify
  // line is the durable way to state "the suite is green".
  const std::regex stale(R"(\b[0-9]+\+?\s+tests\s+pass)",
                         std::regex::icase);
  std::vector<fs::path> docs = UserDocs();
  docs.push_back(kRoot / "ROADMAP.md");
  for (const fs::path& doc : docs) {
    const std::string text = ReadFile(doc);
    std::smatch m;
    EXPECT_FALSE(std::regex_search(text, m, stale))
        << doc << " hard-codes a test count: \"" << m.str()
        << "\" — phrase it without the number";
  }
}

TEST(DocsConsistencyTest, EveryNamedBenchBaselineExists) {
  // Any BENCH_*.json a user-facing document names must exist as a committed
  // baseline under bench/ (ROADMAP is exempt: it names future benches).
  const std::regex bench_ref(R"(BENCH_[A-Za-z0-9_]+\.json)");
  std::set<std::string> named;
  for (const fs::path& doc : UserDocs()) {
    const std::string text = ReadFile(doc);
    for (std::sregex_iterator it(text.begin(), text.end(), bench_ref), end;
         it != end; ++it) {
      named.insert(it->str());
    }
  }
  EXPECT_GE(named.size(), 6u) << "the six gated baselines should be named";
  for (const std::string& name : named) {
    EXPECT_TRUE(fs::exists(kRoot / "bench" / name))
        << name << " is referenced in README/docs but not committed under "
                   "bench/";
  }
}

TEST(DocsConsistencyTest, RelativeMarkdownLinksResolve) {
  // [text](relative/path.md) links inside README and docs/ must point at
  // files that exist (anchors and absolute URLs are out of scope here; CI's
  // docs-check job covers the same ground pre-merge).
  const std::regex link(R"(\]\(([^)]+)\))");
  for (const fs::path& doc : UserDocs()) {
    const std::string text = ReadFile(doc);
    for (std::sregex_iterator it(text.begin(), text.end(), link), end;
         it != end; ++it) {
      std::string target = (*it)[1].str();
      if (target.empty() || target[0] == '#' ||
          target.find("://") != std::string::npos) {
        continue;
      }
      target = target.substr(0, target.find('#'));  // Strip the anchor.
      const fs::path resolved = doc.parent_path() / target;
      EXPECT_TRUE(fs::exists(resolved))
          << doc << " links to missing file: " << target;
    }
  }
}

}  // namespace
