// data/: the IMDB-star join substrate. The critical invariant: weighted counts
// over the materialized full-outer-join universe equal direct join
// computation on the base tables, for every table subset.
#include <unordered_map>

#include <gtest/gtest.h>

#include "data/imdb_star.h"
#include "workload/executor.h"
#include "workload/join_workload.h"

namespace uae::data {
namespace {

ImdbStarConfig SmallConfig() {
  ImdbStarConfig c;
  c.num_titles = 800;
  c.seed = 3;
  return c;
}

TEST(ImdbStarTest, UniverseShape) {
  JoinUniverse uni = BuildImdbStar(SmallConfig());
  EXPECT_EQ(uni.NumTables(), 3);
  EXPECT_EQ(uni.tables[0].name, "title");
  EXPECT_GE(uni.full_join_rows, 800u);  // At least one row per title.
  EXPECT_EQ(uni.universe.num_rows(), uni.full_join_rows);
  ASSERT_EQ(uni.base_tables.size(), 3u);
  EXPECT_EQ(uni.base_tables[0].num_rows(), 800u);
}

TEST(ImdbStarTest, NullExtensionConsistency) {
  JoinUniverse uni = BuildImdbStar(SmallConfig());
  // Whenever an indicator is 0, all that table's content columns are NULL
  // (code 0) and the fanout is 1.
  for (int t = 1; t < uni.NumTables(); ++t) {
    const JoinTableInfo& info = uni.tables[static_cast<size_t>(t)];
    for (size_t r = 0; r < uni.universe.num_rows(); ++r) {
      if (uni.universe.column(info.indicator_col).code_at(r) == 0) {
        for (int c : info.content_cols) {
          EXPECT_EQ(uni.universe.column(c).code_at(r), 0);
        }
        EXPECT_EQ(uni.FanoutAt(t, r), 1);
      } else {
        for (int c : info.content_cols) {
          EXPECT_GT(uni.universe.column(c).code_at(r), 0);
        }
      }
    }
  }
}

/// Direct (nested-loop) join cardinality over base tables for a subset mask.
double DirectJoinCard(const JoinUniverse& uni, const workload::JoinQuery& q) {
  // Per-title match counts per dimension table; fact predicate as filter.
  const Table& title = uni.base_tables[0];
  std::vector<double> card_per_title(title.num_rows(), 0.0);
  // Start: titles matching the fact filters contribute 1.
  workload::Query fact_q(title.num_cols());
  const JoinTableInfo& fact = uni.tables[0];
  for (size_t i = 0; i < fact.content_cols.size(); ++i) {
    fact_q.mutable_constraint(fact.base_content_cols[i]) =
        q.pred.constraint(fact.content_cols[i]);
  }
  for (size_t r = 0; r < title.num_rows(); ++r) {
    card_per_title[r] = fact_q.MatchesRow(title, r) ? 1.0 : 0.0;
  }
  for (int t = 1; t < uni.NumTables(); ++t) {
    if (!(q.table_mask & (1u << t))) continue;
    const JoinTableInfo& info = uni.tables[static_cast<size_t>(t)];
    const Table& base = uni.base_tables[static_cast<size_t>(info.base_table)];
    workload::Query base_q(base.num_cols());
    for (size_t i = 0; i < info.content_cols.size(); ++i) {
      const workload::Constraint& cons = q.pred.constraint(info.content_cols[i]);
      if (!cons.IsActive()) continue;
      workload::Constraint shifted = cons;
      if (shifted.kind == workload::Constraint::Kind::kRange) {
        shifted.lo = std::max(0, shifted.lo - 1);
        shifted.hi = shifted.hi - 1;
      }
      base_q.mutable_constraint(info.base_content_cols[i]) = shifted;
    }
    std::unordered_map<int32_t, int> matches;
    for (size_t r = 0; r < base.num_rows(); ++r) {
      if (base_q.MatchesRow(base, r)) ++matches[base.column(0).code_at(r)];
    }
    for (size_t i = 0; i < card_per_title.size(); ++i) {
      auto it = matches.find(static_cast<int32_t>(i));
      card_per_title[i] *= it == matches.end() ? 0.0 : it->second;
    }
  }
  double total = 0;
  for (double v : card_per_title) total += v;
  return total;
}

TEST(ImdbStarTest, WeightedUniverseCountEqualsDirectJoin) {
  JoinUniverse uni = BuildImdbStar(SmallConfig());
  util::Rng rng(5);
  // Many random queries over all subset masks.
  workload::JoinGeneratorConfig gc;
  gc.focused = false;
  workload::JoinQueryGenerator gen(uni, gc, 17);
  for (int i = 0; i < 30; ++i) {
    workload::JoinQuery q = gen.Generate();
    double via_universe = workload::JoinTrueCard(uni, q);
    double direct = DirectJoinCard(uni, q);
    EXPECT_NEAR(via_universe, direct, 1e-6 + direct * 1e-9)
        << "mask=" << q.table_mask << " query " << i;
  }
}

TEST(ImdbStarTest, FullMaskFocusedQueriesNonEmpty) {
  JoinUniverse uni = BuildImdbStar(SmallConfig());
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 23);
  auto w = gen.GenerateLabeled(20, nullptr);
  int nonzero = 0;
  for (const auto& lq : w) nonzero += lq.card > 0 ? 1 : 0;
  EXPECT_GT(nonzero, 10);
}

TEST(ImdbStarTest, JobMSchemaHasSixTables) {
  ImdbStarConfig c;
  c.num_titles = 300;
  c.dims = JobMDims();
  JoinUniverse uni = BuildImdbStar(c);
  EXPECT_EQ(uni.NumTables(), 6);
  EXPECT_EQ(uni.base_tables.size(), 6u);
}

TEST(ImdbStarTest, RestrictToSubsetDropsOtherPredicates) {
  JoinUniverse uni = BuildImdbStar(SmallConfig());
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 31);
  workload::JoinQuery q = gen.Generate();
  workload::JoinQuery sub = workload::RestrictToSubset(uni, q, 0b011);
  EXPECT_EQ(sub.table_mask, 0b011u);
  // movie_info predicates and indicator must be gone.
  const JoinTableInfo& mi = uni.tables[2];
  EXPECT_FALSE(sub.pred.constraint(mi.indicator_col).IsActive());
  for (int c : mi.content_cols) {
    EXPECT_FALSE(sub.pred.constraint(c).IsActive());
  }
}

}  // namespace
}  // namespace uae::data
