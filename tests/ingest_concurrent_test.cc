// ingest/ under concurrency (the TSan suite): multi-producer appends racing
// serving traffic through EstimationService, background staleness-driven
// refreshes hot-swapping generations mid-stream, readers pinning the live
// table against compaction — the full streaming stack exercised the way the
// bench drives it. Assertions are deliberately coarse (counts and liveness);
// the point is the interleavings TSan observes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "ingest/refresh.h"
#include "serve/service.h"
#include "shard/sharded_uae.h"
#include "workload/generator.h"

namespace uae::ingest {
namespace {

core::UaeConfig TinyConfig() {
  core::UaeConfig c;
  c.hidden = 8;
  c.ps_samples = 16;
  c.data_batch = 64;
  c.seed = 5;
  return c;
}

TEST(IngestConcurrentTest, ProducersServingRefreshAndCompactionRace) {
  data::Table table = data::SyntheticDmv(1500, 11);
  shard::ShardedUaeConfig sc;
  sc.base = TinyConfig();
  sc.partition.num_shards = 2;
  auto model = std::make_shared<shard::ShardedUae>(table, sc);
  model->TrainDataEpochs(1);
  serve::EstimationService service(model);

  IngestConfig ic;
  ic.max_batch = 32;
  ic.compact_min_delta = 256;  // Force compactions during the run.
  IngestService ingest(&table, &model->partitioner(), ic);

  RefreshConfig rc;
  rc.staleness.trigger_rows = 128;
  rc.data_epochs = 1;
  rc.period_ms = 5;
  RefreshController ctrl(&ingest, &service, model, rc);
  ctrl.Start();

  workload::GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 3;
  workload::QueryGenerator gen(table, gc, 77);
  std::vector<workload::Query> queries;
  for (int i = 0; i < 16; ++i) queries.push_back(gen.Generate());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};

  // Snapshot the replay stream up front: producers model an EXTERNAL source,
  // and unpinned live-row reads are off-contract once compaction can run.
  std::vector<std::vector<int32_t>> replay;
  for (size_t r = 0; r < 1500; ++r) replay.push_back(table.RowCodes(r));

  // Two producers streaming replayed rows.
  std::vector<std::thread> workers;
  for (int p = 0; p < 2; ++p) {
    workers.emplace_back([&, p] {
      for (int i = 0; i < 400; ++i) {
        if (!ingest.AppendCodes(
                replay[static_cast<size_t>(p * 31 + i) % 1500])) {
          break;
        }
      }
    });
  }
  // Two serving clients hammering the service across hot-swaps.
  for (int c = 0; c < 2; ++c) {
    workers.emplace_back([&] {
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        serve::ServeResult r = service.Estimate(queries[i++ % queries.size()]);
        EXPECT_GE(r.card, 0.0);
        served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // A reader repeatedly pinning the table and scanning recent rows (what the
  // bench's labeling pass does), racing appends and compaction.
  workers.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto pin = ingest.PinTable();
      const size_t n = table.num_rows();
      size_t sum = 0;
      for (size_t r = n > 64 ? n - 64 : 0; r < n; ++r) {
        sum += static_cast<size_t>(table.column(0).code_at(r));
      }
      EXPECT_GE(sum + 1, 1u);
    }
  });

  workers[0].join();
  workers[1].join();
  ingest.Flush();
  // Stop the poller, then run one uncontended cycle so at least one refresh
  // certainly happened even on a machine where the poll never fired.
  ctrl.Stop();
  ctrl.RefreshShards({});
  stop.store(true, std::memory_order_release);
  for (size_t i = 2; i < workers.size(); ++i) workers[i].join();
  ingest.Close();

  EXPECT_EQ(table.num_rows(), 1500u + 800u);
  EXPECT_EQ(ingest.stats().rows_appended, 800u);
  EXPECT_GT(served.load(), 0u);
  // Refreshes published: the served generation moved past the initial one.
  EXPECT_GT(service.CurrentGeneration(), 1u);
  // Every streamed row is accounted for in exactly one shard buffer.
  size_t routed = 0;
  for (int s = 0; s < ingest.num_shards(); ++s) {
    routed += ingest.shard_buffer(s).size();
  }
  EXPECT_EQ(routed, 800u);
}

TEST(IngestConcurrentTest, FlushIsABarrierUnderContention) {
  data::Table table = data::SyntheticDmv(500, 3);
  shard::PartitionConfig pc;
  pc.num_shards = 2;
  shard::HorizontalPartitioner part(table, pc);
  IngestConfig ic;
  ic.queue_capacity = 64;  // Small queue: exercise backpressure.
  ic.max_batch = 16;
  IngestService svc(&table, &part, ic);

  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&svc, &table, p] {
      for (int i = 0; i < 200; ++i) {
        EXPECT_TRUE(svc.AppendCodes(
            table.RowCodes(static_cast<size_t>(p + i) % 500)));
      }
    });
  }
  for (auto& t : producers) t.join();
  svc.Flush();
  EXPECT_EQ(table.num_rows(), 500u + 800u);
  EXPECT_EQ(svc.stats().rows_appended, 800u);
}

}  // namespace
}  // namespace uae::ingest
