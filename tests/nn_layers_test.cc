// nn/: MADE mask construction rules, layer forward shapes, residual blocks,
// and parameter serialization round-trips.
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/masks.h"
#include "nn/serialize.h"

namespace uae::nn {
namespace {

TEST(MasksTest, HiddenDegreesCycle) {
  auto d = HiddenDegrees(7, 4);  // Degrees cycle over 1..3.
  EXPECT_EQ(d, (std::vector<int>{1, 2, 3, 1, 2, 3, 1}));
  auto single = HiddenDegrees(3, 1);
  EXPECT_EQ(single, (std::vector<int>{1, 1, 1}));
}

TEST(MasksTest, InputMaskConnectivityRule) {
  // Columns with widths {2, 1}; degrees d(0)=1, d(1)=2. Hidden degrees {1,2}.
  Mat m = InputMask({2, 1}, {1, 2});
  // Col 0 features (rows 0-1): allowed for m(k) >= 1 => both hidden units.
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 1.f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 1.f);
  // Col 1 feature (row 2): allowed only for m(k) >= 2 => hidden unit 1.
  EXPECT_FLOAT_EQ(m.at(2, 0), 0.f);
  EXPECT_FLOAT_EQ(m.at(2, 1), 1.f);
}

TEST(MasksTest, HiddenMaskMonotone) {
  Mat m = HiddenMask({1, 2}, {1, 2});
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.f);  // 1 >= 1
  EXPECT_FLOAT_EQ(m.at(0, 1), 1.f);  // 2 >= 1
  EXPECT_FLOAT_EQ(m.at(1, 0), 0.f);  // 1 < 2
  EXPECT_FLOAT_EQ(m.at(1, 1), 1.f);  // 2 >= 2
}

TEST(MasksTest, HeadMaskStrictlyBelow) {
  // Head of column 0 (d=1) sees nothing; head of column 2 (d=3) sees m(k)<3.
  Mat head0 = HeadMask({1, 2}, 0, 4);
  EXPECT_FLOAT_EQ(head0.AbsMax(), 0.f);
  Mat head2 = HeadMask({1, 2}, 2, 4);
  EXPECT_FLOAT_EQ(head2.at(0, 0), 1.f);
  EXPECT_FLOAT_EQ(head2.at(1, 0), 1.f);
  Mat head1 = HeadMask({1, 2}, 1, 4);
  EXPECT_FLOAT_EQ(head1.at(0, 0), 1.f);  // m=1 < 2
  EXPECT_FLOAT_EQ(head1.at(1, 0), 0.f);  // m=2 not< 2
}

TEST(LayersTest, LinearForwardShape) {
  util::Rng rng(3);
  Linear fc(4, 6, "fc", &rng);
  Tensor x = Constant(Mat::Gaussian(5, 4, 1.f, &rng));
  Tensor y = fc.Forward(x);
  EXPECT_EQ(y->rows(), 5);
  EXPECT_EQ(y->cols(), 6);
  std::vector<NamedParam> params;
  fc.CollectParams(&params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "fc.w");
  EXPECT_EQ(params[1].name, "fc.b");
}

TEST(LayersTest, ResidualBlockPreservesShape) {
  util::Rng rng(5);
  auto degrees = HiddenDegrees(8, 3);
  MadeResidualBlock block(degrees, "blk", &rng);
  Tensor h = Constant(Mat::Gaussian(4, 8, 1.f, &rng));
  Tensor out = block.Forward(h);
  EXPECT_EQ(out->rows(), 4);
  EXPECT_EQ(out->cols(), 8);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  util::Rng rng(7);
  std::vector<NamedParam> params = {
      {"w1", Parameter(Mat::Gaussian(3, 4, 1.f, &rng))},
      {"b1", Parameter(Mat::Gaussian(1, 4, 1.f, &rng))},
  };
  std::string path = "/tmp/uae_serialize_test.bin";
  ASSERT_TRUE(SaveParams(path, params).ok());

  std::vector<NamedParam> loaded = {
      {"w1", Parameter(Mat::Zeros(3, 4))},
      {"b1", Parameter(Mat::Zeros(1, 4))},
  };
  ASSERT_TRUE(LoadParams(path, &loaded).ok());
  for (size_t p = 0; p < params.size(); ++p) {
    for (int r = 0; r < params[p].tensor->rows(); ++r) {
      for (int c = 0; c < params[p].tensor->cols(); ++c) {
        EXPECT_FLOAT_EQ(loaded[p].tensor->value().at(r, c),
                        params[p].tensor->value().at(r, c));
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(SerializeTest, ShapeMismatchRejected) {
  util::Rng rng(9);
  std::vector<NamedParam> params = {{"w", Parameter(Mat::Gaussian(2, 2, 1.f, &rng))}};
  std::string path = "/tmp/uae_serialize_mismatch.bin";
  ASSERT_TRUE(SaveParams(path, params).ok());
  std::vector<NamedParam> wrong_shape = {{"w", Parameter(Mat::Zeros(3, 2))}};
  EXPECT_FALSE(LoadParams(path, &wrong_shape).ok());
  std::vector<NamedParam> wrong_name = {{"v", Parameter(Mat::Zeros(2, 2))}};
  EXPECT_FALSE(LoadParams(path, &wrong_name).ok());
  std::filesystem::remove(path);
}

TEST(SerializeTest, TruncatedFileRejected) {
  util::Rng rng(13);
  std::vector<NamedParam> params = {{"w", Parameter(Mat::Gaussian(8, 8, 1.f, &rng))}};
  std::string path = "/tmp/uae_serialize_trunc.bin";
  ASSERT_TRUE(SaveParams(path, params).ok());
  // Truncate to half size.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  std::vector<NamedParam> loaded = {{"w", Parameter(Mat::Zeros(8, 8))}};
  EXPECT_FALSE(LoadParams(path, &loaded).ok());
  std::filesystem::remove(path);
}

TEST(SerializeTest, GarbageMagicRejected) {
  std::string path = "/tmp/uae_serialize_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint at all";
  }
  std::vector<NamedParam> loaded = {{"w", Parameter(Mat::Zeros(2, 2))}};
  EXPECT_FALSE(LoadParams(path, &loaded).ok());
  std::filesystem::remove(path);
}

TEST(SerializeTest, ParamCounts) {
  util::Rng rng(11);
  std::vector<NamedParam> params = {
      {"a", Parameter(Mat::Zeros(3, 4))},
      {"b", Parameter(Mat::Zeros(1, 5))},
  };
  EXPECT_EQ(ParamCount(params), 17u);
  EXPECT_EQ(ParamBytes(params), 17u * sizeof(float));
}

}  // namespace
}  // namespace uae::nn
