// estimators/: the classic baselines — sampling, AVI histograms, KDE,
// Feedback-KDE, BayesNet (Chow-Liu structure recovery), oracle.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "estimators/bayesnet.h"
#include "estimators/feedback_kde.h"
#include "estimators/histogram.h"
#include "estimators/kde.h"
#include "estimators/oracle.h"
#include "estimators/sampling.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace uae::estimators {
namespace {

workload::Workload TestQueries(const data::Table& t, int count, uint64_t seed) {
  workload::GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 3;
  workload::QueryGenerator gen(t, gc, seed);
  return gen.GenerateLabeled(static_cast<size_t>(count), nullptr);
}

double MedianError(const CardinalityEstimator& est, const workload::Workload& w) {
  std::vector<double> errors;
  for (const auto& lq : w) {
    errors.push_back(workload::QError(est.EstimateCard(lq.query), lq.card));
  }
  return util::Quantile(errors, 0.5);
}

TEST(OracleTest, ExactByConstruction) {
  data::Table t = data::TinyCorrelated(2000, 1);
  OracleEstimator oracle(t);
  for (const auto& lq : TestQueries(t, 20, 2)) {
    EXPECT_DOUBLE_EQ(oracle.EstimateCard(lq.query), lq.card);
  }
  EXPECT_EQ(oracle.SizeBytes(), 0u);
}

TEST(SamplingTest, FullSampleIsExact) {
  data::Table t = data::TinyCorrelated(1500, 3);
  SamplingEstimator sampling(t, 1.0, 7);
  for (const auto& lq : TestQueries(t, 20, 4)) {
    EXPECT_DOUBLE_EQ(sampling.EstimateCard(lq.query), lq.card);
  }
}

TEST(SamplingTest, SmallSampleApproximates) {
  data::Table t = data::SyntheticCensus(20000, 5);
  SamplingEstimator sampling(t, 0.10, 7);
  EXPECT_NEAR(static_cast<double>(sampling.sample_rows()), 2000.0, 1.0);
  auto w = TestQueries(t, 40, 6);
  EXPECT_LT(MedianError(sampling, w), 2.0);
  EXPECT_EQ(sampling.SizeBytes(),
            sampling.sample_rows() * static_cast<size_t>(t.num_cols()) * 4);
}

TEST(HistogramTest, SingleColumnRangeExact) {
  // With one bucket per distinct code the histogram is exact for ranges.
  data::Table t = data::TinyCorrelated(3000, 9);
  HistogramAviEstimator hist(t, /*buckets_per_column=*/1024);
  workload::Query q(t.num_cols());
  q.AddPredicate({0, workload::Op::kLe, 4, {}}, t.column(0).domain());
  double truth = static_cast<double>(workload::ExecuteCount(t, q));
  EXPECT_NEAR(hist.EstimateCard(q), truth, truth * 0.02 + 1);
}

TEST(HistogramTest, AviUnderestimatesCorrelation) {
  // On a perfectly correlated pair (b == a), AVI multiplies marginals and is
  // badly wrong for the joint point query — the motivating failure (§1).
  std::vector<int32_t> a;
  for (int i = 0; i < 4000; ++i) a.push_back(i % 4);
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("a", std::vector<int32_t>(a), 4));
  cols.push_back(data::Column::FromCodes("b", std::move(a), 4));
  data::Table t("corr", std::move(cols));
  HistogramAviEstimator hist(t, 16);
  workload::Query q(2);
  q.AddPredicate({0, workload::Op::kEq, 1, {}}, 4);
  q.AddPredicate({1, workload::Op::kEq, 1, {}}, 4);
  // Truth = 1000; AVI predicts 4000 * (1/4) * (1/4) = 250.
  EXPECT_NEAR(hist.EstimateCard(q), 250.0, 25.0);
}

TEST(KdeTest, ApproximatesOnSmoothData) {
  data::Table t = data::SyntheticCensus(10000, 11);
  KdeEstimator kde(t, 1500, 13);
  auto w = TestQueries(t, 40, 14);
  EXPECT_LT(MedianError(kde, w), 3.0);
}

TEST(KdeTest, BandwidthGradientMatchesFiniteDifference) {
  data::Table t = data::SyntheticCensus(3000, 15);
  KdeEstimator kde(t, 300, 16);
  auto w = TestQueries(t, 5, 17);
  for (const auto& lq : w) {
    std::vector<double> grad;
    kde.SelectivityAndGrad(lq.query, &grad);
    for (size_t d = 0; d < kde.bandwidths().size(); d += 5) {
      double h = 1e-4 * std::max(1.0, kde.bandwidths()[d]);
      double orig = kde.bandwidths()[d];
      kde.bandwidths()[d] = orig + h;
      double up = kde.SelectivityAndGrad(lq.query, nullptr);
      kde.bandwidths()[d] = orig - h;
      double down = kde.SelectivityAndGrad(lq.query, nullptr);
      kde.bandwidths()[d] = orig;
      double numeric = (up - down) / (2 * h);
      EXPECT_NEAR(grad[d], numeric, 1e-4 + 0.05 * std::fabs(numeric))
          << "bandwidth " << d;
    }
  }
}

TEST(FeedbackKdeTest, TuningReducesWorkloadError) {
  data::Table t = data::SyntheticCensus(8000, 19);
  workload::GeneratorConfig gc;
  workload::QueryGenerator gen(t, gc, 20);
  auto train = gen.GenerateLabeled(60, nullptr);

  FeedbackKdeEstimator fkde(t, 500, 21);
  double mse_before = 0;
  for (const auto& lq : train) {
    double sel = fkde.SelectivityAndGrad(lq.query, nullptr);
    mse_before += (sel - lq.selectivity) * (sel - lq.selectivity);
  }
  mse_before /= static_cast<double>(train.size());
  double mse_after = fkde.TuneBandwidths(train, 8);
  EXPECT_LE(mse_after, mse_before * 1.001);
}

TEST(BayesNetTest, RecoversPlantedChain) {
  // c0 -> c1 -> c2 chain with strong links: the Chow-Liu tree must connect
  // adjacent columns (in some direction).
  util::Rng rng(23);
  size_t n = 8000;
  std::vector<int32_t> c0(n), c1(n), c2(n);
  for (size_t i = 0; i < n; ++i) {
    c0[i] = static_cast<int32_t>(rng.UniformInt(0, 5));
    c1[i] = rng.Bernoulli(0.9) ? c0[i] : static_cast<int32_t>(rng.UniformInt(0, 5));
    c2[i] = rng.Bernoulli(0.9) ? c1[i] : static_cast<int32_t>(rng.UniformInt(0, 5));
  }
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromCodes("c0", std::move(c0), 6));
  cols.push_back(data::Column::FromCodes("c1", std::move(c1), 6));
  cols.push_back(data::Column::FromCodes("c2", std::move(c2), 6));
  data::Table t("chain", std::move(cols));
  BayesNetEstimator bn(t);
  // Tree edges: parent(1) ∈ {0,2}, and column 2's parent is 1 (c2 ⊥ c0 | c1,
  // and MI(c2,c1) > MI(c2,c0)).
  EXPECT_EQ(bn.parent(0), -1);
  EXPECT_EQ(bn.parent(1), 0);
  EXPECT_EQ(bn.parent(2), 1);
}

TEST(BayesNetTest, AccurateOnTreeDistributedData) {
  data::Table t = data::TinyCorrelated(8000, 25);
  BayesNetEstimator bn(t);
  auto w = TestQueries(t, 40, 26);
  EXPECT_LT(MedianError(bn, w), 1.5);
}

TEST(BayesNetTest, HandlesAllConstraintKinds) {
  data::Table t = data::TinyCorrelated(2000, 27);
  BayesNetEstimator bn(t);
  workload::Query q(t.num_cols());
  q.AddPredicate({0, workload::Op::kNeq, 2, {}}, t.column(0).domain());
  q.AddPredicate({1, workload::Op::kIn, 0, {0, 3}}, t.column(1).domain());
  q.AddPredicate({2, workload::Op::kGe, 1, {}}, t.column(2).domain());
  double est = bn.EstimateCard(q);
  double truth = static_cast<double>(workload::ExecuteCount(t, q));
  EXPECT_LT(workload::QError(est, truth), 2.0);
}

}  // namespace
}  // namespace uae::estimators
