// Concurrency hardening of serve::EstimationService: N client threads x M
// queries through the micro-batched service must be bit-identical to the
// sequential Uae::EstimateCard path (PR 1's per-query RNG determinism),
// with the result cache enabled and disabled, across batch compositions.
// Also covers the MicroBatcher admission policy and the sharded LRU cache
// in isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/uae.h"
#include "data/synthetic.h"
#include "serve/micro_batcher.h"
#include "serve/result_cache.h"
#include "serve/service.h"
#include "workload/generator.h"

namespace uae::serve {
namespace {

core::UaeConfig SmallConfig() {
  core::UaeConfig cfg;
  cfg.hidden = 32;
  cfg.ps_samples = 64;
  cfg.seed = 19;
  return cfg;
}

struct Fixture {
  data::Table table;
  std::shared_ptr<core::Uae> uae;
  std::vector<workload::Query> queries;
  std::vector<double> sequential;  ///< Reference estimates, one per query.

  Fixture() : table(data::TinyCorrelated(1000, 3)) {
    uae = std::make_shared<core::Uae>(table, SmallConfig());
    uae->TrainDataEpochs(2);
    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 3;
    workload::QueryGenerator gen(table, gc, 41);
    for (const auto& lq : gen.GenerateLabeled(24, nullptr)) {
      queries.push_back(lq.query);
    }
    for (const auto& q : queries) sequential.push_back(uae->EstimateCard(q));
  }
};

Fixture& Shared() {
  static Fixture* f = new Fixture();
  return *f;
}

/// N client threads, each submitting every query `rounds` times in a
/// thread-dependent order; every response must match the sequential
/// reference bitwise.
void HammerAndCheck(EstimationService& service, const Fixture& f,
                    int num_threads, int rounds) {
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < rounds; ++r) {
        for (size_t i = 0; i < f.queries.size(); ++i) {
          // Rotate the starting query per thread so concurrent batches mix
          // different compositions.
          size_t qi = (i + static_cast<size_t>(t)) % f.queries.size();
          ServeResult res = service.Estimate(f.queries[qi]);
          if (res.card != f.sequential[qi]) mismatches.fetch_add(1);
          if (res.generation != 1) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServeServiceTest, ConcurrentParityWithCache) {
  Fixture& f = Shared();
  ServiceConfig cfg;
  cfg.max_batch = 16;
  cfg.max_wait_us = 100;
  EstimationService service(f.uae, cfg);
  HammerAndCheck(service, f, /*num_threads=*/8, /*rounds=*/3);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.requests, 8u * 3u * f.queries.size());
  // Every query repeats 24 times across threads/rounds; the cache must have
  // answered some of them.
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_GT(stats.batches, 0u);
}

TEST(ServeServiceTest, ConcurrentParityWithoutCache) {
  Fixture& f = Shared();
  ServiceConfig cfg;
  cfg.cache_enabled = false;
  cfg.max_batch = 8;
  cfg.max_wait_us = 100;
  EstimationService service(f.uae, cfg);
  HammerAndCheck(service, f, /*num_threads=*/6, /*rounds=*/2);

  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  // Without a cache every request is model-evaluated (batched or inline).
  EXPECT_EQ(stats.batched_queries + stats.inline_requests, stats.requests);
}

TEST(ServeServiceTest, SingleThreadMatchesSequential) {
  Fixture& f = Shared();
  EstimationService service(f.uae);
  for (size_t i = 0; i < f.queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(service.EstimateCard(f.queries[i]), f.sequential[i]);
  }
}

TEST(ServeServiceTest, CacheHitAndMissPathsAgree) {
  Fixture& f = Shared();
  EstimationService service(f.uae);
  ServeResult first = service.Estimate(f.queries[0]);
  EXPECT_FALSE(first.cache_hit);
  ServeResult second = service.Estimate(f.queries[0]);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.card, second.card);
  EXPECT_EQ(first.generation, second.generation);
}

TEST(ServeServiceTest, AsyncBatchSubmissionMatchesSequential) {
  Fixture& f = Shared();
  ServiceConfig cfg;
  cfg.max_batch = 32;
  cfg.max_wait_us = 500;
  EstimationService service(f.uae, cfg);
  std::vector<std::future<ServeResult>> futures;
  for (const auto& q : f.queries) futures.push_back(service.EstimateAsync(q));
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_DOUBLE_EQ(futures[i].get().card, f.sequential[i]);
  }
  // One submitter + generous deadline: requests must have coalesced.
  EXPECT_GT(service.Stats().max_batch_observed, 1u);
}

TEST(ServeServiceTest, TinyQueueBackpressureStillCorrect) {
  Fixture& f = Shared();
  ServiceConfig cfg;
  cfg.queue_capacity = 2;  // Forces Push to block and batches to stay small.
  cfg.max_batch = 4;
  cfg.max_wait_us = 50;
  EstimationService service(f.uae, cfg);
  HammerAndCheck(service, f, /*num_threads=*/4, /*rounds=*/1);
}

// ---- Stats under adaptation -----------------------------------------------

TEST(ServeServiceTest, PerGenerationCountersReconcileAcrossSwap) {
  Fixture& f = Shared();
  EstimationService service(f.uae);
  // Client-side tally of which generation answered each request; the service's
  // per-generation counters must agree exactly.
  std::map<uint64_t, uint64_t> client_tally;
  for (size_t i = 0; i < 12; ++i) {
    client_tally[service.Estimate(f.queries[i]).generation]++;
  }
  service.PublishSnapshot(std::shared_ptr<const core::Uae>(f.uae->Clone()));
  for (size_t i = 0; i < f.queries.size(); ++i) {
    client_tally[service.Estimate(f.queries[i]).generation]++;
  }
  std::map<uint64_t, uint64_t> service_tally;
  for (const auto& [gen, count] : service.AnsweredByGeneration()) {
    service_tally[gen] = count;
  }
  EXPECT_EQ(service_tally, client_tally);
  EXPECT_EQ(service.AnsweredForGeneration(1), 12u);
  EXPECT_EQ(service.AnsweredForGeneration(2), f.queries.size());
  EXPECT_EQ(service.AnsweredForGeneration(99), 0u);
}

TEST(ServeServiceTest, ConcurrentPerGenerationCountersCoverEveryRequest) {
  Fixture& f = Shared();
  EstimationService service(f.uae);
  constexpr int kThreads = 6, kRounds = 2;
  std::atomic<uint64_t> client_total{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        for (const auto& q : f.queries) {
          (void)service.Estimate(q);
          client_total.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  // Every response is attributed to exactly one generation.
  uint64_t answered = 0;
  for (const auto& [gen, count] : service.AnsweredByGeneration()) answered += count;
  EXPECT_EQ(answered, client_total.load());
  EXPECT_EQ(answered, service.Stats().requests);
}

TEST(ServeServiceTest, CacheStatsReconcileWithServiceCounters) {
  Fixture& f = Shared();
  ServiceConfig cfg;
  cfg.cache.capacity = 8;  // Small enough to force evictions over 24 queries.
  cfg.cache.shards = 1;
  EstimationService service(f.uae, cfg);
  for (int round = 0; round < 3; ++round) {
    for (const auto& q : f.queries) (void)service.Estimate(q);
  }
  ServiceStats stats = service.Stats();
  ResultCacheStats cache = service.CacheStats();
  // Every service-level cache hit is a cache-level hit; the cache may see
  // extra lookups (batch-side re-checks), all accounted as misses.
  EXPECT_EQ(stats.cache_hits, cache.hits);
  EXPECT_GE(cache.misses, stats.requests - stats.cache_hits);
  // Model evaluations insert; insertions beyond capacity evict.
  EXPECT_GE(cache.insertions, cache.evictions);
  EXPECT_GT(cache.evictions, 0u);
  EXPECT_LE(service.CacheStats().insertions - service.CacheStats().evictions,
            cfg.cache.capacity);
  // Eager generation eviction is visible through the same counter.
  uint64_t before = service.CacheStats().evictions;
  service.PublishSnapshot(std::shared_ptr<const core::Uae>(f.uae->Clone()));
  EXPECT_GT(service.CacheStats().evictions, before);
}

TEST(ServeServiceTest, QueueLatencyAndDepthObservability) {
  Fixture& f = Shared();
  ServiceConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 200;
  cfg.cache_enabled = false;  // Force every request through the queue.
  EstimationService service(f.uae, cfg);
  for (size_t i = 0; i < 3; ++i) {
    (void)service.Estimate(f.queries[i % f.queries.size()]);
  }
  LatencySnapshot lat = service.QueueLatency();
  EXPECT_GE(lat.count, 3u);  // Every queued request's wait was recorded.
  EXPECT_GE(lat.p99_us, lat.p50_us);
  EXPECT_GE(static_cast<double>(lat.max_us) * 1.125, lat.p99_us);
  EXPECT_EQ(service.QueueDepth(), 0u);  // Blocking calls leave the queue idle.
}

// ---- MicroBatcher unit coverage -------------------------------------------

TEST(MicroBatcherTest, CoalescesUpToMaxBatch) {
  MicroBatcher batcher(/*queue_capacity=*/64, /*max_batch=*/4,
                       std::chrono::microseconds(50'000));
  for (int i = 0; i < 6; ++i) {
    EstimateRequest req;
    req.fingerprint = static_cast<uint64_t>(i);
    ASSERT_TRUE(batcher.Push(std::move(req)));
  }
  std::vector<EstimateRequest> first = batcher.PopBatch();
  EXPECT_EQ(first.size(), 4u);  // Capped at max_batch.
  EXPECT_EQ(first[0].fingerprint, 0u);  // FIFO order.
  std::vector<EstimateRequest> second = batcher.PopBatch();
  EXPECT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0].fingerprint, 4u);
}

TEST(MicroBatcherTest, DeadlineFlushesPartialBatch) {
  MicroBatcher batcher(/*queue_capacity=*/64, /*max_batch=*/1000,
                       std::chrono::microseconds(2'000));
  EstimateRequest req;
  ASSERT_TRUE(batcher.Push(std::move(req)));
  auto start = std::chrono::steady_clock::now();
  std::vector<EstimateRequest> batch = batcher.PopBatch();
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch.size(), 1u);
  // Must flush at the deadline, far before any "wait for 1000 requests".
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(MicroBatcherTest, DeadlineAnchorsAtArrivalNotDispatcherWakeup) {
  // Regression: the admission deadline used to be anchored at dispatcher
  // wake-up (`now() + max_wait` inside PopBatch). With a dispatcher that
  // lags behind Push — busy running the previous batch — a request could
  // wait its queue time PLUS a full max_wait, up to ~2x the configured
  // bound. The deadline is now anchored at the oldest queued request's
  // arrival: if max_wait already elapsed in the queue, PopBatch must flush
  // immediately instead of parking for another max_wait.
  constexpr auto kMaxWait = std::chrono::microseconds(200'000);
  MicroBatcher batcher(/*queue_capacity=*/64, /*max_batch=*/1000, kMaxWait);
  EstimateRequest req;
  ASSERT_TRUE(batcher.Push(std::move(req)));
  // Deliberately delayed dispatcher: the request ages past max_wait.
  std::this_thread::sleep_for(kMaxWait + std::chrono::microseconds(20'000));
  auto start = std::chrono::steady_clock::now();
  std::vector<EstimateRequest> batch = batcher.PopBatch();
  auto parked = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch.size(), 1u);
  // Pre-fix this parked for the full 200ms max_wait; post-fix the deadline
  // is already expired and the flush is immediate. Half max_wait keeps the
  // margin symmetric against scheduler noise.
  EXPECT_LT(parked, kMaxWait / 2);
}

TEST(MicroBatcherTest, DepthAndOldestWaitTrackQueue) {
  MicroBatcher batcher(/*queue_capacity=*/64, /*max_batch=*/4,
                       std::chrono::microseconds(100'000));
  EXPECT_EQ(batcher.Depth(), 0u);
  EXPECT_EQ(batcher.OldestWaitMicros(), 0u);
  for (int i = 0; i < 3; ++i) {
    EstimateRequest req;
    ASSERT_TRUE(batcher.Push(std::move(req)));
  }
  EXPECT_EQ(batcher.Depth(), 3u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(batcher.OldestWaitMicros(), 1'000u);  // Aged at least a little.
  EXPECT_EQ(batcher.PopBatch().size(), 3u);
  EXPECT_EQ(batcher.Depth(), 0u);
  EXPECT_EQ(batcher.OldestWaitMicros(), 0u);
}

TEST(MicroBatcherTest, CloseDrainsAndUnblocks) {
  MicroBatcher batcher(/*queue_capacity=*/8, /*max_batch=*/4,
                       std::chrono::microseconds(100));
  EstimateRequest req;
  ASSERT_TRUE(batcher.Push(std::move(req)));
  batcher.Close();
  EXPECT_EQ(batcher.PopBatch().size(), 1u);  // Queued work still drains.
  EXPECT_TRUE(batcher.PopBatch().empty());   // Then reports closed.
  EstimateRequest late;
  EXPECT_FALSE(batcher.Push(std::move(late)));
}

// ---- ResultCache unit coverage --------------------------------------------

TEST(ResultCacheTest, GenerationIsPartOfTheKey) {
  ResultCache cache(ResultCacheConfig{.capacity = 64, .shards = 4});
  cache.Insert(/*fingerprint=*/7, /*generation=*/1, 100.0);
  EXPECT_TRUE(cache.Lookup(7, 1).has_value());
  EXPECT_FALSE(cache.Lookup(7, 2).has_value());  // Swap == implicit miss.
  cache.Insert(7, 2, 200.0);
  EXPECT_EQ(cache.Lookup(7, 1).value(), 100.0);
  EXPECT_EQ(cache.Lookup(7, 2).value(), 200.0);
}

TEST(ResultCacheTest, LruEvictsColdEntries) {
  // One shard so the LRU order is fully observable.
  ResultCache cache(ResultCacheConfig{.capacity = 4, .shards = 1});
  for (uint64_t fp = 0; fp < 4; ++fp) cache.Insert(fp, 1, static_cast<double>(fp));
  ASSERT_EQ(cache.Size(), 4u);
  cache.Lookup(0, 1);   // Touch 0 -> most recent; 1 is now the LRU tail.
  cache.Insert(9, 1, 9.0);
  EXPECT_TRUE(cache.Lookup(0, 1).has_value());
  EXPECT_FALSE(cache.Lookup(1, 1).has_value());
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(ResultCacheTest, EvictBelowGenerationDropsStaleOnly) {
  ResultCache cache(ResultCacheConfig{.capacity = 64, .shards = 4});
  for (uint64_t fp = 0; fp < 8; ++fp) cache.Insert(fp, 1, 1.0);
  for (uint64_t fp = 0; fp < 8; ++fp) cache.Insert(fp, 2, 2.0);
  cache.EvictBelowGeneration(2);
  EXPECT_EQ(cache.Size(), 8u);
  for (uint64_t fp = 0; fp < 8; ++fp) {
    EXPECT_FALSE(cache.Lookup(fp, 1).has_value());
    EXPECT_TRUE(cache.Lookup(fp, 2).has_value());
  }
}

TEST(ResultCacheTest, ConcurrentMixedWorkloadIsConsistent) {
  ResultCache cache(ResultCacheConfig{.capacity = 256, .shards = 8});
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        uint64_t fp = static_cast<uint64_t>((i * 7 + t) % 512);
        double expect = static_cast<double>(fp) * 3.0;
        if (auto v = cache.Lookup(fp, 1)) {
          if (*v != expect) wrong.fetch_add(1);
        } else {
          cache.Insert(fp, 1, expect);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace uae::serve
