// data/ delta region + overflow dictionary: the dictionary-stable append
// contract the streaming-ingest subsystem is built on —
//  * appended rows become visible atomically below a published num_rows();
//  * unseen values get stable codes above the frozen domain, resolvable both
//    ways (CodeForValue / ValueForCode) without any remapping of frozen codes;
//  * Gather/Slice materialize delta rows and keep the full dictionary, so a
//    snapshot taken at any published count reads identically after appends
//    and after FoldDelta;
//  * AppendRowCodes validates arity and code bounds (regression: it used to
//    silently accept both).
#include <gtest/gtest.h>

#include <vector>

#include "data/table.h"

namespace uae::data {
namespace {

Table MakeTable() {
  std::vector<Column> cols;
  cols.push_back(Column::FromInts("a", {10, 20, 30, 10}));
  cols.push_back(Column::FromInts("b", {1, 2, 3, 4}));
  return Table("t", std::move(cols));
}

TEST(DeltaColumnTest, AppendDeltaCodesAreLiveAndFoldKeepsIndices) {
  Table t = MakeTable();
  ASSERT_EQ(t.num_rows(), 4u);
  ASSERT_TRUE(t.AppendDeltaRowCodes(std::vector<int32_t>{2, 0}).ok());
  ASSERT_TRUE(t.AppendDeltaRowCodes(std::vector<int32_t>{0, 3}).ok());
  EXPECT_EQ(t.num_rows(), 6u);
  EXPECT_EQ(t.base_rows(), 4u);
  EXPECT_EQ(t.delta_rows(), 2u);
  EXPECT_EQ(t.column(0).code_at(4), 2);
  EXPECT_EQ(t.column(0).code_at(5), 0);
  EXPECT_EQ(t.RowCodes(5), (std::vector<int32_t>{0, 3}));

  const uint64_t gen = t.fold_generation();
  EXPECT_EQ(t.FoldDelta(), 2u);
  EXPECT_EQ(t.fold_generation(), gen + 1);
  EXPECT_EQ(t.base_rows(), 6u);
  EXPECT_EQ(t.delta_rows(), 0u);
  // Folding moves storage only: every row index decodes identically.
  EXPECT_EQ(t.column(0).code_at(4), 2);
  EXPECT_EQ(t.RowCodes(5), (std::vector<int32_t>{0, 3}));
  // Idempotent when empty.
  EXPECT_EQ(t.FoldDelta(), 0u);
  EXPECT_EQ(t.fold_generation(), gen + 1);
}

TEST(DeltaColumnTest, UnseenValuesGetStableOverflowCodes) {
  Table t = MakeTable();
  const int32_t frozen = t.column(0).domain();
  ASSERT_EQ(frozen, 3);  // {10, 20, 30}.

  std::vector<int32_t> codes;
  std::vector<Value> row1 = {Value(int64_t{25}), Value(int64_t{1})};
  EXPECT_EQ(t.EncodeAppendRow(row1, &codes), 1);  // 25 is unseen.
  EXPECT_EQ(codes[0], frozen);                    // First overflow code.
  ASSERT_TRUE(t.AppendDeltaRowCodes(codes).ok());

  // The same unseen value encodes to the SAME overflow code again...
  std::vector<Value> row2 = {Value(int64_t{25}), Value(int64_t{2})};
  EXPECT_EQ(t.EncodeAppendRow(row2, &codes), 0);
  EXPECT_EQ(codes[0], frozen);
  // ...and a different unseen value gets the next one.
  std::vector<Value> row3 = {Value(int64_t{7}), Value(int64_t{3})};
  EXPECT_EQ(t.EncodeAppendRow(row3, &codes), 1);
  EXPECT_EQ(codes[0], frozen + 1);

  const Column& c = t.column(0);
  EXPECT_EQ(c.total_domain(), frozen + 2);
  EXPECT_EQ(c.overflow_size(), 2);
  // Both directions resolve without touching frozen codes.
  EXPECT_EQ(c.ValueForCode(frozen).AsInt(), 25);
  EXPECT_EQ(c.ValueForCode(frozen + 1).AsInt(), 7);
  ASSERT_TRUE(c.CodeForValue(Value(int64_t{25})).has_value());
  EXPECT_EQ(*c.CodeForValue(Value(int64_t{25})), frozen);
  // Frozen dictionary untouched: same codes as before any append.
  EXPECT_EQ(*c.CodeForValue(Value(int64_t{10})), 0);
  EXPECT_EQ(*c.CodeForValue(Value(int64_t{30})), 2);
}

TEST(DeltaColumnTest, FrequenciesCoverDeltaAndOverflow) {
  Table t = MakeTable();
  // Prime the cache at the frozen size, then append.
  EXPECT_EQ(t.column(0).Frequencies().size(), 3u);
  std::vector<int32_t> codes;
  std::vector<Value> row = {Value(int64_t{25}), Value(int64_t{1})};
  t.EncodeAppendRow(row, &codes);
  ASSERT_TRUE(t.AppendDeltaRowCodes(codes).ok());
  ASSERT_TRUE(t.AppendDeltaRowCodes(std::vector<int32_t>{0, 0}).ok());
  const std::vector<int64_t>& freq = t.column(0).Frequencies();
  ASSERT_EQ(freq.size(), 4u);  // 3 frozen + 1 overflow.
  EXPECT_EQ(freq[0], 3);       // Two base rows of 10 + one delta.
  EXPECT_EQ(freq[3], 1);       // The overflow value 25.
}

TEST(DeltaColumnTest, GatherMaterializesDeltaRowsWithFullDictionary) {
  Table t = MakeTable();
  std::vector<int32_t> codes;
  std::vector<Value> row = {Value(int64_t{25}), Value(int64_t{2})};
  t.EncodeAppendRow(row, &codes);
  ASSERT_TRUE(t.AppendDeltaRowCodes(codes).ok());

  std::vector<size_t> rows = {1, 4};  // One base row, one delta row.
  Table g = t.Gather(rows, "g");
  ASSERT_EQ(g.num_rows(), 2u);
  EXPECT_EQ(g.delta_rows(), 0u);  // Fully materialized snapshot.
  EXPECT_EQ(g.column(0).code_at(0), t.column(0).code_at(1));
  EXPECT_EQ(g.column(0).code_at(1), t.column(0).domain());  // Overflow code.
  // The gathered column still decodes the overflow code.
  EXPECT_EQ(g.column(0).ValueForCode(g.column(0).code_at(1)).AsInt(), 25);
  EXPECT_EQ(g.column(0).total_domain(), t.column(0).total_domain());
}

TEST(DeltaColumnTest, SliceKeepsRealDictionaryValues) {
  // Regression: Slice used to rebuild an implicit 0..domain-1 integer
  // dictionary, silently losing the actual values of non-contiguous dicts.
  Table t = MakeTable();
  Table s = t.Slice(1, 3, "s");
  ASSERT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.column(0).domain(), t.column(0).domain());
  EXPECT_EQ(s.column(0).ValueForCode(s.column(0).code_at(0)).AsInt(), 20);
  EXPECT_EQ(s.column(0).ValueForCode(s.column(0).code_at(1)).AsInt(), 30);
}

TEST(TableAppendValidation, WrongArityRejected) {
  // Regression: pre-fix AppendRowCodes CHECK-crashed on arity in debug but
  // silently built a ragged table in release; now it reports InvalidArgument.
  Table t = MakeTable();
  util::Status s = t.AppendRowCodes({0});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(t.num_rows(), 4u);  // Nothing was appended.
}

TEST(TableAppendValidation, OutOfDomainCodeRejected) {
  // Regression: pre-fix AppendRowCodes pushed any code into the column store
  // (bounds were DCHECK-only), corrupting Frequencies() and every
  // domain-sized mask downstream.
  Table t = MakeTable();
  util::Status s = t.AppendRowCodes({99, 0});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(t.num_rows(), 4u);
  util::Status neg = t.AppendRowCodes({-1, 0});
  EXPECT_FALSE(neg.ok());
  // A valid row still goes through, including into overflow space.
  EXPECT_TRUE(t.AppendRowCodes({2, 3}).ok());
  EXPECT_EQ(t.num_rows(), 5u);
}

TEST(TableAppendValidation, BaseAppendRefusedWhileDeltaOpen) {
  Table t = MakeTable();
  ASSERT_TRUE(t.AppendDeltaRowCodes(std::vector<int32_t>{0, 0}).ok());
  util::Status s = t.AppendRowCodes({0, 0});
  EXPECT_FALSE(s.ok());  // Base append would reorder rows past the delta.
  EXPECT_EQ(t.num_rows(), 5u);
  t.FoldDelta();
  EXPECT_TRUE(t.AppendRowCodes({0, 0}).ok());
}

TEST(TableAppendValidation, DeltaAppendValidatesToo) {
  Table t = MakeTable();
  EXPECT_FALSE(t.AppendDeltaRowCodes(std::vector<int32_t>{0}).ok());
  EXPECT_FALSE(t.AppendDeltaRowCodes(std::vector<int32_t>{99, 0}).ok());
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.column(0).delta_rows(), 0u);  // No partial column append.
}

TEST(SnapshotConsistency, CopyPinsRowCountAndGatherHonorsSnapshotRows) {
  // The stale-size audit: a snapshot (copy) taken at a published count must
  // keep reading the same rows while the source keeps growing.
  Table t = MakeTable();
  ASSERT_TRUE(t.AppendDeltaRowCodes(std::vector<int32_t>{1, 1}).ok());
  Table snap = t;  // Snapshot at 5 rows.
  ASSERT_TRUE(t.AppendDeltaRowCodes(std::vector<int32_t>{2, 2}).ok());
  ASSERT_TRUE(t.AppendDeltaRowCodes(std::vector<int32_t>{0, 3}).ok());

  EXPECT_EQ(snap.num_rows(), 5u);
  EXPECT_EQ(t.num_rows(), 7u);
  EXPECT_EQ(snap.RowCodes(4), (std::vector<int32_t>{1, 1}));
  // Gathering the snapshot's rows gives exactly the snapshot's data.
  std::vector<size_t> rows = {0, 4};
  Table g = snap.Gather(rows, "g");
  EXPECT_EQ(g.RowCodes(1), (std::vector<int32_t>{1, 1}));
}

}  // namespace
}  // namespace uae::data
