// optimizer/subplan_memo: canonical-hash invariance (clause reordering,
// restricted vs unrestricted spellings), the miss -> observe -> hit
// lifecycle with log-space EMA smoothing, bitwise persistence round trips,
// and the executed-plan feedback path (RecordPlanFeedback + refresher).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "data/imdb_star.h"
#include "optimizer/card_provider.h"
#include "optimizer/dp_optimizer.h"
#include "optimizer/executor.h"
#include "optimizer/subplan_memo.h"
#include "workload/join_workload.h"

namespace uae::optimizer {
namespace {

data::JoinUniverse SmallUniverse() {
  data::ImdbStarConfig c;
  c.num_titles = 600;
  c.seed = 9;
  return data::BuildImdbStar(c);
}

workload::Constraint Range(int32_t lo, int32_t hi) {
  workload::Constraint c;
  c.kind = workload::Constraint::Kind::kRange;
  c.lo = lo;
  c.hi = hi;
  return c;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + name;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(SubplanFssTest, InvariantToClauseOrder) {
  data::JoinUniverse uni = SmallUniverse();
  const int nc = uni.universe.num_cols();
  const int col_a = uni.tables[0].content_cols.front();
  const int col_b = uni.tables[1].content_cols.front();
  const int col_c = uni.tables[1].content_cols.back();
  ASSERT_NE(col_a, col_b);
  ASSERT_NE(col_b, col_c);
  // Two range clauses added in opposite orders: Query stores one intersected
  // constraint per column, so both spellings are the same sub-plan and must
  // hash identically.
  workload::JoinQuery a;
  a.table_mask = 0b111;
  a.pred = workload::Query(nc);
  a.pred.mutable_constraint(col_a) = Range(1, 8);
  a.pred.mutable_constraint(col_b) = Range(2, 6);

  workload::JoinQuery b;
  b.table_mask = 0b111;
  b.pred = workload::Query(nc);
  b.pred.mutable_constraint(col_b) = Range(2, 6);
  b.pred.mutable_constraint(col_a) = Range(1, 8);

  EXPECT_EQ(SubplanFss(uni, a), SubplanFss(uni, b));
  // ... and constraining one more column changes the hash (non-vacuity).
  workload::JoinQuery c = a;
  c.pred.mutable_constraint(col_c) = Range(0, 3);
  EXPECT_NE(SubplanFss(uni, a), SubplanFss(uni, c));

  // Intersecting clause pairs commute the same way.
  workload::Constraint c1 = Range(1, 10);
  workload::Constraint c2 = Range(4, 20);
  workload::JoinQuery x = a, y = a;
  x.pred.mutable_constraint(col_c) =
      workload::IntersectConstraints(c1, c2, /*domain=*/64);
  y.pred.mutable_constraint(col_c) =
      workload::IntersectConstraints(c2, c1, /*domain=*/64);
  EXPECT_EQ(SubplanFss(uni, x), SubplanFss(uni, y));
}

TEST(SubplanFssTest, IgnoresConstraintsOutsideTheTableSet) {
  data::JoinUniverse uni = SmallUniverse();
  workload::JoinQuery full;
  full.table_mask = 0b111;
  full.pred = workload::Query(uni.universe.num_cols());
  // Constrain one column of every table.
  for (int t = 0; t < uni.NumTables(); ++t) {
    int col = uni.tables[static_cast<size_t>(t)].content_cols.front();
    full.pred.mutable_constraint(col) = Range(0, 3);
  }
  // Restricting to {fact, table 1} must agree with hashing the unrestricted
  // predicate under the restricted mask: out-of-set constraints are ignored.
  workload::JoinQuery restricted = RestrictToSubset(uni, full, 0b011);
  workload::JoinQuery unrestricted = full;
  unrestricted.table_mask = 0b011;
  EXPECT_EQ(SubplanFss(uni, restricted), SubplanFss(uni, unrestricted));
  // ... and differ from the full sub-plan.
  EXPECT_NE(SubplanFss(uni, restricted), SubplanFss(uni, full));
}

TEST(SubplanFssTest, DistinctAcrossSubplansAndPredicates) {
  data::JoinUniverse uni = SmallUniverse();
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 77);
  std::unordered_set<uint64_t> seen;
  for (int i = 0; i < 16; ++i) {
    workload::JoinQuery q = gen.Generate();
    for (uint32_t s = 1; s <= q.table_mask; ++s) {
      if ((s & q.table_mask) != s || !(s & 1u)) continue;
      seen.insert(SubplanFss(uni, RestrictToSubset(uni, q, s)));
    }
  }
  // All (query, submask) pairs hash distinctly at this scale.
  EXPECT_GE(seen.size(), 16u * 3u);
}

TEST(SubplanMemoTest, MissObserveHitLifecycle) {
  SubplanMemo memo;
  EXPECT_FALSE(memo.Lookup(42).has_value());
  memo.Observe(42, 1000.0);
  ASSERT_TRUE(memo.Lookup(42).has_value());
  EXPECT_NEAR(*memo.Lookup(42), 1000.0, 1e-9);
  EXPECT_EQ(memo.Size(), 1u);

  // Log-space EMA with the default smoothing 0.5: observing 10x the old
  // value moves the memo to the geometric midpoint.
  memo.Observe(42, 10000.0);
  EXPECT_NEAR(*memo.Lookup(42), std::sqrt(1000.0 * 10000.0), 1e-6);

  SubplanMemoStats stats = memo.Stats();
  EXPECT_EQ(stats.observations, 2u);
  EXPECT_GE(stats.hits, 3u);
}

TEST(SubplanMemoTest, MinObservationsGateLookups) {
  SubplanMemoConfig cfg;
  cfg.min_observations = 2;
  SubplanMemo memo(cfg);
  memo.Observe(7, 500.0);
  EXPECT_FALSE(memo.Lookup(7).has_value()) << "one observation must not serve";
  memo.Observe(7, 500.0);
  ASSERT_TRUE(memo.Lookup(7).has_value());
  EXPECT_NEAR(*memo.Lookup(7), 500.0, 1e-9);
}

TEST(SubplanMemoTest, PersistenceRoundTripIsBitwise) {
  SubplanMemo memo;
  // Values chosen to have non-trivial mantissas.
  memo.Observe(3, 1234.5678);
  memo.Observe(1, 9.999999999);
  memo.Observe(2, 7.0);
  memo.Observe(2, 77777.77);  // EMA'd entry.
  const std::string path = TempPath("memo_roundtrip.bin");
  ASSERT_TRUE(memo.Save(path).ok());

  SubplanMemo loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  std::vector<SubplanMemoEntry> a = memo.Entries();
  std::vector<SubplanMemoEntry> b = loaded.Entries();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fss, b[i].fss);
    EXPECT_EQ(a[i].nobs, b[i].nobs);
    // Bitwise, not approximate: persistence stores raw IEEE-754 bits.
    EXPECT_EQ(std::memcmp(&a[i].log_card, &b[i].log_card, sizeof(double)), 0);
  }

  // Save -> load -> save reproduces the file byte for byte (entries are
  // written sorted by fss).
  const std::string path2 = TempPath("memo_roundtrip2.bin");
  ASSERT_TRUE(loaded.Save(path2).ok());
  EXPECT_EQ(FileBytes(path), FileBytes(path2));
}

TEST(SubplanMemoTest, LoadRejectsGarbage) {
  const std::string path = TempPath("memo_garbage.bin");
  std::ofstream(path, std::ios::binary) << "not a memo file";
  SubplanMemo memo;
  EXPECT_FALSE(memo.Load(path).ok());
  EXPECT_FALSE(memo.Load(TempPath("memo_missing.bin")).ok());
}

TEST(SubplanFeedbackTest, ExecutedPlanRefreshesMemoWithTrueCards) {
  data::JoinUniverse uni = SmallUniverse();
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 91);
  workload::JoinQuery q = gen.Generate();

  TrueCardProvider truth(uni);
  PlanResult plan = OptimizeJoinOrder(uni, q, &truth);
  ExecutionResult r = ExecutePlan(uni, q, plan.join_order);
  ASSERT_EQ(r.step_rows.size(), plan.join_order.size() - 1);

  online::FeedbackCollector collector;
  size_t added = RecordPlanFeedback(uni, q, plan.join_order, r.step_rows,
                                    /*generation=*/1, &collector);
  EXPECT_EQ(added, r.step_rows.size());

  SubplanMemo memo;
  SubplanMemoRefresher refresher(uni, &memo, &collector);
  EXPECT_EQ(refresher.RefreshOnce(), added);
  EXPECT_EQ(memo.Size(), added);

  // Every >= 2-table prefix of the executed plan is memoized with its TRUE
  // cardinality — which for prefixes equals the executor's intermediate size.
  uint32_t prefix = 1u << plan.join_order[0];
  for (size_t step = 1; step < plan.join_order.size(); ++step) {
    prefix |= 1u << plan.join_order[step];
    workload::JoinQuery sub = RestrictToSubset(uni, q, prefix);
    auto card = memo.Lookup(SubplanFss(uni, sub));
    ASSERT_TRUE(card.has_value()) << "prefix step " << step;
    double expected = std::max(r.step_rows[step - 1], 1.0);
    EXPECT_NEAR(*card, expected, expected * 1e-12 + 1e-9);
    EXPECT_NEAR(*card, std::max(workload::JoinTrueCard(uni, sub), 1.0),
                expected * 1e-9 + 1e-6);
  }
}

TEST(SubplanFeedbackTest, RefresherForwardsSingleTableEntries) {
  data::JoinUniverse uni = SmallUniverse();
  SubplanMemo memo;
  online::FeedbackCollector collector;
  online::FeedbackCollector adaptation;
  SubplanMemoRefresher refresher(uni, &memo, &collector, {}, nullptr,
                                 &adaptation);

  online::FeedbackEntry single;
  single.query = workload::Query(uni.universe.num_cols());
  single.true_card = 10.0;
  collector.Add(single);
  online::FeedbackEntry join = single;
  join.join_mask = 0b11;
  join.true_card = 25.0;
  collector.Add(join);

  EXPECT_EQ(refresher.RefreshOnce(), 1u);
  EXPECT_EQ(memo.Size(), 1u);
  EXPECT_EQ(adaptation.Size(), 1u) << "single-table feedback passes through";
  EXPECT_EQ(collector.Size(), 0u);
}

TEST(SubplanFeedbackTest, BackgroundRefresherDrainsOnStop) {
  data::JoinUniverse uni = SmallUniverse();
  SubplanMemo memo;
  online::FeedbackCollector collector;
  SubplanMemoRefresher refresher(uni, &memo, &collector);
  refresher.Start();
  workload::JoinQuery q;
  q.table_mask = 0b11;
  q.pred = workload::Query(uni.universe.num_cols());
  online::FeedbackEntry entry;
  entry.query = q.pred;
  entry.join_mask = q.table_mask;
  entry.true_card = 123.0;
  collector.Add(entry);
  refresher.Stop();  // Final RefreshOnce folds anything the poll missed.
  ASSERT_EQ(memo.Size(), 1u);
  EXPECT_NEAR(*memo.Lookup(SubplanFss(uni, q)), 123.0, 1e-9);
}

}  // namespace
}  // namespace uae::optimizer
