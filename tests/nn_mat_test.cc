// nn/: Mat storage and the raw compute kernels (GEMM variants checked against
// naive reference implementations, softmax normalization, etc.).
#include <cmath>

#include <gtest/gtest.h>

#include "nn/kernels.h"
#include "nn/mat.h"
#include "util/rng.h"

namespace uae::nn {
namespace {

Mat NaiveGemm(const Mat& a, const Mat& b) {
  Mat c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      float acc = 0;
      for (int k = 0; k < a.cols(); ++k) acc += a.at(i, k) * b.at(k, j);
      c.at(i, j) = acc;
    }
  }
  return c;
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesNaive) {
  auto [m, k, n] = GetParam();
  util::Rng rng(m * 131 + k * 17 + n);
  Mat a = Mat::Gaussian(m, k, 1.f, &rng);
  Mat b = Mat::Gaussian(k, n, 1.f, &rng);
  Mat expected = NaiveGemm(a, b);

  Mat c(m, n);
  GemmAccum(a, b, &c);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) EXPECT_NEAR(c.at(i, j), expected.at(i, j), 1e-3f);
  }
  // A^T via GemmTn: (A^T)^T * B.
  Mat at(k, m);
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) at.at(p, i) = a.at(i, p);
  }
  Mat c2(m, n);
  GemmTnAccum(at, b, &c2);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) EXPECT_NEAR(c2.at(i, j), expected.at(i, j), 1e-3f);
  }
  // B^T via GemmNt: A * (B^T)^T.
  Mat bt(n, k);
  for (int p = 0; p < k; ++p) {
    for (int j = 0; j < n; ++j) bt.at(j, p) = b.at(p, j);
  }
  Mat c3(m, n);
  GemmNtAccum(a, bt, &c3);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) EXPECT_NEAR(c3.at(i, j), expected.at(i, j), 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSizes,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(3, 5, 2),
                                           std::make_tuple(17, 9, 23),
                                           std::make_tuple(64, 32, 48),
                                           std::make_tuple(130, 70, 90)));

TEST(KernelsTest, GemmAccumulates) {
  util::Rng rng(4);
  Mat a = Mat::Gaussian(4, 4, 1.f, &rng);
  Mat b = Mat::Gaussian(4, 4, 1.f, &rng);
  Mat c = Mat::Full(4, 4, 1.f);
  Mat expected = NaiveGemm(a, b);
  GemmAccum(a, b, &c);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_NEAR(c.at(i, j), expected.at(i, j) + 1.f, 1e-4f);
  }
}

TEST(KernelsTest, SoftmaxRowsSumToOne) {
  util::Rng rng(5);
  Mat in = Mat::Gaussian(7, 13, 5.f, &rng);
  in.at(0, 0) = 1e4f;  // Stability under extreme logits.
  Mat out(7, 13);
  SoftmaxRows(in, &out);
  for (int r = 0; r < 7; ++r) {
    float sum = 0;
    for (int c = 0; c < 13; ++c) {
      EXPECT_GE(out.at(r, c), 0.f);
      sum += out.at(r, c);
    }
    EXPECT_NEAR(sum, 1.f, 1e-5f);
  }
}

TEST(KernelsTest, LogSoftmaxMatchesSoftmax) {
  util::Rng rng(6);
  Mat in = Mat::Gaussian(3, 8, 2.f, &rng);
  Mat sm(3, 8), lsm(3, 8);
  SoftmaxRows(in, &sm);
  LogSoftmaxRows(in, &lsm);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_NEAR(std::exp(lsm.at(r, c)), sm.at(r, c), 1e-5f);
    }
  }
}

TEST(KernelsTest, AddBiasAndRelu) {
  Mat in = Mat::Full(2, 3, -1.f);
  Mat bias(1, 3);
  bias.at(0, 2) = 5.f;
  Mat out(2, 3);
  AddBiasRows(in, bias, &out);
  EXPECT_FLOAT_EQ(out.at(0, 0), -1.f);
  EXPECT_FLOAT_EQ(out.at(1, 2), 4.f);
  ReluInplace(&out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0.f);
  EXPECT_FLOAT_EQ(out.at(1, 2), 4.f);
}

TEST(MatTest, ConstructorsAndAccessors) {
  Mat z = Mat::Zeros(2, 3);
  EXPECT_EQ(z.rows(), 2);
  EXPECT_EQ(z.cols(), 3);
  EXPECT_DOUBLE_EQ(z.Sum(), 0.0);
  Mat f = Mat::Full(2, 2, 3.f);
  EXPECT_DOUBLE_EQ(f.Sum(), 12.0);
  EXPECT_FLOAT_EQ(f.AbsMax(), 3.f);
  Mat v = Mat::FromVector(2, 2, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(v.at(1, 0), 3.f);
  EXPECT_EQ(v.ShapeString(), "[2x2]");
}

}  // namespace
}  // namespace uae::nn
