// Sharded models behind the serving + online-adaptation layers: hot-swapping
// a ShardedUae snapshot is generation-atomic (a response is never a mix of
// two snapshots' shard parameters), concurrent clients see bitwise-attributable
// results, and the adaptation controller fine-tunes per shard through the
// ServableModel interface.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "online/controller.h"
#include "online/drift.h"
#include "online/feedback.h"
#include "serve/service.h"
#include "shard/sharded_uae.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace uae::shard {
namespace {

core::UaeConfig SmallConfig() {
  core::UaeConfig c;
  c.hidden = 12;
  c.ps_samples = 32;
  c.data_batch = 128;
  c.seed = 5;
  return c;
}

struct Fixture {
  data::Table table = data::SyntheticDmv(1200, 41);
  std::shared_ptr<ShardedUae> model;
  std::vector<workload::Query> queries;

  explicit Fixture(int shards = 3) {
    ShardedUaeConfig sc;
    sc.base = SmallConfig();
    sc.partition.num_shards = shards;
    model = std::make_shared<ShardedUae>(table, sc);
    model->TrainDataEpochs(1);
    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 3;
    workload::QueryGenerator gen(table, gc, 51);
    for (int i = 0; i < 24; ++i) queries.push_back(gen.Generate());
  }
};

TEST(ShardServeTest, ServiceAnswersBitwiseEqualToDirectEstimates) {
  Fixture f;
  serve::EstimationService service(f.model);
  for (const workload::Query& q : f.queries) {
    serve::ServeResult res = service.Estimate(q);
    EXPECT_EQ(res.generation, 1u);
    EXPECT_DOUBLE_EQ(res.card, f.model->EstimateCard(q));
  }
}

TEST(ShardServeTest, HotSwapUnderConcurrentLoadIsGenerationAtomic) {
  Fixture f;
  // Two published variants: the initial model and a fine-tuned clone. Every
  // response's card must equal the serving generation's own estimate.
  std::shared_ptr<ShardedUae> tuned = [&] {
    std::unique_ptr<ShardedUae> clone = f.model->Clone();
    workload::Workload feedback;
    const HorizontalPartitioner& part = clone->partitioner();
    const int pcol = part.partition_col();
    const int32_t domain = f.table.column(pcol).domain();
    for (int32_t code = 0; code < domain && feedback.size() < 16; code += 7) {
      workload::LabeledQuery lq;
      lq.query = workload::Query(f.table.num_cols());
      lq.query.AddPredicate({pcol, workload::Op::kEq, code, {}}, domain);
      lq.card = static_cast<double>(workload::ExecuteCount(f.table, lq.query));
      feedback.push_back(lq);
    }
    core::FineTuneSpec spec;
    spec.query_steps = 4;
    clone->FineTune(feedback, spec);
    return std::shared_ptr<ShardedUae>(std::move(clone));
  }();

  serve::ServiceConfig cfg;
  cfg.cache_enabled = false;  // Force every request through a live model.
  serve::EstimationService service(f.model, cfg);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  auto client = [&](int tid) {
    size_t i = static_cast<size_t>(tid);
    while (!stop.load(std::memory_order_relaxed)) {
      const workload::Query& q = f.queries[i % f.queries.size()];
      serve::ServeResult res = service.Estimate(q);
      const ShardedUae& expect = res.generation == 1 ? *f.model : *tuned;
      if (res.card != expect.EstimateCard(q)) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
      ++i;
    }
  };
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) clients.emplace_back(client, t);
  // Let traffic hit generation 1, swap mid-flight, let it hit generation 2.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(service.PublishSnapshot(tuned), 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  for (auto& c : clients) c.join();

  EXPECT_EQ(mismatches.load(), 0u);
  uint64_t answered = 0;
  for (const auto& [gen, count] : service.AnsweredByGeneration()) {
    EXPECT_TRUE(gen == 1 || gen == 2);
    answered += count;
  }
  EXPECT_EQ(answered, service.Stats().requests);
}

TEST(ShardServeTest, UnroutableFeedbackSkipsPublishInsteadOfNoOpSwap) {
  Fixture f;
  serve::EstimationService service(f.model);
  online::FeedbackCollector collector;
  online::DriftConfig dc;
  dc.min_samples = 4;
  dc.window = 64;
  dc.median_threshold = 1.0;
  online::DriftMonitor monitor(dc);
  online::AdaptationConfig ac;
  ac.min_feedback = 4;
  ac.holdout_fraction = 0.0;  // Everything lands in the (unroutable) train slice.
  online::AdaptationController controller(&service, &collector, &monitor, ac);

  // Feedback with NO constraint on the partition column: every query fans out
  // to all shards, so ShardedUae::FineTune can attribute none of it.
  const int pcol = f.model->partitioner().partition_col();
  const int other = pcol == 0 ? 1 : 0;
  for (int i = 0; i < 12; ++i) {
    workload::Query q(f.table.num_cols());
    q.AddPredicate({other, workload::Op::kLe,
                    static_cast<int32_t>(i % f.table.column(other).domain()), {}},
                   f.table.column(other).domain());
    serve::ServeResult res = service.Estimate(q);
    double truth = static_cast<double>(workload::ExecuteCount(f.table, q));
    controller.OnFeedback(q, res, truth);
  }

  online::AdaptationResult result = controller.AdaptNow();
  EXPECT_EQ(result.outcome, online::AdaptOutcome::kSkippedUnusableFeedback)
      << online::AdaptOutcomeName(result.outcome);
  EXPECT_EQ(result.finetuned_size, 0u);
  // No no-op hot-swap: the generation (and with it the result cache) stays.
  EXPECT_EQ(service.CurrentGeneration(), 1u);
  // The drained feedback went back into the buffer for a future attempt.
  EXPECT_EQ(collector.Size(), 12u);
}

TEST(ShardServeTest, ControllerFineTunesShardedSnapshotThroughTheLoop) {
  Fixture f;
  serve::EstimationService service(f.model);
  online::FeedbackConfig fc;
  fc.capacity = 256;
  online::FeedbackCollector collector(fc);
  online::DriftConfig dc;
  dc.min_samples = 8;
  dc.window = 128;
  dc.median_threshold = 1.0;  // Fire easily: estimates are imperfect.
  online::DriftMonitor monitor(dc);
  online::AdaptationConfig ac;
  ac.min_feedback = 8;
  ac.finetune_steps = 4;
  ac.guard_max_ratio = 10.0;  // Accept near-anything: this is a plumbing test.
  online::AdaptationController controller(&service, &collector, &monitor, ac);

  // Feedback on partition-targeted queries so FineTune routes per shard.
  const HorizontalPartitioner& part = f.model->partitioner();
  const int pcol = part.partition_col();
  const int32_t domain = f.table.column(pcol).domain();
  for (int32_t code = 0; code < domain && code < 64; code += 2) {
    workload::Query q(f.table.num_cols());
    q.AddPredicate({pcol, workload::Op::kEq, code, {}}, domain);
    serve::ServeResult res = service.Estimate(q);
    double truth = static_cast<double>(workload::ExecuteCount(f.table, q));
    controller.OnFeedback(q, res, truth);
  }

  online::AdaptationResult result = controller.AdaptIfDrifted();
  ASSERT_EQ(result.outcome, online::AdaptOutcome::kPublished)
      << online::AdaptOutcomeName(result.outcome);
  EXPECT_EQ(service.CurrentGeneration(), 2u);
  // The published snapshot is a ShardedUae clone: same shard layout.
  auto snap = service.CurrentSnapshot();
  const auto* published = dynamic_cast<const ShardedUae*>(snap->model.get());
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published->num_shards(), f.model->num_shards());
  // And serving continues bitwise-consistently on the new generation.
  for (const workload::Query& q : f.queries) {
    serve::ServeResult res = service.Estimate(q);
    EXPECT_EQ(res.generation, 2u);
    EXPECT_DOUBLE_EQ(res.card, published->EstimateCard(q));
  }
}

}  // namespace
}  // namespace uae::shard
