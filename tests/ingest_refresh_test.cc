// ingest/: staleness-driven incremental refresh —
//  * only the stale shard retrains; every other shard's parameters stay
//    BITWISE identical through clone + publish (the PR 5 serialize-compare
//    pattern applied to the refresh cycle);
//  * unseen values become exactly queryable through the published
//    DeltaAwareModel tail, with no dictionary remapping;
//  * the regression guard can veto a refresh (incumbent keeps serving,
//    watermarks stay armed);
//  * published estimates are deterministic within a generation.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "data/synthetic.h"
#include "ingest/refresh.h"
#include "nn/serialize.h"
#include "serve/service.h"
#include "shard/sharded_uae.h"
#include "workload/executor.h"

namespace uae::ingest {
namespace {

core::UaeConfig SmallConfig() {
  core::UaeConfig c;
  c.hidden = 16;
  c.ps_samples = 64;
  c.data_batch = 128;
  c.seed = 9;
  return c;
}

std::string ShardParams(const shard::ShardedUae& model, int s) {
  return nn::SerializeParams(model.shard_model(s).model().Parameters());
}

struct Fixture {
  data::Table table = data::SyntheticDmv(2000, 7);
  std::shared_ptr<shard::ShardedUae> model;
  std::unique_ptr<serve::EstimationService> service;
  std::unique_ptr<IngestService> ingest;

  Fixture() {
    shard::ShardedUaeConfig sc;
    sc.base = SmallConfig();
    sc.partition.num_shards = 4;
    model = std::make_shared<shard::ShardedUae>(table, sc);
    model->TrainDataEpochs(1);
    service = std::make_unique<serve::EstimationService>(model);
    IngestConfig ic;
    ic.compact_min_delta = 0;
    ingest = std::make_unique<IngestService>(&table, &model->partitioner(), ic);
  }

  /// Replays rows belonging to shard `target` back into the stream.
  size_t FeedShard(int target, size_t count) {
    const int pcol = model->partitioner().partition_col();
    size_t sent = 0;
    for (size_t r = 0; r < 2000 && sent < count; ++r) {
      if (model->partitioner().ShardForCode(table.column(pcol).code_at(r)) ==
          target) {
        if (!ingest->AppendCodes(table.RowCodes(r))) break;
        ++sent;
      }
    }
    ingest->Flush();
    return sent;
  }
};

TEST(RefreshControllerTest, NoPendingRowsSkips) {
  Fixture f;
  RefreshConfig rc;
  RefreshController ctrl(f.ingest.get(), f.service.get(), f.model, rc);
  RefreshResult r = ctrl.RefreshIfStale();
  EXPECT_EQ(r.outcome, RefreshOutcome::kSkippedNoStaleShards);
  EXPECT_EQ(f.service->CurrentGeneration(), 1u);
}

TEST(RefreshControllerTest, OnlyStaleShardRetrainsOthersBitwiseIdentical) {
  Fixture f;
  ASSERT_EQ(f.FeedShard(1, 64), 64u);

  std::vector<std::string> before;
  for (int s = 0; s < 4; ++s) before.push_back(ShardParams(*f.model, s));

  RefreshConfig rc;
  rc.staleness.trigger_rows = 32;
  rc.staleness.trigger_delta_ratio = 0;
  rc.staleness.trigger_unseen_rows = 0;
  rc.data_epochs = 1;
  RefreshController ctrl(f.ingest.get(), f.service.get(), f.model, rc);

  RefreshResult r = ctrl.RefreshIfStale();
  ASSERT_EQ(r.outcome, RefreshOutcome::kPublished);
  EXPECT_EQ(r.refreshed_shards, (std::vector<int>{1}));
  EXPECT_EQ(r.rows_ingested, 64u);
  EXPECT_EQ(r.tail_rows, 0u);
  EXPECT_EQ(r.generation, 2u);
  EXPECT_EQ(f.service->CurrentGeneration(), 2u);

  std::shared_ptr<const shard::ShardedUae> refreshed = ctrl.current_base();
  ASSERT_NE(refreshed.get(), f.model.get());
  // The stale shard absorbed the delta rows and its parameters moved...
  EXPECT_EQ(refreshed->shard_model(1).num_rows(),
            f.model->shard_model(1).num_rows() + 64);
  EXPECT_NE(ShardParams(*refreshed, 1), before[1]);
  // ...while every untouched shard is bitwise identical.
  for (int s : {0, 2, 3}) {
    EXPECT_EQ(ShardParams(*refreshed, s), before[s]) << "shard " << s;
    EXPECT_EQ(refreshed->shard_model(s).num_rows(),
              f.model->shard_model(s).num_rows());
  }
  // The source model itself was never mutated (clone-then-train).
  for (int s = 0; s < 4; ++s) EXPECT_EQ(ShardParams(*f.model, s), before[s]);

  // Watermarks advanced: the same staleness config no longer fires.
  EXPECT_EQ(ctrl.RefreshIfStale().outcome,
            RefreshOutcome::kSkippedNoStaleShards);
  EXPECT_EQ(ctrl.Stats().published, 1u);
}

TEST(RefreshControllerTest, UnseenValueQueryableExactlyViaTail) {
  // A controlled integer table: partition column k with frozen values
  // 0,10,...,70; stream in 12 rows of the unseen value 35.
  std::vector<int64_t> k, x;
  for (int i = 0; i < 400; ++i) {
    k.push_back((i % 8) * 10);
    x.push_back(i % 5);
  }
  std::vector<data::Column> cols;
  cols.push_back(data::Column::FromInts("k", k));
  cols.push_back(data::Column::FromInts("x", x));
  data::Table table("t", std::move(cols));

  shard::ShardedUaeConfig sc;
  sc.base = SmallConfig();
  sc.partition.num_shards = 2;
  sc.partition.partition_col = 0;
  auto model = std::make_shared<shard::ShardedUae>(table, sc);
  model->TrainDataEpochs(1);
  serve::EstimationService service(model);
  IngestConfig ic;
  ic.compact_min_delta = 0;
  IngestService ingest(&table, &model->partitioner(), ic);

  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(ingest.Append(
        {data::Value(int64_t{35}), data::Value(int64_t{i % 5})}));
  }
  ingest.Flush();

  RefreshConfig rc;
  rc.staleness.trigger_rows = 0;
  rc.staleness.trigger_delta_ratio = 0;
  rc.staleness.trigger_unseen_rows = 8;
  RefreshController ctrl(&ingest, &service, model, rc);
  RefreshResult r = ctrl.RefreshIfStale();
  ASSERT_EQ(r.outcome, RefreshOutcome::kPublished);
  EXPECT_EQ(r.tail_rows, 12u);
  EXPECT_EQ(r.rows_ingested, 0u);  // Overflow rows never enter a model.

  // The query literal compiles to the stable overflow code — no remapping.
  const data::Column& kcol = table.column(0);
  auto code = kcol.CodeForValue(data::Value(int64_t{35}));
  ASSERT_TRUE(code.has_value());
  ASSERT_GE(*code, kcol.domain());
  workload::Query q(table.num_cols());
  workload::Predicate p;
  p.col = 0;
  p.op = workload::Op::kEq;
  p.code = *code;
  q.AddPredicate(p, kcol.total_domain());

  auto published = std::dynamic_pointer_cast<const DeltaAwareModel>(
      service.CurrentSnapshot()->model);
  ASSERT_NE(published, nullptr);
  EXPECT_EQ(published->CountTail(q), 12u);  // Exact.
  const double est = published->EstimateCard(q);
  EXPECT_GE(est, 12.0);         // Tail contributes exactly; inner adds ~0.
  EXPECT_LE(est, 12.0 + 2.0);   // The frozen model has no mass there.
  // Ground truth agrees: the live table holds exactly 12 matching rows.
  auto pin = ingest.PinTable();
  EXPECT_EQ(workload::ExecuteCount(table, q), 12u);
}

TEST(RefreshControllerTest, GuardVetoKeepsIncumbentAndStaysArmed) {
  Fixture f;
  ASSERT_EQ(f.FeedShard(0, 48), 48u);

  workload::Query q(f.table.num_cols());
  workload::Predicate p;
  p.col = 0;
  p.op = workload::Op::kGe;
  p.code = 0;
  q.AddPredicate(p, f.table.column(0).domain());
  workload::Workload holdout;
  workload::LabeledQuery lq;
  lq.query = q;
  lq.card = static_cast<double>(workload::ExecuteCount(f.table, q));
  lq.selectivity = 1.0;
  holdout.push_back(lq);

  RefreshConfig rc;
  rc.staleness.trigger_rows = 32;
  rc.guard_max_ratio = 1e-12;  // Impossible bar: always reject.
  rc.holdout_provider = [holdout] { return holdout; };
  RefreshController ctrl(f.ingest.get(), f.service.get(), f.model, rc);

  RefreshResult r = ctrl.RefreshIfStale();
  EXPECT_EQ(r.outcome, RefreshOutcome::kRejectedByGuard);
  EXPECT_EQ(f.service->CurrentGeneration(), 1u);
  EXPECT_GT(f.ingest->shard_buffer(0).rows_since_refresh(), 0u);
  EXPECT_EQ(ctrl.Stats().rejected, 1u);

  // Relaxing the guard lets the same pending rows through.
  RefreshConfig ok = rc;
  ok.guard_max_ratio = 1e6;
  RefreshController ctrl2(f.ingest.get(), f.service.get(), f.model, ok);
  RefreshResult r2 = ctrl2.RefreshIfStale();
  EXPECT_EQ(r2.outcome, RefreshOutcome::kPublished);
  EXPECT_GT(r2.incumbent_median, 0.0);
  EXPECT_EQ(f.service->CurrentGeneration(), 2u);
}

TEST(RefreshControllerTest, EstimatesDeterministicWithinGeneration) {
  Fixture f;
  ASSERT_GT(f.FeedShard(2, 40), 0u);
  RefreshConfig rc;
  rc.staleness.trigger_rows = 16;
  RefreshController ctrl(f.ingest.get(), f.service.get(), f.model, rc);
  ASSERT_EQ(ctrl.RefreshIfStale().outcome, RefreshOutcome::kPublished);

  workload::Query q(f.table.num_cols());
  workload::Predicate p;
  p.col = f.model->partitioner().partition_col();
  p.op = workload::Op::kLe;
  p.code = f.table.column(p.col).domain() / 2;
  q.AddPredicate(p, f.table.column(p.col).domain());

  auto snapshot = f.service->CurrentSnapshot();
  const double a = snapshot->model->EstimateCard(q);
  const double b = snapshot->model->EstimateCard(q);
  EXPECT_DOUBLE_EQ(a, b);
  std::vector<workload::Query> qs = {q, q};
  std::vector<double> batched = snapshot->model->EstimateCards(qs);
  EXPECT_DOUBLE_EQ(batched[0], a);
  EXPECT_DOUBLE_EQ(batched[1], a);
}

}  // namespace
}  // namespace uae::ingest
