// data/: synthetic dataset generators match the shapes DESIGN.md promises
// (column counts, domain ladders, skew and correlation regimes) and are
// deterministic under a fixed seed.
#include <gtest/gtest.h>

#include "data/stats.h"
#include "data/synthetic.h"
#include "util/mathutil.h"

namespace uae::data {
namespace {

TEST(SyntheticTest, DmvShape) {
  Table t = SyntheticDmv(5000, 1);
  EXPECT_EQ(t.num_cols(), 11);
  EXPECT_EQ(t.num_rows(), 5000u);
  DatasetStats s = ComputeStats(t);
  EXPECT_EQ(s.min_domain, 2);
  EXPECT_EQ(s.max_domain, 1000);
  EXPECT_GT(s.skewness, 1.0) << "DMV analog must be strongly skewed";
  EXPECT_GT(s.correlation, 0.08) << "DMV analog must be strongly correlated";
  EXPECT_EQ(t.LargestDomainColumn(), t.ColumnIndex("model_year"));
}

TEST(SyntheticTest, CensusShape) {
  Table t = SyntheticCensus(5000, 2);
  EXPECT_EQ(t.num_cols(), 14);
  DatasetStats s = ComputeStats(t);
  EXPECT_EQ(s.min_domain, 2);
  EXPECT_EQ(s.max_domain, 123);
  // Census is the weak-skew / weak-correlation dataset.
  DatasetStats dmv = ComputeStats(SyntheticDmv(5000, 2));
  EXPECT_LT(s.correlation, dmv.correlation);
}

TEST(SyntheticTest, KddShape) {
  Table t = SyntheticKdd(3000, 3);
  EXPECT_EQ(t.num_cols(), 100);
  DatasetStats s = ComputeStats(t, /*max_pairs=*/32);
  EXPECT_EQ(s.min_domain, 2);
  EXPECT_EQ(s.max_domain, 43);
}

TEST(SyntheticTest, KddGroupStructure) {
  // Columns within a 5-column group are correlated; across groups independent.
  Table t = SyntheticKdd(8000, 4);
  double in_group = util::NormalizedMutualInformation(
      t.column(0).codes(), t.column(0).domain(), t.column(1).codes(),
      t.column(1).domain());
  double cross_group = util::NormalizedMutualInformation(
      t.column(0).codes(), t.column(0).domain(), t.column(5).codes(),
      t.column(5).domain());
  EXPECT_GT(in_group, cross_group * 2 + 0.02);
}

TEST(SyntheticTest, Deterministic) {
  Table a = SyntheticDmv(1000, 77);
  Table b = SyntheticDmv(1000, 77);
  for (int c = 0; c < a.num_cols(); ++c) {
    EXPECT_EQ(a.column(c).codes(), b.column(c).codes()) << "column " << c;
  }
  Table c3 = SyntheticDmv(1000, 78);
  EXPECT_NE(a.column(10).codes(), c3.column(10).codes());
}

TEST(SyntheticTest, TinyCorrelatedDependence) {
  Table t = TinyCorrelated(5000, 5);
  EXPECT_EQ(t.num_cols(), 3);
  double nmi = util::NormalizedMutualInformation(
      t.column(0).codes(), t.column(0).domain(), t.column(1).codes(),
      t.column(1).domain());
  EXPECT_GT(nmi, 0.3);
}

}  // namespace
}  // namespace uae::data
