// ResMADE: autoregressive-property tests (head j must be invariant to inputs
// of columns >= j) and a learning smoke test.
#include <gtest/gtest.h>

#include "core/made.h"
#include "data/synthetic.h"
#include "nn/kernels.h"
#include "nn/optimizer.h"

namespace uae::core {
namespace {

struct Fixture {
  data::Table table = data::TinyCorrelated(500, 11);
  data::VirtualSchema schema =
      data::VirtualSchema::Build(table, /*factor_threshold=*/0, /*factor_bits=*/4);
};

MadeConfig SmallConfig(data::EncoderKind enc) {
  MadeConfig mc;
  mc.hidden = 32;
  mc.blocks = 1;
  mc.encoder = enc;
  mc.embed_dim = 8;
  mc.seed = 5;
  return mc;
}

class MadeAutoregressiveTest
    : public ::testing::TestWithParam<data::EncoderKind> {};

TEST_P(MadeAutoregressiveTest, HeadsIgnoreCurrentAndFutureColumns) {
  Fixture f;
  MadeModel model(&f.schema, SmallConfig(GetParam()));
  const int n = model.num_vcols();
  util::Rng rng(3);

  // Baseline forward with a fixed tuple.
  std::vector<int32_t> base_codes;
  for (int vc = 0; vc < n; ++vc) {
    base_codes.push_back(
        static_cast<int32_t>(rng.UniformInt(0, model.vdomain(vc) - 1)));
  }
  auto forward = [&](const std::vector<int32_t>& codes) {
    nn::NoGradGuard ng;
    std::vector<nn::Tensor> inputs;
    for (int vc = 0; vc < n; ++vc) {
      inputs.push_back(model.EncodeHard(vc, {codes[static_cast<size_t>(vc)]}));
    }
    nn::Tensor h = model.Trunk(inputs);
    std::vector<std::vector<float>> logits;
    for (int vc = 0; vc < n; ++vc) {
      nn::Tensor lg = model.HeadLogits(vc, h);
      logits.emplace_back(lg->value().row(0), lg->value().row(0) + lg->cols());
    }
    return logits;
  };

  auto base = forward(base_codes);
  // Perturbing column j (including swapping to wildcard) must leave heads
  // 0..j unchanged — the MADE mask guarantee.
  for (int j = 0; j < n; ++j) {
    std::vector<int32_t> perturbed = base_codes;
    perturbed[static_cast<size_t>(j)] =
        (base_codes[static_cast<size_t>(j)] + 1) % model.vdomain(j);
    auto out = forward(perturbed);
    for (int head = 0; head <= j; ++head) {
      for (size_t k = 0; k < base[static_cast<size_t>(head)].size(); ++k) {
        EXPECT_FLOAT_EQ(base[static_cast<size_t>(head)][k],
                        out[static_cast<size_t>(head)][k])
            << "head " << head << " affected by column " << j;
      }
    }
    // ... and must change *some* later head for this correlated model when
    // j < n-1 (weights are random, so influence is almost surely nonzero).
    if (j + 1 < n) {
      bool changed = false;
      for (int head = j + 1; head < n && !changed; ++head) {
        for (size_t k = 0; k < base[static_cast<size_t>(head)].size(); ++k) {
          if (base[static_cast<size_t>(head)][k] != out[static_cast<size_t>(head)][k]) {
            changed = true;
            break;
          }
        }
      }
      EXPECT_TRUE(changed) << "column " << j << " influences nothing";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Encoders, MadeAutoregressiveTest,
                         ::testing::Values(data::EncoderKind::kBinary,
                                           data::EncoderKind::kOneHot,
                                           data::EncoderKind::kEmbedding));

TEST(MadeTest, DataLossDecreasesUnderTraining) {
  Fixture f;
  MadeModel model(&f.schema, SmallConfig(data::EncoderKind::kBinary));
  nn::Adam adam(model.Parameters(), 5e-3f);
  const int n = model.num_vcols();
  // Full-batch codes.
  std::vector<std::vector<int32_t>> codes(static_cast<size_t>(n));
  for (int vc = 0; vc < n; ++vc) {
    const auto& col = f.table.column(f.schema.vcol(vc).orig_col);
    codes[static_cast<size_t>(vc)] =
        std::vector<int32_t>(col.codes().begin(), col.codes().begin() + 256);
  }
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 60; ++step) {
    nn::Tensor loss = model.DataLoss(codes, codes);
    if (step == 0) first = loss->value().at(0, 0);
    last = loss->value().at(0, 0);
    nn::Backward(loss);
    adam.Step();
    adam.ZeroGrad();
  }
  EXPECT_LT(last, first * 0.8) << "training did not reduce the data loss";
}

TEST(MadeTest, FirstHeadLearnsMarginal) {
  // With enough steps the first head (bias only) matches the empirical
  // marginal of column 0.
  Fixture f;
  MadeModel model(&f.schema, SmallConfig(data::EncoderKind::kBinary));
  nn::Adam adam(model.Parameters(), 1e-2f);
  const int n = model.num_vcols();
  std::vector<std::vector<int32_t>> codes(static_cast<size_t>(n));
  for (int vc = 0; vc < n; ++vc) {
    codes[static_cast<size_t>(vc)] = f.table.column(f.schema.vcol(vc).orig_col).codes();
  }
  for (int step = 0; step < 150; ++step) {
    nn::Tensor loss = model.DataLoss(codes, codes);
    nn::Backward(loss);
    adam.Step();
    adam.ZeroGrad();
  }
  nn::NoGradGuard ng;
  std::vector<nn::Tensor> inputs;
  for (int vc = 0; vc < n; ++vc) inputs.push_back(model.WildcardInput(vc, 1));
  nn::Tensor logits = model.HeadLogits(0, model.Trunk(inputs));
  nn::Mat probs(1, model.vdomain(0));
  nn::SoftmaxRows(logits->value(), &probs);
  const auto& freq = f.table.column(0).Frequencies();
  for (int32_t v = 0; v < model.vdomain(0); ++v) {
    double expected = static_cast<double>(freq[static_cast<size_t>(v)]) /
                      static_cast<double>(f.table.num_rows());
    EXPECT_NEAR(probs.at(0, v), expected, 0.05) << "value " << v;
  }
}

TEST(MadeTest, SizeBytesCountsParameters) {
  Fixture f;
  MadeModel model(&f.schema, SmallConfig(data::EncoderKind::kBinary));
  EXPECT_GT(model.SizeBytes(), 0u);
  EXPECT_EQ(model.SizeBytes() % sizeof(float), 0u);
}

}  // namespace
}  // namespace uae::core
