// shard/partitioner: deterministic assignment, equi-depth balance,
// dictionary-preserving materialization, and — the load-bearing property —
// pruning never drops a shard that holds a matching row.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/synthetic.h"
#include "shard/partitioner.h"
#include "util/rng.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace uae::shard {
namespace {

data::Table MakeTable(size_t rows, uint64_t seed) {
  return data::SyntheticDmv(rows, seed);
}

TEST(PartitionerTest, SeedStableAndDeterministic) {
  data::Table t = MakeTable(2000, 3);
  PartitionConfig config;
  config.num_shards = 4;
  for (PartitionScheme scheme : {PartitionScheme::kRange, PartitionScheme::kHash}) {
    config.scheme = scheme;
    HorizontalPartitioner a(t, config);
    HorizontalPartitioner b(t, config);
    ASSERT_EQ(a.num_shards(), b.num_shards());
    for (int s = 0; s < a.num_shards(); ++s) {
      EXPECT_EQ(a.RowsForShard(s), b.RowsForShard(s)) << PartitionSchemeName(scheme);
      EXPECT_EQ(a.shard(s).code_lo, b.shard(s).code_lo);
      EXPECT_EQ(a.shard(s).code_hi, b.shard(s).code_hi);
    }
  }
  // A different hash seed produces a different assignment.
  config.scheme = PartitionScheme::kHash;
  HorizontalPartitioner h1(t, config);
  config.seed = 99;
  HorizontalPartitioner h2(t, config);
  bool any_differ = false;
  for (int s = 0; s < h1.num_shards() && !any_differ; ++s) {
    any_differ = h1.RowsForShard(s) != h2.RowsForShard(s);
  }
  EXPECT_TRUE(any_differ);
}

TEST(PartitionerTest, RowsPartitionedExactlyOnce) {
  data::Table t = MakeTable(1500, 7);
  for (PartitionScheme scheme : {PartitionScheme::kRange, PartitionScheme::kHash}) {
    PartitionConfig config;
    config.scheme = scheme;
    config.num_shards = 5;
    HorizontalPartitioner p(t, config);
    std::set<size_t> seen;
    size_t total = 0;
    for (int s = 0; s < p.num_shards(); ++s) {
      for (size_t r : p.RowsForShard(s)) {
        EXPECT_TRUE(seen.insert(r).second) << "row " << r << " in two shards";
      }
      total += p.RowsForShard(s).size();
      EXPECT_EQ(p.shard(s).rows, p.RowsForShard(s).size());
    }
    EXPECT_EQ(total, t.num_rows());
  }
}

TEST(PartitionerTest, RangeShardsAreContiguousAndBalanced) {
  data::Table t = MakeTable(4000, 11);
  PartitionConfig config;
  config.num_shards = 8;
  HorizontalPartitioner p(t, config);
  ASSERT_EQ(p.num_shards(), 8);
  int32_t next_lo = 0;
  for (int s = 0; s < p.num_shards(); ++s) {
    const ShardDescriptor& d = p.shard(s);
    EXPECT_EQ(d.code_lo, next_lo);
    EXPECT_GE(d.code_hi, d.code_lo);
    next_lo = d.code_hi + 1;
    // Equi-depth: no shard should be grossly imbalanced (DMV's partition
    // column is Zipf-skewed; allow generous slack around rows/N).
    EXPECT_LT(d.rows, t.num_rows());
  }
  EXPECT_EQ(next_lo, t.column(p.partition_col()).domain());
  // The largest shard stays within a few x of the ideal depth.
  size_t max_rows = 0;
  for (int s = 0; s < p.num_shards(); ++s) max_rows = std::max(max_rows, p.shard(s).rows);
  EXPECT_LE(max_rows, t.num_rows() / 2);
}

TEST(PartitionerTest, ShardCountClampedToDomain) {
  // 3-column tiny table; partition on a 2-value column => at most 2 shards.
  data::Table t = data::TinyCorrelated(200, 1);
  PartitionConfig config;
  config.num_shards = 64;
  config.partition_col = 0;
  HorizontalPartitioner p(t, config);
  EXPECT_LE(p.num_shards(), t.column(0).domain());
  EXPECT_GE(p.num_shards(), 1);
}

TEST(PartitionerTest, MaterializePreservesDictionariesAndRowOrder) {
  data::Table t = MakeTable(800, 13);
  PartitionConfig config;
  config.num_shards = 3;
  HorizontalPartitioner p(t, config);
  std::vector<data::Table> shards = p.Materialize(t, "dmv");
  ASSERT_EQ(shards.size(), 3u);
  for (int s = 0; s < 3; ++s) {
    const data::Table& st = shards[static_cast<size_t>(s)];
    ASSERT_EQ(st.num_cols(), t.num_cols());
    for (int c = 0; c < t.num_cols(); ++c) {
      // Full dictionary preserved: global code space stays valid.
      EXPECT_EQ(st.column(c).domain(), t.column(c).domain());
    }
    const std::vector<size_t>& rows = p.RowsForShard(s);
    ASSERT_EQ(st.num_rows(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(st.RowCodes(i), t.RowCodes(rows[i]));
    }
  }
}

/// The pruning soundness property: for any query, every shard holding at
/// least one matching row must be a candidate. (The converse — candidates
/// with no matching rows — is allowed: pruning is conservative.)
TEST(PartitionerTest, CandidateShardsNeverDropAMatchingShard) {
  data::Table t = MakeTable(1200, 17);
  for (PartitionScheme scheme : {PartitionScheme::kRange, PartitionScheme::kHash}) {
    PartitionConfig config;
    config.scheme = scheme;
    config.num_shards = 6;
    HorizontalPartitioner p(t, config);
    std::vector<data::Table> shards = p.Materialize(t, "dmv");

    workload::GeneratorConfig gc;
    gc.bounded_col = p.partition_col();
    gc.target_volume = 0.05;
    gc.min_filters = 1;
    gc.max_filters = 3;
    workload::QueryGenerator gen(t, gc, 23);
    for (int i = 0; i < 40; ++i) {
      workload::Query q = gen.Generate();
      std::vector<int> cands = p.CandidateShards(q);
      int64_t total = workload::ExecuteCount(t, q);
      int64_t covered = 0;
      for (int s = 0; s < p.num_shards(); ++s) {
        int64_t in_shard =
            workload::ExecuteCount(shards[static_cast<size_t>(s)], q);
        if (in_shard > 0) {
          EXPECT_TRUE(std::binary_search(cands.begin(), cands.end(), s))
              << "pruned a shard with " << in_shard << " matching rows ("
              << PartitionSchemeName(scheme) << ")";
          EXPECT_TRUE(p.MayMatch(q, s));
        }
        covered += in_shard;
      }
      // Shards partition the rows: per-shard counts sum to the global count.
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(PartitionerTest, PointAndInPredicatesPruneToFewShards) {
  data::Table t = MakeTable(1000, 19);
  PartitionConfig config;
  config.num_shards = 8;
  HorizontalPartitioner p(t, config);
  const int pcol = p.partition_col();
  const int32_t domain = t.column(pcol).domain();

  workload::Query eq(t.num_cols());
  eq.AddPredicate({pcol, workload::Op::kEq, domain / 2, {}}, domain);
  EXPECT_EQ(p.CandidateShards(eq).size(), 1u);

  workload::Query in(t.num_cols());
  in.AddPredicate({pcol, workload::Op::kIn, 0, {1, 2, domain - 1}}, domain);
  EXPECT_LE(p.CandidateShards(in).size(), 3u);
  EXPECT_GE(p.CandidateShards(in).size(), 1u);

  // Unconstrained partition column: no pruning.
  workload::Query open(t.num_cols());
  open.AddPredicate({0, workload::Op::kEq, 0, {}}, t.column(0).domain());
  EXPECT_EQ(p.CandidateShards(open).size(), static_cast<size_t>(p.num_shards()));

  // Provably empty range: everything pruned.
  workload::Query empty(t.num_cols());
  empty.AddPredicate({pcol, workload::Op::kGt, domain - 1, {}}, domain);
  EXPECT_TRUE(p.CandidateShards(empty).empty());
}

TEST(PartitionerTest, MixShardSeedKeepsShardZeroIdentity) {
  EXPECT_EQ(MixShardSeed(42, 0), 42u);
  EXPECT_NE(MixShardSeed(42, 1), 42u);
  EXPECT_NE(MixShardSeed(42, 1), MixShardSeed(42, 2));
  EXPECT_NE(MixShardSeed(42, 1), MixShardSeed(43, 1));
}

}  // namespace
}  // namespace uae::shard
