// optimizer/: DP join ordering optimality under a given cost source, plan
// flips under bad estimates, and executor correctness vs the weighted
// universe count.
#include <gtest/gtest.h>

#include "data/imdb_star.h"
#include "optimizer/card_provider.h"
#include "optimizer/dp_optimizer.h"
#include "optimizer/executor.h"
#include "workload/join_workload.h"

namespace uae::optimizer {
namespace {

data::JoinUniverse SmallUniverse() {
  data::ImdbStarConfig c;
  c.num_titles = 600;
  c.seed = 9;
  return data::BuildImdbStar(c);
}

/// A provider with hand-set cardinalities per submask.
class FakeProvider : public JoinCardProvider {
 public:
  std::string name() const override { return "fake"; }
  double Card(const workload::JoinQuery& q, uint32_t submask) override {
    auto it = cards.find(submask);
    return it == cards.end() ? 1.0 : it->second;
  }
  std::unordered_map<uint32_t, double> cards;
};

TEST(DpOptimizerTest, PicksCheaperDimensionFirst) {
  data::JoinUniverse uni = SmallUniverse();  // Tables: 0=title, 1=mc, 2=mi.
  workload::JoinQuery q;
  q.table_mask = 0b111;
  q.pred = workload::Query(uni.universe.num_cols());
  FakeProvider fake;
  // Joining mc first gives a tiny intermediate; mi first a huge one.
  fake.cards[0b011] = 10.0;     // title ⋈ mc
  fake.cards[0b101] = 10000.0;  // title ⋈ mi
  fake.cards[0b111] = 500.0;
  PlanResult plan = OptimizeJoinOrder(uni, q, &fake);
  // Optimal left-deep: {title, mc} then mi -> mi must be joined LAST.
  EXPECT_EQ(plan.join_order.back(), 2);
  EXPECT_DOUBLE_EQ(plan.estimated_cost, 10.0 + 500.0);
}

TEST(DpOptimizerTest, BadEstimatesFlipThePlan) {
  data::JoinUniverse uni = SmallUniverse();
  workload::JoinQuery q;
  q.table_mask = 0b111;
  q.pred = workload::Query(uni.universe.num_cols());
  FakeProvider wrong;
  wrong.cards[0b011] = 10000.0;  // Misestimated as huge.
  wrong.cards[0b101] = 10.0;     // Misestimated as tiny.
  wrong.cards[0b111] = 500.0;
  PlanResult plan = OptimizeJoinOrder(uni, q, &wrong);
  EXPECT_EQ(plan.join_order.back(), 1) << "wrong estimates must flip the order";
}

TEST(DpOptimizerTest, TrueProviderCostIsMinimal) {
  data::JoinUniverse uni = SmallUniverse();
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 31);
  TrueCardProvider truth(uni);
  for (int i = 0; i < 5; ++i) {
    workload::JoinQuery q = gen.Generate();
    PlanResult best = OptimizeJoinOrder(uni, q, &truth);
    // Exhaustive check over all left-deep orders of the 3 tables.
    std::vector<std::vector<int>> orders = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                            {2, 0, 1}};
    for (const auto& order : orders) {
      // C_out of this order under true cards.
      uint32_t mask = 1u << order[0];
      double cost = 0;
      for (size_t s = 1; s < order.size(); ++s) {
        mask |= 1u << order[s];
        cost += std::max(1.0, truth.Card(q, mask));
      }
      EXPECT_LE(best.estimated_cost, cost + 1e-6) << "order not optimal";
    }
  }
}

TEST(ExecutorTest, PlanResultMatchesTrueCard) {
  data::JoinUniverse uni = SmallUniverse();
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 41);
  TrueCardProvider truth(uni);
  for (int i = 0; i < 8; ++i) {
    workload::JoinQuery q = gen.Generate();
    PlanResult plan = OptimizeJoinOrder(uni, q, &truth);
    ExecutionResult result = ExecutePlan(uni, q, plan.join_order);
    EXPECT_NEAR(result.rows_out, workload::JoinTrueCard(uni, q), 1e-9)
        << "query " << i;
  }
}

TEST(ExecutorTest, AllLeftDeepOrdersAgreeOnOutput) {
  data::JoinUniverse uni = SmallUniverse();
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 51);
  workload::JoinQuery q = gen.Generate();
  double expected = workload::JoinTrueCard(uni, q);
  for (const auto& order :
       std::vector<std::vector<int>>{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {2, 0, 1}}) {
    ExecutionResult r = ExecutePlan(uni, q, order);
    EXPECT_NEAR(r.rows_out, expected, 1e-9);
  }
}

TEST(AviProviderTest, MonotoneInPredicates) {
  data::JoinUniverse uni = SmallUniverse();
  AviCardProvider avi(uni);
  // Unfiltered 3-way join estimate must exceed a filtered one.
  workload::JoinQuery all;
  all.table_mask = 0b111;
  all.pred = workload::Query(uni.universe.num_cols());
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  gc.min_filters = 4;
  gc.max_filters = 5;
  workload::JoinQueryGenerator gen(uni, gc, 61);
  workload::JoinQuery filtered = gen.Generate();
  EXPECT_GE(avi.Card(all, 0b111), avi.Card(filtered, 0b111));
  EXPECT_GE(avi.Card(all, 0b111), 1.0);
}

TEST(TrueProviderTest, SubsetCardsAreConsistent) {
  data::JoinUniverse uni = SmallUniverse();
  TrueCardProvider truth(uni);
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 71);
  workload::JoinQuery q = gen.Generate();
  // Singleton fact-table cardinality is bounded by the base table size.
  EXPECT_LE(truth.Card(q, 0b001), static_cast<double>(uni.base_tables[0].num_rows()));
  // Full-mask equals JoinTrueCard of the original query.
  EXPECT_NEAR(truth.Card(q, q.table_mask), workload::JoinTrueCard(uni, q), 1e-9);
}

}  // namespace
}  // namespace uae::optimizer
