// data/: binary/one-hot encoding matrices and wildcard rows.
#include <gtest/gtest.h>

#include "data/encoding.h"

namespace uae::data {
namespace {

TEST(EncodingTest, BinaryBits) {
  EXPECT_EQ(BinaryBits(1), 1);
  EXPECT_EQ(BinaryBits(2), 1);
  EXPECT_EQ(BinaryBits(3), 2);
  EXPECT_EQ(BinaryBits(4), 2);
  EXPECT_EQ(BinaryBits(5), 3);
  EXPECT_EQ(BinaryBits(1024), 10);
  EXPECT_EQ(BinaryBits(1025), 11);
}

TEST(EncodingTest, BinaryMatrixCodesAndWildcard) {
  nn::Mat enc = BinaryEncodingMatrix(5);  // 3 bits + wildcard flag.
  EXPECT_EQ(enc.rows(), 6);
  EXPECT_EQ(enc.cols(), 4);
  // Code 5 = 101 (LSB first: 1, 0, 1).
  EXPECT_FLOAT_EQ(enc.at(4, 0), 0.f);  // 4 = 100 -> bits (0,0,1).
  EXPECT_FLOAT_EQ(enc.at(4, 2), 1.f);
  // All value rows have wildcard flag 0; wildcard row is zeros + flag 1.
  for (int c = 0; c < 5; ++c) EXPECT_FLOAT_EQ(enc.at(c, 3), 0.f);
  EXPECT_FLOAT_EQ(enc.at(5, 3), 1.f);
  for (int b = 0; b < 3; ++b) EXPECT_FLOAT_EQ(enc.at(5, b), 0.f);
}

TEST(EncodingTest, BinaryRowsAreDistinct) {
  nn::Mat enc = BinaryEncodingMatrix(13);
  for (int a = 0; a < 14; ++a) {
    for (int b = a + 1; b < 14; ++b) {
      bool same = true;
      for (int c = 0; c < enc.cols(); ++c) {
        if (enc.at(a, c) != enc.at(b, c)) {
          same = false;
          break;
        }
      }
      EXPECT_FALSE(same) << "rows " << a << " and " << b << " collide";
    }
  }
}

TEST(EncodingTest, OneHotMatrix) {
  nn::Mat enc = OneHotEncodingMatrix(3);
  EXPECT_EQ(enc.rows(), 4);
  EXPECT_EQ(enc.cols(), 4);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_FLOAT_EQ(enc.at(r, c), r == c ? 1.f : 0.f);
    }
  }
}

TEST(EncodingTest, EncodedWidth) {
  EXPECT_EQ(EncodedWidth(EncoderKind::kBinary, 5, 16), 4);
  EXPECT_EQ(EncodedWidth(EncoderKind::kOneHot, 5, 16), 6);
  EXPECT_EQ(EncodedWidth(EncoderKind::kEmbedding, 5, 16), 16);
}

}  // namespace
}  // namespace uae::data
