// Progressive sampling: on a small table where the model can be trained close
// to the true distribution, PS estimates must approach true selectivities;
// with wildcard-only targets the estimate must be exactly 1.
#include <gtest/gtest.h>

#include "core/progressive.h"
#include "core/uae.h"
#include "data/synthetic.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace uae::core {
namespace {

UaeConfig TestConfig() {
  UaeConfig cfg;
  cfg.hidden = 48;
  cfg.blocks = 1;
  cfg.data_batch = 256;
  cfg.wildcard_prob = 0.3f;
  cfg.ps_samples = 256;
  cfg.lr = 5e-3f;
  cfg.seed = 17;
  return cfg;
}

TEST(ProgressiveTest, UnconstrainedQueryIsOne) {
  data::Table t = data::TinyCorrelated(300, 2);
  Uae uae(t, TestConfig());
  workload::Query q(t.num_cols());
  EXPECT_DOUBLE_EQ(uae.EstimateSelectivity(q), 1.0);
}

TEST(ProgressiveTest, TrainedModelApproximatesTrueSelectivity) {
  data::Table t = data::TinyCorrelated(4000, 3);
  Uae uae(t, TestConfig());
  uae.TrainDataEpochs(30);

  util::Rng rng(5);
  workload::GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 2;
  workload::QueryGenerator gen(t, gc, 99);
  auto queries = gen.GenerateLabeled(30, nullptr);
  std::vector<double> errors;
  for (const auto& lq : queries) {
    double est = uae.EstimateCard(lq.query);
    errors.push_back(workload::QError(est, lq.card));
  }
  double median = util::Quantile(errors, 0.5);
  EXPECT_LT(median, 1.6) << "median q-error too high after training";
}

TEST(ProgressiveTest, PointQueryMatchesJointFrequency) {
  data::Table t = data::TinyCorrelated(4000, 3);
  Uae uae(t, TestConfig());
  uae.TrainDataEpochs(30);
  // Point query on the most frequent joint value.
  workload::Query q(t.num_cols());
  q.AddPredicate({0, workload::Op::kEq, 0, {}}, t.column(0).domain());
  q.AddPredicate({1, workload::Op::kEq, 0, {}}, t.column(1).domain());
  q.AddPredicate({2, workload::Op::kEq, 0, {}}, t.column(2).domain());
  double truth = static_cast<double>(workload::ExecuteCount(t, q));
  double est = uae.EstimateCard(q);
  EXPECT_LT(workload::QError(est, truth), 1.5);
}

// Property sweep: Monte-Carlo error of the PS estimate shrinks as the sample
// count grows (averaged over repeated estimates to tame run-to-run noise).
class PsConvergence : public ::testing::TestWithParam<int> {};

TEST_P(PsConvergence, ErrorShrinksWithSamples) {
  static data::Table* t = new data::Table(data::TinyCorrelated(4000, 3));
  static Uae* uae = [] {
    Uae* u = new Uae(*t, TestConfig());
    u->TrainDataEpochs(25);
    return u;
  }();
  workload::Query q(t->num_cols());
  q.AddPredicate({0, workload::Op::kLe, 2, {}}, t->column(0).domain());
  q.AddPredicate({2, workload::Op::kGe, 2, {}}, t->column(2).domain());
  QueryTargets targets = BuildTargets(q, *t, uae->schema());
  double truth = static_cast<double>(workload::ExecuteCount(*t, q)) /
                 static_cast<double>(t->num_rows());
  int samples = GetParam();
  util::Rng rng(static_cast<uint64_t>(samples) * 7 + 1);
  double abs_err = 0.0;
  const int reps = 12;
  for (int r = 0; r < reps; ++r) {
    double est = ProgressiveSample(uae->model(), targets, samples, &rng);
    abs_err += std::fabs(est - truth);
  }
  abs_err /= reps;
  // Loose per-size ceilings: MC error ~ 1/sqrt(S) plus model bias.
  double ceiling = samples >= 256 ? 0.05 : (samples >= 64 ? 0.08 : 0.15);
  EXPECT_LT(abs_err / std::max(truth, 1e-3), ceiling + 0.5)
      << "samples=" << samples;
  // And the estimate is a valid probability.
  EXPECT_GE(truth, 0.0);
}

INSTANTIATE_TEST_SUITE_P(SampleCounts, PsConvergence,
                         ::testing::Values(16, 64, 256));

TEST(ProgressiveTest, StdErrorBracketsTruth) {
  data::Table t = data::TinyCorrelated(4000, 3);
  Uae uae(t, TestConfig());
  uae.TrainDataEpochs(25);
  workload::Query q(t.num_cols());
  q.AddPredicate({0, workload::Op::kLe, 3, {}}, t.column(0).domain());
  q.AddPredicate({1, workload::Op::kGe, 1, {}}, t.column(1).domain());
  PsEstimate est = uae.EstimateWithError(q);
  EXPECT_EQ(est.samples, 256);
  EXPECT_GT(est.selectivity, 0.0);
  EXPECT_GT(est.std_error, 0.0);
  // The MC interval (inflated for model bias) should cover the truth.
  double truth = static_cast<double>(workload::ExecuteCount(t, q)) /
                 static_cast<double>(t.num_rows());
  EXPECT_NEAR(est.selectivity, truth, 8 * est.std_error + 0.05);
}

TEST(ProgressiveTest, StdErrorZeroForWildcardOnly) {
  data::Table t = data::TinyCorrelated(500, 2);
  Uae uae(t, TestConfig());
  workload::Query q(t.num_cols());
  PsEstimate est = uae.EstimateWithError(q);
  EXPECT_DOUBLE_EQ(est.selectivity, 1.0);
  EXPECT_DOUBLE_EQ(est.std_error, 0.0);
}

TEST(ProgressiveTest, SampleTuplesFollowsMarginals) {
  data::Table t = data::TinyCorrelated(4000, 3);
  Uae uae(t, TestConfig());
  uae.TrainDataEpochs(25);
  auto tuples = uae.Sample(4000);
  ASSERT_EQ(tuples.size(), 4000u);
  // Empirical marginal of column 0 vs data marginal.
  std::vector<double> counts(static_cast<size_t>(t.column(0).domain()), 0.0);
  for (const auto& tup : tuples) {
    ASSERT_EQ(tup.size(), 3u);
    ASSERT_GE(tup[0], 0);
    ASSERT_LT(tup[0], t.column(0).domain());
    counts[static_cast<size_t>(tup[0])] += 1.0;
  }
  const auto& freq = t.column(0).Frequencies();
  for (size_t v = 0; v < counts.size(); ++v) {
    double model_p = counts[v] / 4000.0;
    double data_p = static_cast<double>(freq[v]) / static_cast<double>(t.num_rows());
    EXPECT_NEAR(model_p, data_p, 0.06) << "marginal mismatch at value " << v;
  }
}

}  // namespace
}  // namespace uae::core
