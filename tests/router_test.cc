// router/: HybridRouter routing + degradation + stats, per-class kNN, query
// classification, the serve/ latency histogram, and the classical-estimator
// servable adapter.
//
// Coverage demanded by the degradation design: cold start routes everything
// to the primary bitwise; hot classes promote onto the kNN fast path and
// answer within tolerance of their training pairs; an SLO breach flips
// serving to the bounded floor immediately and recovery takes `recover_after`
// healthy probes (hysteresis — no flapping while the queue drains through
// the limit); concurrent clients vs. routing-table hot-swap is race-free
// (exercised under TSan via the unit-router label).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "estimators/histogram.h"
#include "estimators/oracle.h"
#include "estimators/servable_adapter.h"
#include "online/feedback.h"
#include "router/knn.h"
#include "router/query_class.h"
#include "router/router.h"
#include "serve/latency.h"
#include "workload/generator.h"

namespace uae::router {
namespace {

struct Fixture {
  data::Table table;
  std::vector<int32_t> domains;
  std::shared_ptr<const estimators::OracleEstimator> oracle;
  std::shared_ptr<const estimators::HistogramAviEstimator> histogram;
  std::shared_ptr<core::ServableModel> primary;
  std::vector<workload::LabeledQuery> labeled;

  Fixture() : table(data::TinyCorrelated(1000, 3)) {
    for (int c = 0; c < table.num_cols(); ++c) {
      domains.push_back(table.column(c).domain());
    }
    oracle = std::make_shared<estimators::OracleEstimator>(table);
    histogram = std::make_shared<estimators::HistogramAviEstimator>(table, 8);
    primary = std::make_shared<estimators::ServableEstimatorAdapter>(
        oracle, table.num_rows(), /*seed=*/3);
    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 3;
    workload::QueryGenerator gen(table, gc, 97);
    labeled = gen.GenerateLabeled(24, nullptr);
  }

  std::unique_ptr<HybridRouter> MakeRouter(const RouterConfig& config = {}) {
    return std::make_unique<HybridRouter>(primary, histogram, domains, config);
  }

  /// One structural template (col 0, one-sided range): every instance lands
  /// in the same query class, with literal-dependent features.
  workload::Query TemplateQuery(int32_t hi) const {
    workload::Query q(table.num_cols());
    workload::Predicate pred;
    pred.op = workload::Op::kLe;
    pred.code = hi;
    q.AddPredicate(pred, domains[0]);
    return q;
  }

  online::FeedbackEntry Feedback(const workload::Query& q) const {
    online::FeedbackEntry e;
    e.query = q;
    e.true_card = oracle->EstimateCard(q);
    e.estimated_card = e.true_card;  // Served by the oracle primary.
    e.generation = 1;
    return e;
  }
};

Fixture& Shared() {
  static Fixture* f = new Fixture();
  return *f;
}

// ---- Query classification --------------------------------------------------

TEST(QueryClassTest, FssGroupsByStructureNotLiterals) {
  Fixture& f = Shared();
  // Same structure, different literals: one class.
  EXPECT_EQ(QueryFss(f.TemplateQuery(1)), QueryFss(f.TemplateQuery(5)));
  // Different constrained column: a different class.
  workload::Query other(f.table.num_cols());
  workload::Predicate on_col1;
  on_col1.col = 1;
  on_col1.op = workload::Op::kLe;
  on_col1.code = 1;
  other.AddPredicate(on_col1, f.domains[1]);
  EXPECT_NE(QueryFss(f.TemplateQuery(1)), QueryFss(other));
  // Different constraint kind on the same column: a different class.
  workload::Query neq(f.table.num_cols());
  workload::Predicate not_equal;
  not_equal.op = workload::Op::kNeq;
  not_equal.code = 1;
  neq.AddPredicate(not_equal, f.domains[0]);
  EXPECT_NE(QueryFss(f.TemplateQuery(1)), QueryFss(neq));
}

TEST(QueryClassTest, FeaturesSeparateLiterals) {
  Fixture& f = Shared();
  const QueryClass a = ClassifyQuery(f.TemplateQuery(1), f.domains);
  const QueryClass b = ClassifyQuery(f.TemplateQuery(5), f.domains);
  ASSERT_EQ(a.features.size(), 2u);  // Two features per active column.
  EXPECT_EQ(a.fss, b.fss);
  EXPECT_NE(a.features, b.features);
  // The allowed-fraction feature is monotone in the range width.
  EXPECT_LT(a.features[1], b.features[1]);
}

// ---- kNN ring + snapshot ---------------------------------------------------

TEST(ClassKnnTest, RefusesBelowMinPointsThenInterpolates) {
  KnnConfig cfg;
  cfg.min_points = 3;
  cfg.k = 2;
  KnnRing ring(8);
  const float pts[] = {0.0f, 0.5f, 1.0f, 0.25f};
  const double logs[] = {0.0, 5.0, 10.0, 2.5};
  for (int i = 0; i < 2; ++i) {
    ring.Add(std::span<const float>(&pts[i], 1), logs[i]);
  }
  EXPECT_FALSE(ring.Freeze()
                   .PredictLogCard(std::span<const float>(&pts[0], 1), cfg)
                   .has_value());
  for (int i = 2; i < 4; ++i) {
    ring.Add(std::span<const float>(&pts[i], 1), logs[i]);
  }
  const ClassKnn knn = ring.Freeze();
  // Exact repeat: the zero-distance neighbour dominates the weighting.
  const float probe = 0.5f;
  auto at_half = knn.PredictLogCard(std::span<const float>(&probe, 1), cfg);
  ASSERT_TRUE(at_half.has_value());
  EXPECT_NEAR(*at_half, 5.0, 0.05);
  // Dimension mismatch: refuse rather than extrapolate garbage.
  const float two[] = {0.5f, 0.5f};
  EXPECT_FALSE(knn.PredictLogCard(std::span<const float>(two, 2), cfg)
                   .has_value());
}

TEST(ClassKnnTest, RingOverwritesOldestAtCapacity) {
  KnnRing ring(2);
  const float a = 0.0f, b = 1.0f, c = 2.0f;
  ring.Add(std::span<const float>(&a, 1), 1.0);
  ring.Add(std::span<const float>(&b, 1), 2.0);
  ring.Add(std::span<const float>(&c, 1), 3.0);  // Evicts the a-point.
  EXPECT_EQ(ring.size(), 2u);
  KnnConfig cfg;
  cfg.min_points = 1;
  cfg.k = 1;
  auto at_a = ring.Freeze().PredictLogCard(std::span<const float>(&a, 1), cfg);
  ASSERT_TRUE(at_a.has_value());
  EXPECT_NEAR(*at_a, 2.0, 1e-6);  // Nearest survivor is the b-point.
}

// ---- Latency histogram -----------------------------------------------------

TEST(LatencyHistogramTest, BucketRoundTripAndBoundedRelativeError) {
  for (uint64_t v : {0ull, 1ull, 7ull, 8ull, 100ull, 4096ull, 1'000'000ull}) {
    const size_t bucket = serve::LatencyHistogram::BucketFor(v);
    const uint64_t rep = serve::LatencyHistogram::BucketValue(bucket);
    EXPECT_EQ(serve::LatencyHistogram::BucketFor(rep), bucket) << v;
    // Sub-bucketed octaves bound the representative's relative error.
    if (v >= 8) {
      EXPECT_LE(std::abs(static_cast<double>(rep) - static_cast<double>(v)),
                static_cast<double>(v) * 0.125 + 1.0)
          << v;
    } else {
      EXPECT_EQ(rep, v);
    }
  }
}

TEST(LatencyHistogramTest, SnapshotQuantilesTrackTheSample) {
  serve::LatencyHistogram hist;
  EXPECT_EQ(hist.Snapshot().count, 0u);
  // 100 observations: 1..99 us plus one 10ms outlier.
  for (uint64_t v = 1; v <= 99; ++v) hist.Record(v);
  hist.Record(10'000);
  const serve::LatencySnapshot snap = hist.Snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.max_us, 10'000u);
  EXPECT_NEAR(snap.p50_us, 50.0, 50.0 * 0.125 + 1.0);
  EXPECT_NEAR(snap.p95_us, 95.0, 95.0 * 0.125 + 1.0);
  EXPECT_GE(snap.p99_us, snap.p95_us);
  EXPECT_GT(snap.mean_us, 0.0);
}

// ---- Servable adapter ------------------------------------------------------

TEST(ServableAdapterTest, DelegatesClonesAndRefusesToFineTune) {
  Fixture& f = Shared();
  estimators::ServableEstimatorAdapter adapter(f.histogram,
                                               f.table.num_rows(), 7);
  EXPECT_EQ(adapter.num_rows(), f.table.num_rows());
  EXPECT_EQ(adapter.seed(), 7u);
  EXPECT_EQ(adapter.SizeBytes(), f.histogram->SizeBytes());
  std::vector<workload::Query> queries;
  for (const auto& lq : f.labeled) queries.push_back(lq.query);
  const std::vector<double> batched = adapter.EstimateCards(queries);
  auto clone = adapter.CloneServable();
  for (size_t i = 0; i < queries.size(); ++i) {
    const double direct = f.histogram->EstimateCard(queries[i]);
    EXPECT_EQ(adapter.EstimateCard(queries[i]), direct);
    EXPECT_EQ(batched[i], direct);
    EXPECT_EQ(clone->EstimateCard(queries[i]), direct);
  }
  EXPECT_EQ(clone->FineTune(workload::Workload{}, core::FineTuneSpec{}), 0u);
}

// ---- HybridRouter ----------------------------------------------------------

TEST(RouterTest, ColdStartRoutesEverythingToPrimaryBitwise) {
  Fixture& f = Shared();
  auto router = f.MakeRouter();
  EXPECT_EQ(router->RoutingGeneration(), 1u);
  std::vector<workload::Query> queries;
  for (const auto& lq : f.labeled) queries.push_back(lq.query);
  const std::vector<double> batched = router->EstimateCards(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(router->RouteFor(queries[i]), Backend::kPrimary);
    const double expected = f.primary->EstimateCard(queries[i]);
    EXPECT_EQ(router->EstimateCard(queries[i]), expected);
    EXPECT_EQ(batched[i], expected);
  }
  const RouterStatsSnapshot stats = router->RouterStats();
  EXPECT_EQ(stats.requests, 2 * queries.size());
  EXPECT_EQ(stats.backends[static_cast<size_t>(Backend::kPrimary)].requests,
            2 * queries.size());
  EXPECT_EQ(stats.backends[static_cast<size_t>(Backend::kKnn)].requests, 0u);
  EXPECT_EQ(stats.backends[static_cast<size_t>(Backend::kFloor)].requests, 0u);
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.classes, 0u);
}

TEST(RouterTest, FeedbackPromotesHotClassToKnnWithinTolerance) {
  Fixture& f = Shared();
  auto router = f.MakeRouter();

  std::vector<online::FeedbackEntry> batch;
  const int32_t step = std::max<int32_t>(1, f.domains[0] / 16);
  for (int32_t hi = 0; hi + 1 < f.domains[0]; hi += step) {
    batch.push_back(f.Feedback(f.TemplateQuery(hi)));
  }
  ASSERT_GE(batch.size(), 4u);

  // Round 1 seeds the ring; later rounds are exact repeats, so the shadow
  // kNN q-error collapses toward 1 and the class earns its promotion
  // (promote_after consecutive eligible updates).
  const uint64_t gen_before = router->RoutingGeneration();
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(router->ObserveFeedback(batch), batch.size());
  }
  EXPECT_GT(router->RoutingGeneration(), gen_before);  // Hot-swapped tables.
  EXPECT_EQ(router->RouteFor(f.TemplateQuery(step)), Backend::kKnn);

  // Served estimates on training pairs come from the kNN fast path, within
  // tolerance of the observed truths (exact repeats dominate the weighting).
  for (const auto& e : batch) {
    const double est = router->EstimateCard(e.query);
    const double truth = std::max(1.0, e.true_card);
    const double q = std::max(est, 1.0) / truth;
    EXPECT_LE(std::max(q, 1.0 / q), 2.0) << "truth=" << e.true_card;
  }
  const RouterStatsSnapshot stats = router->RouterStats();
  EXPECT_EQ(stats.backends[static_cast<size_t>(Backend::kKnn)].requests,
            batch.size());
  EXPECT_GE(stats.knn_classes, 1u);
  EXPECT_EQ(stats.feedback_observed, 4 * batch.size());
  // An unseen class still routes to the primary.
  EXPECT_EQ(router->RouteFor(f.labeled[0].query), Backend::kPrimary);
}

TEST(RouterTest, JoinAndMismatchedFeedbackIsSkipped) {
  Fixture& f = Shared();
  auto router = f.MakeRouter();
  online::FeedbackEntry join = f.Feedback(f.TemplateQuery(1));
  join.join_mask = 0b11;  // Join sub-plan feedback: not routable here.
  EXPECT_EQ(router->ObserveFeedback(std::vector<online::FeedbackEntry>{join}),
            0u);
  EXPECT_EQ(router->RouterStats().feedback_observed, 0u);
}

TEST(RouterTest, SloBreachFlipsToFloorImmediatelyAndRecoversWithHysteresis) {
  Fixture& f = Shared();
  RouterConfig config;
  config.latency_slo_us = 1000;
  config.recover_after = 3;
  auto router = f.MakeRouter(config);
  std::atomic<uint64_t> wait_us{0};
  router->SetLoadProbe(
      [&wait_us] { return RouterLoad{0, wait_us.load()}; });

  const workload::Query query = f.labeled[0].query;
  const double primary_est = f.primary->EstimateCard(query);
  const double floor_est = f.histogram->EstimateCard(query);

  // Healthy: primary serves.
  EXPECT_EQ(router->EstimateCard(query), primary_est);
  EXPECT_FALSE(router->RouterStats().degraded);

  // Breach: the very next request degrades to the floor (entry is immediate).
  wait_us.store(5000);
  EXPECT_EQ(router->EstimateCard(query), floor_est);
  RouterStatsSnapshot stats = router->RouterStats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.degrade_transitions, 1u);
  EXPECT_EQ(stats.degraded_requests, 1u);

  // Back under the SLO: the floor keeps serving for recover_after - 1 more
  // probes (hysteresis — a queue draining through the limit must not flap).
  wait_us.store(0);
  EXPECT_EQ(router->EstimateCard(query), floor_est);
  EXPECT_EQ(router->EstimateCard(query), floor_est);
  // Third healthy probe completes the streak: recovered.
  EXPECT_EQ(router->EstimateCard(query), primary_est);
  stats = router->RouterStats();
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.degrade_transitions, 2u);
  EXPECT_EQ(stats.degraded_requests, 3u);
  EXPECT_EQ(stats.backends[static_cast<size_t>(Backend::kFloor)].requests, 3u);

  // A mid-recovery breach resets the streak instead of flapping out.
  wait_us.store(5000);
  EXPECT_EQ(router->EstimateCard(query), floor_est);
  wait_us.store(0);
  EXPECT_EQ(router->EstimateCard(query), floor_est);
  wait_us.store(5000);  // Streak broken before recover_after.
  EXPECT_EQ(router->EstimateCard(query), floor_est);
  EXPECT_EQ(router->RouterStats().degrade_transitions, 3u);  // Still degraded.
}

TEST(RouterTest, QueueDepthTriggerAlsoDegrades) {
  Fixture& f = Shared();
  RouterConfig config;
  config.queue_depth_limit = 8;
  config.recover_after = 1;
  auto router = f.MakeRouter(config);
  std::atomic<size_t> depth{0};
  router->SetLoadProbe([&depth] { return RouterLoad{depth.load(), 0}; });
  const workload::Query query = f.labeled[1].query;
  EXPECT_EQ(router->EstimateCard(query), f.primary->EstimateCard(query));
  depth.store(9);
  EXPECT_EQ(router->EstimateCard(query), f.histogram->EstimateCard(query));
  depth.store(8);  // At (not above) the limit: healthy; recover_after=1.
  EXPECT_EQ(router->EstimateCard(query), f.primary->EstimateCard(query));
}

TEST(RouterTest, CloneStartsFromCurrentTableWithFreshStats) {
  Fixture& f = Shared();
  auto router = f.MakeRouter();
  std::vector<online::FeedbackEntry> batch;
  const int32_t step = std::max<int32_t>(1, f.domains[0] / 16);
  for (int32_t hi = 0; hi + 1 < f.domains[0]; hi += step) {
    batch.push_back(f.Feedback(f.TemplateQuery(hi)));
  }
  for (int round = 0; round < 4; ++round) (void)router->ObserveFeedback(batch);
  ASSERT_EQ(router->RouteFor(f.TemplateQuery(step)), Backend::kKnn);

  auto clone = std::static_pointer_cast<core::ServableModel>(
      router->CloneServable());
  auto* cloned = dynamic_cast<HybridRouter*>(clone.get());
  ASSERT_NE(cloned, nullptr);
  EXPECT_EQ(cloned->RoutingGeneration(), 1u);  // Re-published as its gen 1.
  EXPECT_EQ(cloned->RouteFor(f.TemplateQuery(step)), Backend::kKnn);
  EXPECT_EQ(cloned->RouterStats().requests, 0u);  // Stats start fresh.
  EXPECT_EQ(cloned->EstimateCard(f.TemplateQuery(step)),
            router->EstimateCard(f.TemplateQuery(step)));
}

TEST(RouterTest, ConcurrentClientsSurviveRoutingHotSwap) {
  Fixture& f = Shared();
  auto router = f.MakeRouter();
  std::vector<online::FeedbackEntry> batch;
  const int32_t step = std::max<int32_t>(1, f.domains[0] / 16);
  for (int32_t hi = 0; hi + 1 < f.domains[0]; hi += step) {
    batch.push_back(f.Feedback(f.TemplateQuery(hi)));
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 60;
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // Mix template queries (whose class flips to kNN mid-run) with
        // generator queries (primary throughout).
        const workload::Query q =
            (i % 2 == 0)
                ? f.TemplateQuery(static_cast<int32_t>(
                      (static_cast<size_t>(t + i) * step) %
                      static_cast<size_t>(f.domains[0] - 1)))
                : f.labeled[static_cast<size_t>(t + i) % f.labeled.size()].query;
        const double est = router->EstimateCard(q);
        if (!std::isfinite(est) || est < 0.0) bad.fetch_add(1);
      }
    });
  }
  // Learner thread hot-swaps routing tables under the clients' feet.
  std::thread learner([&] {
    for (int round = 0; round < 8; ++round) {
      (void)router->ObserveFeedback(batch);
      (void)router->RouterStats();
    }
  });
  for (auto& c : clients) c.join();
  learner.join();
  EXPECT_EQ(bad.load(), 0);
  const RouterStatsSnapshot stats = router->RouterStats();
  // Every request is attributed to exactly one backend.
  uint64_t sum = 0;
  for (size_t b = 0; b < kNumBackends; ++b) {
    sum += stats.backends[b].requests;
  }
  EXPECT_EQ(sum, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(stats.requests, sum);
  EXPECT_EQ(stats.feedback_observed, 8 * batch.size());
}

TEST(RouterTest, UpdateFromCollectorDrainsFeedback) {
  Fixture& f = Shared();
  auto router = f.MakeRouter();
  online::FeedbackCollector collector;
  const int32_t step = std::max<int32_t>(1, f.domains[0] / 16);
  size_t added = 0;
  for (int round = 0; round < 4; ++round) {
    for (int32_t hi = 0; hi + 1 < f.domains[0]; hi += step) {
      collector.Add(f.Feedback(f.TemplateQuery(hi)));
      ++added;
    }
  }
  EXPECT_EQ(router->UpdateFromCollector(&collector), added);
  EXPECT_EQ(collector.Size(), 0u);  // Drained.
  // One big drain counts as ONE routing update round per class: promotion
  // still needs promote_after rounds, so a second drain seals it.
  for (int32_t hi = 0; hi + 1 < f.domains[0]; hi += step) {
    collector.Add(f.Feedback(f.TemplateQuery(hi)));
  }
  (void)router->UpdateFromCollector(&collector);
  EXPECT_EQ(router->RouteFor(f.TemplateQuery(step)), Backend::kKnn);
}

}  // namespace
}  // namespace uae::router
