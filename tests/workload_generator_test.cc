// workload/: the §5.1.2 workload generator — bounded attribute, filter counts,
// satisfiability, train/test dedup, center bands for incremental partitions.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "workload/executor.h"
#include "workload/generator.h"

namespace uae::workload {
namespace {

class GeneratorDatasets : public ::testing::TestWithParam<const char*> {};

data::Table Build(const std::string& name) {
  if (name == "dmv") return data::SyntheticDmv(5000, 2);
  if (name == "census") return data::SyntheticCensus(5000, 2);
  return data::SyntheticKdd(3000, 2);
}

TEST_P(GeneratorDatasets, InWorkloadQueriesHaveBoundedAttribute) {
  data::Table t = Build(GetParam());
  GeneratorConfig gc;
  QueryGenerator gen(t, gc, 3);
  int bounded_col = t.LargestDomainColumn();
  for (int i = 0; i < 30; ++i) {
    Query q = gen.Generate();
    EXPECT_TRUE(q.constraint(bounded_col).IsActive());
    EXPECT_EQ(q.constraint(bounded_col).kind, Constraint::Kind::kRange);
    // nf >= min_filters besides the bounded one (column exhaustion aside).
    EXPECT_GE(q.NumConstrained(), std::min(gc.min_filters, t.num_cols() - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, GeneratorDatasets,
                         ::testing::Values("dmv", "census", "kdd"));

TEST(GeneratorTest, BoundedRangeCoversTargetVolume) {
  data::Table t = data::SyntheticDmv(5000, 4);
  GeneratorConfig gc;
  gc.target_volume = 0.01;
  QueryGenerator gen(t, gc, 7);
  int bc = t.LargestDomainColumn();
  int32_t domain = t.column(bc).domain();
  for (int i = 0; i < 20; ++i) {
    Query q = gen.Generate();
    int64_t width = q.constraint(bc).AllowedCount(domain);
    EXPECT_LE(width, static_cast<int64_t>(0.02 * domain) + 3);
    EXPECT_GE(width, 2);
  }
}

TEST(GeneratorTest, MostInWorkloadQueriesNonEmpty) {
  // Literals come from a tuple inside the bounded range, so the large
  // majority of queries must have card >= 1.
  data::Table t = data::SyntheticDmv(8000, 5);
  GeneratorConfig gc;
  QueryGenerator gen(t, gc, 11);
  auto w = gen.GenerateLabeled(100, nullptr);
  int nonzero = 0;
  for (const auto& lq : w) nonzero += lq.card >= 1 ? 1 : 0;
  EXPECT_GT(nonzero, 70);
}

TEST(GeneratorTest, RandomQueriesHaveNoBoundedColumnBias) {
  data::Table t = data::SyntheticDmv(3000, 6);
  GeneratorConfig gc;
  gc.use_bounded = false;
  QueryGenerator gen(t, gc, 13);
  int bc = t.LargestDomainColumn();
  int bounded_hits = 0;
  for (int i = 0; i < 50; ++i) {
    Query q = gen.Generate();
    bounded_hits += q.constraint(bc).IsActive() ? 1 : 0;
  }
  // The largest-domain column appears only as a random pick, not always.
  EXPECT_LT(bounded_hits, 50);
}

TEST(GeneratorTest, TrainTestDeduplicated) {
  data::Table t = data::SyntheticCensus(4000, 7);
  TrainTestWorkloads w = GenerateTrainTest(t, 150, 50, 17);
  EXPECT_EQ(w.train.size(), 150u);
  EXPECT_EQ(w.test_in_workload.size(), 50u);
  EXPECT_EQ(w.test_random.size(), 50u);
  std::unordered_set<uint64_t> train_fps;
  for (const auto& lq : w.train) train_fps.insert(lq.query.Fingerprint());
  for (const auto& lq : w.test_in_workload) {
    EXPECT_EQ(train_fps.count(lq.query.Fingerprint()), 0u);
  }
}

TEST(GeneratorTest, LabelsMatchExecutor) {
  data::Table t = data::SyntheticCensus(3000, 8);
  GeneratorConfig gc;
  QueryGenerator gen(t, gc, 19);
  auto w = gen.GenerateLabeled(20, nullptr);
  for (const auto& lq : w) {
    EXPECT_EQ(lq.card, static_cast<double>(ExecuteCount(t, lq.query)));
    EXPECT_NEAR(lq.selectivity, lq.card / static_cast<double>(t.num_rows()), 1e-12);
  }
}

TEST(GeneratorTest, CenterBandsRestrictBoundedRange) {
  data::Table t = data::SyntheticDmv(3000, 9);
  GeneratorConfig gc;
  gc.center_min = 0.6;
  gc.center_max = 0.8;
  QueryGenerator gen(t, gc, 21);
  int bc = t.LargestDomainColumn();
  int32_t domain = t.column(bc).domain();
  for (int i = 0; i < 30; ++i) {
    Query q = gen.Generate();
    const Constraint& c = q.constraint(bc);
    // Center (midpoint) must lie within the band (plus halfwidth slack).
    double center = 0.5 * (c.lo + c.hi) / domain;
    EXPECT_GE(center, 0.55);
    EXPECT_LE(center, 0.85);
  }
}

}  // namespace
}  // namespace uae::workload
