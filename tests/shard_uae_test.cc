// shard/sharded_uae: the deterministic parity guarantees of the sharded
// estimator —
//  * N=1 sharded == monolithic BITWISE (same seeds, masks, training stream);
//  * shard-sum estimates stay accurate for any shard count on an
//    exact-oracle-labeled workload (invariance within q-error tolerance);
//  * pruning is exact on partition-targeted queries and per-shard fine-tuning
//    leaves untouched shards' parameters bit-identical.
#include <gtest/gtest.h>

#include <memory>

#include "data/synthetic.h"
#include "estimators/sharded_adapter.h"
#include "nn/serialize.h"
#include "shard/sharded_uae.h"
#include "util/quantiles.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

namespace uae::shard {
namespace {

core::UaeConfig SmallConfig() {
  core::UaeConfig c;
  c.hidden = 16;
  c.ps_samples = 64;
  c.data_batch = 128;
  c.seed = 9;
  return c;
}

struct Fixture {
  data::Table table = data::SyntheticDmv(2500, 21);
  workload::Workload labeled;
  std::vector<workload::Query> queries;

  Fixture() {
    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 3;
    workload::QueryGenerator gen(table, gc, 33);
    for (int i = 0; i < 32; ++i) {
      workload::LabeledQuery lq;
      lq.query = gen.Generate();
      lq.card = static_cast<double>(workload::ExecuteCount(table, lq.query));
      lq.selectivity = lq.card / static_cast<double>(table.num_rows());
      labeled.push_back(lq);
      queries.push_back(lq.query);
    }
  }
};

TEST(ShardedUaeTest, SingleShardBitwiseEqualsMonolithic) {
  Fixture f;
  core::UaeConfig base = SmallConfig();
  core::Uae mono(f.table, base);
  mono.TrainDataEpochs(2);

  ShardedUaeConfig sc;
  sc.base = base;
  sc.partition.num_shards = 1;
  ShardedUae sharded(f.table, sc);
  sharded.TrainDataEpochs(2);

  ASSERT_EQ(sharded.num_shards(), 1);
  EXPECT_EQ(sharded.num_rows(), mono.num_rows());
  EXPECT_EQ(sharded.SizeBytes(), mono.SizeBytes());
  // Parameters bit-identical after identical training streams...
  EXPECT_EQ(nn::SerializeParams(sharded.shard_model(0).model().Parameters()),
            nn::SerializeParams(mono.model().Parameters()));
  // ...and so are the estimates, single and batched.
  std::vector<double> mono_cards = mono.EstimateCards(f.queries);
  std::vector<double> shard_cards = sharded.EstimateCards(f.queries);
  ASSERT_EQ(mono_cards.size(), shard_cards.size());
  for (size_t i = 0; i < mono_cards.size(); ++i) {
    EXPECT_DOUBLE_EQ(mono_cards[i], shard_cards[i]) << "query " << i;
    EXPECT_DOUBLE_EQ(sharded.EstimateCard(f.queries[i]), shard_cards[i]);
  }
}

TEST(ShardedUaeTest, EstimateQualityInvariantToShardCount) {
  Fixture f;
  double first_median = 0.0;
  for (int n : {1, 2, 4}) {
    ShardedUaeConfig sc;
    sc.base = SmallConfig();
    sc.partition.num_shards = n;
    ShardedUae sharded(f.table, sc);
    sharded.TrainDataEpochs(2);
    std::vector<double> errors = workload::EvaluateQErrorsBatched(
        f.labeled, [&](std::span<const workload::Query> qs) {
          return sharded.EstimateCards(qs);
        });
    double median = util::Quantile(std::move(errors), 0.5);
    // Exact-oracle labels: the shard-sum stays a sane estimator at every N,
    // and quality does not degrade materially with the shard count.
    EXPECT_LT(median, 6.0) << n << " shards";
    if (n == 1) {
      first_median = median;
    } else {
      EXPECT_LT(median, first_median * 3.0 + 1.0) << n << " shards";
    }
  }
}

TEST(ShardedUaeTest, BatchedMatchesSingleAndPrunedFanoutCounts) {
  Fixture f;
  ShardedUaeConfig sc;
  sc.base = SmallConfig();
  sc.partition.num_shards = 4;
  ShardedUae sharded(f.table, sc);
  sharded.TrainDataEpochs(1);

  std::vector<double> batched = sharded.EstimateCards(f.queries);
  for (size_t i = 0; i < f.queries.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], sharded.EstimateCard(f.queries[i]));
  }

  // A partition-targeted equality touches exactly one model.
  const int pcol = sharded.partitioner().partition_col();
  const int32_t domain = f.table.column(pcol).domain();
  workload::Query eq(f.table.num_cols());
  eq.AddPredicate({pcol, workload::Op::kEq, domain / 3, {}}, domain);
  ShardedUae::FanoutStats before = sharded.fanout_stats();
  (void)sharded.EstimateCard(eq);
  ShardedUae::FanoutStats after = sharded.fanout_stats();
  EXPECT_EQ(after.queries - before.queries, 1u);
  EXPECT_EQ(after.evaluated - before.evaluated, 1u);
  EXPECT_EQ(after.pruned - before.pruned, 3u);

  // Pruning is exact there: the skipped shards hold zero matching rows, so
  // the pruned estimate equals the single candidate shard's estimate.
  int cand = sharded.partitioner().CandidateShards(eq)[0];
  EXPECT_DOUBLE_EQ(sharded.EstimateCard(eq),
                   sharded.shard_model(cand).EstimateCard(eq));
}

TEST(ShardedUaeTest, CloneIsIndependentAndBitIdentical) {
  Fixture f;
  ShardedUaeConfig sc;
  sc.base = SmallConfig();
  sc.partition.num_shards = 3;
  ShardedUae sharded(f.table, sc);
  sharded.TrainDataEpochs(1);

  std::unique_ptr<ShardedUae> clone = sharded.Clone();
  std::vector<double> a = sharded.EstimateCards(f.queries);
  std::vector<double> b = clone->EstimateCards(f.queries);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);

  // Fine-tuning the clone leaves the original untouched.
  core::FineTuneSpec spec;
  spec.query_steps = 10;
  clone->FineTune(f.labeled, spec);
  std::vector<double> a2 = sharded.EstimateCards(f.queries);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], a2[i]);
}

TEST(ShardedUaeTest, FineTuneRefitsOnlyTargetedShards) {
  Fixture f;
  ShardedUaeConfig sc;
  sc.base = SmallConfig();
  sc.partition.num_shards = 4;
  ShardedUae sharded(f.table, sc);
  sharded.TrainDataEpochs(1);

  // Feedback aimed at one shard: equality predicates on partition codes owned
  // by shard `target`.
  const HorizontalPartitioner& part = sharded.partitioner();
  const int pcol = part.partition_col();
  const int32_t domain = f.table.column(pcol).domain();
  const int target = part.ShardForCode(domain / 2);
  workload::Workload feedback;
  for (int32_t code = part.shard(target).code_lo;
       code <= part.shard(target).code_hi && feedback.size() < 24; ++code) {
    workload::LabeledQuery lq;
    lq.query = workload::Query(f.table.num_cols());
    lq.query.AddPredicate({pcol, workload::Op::kEq, code, {}}, domain);
    lq.card = static_cast<double>(workload::ExecuteCount(f.table, lq.query));
    feedback.push_back(lq);
  }
  ASSERT_GE(feedback.size(), 4u);

  std::vector<workload::Workload> routed;
  size_t dropped = sharded.RouteWorkload(feedback, &routed);
  EXPECT_EQ(dropped, 0u);
  for (int s = 0; s < sharded.num_shards(); ++s) {
    EXPECT_EQ(routed[static_cast<size_t>(s)].size(),
              s == target ? feedback.size() : 0u);
  }

  std::vector<std::string> before;
  for (int s = 0; s < sharded.num_shards(); ++s) {
    before.push_back(
        nn::SerializeParams(sharded.shard_model(s).model().Parameters()));
  }
  core::FineTuneSpec spec;
  spec.query_steps = 8;
  sharded.FineTune(feedback, spec);
  for (int s = 0; s < sharded.num_shards(); ++s) {
    std::string after =
        nn::SerializeParams(sharded.shard_model(s).model().Parameters());
    if (s == target) {
      EXPECT_NE(after, before[static_cast<size_t>(s)]) << "target shard unchanged";
    } else {
      EXPECT_EQ(after, before[static_cast<size_t>(s)])
          << "untouched shard " << s << " was modified";
    }
  }
}

TEST(ShardedUaeTest, AdapterJoinsTheEstimatorZoo) {
  Fixture f;
  ShardedUaeConfig sc;
  sc.base = SmallConfig();
  sc.partition.num_shards = 2;
  ShardedUae sharded(f.table, sc);
  sharded.TrainDataEpochs(1);

  estimators::ShardedEstimator adapter(&sharded, "Sharded-2xNaru");
  EXPECT_EQ(adapter.name(), "Sharded-2xNaru");
  EXPECT_EQ(adapter.SizeBytes(), sharded.SizeBytes());
  std::vector<double> via_adapter = adapter.EstimateCards(f.queries);
  std::vector<double> direct = sharded.EstimateCards(f.queries);
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_adapter[i], direct[i]);
    EXPECT_DOUBLE_EQ(adapter.EstimateCard(f.queries[i]), direct[i]);
  }
}

}  // namespace
}  // namespace uae::shard
