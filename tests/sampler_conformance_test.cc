// Sampler conformance suite: the wavefront sampler (core/wavefront) must be
// bit-identical to the per-query progressive sampler (core/progressive) for
// any wavefront width, any batch composition, and any thread count. These
// tests pin that contract:
//
//  * widths {1, 8, 64} against the per-query reference, query by query;
//  * batch-composition invariance (singletons, shuffled batches, subsets);
//  * repeated batched runs are bit-stable (thread-count independence rides on
//    per-query RNG purity plus row-deterministic kernels; CI exercises the
//    same suite on machines with different core counts);
//  * zero-mass early exit: provably-empty predicates estimate exactly zero
//    without perturbing neighbouring lanes or queries;
//  * seeded property sweeps: 300 generator queries per dataset, wavefront vs
//    per-query, exact equality.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <vector>

#include "core/progressive.h"
#include "core/quant.h"
#include "core/uae.h"
#include "core/wavefront.h"
#include "data/synthetic.h"
#include "util/mathutil.h"
#include "workload/generator.h"

namespace uae::core {
namespace {

UaeConfig SmallConfig(uint64_t seed) {
  UaeConfig cfg;
  cfg.hidden = 32;
  cfg.ps_samples = 48;
  cfg.seed = seed;
  return cfg;
}

struct Dataset {
  data::Table table;
  Uae uae;
  std::vector<workload::Query> queries;

  Dataset(data::Table t, const UaeConfig& cfg, uint64_t gen_seed, int n_queries)
      : table(std::move(t)), uae(table, cfg) {
    uae.TrainDataEpochs(2);
    workload::GeneratorConfig gc;
    gc.min_filters = 1;
    gc.max_filters = 3;
    workload::QueryGenerator gen(table, gc, gen_seed);
    for (const auto& lq : gen.GenerateLabeled(n_queries, nullptr)) {
      queries.push_back(lq.query);
    }
  }
};

Dataset& Correlated() {
  static Dataset* d =
      new Dataset(data::TinyCorrelated(1500, 7), SmallConfig(17), 41, 300);
  return *d;
}

Dataset& Dmv() {
  static Dataset* d = []() {
    UaeConfig cfg = SmallConfig(29);
    cfg.ps_samples = 32;
    return new Dataset(data::SyntheticDmv(2000, 11), cfg, 43, 300);
  }();
  return *d;
}

/// Per-query reference estimates through the legacy sampler, with the exact
/// serving RNG scheme (seed x fingerprint).
std::vector<double> ReferenceSelectivities(const Dataset& d,
                                           std::span<const workload::Query> qs) {
  std::vector<double> out;
  out.reserve(qs.size());
  for (const auto& q : qs) {
    QueryTargets targets = BuildTargets(q, d.table, d.uae.schema());
    util::Rng rng(util::SplitMix64(d.uae.config().seed ^
                                   util::SplitMix64(q.Fingerprint())));
    out.push_back(
        ProgressiveSample(d.uae.model(), targets, d.uae.config().ps_samples, &rng));
  }
  return out;
}

/// Direct wavefront run at an explicit width over the frozen backend.
std::vector<double> WavefrontAtWidth(const Dataset& d,
                                     std::span<const workload::Query> qs,
                                     int width) {
  std::vector<QueryTargets> targets;
  std::vector<util::Rng> rngs;
  for (const auto& q : qs) {
    targets.push_back(BuildTargets(q, d.table, d.uae.schema()));
    rngs.push_back(util::Rng(util::SplitMix64(
        d.uae.config().seed ^ util::SplitMix64(q.Fingerprint()))));
  }
  WavefrontConfig wc;
  wc.num_samples = d.uae.config().ps_samples;
  wc.wave_width = width;
  return WavefrontSampleSelectivities(*d.uae.FrozenBackend(), targets, rngs, wc);
}

TEST(SamplerConformanceTest, BitwiseParityAcrossWavefrontWidths) {
  Dataset& d = Correlated();
  std::span<const workload::Query> qs(d.queries.data(), 40);
  std::vector<double> reference = ReferenceSelectivities(d, qs);
  for (int width : {1, 8, 64}) {
    std::vector<double> wave = WavefrontAtWidth(d, qs, width);
    ASSERT_EQ(wave.size(), reference.size());
    for (size_t i = 0; i < wave.size(); ++i) {
      // Exact: not EXPECT_DOUBLE_EQ's 4-ULP tolerance.
      EXPECT_EQ(wave[i], reference[i]) << "width " << width << " query " << i;
    }
  }
}

TEST(SamplerConformanceTest, BatchCompositionInvariance) {
  Dataset& d = Correlated();
  std::span<const workload::Query> qs(d.queries.data(), 32);
  std::vector<double> batched = d.uae.EstimateSelectivities(qs);

  // Singletons: every query estimated alone must reproduce its batched value.
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(d.uae.EstimateSelectivity(qs[i]), batched[i]) << "query " << i;
  }

  // Shuffled batch: same queries, different order and hence different wave
  // and lane packing — values must follow the query, not the slot.
  std::vector<size_t> perm(qs.size());
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::mt19937_64 shuffle_rng(99);
  std::shuffle(perm.begin(), perm.end(), shuffle_rng);
  std::vector<workload::Query> shuffled;
  for (size_t i : perm) shuffled.push_back(qs[i]);
  std::vector<double> shuffled_out = d.uae.EstimateSelectivities(shuffled);
  for (size_t j = 0; j < perm.size(); ++j) {
    EXPECT_EQ(shuffled_out[j], batched[perm[j]]) << "slot " << j;
  }

  // Subsets: odd-indexed queries batched together keep their values.
  std::vector<workload::Query> subset;
  for (size_t i = 1; i < qs.size(); i += 2) subset.push_back(qs[i]);
  std::vector<double> subset_out = d.uae.EstimateSelectivities(subset);
  for (size_t j = 0; j < subset.size(); ++j) {
    EXPECT_EQ(subset_out[j], batched[2 * j + 1]) << "subset slot " << j;
  }
}

TEST(SamplerConformanceTest, RepeatedBatchedRunsAreBitStable) {
  // Thread-count independence reduces to per-query RNG purity plus
  // row-deterministic kernels; within one process the observable contract is
  // that repeated batched runs (whatever the pool does) never drift.
  Dataset& d = Correlated();
  std::span<const workload::Query> qs(d.queries.data(), 24);
  std::vector<double> first = d.uae.EstimateSelectivities(qs);
  std::vector<double> reference = ReferenceSelectivities(d, qs);
  for (size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], reference[i]);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<double> again = d.uae.EstimateSelectivities(qs);
    EXPECT_EQ(again, first) << "rep " << rep;
  }
}

TEST(SamplerConformanceTest, ZeroMassEarlyExitOnEmptyRange) {
  Dataset& d = Correlated();
  // An empty code range (lo > hi) can never match: the lane dies on that
  // column's first step, the estimate is exactly zero, and no RNG draw is
  // consumed for dead lanes.
  workload::Query empty_range(d.table.num_cols());
  auto& c0 = empty_range.mutable_constraint(0);
  c0.kind = workload::Constraint::Kind::kRange;
  c0.lo = 5;
  c0.hi = 2;
  EXPECT_EQ(d.uae.EstimateSelectivity(empty_range), 0.0);

  // An empty IN set compiles to an all-zero mask target: same early exit.
  workload::Query empty_in(d.table.num_cols());
  empty_in.mutable_constraint(1).kind = workload::Constraint::Kind::kIn;
  EXPECT_EQ(d.uae.EstimateSelectivity(empty_in), 0.0);

  // Batched alongside live queries, the dead queries must not perturb their
  // neighbours (lane compaction changes every subsequent batch's row layout).
  std::vector<workload::Query> mixed;
  mixed.push_back(d.queries[0]);
  mixed.push_back(empty_range);
  mixed.push_back(d.queries[1]);
  mixed.push_back(empty_in);
  mixed.push_back(d.queries[2]);
  std::vector<double> out = d.uae.EstimateSelectivities(mixed);
  EXPECT_EQ(out[0], d.uae.EstimateSelectivity(d.queries[0]));
  EXPECT_EQ(out[1], 0.0);
  EXPECT_EQ(out[2], d.uae.EstimateSelectivity(d.queries[1]));
  EXPECT_EQ(out[3], 0.0);
  EXPECT_EQ(out[4], d.uae.EstimateSelectivity(d.queries[2]));
}

TEST(SamplerConformanceTest, WildcardOnlyQueryEstimatesOne) {
  Dataset& d = Correlated();
  // No constrained column: the wavefront never gathers a lane, every density
  // stays 1, and the selectivity is exactly 1 in both samplers.
  workload::Query wildcard(d.table.num_cols());
  std::vector<workload::Query> qs{wildcard};
  EXPECT_EQ(d.uae.EstimateSelectivities(qs)[0], 1.0);
  EXPECT_EQ(d.uae.EstimateSelectivity(wildcard), 1.0);
}

TEST(SamplerConformanceTest, PropertySweepCorrelated) {
  Dataset& d = Correlated();
  std::vector<double> reference = ReferenceSelectivities(d, d.queries);
  std::vector<double> wave = d.uae.EstimateSelectivities(d.queries);
  ASSERT_EQ(wave.size(), reference.size());
  for (size_t i = 0; i < wave.size(); ++i) {
    EXPECT_EQ(wave[i], reference[i]) << "query " << i;
  }
}

TEST(SamplerConformanceTest, PropertySweepDmv) {
  Dataset& d = Dmv();
  std::vector<double> reference = ReferenceSelectivities(d, d.queries);
  std::vector<double> wave = d.uae.EstimateSelectivities(d.queries);
  ASSERT_EQ(wave.size(), reference.size());
  for (size_t i = 0; i < wave.size(); ++i) {
    EXPECT_EQ(wave[i], reference[i]) << "query " << i;
  }
  // The DMV generator factorizes nothing at the default threshold, so also
  // sweep a width other than the config default through the backend directly.
  std::span<const workload::Query> head(d.queries.data(), 64);
  std::vector<double> w64 = WavefrontAtWidth(d, head, 64);
  for (size_t i = 0; i < w64.size(); ++i) EXPECT_EQ(w64[i], reference[i]);
}

TEST(SamplerConformanceTest, QuantizedEstimatesArePureButNotFp32) {
  // The quantized backend rides the same wavefront: its estimates must be
  // pure per query (batch-invariant) while generally differing from fp32.
  Dataset& d = Correlated();
  QuantizedUae quant(d.uae);
  std::span<const workload::Query> qs(d.queries.data(), 16);
  std::vector<double> batched = quant.EstimateCards(qs);
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(quant.EstimateCard(qs[i]), batched[i]) << "query " << i;
  }
  std::vector<double> fp32 = d.uae.EstimateCards(qs);
  int differing = 0;
  for (size_t i = 0; i < qs.size(); ++i) {
    if (batched[i] != fp32[i]) ++differing;
  }
  EXPECT_GT(differing, 0) << "int8 estimates should not be bit-equal to fp32";
}

}  // namespace
}  // namespace uae::core
