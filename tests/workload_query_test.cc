// workload/: predicate -> constraint compilation, intersection, masks,
// fingerprints.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/synthetic.h"
#include "workload/query.h"

namespace uae::workload {
namespace {

TEST(ConstraintTest, OperatorsCompileToCodeSets) {
  Query q(1);
  q.AddPredicate({0, Op::kLe, 5, {}}, 10);
  EXPECT_EQ(q.constraint(0).kind, Constraint::Kind::kRange);
  EXPECT_EQ(q.constraint(0).lo, 0);
  EXPECT_EQ(q.constraint(0).hi, 5);

  Query q2(1);
  q2.AddPredicate({0, Op::kGt, 5, {}}, 10);
  EXPECT_EQ(q2.constraint(0).lo, 6);
  EXPECT_EQ(q2.constraint(0).hi, 9);

  Query q3(1);
  q3.AddPredicate({0, Op::kEq, 7, {}}, 10);
  EXPECT_EQ(q3.constraint(0).lo, 7);
  EXPECT_EQ(q3.constraint(0).hi, 7);

  Query q4(1);
  q4.AddPredicate({0, Op::kNeq, 3, {}}, 10);
  EXPECT_EQ(q4.constraint(0).kind, Constraint::Kind::kNotEqual);
  EXPECT_FALSE(q4.constraint(0).Matches(3));
  EXPECT_TRUE(q4.constraint(0).Matches(4));

  Query q5(1);
  q5.AddPredicate({0, Op::kIn, 0, {5, 2, 2, 8}}, 10);
  EXPECT_EQ(q5.constraint(0).kind, Constraint::Kind::kIn);
  EXPECT_EQ(q5.constraint(0).in_codes, (std::vector<int32_t>{2, 5, 8}));
  EXPECT_TRUE(q5.constraint(0).Matches(5));
  EXPECT_FALSE(q5.constraint(0).Matches(3));
}

TEST(ConstraintTest, RangeIntersection) {
  Query q(1);
  q.AddPredicate({0, Op::kGe, 3, {}}, 10);
  q.AddPredicate({0, Op::kLe, 7, {}}, 10);
  EXPECT_EQ(q.constraint(0).lo, 3);
  EXPECT_EQ(q.constraint(0).hi, 7);
  EXPECT_EQ(q.constraint(0).AllowedCount(10), 5);
}

TEST(ConstraintTest, MixedKindIntersectionFallsBackToIn) {
  Query q(1);
  q.AddPredicate({0, Op::kGe, 3, {}}, 10);
  q.AddPredicate({0, Op::kNeq, 5, {}}, 10);
  EXPECT_EQ(q.constraint(0).kind, Constraint::Kind::kIn);
  EXPECT_EQ(q.constraint(0).in_codes, (std::vector<int32_t>{3, 4, 6, 7, 8, 9}));
}

TEST(ConstraintTest, AllowedMaskMatchesMatches) {
  const int32_t domain = 12;
  std::vector<Constraint> cases;
  {
    Constraint c;
    c.kind = Constraint::Kind::kRange;
    c.lo = 2;
    c.hi = 9;
    cases.push_back(c);
  }
  {
    Constraint c;
    c.kind = Constraint::Kind::kNotEqual;
    c.neq = 4;
    cases.push_back(c);
  }
  {
    Constraint c;
    c.kind = Constraint::Kind::kIn;
    c.in_codes = {1, 5, 11};
    cases.push_back(c);
  }
  {
    Constraint c;  // kNone.
    cases.push_back(c);
  }
  for (const Constraint& c : cases) {
    auto mask = c.AllowedMask(domain);
    int64_t count = 0;
    for (int32_t v = 0; v < domain; ++v) {
      EXPECT_EQ(mask[static_cast<size_t>(v)] != 0, c.Matches(v));
      count += mask[static_cast<size_t>(v)];
    }
    EXPECT_EQ(count, c.AllowedCount(domain));
  }
}

TEST(ConstraintTest, EmptyRange) {
  Constraint c;
  c.kind = Constraint::Kind::kRange;
  c.lo = 7;
  c.hi = 3;
  EXPECT_TRUE(c.IsEmpty(10));
  EXPECT_EQ(c.AllowedCount(10), 0);
}

TEST(QueryTest, FingerprintsDistinguishQueries) {
  Query a(3), b(3), c(3);
  a.AddPredicate({0, Op::kEq, 1, {}}, 10);
  b.AddPredicate({0, Op::kEq, 2, {}}, 10);
  c.AddPredicate({1, Op::kEq, 1, {}}, 10);
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  Query a2(3);
  a2.AddPredicate({0, Op::kEq, 1, {}}, 10);
  EXPECT_EQ(a.Fingerprint(), a2.Fingerprint());
}

TEST(QueryTest, IntersectQueriesPerColumn) {
  data::Table t = data::TinyCorrelated(100, 3);
  Query a(t.num_cols()), b(t.num_cols());
  a.AddPredicate({0, Op::kGe, 2, {}}, t.column(0).domain());
  b.AddPredicate({0, Op::kLe, 5, {}}, t.column(0).domain());
  b.AddPredicate({1, Op::kEq, 1, {}}, t.column(1).domain());
  Query c = IntersectQueries(a, b, t);
  EXPECT_EQ(c.constraint(0).lo, 2);
  EXPECT_EQ(c.constraint(0).hi, 5);
  EXPECT_EQ(c.constraint(1).lo, 1);
  EXPECT_FALSE(c.constraint(2).IsActive());
}

TEST(QueryTest, DisjunctionViaInclusionExclusionIsExact) {
  data::Table t = data::TinyCorrelated(3000, 5);
  // Overlapping disjuncts: a0<=2, a0>=2 (full overlap at 2), and c=1.
  Query q1(t.num_cols()), q2(t.num_cols()), q3(t.num_cols());
  q1.AddPredicate({0, Op::kLe, 2, {}}, t.column(0).domain());
  q2.AddPredicate({0, Op::kGe, 2, {}}, t.column(0).domain());
  q3.AddPredicate({2, Op::kEq, 1, {}}, t.column(2).domain());
  std::vector<Query> disjuncts = {q1, q2, q3};
  // Exact oracle for the conjunctions -> inclusion-exclusion must equal a
  // direct scan of the OR.
  auto oracle = [&](const Query& q) {
    int64_t n = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) n += q.MatchesRow(t, r) ? 1 : 0;
    return static_cast<double>(n);
  };
  double via_ie = EstimateDisjunctionCard(disjuncts, t, oracle);
  int64_t direct = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    bool any = false;
    for (const Query& q : disjuncts) any = any || q.MatchesRow(t, r);
    direct += any ? 1 : 0;
  }
  EXPECT_NEAR(via_ie, static_cast<double>(direct), 1e-9);
}

TEST(QueryTest, DisjunctionSkipsEmptyConjunctions) {
  data::Table t = data::TinyCorrelated(500, 7);
  Query q1(t.num_cols()), q2(t.num_cols());
  q1.AddPredicate({0, Op::kLe, 1, {}}, t.column(0).domain());
  q2.AddPredicate({0, Op::kGe, 5, {}}, t.column(0).domain());  // Disjoint ranges.
  int calls = 0;
  auto oracle = [&](const Query& q) {
    ++calls;
    int64_t n = 0;
    for (size_t r = 0; r < t.num_rows(); ++r) n += q.MatchesRow(t, r) ? 1 : 0;
    return static_cast<double>(n);
  };
  double est = EstimateDisjunctionCard({q1, q2}, t, oracle);
  EXPECT_EQ(calls, 2);  // The empty q1∧q2 conjunction is pruned.
  int64_t direct = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    direct += (q1.MatchesRow(t, r) || q2.MatchesRow(t, r)) ? 1 : 0;
  }
  EXPECT_NEAR(est, static_cast<double>(direct), 1e-9);
}

TEST(WorkloadHelpersTest, MakeLabeledWorkloadDerivesSelectivity) {
  std::vector<Query> queries(2, Query(3));
  queries[1].AddPredicate({0, Op::kEq, 2, {}}, 5);
  std::vector<double> cards = {40.0, 0.5};
  Workload w = MakeLabeledWorkload(queries, cards, /*num_rows=*/200);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0].card, 40.0);
  EXPECT_DOUBLE_EQ(w[0].selectivity, 0.2);
  EXPECT_DOUBLE_EQ(w[1].selectivity, 0.0025);
  EXPECT_EQ(w[1].query.Fingerprint(), queries[1].Fingerprint());
}

TEST(WorkloadHelpersTest, SplitWorkloadIsSeededAndExhaustive) {
  Workload all;
  for (int i = 0; i < 20; ++i) {
    LabeledQuery lq;
    lq.query = Query(1);
    lq.card = static_cast<double>(i);
    all.push_back(lq);
  }
  Workload train1, holdout1, train2, holdout2;
  SplitWorkload(all, 0.25, /*seed=*/9, &train1, &holdout1);
  SplitWorkload(all, 0.25, /*seed=*/9, &train2, &holdout2);
  EXPECT_EQ(holdout1.size(), 5u);
  EXPECT_EQ(train1.size(), 15u);
  // Deterministic: same seed, same split.
  for (size_t i = 0; i < holdout1.size(); ++i) {
    EXPECT_EQ(holdout1[i].card, holdout2[i].card);
  }
  // Exhaustive partition: every card appears exactly once across both sides.
  std::vector<double> seen;
  for (const auto& lq : train1) seen.push_back(lq.card);
  for (const auto& lq : holdout1) seen.push_back(lq.card);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
  // A different seed shuffles differently.
  Workload train3, holdout3;
  SplitWorkload(all, 0.25, /*seed=*/10, &train3, &holdout3);
  bool same = true;
  for (size_t i = 0; i < holdout1.size(); ++i) {
    same = same && holdout1[i].card == holdout3[i].card;
  }
  EXPECT_FALSE(same);
}

TEST(WorkloadHelpersTest, SplitWorkloadEdgeCases) {
  Workload two;
  for (int i = 0; i < 2; ++i) {
    LabeledQuery lq;
    lq.query = Query(1);
    two.push_back(lq);
  }
  Workload train, holdout;
  // A positive fraction guarantees a non-empty holdout (and train) when
  // there are at least two queries — the regression guard needs both sides.
  SplitWorkload(two, 0.01, 1, &train, &holdout);
  EXPECT_EQ(train.size(), 1u);
  EXPECT_EQ(holdout.size(), 1u);
  SplitWorkload(two, 0.99, 1, &train, &holdout);
  EXPECT_EQ(train.size(), 1u);
  EXPECT_EQ(holdout.size(), 1u);
  SplitWorkload(two, 0.0, 1, &train, &holdout);
  EXPECT_EQ(train.size(), 2u);
  EXPECT_TRUE(holdout.empty());
  SplitWorkload({}, 0.5, 1, &train, &holdout);
  EXPECT_TRUE(train.empty());
  EXPECT_TRUE(holdout.empty());
}

TEST(QueryTest, MatchesRowAndToString) {
  data::Table t = data::TinyCorrelated(50, 1);
  Query q(t.num_cols());
  q.AddPredicate({0, Op::kLe, 3, {}}, t.column(0).domain());
  q.AddPredicate({2, Op::kEq, t.column(2).code_at(0), {}}, t.column(2).domain());
  EXPECT_EQ(q.NumConstrained(), 2);
  bool expected = t.column(0).code_at(0) <= 3;
  EXPECT_EQ(q.MatchesRow(t, 0), expected);
  EXPECT_NE(q.ToString(t).find("AND"), std::string::npos);
}

}  // namespace
}  // namespace uae::workload
