// Sharded estimation walkthrough: partition a table, train one model per
// shard in parallel, compare pruned vs full fan-out on partition-targeted
// queries, then localize drift repair to a single shard.
//
//   ./example_sharded_estimation
#include <cstdio>
#include <memory>
#include <vector>

#include "data/synthetic.h"
#include "serve/service.h"
#include "shard/sharded_uae.h"
#include "util/stopwatch.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

using namespace uae;

int main() {
  // 1. A DMV-shaped table, partitioned on its largest-domain column into 4
  //    equi-depth range shards.
  data::Table table = data::SyntheticDmv(12000, 7);
  shard::ShardedUaeConfig config;
  config.partition.num_shards = 4;
  config.base.hidden = 32;
  config.base.ps_samples = 100;
  config.base.seed = 11;

  auto model = std::make_shared<shard::ShardedUae>(table, config);
  const shard::HorizontalPartitioner& part = model->partitioner();
  std::printf("partitioned '%s' (%zu rows) on column %d into %d shards:\n",
              table.name().c_str(), table.num_rows(), part.partition_col(),
              model->num_shards());
  for (int s = 0; s < model->num_shards(); ++s) {
    std::printf("  shard %d: codes [%d, %d], %zu rows\n", s,
                part.shard(s).code_lo, part.shard(s).code_hi, part.shard(s).rows);
  }

  // 2. Train every shard (fanned across the thread pool).
  util::Stopwatch train_timer;
  model->TrainDataEpochs(3);
  std::printf("trained %d shard models in %.1fs (%zu KB total)\n",
              model->num_shards(), train_timer.ElapsedSeconds(),
              model->SizeBytes() >> 10);

  // 3. Partition-targeted queries: pruning answers each from O(1) shards.
  workload::GeneratorConfig gc;
  gc.bounded_col = part.partition_col();
  gc.target_volume = 0.02;
  gc.min_filters = 2;
  gc.max_filters = 4;
  workload::QueryGenerator gen(table, gc, 13);
  std::vector<workload::Query> queries;
  for (int i = 0; i < 64; ++i) queries.push_back(gen.Generate());

  util::Stopwatch pruned_timer;
  std::vector<double> pruned = model->EstimateCards(queries);
  double pruned_s = pruned_timer.ElapsedSeconds();
  model->set_prune(false);
  util::Stopwatch full_timer;
  std::vector<double> full = model->EstimateCards(queries);
  double full_s = full_timer.ElapsedSeconds();
  model->set_prune(true);

  double pruned_err = 0, full_err = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    double truth = static_cast<double>(workload::ExecuteCount(table, queries[i]));
    pruned_err += workload::QError(pruned[i], truth);
    full_err += workload::QError(full[i], truth);
  }
  std::printf("pruned fan-out : %.2fs (%.1fx faster), mean q-error %.2f\n",
              pruned_s, full_s / pruned_s,
              pruned_err / static_cast<double>(queries.size()));
  std::printf("full fan-out   : %.2fs, mean q-error %.2f\n", full_s,
              full_err / static_cast<double>(queries.size()));

  // 4. Serve it: a ShardedUae snapshot hot-swaps like any other model.
  serve::EstimationService service(model);
  serve::ServeResult first = service.Estimate(queries[0]);
  std::printf("served generation %llu: card %.1f\n",
              static_cast<unsigned long long>(first.generation), first.card);

  // 5. Drift localized to one shard: fine-tune feedback aimed at one
  //    partition refits exactly one model, then hot-swap the result.
  const int pcol = part.partition_col();
  const int32_t domain = table.column(pcol).domain();
  const int target = part.ShardForCode(domain / 2);
  workload::Workload feedback;
  for (int32_t code = part.shard(target).code_lo;
       code <= part.shard(target).code_hi && feedback.size() < 32; code += 2) {
    workload::LabeledQuery lq;
    lq.query = workload::Query(table.num_cols());
    lq.query.AddPredicate({pcol, workload::Op::kEq, code, {}}, domain);
    lq.card = static_cast<double>(workload::ExecuteCount(table, lq.query));
    feedback.push_back(lq);
  }
  auto candidate =
      std::static_pointer_cast<shard::ShardedUae>(model->CloneServable());
  core::FineTuneSpec spec;
  spec.query_steps = 40;
  size_t used = candidate->FineTune(feedback, spec);
  uint64_t published = service.PublishSnapshot(candidate);
  std::printf("fine-tuned shard %d only (%zu feedback queries) and published "
              "generation %llu\n",
              target, used, static_cast<unsigned long long>(published));
  return 0;
}
