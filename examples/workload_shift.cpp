// Incremental query workload (§4.5), production-shaped: instead of hand-
// calling IngestWorkload after each shift (the old version of this example),
// the model is served behind EstimationService while the online adaptation
// loop — FeedbackCollector -> DriftMonitor -> AdaptationController — notices
// each workload shift from query feedback alone, fine-tunes a clone in the
// background, and hot-swaps it. A data-only Naru baseline goes stale.
#include <cstdio>
#include <memory>
#include <unordered_set>

#include "core/uae.h"
#include "data/synthetic.h"
#include "online/controller.h"
#include "serve/service.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

int main() {
  using namespace uae;
  data::Table table = data::SyntheticDmv(20000, 3);

  // Initial training on data only.
  core::UaeConfig config;
  config.hidden = 64;
  config.ps_samples = 128;
  auto uae = std::make_shared<core::Uae>(table, config);
  core::Uae naru(table, config);
  uae->TrainDataEpochs(1);
  naru.TrainDataEpochs(1);

  // The serving stack + the closed adaptation loop.
  serve::EstimationService service(uae);
  online::FeedbackCollector collector({.capacity = 2048});
  online::DriftMonitor monitor(
      {.window = 512, .min_samples = 64, .median_threshold = 1.5, .p95_threshold = 10.0});
  online::AdaptationConfig acfg;
  acfg.finetune_steps = 150;
  acfg.min_feedback = 64;
  online::AdaptationController controller(&service, &collector, &monitor, acfg);

  auto mean_qerror = [&](auto&& estimate, const workload::Workload& test) {
    double total = 0;
    for (const auto& lq : test) total += workload::QError(estimate(lq.query), lq.card);
    return total / static_cast<double>(test.size());
  };

  // The workload focuses on a moving narrow band of the bounded column.
  std::unordered_set<uint64_t> seen;
  for (int phase = 0; phase < 3; ++phase) {
    workload::GeneratorConfig gc;
    gc.center_min = 0.3 * phase;
    gc.center_max = 0.3 * phase + 0.3;
    gc.min_filters = 1;
    gc.max_filters = 2;
    gc.target_volume = 0.05;
    workload::QueryGenerator gen(table, gc, 100 + phase);

    // Live traffic: estimates are served, queries execute, true cardinalities
    // flow back as feedback. Nobody tells the loop that the workload shifted.
    std::vector<workload::Query> traffic;
    for (int i = 0; i < 300; ++i) {
      traffic.push_back(gen.Generate());
      seen.insert(traffic.back().Fingerprint());
    }
    std::vector<int64_t> truths = workload::ExecuteCounts(table, traffic);
    for (size_t i = 0; i < traffic.size(); ++i) {
      serve::ServeResult res = service.Estimate(traffic[i]);
      controller.OnFeedback(traffic[i], res, static_cast<double>(truths[i]));
    }

    online::DriftReport report = monitor.Check();
    online::AdaptationResult result = controller.AdaptIfDrifted();

    workload::QueryGenerator test_gen(table, gc, 200 + phase);
    workload::Workload test = test_gen.GenerateLabeled(60, &seen);
    std::printf(
        "phase %d (centers %.1f-%.1f): drift median %.2f (fired=%d) -> %s"
        " | generation %llu | Naru mean q-error %.3f | UAE (adapted) %.3f\n",
        phase + 1, gc.center_min, gc.center_max, report.median,
        report.fired ? 1 : 0, online::AdaptOutcomeName(result.outcome),
        static_cast<unsigned long long>(service.CurrentGeneration()),
        mean_qerror([&](const workload::Query& q) { return naru.EstimateCard(q); },
                    test),
        mean_qerror([&](const workload::Query& q) { return service.EstimateCard(q); },
                    test));
  }

  online::AdaptationStats stats = controller.Stats();
  std::printf("adaptations: %llu published, %llu rejected by guard, "
              "%llu skipped; final generation %llu\n",
              static_cast<unsigned long long>(stats.published),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.skipped),
              static_cast<unsigned long long>(service.CurrentGeneration()));
  return 0;
}
