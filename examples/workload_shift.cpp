// Incremental query workload (§4.5): the scenario of Table 6. A model is
// trained on data, then the workload shifts to a new data region; UAE ingests
// the new labeled queries with a few supervised epochs, while a data-only
// model (Naru) goes stale.
#include <cstdio>

#include "core/uae.h"
#include "data/synthetic.h"
#include "workload/generator.h"
#include "workload/metrics.h"

int main() {
  using namespace uae;
  data::Table table = data::SyntheticDmv(20000, 3);

  // Initial training on data only.
  core::UaeConfig config;
  config.hidden = 64;
  config.ps_samples = 128;
  core::Uae uae(table, config);
  core::Uae naru(table, config);
  uae.TrainDataEpochs(2);
  naru.TrainDataEpochs(2);

  auto mean_qerror = [](const core::Uae& model, const workload::Workload& test) {
    double total = 0;
    for (const auto& lq : test) {
      total += workload::QError(model.EstimateCard(lq.query), lq.card);
    }
    return total / static_cast<double>(test.size());
  };

  // The workload now focuses on a narrow band of the bounded column.
  std::unordered_set<uint64_t> seen;
  for (int phase = 0; phase < 3; ++phase) {
    workload::GeneratorConfig gc;
    gc.center_min = 0.3 * phase;
    gc.center_max = 0.3 * phase + 0.3;
    workload::QueryGenerator gen(table, gc, 100 + phase);
    workload::Workload train = gen.GenerateLabeled(300, &seen);
    workload::QueryGenerator test_gen(table, gc, 200 + phase);
    workload::Workload test = test_gen.GenerateLabeled(60, &seen);

    // UAE adapts with a few supervised epochs; Naru cannot ingest queries.
    uae.IngestWorkload(train, /*epochs=*/3);
    std::printf("workload phase %d (centers %.1f-%.1f): Naru mean q-error %.3f | "
                "UAE (refined) %.3f\n",
                phase + 1, gc.center_min, gc.center_max, mean_qerror(naru, test),
                mean_qerror(uae, test));
  }
  return 0;
}
