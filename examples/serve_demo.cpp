// Serving demo: the full train-while-serving loop from the ROADMAP north
// star. An EstimationService answers concurrent clients through micro-batched
// progressive sampling and a generation-keyed result cache, while a
// background trainer keeps learning from executed-query feedback (UAE-Q,
// §4.5 workload adaptation) and hot-swaps refreshed model snapshots into the
// service — estimates never block on training.
//
//   $ ./build/example_serve_demo
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/uae.h"
#include "data/synthetic.h"
#include "serve/service.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

int main() {
  using namespace uae;

  // 1) Data + an initial model trained on data only (UAE-D / Naru regime).
  data::Table table = data::SyntheticDmv(/*rows=*/6000, /*seed=*/1);
  core::UaeConfig config;
  config.hidden = 32;
  config.ps_samples = 64;
  auto live = std::make_unique<core::Uae>(table, config);
  live->TrainDataEpochs(1);
  std::printf("initial model trained (%zu KB)\n", live->SizeBytes() >> 10);

  // 2) Stand the service up on a frozen snapshot of the live model.
  serve::ServiceConfig scfg;
  scfg.max_batch = 32;
  scfg.max_wait_us = 200;
  serve::EstimationService service(
      std::shared_ptr<const core::Uae>(live->Clone()), scfg);

  // 3) A labeled workload stands in for the production query log.
  workload::TrainTestWorkloads w =
      workload::GenerateTrainTest(table, /*train=*/150, /*test=*/40, /*seed=*/7);

  // 4) Client threads hammer the service with the held-out queries.
  constexpr int kClients = 4;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const auto& lq : w.test_in_workload) {
          (void)service.Estimate(lq.query);
          answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // 5) Meanwhile the trainer ingests query feedback (L_query steps on the
  //    labeled workload) and publishes a refreshed snapshot after each burst.
  for (int burst = 0; burst < 3; ++burst) {
    live->TrainQuerySteps(w.train, /*steps=*/15);
    uint64_t gen = service.PublishSnapshot(
        std::shared_ptr<const core::Uae>(live->Clone()));
    std::printf("published snapshot generation %llu (answered so far: %llu)\n",
                static_cast<unsigned long long>(gen),
                static_cast<unsigned long long>(answered.load()));
  }
  stop.store(true);
  for (auto& c : clients) c.join();

  // 6) Accuracy through the service == accuracy of the latest snapshot.
  std::vector<double> errors;
  for (const auto& lq : w.test_in_workload) {
    serve::ServeResult res = service.Estimate(lq.query);
    errors.push_back(workload::QError(res.card, lq.card));
  }
  util::ErrorSummary summary = util::Summarize(errors);
  std::printf("held-out q-error after 3 hot swaps: median=%.3f p95=%.3f\n",
              summary.median, summary.p95);

  serve::ServiceStats stats = service.Stats();
  serve::ResultCacheStats cache = service.CacheStats();
  std::printf(
      "served %llu requests | %llu micro-batches (max %llu) | "
      "%llu cache hits | %llu snapshots\n",
      static_cast<unsigned long long>(stats.requests),
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.max_batch_observed),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(stats.snapshots_published + 1));
  return 0;
}
