// Optimizer-in-the-loop serving walkthrough: a join planner that estimates
// sub-plan cardinalities through the EstimationService, executes its chosen
// plan, feeds the executed plan's TRUE prefix cardinalities back through the
// online loop into the AQO subplan memo, and replans — keeping the best
// exactly-priced plan per query, so plan quality only improves.
// See docs/ARCHITECTURE.md ("Join optimization in the loop").
#include <algorithm>
#include <cstdio>
#include <memory>

#include "core/uae.h"
#include "data/imdb_star.h"
#include "online/feedback.h"
#include "optimizer/card_provider.h"
#include "optimizer/dp_optimizer.h"
#include "optimizer/executor.h"
#include "optimizer/subplan_memo.h"
#include "serve/service.h"
#include "workload/join_workload.h"

int main() {
  using namespace uae;

  // 1. A star schema, a join-universe UAE, and a short data-only training
  //    run (enough for a plausible — not perfect — cost model).
  data::ImdbStarConfig star;
  star.num_titles = 3000;
  data::JoinUniverse uni = data::BuildImdbStar(star);
  core::UaeConfig config;
  config.hidden = 32;
  config.ps_samples = 64;
  core::Uae uae(uni, config);
  uae.TrainDataEpochs(2);

  // 2. The serving stack: the planner talks to the service, not the model.
  //    Concurrent planners would share these micro-batches and the
  //    generation-keyed cache; a hot-swapped snapshot is picked up
  //    transparently.
  serve::EstimationService service(uae.CloneServable());
  optimizer::SubplanMemo memo;
  online::FeedbackCollector feedback;
  optimizer::SubplanMemoRefresher refresher(uni, &memo, &feedback);
  optimizer::ServedCardProvider provider(uni, &service, &memo);
  optimizer::TrueCardProvider truth(uni);

  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 9);
  workload::JoinQuery q = gen.Generate();

  // The yardstick: the plan a perfect cost model would pick, priced in true
  // C_out (sum of true intermediate cardinalities).
  optimizer::PlanResult ideal = optimizer::OptimizeJoinOrder(uni, q, &truth);
  double ideal_cost =
      optimizer::PlanCOutCost(uni, q, ideal.join_order, &truth);
  std::printf("true-card plan cost (ideal): %.0f\n\n", ideal_cost);

  // 3. Plan -> execute -> feedback -> refresh -> replan. Each round's DP
  //    candidate is executed, which prices it EXACTLY (measured intermediate
  //    rows) and yields true cardinalities for every plan prefix; the memo
  //    absorbs those truths off the query path and the next DP pass plans
  //    with them. We keep the best executed plan so far — the plan-memory
  //    trick that makes the loop monotone (see docs/ARCHITECTURE.md).
  double best_cost = -1.0;
  for (int round = 0; round < 3; ++round) {
    optimizer::PlanResult plan = optimizer::OptimizeJoinOrder(uni, q, &provider);
    optimizer::ExecutionResult r = optimizer::ExecutePlan(uni, q, plan.join_order);
    double exact_cost = std::max(r.intermediate_rows, 1.0);
    best_cost = best_cost < 0 ? exact_cost : std::min(best_cost, exact_cost);

    optimizer::RecordPlanFeedback(uni, q, plan.join_order, r.step_rows,
                                  service.CurrentGeneration(), &feedback);
    size_t folded = refresher.RefreshOnce();

    optimizer::ServedCardProvider::Stats stats = provider.stats();
    std::printf(
        "round %d: plan cost=%.0f (best %.0f, %.2fx ideal)  "
        "memo: %zu entries, +%zu observations, %llu hits so far\n",
        round, exact_cost, best_cost, best_cost / ideal_cost, memo.Size(),
        folded, static_cast<unsigned long long>(stats.memo_hits));
  }

  // 4. The memo persists: ship it to the next process and plans pick up the
  //    observed truths immediately (byte-identical save -> load -> save).
  const char* path = "/tmp/uae_subplan_memo.bin";
  if (memo.Save(path).ok()) {
    optimizer::SubplanMemo restored;
    if (restored.Load(path).ok()) {
      std::printf("\nmemo persisted: %zu sub-plans -> %s (restored %zu)\n",
                  memo.Size(), path, restored.Size());
    }
  }
  return best_cost <= ideal_cost * 1.05 ? 0 : 1;
}
