// Quickstart: train UAE on a table with both data and a query workload, then
// estimate cardinalities of new queries.
//
//   $ ./build/examples/quickstart
//
// Walks the full public API: dataset -> workload generation (with true
// cardinalities from the exact executor) -> hybrid training (Alg. 3) ->
// progressive-sampling estimates -> q-error report -> checkpointing.
#include <cstdio>

#include "core/uae.h"
#include "data/synthetic.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"
#include "workload/parser.h"

int main() {
  using namespace uae;

  // 1) A table. Real applications load their own data into data::Table
  //    (see data/csv_table.h); here we synthesize a correlated one.
  data::Table table = data::SyntheticDmv(/*rows=*/20000, /*seed=*/1);
  std::printf("table '%s': %zu rows, %d columns\n", table.name().c_str(),
              table.num_rows(), table.num_cols());

  // 2) A labeled query workload — in production this is the query log with
  //    feedback cardinalities; here the generator + exact executor stand in.
  workload::TrainTestWorkloads w =
      workload::GenerateTrainTest(table, /*train=*/400, /*test=*/80, /*seed=*/7);

  // 3) Train UAE from *both* sources with one set of parameters (Eq. 11).
  core::UaeConfig config;
  config.hidden = 64;
  config.lambda = 1e-4f;   // Trade-off between L_data and L_query.
  config.ps_samples = 128; // Progressive-sampling samples at estimation time.
  core::Uae uae(table, config);
  uae.TrainHybridEpochs(w.train, /*epochs=*/2, [](const core::TrainStats& s) {
    std::printf("epoch %d: L_data=%.3f L_query=%.3f (%.1fs)\n", s.epoch + 1,
                s.data_loss, s.query_loss, s.seconds);
  });

  // 4) Estimate cardinalities for unseen queries.
  std::vector<double> errors;
  for (const auto& lq : w.test_in_workload) {
    double est = uae.EstimateCard(lq.query);
    errors.push_back(workload::QError(est, lq.card));
  }
  util::ErrorSummary summary = util::Summarize(errors);
  std::printf("\nq-error on %zu held-out queries: median=%.3f p95=%.3f max=%.3f\n",
              errors.size(), summary.median, summary.p95, summary.max);

  // 5) Ad-hoc queries can be written as text (workload/parser.h).
  auto parsed = workload::ParseQuery(
      table, "model_year BETWEEN 100 AND 260 AND county <= 5 AND scofflaw = 0");
  UAE_CHECK(parsed.ok()) << parsed.status().ToString();
  std::printf("ad-hoc query: est=%.0f true=%lld\n",
              uae.EstimateCard(parsed.value()),
              static_cast<long long>(workload::ExecuteCount(table, parsed.value())));

  // 6) Persist and reload the model.
  if (uae.Save("/tmp/uae_quickstart.bin").ok()) {
    core::Uae restored(table, config);
    UAE_CHECK(restored.Load("/tmp/uae_quickstart.bin").ok());
    std::printf("checkpoint round-trip OK (model size: %zu KB)\n",
                restored.SizeBytes() >> 10);
  }
  return 0;
}
