// Streaming ingestion end to end: rows stream into the live table through
// IngestService (dictionary-stable appends — unseen values get overflow
// codes, nothing is ever remapped), the StalenessMonitor notices which shard
// drifted, and RefreshController refits ONLY that shard and hot-swaps the
// served snapshot. The stale snapshot keeps serving, untouched, until the
// swap — the printout compares both against fresh ground truth.
#include <cstdio>
#include <memory>

#include "data/synthetic.h"
#include "ingest/refresh.h"
#include "serve/service.h"
#include "shard/sharded_uae.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

int main() {
  using namespace uae;

  // 1. Train a 4-shard model on the base table and start serving it.
  data::Table table = data::SyntheticDmv(6000, 7);
  shard::ShardedUaeConfig sc;
  sc.base.hidden = 32;
  sc.base.ps_samples = 128;
  sc.base.seed = 7;
  sc.partition.num_shards = 4;
  auto model = std::make_shared<shard::ShardedUae>(table, sc);
  model->TrainDataEpochs(1);
  serve::EstimationService service(model);
  std::printf("serving generation %llu (4 shards)\n",
              static_cast<unsigned long long>(service.CurrentGeneration()));

  // 2. Stream churn into ONE shard's code band: new rows concentrated in the
  // last shard, including a value the frozen dictionary has never seen.
  const shard::HorizontalPartitioner& part = model->partitioner();
  const int pcol = part.partition_col();
  const shard::ShardDescriptor& band = part.shard(3);
  ingest::IngestService ingest(&table, &part, {});

  std::vector<std::vector<int32_t>> band_rows;
  for (size_t r = 0; r < 6000; ++r) {
    const int32_t c = table.column(pcol).code_at(r);
    if (c >= band.code_lo && c <= band.code_hi) band_rows.push_back(table.RowCodes(r));
  }
  const size_t streamed = 6000;
  for (size_t i = 0; i < streamed; ++i) {
    ingest.AppendCodes(band_rows[i % band_rows.size()]);  // Dictionary-stable.
  }
  // A row with an unseen value in a non-partition column: it gets a stable
  // overflow code above the frozen domain, no retraining required to answer.
  const int ucol = pcol == 0 ? 1 : 0;
  const int64_t unseen = static_cast<int64_t>(table.column(ucol).domain()) + 3;
  std::vector<data::Value> row;
  const std::vector<int32_t> src = table.RowCodes(0);
  for (int c = 0; c < table.num_cols(); ++c) {
    row.push_back(c == ucol ? data::Value(unseen)
                            : table.column(c).ValueForCode(src[static_cast<size_t>(c)]));
  }
  for (int i = 0; i < 16; ++i) ingest.Append(row);
  ingest.Flush();
  std::printf("streamed %zu churn rows + 16 rows of unseen value %lld "
              "(%llu unseen dictionary entries created)\n",
              streamed, static_cast<long long>(unseen),
              static_cast<unsigned long long>(ingest.stats().unseen_values));

  // 3. The staleness monitor flags exactly the drifted shard.
  ingest::RefreshConfig rc;
  rc.staleness.trigger_rows = 256;
  rc.data_epochs = 2;
  ingest::RefreshController ctrl(&ingest, &service, model, rc);
  for (const auto& s : ctrl.monitor().Snapshot()) {
    std::printf("  shard %d: %zu pending rows (%zu unseen) -> %s\n", s.shard,
                s.rows_since_refresh, s.unseen_since_refresh,
                s.stale ? "STALE" : "fresh");
  }

  // 4. Label post-churn ground truth over the live table, then score the
  // stale snapshot BEFORE the refresh swaps it out.
  ingest.CompactNow();
  workload::GeneratorConfig gc;
  gc.center_min = static_cast<double>(band.code_lo) / table.column(pcol).domain();
  gc.center_max = 1.0;
  gc.min_filters = 1;
  gc.max_filters = 2;
  gc.target_volume = 0.1;
  workload::QueryGenerator gen(table, gc, 31);
  workload::Workload post_churn = gen.GenerateLabeled(48, nullptr);

  std::vector<double> stale_errors;
  for (const auto& lq : post_churn) {
    stale_errors.push_back(workload::QError(service.EstimateCard(lq.query), lq.card));
  }

  // 5. One staleness-driven refresh: clone, refit ONLY the stale shard on its
  // delta rows, wrap the overflow tail, hot-swap.
  ingest::RefreshResult r = ctrl.RefreshIfStale();
  std::printf("refresh: %s — %zu shard(s) refit on %zu rows, %zu-row tail, "
              "now serving generation %llu\n",
              ingest::RefreshOutcomeName(r.outcome), r.refreshed_shards.size(),
              r.rows_ingested, r.tail_rows,
              static_cast<unsigned long long>(service.CurrentGeneration()));

  std::vector<double> fresh_errors;
  for (const auto& lq : post_churn) {
    fresh_errors.push_back(workload::QError(service.EstimateCard(lq.query), lq.card));
  }
  util::ErrorSummary stale = util::Summarize(stale_errors);
  util::ErrorSummary fresh = util::Summarize(fresh_errors);
  std::printf("post-churn q-error: stale median=%.2f p95=%.2f  ->  "
              "refreshed median=%.2f p95=%.2f (%.1fx better)\n",
              stale.median, stale.p95, fresh.median, fresh.p95,
              stale.median / fresh.median);

  // 6. The unseen value answers exactly through the published tail.
  workload::Query q(table.num_cols());
  workload::Predicate p;
  p.col = ucol;
  p.op = workload::Op::kEq;
  p.code = *table.column(ucol).CodeForValue(data::Value(unseen));
  q.AddPredicate(p, table.column(ucol).total_domain());
  std::printf("unseen value %lld: served estimate %.1f, true count %llu — "
              "no dictionary remap, no model retrain\n",
              static_cast<long long>(unseen), service.EstimateCard(q),
              static_cast<unsigned long long>(workload::ExecuteCount(table, q)));
  return 0;
}
