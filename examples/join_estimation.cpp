// Join cardinality estimation (§4.6): UAE over a full-outer-join universe
// with indicator + fanout columns (NeuroCard-style), on a synthetic IMDB-like
// star schema. Demonstrates multi-way equi-join estimates with subsets of
// tables and fanout downscaling.
#include <cstdio>

#include "core/uae.h"
#include "data/imdb_star.h"
#include "workload/join_workload.h"
#include "workload/metrics.h"

int main() {
  using namespace uae;

  // Build the star schema (title x movie_companies x movie_info) and its
  // materialized full outer join.
  data::ImdbStarConfig star;
  star.num_titles = 6000;
  data::JoinUniverse uni = data::BuildImdbStar(star);
  std::printf("full outer join: %zu rows over %d tables\n", uni.full_join_rows,
              uni.NumTables());

  // Train on join samples (the universe) + a focused join workload.
  core::UaeConfig config;
  config.hidden = 64;
  config.factor_threshold = 64;  // Factorize high-NDV columns (company_id).
  config.factor_bits = 5;
  config.lambda = 10.f;          // The paper's IMDB setting.
  config.ps_samples = 128;
  core::Uae uae(uni, config);

  std::unordered_set<uint64_t> seen;
  workload::JoinGeneratorConfig gc;
  gc.focused = true;
  workload::JoinQueryGenerator gen(uni, gc, 5);
  workload::JoinWorkload train = gen.GenerateLabeled(250, &seen);
  uae.TrainHybridEpochs(train, /*epochs=*/2);

  // Estimate held-out join queries (both full template and table subsets).
  workload::JoinGeneratorConfig test_cfg;
  test_cfg.focused = false;  // Random table subsets = JOB-light style.
  workload::JoinQueryGenerator test_gen(uni, test_cfg, 77);
  workload::JoinWorkload test = test_gen.GenerateLabeled(40, &seen);
  std::vector<double> errors;
  for (const auto& lq : test) {
    double est = uae.EstimateJoinCard(lq.query);
    errors.push_back(workload::QError(est, lq.card));
    if (errors.size() <= 3) {
      std::printf("tables=%u  true=%.0f  est=%.0f  q-error=%.2f\n",
                  lq.query.table_mask, lq.card, est, errors.back());
    }
  }
  util::ErrorSummary s = util::Summarize(errors);
  std::printf("\njoin q-error over %zu queries: median=%.3f p95=%.3f max=%.3f\n",
              errors.size(), s.median, s.p95, s.max);
  return 0;
}
