// Database generation with UAE-Q (§6 future work): because UAE-Q is a
// *generative* supervised model, tuples can be sampled from it directly —
// unlike discriminative query-driven estimators. This example trains UAE-Q
// from queries alone and synthesizes a table whose workload cardinalities
// approximate the (hidden) original's.
#include <cstdio>

#include "core/uae.h"
#include "data/synthetic.h"
#include "workload/executor.h"
#include "workload/generator.h"
#include "workload/metrics.h"

int main() {
  using namespace uae;
  data::Table hidden = data::TinyCorrelated(8000, 21);

  // The generator only ever sees (query, cardinality) pairs — no tuples.
  workload::GeneratorConfig gc;
  gc.min_filters = 1;
  gc.max_filters = 2;
  workload::QueryGenerator gen(hidden, gc, 33);
  workload::Workload feedback = gen.GenerateLabeled(400, nullptr);

  core::UaeConfig config;
  config.hidden = 32;
  config.dps_samples = 16;
  core::Uae uae_q(hidden, config);  // Table reference provides the schema only.
  uae_q.TrainQuerySteps(feedback, 400);

  // Sample a synthetic database from the learned joint distribution.
  auto tuples = uae_q.Sample(8000);
  std::vector<std::vector<int32_t>> cols(static_cast<size_t>(hidden.num_cols()));
  for (const auto& t : tuples) {
    for (size_t c = 0; c < t.size(); ++c) cols[c].push_back(t[c]);
  }
  std::vector<data::Column> built;
  for (int c = 0; c < hidden.num_cols(); ++c) {
    built.push_back(data::Column::FromCodes(hidden.column(c).name(),
                                            std::move(cols[static_cast<size_t>(c)]),
                                            hidden.column(c).domain()));
  }
  data::Table synthesized("generated", std::move(built));

  // How faithful is the synthetic database on held-out queries?
  workload::QueryGenerator test_gen(hidden, gc, 44);
  workload::Workload test = test_gen.GenerateLabeled(60, nullptr);
  std::vector<double> errors;
  for (const auto& lq : test) {
    double synth_card = static_cast<double>(
        workload::ExecuteCount(synthesized, lq.query));
    errors.push_back(workload::QError(synth_card, lq.card));
  }
  util::ErrorSummary s = util::Summarize(errors);
  std::printf("generated DB vs hidden DB on %zu held-out queries: "
              "median=%.3f p95=%.3f max=%.2f\n",
              errors.size(), s.median, s.p95, s.max);
  std::printf("(UAE-Q never saw a tuple — only %zu labeled queries)\n",
              feedback.size());
  return 0;
}
