// The estimator zoo: trains every baseline family of §5.1.4 on one table and
// prints a side-by-side q-error comparison — a miniature of Tables 2-4.
#include <cstdio>

#include "core/uae.h"
#include "data/synthetic.h"
#include "estimators/bayesnet.h"
#include "estimators/histogram.h"
#include "estimators/kde.h"
#include "estimators/lr.h"
#include "estimators/mscn.h"
#include "estimators/sampling.h"
#include "estimators/spn.h"
#include "shard/sharded_uae.h"
#include "workload/generator.h"
#include "workload/metrics.h"

int main() {
  using namespace uae;
  data::Table table = data::SyntheticCensus(20000, 2);
  workload::TrainTestWorkloads w = workload::GenerateTrainTest(table, 300, 80, 9);

  auto report = [&](const std::string& name, size_t size,
                    const std::function<double(const workload::Query&)>& est) {
    util::ErrorSummary s =
        util::Summarize(workload::EvaluateQErrors(w.test_in_workload, est));
    std::printf("%-14s %6zuKB  median=%7.3f  p95=%8.3f  max=%9.2f\n", name.c_str(),
                size >> 10, s.median, s.p95, s.max);
  };

  estimators::HistogramAviEstimator hist(table, 64);
  report("Histogram-AVI", hist.SizeBytes(),
         [&](const workload::Query& q) { return hist.EstimateCard(q); });

  estimators::SamplingEstimator sampling(table, 0.05, 11);
  report("Sampling", sampling.SizeBytes(),
         [&](const workload::Query& q) { return sampling.EstimateCard(q); });

  estimators::KdeEstimator kde(table, 1500, 12);
  report("KDE", kde.SizeBytes(),
         [&](const workload::Query& q) { return kde.EstimateCard(q); });

  estimators::BayesNetEstimator bn(table, 20000, 0.1, 13);
  report("BayesNet", bn.SizeBytes(),
         [&](const workload::Query& q) { return bn.EstimateCard(q); });

  estimators::SpnConfig spn_cfg;
  estimators::SpnEstimator spn(table, spn_cfg);
  report("DeepDB-SPN", spn.SizeBytes(),
         [&](const workload::Query& q) { return spn.EstimateCard(q); });

  estimators::LrEstimator lr(table);
  lr.Train(w.train);
  report("LR", lr.SizeBytes(),
         [&](const workload::Query& q) { return lr.EstimateCard(q); });

  estimators::MscnConfig mc;
  mc.epochs = 12;
  estimators::MscnEstimator mscn(table, mc);
  mscn.Train(w.train);
  report("MSCN-base", mscn.SizeBytes(),
         [&](const workload::Query& q) { return mscn.EstimateCard(q); });

  core::UaeConfig uc;
  uc.hidden = 48;
  uc.ps_samples = 128;
  core::Uae uae(table, uc);
  uae.TrainHybridEpochs(w.train, 2);
  report("UAE", uae.SizeBytes(),
         [&](const workload::Query& q) { return uae.EstimateCard(q); });

  shard::ShardedUaeConfig sharded_cfg;
  sharded_cfg.base = uc;
  sharded_cfg.partition.num_shards = 4;
  shard::ShardedUae sharded(table, sharded_cfg);
  sharded.TrainDataEpochs(2);
  report("Sharded-4x", sharded.SizeBytes(),
         [&](const workload::Query& q) { return sharded.EstimateCard(q); });
  return 0;
}
