#include "estimators/kde.h"

#include <algorithm>
#include <cmath>

#include "util/mathutil.h"

namespace uae::estimators {

KdeEstimator::KdeEstimator(const data::Table& table, size_t sample_size,
                           uint64_t seed)
    : table_rows_(table.num_rows()) {
  util::Rng rng(seed);
  n_ = std::min(sample_size, table.num_rows());
  std::vector<size_t> rows = rng.SampleWithoutReplacement(table.num_rows(), n_);
  const int d = table.num_cols();
  sample_.assign(static_cast<size_t>(d), std::vector<double>());
  for (int c = 0; c < d; ++c) {
    auto& col = sample_[static_cast<size_t>(c)];
    col.reserve(n_);
    for (size_t r : rows) col.push_back(static_cast<double>(table.column(c).code_at(r)));
  }
  // Scott's rule: h_i = sigma_i * n^(-1/(d+4)).
  bandwidths_.resize(static_cast<size_t>(d));
  double factor = std::pow(static_cast<double>(n_), -1.0 / (d + 4));
  for (int c = 0; c < d; ++c) {
    double sigma = std::sqrt(util::Variance(sample_[static_cast<size_t>(c)]));
    bandwidths_[static_cast<size_t>(c)] = std::max(0.3, sigma * factor);
  }
}

std::vector<std::pair<int32_t, int32_t>> KdeEstimator::Intervals(
    const workload::Constraint& c, int32_t domain) {
  using Kind = workload::Constraint::Kind;
  std::vector<std::pair<int32_t, int32_t>> out;
  switch (c.kind) {
    case Kind::kNone:
      out.emplace_back(0, domain - 1);
      break;
    case Kind::kRange:
      out.emplace_back(std::max(c.lo, 0), std::min(c.hi, domain - 1));
      break;
    case Kind::kNotEqual:
      if (c.neq > 0) out.emplace_back(0, c.neq - 1);
      if (c.neq < domain - 1) out.emplace_back(c.neq + 1, domain - 1);
      break;
    case Kind::kIn: {
      // Merge adjacent codes into runs.
      int32_t run_lo = -2, run_hi = -2;
      for (int32_t code : c.in_codes) {
        if (code == run_hi + 1) {
          run_hi = code;
        } else {
          if (run_lo >= 0) out.emplace_back(run_lo, run_hi);
          run_lo = run_hi = code;
        }
      }
      if (run_lo >= 0) out.emplace_back(run_lo, run_hi);
      break;
    }
  }
  return out;
}

double KdeEstimator::SelectivityAndGrad(const workload::Query& query,
                                        std::vector<double>* grad_bw) const {
  const int d = static_cast<int>(sample_.size());
  // Active columns and their intervals.
  std::vector<int> active;
  std::vector<std::vector<std::pair<int32_t, int32_t>>> ivals;
  for (int c = 0; c < d; ++c) {
    const workload::Constraint& cons = query.constraint(c);
    if (!cons.IsActive()) continue;
    active.push_back(c);
    // Reconstruct domain from the data range: use max code + 1 heuristic is
    // wrong for unsampled codes; constraints already carry valid code bounds.
    int32_t domain = cons.kind == workload::Constraint::Kind::kRange
                         ? std::max(cons.hi + 1, 1)
                         : (cons.kind == workload::Constraint::Kind::kNotEqual
                                ? cons.neq + 2
                                : (cons.in_codes.empty() ? 1 : cons.in_codes.back() + 1));
    // A generous upper bound keeps kNone/kNotEqual tails open; Gaussian mass
    // beyond the data range is negligible anyway.
    domain = std::max(domain, 1 << 20);
    ivals.push_back(Intervals(cons, domain));
  }
  if (grad_bw != nullptr) grad_bw->assign(static_cast<size_t>(d), 0.0);
  if (active.empty()) return 1.0;

  double total = 0.0;
  std::vector<double> mass(active.size());
  std::vector<double> dmass(active.size());
  for (size_t s = 0; s < n_; ++s) {
    double prod = 1.0;
    for (size_t a = 0; a < active.size(); ++a) {
      int c = active[a];
      double x = sample_[static_cast<size_t>(c)][s];
      double h = bandwidths_[static_cast<size_t>(c)];
      double m = 0.0, dm = 0.0;
      for (const auto& [lo, hi] : ivals[a]) {
        double zl = (static_cast<double>(lo) - 0.5 - x) / h;
        double zu = (static_cast<double>(hi) + 0.5 - x) / h;
        m += util::NormalCdf(zu) - util::NormalCdf(zl);
        dm += (util::NormalPdf(zl) * zl - util::NormalPdf(zu) * zu) / h;
      }
      mass[a] = m;
      dmass[a] = dm;
      prod *= m;
    }
    total += prod;
    if (grad_bw != nullptr) {
      for (size_t a = 0; a < active.size(); ++a) {
        if (mass[a] <= 1e-300) continue;
        (*grad_bw)[static_cast<size_t>(active[a])] += prod / mass[a] * dmass[a];
      }
    }
  }
  double inv_n = 1.0 / static_cast<double>(n_);
  if (grad_bw != nullptr) {
    for (auto& g : *grad_bw) g *= inv_n;
  }
  return total * inv_n;
}

double KdeEstimator::EstimateCard(const workload::Query& query) const {
  return SelectivityAndGrad(query, nullptr) * static_cast<double>(table_rows_);
}

size_t KdeEstimator::SizeBytes() const {
  return n_ * sample_.size() * sizeof(double) + bandwidths_.size() * sizeof(double);
}

}  // namespace uae::estimators
