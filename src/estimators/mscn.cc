#include "estimators/mscn.h"

#include <algorithm>
#include <cmath>

#include "nn/ops.h"
#include "nn/serialize.h"
#include "workload/executor.h"

namespace uae::estimators {

namespace {
// Operator one-hot slots for featurization.
enum PredOp { kOpEq = 0, kOpLe, kOpGe, kOpNeq, kOpIn, kNumOps };
}  // namespace

MscnEstimator::MscnEstimator(const data::Table& table, const MscnConfig& config)
    : table_(&table), config_(config), table_rows_(table.num_rows()) {
  pred_width_ = table.num_cols() + kNumOps + 1;  // col one-hot + op one-hot + value.
  max_preds_ = table.num_cols() * 2;             // A range uses two predicates.
  util::Rng rng(config.seed);
  pred_fc1_ = nn::Linear(pred_width_, config.hidden, "mscn.pred1", &rng);
  pred_fc2_ = nn::Linear(config.hidden, config.hidden, "mscn.pred2", &rng);
  out_fc1_ = nn::Linear(config.hidden + config.extra_dim, config.hidden, "mscn.out1",
                        &rng);
  out_fc2_ = nn::Linear(config.hidden, 1, "mscn.out2", &rng);
}

MscnEstimator::QueryFeatures MscnEstimator::Featurize(
    const workload::Query& query) const {
  QueryFeatures qf;
  qf.preds = nn::Mat(max_preds_, pred_width_);
  int slot = 0;
  auto add = [&](int col, PredOp op, double value01) {
    if (slot >= max_preds_) return;
    float* row = qf.preds.row(slot++);
    row[col] = 1.f;
    row[table_->num_cols() + op] = 1.f;
    row[table_->num_cols() + kNumOps] = static_cast<float>(value01);
  };
  for (int c = 0; c < query.num_cols(); ++c) {
    const workload::Constraint& cons = query.constraint(c);
    if (!cons.IsActive()) continue;
    double domain = static_cast<double>(table_->column(c).domain());
    switch (cons.kind) {
      case workload::Constraint::Kind::kRange:
        if (cons.lo == cons.hi) {
          add(c, kOpEq, cons.lo / domain);
        } else {
          if (cons.lo > 0) add(c, kOpGe, cons.lo / domain);
          if (cons.hi < table_->column(c).domain() - 1) add(c, kOpLe, cons.hi / domain);
          if (cons.lo <= 0 && cons.hi >= table_->column(c).domain() - 1) {
            add(c, kOpGe, 0.0);
          }
        }
        break;
      case workload::Constraint::Kind::kNotEqual:
        add(c, kOpNeq, cons.neq / domain);
        break;
      case workload::Constraint::Kind::kIn:
        add(c, kOpIn, static_cast<double>(cons.in_codes.size()) / domain);
        break;
      case workload::Constraint::Kind::kNone:
        break;
    }
  }
  qf.num_preds = std::max(slot, 1);
  return qf;
}

nn::Tensor MscnEstimator::Forward(
    const std::vector<const QueryFeatures*>& batch,
    const std::vector<const std::vector<float>*>& extras) const {
  const int b = static_cast<int>(batch.size());
  nn::Mat all_preds(b * max_preds_, pred_width_);
  for (int i = 0; i < b; ++i) {
    std::memcpy(all_preds.row(i * max_preds_), batch[static_cast<size_t>(i)]->preds.data(),
                sizeof(float) * batch[static_cast<size_t>(i)]->preds.size());
  }
  nn::Tensor x = nn::Constant(std::move(all_preds));
  nn::Tensor h = pred_fc2_.ForwardRelu(pred_fc1_.ForwardRelu(x));
  // Average pooling over the *actual* predicates: SegmentMean over padded
  // slots sums/max_preds; rescale by max_preds/num_preds per query.
  nn::Tensor pooled_rows;
  {
    // SegmentMean works on [m,1]; pool each hidden dim via matmul with a
    // constant pooling matrix instead: P [b*max_preds -> b] grouped mean.
    // Implemented as MulConstMat row-scale + SegmentSum emulation:
    // reshape trick: RowSum is per-row; we need per-group column-wise mean.
    // Use a dedicated pooling matmul: pool [b, b*max_preds] x h.
    nn::Mat pool(b, b * max_preds_);
    for (int i = 0; i < b; ++i) {
      float inv = 1.f / static_cast<float>(batch[static_cast<size_t>(i)]->num_preds);
      for (int p = 0; p < max_preds_; ++p) pool.at(i, i * max_preds_ + p) = inv;
    }
    pooled_rows = nn::MatMul(nn::Constant(std::move(pool)), h);
  }
  nn::Tensor features = pooled_rows;
  if (config_.extra_dim > 0) {
    nn::Mat extra_mat(b, config_.extra_dim);
    for (int i = 0; i < b; ++i) {
      UAE_CHECK(extras[static_cast<size_t>(i)] != nullptr &&
                static_cast<int>(extras[static_cast<size_t>(i)]->size()) ==
                    config_.extra_dim)
          << "MSCN extra features missing or of wrong width";
      std::memcpy(extra_mat.row(i), extras[static_cast<size_t>(i)]->data(),
                  sizeof(float) * static_cast<size_t>(config_.extra_dim));
    }
    features = nn::ConcatCols({pooled_rows, nn::Constant(std::move(extra_mat))});
  }
  return out_fc2_.Forward(out_fc1_.ForwardRelu(features));
}

void MscnEstimator::Train(const workload::Workload& workload,
                          const std::vector<std::vector<float>>* extras) {
  UAE_CHECK(!workload.empty());
  if (config_.extra_dim > 0) {
    UAE_CHECK(extras != nullptr && extras->size() == workload.size());
  }
  // Featurize once; compute normalization range of log selectivities.
  std::vector<QueryFeatures> features;
  features.reserve(workload.size());
  min_log_ = 0.0;
  double floor_log = std::log(1.0 / static_cast<double>(table_rows_)) - 1.0;
  max_log_ = floor_log;
  std::vector<double> logs;
  logs.reserve(workload.size());
  for (const auto& lq : workload) {
    features.push_back(Featurize(lq.query));
    double l = std::log(std::max(lq.selectivity, std::exp(floor_log)));
    logs.push_back(l);
    min_log_ = std::min(min_log_, l);
    max_log_ = std::max(max_log_, l);
  }
  if (max_log_ - min_log_ < 1e-6) max_log_ = min_log_ + 1.0;

  nn::Adam adam(Parameters(), config_.lr);
  util::Rng rng(config_.seed + 1);

  const int steps_per_epoch = std::max<int>(
      1, static_cast<int>(workload.size()) / config_.batch);
  for (int e = 0; e < config_.epochs; ++e) {
    for (int s = 0; s < steps_per_epoch; ++s) {
      std::vector<const QueryFeatures*> batch;
      std::vector<const std::vector<float>*> batch_extras;
      nn::Mat target(std::min<int>(config_.batch, static_cast<int>(workload.size())), 1);
      for (int i = 0; i < target.rows(); ++i) {
        size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(workload.size()) - 1));
        batch.push_back(&features[pick]);
        batch_extras.push_back(extras ? &(*extras)[pick] : nullptr);
        target.at(i, 0) =
            static_cast<float>((logs[pick] - min_log_) / (max_log_ - min_log_));
      }
      nn::Tensor pred = Forward(batch, batch_extras);
      nn::Tensor loss = nn::MseLoss(pred, target);
      nn::Backward(loss);
      adam.Step();
      adam.ZeroGrad();
    }
  }
}

double MscnEstimator::EstimateCardExtra(const workload::Query& query,
                                        const std::vector<float>& extra) const {
  nn::NoGradGuard no_grad;
  QueryFeatures qf = Featurize(query);
  std::vector<const std::vector<float>*> extras = {&extra};
  nn::Tensor out = Forward({&qf}, extras);
  double norm = std::clamp<double>(out->value().at(0, 0), 0.0, 1.0);
  double sel = std::exp(norm * (max_log_ - min_log_) + min_log_);
  return sel * static_cast<double>(table_rows_);
}

double MscnEstimator::EstimateCard(const workload::Query& query) const {
  UAE_CHECK_EQ(config_.extra_dim, 0) << "estimator requires extra features";
  return EstimateCardExtra(query, {});
}

std::vector<nn::NamedParam> MscnEstimator::Parameters() const {
  std::vector<nn::NamedParam> params;
  pred_fc1_.CollectParams(&params);
  pred_fc2_.CollectParams(&params);
  out_fc1_.CollectParams(&params);
  out_fc2_.CollectParams(&params);
  return params;
}

size_t MscnEstimator::SizeBytes() const { return nn::ParamBytes(Parameters()); }

MscnSamplingEstimator::MscnSamplingEstimator(const data::Table& table,
                                             size_t sample_rows, MscnConfig config) {
  util::Rng rng(config.seed + 7);
  size_t k = std::min(sample_rows, table.num_rows());
  std::vector<size_t> rows = rng.SampleWithoutReplacement(table.num_rows(), k);
  std::vector<data::Column> cols;
  for (int c = 0; c < table.num_cols(); ++c) {
    std::vector<int32_t> codes;
    codes.reserve(k);
    for (size_t r : rows) codes.push_back(table.column(c).code_at(r));
    cols.push_back(data::Column::FromCodes(table.column(c).name(), std::move(codes),
                                           table.column(c).domain()));
  }
  sample_ = data::Table(table.name() + "_mscn_sample", std::move(cols));
  config.extra_dim = 2;
  mscn_ = std::make_unique<MscnEstimator>(table, config);
}

std::vector<float> MscnSamplingEstimator::SampleFeatures(
    const workload::Query& query) const {
  int64_t hits = workload::ExecuteCount(sample_, query);
  float frac =
      static_cast<float>(hits) / static_cast<float>(sample_.num_rows());
  return {frac, std::log1p(static_cast<float>(hits))};
}

void MscnSamplingEstimator::Train(const workload::Workload& workload) {
  std::vector<std::vector<float>> extras;
  extras.reserve(workload.size());
  for (const auto& lq : workload) extras.push_back(SampleFeatures(lq.query));
  mscn_->Train(workload, &extras);
}

double MscnSamplingEstimator::EstimateCard(const workload::Query& query) const {
  return mscn_->EstimateCardExtra(query, SampleFeatures(query));
}

size_t MscnSamplingEstimator::SizeBytes() const {
  return mscn_->SizeBytes() +
         sample_.num_rows() * static_cast<size_t>(sample_.num_cols()) *
             sizeof(int32_t);
}

}  // namespace uae::estimators
