// Feedback-KDE (§5.1.4 #9, Heimel et al. [30]): tunes KDE bandwidths by
// numerically minimizing the squared selectivity error over the training
// workload (the "SquaredQ loss / Batch variant" setup the paper uses).
#pragma once

#include "estimators/kde.h"
#include "workload/query.h"

namespace uae::estimators {

class FeedbackKdeEstimator : public KdeEstimator {
 public:
  FeedbackKdeEstimator(const data::Table& table, size_t sample_size, uint64_t seed)
      : KdeEstimator(table, sample_size, seed) {}

  std::string name() const override { return "Feedback-KDE"; }

  /// Gradient descent on log-bandwidths against (sel_hat - sel)^2, batched
  /// over the workload. Returns the final mean squared error.
  double TuneBandwidths(const workload::Workload& workload, int epochs,
                        double learning_rate = 0.05);
};

}  // namespace uae::estimators
