#include "estimators/bayesnet.h"

#include <algorithm>
#include <queue>

#include "util/mathutil.h"
#include "util/rng.h"

namespace uae::estimators {

BayesNetEstimator::BayesNetEstimator(const data::Table& table, size_t mi_sample_rows,
                                     double alpha, uint64_t seed)
    : table_(&table), alpha_(alpha) {
  const int n = table.num_cols();
  util::Rng rng(seed);

  // --- Structure: Chow-Liu maximum spanning tree on pairwise MI -------------
  size_t m = std::min(mi_sample_rows, table.num_rows());
  std::vector<size_t> rows = rng.SampleWithoutReplacement(table.num_rows(), m);
  std::vector<std::vector<int32_t>> sampled(static_cast<size_t>(n));
  for (int c = 0; c < n; ++c) {
    auto& v = sampled[static_cast<size_t>(c)];
    v.reserve(m);
    for (size_t r : rows) v.push_back(table.column(c).code_at(r));
  }
  // Prim's algorithm with edge weight = MI(i,j), computed on demand.
  std::vector<double> best(static_cast<size_t>(n), -1.0);
  std::vector<int> best_from(static_cast<size_t>(n), -1);
  std::vector<uint8_t> in_tree(static_cast<size_t>(n), 0);
  parents_.assign(static_cast<size_t>(n), -1);
  in_tree[0] = 1;
  root_ = 0;
  for (int c = 1; c < n; ++c) {
    best[static_cast<size_t>(c)] = util::MutualInformation(
        sampled[0], table.column(0).domain(), sampled[static_cast<size_t>(c)],
        table.column(c).domain());
    best_from[static_cast<size_t>(c)] = 0;
  }
  for (int added = 1; added < n; ++added) {
    int pick = -1;
    for (int c = 0; c < n; ++c) {
      if (in_tree[static_cast<size_t>(c)]) continue;
      if (pick < 0 || best[static_cast<size_t>(c)] > best[static_cast<size_t>(pick)]) {
        pick = c;
      }
    }
    in_tree[static_cast<size_t>(pick)] = 1;
    parents_[static_cast<size_t>(pick)] = best_from[static_cast<size_t>(pick)];
    for (int c = 0; c < n; ++c) {
      if (in_tree[static_cast<size_t>(c)]) continue;
      double mi = util::MutualInformation(
          sampled[static_cast<size_t>(pick)], table.column(pick).domain(),
          sampled[static_cast<size_t>(c)], table.column(c).domain());
      if (mi > best[static_cast<size_t>(c)]) {
        best[static_cast<size_t>(c)] = mi;
        best_from[static_cast<size_t>(c)] = pick;
      }
    }
  }
  children_.assign(static_cast<size_t>(n), {});
  for (int c = 0; c < n; ++c) {
    if (parents_[static_cast<size_t>(c)] >= 0) {
      children_[static_cast<size_t>(parents_[static_cast<size_t>(c)])].push_back(c);
    }
  }

  // --- Parameters: marginals + sparse CPTs on the full data -----------------
  marginals_.assign(static_cast<size_t>(n), {});
  for (int c = 0; c < n; ++c) {
    const auto& freq = table.column(c).Frequencies();
    auto& marg = marginals_[static_cast<size_t>(c)];
    marg.resize(freq.size());
    double denom = static_cast<double>(table.num_rows()) +
                   alpha_ * static_cast<double>(freq.size());
    for (size_t v = 0; v < freq.size(); ++v) {
      marg[v] = (static_cast<double>(freq[v]) + alpha_) / denom;
    }
  }
  root_marginal_ = marginals_[static_cast<size_t>(root_)];

  cpt_.assign(static_cast<size_t>(n), {});
  for (int c = 0; c < n; ++c) {
    int p = parents_[static_cast<size_t>(c)];
    if (p < 0) continue;
    // Count joint occurrences.
    std::unordered_map<int32_t, std::unordered_map<int32_t, int64_t>> counts;
    const auto& pcodes = table.column(p).codes();
    const auto& ccodes = table.column(c).codes();
    for (size_t r = 0; r < pcodes.size(); ++r) {
      ++counts[pcodes[r]][ccodes[r]];
    }
    auto& table_c = cpt_[static_cast<size_t>(c)];
    int32_t child_domain = table.column(c).domain();
    for (auto& [pcode, dist] : counts) {
      int64_t total = 0;
      for (const auto& [cc, cnt] : dist) total += cnt;
      SparseDist sd;
      sd.codes.reserve(dist.size());
      sd.probs.reserve(dist.size());
      double denom = static_cast<double>(total) + alpha_ * child_domain;
      for (const auto& [cc, cnt] : dist) {
        sd.codes.push_back(cc);
        sd.probs.push_back(
            static_cast<float>((static_cast<double>(cnt) + alpha_) / denom));
      }
      size_bytes_ += sd.codes.size() * (sizeof(int32_t) + sizeof(float));
      table_c.emplace(pcode, std::move(sd));
    }
  }
  for (const auto& marg : marginals_) size_bytes_ += marg.size() * sizeof(double);
}

std::vector<double> BayesNetEstimator::SubtreeMessage(
    int child, const workload::Query& query) const {
  const int parent = parents_[static_cast<size_t>(child)];
  const int32_t parent_domain = table_->column(parent).domain();
  const int32_t child_domain = table_->column(child).domain();
  const workload::Constraint& cons = query.constraint(child);
  const double alpha = alpha_;

  // Inner messages from this child's own children.
  std::vector<std::vector<double>> inner;
  for (int grandchild : children_[static_cast<size_t>(child)]) {
    inner.push_back(SubtreeMessage(grandchild, query));
  }
  // phi(child_code) = 1(in region) * prod inner messages.
  auto phi = [&](int32_t code) {
    if (cons.IsActive() && !cons.Matches(code)) return 0.0;
    double v = 1.0;
    for (const auto& msg : inner) v *= msg[static_cast<size_t>(code)];
    return v;
  };
  // Precompute sum over child codes of the *smoothing floor* contribution and
  // the phi values (dense over the child's domain).
  std::vector<double> phis(static_cast<size_t>(child_domain));
  double phi_total = 0.0;
  for (int32_t cc = 0; cc < child_domain; ++cc) {
    phis[static_cast<size_t>(cc)] = phi(cc);
    phi_total += phis[static_cast<size_t>(cc)];
  }

  std::vector<double> out(static_cast<size_t>(parent_domain));
  const auto& table_c = cpt_[static_cast<size_t>(child)];
  const auto& marg = marginals_[static_cast<size_t>(child)];
  for (int32_t pc = 0; pc < parent_domain; ++pc) {
    auto it = table_c.find(pc);
    if (it == table_c.end()) {
      // Unseen parent code: back off to the child's marginal.
      double v = 0.0;
      for (int32_t cc = 0; cc < child_domain; ++cc) {
        if (phis[static_cast<size_t>(cc)] > 0.0) {
          v += marg[static_cast<size_t>(cc)] * phis[static_cast<size_t>(cc)];
        }
      }
      out[static_cast<size_t>(pc)] = v;
      continue;
    }
    const SparseDist& sd = it->second;
    // Total observed mass for this parent code (for the smoothing floor).
    double denom_total = 0.0;
    double v = 0.0;
    for (size_t k = 0; k < sd.codes.size(); ++k) {
      denom_total += sd.probs[k];
      v += static_cast<double>(sd.probs[k]) * phis[static_cast<size_t>(sd.codes[k])];
    }
    // Unobserved child codes share the remaining smoothed mass uniformly.
    double leftover = std::max(0.0, 1.0 - denom_total);
    int64_t unseen = child_domain - static_cast<int64_t>(sd.codes.size());
    if (unseen > 0 && leftover > 0.0) {
      double phi_seen = 0.0;
      for (size_t k = 0; k < sd.codes.size(); ++k) {
        phi_seen += phis[static_cast<size_t>(sd.codes[k])];
      }
      double phi_unseen_sum = phi_total - phi_seen;
      v += leftover / static_cast<double>(unseen) * phi_unseen_sum;
    }
    (void)alpha;
    out[static_cast<size_t>(pc)] = v;
  }
  return out;
}

double BayesNetEstimator::EstimateCard(const workload::Query& query) const {
  const workload::Constraint& root_cons = query.constraint(root_);
  std::vector<std::vector<double>> msgs;
  for (int child : children_[static_cast<size_t>(root_)]) {
    msgs.push_back(SubtreeMessage(child, query));
  }
  double sel = 0.0;
  const int32_t domain = table_->column(root_).domain();
  for (int32_t code = 0; code < domain; ++code) {
    if (root_cons.IsActive() && !root_cons.Matches(code)) continue;
    double v = root_marginal_[static_cast<size_t>(code)];
    for (const auto& m : msgs) v *= m[static_cast<size_t>(code)];
    sel += v;
  }
  return sel * static_cast<double>(table_->num_rows());
}

size_t BayesNetEstimator::SizeBytes() const { return size_bytes_; }

}  // namespace uae::estimators
