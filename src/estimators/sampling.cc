#include "estimators/sampling.h"

#include <algorithm>

#include "workload/executor.h"

namespace uae::estimators {

SamplingEstimator::SamplingEstimator(const data::Table& table, double fraction,
                                     uint64_t seed)
    : table_rows_(table.num_rows()) {
  UAE_CHECK(fraction > 0.0 && fraction <= 1.0);
  util::Rng rng(seed);
  size_t k = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(table.num_rows())));
  std::vector<size_t> rows = rng.SampleWithoutReplacement(table.num_rows(), k);
  std::sort(rows.begin(), rows.end());
  std::vector<data::Column> cols;
  cols.reserve(static_cast<size_t>(table.num_cols()));
  for (int c = 0; c < table.num_cols(); ++c) {
    std::vector<int32_t> codes;
    codes.reserve(rows.size());
    for (size_t r : rows) codes.push_back(table.column(c).code_at(r));
    cols.push_back(data::Column::FromCodes(table.column(c).name(), std::move(codes),
                                           table.column(c).domain()));
  }
  sample_ = data::Table(table.name() + "_sample", std::move(cols));
}

double SamplingEstimator::EstimateCard(const workload::Query& query) const {
  int64_t hits = workload::ExecuteCount(sample_, query);
  return static_cast<double>(hits) / static_cast<double>(sample_.num_rows()) *
         static_cast<double>(table_rows_);
}

size_t SamplingEstimator::SizeBytes() const {
  return sample_.num_rows() * static_cast<size_t>(sample_.num_cols()) *
         sizeof(int32_t);
}

}  // namespace uae::estimators
