// Adapters exposing core::Uae through the common estimator interface so the
// bench harnesses treat UAE / UAE-D (Naru) / UAE-Q uniformly with baselines.
#pragma once

#include <string>

#include "core/uae.h"
#include "estimators/estimator.h"
#include "serve/service.h"

namespace uae::estimators {

class UaeAdapter : public CardinalityEstimator {
 public:
  /// Does not own the estimator. `display_name` distinguishes the training
  /// regime: "UAE", "Naru" (=UAE-D), "UAE-Q".
  UaeAdapter(const core::Uae* uae, std::string display_name)
      : uae_(uae), name_(std::move(display_name)) {}

  std::string name() const override { return name_; }
  double EstimateCard(const workload::Query& query) const override;
  /// Fans progressive sampling across the global thread pool; results are
  /// bit-identical to the sequential path (per-query derived RNG seeds).
  std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const override;
  size_t SizeBytes() const override { return uae_->SizeBytes(); }

 private:
  const core::Uae* uae_;
  std::string name_;
};

/// Routes estimates through a serve::EstimationService (micro-batching +
/// result cache + hot-swappable snapshots) instead of a fixed model, so the
/// harnesses can measure the serving layer like any other estimator. Batched
/// calls submit every query asynchronously and gather the futures, letting
/// the service coalesce them into micro-batches.
class UaeServiceAdapter : public CardinalityEstimator {
 public:
  /// Does not own the service.
  UaeServiceAdapter(serve::EstimationService* service, std::string display_name)
      : service_(service), name_(std::move(display_name)) {}

  std::string name() const override { return name_; }
  double EstimateCard(const workload::Query& query) const override;
  std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const override;
  size_t SizeBytes() const override;

 private:
  serve::EstimationService* service_;
  std::string name_;
};

}  // namespace uae::estimators
