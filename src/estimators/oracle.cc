#include "estimators/oracle.h"

#include "workload/executor.h"

namespace uae::estimators {

double OracleEstimator::EstimateCard(const workload::Query& query) const {
  return static_cast<double>(workload::ExecuteCount(table_, query));
}

}  // namespace uae::estimators
