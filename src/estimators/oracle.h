// Oracle estimator returning exact cardinalities via the executor. Used as
// the "TrueCard" planner of the query-optimization study (Fig. 6) and as a
// reference in tests.
#pragma once

#include "data/table.h"
#include "estimators/estimator.h"

namespace uae::estimators {

class OracleEstimator : public CardinalityEstimator {
 public:
  explicit OracleEstimator(const data::Table& table) : table_(table) {}

  std::string name() const override { return "TrueCard"; }
  double EstimateCard(const workload::Query& query) const override;
  size_t SizeBytes() const override { return 0; }

 private:
  const data::Table& table_;
};

}  // namespace uae::estimators
