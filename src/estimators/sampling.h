// Sampling baseline (§5.1.4 #3): keeps a uniform p-fraction of tuples and
// scans it per query.
#pragma once

#include <memory>

#include "data/table.h"
#include "estimators/estimator.h"
#include "util/rng.h"

namespace uae::estimators {

class SamplingEstimator : public CardinalityEstimator {
 public:
  SamplingEstimator(const data::Table& table, double fraction, uint64_t seed);

  std::string name() const override { return "Sampling"; }
  double EstimateCard(const workload::Query& query) const override;
  size_t SizeBytes() const override;

  size_t sample_rows() const { return sample_.num_rows(); }
  const data::Table& sample() const { return sample_; }

 private:
  data::Table sample_;
  size_t table_rows_;
};

}  // namespace uae::estimators
