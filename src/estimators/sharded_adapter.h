// Adapter exposing shard::ShardedUae through the common estimator interface
// so partitioned deployments join the estimator zoo and the bench harness
// next to the monolithic UAE variants and the baselines.
#pragma once

#include <string>

#include "estimators/estimator.h"
#include "shard/sharded_uae.h"

namespace uae::estimators {

class ShardedEstimator : public CardinalityEstimator {
 public:
  /// Does not own the model. `display_name` conventionally encodes the
  /// partitioning, e.g. "Sharded-8xNaru".
  ShardedEstimator(const shard::ShardedUae* model, std::string display_name)
      : model_(model), name_(std::move(display_name)) {}

  std::string name() const override { return name_; }
  double EstimateCard(const workload::Query& query) const override {
    return model_->EstimateCard(query);
  }
  /// Pruned fan-out per query, queries fanned across the global pool.
  std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const override {
    return model_->EstimateCards(queries);
  }
  size_t SizeBytes() const override { return model_->SizeBytes(); }

 private:
  const shard::ShardedUae* model_;
  std::string name_;
};

}  // namespace uae::estimators
