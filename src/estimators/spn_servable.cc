#include "estimators/spn_servable.h"

#include <algorithm>

#include "util/common.h"
#include "util/threadpool.h"

namespace uae::estimators {

SpnServable::SpnServable(const data::Table& table,
                         const SpnServableConfig& config)
    : table_(&table),
      config_(config),
      spn_(std::make_unique<SpnEstimator>(table, config.spn)),
      num_rows_(table.num_rows()) {}

SpnServable::SpnServable(const data::Table& table,
                         const SpnServableConfig& config,
                         std::unique_ptr<SpnEstimator> spn, size_t num_rows)
    : table_(&table),
      config_(config),
      spn_(std::move(spn)),
      num_rows_(num_rows) {}

double SpnServable::EstimateCard(const workload::Query& query) const {
  // Selectivity times the construction-time row snapshot: stays pure under
  // concurrent ingest into the backing table.
  return spn_->EstimateSelectivity(query) * static_cast<double>(num_rows_);
}

std::vector<double> SpnServable::EstimateCards(
    std::span<const workload::Query> queries) const {
  std::vector<double> out(queries.size());
  // Each element is an independent pure read of an immutable tree, so the
  // parallel split cannot affect bitwise results.
  util::ParallelFor(
      0, queries.size(),
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) out[i] = EstimateCard(queries[i]);
      },
      /*min_parallel_size=*/64);
  return out;
}

std::shared_ptr<core::ServableModel> SpnServable::CloneServable() const {
  return std::shared_ptr<SpnServable>(
      new SpnServable(*table_, config_, spn_->Clone(), num_rows_));
}

size_t SpnServable::FineTune(const workload::Workload& workload,
                             const core::FineTuneSpec& spec) {
  SpnFineTuneConfig ft = config_.finetune;
  if (spec.learning_rate > 0.0) ft.learning_rate = spec.learning_rate;
  return spn_->FineTuneOnQueries(workload, spec.query_steps, ft);
}

}  // namespace uae::estimators
