#include "estimators/servable_adapter.h"

#include "util/common.h"

namespace uae::estimators {

ServableEstimatorAdapter::ServableEstimatorAdapter(
    std::shared_ptr<const CardinalityEstimator> estimator, size_t num_rows,
    uint64_t seed)
    : estimator_(std::move(estimator)), num_rows_(num_rows), seed_(seed) {
  UAE_CHECK(estimator_ != nullptr);
}

double ServableEstimatorAdapter::EstimateCard(
    const workload::Query& query) const {
  return estimator_->EstimateCard(query);
}

std::vector<double> ServableEstimatorAdapter::EstimateCards(
    std::span<const workload::Query> queries) const {
  return estimator_->EstimateCards(queries);
}

size_t ServableEstimatorAdapter::SizeBytes() const {
  return estimator_->SizeBytes();
}

std::shared_ptr<core::ServableModel> ServableEstimatorAdapter::CloneServable()
    const {
  // The estimator is immutable and shared; a fresh adapter is a full clone.
  return std::make_shared<ServableEstimatorAdapter>(estimator_, num_rows_,
                                                    seed_);
}

size_t ServableEstimatorAdapter::FineTune(const workload::Workload& /*workload*/,
                                          const core::FineTuneSpec& /*spec*/) {
  return 0;
}

}  // namespace uae::estimators
