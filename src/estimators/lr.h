// Linear-regression baseline (§5.1.4 #2, [40]): a query is represented as the
// concatenation of each predicate's domain range (following Dutt et al. [19])
// and a ridge regression predicts log-selectivity. Closed-form normal
// equations; the non-DL query-driven counterpart to MSCN.
#pragma once

#include <vector>

#include "data/table.h"
#include "estimators/estimator.h"
#include "workload/query.h"

namespace uae::estimators {

class LrEstimator : public CardinalityEstimator {
 public:
  LrEstimator(const data::Table& table, double ridge = 1e-3);

  /// Fits on a labeled workload (query-driven: never sees the data).
  void Train(const workload::Workload& workload);

  std::string name() const override { return "LR"; }
  double EstimateCard(const workload::Query& query) const override;
  size_t SizeBytes() const override { return weights_.size() * sizeof(double); }

  /// Feature vector: per column [lo_frac, hi_frac] + intercept.
  std::vector<double> Featurize(const workload::Query& query) const;

 private:
  const data::Table* table_;
  double ridge_;
  std::vector<double> weights_;
  double min_log_ = -20.0;
  size_t table_rows_;
};

/// Solves (A + ridge*I) x = b for symmetric positive definite A in place.
/// Exposed for unit tests.
std::vector<double> SolveRidge(std::vector<std::vector<double>> a,
                               std::vector<double> b, double ridge);

}  // namespace uae::estimators
