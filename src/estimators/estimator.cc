#include "estimators/estimator.h"

namespace uae::estimators {

std::vector<double> CardinalityEstimator::EstimateCards(
    std::span<const workload::Query> queries) const {
  std::vector<double> cards;
  cards.reserve(queries.size());
  for (const workload::Query& q : queries) cards.push_back(EstimateCard(q));
  return cards;
}

}  // namespace uae::estimators
