// Kernel density estimation baseline (§5.1.4 #5, [26]): Gaussian product
// kernels over a uniform row sample, bandwidths from Scott's rule. Works in
// code space (order-preserving dictionaries make codes a valid numeric axis,
// exactly how the original operates on discretized attributes).
#pragma once

#include <vector>

#include "data/table.h"
#include "estimators/estimator.h"
#include "util/rng.h"

namespace uae::estimators {

class KdeEstimator : public CardinalityEstimator {
 public:
  KdeEstimator(const data::Table& table, size_t sample_size, uint64_t seed);

  std::string name() const override { return "KDE"; }
  double EstimateCard(const workload::Query& query) const override;
  size_t SizeBytes() const override;

  /// Per-dimension bandwidths (Feedback-KDE tunes these).
  std::vector<double>& bandwidths() { return bandwidths_; }
  const std::vector<double>& bandwidths() const { return bandwidths_; }

  /// Selectivity plus, optionally, its gradient w.r.t. each bandwidth
  /// (needed by Feedback-KDE's bandwidth optimization).
  double SelectivityAndGrad(const workload::Query& query,
                            std::vector<double>* grad_bw) const;

 protected:
  /// Per-constraint allowed code intervals (each treated as [lo-0.5, hi+0.5]).
  static std::vector<std::pair<int32_t, int32_t>> Intervals(
      const workload::Constraint& c, int32_t domain);

  std::vector<std::vector<double>> sample_;  ///< [col][sample] codes as double.
  std::vector<double> bandwidths_;
  size_t table_rows_ = 0;
  size_t n_ = 0;  ///< Sample size.
};

}  // namespace uae::estimators
