// SpnServable — the query-driven SPN behind core::ServableModel (ROADMAP
// item 5, arXiv 2505.08318). Wraps estimators::SpnEstimator so the serving,
// adaptation, routing, and sharding layers can deploy an SPN exactly like a
// UAE: EstimateCard is one sampling-free bottom-up pass, FineTune runs the
// multiplicative/EM update on sum weights and leaf histograms from labeled
// feedback, CloneServable deep-copies to a bitwise-identical independent
// candidate, and the whole object is pure for concurrent readers between
// FineTune calls.
//
// Purity note: SpnEstimator::EstimateCard reads the table's *live* row count,
// which moves under streaming ingest. The servable instead snapshots the row
// count at construction and scales EstimateSelectivity itself, so a published
// snapshot keeps answering bitwise-identically regardless of appends. The
// underlying table must outlive the servable and every clone.
#pragma once

#include <memory>

#include "core/servable.h"
#include "data/table.h"
#include "estimators/spn.h"

namespace uae::estimators {

struct SpnServableConfig {
  SpnConfig spn;
  /// Defaults for FineTune; FineTuneSpec.learning_rate > 0 overrides the
  /// learning rate per call (the AdaptationController passthrough).
  SpnFineTuneConfig finetune;
};

class SpnServable : public core::ServableModel {
 public:
  /// Builds a fresh SPN over `table`. The table reference must outlive the
  /// servable and all of its clones.
  SpnServable(const data::Table& table, const SpnServableConfig& config);

  double EstimateCard(const workload::Query& query) const override;
  std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const override;
  size_t SizeBytes() const override { return spn_->SizeBytes(); }
  size_t num_rows() const override { return num_rows_; }
  uint64_t seed() const override { return config_.spn.seed; }
  std::shared_ptr<core::ServableModel> CloneServable() const override;
  /// Runs spec.query_steps multiplicative updates over `workload`
  /// (deterministically cycling it in order; spec.hybrid_epochs has no SPN
  /// analogue and is ignored). Returns the number of distinct queries that
  /// produced an update; 0 means the parameters are bitwise unchanged.
  size_t FineTune(const workload::Workload& workload,
                  const core::FineTuneSpec& spec) override;

  /// The wrapped SPN (structure introspection + signatures for tests).
  const SpnEstimator& spn() const { return *spn_; }

 private:
  SpnServable(const data::Table& table, const SpnServableConfig& config,
              std::unique_ptr<SpnEstimator> spn, size_t num_rows);

  const data::Table* table_;
  SpnServableConfig config_;
  std::unique_ptr<SpnEstimator> spn_;
  size_t num_rows_;
};

}  // namespace uae::estimators
