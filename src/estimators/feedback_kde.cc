#include "estimators/feedback_kde.h"

#include <algorithm>
#include <cmath>

namespace uae::estimators {

double FeedbackKdeEstimator::TuneBandwidths(const workload::Workload& workload,
                                            int epochs, double learning_rate) {
  if (workload.empty()) return 0.0;
  const size_t d = bandwidths_.size();
  double mse = 0.0;
  for (int e = 0; e < epochs; ++e) {
    std::vector<double> grad_total(d, 0.0);
    mse = 0.0;
    for (const auto& lq : workload) {
      std::vector<double> grad_bw;
      double sel = SelectivityAndGrad(lq.query, &grad_bw);
      double err = sel - lq.selectivity;
      mse += err * err;
      for (size_t i = 0; i < d; ++i) grad_total[i] += 2.0 * err * grad_bw[i];
    }
    mse /= static_cast<double>(workload.size());
    // Multiplicative (log-space) update keeps bandwidths positive.
    for (size_t i = 0; i < d; ++i) {
      double g = grad_total[i] / static_cast<double>(workload.size());
      double step = std::clamp(-learning_rate * g * bandwidths_[i], -0.5, 0.5);
      bandwidths_[i] = std::max(0.05, bandwidths_[i] * std::exp(step));
    }
  }
  return mse;
}

}  // namespace uae::estimators
