// Per-column equi-depth histograms combined under the attribute-value-
// independence (AVI) assumption — the classic "Postgres-like" baseline and the
// cardinality source for the mini optimizer's default planner (Fig. 6).
#pragma once

#include <vector>

#include "data/table.h"
#include "estimators/estimator.h"

namespace uae::estimators {

/// Equi-depth histogram over one dictionary-encoded column.
class ColumnHistogram {
 public:
  ColumnHistogram() = default;
  ColumnHistogram(const data::Column& column, int num_buckets);

  /// Estimated fraction of rows whose code satisfies the constraint, assuming
  /// uniformity and distinct-value uniformity inside each bucket.
  double SelectivityOf(const workload::Constraint& constraint) const;
  size_t SizeBytes() const;
  int num_buckets() const { return static_cast<int>(lo_.size()); }

 private:
  double RangeFraction(int32_t lo, int32_t hi) const;
  double PointFraction(int32_t code) const;

  std::vector<int32_t> lo_;      ///< Bucket lower code (inclusive).
  std::vector<int32_t> hi_;      ///< Bucket upper code (inclusive).
  std::vector<int64_t> counts_;  ///< Rows per bucket.
  std::vector<int32_t> ndv_;     ///< Distinct codes per bucket.
  int64_t total_ = 0;
  int32_t domain_ = 0;
};

class HistogramAviEstimator : public CardinalityEstimator {
 public:
  HistogramAviEstimator(const data::Table& table, int buckets_per_column);

  std::string name() const override { return "Histogram-AVI"; }
  double EstimateCard(const workload::Query& query) const override;
  size_t SizeBytes() const override;

  const ColumnHistogram& histogram(int col) const {
    return hists_[static_cast<size_t>(col)];
  }

 private:
  std::vector<ColumnHistogram> hists_;
  size_t table_rows_;
};

}  // namespace uae::estimators
