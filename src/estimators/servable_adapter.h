// ServableEstimatorAdapter — lifts any classical estimators::
// CardinalityEstimator (histogram, sampling, oracle, ...) into the
// core::ServableModel contract so the serving/router layers can treat the
// whole estimator zoo uniformly. The wrapped estimator is immutable, so the
// adapter is trivially pure (the bitwise-determinism contract holds by
// construction), FineTune is a no-op returning 0 ("clone still
// bit-identical"), and CloneServable shares the underlying estimator.
#pragma once

#include <memory>

#include "core/servable.h"
#include "estimators/estimator.h"

namespace uae::estimators {

class ServableEstimatorAdapter : public core::ServableModel {
 public:
  /// `num_rows`/`seed` satisfy the servable metadata the estimator interface
  /// does not carry (feedback selectivities derive from num_rows).
  ServableEstimatorAdapter(
      std::shared_ptr<const CardinalityEstimator> estimator, size_t num_rows,
      uint64_t seed = 0);

  double EstimateCard(const workload::Query& query) const override;
  std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const override;
  size_t SizeBytes() const override;
  size_t num_rows() const override { return num_rows_; }
  uint64_t seed() const override { return seed_; }
  std::shared_ptr<core::ServableModel> CloneServable() const override;
  /// Classical estimators do not fine-tune; always 0 (see ServableModel —
  /// callers treat 0 as "clone unchanged, nothing to publish").
  size_t FineTune(const workload::Workload& workload,
                  const core::FineTuneSpec& spec) override;

  const CardinalityEstimator& estimator() const { return *estimator_; }

 private:
  std::shared_ptr<const CardinalityEstimator> estimator_;
  size_t num_rows_;
  uint64_t seed_;
};

}  // namespace uae::estimators
