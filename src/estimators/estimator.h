// Common interface of all cardinality estimators compared in §5. Training
// happens in the concrete constructors (estimators differ in what they train
// on: data, queries, or both); estimation is uniform.
#pragma once

#include <string>

#include "workload/query.h"

namespace uae::estimators {

class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  virtual std::string name() const = 0;
  /// Estimated cardinality (row count) of a single-table query.
  virtual double EstimateCard(const workload::Query& query) const = 0;
  /// Model budget in bytes (the "Size" column of the paper's tables).
  virtual size_t SizeBytes() const = 0;
};

}  // namespace uae::estimators
