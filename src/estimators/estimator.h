// Common interface of all cardinality estimators compared in §5. Training
// happens in the concrete constructors (estimators differ in what they train
// on: data, queries, or both); estimation is uniform.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "workload/query.h"

namespace uae::estimators {

class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  virtual std::string name() const = 0;
  /// Estimated cardinality (row count) of a single-table query.
  virtual double EstimateCard(const workload::Query& query) const = 0;
  /// Batched estimation: one result per query, in order. The default loops
  /// EstimateCard; estimators with a parallel hot path (UaeAdapter) override
  /// this to fan the work out. Results must be identical to the sequential
  /// per-query path regardless of batch composition or thread count.
  virtual std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const;
  /// Model budget in bytes (the "Size" column of the paper's tables).
  virtual size_t SizeBytes() const = 0;
};

}  // namespace uae::estimators
