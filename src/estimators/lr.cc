#include "estimators/lr.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace uae::estimators {

std::vector<double> SolveRidge(std::vector<std::vector<double>> a,
                               std::vector<double> b, double ridge) {
  const size_t n = a.size();
  for (size_t i = 0; i < n; ++i) a[i][i] += ridge;
  // Gaussian elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    double diag = a[col][col];
    if (std::fabs(diag) < 1e-12) continue;  // Degenerate direction: skip.
    for (size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      double factor = a[r][col] / diag;
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    x[i] = std::fabs(a[i][i]) < 1e-12 ? 0.0 : b[i] / a[i][i];
  }
  return x;
}

LrEstimator::LrEstimator(const data::Table& table, double ridge)
    : table_(&table), ridge_(ridge), table_rows_(table.num_rows()) {}

std::vector<double> LrEstimator::Featurize(const workload::Query& query) const {
  std::vector<double> f;
  f.reserve(static_cast<size_t>(table_->num_cols()) * 2 + 1);
  for (int c = 0; c < table_->num_cols(); ++c) {
    const workload::Constraint& cons = query.constraint(c);
    double domain = static_cast<double>(table_->column(c).domain());
    double lo = 0.0, hi = 1.0;
    if (cons.IsActive()) {
      switch (cons.kind) {
        case workload::Constraint::Kind::kRange:
          lo = static_cast<double>(std::max(cons.lo, 0)) / domain;
          hi = static_cast<double>(std::min(cons.hi, table_->column(c).domain() - 1) + 1) /
               domain;
          break;
        case workload::Constraint::Kind::kNotEqual:
          lo = 0.0;
          hi = (domain - 1.0) / domain;
          break;
        case workload::Constraint::Kind::kIn:
          lo = 0.0;
          hi = static_cast<double>(cons.in_codes.size()) / domain;
          break;
        case workload::Constraint::Kind::kNone:
          break;
      }
    }
    f.push_back(lo);
    f.push_back(hi);
  }
  f.push_back(1.0);  // Intercept.
  return f;
}

void LrEstimator::Train(const workload::Workload& workload) {
  UAE_CHECK(!workload.empty());
  const size_t d = static_cast<size_t>(table_->num_cols()) * 2 + 1;
  std::vector<std::vector<double>> xtx(d, std::vector<double>(d, 0.0));
  std::vector<double> xty(d, 0.0);
  min_log_ = std::log(1.0 / static_cast<double>(table_rows_)) - 2.0;
  for (const auto& lq : workload) {
    std::vector<double> x = Featurize(lq.query);
    double y = std::log(std::max(lq.selectivity, std::exp(min_log_)));
    for (size_t i = 0; i < d; ++i) {
      xty[i] += x[i] * y;
      for (size_t j = 0; j < d; ++j) xtx[i][j] += x[i] * x[j];
    }
  }
  weights_ = SolveRidge(std::move(xtx), std::move(xty), ridge_);
}

double LrEstimator::EstimateCard(const workload::Query& query) const {
  UAE_CHECK(!weights_.empty()) << "LR used before Train()";
  std::vector<double> x = Featurize(query);
  double y = 0.0;
  for (size_t i = 0; i < x.size(); ++i) y += x[i] * weights_[i];
  double sel = std::exp(std::clamp(y, min_log_, 0.0));
  return sel * static_cast<double>(table_rows_);
}

}  // namespace uae::estimators
