#include "estimators/spn.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "util/mathutil.h"

namespace uae::estimators {

SpnEstimator::SpnEstimator(const data::Table& table, const SpnConfig& config)
    : table_(&table), config_(config) {
  util::Rng rng(config.seed);
  std::vector<size_t> rows(table.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<int> cols(static_cast<size_t>(table.num_cols()));
  std::iota(cols.begin(), cols.end(), 0);
  root_ = Build(rows, cols, 0, &rng);
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::MakeLeaf(
    const std::vector<size_t>& rows, int col) {
  auto leaf = std::make_unique<Node>();
  leaf->type = Node::Type::kLeaf;
  leaf->col = col;
  int32_t domain = table_->column(col).domain();
  leaf->hist.assign(static_cast<size_t>(domain), 0.0);
  for (size_t r : rows) {
    leaf->hist[static_cast<size_t>(table_->column(col).code_at(r))] += 1.0;
  }
  double inv = rows.empty() ? 0.0 : 1.0 / static_cast<double>(rows.size());
  for (double& v : leaf->hist) v *= inv;
  size_bytes_ += leaf->hist.size() * sizeof(double);
  ++n_leaf_;
  return leaf;
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::LeafProduct(
    const std::vector<size_t>& rows, const std::vector<int>& cols) {
  if (cols.size() == 1) return MakeLeaf(rows, cols[0]);
  auto node = std::make_unique<Node>();
  node->type = Node::Type::kProduct;
  for (int c : cols) node->children.push_back(MakeLeaf(rows, c));
  ++n_product_;
  return node;
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::Build(
    const std::vector<size_t>& rows, const std::vector<int>& cols, int depth,
    util::Rng* rng) {
  if (cols.size() == 1 || rows.size() < config_.min_instances ||
      depth >= config_.max_depth) {
    return LeafProduct(rows, cols);
  }

  // --- Try a Product split: connected components under NMI dependence -------
  size_t m = std::min(config_.nmi_sample_rows, rows.size());
  std::vector<size_t> srows;
  srows.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    srows.push_back(rows[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(rows.size()) - 1))]);
  }
  std::vector<std::vector<int32_t>> scodes(cols.size());
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    auto& v = scodes[ci];
    v.reserve(m);
    for (size_t r : srows) v.push_back(table_->column(cols[ci]).code_at(r));
  }
  // Union-find over columns.
  std::vector<size_t> uf(cols.size());
  std::iota(uf.begin(), uf.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (uf[x] != x) x = uf[x] = uf[uf[x]];
    return x;
  };
  for (size_t i = 0; i < cols.size(); ++i) {
    for (size_t j = i + 1; j < cols.size(); ++j) {
      if (find(i) == find(j)) continue;
      double nmi = util::NormalizedMutualInformation(
          scodes[i], table_->column(cols[i]).domain(), scodes[j],
          table_->column(cols[j]).domain());
      if (nmi > config_.corr_threshold) uf[find(i)] = find(j);
    }
  }
  std::unordered_map<size_t, std::vector<int>> groups;
  for (size_t i = 0; i < cols.size(); ++i) groups[find(i)].push_back(cols[i]);
  if (groups.size() > 1) {
    auto node = std::make_unique<Node>();
    node->type = Node::Type::kProduct;
    for (auto& [rep, group] : groups) {
      node->children.push_back(Build(rows, group, depth + 1, rng));
    }
    ++n_product_;
    return node;
  }

  // --- Sum split: 2-means over rows -----------------------------------------
  const size_t k = 2;
  std::vector<double> scale(cols.size());
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    scale[ci] = 1.0 / std::max<int32_t>(1, table_->column(cols[ci]).domain() - 1);
  }
  auto feature = [&](size_t row, size_t ci) {
    return static_cast<double>(table_->column(cols[ci]).code_at(row)) * scale[ci];
  };
  std::vector<std::vector<double>> centers(k, std::vector<double>(cols.size()));
  for (size_t c = 0; c < k; ++c) {
    size_t seed_row = rows[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(rows.size()) - 1))];
    for (size_t ci = 0; ci < cols.size(); ++ci) centers[c][ci] = feature(seed_row, ci);
  }
  std::vector<uint8_t> assign(rows.size(), 0);
  for (int it = 0; it < config_.kmeans_iters; ++it) {
    for (size_t ri = 0; ri < rows.size(); ++ri) {
      double d0 = 0.0, d1 = 0.0;
      for (size_t ci = 0; ci < cols.size(); ++ci) {
        double f = feature(rows[ri], ci);
        d0 += (f - centers[0][ci]) * (f - centers[0][ci]);
        d1 += (f - centers[1][ci]) * (f - centers[1][ci]);
      }
      assign[ri] = d1 < d0 ? 1 : 0;
    }
    for (size_t c = 0; c < k; ++c) {
      std::fill(centers[c].begin(), centers[c].end(), 0.0);
    }
    std::vector<size_t> counts(k, 0);
    for (size_t ri = 0; ri < rows.size(); ++ri) {
      size_t c = assign[ri];
      ++counts[c];
      for (size_t ci = 0; ci < cols.size(); ++ci) {
        centers[c][ci] += feature(rows[ri], ci);
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (double& v : centers[c]) v /= static_cast<double>(counts[c]);
    }
  }
  std::vector<size_t> left, right;
  for (size_t ri = 0; ri < rows.size(); ++ri) {
    (assign[ri] == 0 ? left : right).push_back(rows[ri]);
  }
  // Degenerate clustering: fall back to a median split on the widest column.
  if (left.size() < config_.min_instances / 4 ||
      right.size() < config_.min_instances / 4) {
    left.clear();
    right.clear();
    size_t widest = 0;
    for (size_t ci = 1; ci < cols.size(); ++ci) {
      if (table_->column(cols[ci]).domain() >
          table_->column(cols[widest]).domain()) {
        widest = ci;
      }
    }
    std::vector<int32_t> vals;
    vals.reserve(rows.size());
    for (size_t r : rows) vals.push_back(table_->column(cols[widest]).code_at(r));
    std::nth_element(vals.begin(), vals.begin() + static_cast<ptrdiff_t>(vals.size() / 2),
                     vals.end());
    int32_t median = vals[vals.size() / 2];
    for (size_t r : rows) {
      (table_->column(cols[widest]).code_at(r) <= median ? left : right).push_back(r);
    }
    if (left.empty() || right.empty()) return LeafProduct(rows, cols);
  }
  auto node = std::make_unique<Node>();
  node->type = Node::Type::kSum;
  node->weights = {static_cast<double>(left.size()) / rows.size(),
                   static_cast<double>(right.size()) / rows.size()};
  node->children.push_back(Build(left, cols, depth + 1, rng));
  node->children.push_back(Build(right, cols, depth + 1, rng));
  size_bytes_ += 2 * sizeof(double);
  ++n_sum_;
  return node;
}

double SpnEstimator::Evaluate(
    const Node& node, const workload::Query& query,
    const std::unordered_map<int, std::vector<float>>* col_weights) const {
  switch (node.type) {
    case Node::Type::kLeaf: {
      if (col_weights != nullptr) {
        auto it = col_weights->find(node.col);
        if (it != col_weights->end()) {
          double e = 0.0;
          for (size_t v = 0; v < node.hist.size(); ++v) {
            e += node.hist[v] * it->second[v];
          }
          return e;
        }
      }
      const workload::Constraint& cons = query.constraint(node.col);
      if (!cons.IsActive()) return 1.0;
      double mass = 0.0;
      for (size_t v = 0; v < node.hist.size(); ++v) {
        if (node.hist[v] > 0.0 && cons.Matches(static_cast<int32_t>(v))) {
          mass += node.hist[v];
        }
      }
      return mass;
    }
    case Node::Type::kProduct: {
      double p = 1.0;
      for (const auto& child : node.children) {
        p *= Evaluate(*child, query, col_weights);
        if (p == 0.0) break;
      }
      return p;
    }
    case Node::Type::kSum: {
      double p = 0.0;
      for (size_t c = 0; c < node.children.size(); ++c) {
        p += node.weights[c] * Evaluate(*node.children[c], query, col_weights);
      }
      return p;
    }
  }
  return 0.0;
}

double SpnEstimator::EstimateCard(const workload::Query& query) const {
  return Evaluate(*root_, query, nullptr) * static_cast<double>(table_->num_rows());
}

double SpnEstimator::EstimateSelectivityWeighted(
    const workload::Query& query,
    const std::unordered_map<int, std::vector<float>>& col_weights) const {
  return Evaluate(*root_, query, &col_weights);
}

}  // namespace uae::estimators
