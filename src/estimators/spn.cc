#include "estimators/spn.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <numeric>

#include "util/common.h"
#include "util/mathutil.h"

namespace uae::estimators {

SpnEstimator::SpnEstimator(const data::Table& table, const SpnConfig& config)
    : table_(&table), config_(config) {
  util::Rng rng(config.seed);
  std::vector<size_t> rows(table.num_rows());
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<int> cols(static_cast<size_t>(table.num_cols()));
  std::iota(cols.begin(), cols.end(), 0);
  root_ = Build(rows, cols, 0, &rng);
}

SpnEstimator::SpnEstimator(const SpnEstimator& other)
    : table_(other.table_),
      config_(other.config_),
      root_(CloneNode(*other.root_)),
      size_bytes_(other.size_bytes_),
      n_sum_(other.n_sum_),
      n_product_(other.n_product_),
      n_leaf_(other.n_leaf_) {}

std::unique_ptr<SpnEstimator> SpnEstimator::Clone() const {
  return std::unique_ptr<SpnEstimator>(new SpnEstimator(*this));
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::CloneNode(const Node& node) {
  auto copy = std::make_unique<Node>();
  copy->type = node.type;
  copy->weights = node.weights;
  copy->col = node.col;
  copy->hist = node.hist;
  copy->children.reserve(node.children.size());
  for (const auto& child : node.children) {
    copy->children.push_back(CloneNode(*child));
  }
  return copy;
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::MakeLeaf(
    const std::vector<size_t>& rows, int col) {
  auto leaf = std::make_unique<Node>();
  leaf->type = Node::Type::kLeaf;
  leaf->col = col;
  // Size by total_domain(), not domain(): rows appended through the PR 9
  // streaming path carry overflow-dictionary codes in
  // [domain(), total_domain()), and code_at() hands them back verbatim.
  int32_t domain = table_->column(col).total_domain();
  leaf->hist.assign(static_cast<size_t>(domain), 0.0);
  for (size_t r : rows) {
    leaf->hist[static_cast<size_t>(table_->column(col).code_at(r))] += 1.0;
  }
  double inv = rows.empty() ? 0.0 : 1.0 / static_cast<double>(rows.size());
  for (double& v : leaf->hist) v *= inv;
  size_bytes_ += leaf->hist.size() * sizeof(double);
  ++n_leaf_;
  return leaf;
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::LeafProduct(
    const std::vector<size_t>& rows, const std::vector<int>& cols) {
  if (cols.size() == 1) return MakeLeaf(rows, cols[0]);
  auto node = std::make_unique<Node>();
  node->type = Node::Type::kProduct;
  for (int c : cols) node->children.push_back(MakeLeaf(rows, c));
  ++n_product_;
  return node;
}

std::unique_ptr<SpnEstimator::Node> SpnEstimator::Build(
    const std::vector<size_t>& rows, const std::vector<int>& cols, int depth,
    util::Rng* rng) {
  if (cols.size() == 1 || rows.size() < config_.min_instances ||
      depth >= config_.max_depth) {
    return LeafProduct(rows, cols);
  }

  // --- Try a Product split: connected components under NMI dependence -------
  size_t m = std::min(config_.nmi_sample_rows, rows.size());
  std::vector<size_t> srows;
  srows.reserve(m);
  for (size_t i = 0; i < m; ++i) {
    srows.push_back(rows[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(rows.size()) - 1))]);
  }
  std::vector<std::vector<int32_t>> scodes(cols.size());
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    auto& v = scodes[ci];
    v.reserve(m);
    for (size_t r : srows) v.push_back(table_->column(cols[ci]).code_at(r));
  }
  // Union-find over columns.
  std::vector<size_t> uf(cols.size());
  std::iota(uf.begin(), uf.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (uf[x] != x) x = uf[x] = uf[uf[x]];
    return x;
  };
  for (size_t i = 0; i < cols.size(); ++i) {
    for (size_t j = i + 1; j < cols.size(); ++j) {
      if (find(i) == find(j)) continue;
      // total_domain(): sampled rows may carry overflow codes, and the MI
      // helpers bucket-count by raw code.
      double nmi = util::NormalizedMutualInformation(
          scodes[i], table_->column(cols[i]).total_domain(), scodes[j],
          table_->column(cols[j]).total_domain());
      if (nmi > config_.corr_threshold) uf[find(i)] = find(j);
    }
  }
  // Materialize groups in a deterministic order — keyed by each group's
  // smallest member column, not by unordered_map iteration order (which is
  // stdlib-hash-dependent and violates docs/DETERMINISM.md). `cols` stays
  // ascending through the recursion, so each group's first member is its
  // smallest and std::map gives the canonical ordering.
  std::unordered_map<size_t, std::vector<int>> groups;
  for (size_t i = 0; i < cols.size(); ++i) groups[find(i)].push_back(cols[i]);
  if (groups.size() > 1) {
    std::map<int, std::vector<int>> ordered;
    for (auto& [rep, group] : groups) {
      ordered.emplace(group.front(), std::move(group));
    }
    auto node = std::make_unique<Node>();
    node->type = Node::Type::kProduct;
    for (auto& [min_col, group] : ordered) {
      node->children.push_back(Build(rows, group, depth + 1, rng));
    }
    ++n_product_;
    return node;
  }

  // --- Sum split: 2-means over rows -----------------------------------------
  const size_t k = 2;
  std::vector<double> scale(cols.size());
  for (size_t ci = 0; ci < cols.size(); ++ci) {
    scale[ci] =
        1.0 / std::max<int32_t>(1, table_->column(cols[ci]).total_domain() - 1);
  }
  auto feature = [&](size_t row, size_t ci) {
    return static_cast<double>(table_->column(cols[ci]).code_at(row)) * scale[ci];
  };
  std::vector<std::vector<double>> centers(k, std::vector<double>(cols.size()));
  for (size_t c = 0; c < k; ++c) {
    size_t seed_row = rows[static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(rows.size()) - 1))];
    for (size_t ci = 0; ci < cols.size(); ++ci) centers[c][ci] = feature(seed_row, ci);
  }
  std::vector<uint8_t> assign(rows.size(), 0);
  for (int it = 0; it < config_.kmeans_iters; ++it) {
    for (size_t ri = 0; ri < rows.size(); ++ri) {
      double d0 = 0.0, d1 = 0.0;
      for (size_t ci = 0; ci < cols.size(); ++ci) {
        double f = feature(rows[ri], ci);
        d0 += (f - centers[0][ci]) * (f - centers[0][ci]);
        d1 += (f - centers[1][ci]) * (f - centers[1][ci]);
      }
      assign[ri] = d1 < d0 ? 1 : 0;
    }
    for (size_t c = 0; c < k; ++c) {
      std::fill(centers[c].begin(), centers[c].end(), 0.0);
    }
    std::vector<size_t> counts(k, 0);
    for (size_t ri = 0; ri < rows.size(); ++ri) {
      size_t c = assign[ri];
      ++counts[c];
      for (size_t ci = 0; ci < cols.size(); ++ci) {
        centers[c][ci] += feature(rows[ri], ci);
      }
    }
    for (size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      for (double& v : centers[c]) v /= static_cast<double>(counts[c]);
    }
  }
  std::vector<size_t> left, right;
  for (size_t ri = 0; ri < rows.size(); ++ri) {
    (assign[ri] == 0 ? left : right).push_back(rows[ri]);
  }
  // Degenerate clustering: fall back to a median split on the widest column.
  if (left.size() < config_.min_instances / 4 ||
      right.size() < config_.min_instances / 4) {
    left.clear();
    right.clear();
    size_t widest = 0;
    for (size_t ci = 1; ci < cols.size(); ++ci) {
      if (table_->column(cols[ci]).total_domain() >
          table_->column(cols[widest]).total_domain()) {
        widest = ci;
      }
    }
    std::vector<int32_t> vals;
    vals.reserve(rows.size());
    for (size_t r : rows) vals.push_back(table_->column(cols[widest]).code_at(r));
    std::nth_element(vals.begin(), vals.begin() + static_cast<ptrdiff_t>(vals.size() / 2),
                     vals.end());
    int32_t median = vals[vals.size() / 2];
    for (size_t r : rows) {
      (table_->column(cols[widest]).code_at(r) <= median ? left : right).push_back(r);
    }
    if (left.empty() || right.empty()) return LeafProduct(rows, cols);
  }
  auto node = std::make_unique<Node>();
  node->type = Node::Type::kSum;
  node->weights = {static_cast<double>(left.size()) / rows.size(),
                   static_cast<double>(right.size()) / rows.size()};
  node->children.push_back(Build(left, cols, depth + 1, rng));
  node->children.push_back(Build(right, cols, depth + 1, rng));
  size_bytes_ += 2 * sizeof(double);
  ++n_sum_;
  return node;
}

double SpnEstimator::Evaluate(
    const Node& node, const workload::Query& query,
    const std::unordered_map<int, std::vector<float>>* col_weights) const {
  switch (node.type) {
    case Node::Type::kLeaf: {
      if (col_weights != nullptr) {
        auto it = col_weights->find(node.col);
        if (it != col_weights->end()) {
          UAE_CHECK(it->second.size() >= node.hist.size())
              << "col_weights vector for column " << node.col
              << " shorter than the leaf histogram (" << it->second.size()
              << " < " << node.hist.size()
              << "); weights must cover the column's total_domain()";
          double e = 0.0;
          for (size_t v = 0; v < node.hist.size(); ++v) {
            e += node.hist[v] * it->second[v];
          }
          return e;
        }
      }
      const workload::Constraint& cons = query.constraint(node.col);
      if (!cons.IsActive()) return 1.0;
      double mass = 0.0;
      for (size_t v = 0; v < node.hist.size(); ++v) {
        if (node.hist[v] > 0.0 && cons.Matches(static_cast<int32_t>(v))) {
          mass += node.hist[v];
        }
      }
      return mass;
    }
    case Node::Type::kProduct: {
      double p = 1.0;
      for (const auto& child : node.children) {
        p *= Evaluate(*child, query, col_weights);
        if (p == 0.0) break;
      }
      return p;
    }
    case Node::Type::kSum: {
      double p = 0.0;
      for (size_t c = 0; c < node.children.size(); ++c) {
        p += node.weights[c] * Evaluate(*node.children[c], query, col_weights);
      }
      return p;
    }
  }
  return 0.0;
}

double SpnEstimator::EstimateCard(const workload::Query& query) const {
  return Evaluate(*root_, query, nullptr) * static_cast<double>(table_->num_rows());
}

double SpnEstimator::EstimateSelectivity(const workload::Query& query) const {
  return Evaluate(*root_, query, nullptr);
}

double SpnEstimator::EstimateSelectivityWeighted(
    const workload::Query& query,
    const std::unordered_map<int, std::vector<float>>& col_weights) const {
  return Evaluate(*root_, query, &col_weights);
}

// ---------------------------------------------------------------------------
// Query-driven fine-tuning (arXiv 2505.08318-style multiplicative updates).
// ---------------------------------------------------------------------------

double SpnEstimator::EvalStore(Node* node, const workload::Query& query) {
  switch (node->type) {
    case Node::Type::kLeaf: {
      const workload::Constraint& cons = query.constraint(node->col);
      double mass;
      if (!cons.IsActive()) {
        mass = 1.0;
      } else {
        mass = 0.0;
        for (size_t v = 0; v < node->hist.size(); ++v) {
          if (node->hist[v] > 0.0 && cons.Matches(static_cast<int32_t>(v))) {
            mass += node->hist[v];
          }
        }
      }
      node->scratch = mass;
      return mass;
    }
    case Node::Type::kProduct: {
      double p = 1.0;
      // No zero early-exit: the backward pass needs every child's value to
      // form single-zero-sibling gradients.
      for (auto& child : node->children) p *= EvalStore(child.get(), query);
      node->scratch = p;
      return p;
    }
    case Node::Type::kSum: {
      double p = 0.0;
      for (size_t c = 0; c < node->children.size(); ++c) {
        p += node->weights[c] * EvalStore(node->children[c].get(), query);
      }
      node->scratch = p;
      return p;
    }
  }
  node->scratch = 0.0;
  return 0.0;
}

void SpnEstimator::ApplyUpdate(Node* node, const workload::Query& query,
                               double grad, double lr_log_ratio,
                               double root_sel) {
  if (grad <= 0.0) return;  // No probability flow through this node.
  switch (node->type) {
    case Node::Type::kLeaf: {
      const workload::Constraint& cons = query.constraint(node->col);
      // Unconstrained leaves contribute a constant 1 — nothing to learn.
      if (!cons.IsActive()) return;
      if (node->scratch <= 0.0) return;
      // share = this leaf's responsibility for the root selectivity, in
      // (0, 1]; scaling the exponent by it focuses the step where the
      // query's mass actually came from.
      double share = grad * node->scratch / root_sel;
      double factor = std::exp(lr_log_ratio * share);
      double total = 0.0;
      for (size_t v = 0; v < node->hist.size(); ++v) {
        if (node->hist[v] > 0.0 && cons.Matches(static_cast<int32_t>(v))) {
          node->hist[v] *= factor;
        }
        total += node->hist[v];
      }
      if (total > 0.0) {
        double inv = 1.0 / total;
        for (double& v : node->hist) v *= inv;
      }
      return;
    }
    case Node::Type::kProduct: {
      // d(product)/d(child c) = product of the siblings. Track zeros so a
      // single zero-valued child still receives gradient (it is exactly the
      // child suppressing the query).
      int zeros = 0;
      double nonzero_prod = 1.0;
      for (const auto& child : node->children) {
        if (child->scratch == 0.0) {
          ++zeros;
        } else {
          nonzero_prod *= child->scratch;
        }
      }
      for (auto& child : node->children) {
        double g;
        if (zeros == 0) {
          g = grad * nonzero_prod / child->scratch;
        } else if (zeros == 1 && child->scratch == 0.0) {
          g = grad * nonzero_prod;
        } else {
          g = 0.0;
        }
        ApplyUpdate(child.get(), query, g, lr_log_ratio, root_sel);
      }
      return;
    }
    case Node::Type::kSum: {
      // Children see gradients under the pre-update weights; then each
      // mixture weight moves by its responsibility share and the mixture is
      // renormalized (an EM-flavoured reweighting).
      std::vector<double> pre = node->weights;
      for (size_t c = 0; c < node->children.size(); ++c) {
        ApplyUpdate(node->children[c].get(), query, grad * pre[c],
                    lr_log_ratio, root_sel);
      }
      double total = 0.0;
      for (size_t c = 0; c < node->children.size(); ++c) {
        double share =
            grad * pre[c] * node->children[c]->scratch / root_sel;
        node->weights[c] = pre[c] * std::exp(lr_log_ratio * share);
        total += node->weights[c];
      }
      if (total > 0.0) {
        double inv = 1.0 / total;
        for (double& w : node->weights) w *= inv;
      }
      return;
    }
  }
}

size_t SpnEstimator::FineTuneOnQueries(const workload::Workload& workload,
                                       int steps,
                                       const SpnFineTuneConfig& config) {
  if (workload.empty() || steps <= 0 || config.learning_rate <= 0.0) return 0;
  double rows = std::max<double>(1.0, static_cast<double>(table_->num_rows()));
  std::vector<uint8_t> applied(workload.size(), 0);
  for (int step = 0; step < steps; ++step) {
    size_t idx = static_cast<size_t>(step) % workload.size();
    const workload::LabeledQuery& lq = workload[idx];
    double sel = EvalStore(root_.get(), lq.query);
    if (!(sel > config.min_selectivity)) continue;
    // True selectivity, floored at half a row so zero-card labels pull the
    // estimate down without a log(0).
    double truth = std::max(static_cast<double>(lq.card), 0.5) / rows;
    double ratio = truth / sel;
    ratio = std::min(std::max(ratio, 1.0 / config.max_update_ratio),
                     config.max_update_ratio);
    double lr_log_ratio = config.learning_rate * std::log(ratio);
    if (lr_log_ratio != 0.0) {
      ApplyUpdate(root_.get(), lq.query, 1.0, lr_log_ratio, sel);
    }
    applied[idx] = 1;
  }
  size_t used = 0;
  for (uint8_t a : applied) used += a;
  return used;
}

// ---------------------------------------------------------------------------
// Introspection.
// ---------------------------------------------------------------------------

std::vector<int> SpnEstimator::PreorderLeafColumns() const {
  std::vector<int> out;
  std::function<void(const Node&)> visit = [&](const Node& node) {
    if (node.type == Node::Type::kLeaf) {
      out.push_back(node.col);
      return;
    }
    for (const auto& child : node.children) visit(*child);
  };
  visit(*root_);
  return out;
}

std::string SpnEstimator::StructureSignature() const {
  std::string sig;
  sig.reserve(1024);
  char buf[32];
  auto put_bits = [&](double d) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    sig += buf;
  };
  std::function<void(const Node&)> visit = [&](const Node& node) {
    switch (node.type) {
      case Node::Type::kSum:
        sig += "S(";
        for (double w : node.weights) {
          put_bits(w);
          sig += ',';
        }
        break;
      case Node::Type::kProduct:
        sig += "P(";
        break;
      case Node::Type::kLeaf:
        sig += "L";
        std::snprintf(buf, sizeof(buf), "%d", node.col);
        sig += buf;
        sig += '[';
        for (double h : node.hist) {
          put_bits(h);
          sig += ',';
        }
        sig += ']';
        return;
    }
    for (const auto& child : node.children) visit(*child);
    sig += ')';
  };
  visit(*root_);
  return sig;
}

}  // namespace uae::estimators
