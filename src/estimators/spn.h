// Sum-Product-Network baseline (§5.1.4 #6, DeepDB [31] RSPN-style): the model
// is learned by recursively splitting — Product nodes over (approximately)
// independent column groups found by pairwise normalized mutual information,
// Sum nodes over row clusters found by k-means — with per-column histogram
// leaves.
//
// For the join experiments the leaves also evaluate expectations of per-code
// weights (1/F fanout downscaling), matching DeepDB's fanout handling.
//
// Beyond the data-only DeepDB construction, the SPN supports query-driven
// fine-tuning (arXiv 2505.08318's unified data+query view): labeled query
// feedback multiplicatively reweights sum-node mixtures and leaf histogram
// bins toward observed selectivities. See FineTuneOnQueries.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "estimators/estimator.h"
#include "util/rng.h"
#include "workload/query.h"

namespace uae::estimators {

struct SpnConfig {
  size_t min_instances = 512;   ///< Rows below this become leaf products.
  /// NMI above this means "dependent". 0.3 mirrors DeepDB's default RDC
  /// threshold — coarse enough that residual correlation inside product
  /// splits shows up at the error tail on strongly correlated data (§5.2
  /// finding 5).
  double corr_threshold = 0.3;
  size_t nmi_sample_rows = 2000;
  int kmeans_iters = 6;
  int max_depth = 24;
  uint64_t seed = 31;
};

/// Knobs for the query-driven multiplicative/EM update (arXiv 2505.08318
/// style: nudge the SPN's parameters so its selectivity for each labeled
/// query moves toward the observed truth, without re-reading the table).
struct SpnFineTuneConfig {
  /// Step size of the multiplicative update. 0 disables learning. Kept
  /// deliberately small: larger rates overshoot and oscillate when the same
  /// feedback queries are cycled for many steps.
  double learning_rate = 0.1;
  /// The per-query truth/estimate ratio is clamped into
  /// [1/max_update_ratio, max_update_ratio] before taking its log, so a
  /// single wildly mislabeled query cannot blow up the parameters.
  double max_update_ratio = 8.0;
  /// Queries whose current estimate falls below this are skipped: a
  /// multiplicative update cannot create mass in zero bins, and dividing by
  /// a denormal estimate is numerically meaningless.
  double min_selectivity = 1e-12;
};

class SpnEstimator : public CardinalityEstimator {
 public:
  SpnEstimator(const data::Table& table, const SpnConfig& config);

  std::string name() const override { return "DeepDB-SPN"; }
  double EstimateCard(const workload::Query& query) const override;
  size_t SizeBytes() const override { return size_bytes_; }

  /// Root selectivity in [0, 1]; EstimateCard is this times the table's
  /// *live* row count. Servable wrappers that must stay pure under
  /// concurrent ingest snapshot a row count and use this instead.
  double EstimateSelectivity(const workload::Query& query) const;

  /// Selectivity with per-column weight vectors (join fanout downscaling):
  /// columns present in `col_weights` contribute E[w(v)] instead of P(region).
  /// Every referenced weight vector must cover the leaf histogram, i.e. have
  /// size >= the column's total_domain() at build time (checked).
  double EstimateSelectivityWeighted(
      const workload::Query& query,
      const std::unordered_map<int, std::vector<float>>& col_weights) const;

  /// Deep copy: the clone shares nothing with *this (bitwise-identical
  /// parameters, independent storage) and references the same table.
  std::unique_ptr<SpnEstimator> Clone() const;

  /// Query-driven fine-tune: runs `steps` multiplicative updates, cycling
  /// deterministically through `workload` in order. Each step moves the
  /// SPN's selectivity for one labeled query toward the observed truth by
  /// backpropagating a per-node responsibility share and reweighting sum
  /// mixtures / leaf bins multiplicatively (then renormalizing). Purely
  /// sequential and deterministic: same (model, workload, steps, config) ->
  /// bitwise-identical parameters, regardless of caller thread count.
  /// Returns the number of distinct workload queries that produced an
  /// update (0 means the model is unchanged).
  size_t FineTuneOnQueries(const workload::Workload& workload, int steps,
                           const SpnFineTuneConfig& config);

  /// Structural statistics, exposed for tests.
  int num_sum_nodes() const { return n_sum_; }
  int num_product_nodes() const { return n_product_; }
  int num_leaves() const { return n_leaf_; }

  /// Leaf columns in preorder (children visited in stored order). Product
  /// splits must emit children ordered by smallest member column, so for a
  /// pure product split over k columns this is 0..k-1 sorted — pinned by
  /// the determinism regression tests.
  std::vector<int> PreorderLeafColumns() const;

  /// Bitwise fingerprint of the full parameterization: node types, leaf
  /// columns, and the exact bit patterns of every weight and histogram
  /// entry, in preorder. Two SPNs are parameter-identical iff their
  /// signatures match. Used by clone/determinism/shard-isolation tests.
  std::string StructureSignature() const;

 private:
  /// Deep copy used by Clone(); copies the tree node-by-node.
  SpnEstimator(const SpnEstimator& other);

  struct Node {
    enum class Type { kSum, kProduct, kLeaf };
    Type type;
    // Sum.
    std::vector<std::unique_ptr<Node>> children;
    std::vector<double> weights;
    // Leaf.
    int col = -1;
    std::vector<double> hist;  ///< Normalized frequencies over total_domain.
    /// Bottom-up value cached by fine-tune's forward pass; meaningless
    /// outside FineTuneOnQueries (which is single-threaded by contract).
    double scratch = 0.0;
  };

  std::unique_ptr<Node> Build(const std::vector<size_t>& rows,
                              const std::vector<int>& cols, int depth,
                              util::Rng* rng);
  std::unique_ptr<Node> LeafProduct(const std::vector<size_t>& rows,
                                    const std::vector<int>& cols);
  std::unique_ptr<Node> MakeLeaf(const std::vector<size_t>& rows, int col);
  double Evaluate(const Node& node, const workload::Query& query,
                  const std::unordered_map<int, std::vector<float>>* col_weights) const;

  static std::unique_ptr<Node> CloneNode(const Node& node);
  /// Forward pass for fine-tune: like Evaluate without col_weights, but
  /// stores each node's value in `scratch` and never early-exits (the
  /// backward pass needs every child's value).
  static double EvalStore(Node* node, const workload::Query& query);
  /// Backward pass: `grad` is dS/d(value of node) under the pre-update
  /// parameters, `root_sel` the forward root value. Applies the
  /// multiplicative update exp(lr * log_ratio * share) to sum weights and
  /// matching leaf bins, renormalizing each touched distribution.
  static void ApplyUpdate(Node* node, const workload::Query& query,
                          double grad, double lr_log_ratio, double root_sel);

  const data::Table* table_;
  SpnConfig config_;
  std::unique_ptr<Node> root_;
  size_t size_bytes_ = 0;
  int n_sum_ = 0, n_product_ = 0, n_leaf_ = 0;
};

}  // namespace uae::estimators
