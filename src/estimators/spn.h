// Sum-Product-Network baseline (§5.1.4 #6, DeepDB [31] RSPN-style): the model
// is learned by recursively splitting — Product nodes over (approximately)
// independent column groups found by pairwise normalized mutual information,
// Sum nodes over row clusters found by k-means — with per-column histogram
// leaves.
//
// For the join experiments the leaves also evaluate expectations of per-code
// weights (1/F fanout downscaling), matching DeepDB's fanout handling.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "estimators/estimator.h"
#include "util/rng.h"

namespace uae::estimators {

struct SpnConfig {
  size_t min_instances = 512;   ///< Rows below this become leaf products.
  /// NMI above this means "dependent". 0.3 mirrors DeepDB's default RDC
  /// threshold — coarse enough that residual correlation inside product
  /// splits shows up at the error tail on strongly correlated data (§5.2
  /// finding 5).
  double corr_threshold = 0.3;
  size_t nmi_sample_rows = 2000;
  int kmeans_iters = 6;
  int max_depth = 24;
  uint64_t seed = 31;
};

class SpnEstimator : public CardinalityEstimator {
 public:
  SpnEstimator(const data::Table& table, const SpnConfig& config);

  std::string name() const override { return "DeepDB-SPN"; }
  double EstimateCard(const workload::Query& query) const override;
  size_t SizeBytes() const override { return size_bytes_; }

  /// Selectivity with per-column weight vectors (join fanout downscaling):
  /// columns present in `col_weights` contribute E[w(v)] instead of P(region).
  double EstimateSelectivityWeighted(
      const workload::Query& query,
      const std::unordered_map<int, std::vector<float>>& col_weights) const;

  /// Structural statistics, exposed for tests.
  int num_sum_nodes() const { return n_sum_; }
  int num_product_nodes() const { return n_product_; }
  int num_leaves() const { return n_leaf_; }

 private:
  struct Node {
    enum class Type { kSum, kProduct, kLeaf };
    Type type;
    // Sum.
    std::vector<std::unique_ptr<Node>> children;
    std::vector<double> weights;
    // Leaf.
    int col = -1;
    std::vector<double> hist;  ///< Normalized frequencies over the domain.
  };

  std::unique_ptr<Node> Build(const std::vector<size_t>& rows,
                              const std::vector<int>& cols, int depth,
                              util::Rng* rng);
  std::unique_ptr<Node> LeafProduct(const std::vector<size_t>& rows,
                                    const std::vector<int>& cols);
  std::unique_ptr<Node> MakeLeaf(const std::vector<size_t>& rows, int col);
  double Evaluate(const Node& node, const workload::Query& query,
                  const std::unordered_map<int, std::vector<float>>* col_weights) const;

  const data::Table* table_;
  SpnConfig config_;
  std::unique_ptr<Node> root_;
  size_t size_bytes_ = 0;
  int n_sum_ = 0, n_product_ = 0, n_leaf_ = 0;
};

}  // namespace uae::estimators
