// Bayesian-network baseline (§5.1.4 #4, Chow-Liu [14]): learns the maximum-
// mutual-information spanning tree over the columns, fits sparse conditional
// probability tables along its edges, and answers range queries by exact
// sum-product message passing with per-column region indicators.
#pragma once

#include <unordered_map>
#include <vector>

#include "data/table.h"
#include "estimators/estimator.h"

namespace uae::estimators {

class BayesNetEstimator : public CardinalityEstimator {
 public:
  /// `mi_sample_rows` bounds the rows used for mutual-information estimation
  /// (the tree structure); CPTs use all rows. `alpha` is Laplace smoothing.
  BayesNetEstimator(const data::Table& table, size_t mi_sample_rows = 20000,
                    double alpha = 0.1, uint64_t seed = 13);

  std::string name() const override { return "BayesNet"; }
  double EstimateCard(const workload::Query& query) const override;
  size_t SizeBytes() const override;

  /// Parent of column c in the directed tree (-1 for the root). Exposed for
  /// structure-recovery tests.
  int parent(int col) const { return parents_[static_cast<size_t>(col)]; }

 private:
  /// Sparse CPT row: distribution over child codes for one parent code.
  struct SparseDist {
    std::vector<int32_t> codes;
    std::vector<float> probs;
  };

  /// Message from child to parent: for each parent code, the probability that
  /// the child's subtree is inside the query region.
  std::vector<double> SubtreeMessage(int child, const workload::Query& query) const;

  const data::Table* table_;
  std::vector<int> parents_;
  std::vector<std::vector<int>> children_;
  std::vector<double> root_marginal_;
  int root_ = 0;
  double alpha_ = 0.1;
  /// cpt_[c]: per parent-code sparse conditional distribution of column c.
  std::vector<std::unordered_map<int32_t, SparseDist>> cpt_;
  /// Fallback marginals (unseen parent codes; smoothing base).
  std::vector<std::vector<double>> marginals_;
  size_t size_bytes_ = 0;
};

}  // namespace uae::estimators
