// MSCN baseline (§5.1.4 #1/#8, Kipf et al. [39]) adapted to single tables as
// the paper does (join module dropped): each predicate is featurized as
// (column one-hot, operator one-hot, normalized literal), a shared MLP embeds
// the predicates, average pooling produces the query encoding, and a final
// MLP predicts the (min-max normalized) log selectivity.
//
// Optional per-query *extra features* extend the pooled encoding — this is
// how MSCN+sampling injects its materialized-sample bitmap estimate, and how
// the join benches inject table-subset one-hots.
#pragma once

#include <memory>

#include "data/table.h"
#include "estimators/estimator.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "util/rng.h"
#include "workload/query.h"

namespace uae::estimators {

struct MscnConfig {
  int hidden = 64;        ///< Paper setting: 2 layers of 256; scaled for CPU.
  int extra_dim = 0;      ///< Width of caller-provided per-query features.
  float lr = 1e-3f;
  int epochs = 24;
  int batch = 64;
  uint64_t seed = 21;
};

class MscnEstimator : public CardinalityEstimator {
 public:
  MscnEstimator(const data::Table& table, const MscnConfig& config);

  /// Supervised training. `extras` (optional) holds config.extra_dim floats
  /// per query, aligned with the workload.
  void Train(const workload::Workload& workload,
             const std::vector<std::vector<float>>* extras = nullptr);

  std::string name() const override { return "MSCN-base"; }
  double EstimateCard(const workload::Query& query) const override;
  /// Estimation with extra features (must match config.extra_dim).
  double EstimateCardExtra(const workload::Query& query,
                           const std::vector<float>& extra) const;
  size_t SizeBytes() const override;

  /// Named trainable parameters (both MLPs), for nn/serialize checkpoints.
  std::vector<nn::NamedParam> Parameters() const;

 private:
  struct QueryFeatures {
    nn::Mat preds;   ///< [max_preds, pred_width], zero-padded.
    int num_preds = 0;
  };
  QueryFeatures Featurize(const workload::Query& query) const;
  /// Forward pass for a batch of featurized queries; returns [B,1] scores.
  nn::Tensor Forward(const std::vector<const QueryFeatures*>& batch,
                     const std::vector<const std::vector<float>*>& extras) const;

  const data::Table* table_;
  MscnConfig config_;
  int pred_width_;
  int max_preds_;
  nn::Linear pred_fc1_, pred_fc2_;  // Shared predicate MLP.
  nn::Linear out_fc1_, out_fc2_;    // Query-level MLP.
  double min_log_ = -20.0, max_log_ = 0.0;
  size_t table_rows_;
};

/// MSCN+sampling: MSCN with a materialized uniform sample whose per-query hit
/// fraction (the collapsed bitmap) is fed as extra features.
class MscnSamplingEstimator : public CardinalityEstimator {
 public:
  MscnSamplingEstimator(const data::Table& table, size_t sample_rows,
                        MscnConfig config);

  void Train(const workload::Workload& workload);

  std::string name() const override { return "MSCN+sampling"; }
  double EstimateCard(const workload::Query& query) const override;
  size_t SizeBytes() const override;

 private:
  std::vector<float> SampleFeatures(const workload::Query& query) const;

  data::Table sample_;
  std::unique_ptr<MscnEstimator> mscn_;
};

}  // namespace uae::estimators
