#include "estimators/uae_adapter.h"

#include <future>

namespace uae::estimators {

double UaeAdapter::EstimateCard(const workload::Query& query) const {
  return uae_->EstimateCard(query);
}

std::vector<double> UaeAdapter::EstimateCards(
    std::span<const workload::Query> queries) const {
  return uae_->EstimateCards(queries);
}

double UaeServiceAdapter::EstimateCard(const workload::Query& query) const {
  return service_->EstimateCard(query);
}

std::vector<double> UaeServiceAdapter::EstimateCards(
    std::span<const workload::Query> queries) const {
  std::vector<std::future<serve::ServeResult>> futures;
  futures.reserve(queries.size());
  for (const workload::Query& q : queries) {
    futures.push_back(service_->EstimateAsync(q));
  }
  std::vector<double> cards;
  cards.reserve(queries.size());
  for (auto& f : futures) cards.push_back(f.get().card);
  return cards;
}

size_t UaeServiceAdapter::SizeBytes() const {
  return service_->CurrentSnapshot()->model->SizeBytes();
}

}  // namespace uae::estimators
