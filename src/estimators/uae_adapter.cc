#include "estimators/uae_adapter.h"

namespace uae::estimators {

double UaeAdapter::EstimateCard(const workload::Query& query) const {
  return uae_->EstimateCard(query);
}

std::vector<double> UaeAdapter::EstimateCards(
    std::span<const workload::Query> queries) const {
  return uae_->EstimateCards(queries);
}

}  // namespace uae::estimators
