#include "estimators/uae_adapter.h"

namespace uae::estimators {

double UaeAdapter::EstimateCard(const workload::Query& query) const {
  return uae_->EstimateCard(query);
}

}  // namespace uae::estimators
