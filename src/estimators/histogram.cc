#include "estimators/histogram.h"

#include <algorithm>

namespace uae::estimators {

ColumnHistogram::ColumnHistogram(const data::Column& column, int num_buckets) {
  domain_ = column.domain();
  total_ = static_cast<int64_t>(column.num_rows());
  const auto& freq = column.Frequencies();
  num_buckets = std::min<int>(num_buckets, domain_);
  int64_t target = (total_ + num_buckets - 1) / num_buckets;
  int32_t cur_lo = 0;
  int64_t cur_count = 0;
  int32_t cur_ndv = 0;
  for (int32_t c = 0; c < domain_; ++c) {
    cur_count += freq[static_cast<size_t>(c)];
    if (freq[static_cast<size_t>(c)] > 0) ++cur_ndv;
    bool last = c == domain_ - 1;
    if (cur_count >= target || last) {
      lo_.push_back(cur_lo);
      hi_.push_back(c);
      counts_.push_back(cur_count);
      ndv_.push_back(std::max(cur_ndv, 1));
      cur_lo = c + 1;
      cur_count = 0;
      cur_ndv = 0;
    }
  }
}

double ColumnHistogram::RangeFraction(int32_t lo, int32_t hi) const {
  if (total_ == 0 || hi < lo) return 0.0;
  double rows = 0.0;
  for (size_t b = 0; b < lo_.size(); ++b) {
    int32_t olo = std::max(lo, lo_[b]);
    int32_t ohi = std::min(hi, hi_[b]);
    if (ohi < olo) continue;
    double overlap = static_cast<double>(ohi - olo + 1) /
                     static_cast<double>(hi_[b] - lo_[b] + 1);
    rows += overlap * static_cast<double>(counts_[b]);
  }
  return rows / static_cast<double>(total_);
}

double ColumnHistogram::PointFraction(int32_t code) const {
  if (total_ == 0 || code < 0 || code >= domain_) return 0.0;
  for (size_t b = 0; b < lo_.size(); ++b) {
    if (code >= lo_[b] && code <= hi_[b]) {
      // Uniform spread over the bucket's distinct values.
      return static_cast<double>(counts_[b]) / ndv_[b] / static_cast<double>(total_);
    }
  }
  return 0.0;
}

double ColumnHistogram::SelectivityOf(const workload::Constraint& c) const {
  using Kind = workload::Constraint::Kind;
  switch (c.kind) {
    case Kind::kNone:
      return 1.0;
    case Kind::kRange:
      if (c.lo == c.hi) return PointFraction(c.lo);
      return RangeFraction(std::max(c.lo, 0), std::min(c.hi, domain_ - 1));
    case Kind::kNotEqual:
      return std::max(0.0, 1.0 - PointFraction(c.neq));
    case Kind::kIn: {
      double f = 0.0;
      for (int32_t code : c.in_codes) f += PointFraction(code);
      return std::min(1.0, f);
    }
  }
  return 1.0;
}

size_t ColumnHistogram::SizeBytes() const {
  return lo_.size() * (2 * sizeof(int32_t) + sizeof(int64_t) + sizeof(int32_t));
}

HistogramAviEstimator::HistogramAviEstimator(const data::Table& table,
                                             int buckets_per_column)
    : table_rows_(table.num_rows()) {
  hists_.reserve(static_cast<size_t>(table.num_cols()));
  for (int c = 0; c < table.num_cols(); ++c) {
    hists_.emplace_back(table.column(c), buckets_per_column);
  }
}

double HistogramAviEstimator::EstimateCard(const workload::Query& query) const {
  double sel = 1.0;
  for (int c = 0; c < query.num_cols(); ++c) {
    const workload::Constraint& cons = query.constraint(c);
    if (!cons.IsActive()) continue;
    sel *= hists_[static_cast<size_t>(c)].SelectivityOf(cons);
  }
  return sel * static_cast<double>(table_rows_);
}

size_t HistogramAviEstimator::SizeBytes() const {
  size_t total = 0;
  for (const auto& h : hists_) total += h.SizeBytes();
  return total;
}

}  // namespace uae::estimators
