#include "optimizer/subplan_memo.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>

#include "util/mathutil.h"

namespace uae::optimizer {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  return util::SplitMix64(h ^ (v + 0x9e3779b97f4a7c15ull));
}

constexpr char kMagic[4] = {'U', 'A', 'E', 'M'};
constexpr uint32_t kVersion = 1;

}  // namespace

uint64_t SubplanFss(const data::JoinUniverse& uni,
                    const workload::JoinQuery& subplan) {
  const uint32_t mask = subplan.table_mask;
  uint64_t h = Mix(0x55AEull, mask);
  for (int t = 0; t < uni.NumTables(); ++t) {
    if (!(mask & (1u << t))) continue;
    h = Mix(h, static_cast<uint64_t>(t));
    if (t != 0 && (mask & 1u)) {
      // The join clause the star schema implies: dimension t equi-joins the
      // fact table on the title key. Encoded per edge so a future non-star
      // schema can fold arbitrary clause sets the same way.
      h = Mix(h, (0ull << 8) | static_cast<uint64_t>(t));
    }
    // Local predicates in ascending universe-column order. Query holds one
    // intersected constraint per column and kIn lists stay sorted, so the
    // fold is invariant to the order clauses were added in.
    for (int c : uni.tables[static_cast<size_t>(t)].content_cols) {
      const workload::Constraint& cons = subplan.pred.constraint(c);
      if (!cons.IsActive()) continue;
      h = Mix(h, static_cast<uint64_t>(c));
      h = Mix(h, static_cast<uint64_t>(cons.kind));
      switch (cons.kind) {
        case workload::Constraint::Kind::kNone:
          break;
        case workload::Constraint::Kind::kRange:
          h = Mix(h, static_cast<uint64_t>(static_cast<uint32_t>(cons.lo)));
          h = Mix(h, static_cast<uint64_t>(static_cast<uint32_t>(cons.hi)));
          break;
        case workload::Constraint::Kind::kNotEqual:
          h = Mix(h, static_cast<uint64_t>(static_cast<uint32_t>(cons.neq)));
          break;
        case workload::Constraint::Kind::kIn:
          h = Mix(h, cons.in_codes.size());
          for (int32_t code : cons.in_codes) {
            h = Mix(h, static_cast<uint64_t>(static_cast<uint32_t>(code)));
          }
          break;
      }
    }
  }
  return h;
}

SubplanMemo::SubplanMemo(const SubplanMemoConfig& config) : config_(config) {
  UAE_CHECK_GT(config_.smoothing, 0.0);
  UAE_CHECK(config_.smoothing <= 1.0);
}

std::optional<double> SubplanMemo::Lookup(uint64_t fss) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  auto it = entries_.find(fss);
  if (it == entries_.end() || it->second.nobs < config_.min_observations) {
    return std::nullopt;
  }
  ++stats_.hits;
  return std::exp(it->second.log_card);
}

void SubplanMemo::Observe(uint64_t fss, double observed_card) {
  const double log_obs = std::log(std::max(observed_card, 1.0));
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.observations;
  SubplanMemoEntry& e = entries_[fss];
  if (e.nobs == 0) {
    e.fss = fss;
    e.log_card = log_obs;
  } else {
    e.log_card = (1.0 - config_.smoothing) * e.log_card +
                 config_.smoothing * log_obs;
  }
  ++e.nobs;
}

size_t SubplanMemo::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

SubplanMemoStats SubplanMemo::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<SubplanMemoEntry> SubplanMemo::Entries() const {
  std::vector<SubplanMemoEntry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [fss, e] : entries_) out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const SubplanMemoEntry& a, const SubplanMemoEntry& b) {
              return a.fss < b.fss;
            });
  return out;
}

util::Status SubplanMemo::Save(const std::string& path) const {
  std::vector<SubplanMemoEntry> sorted = Entries();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out.write(kMagic, 4);
  uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  uint64_t count = sorted.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const SubplanMemoEntry& e : sorted) {
    out.write(reinterpret_cast<const char*>(&e.fss), sizeof(e.fss));
    // Raw IEEE-754 bits: a load/save round trip reproduces the file exactly.
    uint64_t bits;
    std::memcpy(&bits, &e.log_card, sizeof(bits));
    out.write(reinterpret_cast<const char*>(&bits), sizeof(bits));
    out.write(reinterpret_cast<const char*>(&e.nobs), sizeof(e.nobs));
  }
  if (!out.good()) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Status SubplanMemo::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::NotFound("cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in.good() || std::memcmp(magic, kMagic, 4) != 0) {
    return util::Status::InvalidArgument("bad memo magic in " + path);
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (version != kVersion) {
    return util::Status::InvalidArgument("bad memo version in " + path);
  }
  uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  std::unordered_map<uint64_t, SubplanMemoEntry> loaded;
  loaded.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    SubplanMemoEntry e;
    uint64_t bits = 0;
    in.read(reinterpret_cast<char*>(&e.fss), sizeof(e.fss));
    in.read(reinterpret_cast<char*>(&bits), sizeof(bits));
    in.read(reinterpret_cast<char*>(&e.nobs), sizeof(e.nobs));
    if (!in.good()) return util::Status::IoError("truncated memo: " + path);
    std::memcpy(&e.log_card, &bits, sizeof(bits));
    loaded.emplace(e.fss, e);
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(loaded);
  return util::Status::Ok();
}

size_t RecordPlanFeedback(const data::JoinUniverse& uni,
                          const workload::JoinQuery& query,
                          const std::vector<int>& order,
                          const std::vector<double>& step_rows,
                          uint64_t generation,
                          online::FeedbackCollector* collector) {
  UAE_CHECK(collector != nullptr);
  UAE_CHECK_EQ(order.size(), step_rows.size() + 1);
  size_t added = 0;
  uint32_t prefix = 1u << order[0];
  for (size_t step = 1; step < order.size(); ++step) {
    prefix |= 1u << order[step];
    workload::JoinQuery sub = RestrictToSubset(uni, query, prefix);
    online::FeedbackEntry entry;
    entry.query = sub.pred;
    entry.join_mask = sub.table_mask;
    entry.true_card = step_rows[step - 1];
    entry.generation = generation;
    collector->Add(std::move(entry));
    ++added;
  }
  return added;
}

SubplanMemoRefresher::SubplanMemoRefresher(
    const data::JoinUniverse& uni, SubplanMemo* memo,
    online::FeedbackCollector* collector,
    const SubplanMemoRefresherConfig& config, online::DriftMonitor* drift,
    online::FeedbackCollector* passthrough)
    : uni_(uni),
      memo_(memo),
      collector_(collector),
      config_(config),
      drift_(drift),
      passthrough_(passthrough) {
  UAE_CHECK(memo_ != nullptr);
  UAE_CHECK(collector_ != nullptr);
}

SubplanMemoRefresher::~SubplanMemoRefresher() { Stop(); }

size_t SubplanMemoRefresher::RefreshOnce() {
  size_t folded = 0;
  for (online::FeedbackEntry& entry : collector_->Drain()) {
    if (entry.join_mask == 0) {
      if (passthrough_ != nullptr) passthrough_->Add(std::move(entry));
      continue;
    }
    workload::JoinQuery sub{entry.join_mask, entry.query};
    memo_->Observe(SubplanFss(uni_, sub), entry.true_card);
    if (drift_ != nullptr && entry.estimated_card > 0.0) {
      const double t = std::max(entry.true_card, 1.0);
      const double e = std::max(entry.estimated_card, 1.0);
      drift_->Observe(entry.generation, std::max(t / e, e / t));
    }
    ++folded;
  }
  return folded;
}

void SubplanMemoRefresher::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker_.joinable()) return;
  stop_ = false;
  worker_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      lock.unlock();
      RefreshOnce();
      lock.lock();
      cv_.wait_for(lock, std::chrono::milliseconds(config_.poll_interval_ms),
                   [this] { return stop_; });
    }
  });
}

void SubplanMemoRefresher::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!worker_.joinable()) return;
    stop_ = true;
    cv_.notify_all();
    worker = std::move(worker_);
  }
  worker.join();
  RefreshOnce();  // Fold anything that raced the shutdown.
}

}  // namespace uae::optimizer
