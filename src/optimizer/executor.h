// In-memory hash-join executor for left-deep star plans. Executes the plan the
// optimizer chose and reports wall time plus the actual intermediate result
// volume — the measurement behind the Figure 6 speedups.
#pragma once

#include <vector>

#include "data/imdb_star.h"
#include "workload/join_workload.h"

namespace uae::optimizer {

struct ExecutionResult {
  double rows_out = 0.0;            ///< Final join cardinality.
  double intermediate_rows = 0.0;   ///< Sum of intermediate sizes (C_out actual).
  /// Intermediate size after each join step: step_rows[i] is the TRUE
  /// cardinality of the sub-plan covering order[0..i+1] (left-deep plans keep
  /// the fact table in every such prefix) — the executed-plan feedback that
  /// optimizer::RecordPlanFeedback turns into subplan-memo observations.
  std::vector<double> step_rows;
  double seconds = 0.0;             ///< Wall time of the join pipeline.
};

/// Filtered base-table predicates of table `t` compiled from the universe
/// query (codes shifted back to base dictionaries).
workload::Query BaseTableQuery(const data::JoinUniverse& uni,
                               const workload::JoinQuery& query, int t);

/// Executes `order` (a left-deep sequence of table ids covering
/// query.table_mask) with hash joins on the title key.
ExecutionResult ExecutePlan(const data::JoinUniverse& uni,
                            const workload::JoinQuery& query,
                            const std::vector<int>& order);

}  // namespace uae::optimizer
