#include "optimizer/card_provider.h"

#include <algorithm>

namespace uae::optimizer {

namespace {
uint64_t CacheKey(const workload::JoinQuery& q, uint32_t submask) {
  return q.pred.Fingerprint() * 1315423911ull + (static_cast<uint64_t>(q.table_mask) << 32 | submask);
}
}  // namespace

double TrueCardProvider::Card(const workload::JoinQuery& query, uint32_t submask) {
  uint64_t key = CacheKey(query, submask);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  double card = JoinTrueCard(uni_, RestrictToSubset(uni_, query, submask));
  cache_.emplace(key, card);
  return card;
}

double UaeCardProvider::Card(const workload::JoinQuery& query, uint32_t submask) {
  uint64_t key = CacheKey(query, submask);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  double card = uae_->EstimateJoinCard(RestrictToSubset(uni_, query, submask));
  cache_.emplace(key, card);
  return card;
}

void UaeCardProvider::Prewarm(const workload::JoinQuery& query,
                              std::span<const uint32_t> submasks) {
  std::vector<uint32_t> missing;
  std::vector<workload::JoinQuery> restricted;
  for (uint32_t s : submasks) {
    if (cache_.count(CacheKey(query, s)) != 0) continue;
    missing.push_back(s);
    restricted.push_back(RestrictToSubset(uni_, query, s));
  }
  if (restricted.empty()) return;
  std::vector<double> cards = uae_->EstimateJoinCards(restricted);
  for (size_t i = 0; i < missing.size(); ++i) {
    cache_.emplace(CacheKey(query, missing[i]), cards[i]);
  }
}

ServedCardProvider::ServedCardProvider(const data::JoinUniverse& uni,
                                       serve::EstimationService* service,
                                       SubplanMemo* memo,
                                       std::string display_name)
    : uni_(uni), service_(service), memo_(memo), name_(std::move(display_name)) {
  UAE_CHECK(service_ != nullptr);
}

double ServedCardProvider::Card(const workload::JoinQuery& query,
                                uint32_t submask) {
  workload::JoinQuery sub = RestrictToSubset(uni_, query, submask);
  if (memo_ != nullptr) {
    if (auto card = memo_->Lookup(SubplanFss(uni_, sub))) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return *card;
    }
  }
  service_requests_.fetch_add(1, std::memory_order_relaxed);
  return service_->EstimateJoin(sub).card;
}

void ServedCardProvider::Prewarm(const workload::JoinQuery& query,
                                 std::span<const uint32_t> submasks) {
  std::vector<std::future<serve::ServeResult>> futures;
  futures.reserve(submasks.size());
  for (uint32_t s : submasks) {
    workload::JoinQuery sub = RestrictToSubset(uni_, query, s);
    if (memo_ != nullptr && memo_->Lookup(SubplanFss(uni_, sub))) continue;
    service_requests_.fetch_add(1, std::memory_order_relaxed);
    futures.push_back(service_->EstimateJoinAsync(sub));
  }
  // Wait so the DP loop's Card() calls hit the (generation-keyed) cache. If a
  // publish lands between here and the loop, Card() re-estimates against the
  // new generation — slower, never stale.
  for (auto& f : futures) f.get();
}

AviCardProvider::AviCardProvider(const data::JoinUniverse& uni) : uni_(uni) {
  hists_.reserve(uni.base_tables.size());
  for (const auto& t : uni.base_tables) {
    hists_.emplace_back(t, /*buckets_per_column=*/64);
  }
}

double AviCardProvider::TableSelectivity(const workload::JoinQuery& query,
                                         int t) const {
  const data::JoinTableInfo& info = uni_.tables[static_cast<size_t>(t)];
  const data::Table& base = uni_.base_tables[static_cast<size_t>(info.base_table)];
  workload::Query base_q(base.num_cols());
  for (size_t i = 0; i < info.content_cols.size(); ++i) {
    const workload::Constraint& cons =
        query.pred.constraint(info.content_cols[i]);
    if (!cons.IsActive()) continue;
    workload::Constraint shifted = cons;
    if (info.code_shift != 0) {
      // Universe codes are +1 (NULL at 0); shift back to base codes.
      if (shifted.kind == workload::Constraint::Kind::kRange) {
        shifted.lo = std::max(0, shifted.lo - info.code_shift);
        shifted.hi = shifted.hi - info.code_shift;
      } else if (shifted.kind == workload::Constraint::Kind::kNotEqual) {
        shifted.neq -= info.code_shift;
      } else if (shifted.kind == workload::Constraint::Kind::kIn) {
        for (auto& code : shifted.in_codes) code -= info.code_shift;
      }
    }
    base_q.mutable_constraint(info.base_content_cols[i]) = shifted;
  }
  double card = hists_[static_cast<size_t>(info.base_table)].EstimateCard(base_q);
  return std::max(1e-9, card / static_cast<double>(base.num_rows()));
}

double AviCardProvider::Card(const workload::JoinQuery& query, uint32_t submask) {
  // Postgres-style: independent per-table selectivities + key/FK join
  // selectivity 1/|title| per join edge.
  double card = 1.0;
  int count = 0;
  double n_title =
      static_cast<double>(uni_.base_tables[0].num_rows());
  for (int t = 0; t < uni_.NumTables(); ++t) {
    if (!(submask & (1u << t))) continue;
    const data::JoinTableInfo& info = uni_.tables[static_cast<size_t>(t)];
    double rows =
        static_cast<double>(uni_.base_tables[static_cast<size_t>(info.base_table)]
                                .num_rows());
    card *= rows * TableSelectivity(query, t);
    ++count;
  }
  for (int e = 1; e < count; ++e) card /= n_title;
  return std::max(card, 1.0);
}

}  // namespace uae::optimizer
