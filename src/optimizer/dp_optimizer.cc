#include "optimizer/dp_optimizer.h"

#include <algorithm>
#include <limits>

#include "util/common.h"

namespace uae::optimizer {

namespace {
bool Connected(uint32_t subset) {
  // Star schema: any single table is fine; multi-table subsets must contain
  // the fact table (bit 0) to avoid cross products.
  return __builtin_popcount(subset) == 1 || (subset & 1u);
}
}  // namespace

PlanResult OptimizeJoinOrder(const data::JoinUniverse& uni,
                             const workload::JoinQuery& query,
                             JoinCardProvider* cards) {
  const uint32_t full = query.table_mask;
  const int n = uni.NumTables();
  UAE_CHECK(full & 1u) << "join queries must include the fact table";

  // Enumerate the sub-plans the DP below will cost, and let batched providers
  // estimate all of them in one parallel pass.
  std::vector<uint32_t> submasks;
  for (uint32_t s = 1; s <= full; ++s) {
    if ((s & full) != s || __builtin_popcount(s) < 2 || !Connected(s)) continue;
    submasks.push_back(s);
  }
  cards->Prewarm(query, submasks);

  std::vector<double> best_cost(1u << n, std::numeric_limits<double>::infinity());
  std::vector<int> best_last(1u << n, -1);

  // Singletons.
  for (int t = 0; t < n; ++t) {
    uint32_t s = 1u << t;
    if ((s & full) != s) continue;
    best_cost[s] = 0.0;  // C_out counts only intermediate (join) results.
  }
  // Cost every enumerated sub-plan (submasks is already in increasing order).
  for (uint32_t s : submasks) {
    double card_s = std::max(1.0, cards->Card(query, s));
    for (int t = 0; t < n; ++t) {
      uint32_t bit = 1u << t;
      if (!(s & bit)) continue;
      uint32_t rest = s ^ bit;
      if (!Connected(rest)) continue;
      if (best_cost[rest] == std::numeric_limits<double>::infinity()) continue;
      double cost = best_cost[rest] + card_s;
      if (cost < best_cost[s]) {
        best_cost[s] = cost;
        best_last[s] = t;
      }
    }
  }
  UAE_CHECK(best_cost[full] != std::numeric_limits<double>::infinity())
      << "no connected join order found";

  PlanResult result;
  result.estimated_cost = best_cost[full];
  // Reconstruct the order back-to-front.
  uint32_t s = full;
  std::vector<int> reversed;
  while (__builtin_popcount(s) > 1) {
    int t = best_last[s];
    UAE_CHECK_GE(t, 0);
    reversed.push_back(t);
    s ^= 1u << t;
  }
  // The remaining singleton is the leftmost table.
  for (int t = 0; t < n; ++t) {
    if (s & (1u << t)) reversed.push_back(t);
  }
  result.join_order.assign(reversed.rbegin(), reversed.rend());
  return result;
}

double PlanCOutCost(const data::JoinUniverse& uni,
                    const workload::JoinQuery& query,
                    const std::vector<int>& order, JoinCardProvider* cards) {
  UAE_CHECK(!order.empty());
  (void)uni;
  double cost = 0.0;
  uint32_t prefix = 1u << order[0];
  for (size_t step = 1; step < order.size(); ++step) {
    prefix |= 1u << order[step];
    cost += std::max(1.0, cards->Card(query, prefix));
  }
  return cost;
}

}  // namespace uae::optimizer
