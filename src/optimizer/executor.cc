#include "optimizer/executor.h"

#include <algorithm>
#include <unordered_map>

#include "util/stopwatch.h"
#include "workload/executor.h"

namespace uae::optimizer {

workload::Query BaseTableQuery(const data::JoinUniverse& uni,
                               const workload::JoinQuery& query, int t) {
  const data::JoinTableInfo& info = uni.tables[static_cast<size_t>(t)];
  const data::Table& base = uni.base_tables[static_cast<size_t>(info.base_table)];
  workload::Query base_q(base.num_cols());
  for (size_t i = 0; i < info.content_cols.size(); ++i) {
    const workload::Constraint& cons = query.pred.constraint(info.content_cols[i]);
    if (!cons.IsActive()) continue;
    workload::Constraint shifted = cons;
    if (info.code_shift != 0) {
      if (shifted.kind == workload::Constraint::Kind::kRange) {
        shifted.lo = std::max(0, shifted.lo - info.code_shift);
        shifted.hi = shifted.hi - info.code_shift;
      } else if (shifted.kind == workload::Constraint::Kind::kNotEqual) {
        shifted.neq -= info.code_shift;
      } else if (shifted.kind == workload::Constraint::Kind::kIn) {
        for (auto& code : shifted.in_codes) code -= info.code_shift;
      }
    }
    base_q.mutable_constraint(info.base_content_cols[i]) = shifted;
  }
  return base_q;
}

namespace {

/// Title keys of base table `t`'s rows matching the query's filters (the fact
/// table yields each matching title id once; dimensions one per row).
std::vector<int32_t> FilteredKeys(const data::JoinUniverse& uni,
                                  const workload::JoinQuery& query, int t) {
  const data::JoinTableInfo& info = uni.tables[static_cast<size_t>(t)];
  const data::Table& base = uni.base_tables[static_cast<size_t>(info.base_table)];
  workload::Query base_q = BaseTableQuery(uni, query, t);
  std::vector<int32_t> keys;
  const bool is_fact = t == 0;
  for (size_t r = 0; r < base.num_rows(); ++r) {
    if (!base_q.MatchesRow(base, r)) continue;
    keys.push_back(is_fact ? static_cast<int32_t>(r) : base.column(0).code_at(r));
  }
  return keys;
}

}  // namespace

ExecutionResult ExecutePlan(const data::JoinUniverse& uni,
                            const workload::JoinQuery& query,
                            const std::vector<int>& order) {
  UAE_CHECK(!order.empty());
  ExecutionResult result;
  util::Stopwatch timer;

  // Leftmost input.
  std::vector<int32_t> current = FilteredKeys(uni, query, order[0]);
  for (size_t step = 1; step < order.size(); ++step) {
    // Build: hash count map of the next table's filtered keys.
    std::vector<int32_t> next = FilteredKeys(uni, query, order[step]);
    std::unordered_map<int32_t, int32_t> counts;
    counts.reserve(next.size() * 2 + 8);
    for (int32_t key : next) ++counts[key];
    // Probe: expand the intermediate result.
    std::vector<int32_t> joined;
    joined.reserve(current.size());
    for (int32_t key : current) {
      auto it = counts.find(key);
      if (it == counts.end()) continue;
      for (int32_t k = 0; k < it->second; ++k) joined.push_back(key);
    }
    current = std::move(joined);
    result.intermediate_rows += static_cast<double>(current.size());
    result.step_rows.push_back(static_cast<double>(current.size()));
  }
  result.rows_out = static_cast<double>(current.size());
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace uae::optimizer
