// System-R-style dynamic-programming join ordering over the star schema with
// a C_out cost model: cost(plan) = sum of intermediate-result cardinalities,
// as estimated by the injected JoinCardProvider. Different providers choose
// different plans; the executor then measures how good those plans really are
// (the Figure 6 experimental design).
#pragma once

#include <vector>

#include "optimizer/card_provider.h"

namespace uae::optimizer {

struct PlanResult {
  std::vector<int> join_order;   ///< Table ids in left-deep join sequence.
  double estimated_cost = 0.0;   ///< C_out under the provider's estimates.
};

/// Optimizes the left-deep join order of `query` using cardinalities from
/// `cards`. Cross products are not considered (a subset is joinable iff it is
/// a single table or contains the fact table).
PlanResult OptimizeJoinOrder(const data::JoinUniverse& uni,
                             const workload::JoinQuery& query,
                             JoinCardProvider* cards);

/// C_out cost of a FIXED left-deep order under `cards`: the sum of the
/// provider's cardinalities over every >= 2-table prefix. Costing a plan
/// chosen with estimated cards under a TrueCardProvider yields the
/// chosen-plan cost — the numerator of the bench's plan_cost_ratio metric.
double PlanCOutCost(const data::JoinUniverse& uni,
                    const workload::JoinQuery& query,
                    const std::vector<int>& order, JoinCardProvider* cards);

}  // namespace uae::optimizer
