// Persistent per-subplan cardinality memo — the AQO pattern (adaptive query
// optimization): every sub-plan the optimizer costs is identified by a
// canonical feature-subspace hash (fss) of its (relation set, join clauses,
// local predicates); executed plans report the TRUE cardinalities of their
// prefix sub-plans back through the online feedback loop, and a background
// refresher folds them into the memo OFF the query path. On the next planning
// of the same sub-plan the memo short-circuits the model entirely — the
// optimizer plans with observed truth where it exists and learned estimates
// where it does not.
//
// Thread-safety: SubplanMemo is fully thread-safe (one mutex; all operations
// are O(1)-ish map touches, never model evaluations). The refresher owns a
// background thread; Start/Stop are idempotent and the destructor stops it.
//
// Persistence: Save/Load use the same raw-stream style as nn/serialize
// ("UAEM" magic, version, count, fixed-width little-endian fields). Cards are
// stored as raw IEEE-754 bit patterns and entries are written sorted by fss,
// so save -> load -> save reproduces the file byte for byte.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "data/imdb_star.h"
#include "online/drift.h"
#include "online/feedback.h"
#include "util/status.h"
#include "workload/join_workload.h"

namespace uae::optimizer {

/// Canonical hash of a sub-plan: the joined-table set, the join clauses it
/// implies (star schema: dimension t joins the fact table on the title key),
/// and the local predicates of the in-set tables, folded in ascending
/// (table, column) order. Because workload::Query stores one intersected
/// constraint per column (and kIn code lists are kept sorted), the hash is
/// invariant to the order predicates were added in — semantically equal
/// sub-plans collide by construction. Constraints on columns of tables
/// OUTSIDE subplan.table_mask are ignored, so a restricted and an
/// unrestricted spelling of the same sub-plan also agree.
uint64_t SubplanFss(const data::JoinUniverse& uni,
                    const workload::JoinQuery& subplan);

struct SubplanMemoConfig {
  /// EMA weight of a new observation in log space:
  ///   log_card <- (1 - smoothing) * log_card + smoothing * log(max(obs, 1)).
  /// 1 = keep only the newest observation; the 0.5 default halves the
  /// influence of history each refresh (AQO-style recency bias).
  double smoothing = 0.5;
  /// Lookup() reports a miss until a subplan has this many observations.
  uint64_t min_observations = 1;
};

struct SubplanMemoStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;          ///< Lookups answered (nobs >= min_observations).
  uint64_t observations = 0;  ///< Observe() calls folded in.
};

/// One memoized sub-plan (exposed for tests and persistence).
struct SubplanMemoEntry {
  uint64_t fss = 0;
  double log_card = 0.0;  ///< EMA of log(true cardinality), >= 0.
  uint64_t nobs = 0;      ///< Observations folded into log_card.
};

class SubplanMemo {
 public:
  explicit SubplanMemo(const SubplanMemoConfig& config = {});
  UAE_DISALLOW_COPY(SubplanMemo);

  /// Memoized cardinality for the sub-plan hash, or nullopt while the memo
  /// has fewer than min_observations executions of it. Thread-safe.
  std::optional<double> Lookup(uint64_t fss) const;

  /// Folds one observed true cardinality into the sub-plan's entry
  /// (log-space EMA; see SubplanMemoConfig::smoothing). Thread-safe.
  void Observe(uint64_t fss, double observed_card);

  size_t Size() const;
  SubplanMemoStats Stats() const;
  /// Entries sorted by fss (the persistence order).
  std::vector<SubplanMemoEntry> Entries() const;

  /// Writes the memo ("UAEM" format). Entries are sorted and cards stored as
  /// raw bit patterns, so the file is a deterministic function of the state.
  util::Status Save(const std::string& path) const;
  /// Replaces the contents with the file's entries (stats are kept).
  util::Status Load(const std::string& path);

 private:
  const SubplanMemoConfig config_;
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, SubplanMemoEntry> entries_;
  mutable SubplanMemoStats stats_;
};

/// Reports the executed plan's per-step intermediate sizes as join feedback:
/// for every >= 2-table prefix of `order`, the prefix's intermediate result
/// size IS the true cardinality of that sub-plan (left-deep plans over the
/// star schema keep the fact table in every such prefix), so each becomes a
/// FeedbackEntry with join_mask = prefix mask and query = the predicate
/// restricted to it. `step_rows` comes from ExecutionResult::step_rows;
/// `generation` attributes the feedback to the serving snapshot that planned
/// the query. Returns the number of entries added.
size_t RecordPlanFeedback(const data::JoinUniverse& uni,
                          const workload::JoinQuery& query,
                          const std::vector<int>& order,
                          const std::vector<double>& step_rows,
                          uint64_t generation,
                          online::FeedbackCollector* collector);

struct SubplanMemoRefresherConfig {
  /// Background poll cadence of Start()ed refreshers.
  uint64_t poll_interval_ms = 50;
};

/// Moves executed-plan feedback from a FeedbackCollector into a SubplanMemo —
/// the off-query-path half of the loop. RefreshOnce() drains the collector:
/// join entries (join_mask != 0) are folded into the memo (and, when a
/// DriftMonitor is attached and the entry carries the estimate it was planned
/// with, their q-errors feed per-generation drift tracking); single-table
/// entries are forwarded to `passthrough` (the adaptation controller's
/// collector) or dropped when none is given. Start() runs RefreshOnce on a
/// background thread so planning threads never pay for memo maintenance.
class SubplanMemoRefresher {
 public:
  SubplanMemoRefresher(const data::JoinUniverse& uni, SubplanMemo* memo,
                       online::FeedbackCollector* collector,
                       const SubplanMemoRefresherConfig& config = {},
                       online::DriftMonitor* drift = nullptr,
                       online::FeedbackCollector* passthrough = nullptr);
  ~SubplanMemoRefresher();
  UAE_DISALLOW_COPY(SubplanMemoRefresher);

  /// Drains the collector once; returns how many join entries were folded in.
  size_t RefreshOnce();

  /// Starts/stops the background polling thread (idempotent).
  void Start();
  void Stop();

 private:
  const data::JoinUniverse& uni_;
  SubplanMemo* const memo_;
  online::FeedbackCollector* const collector_;
  const SubplanMemoRefresherConfig config_;
  online::DriftMonitor* const drift_;
  online::FeedbackCollector* const passthrough_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread worker_;
};

}  // namespace uae::optimizer
