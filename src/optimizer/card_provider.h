// Cardinality providers: per-estimator sources of sub-plan cardinalities
// injected into the mini optimizer — the experimental design of §5.6 / [13]
// (external estimates injected into the planner).
//
// Two deployment shapes:
//   * Direct (UaeCardProvider): the planner holds the model and calls
//     EstimateJoinCard itself — single-threaded, one plan at a time.
//   * Served (ServedCardProvider): sub-plan estimates go through a
//     serve::EstimationService, so concurrent planner threads coalesce into
//     shared micro-batches, share the generation-keyed result cache, and
//     transparently pick up hot-swapped (fine-tuned or quantized) snapshots.
//     An optional SubplanMemo short-circuits sub-plans whose true
//     cardinality has already been observed from executed plans.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "core/uae.h"
#include "data/imdb_star.h"
#include "estimators/histogram.h"
#include "estimators/spn.h"
#include "optimizer/subplan_memo.h"
#include "serve/service.h"
#include "workload/join_workload.h"

namespace uae::optimizer {

/// Cardinality of the query restricted to `submask` (a subset of the query's
/// joined tables). Implementations memoize per (query, submask).
///
/// Thread-safety is per implementation: TrueCardProvider / UaeCardProvider /
/// AviCardProvider keep unsynchronized memo maps and serve ONE planner
/// thread; ServedCardProvider is safe to share across planner threads.
class JoinCardProvider {
 public:
  virtual ~JoinCardProvider() = default;
  virtual std::string name() const = 0;
  /// Cardinality estimate for RestrictToSubset(query, submask).
  virtual double Card(const workload::JoinQuery& query, uint32_t submask) = 0;
  /// Estimates the given sub-plans — the exact set the caller's enumeration
  /// will ask Card() for — in one batch (providers with a parallel batched
  /// path override this to fill their memo up front). Default: no-op; Card()
  /// computes on demand.
  virtual void Prewarm(const workload::JoinQuery& query,
                       std::span<const uint32_t> submasks) {}
};

/// Exact cardinalities by weighted scans of the universe ("TrueCard").
class TrueCardProvider : public JoinCardProvider {
 public:
  explicit TrueCardProvider(const data::JoinUniverse& uni) : uni_(uni) {}
  std::string name() const override { return "TrueCard"; }
  double Card(const workload::JoinQuery& query, uint32_t submask) override;

 private:
  const data::JoinUniverse& uni_;
  std::unordered_map<uint64_t, double> cache_;
};

/// UAE (or UAE-D / NeuroCard when trained data-only) via progressive sampling.
class UaeCardProvider : public JoinCardProvider {
 public:
  UaeCardProvider(const data::JoinUniverse& uni, const core::Uae* uae,
                  std::string display_name)
      : uni_(uni), uae_(uae), name_(std::move(display_name)) {}
  std::string name() const override { return name_; }
  double Card(const workload::JoinQuery& query, uint32_t submask) override;
  /// Batch-estimates the submasks via Uae::EstimateJoinCards (one parallel
  /// fan-out) and fills the cache the DP loop will hit.
  void Prewarm(const workload::JoinQuery& query,
               std::span<const uint32_t> submasks) override;

 private:
  const data::JoinUniverse& uni_;
  const core::Uae* uae_;
  std::string name_;
  std::unordered_map<uint64_t, double> cache_;
};

/// Sub-plan cardinalities through the serving stack — the production shape.
///
/// Card() resolves in order:
///   1. SubplanMemo (when attached): observed-truth short-circuit, keyed by
///      the canonical SubplanFss hash — no model evaluation at all.
///   2. serve::EstimationService::EstimateJoin: micro-batched against the
///      CURRENT snapshot generation, cached per (JoinFingerprint, generation).
///
/// Because the service cache is generation-keyed, a PublishSnapshot
/// (fine-tuned clone, quantized plane, sharded model) is picked up on the
/// next estimate with no provider-side invalidation — this provider holds NO
/// generation-blind state, unlike UaeCardProvider's local memo.
///
/// Thread-safety: fully thread-safe; share one instance across concurrent
/// planner threads so their Prewarm fan-outs coalesce into shared
/// micro-batches. Determinism: for a fixed snapshot generation, Card() is
/// bit-identical to model->EstimateJoinCard(RestrictToSubset(...)) no matter
/// how requests batch, race, or hit the cache.
class ServedCardProvider : public JoinCardProvider {
 public:
  /// `service` (required) and `memo` (optional) are borrowed and must outlive
  /// the provider.
  ServedCardProvider(const data::JoinUniverse& uni,
                     serve::EstimationService* service,
                     SubplanMemo* memo = nullptr,
                     std::string display_name = "UAE-served");
  std::string name() const override { return name_; }
  double Card(const workload::JoinQuery& query, uint32_t submask) override;
  /// Issues EstimateJoinAsync for every sub-plan not answered by the memo and
  /// waits for all futures: requests from this (and any concurrent) planner
  /// coalesce into shared micro-batches, and the results land in the
  /// service's result cache, which the DP loop's Card() calls then hit.
  void Prewarm(const workload::JoinQuery& query,
               std::span<const uint32_t> submasks) override;

  struct Stats {
    uint64_t service_requests = 0;  ///< Estimates routed to the service.
    uint64_t memo_hits = 0;         ///< Estimates answered by the memo.
  };
  Stats stats() const {
    return {service_requests_.load(std::memory_order_relaxed),
            memo_hits_.load(std::memory_order_relaxed)};
  }

 private:
  const data::JoinUniverse& uni_;
  serve::EstimationService* const service_;
  SubplanMemo* const memo_;  ///< Null: always serve.
  std::string name_;
  std::atomic<uint64_t> service_requests_{0};
  std::atomic<uint64_t> memo_hits_{0};
};

/// Postgres-like baseline: per-table AVI histograms + key/foreign-key join
/// selectivity (|A join B| = |A||B| / max ndv of the key).
class AviCardProvider : public JoinCardProvider {
 public:
  explicit AviCardProvider(const data::JoinUniverse& uni);
  std::string name() const override { return "Postgres-like"; }
  double Card(const workload::JoinQuery& query, uint32_t submask) override;

 private:
  /// Selectivity of the per-table predicates on base table t.
  double TableSelectivity(const workload::JoinQuery& query, int t) const;

  const data::JoinUniverse& uni_;
  std::vector<estimators::HistogramAviEstimator> hists_;  // Per base table.
};

}  // namespace uae::optimizer
