// Cardinality providers: per-estimator sources of sub-plan cardinalities
// injected into the mini optimizer — the experimental design of §5.6 / [13]
// (external estimates injected into the planner).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "core/uae.h"
#include "data/imdb_star.h"
#include "estimators/histogram.h"
#include "estimators/spn.h"
#include "workload/join_workload.h"

namespace uae::optimizer {

/// Cardinality of the query restricted to `submask` (a subset of the query's
/// joined tables). Implementations memoize per (query, submask).
class JoinCardProvider {
 public:
  virtual ~JoinCardProvider() = default;
  virtual std::string name() const = 0;
  /// Cardinality estimate for RestrictToSubset(query, submask).
  virtual double Card(const workload::JoinQuery& query, uint32_t submask) = 0;
  /// Estimates the given sub-plans — the exact set the caller's enumeration
  /// will ask Card() for — in one batch (providers with a parallel batched
  /// path override this to fill their memo up front). Default: no-op; Card()
  /// computes on demand.
  virtual void Prewarm(const workload::JoinQuery& query,
                       std::span<const uint32_t> submasks) {}
};

/// Exact cardinalities by weighted scans of the universe ("TrueCard").
class TrueCardProvider : public JoinCardProvider {
 public:
  explicit TrueCardProvider(const data::JoinUniverse& uni) : uni_(uni) {}
  std::string name() const override { return "TrueCard"; }
  double Card(const workload::JoinQuery& query, uint32_t submask) override;

 private:
  const data::JoinUniverse& uni_;
  std::unordered_map<uint64_t, double> cache_;
};

/// UAE (or UAE-D / NeuroCard when trained data-only) via progressive sampling.
class UaeCardProvider : public JoinCardProvider {
 public:
  UaeCardProvider(const data::JoinUniverse& uni, const core::Uae* uae,
                  std::string display_name)
      : uni_(uni), uae_(uae), name_(std::move(display_name)) {}
  std::string name() const override { return name_; }
  double Card(const workload::JoinQuery& query, uint32_t submask) override;
  /// Batch-estimates the submasks via Uae::EstimateJoinCards (one parallel
  /// fan-out) and fills the cache the DP loop will hit.
  void Prewarm(const workload::JoinQuery& query,
               std::span<const uint32_t> submasks) override;

 private:
  const data::JoinUniverse& uni_;
  const core::Uae* uae_;
  std::string name_;
  std::unordered_map<uint64_t, double> cache_;
};

/// Postgres-like baseline: per-table AVI histograms + key/foreign-key join
/// selectivity (|A join B| = |A||B| / max ndv of the key).
class AviCardProvider : public JoinCardProvider {
 public:
  explicit AviCardProvider(const data::JoinUniverse& uni);
  std::string name() const override { return "Postgres-like"; }
  double Card(const workload::JoinQuery& query, uint32_t submask) override;

 private:
  /// Selectivity of the per-table predicates on base table t.
  double TableSelectivity(const workload::JoinQuery& query, int t) const;

  const data::JoinUniverse& uni_;
  std::vector<estimators::HistogramAviEstimator> hists_;  // Per base table.
};

}  // namespace uae::optimizer
