#include "router/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/common.h"

namespace uae::router {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Symmetric q-error with the usual 1-row floors (a zero-cardinality truth
/// or estimate would otherwise make the ratio degenerate).
double QError(double estimate, double truth) {
  const double e = std::max(1.0, estimate);
  const double t = std::max(1.0, truth);
  return std::max(e / t, t / e);
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kPrimary:
      return "primary";
    case Backend::kKnn:
      return "knn";
    case Backend::kFloor:
      return "floor";
    case Backend::kAlt:
      return "alt";
  }
  return "?";
}

void HybridRouter::QerrWindow::Add(double q, size_t cap) {
  if (cap == 0) return;
  if (samples.size() < cap) {
    samples.push_back(q);
    return;
  }
  samples[next] = q;
  next = (next + 1) % cap;
}

HybridRouter::HybridRouter(
    std::shared_ptr<core::ServableModel> primary,
    std::shared_ptr<const estimators::CardinalityEstimator> floor,
    std::vector<int32_t> domains, const RouterConfig& config)
    : primary_(std::move(primary)),
      floor_(std::move(floor)),
      domains_(std::move(domains)),
      config_(config) {
  UAE_CHECK(primary_ != nullptr);
  UAE_CHECK(floor_ != nullptr);
  auto initial = std::make_shared<RoutingTable>();
  initial->generation = 1;
  PublishTable(std::move(initial));
}

std::shared_ptr<const HybridRouter::RoutingTable> HybridRouter::Table() const {
#ifdef UAE_ROUTER_TSAN
  std::lock_guard<std::mutex> lock(table_mu_);
  return table_;
#else
  return table_.load(std::memory_order_acquire);
#endif
}

void HybridRouter::PublishTable(std::shared_ptr<const RoutingTable> table) {
#ifdef UAE_ROUTER_TSAN
  std::lock_guard<std::mutex> lock(table_mu_);
  table_ = std::move(table);
#else
  table_.store(std::move(table), std::memory_order_release);
#endif
}

bool HybridRouter::CheckDegraded() const {
  if (!probe_) return false;
  const RouterLoad load = probe_();
  const bool breach =
      (config_.queue_depth_limit > 0 &&
       load.queue_depth > config_.queue_depth_limit) ||
      (config_.latency_slo_us > 0 && load.oldest_wait_us > config_.latency_slo_us);
  if (breach) {
    // Entry is immediate: one breached probe flips the router to the floor.
    healthy_streak_.store(0, std::memory_order_relaxed);
    if (!degraded_.exchange(true, std::memory_order_relaxed)) {
      degrade_transitions_.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }
  if (!degraded_.load(std::memory_order_relaxed)) return false;
  // Leaving requires `recover_after` consecutive healthy probes (hysteresis:
  // a queue draining through the limit must not flap the state per request).
  const int streak = healthy_streak_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (streak >= config_.recover_after) {
    if (degraded_.exchange(false, std::memory_order_relaxed)) {
      degrade_transitions_.fetch_add(1, std::memory_order_relaxed);
    }
    healthy_streak_.store(0, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void HybridRouter::RecordServed(Backend backend, uint64_t micros) const {
  const size_t i = static_cast<size_t>(backend);
  served_[i].fetch_add(1, std::memory_order_relaxed);
  latency_[i].Record(micros);
}

double HybridRouter::EstimateVia(Backend backend, const workload::Query& query,
                                 const QueryClass& qc,
                                 const ClassRoute* route) const {
  switch (backend) {
    case Backend::kFloor:
      return floor_->EstimateCard(query);
    case Backend::kKnn: {
      UAE_CHECK(route != nullptr);
      const auto log_card =
          route->knn.PredictLogCard(qc.features, config_.knn);
      UAE_CHECK(log_card.has_value());
      return std::clamp(std::exp(*log_card), 0.0,
                        static_cast<double>(primary_->num_rows()));
    }
    case Backend::kAlt:
      UAE_CHECK(alt_ != nullptr);
      return alt_->EstimateCard(query);
    case Backend::kPrimary:
      break;
  }
  return primary_->EstimateCard(query);
}

double HybridRouter::EstimateCard(const workload::Query& query) const {
  const uint64_t start = NowMicros();
  const auto table = Table();

  Backend backend = Backend::kPrimary;
  const ClassRoute* route = nullptr;
  QueryClass qc;
  if (static_cast<size_t>(query.num_cols()) == domains_.size()) {
    qc = ClassifyQuery(query, domains_);
    const auto it = table->routes.find(qc.fss);
    if (it != table->routes.end()) {
      route = &it->second;
      backend = route->backend;
    }
  }
  if (backend == Backend::kKnn &&
      !route->knn.PredictLogCard(qc.features, config_.knn).has_value()) {
    backend = Backend::kPrimary;  // Stale/underfilled snapshot: fall back.
  }
  if (backend == Backend::kAlt && alt_ == nullptr) {
    backend = Backend::kPrimary;  // Table predates an alt teardown.
  }
  if (CheckDegraded()) {
    backend = Backend::kFloor;
    degraded_requests_.fetch_add(1, std::memory_order_relaxed);
  }

  const double estimate = EstimateVia(backend, query, qc, route);
  RecordServed(backend, NowMicros() - start);
  return estimate;
}

std::vector<double> HybridRouter::EstimateCards(
    std::span<const workload::Query> queries) const {
  const auto table = Table();
  // One probe reading covers the whole batch: requests admitted together
  // degrade together (and per-element probing would dominate micro paths).
  const bool degraded = CheckDegraded();

  std::vector<double> out(queries.size(), 0.0);
  std::vector<workload::Query> primary_queries, alt_queries;
  std::vector<size_t> primary_slots, alt_slots;
  for (size_t i = 0; i < queries.size(); ++i) {
    const uint64_t start = NowMicros();
    const workload::Query& query = queries[i];
    Backend backend = Backend::kPrimary;
    const ClassRoute* route = nullptr;
    QueryClass qc;
    if (static_cast<size_t>(query.num_cols()) == domains_.size()) {
      qc = ClassifyQuery(query, domains_);
      const auto it = table->routes.find(qc.fss);
      if (it != table->routes.end()) {
        route = &it->second;
        backend = route->backend;
      }
    }
    if (backend == Backend::kKnn &&
        !route->knn.PredictLogCard(qc.features, config_.knn).has_value()) {
      backend = Backend::kPrimary;
    }
    if (backend == Backend::kAlt && alt_ == nullptr) {
      backend = Backend::kPrimary;
    }
    if (degraded) {
      backend = Backend::kFloor;
      degraded_requests_.fetch_add(1, std::memory_order_relaxed);
    }
    if (backend == Backend::kPrimary) {
      // Deferred to the primary's batched fan-out path below.
      primary_queries.push_back(query);
      primary_slots.push_back(i);
      continue;
    }
    if (backend == Backend::kAlt) {
      // Full-model backends both get their batched path.
      alt_queries.push_back(query);
      alt_slots.push_back(i);
      continue;
    }
    out[i] = EstimateVia(backend, query, qc, route);
    RecordServed(backend, NowMicros() - start);
  }

  const auto run_batch = [&](core::ServableModel const& model, Backend backend,
                             const std::vector<workload::Query>& batch,
                             const std::vector<size_t>& slots) {
    if (batch.empty()) return;
    const uint64_t start = NowMicros();
    const std::vector<double> results =
        model.EstimateCards(std::span<const workload::Query>(batch));
    UAE_CHECK_EQ(results.size(), slots.size());
    // Per-request latency is the batch mean — the batch is the unit of work.
    const uint64_t per_request = (NowMicros() - start) / slots.size();
    for (size_t j = 0; j < slots.size(); ++j) {
      out[slots[j]] = results[j];
      RecordServed(backend, per_request);
    }
  };
  run_batch(*primary_, Backend::kPrimary, primary_queries, primary_slots);
  if (alt_ != nullptr) {
    run_batch(*alt_, Backend::kAlt, alt_queries, alt_slots);
  }
  return out;
}

size_t HybridRouter::SizeBytes() const {
  size_t bytes = primary_->SizeBytes() + floor_->SizeBytes();
  if (alt_ != nullptr) bytes += alt_->SizeBytes();
  const auto table = Table();
  for (const auto& [fss, route] : table->routes) {
    bytes += sizeof(fss) + sizeof(route) +
             route.knn.size() * (route.knn.dim() * sizeof(float) + sizeof(double));
  }
  return bytes;
}

std::shared_ptr<core::ServableModel> HybridRouter::CloneServable() const {
  auto clone = std::make_shared<HybridRouter>(
      primary_->CloneServable(), floor_, domains_, config_);
  clone->alt_ = alt_;  // Immutable through the router; shared like the floor.
  // The clone starts from this router's current routing table (re-published
  // as its own generation 1) with fresh learner state and stats.
  auto table = std::make_shared<RoutingTable>(*Table());
  table->generation = 1;
  clone->PublishTable(std::move(table));
  return clone;
}

size_t HybridRouter::FineTune(const workload::Workload& workload,
                              const core::FineTuneSpec& spec) {
  return primary_->FineTune(workload, spec);
}

size_t HybridRouter::ObserveFeedback(
    std::span<const online::FeedbackEntry> entries) {
  std::lock_guard<std::mutex> lock(learn_mu_);
  size_t folded = 0;
  // Classes touched this round; routing is re-derived once per class below
  // (streaks advance per update round, not per entry).
  std::vector<uint64_t> touched;
  for (const online::FeedbackEntry& entry : entries) {
    if (entry.join_mask != 0) continue;  // Single-table router.
    if (static_cast<size_t>(entry.query.num_cols()) != domains_.size()) continue;
    const QueryClass qc = ClassifyQuery(entry.query, domains_);
    auto it = classes_.find(qc.fss);
    if (it == classes_.end()) {
      if (classes_.size() >= config_.max_classes) continue;  // Bounded memory.
      it = classes_.emplace(qc.fss, ClassState(config_.knn.capacity)).first;
      touched.push_back(qc.fss);
    } else if (std::find(touched.begin(), touched.end(), qc.fss) ==
               touched.end()) {
      touched.push_back(qc.fss);
    }
    ClassState& state = it->second;

    const auto ema_update = [&](Backend b, double q) {
      const size_t i = static_cast<size_t>(b);
      const double lq = std::log(q);
      state.qerr_log[i] = state.qerr_n[i] == 0
                              ? lq
                              : (1.0 - config_.qerr_smoothing) * state.qerr_log[i] +
                                    config_.qerr_smoothing * lq;
      ++state.qerr_n[i];
    };

    // Attribute the served estimate's q-error to the backend the class was
    // routed to when it was served (an approximation: the entry does not
    // record its backend, and degradation may have floored it).
    const Backend served_by = state.on_knn
                                  ? Backend::kKnn
                                  : (state.on_alt && alt_ != nullptr
                                         ? Backend::kAlt
                                         : Backend::kPrimary);
    const double served_q = QError(entry.estimated_card, entry.true_card);
    qerr_windows_[static_cast<size_t>(served_by)].Add(served_q,
                                                      config_.qerr_window);
    if (served_by == Backend::kPrimary) ema_update(Backend::kPrimary, served_q);

    // Shadow-evaluate the cheap backends on every labeled entry: the kNN
    // prediction BEFORE this point is added (so the class must earn its
    // promotion on unseen points), and the floor estimator directly.
    const auto knn_log =
        state.ring.Freeze().PredictLogCard(qc.features, config_.knn);
    if (knn_log.has_value()) {
      // The kNN EMA always tracks the shadow value, whether or not the class
      // currently serves from kNN (the shadow is what promotion/demotion
      // must judge).
      ema_update(Backend::kKnn, QError(std::exp(*knn_log), entry.true_card));
    }
    const double floor_q =
        QError(floor_->EstimateCard(entry.query), entry.true_card);
    ema_update(Backend::kFloor, floor_q);
    qerr_windows_[static_cast<size_t>(Backend::kFloor)].Add(
        floor_q, config_.qerr_window);
    if (alt_ != nullptr) {
      // Shadow-evaluate the alt model too — its EMA is what promotion must
      // judge. (When the class already serves from the alt, the served
      // q-error above is the same signal; skip the duplicate window sample.)
      const double alt_q =
          QError(alt_->EstimateCard(entry.query), entry.true_card);
      ema_update(Backend::kAlt, alt_q);
      if (served_by != Backend::kAlt) {
        qerr_windows_[static_cast<size_t>(Backend::kAlt)].Add(
            alt_q, config_.qerr_window);
      }
    }

    state.ring.Add(qc.features, std::log(std::max(1.0, entry.true_card)));
    ++folded;
  }
  feedback_observed_ += folded;

  // Re-derive routing with hysteresis for every class touched this round.
  for (const uint64_t fss : touched) {
    ClassState& state = classes_.at(fss);
    const size_t knn_i = static_cast<size_t>(Backend::kKnn);
    const size_t pri_i = static_cast<size_t>(Backend::kPrimary);
    const bool has_knn = state.qerr_n[knn_i] > 0 &&
                         state.ring.size() >= config_.knn.min_points;
    const double knn_q = has_knn ? std::exp(state.qerr_log[knn_i]) : 0.0;
    const double pri_q = std::exp(state.qerr_log[pri_i]);
    const bool promotable =
        has_knn && knn_q <= config_.knn_promote_qerr &&
        (state.qerr_n[pri_i] == 0 || knn_q <= config_.knn_promote_margin * pri_q);
    const bool demotable = !has_knn || knn_q > config_.knn_demote_qerr;

    if (!state.on_knn) {
      state.promote_streak = promotable ? state.promote_streak + 1 : 0;
      if (state.promote_streak >= config_.promote_after) {
        state.on_knn = true;
        state.promote_streak = 0;
        state.demote_streak = 0;
      }
    } else {
      state.demote_streak = demotable ? state.demote_streak + 1 : 0;
      if (state.demote_streak >= config_.demote_after) {
        state.on_knn = false;
        state.promote_streak = 0;
        state.demote_streak = 0;
      }
    }

    // Alt state machine, independent of kNN (RepublishLocked gives kNN
    // precedence: a class on both serves from kNN).
    if (alt_ != nullptr) {
      const size_t alt_i = static_cast<size_t>(Backend::kAlt);
      const bool has_alt = state.qerr_n[alt_i] > 0;
      const double alt_q = has_alt ? std::exp(state.qerr_log[alt_i]) : 0.0;
      const bool alt_promotable =
          has_alt && state.qerr_n[pri_i] > 0 &&
          alt_q <= config_.alt_promote_qerr &&
          alt_q * config_.alt_promote_margin <= pri_q;
      const bool alt_demotable =
          !has_alt || alt_q > config_.alt_demote_qerr || alt_q > pri_q;
      if (!state.on_alt) {
        state.alt_promote_streak =
            alt_promotable ? state.alt_promote_streak + 1 : 0;
        if (state.alt_promote_streak >= config_.promote_after) {
          state.on_alt = true;
          state.alt_promote_streak = 0;
          state.alt_demote_streak = 0;
        }
      } else {
        state.alt_demote_streak =
            alt_demotable ? state.alt_demote_streak + 1 : 0;
        if (state.alt_demote_streak >= config_.demote_after) {
          state.on_alt = false;
          state.alt_promote_streak = 0;
          state.alt_demote_streak = 0;
        }
      }
    }
  }

  if (folded > 0) RepublishLocked();
  return folded;
}

size_t HybridRouter::UpdateFromCollector(online::FeedbackCollector* collector) {
  UAE_CHECK(collector != nullptr);
  const std::vector<online::FeedbackEntry> entries = collector->Drain();
  return ObserveFeedback(entries);
}

void HybridRouter::RepublishLocked() {
  auto table = std::make_shared<RoutingTable>();
  table->generation = next_generation_++;
  table->routes.reserve(classes_.size());
  for (const auto& [fss, state] : classes_) {
    ClassRoute route;
    if (state.on_knn) {
      route.backend = Backend::kKnn;
      route.knn = state.ring.Freeze();
      ++table->knn_classes;
    } else if (state.on_alt && alt_ != nullptr) {
      route.backend = Backend::kAlt;
      ++table->alt_classes;
    } else {
      route.backend = Backend::kPrimary;
    }
    table->routes.emplace(fss, std::move(route));
  }
  PublishTable(std::move(table));
}

void HybridRouter::SetAltBackend(
    std::shared_ptr<const core::ServableModel> alt) {
  alt_ = std::move(alt);
}

void HybridRouter::SetLoadProbe(LoadProbe probe) { probe_ = std::move(probe); }

uint64_t HybridRouter::RoutingGeneration() const { return Table()->generation; }

Backend HybridRouter::RouteFor(const workload::Query& query) const {
  if (static_cast<size_t>(query.num_cols()) != domains_.size()) {
    return Backend::kPrimary;
  }
  const QueryClass qc = ClassifyQuery(query, domains_);
  const auto table = Table();
  const auto it = table->routes.find(qc.fss);
  if (it == table->routes.end()) return Backend::kPrimary;
  if (it->second.backend == Backend::kKnn &&
      !it->second.knn.PredictLogCard(qc.features, config_.knn).has_value()) {
    return Backend::kPrimary;
  }
  if (it->second.backend == Backend::kAlt && alt_ == nullptr) {
    return Backend::kPrimary;
  }
  return it->second.backend;
}

RouterStatsSnapshot HybridRouter::RouterStats() const {
  RouterStatsSnapshot snap;
  for (size_t i = 0; i < kNumBackends; ++i) {
    snap.backends[i].requests = served_[i].load(std::memory_order_relaxed);
    snap.backends[i].latency = latency_[i].Snapshot();
    snap.requests += snap.backends[i].requests;
  }
  {
    std::lock_guard<std::mutex> lock(learn_mu_);
    for (size_t i = 0; i < kNumBackends; ++i) {
      snap.backends[i].qerror = util::Summarize(qerr_windows_[i].samples);
    }
    snap.feedback_observed = feedback_observed_;
  }
  const auto table = Table();
  snap.routing_generation = table->generation;
  snap.classes = table->routes.size();
  snap.knn_classes = table->knn_classes;
  snap.alt_classes = table->alt_classes;
  snap.degraded = degraded_.load(std::memory_order_relaxed);
  snap.degraded_requests = degraded_requests_.load(std::memory_order_relaxed);
  snap.degrade_transitions = degrade_transitions_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace uae::router
