// HybridRouter — a core::ServableModel that fronts the estimator zoo with
// per-query-class routing and graceful degradation (ROADMAP item 3).
//
// Three backends always, one more optional, one ladder:
//   * primary — the served deep model (UAE, sharded, quantized — any
//     ServableModel). Default for every class: accurate, milliseconds.
//   * kNN     — an online per-class k-nearest-neighbour regression over
//     recent (literal features, log true cardinality) feedback pairs
//     (router/knn.h, the AQO OkNNr design). Microseconds; classes are
//     promoted onto it only once their rolling kNN q-error proves out.
//   * floor   — a bounded-latency classical estimator (histogram/sampling;
//     any estimators::CardinalityEstimator). Engages per request when the
//     load probe reports an SLO breach: under overload the router degrades
//     to cheap-but-bounded answers instead of stalling the queue.
//   * alt     — an optional second full ServableModel (the query-driven SPN
//     backend: sampling-free single-pass inference). Shadow-evaluated on
//     every feedback entry; a class is promoted onto it when its rolling alt
//     q-error beats the primary's by a margin (and demoted when the edge
//     disappears). kNN outranks alt — a class cheap enough for the
//     microsecond path never pays a model inference at all.
//
// Routing tables are learned ONLINE from the serving feedback stream
// (online::FeedbackCollector): ObserveFeedback() folds drained entries into
// per-class rolling q-error per backend plus the class's kNN point ring, and
// republishes the routing table generation-atomically (same atomic
// shared_ptr hot-swap discipline as serve::SnapshotSlot — readers never
// block, in-flight requests finish on the table they started with).
// Promotion/demotion uses dual thresholds plus consecutive-update streaks so
// classes do not flap.
//
// Determinism caveat: within one routing-table generation and with the load
// probe healthy (or unset), estimates are pure functions of (router state,
// query) like every other servable. The degradation path is intentionally
// load-dependent — bounded latency under overload is the point — so bitwise
// reproducibility is scoped to the non-degraded paths (see
// docs/DETERMINISM.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/servable.h"
#include "estimators/estimator.h"
#include "online/feedback.h"
#include "router/knn.h"
#include "router/query_class.h"
#include "serve/latency.h"
#include "util/quantiles.h"

namespace uae::router {

/// Which backend answered (indices into per-backend stat arrays).
enum class Backend : uint8_t { kPrimary = 0, kKnn = 1, kFloor = 2, kAlt = 3 };
inline constexpr size_t kNumBackends = 4;
const char* BackendName(Backend b);

/// Instantaneous load signal the degradation trigger reads — wired to the
/// serving layer's queue hooks (serve::EstimationService::QueueDepth /
/// OldestQueuedWaitMicros) in a served deployment, or to any custom gauge.
struct RouterLoad {
  size_t queue_depth = 0;       ///< Requests currently queued behind this one.
  uint64_t oldest_wait_us = 0;  ///< How long the oldest queued request waited.
};
using LoadProbe = std::function<RouterLoad()>;

struct RouterConfig {
  KnnConfig knn;

  // ---- Routing-table learning ----------------------------------------------
  /// Hard cap on tracked classes; feedback for classes beyond it is dropped
  /// (bounded memory under adversarial template churn).
  size_t max_classes = 4096;
  /// EMA weight of a new observation in the per-backend rolling log-q-error.
  double qerr_smoothing = 0.25;
  /// A class is promoted onto the kNN fast path when its rolling kNN q-error
  /// is at or below this absolute bar...
  double knn_promote_qerr = 4.0;
  /// ...and within this factor of the primary's rolling q-error (the bounded
  /// accuracy give-up). Classes with no primary feedback use the bar alone.
  double knn_promote_margin = 2.0;
  /// Demotion bar (strictly above the promote bar: the hysteresis gap).
  double knn_demote_qerr = 8.0;
  /// Consecutive routing updates a class must stay eligible / ineligible
  /// before it is promoted / demoted — no flapping on one noisy batch.
  int promote_after = 2;
  int demote_after = 2;

  // ---- Alt backend (only read when SetAltBackend was called) ---------------
  /// A class is promoted onto the alt model when its rolling alt q-error is
  /// at or below this absolute bar...
  double alt_promote_qerr = 4.0;
  /// ...and beats the primary's rolling q-error by this factor
  /// (alt_q * margin <= primary_q): the alt must earn its inference cost
  /// with a real accuracy edge, not a tie.
  double alt_promote_margin = 1.2;
  /// Demotion: the class leaves the alt when its rolling alt q-error climbs
  /// above this absolute bar or above the primary's (edge gone). Promotion /
  /// demotion streaks reuse promote_after / demote_after.
  double alt_demote_qerr = 8.0;

  // ---- Degradation ladder --------------------------------------------------
  /// Queue-depth ceiling; 0 disables the depth trigger.
  size_t queue_depth_limit = 0;
  /// Per-request latency SLO in microseconds, compared against the oldest
  /// queued request's wait; 0 disables the latency trigger.
  uint64_t latency_slo_us = 0;
  /// Consecutive healthy probes required to leave the degraded state
  /// (recovery hysteresis; entry is immediate — a stall must never wait).
  int recover_after = 16;

  // ---- Observability -------------------------------------------------------
  /// Per-backend q-error sample window feeding RouterStats() summaries.
  size_t qerr_window = 1024;
};

/// Per-backend slice of a RouterStats() snapshot.
struct BackendStats {
  uint64_t requests = 0;
  serve::LatencySnapshot latency;   ///< p50/p95/p99/max over served requests.
  util::ErrorSummary qerror;        ///< Over the feedback q-error window.
};

struct RouterStatsSnapshot {
  BackendStats backends[kNumBackends];  ///< Indexed by Backend.
  uint64_t requests = 0;                ///< Sum over backends.
  bool degraded = false;                ///< Currently in the degraded state.
  uint64_t degraded_requests = 0;       ///< Requests the floor absorbed.
  uint64_t degrade_transitions = 0;     ///< Enter/leave state changes.
  uint64_t routing_generation = 0;      ///< Published routing-table version.
  uint64_t feedback_observed = 0;       ///< Feedback entries folded in.
  size_t classes = 0;                   ///< Classes in the published table.
  size_t knn_classes = 0;               ///< ...of which route to kNN.
  size_t alt_classes = 0;               ///< ...of which route to the alt model.
};

class HybridRouter : public core::ServableModel {
 public:
  /// `primary` answers by default and backs FineTune/CloneServable; `floor`
  /// is the bounded-latency degradation backend; `domains[c]` is column c's
  /// dictionary size (feature normalization — see router/query_class.h).
  HybridRouter(std::shared_ptr<core::ServableModel> primary,
               std::shared_ptr<const estimators::CardinalityEstimator> floor,
               std::vector<int32_t> domains, const RouterConfig& config = {});

  // ---- core::ServableModel --------------------------------------------------
  double EstimateCard(const workload::Query& query) const override;
  /// Batched routing: the primary's share goes through its batched fan-out
  /// path; kNN/floor shares are answered directly (they are microsecond
  /// paths). The degradation probe is evaluated once per batch.
  std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const override;
  size_t SizeBytes() const override;
  size_t num_rows() const override { return primary_->num_rows(); }
  uint64_t seed() const override { return primary_->seed(); }
  /// Clones the primary (deep) and shares the immutable floor and alt; the
  /// clone starts from THIS router's current routing table and fresh stats.
  std::shared_ptr<core::ServableModel> CloneServable() const override;
  /// Delegates to the primary backend (the only trainable one).
  size_t FineTune(const workload::Workload& workload,
                  const core::FineTuneSpec& spec) override;

  // ---- Online routing-table learning ---------------------------------------
  /// Folds labeled feedback into the per-class backend statistics and kNN
  /// rings, re-derives per-class routing with hysteresis, and publishes the
  /// new table generation-atomically. Join-tagged entries (join_mask != 0)
  /// are skipped — the router serves single-table traffic. Returns the
  /// number of entries folded in.
  size_t ObserveFeedback(std::span<const online::FeedbackEntry> entries);
  /// Convenience fan-in: Drain()s the collector through ObserveFeedback.
  size_t UpdateFromCollector(online::FeedbackCollector* collector);

  /// Installs the optional alt backend (a second full ServableModel, e.g.
  /// estimators::SpnServable). Like SetLoadProbe, must be wired before
  /// concurrent serving starts; classes are only ever promoted onto the alt
  /// after it is set. Pass nullptr to clear.
  void SetAltBackend(std::shared_ptr<const core::ServableModel> alt);
  /// The installed alt backend, or nullptr.
  std::shared_ptr<const core::ServableModel> alt_backend() const {
    return alt_;
  }

  // ---- Degradation + observability -----------------------------------------
  /// Installs the load signal the degradation trigger reads. Must be wired
  /// before concurrent serving starts (the probe pointer itself is not
  /// hot-swappable; its readings of course are).
  void SetLoadProbe(LoadProbe probe);

  RouterStatsSnapshot RouterStats() const;
  uint64_t RoutingGeneration() const;
  /// The backend the published table currently assigns to `query`'s class
  /// (ignoring degradation) — what a non-breached request would hit.
  Backend RouteFor(const workload::Query& query) const;

 private:
  /// One class's slice of the immutable published table.
  struct ClassRoute {
    Backend backend = Backend::kPrimary;
    ClassKnn knn;  ///< Populated only for kNN-routed classes.
  };
  struct RoutingTable {
    uint64_t generation = 0;
    std::unordered_map<uint64_t, ClassRoute> routes;
    size_t knn_classes = 0;
    size_t alt_classes = 0;
  };

  /// Learner-side mutable per-class state (guarded by learn_mu_).
  struct ClassState {
    KnnRing ring;
    // Rolling log-q-error EMA + sample count, one per backend.
    double qerr_log[kNumBackends] = {};
    uint64_t qerr_n[kNumBackends] = {};
    bool on_knn = false;
    int promote_streak = 0;
    int demote_streak = 0;
    // Alt-backend state machine (independent of the kNN one; kNN outranks).
    bool on_alt = false;
    int alt_promote_streak = 0;
    int alt_demote_streak = 0;
    explicit ClassState(size_t capacity) : ring(capacity) {}
  };

  std::shared_ptr<const RoutingTable> Table() const;
  void PublishTable(std::shared_ptr<const RoutingTable> table);
  /// Rebuilds the immutable table from learner state; caller holds learn_mu_.
  void RepublishLocked();
  /// Evaluates the degradation state machine against one probe reading.
  bool CheckDegraded() const;
  double EstimateVia(Backend backend, const workload::Query& query,
                     const QueryClass& qc, const ClassRoute* route) const;
  void RecordServed(Backend backend, uint64_t micros) const;

  const std::shared_ptr<core::ServableModel> primary_;
  const std::shared_ptr<const estimators::CardinalityEstimator> floor_;
  /// Optional second model backend; immutable once serving starts (wired via
  /// SetAltBackend like the probe).
  std::shared_ptr<const core::ServableModel> alt_;
  const std::vector<int32_t> domains_;
  const RouterConfig config_;

  // Published routing table (atomic shared_ptr; TSan builds fall back to a
  // mutex-guarded slot like serve::SnapshotSlot — same semantics).
#if defined(__SANITIZE_THREAD__)
#define UAE_ROUTER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define UAE_ROUTER_TSAN 1
#endif
#endif
#ifdef UAE_ROUTER_TSAN
  mutable std::mutex table_mu_;
  std::shared_ptr<const RoutingTable> table_;
#else
  std::atomic<std::shared_ptr<const RoutingTable>> table_;
#endif

  LoadProbe probe_;  ///< Unset => degradation disabled.

  // Learner state.
  mutable std::mutex learn_mu_;
  std::unordered_map<uint64_t, ClassState> classes_;
  uint64_t next_generation_ = 2;  ///< Generation 1 is the empty initial table.
  uint64_t feedback_observed_ = 0;

  // Degradation state machine (request-path side; atomics only).
  mutable std::atomic<bool> degraded_{false};
  mutable std::atomic<int> healthy_streak_{0};
  mutable std::atomic<uint64_t> degrade_transitions_{0};
  mutable std::atomic<uint64_t> degraded_requests_{0};

  // Per-backend serving stats.
  mutable std::atomic<uint64_t> served_[kNumBackends] = {};
  mutable serve::LatencyHistogram latency_[kNumBackends];

  // Per-backend q-error sample windows (feedback side; guarded by learn_mu_).
  struct QerrWindow {
    std::vector<double> samples;
    size_t next = 0;
    void Add(double q, size_t cap);
  };
  QerrWindow qerr_windows_[kNumBackends];
};

}  // namespace uae::router
