#include "router/query_class.h"

#include <algorithm>

#include "util/common.h"
#include "util/mathutil.h"

namespace uae::router {

namespace {

uint64_t Mix(uint64_t h, uint64_t v) {
  return util::SplitMix64(h ^ (v + 0x9e3779b97f4a7c15ull));
}

}  // namespace

uint64_t QueryFss(const workload::Query& query) {
  uint64_t h = Mix(0xF55ull, static_cast<uint64_t>(query.num_cols()));
  for (int c = 0; c < query.num_cols(); ++c) {
    const workload::Constraint& cons = query.constraint(c);
    if (!cons.IsActive()) continue;
    h = Mix(h, static_cast<uint64_t>(c));
    h = Mix(h, static_cast<uint64_t>(cons.kind));
    // kIn templates with different set sizes behave differently enough
    // (selectivity scales with the set) that they make poor classmates; the
    // set size is the only literal-adjacent value folded into the hash.
    if (cons.kind == workload::Constraint::Kind::kIn) {
      h = Mix(h, cons.in_codes.size());
    }
  }
  return h;
}

QueryClass ClassifyQuery(const workload::Query& query,
                         std::span<const int32_t> domains) {
  UAE_CHECK_EQ(static_cast<size_t>(query.num_cols()), domains.size());
  QueryClass qc;
  qc.fss = QueryFss(query);
  for (int c = 0; c < query.num_cols(); ++c) {
    const workload::Constraint& cons = query.constraint(c);
    if (!cons.IsActive()) continue;
    const int32_t domain = std::max<int32_t>(1, domains[static_cast<size_t>(c)]);
    int32_t lowest = 0;
    switch (cons.kind) {
      case workload::Constraint::Kind::kNone:
        break;
      case workload::Constraint::Kind::kRange:
        lowest = cons.lo;
        break;
      case workload::Constraint::Kind::kNotEqual:
        lowest = cons.neq;
        break;
      case workload::Constraint::Kind::kIn:
        lowest = cons.in_codes.empty() ? 0 : cons.in_codes.front();
        break;
    }
    const double frac_allowed =
        static_cast<double>(cons.AllowedCount(domain)) / domain;
    qc.features.push_back(static_cast<float>(
        static_cast<double>(std::clamp<int32_t>(lowest, 0, domain)) / domain));
    qc.features.push_back(static_cast<float>(frac_allowed));
  }
  return qc;
}

}  // namespace uae::router
