#include "router/knn.h"

#include <algorithm>
#include <utility>

namespace uae::router {

ClassKnn::ClassKnn(std::vector<float> features, std::vector<double> log_cards,
                   size_t dim)
    : features_(std::move(features)),
      log_cards_(std::move(log_cards)),
      dim_(dim) {
  UAE_CHECK_EQ(features_.size(), log_cards_.size() * dim_);
}

std::optional<double> ClassKnn::PredictLogCard(std::span<const float> features,
                                               const KnnConfig& config) const {
  const size_t n = log_cards_.size();
  if (n < config.min_points || features.size() != dim_) return std::nullopt;

  // (squared distance, slot) pairs; partial-sort the k nearest. Slot index
  // breaks distance ties so predictions are deterministic.
  std::vector<std::pair<double, size_t>> dist;
  dist.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const float* p = &features_[i * dim_];
    double d2 = 0.0;
    for (size_t j = 0; j < dim_; ++j) {
      const double d = static_cast<double>(p[j]) - features[j];
      d2 += d * d;
    }
    dist.emplace_back(d2, i);
  }
  const size_t k = std::min<size_t>(static_cast<size_t>(std::max(1, config.k)), n);
  std::partial_sort(dist.begin(), dist.begin() + static_cast<ptrdiff_t>(k),
                    dist.end());

  double weight_total = 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (dist[i].first + config.eps);
    weight_total += w;
    acc += w * log_cards_[dist[i].second];
  }
  return acc / weight_total;
}

void KnnRing::Add(std::span<const float> features, double log_card) {
  if (count_ == 0 && dim_ == 0) {
    dim_ = features.size();
    features_.reserve(capacity_ * dim_);
    log_cards_.reserve(capacity_);
  }
  if (features.size() != dim_ || dim_ == 0) return;  // Shape mismatch: drop.
  if (count_ < capacity_) {
    features_.insert(features_.end(), features.begin(), features.end());
    log_cards_.push_back(log_card);
    ++count_;
    return;
  }
  std::copy(features.begin(), features.end(), features_.begin() +
                                                  static_cast<ptrdiff_t>(next_ * dim_));
  log_cards_[next_] = log_card;
  next_ = (next_ + 1) % capacity_;
}

ClassKnn KnnRing::Freeze() const { return ClassKnn(features_, log_cards_, dim_); }

}  // namespace uae::router
