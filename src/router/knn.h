// Online k-nearest-neighbour regression over recent (features, log true
// cardinality) pairs — the router's microsecond fast path for hot repeated
// query classes, after the OkNNr design of the AQO line of work: per class,
// keep the newest `capacity` labeled points and answer a query as the
// distance-weighted average of its k nearest neighbours in literal-feature
// space. Exact repeats (distance 0) recall their observed cardinality; near
// repeats interpolate.
//
// Split mutable/immutable: the router's learner appends into a KnnRing
// (single-writer, guarded by the learner's mutex), and each routing-table
// publish freezes the ring into a ClassKnn snapshot that the serving path
// reads lock-free. Predictions are deterministic: ties in distance break by
// ring slot index.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/common.h"

namespace uae::router {

struct KnnConfig {
  size_t capacity = 64;  ///< Labeled points kept per class (ring overwrite).
  int k = 4;             ///< Neighbours consulted per prediction.
  size_t min_points = 4; ///< Predict() refuses until the class has this many.
  double eps = 1e-6;     ///< Distance smoothing: weight = 1 / (d^2 + eps).
};

/// Immutable per-class point set, readable concurrently without locks.
class ClassKnn {
 public:
  ClassKnn() = default;
  ClassKnn(std::vector<float> features, std::vector<double> log_cards,
           size_t dim);

  /// Distance-weighted k-NN estimate of log(card) at `features`, or nullopt
  /// while the class has fewer than `config.min_points` points (or a
  /// dimensionality mismatch — a stale snapshot answering a reshaped class).
  std::optional<double> PredictLogCard(std::span<const float> features,
                                       const KnnConfig& config) const;

  size_t size() const { return log_cards_.size(); }
  size_t dim() const { return dim_; }

 private:
  std::vector<float> features_;   ///< size() x dim_, row-major.
  std::vector<double> log_cards_;
  size_t dim_ = 0;
};

/// Mutable fixed-capacity point ring (newest overwrite oldest) the learner
/// folds feedback into. Not thread-safe; the owner serializes access.
class KnnRing {
 public:
  explicit KnnRing(size_t capacity = 64) : capacity_(capacity) {
    UAE_CHECK_GT(capacity_, 0u);
  }

  /// Appends one labeled point. The first point fixes the dimensionality;
  /// later mismatches are dropped (defensive — one class hash implies one
  /// feature shape by construction).
  void Add(std::span<const float> features, double log_card);

  /// Freezes the current contents into an immutable snapshot.
  ClassKnn Freeze() const;

  size_t size() const { return count_; }

 private:
  size_t capacity_;
  size_t dim_ = 0;
  size_t next_ = 0;   ///< Ring slot the next Add overwrites once full.
  size_t count_ = 0;  ///< min(points added, capacity).
  std::vector<float> features_;
  std::vector<double> log_cards_;
};

}  // namespace uae::router
