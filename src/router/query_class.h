// Query classification for the hybrid estimator router.
//
// Every single-table query is mapped to a feature-subspace class (the AQO
// "fss" idiom, same canonical-fold style as optimizer::SubplanFss): the class
// hash covers the query's STRUCTURE — which columns are constrained and with
// what constraint kind — while the literals become a small numeric feature
// vector. Queries from one template ("WHERE a BETWEEN ? AND ? AND c = ?")
// therefore share a class no matter the literal values, which is exactly the
// granularity the router learns routing decisions and kNN models at: a hot
// repeated template is one class with many (features, true card) points.
//
// Canonicality: workload::Query stores ONE intersected constraint per column
// (kIn code lists kept sorted), and the fold walks columns in ascending
// order, so semantically equal queries hash identically regardless of the
// order predicates were added in.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "workload/query.h"

namespace uae::router {

/// Canonical structure hash of a query: number of columns, plus (column,
/// constraint kind) for every active constraint, folded in ascending column
/// order. Literal values do NOT contribute — they are features, not class
/// identity.
uint64_t QueryFss(const workload::Query& query);

/// A classified query: the class hash plus the literal features the in-class
/// kNN predicts from. Two features per active constraint, in ascending column
/// order (the structure hash fixes which columns are active, so every query
/// of a class has the same feature dimensionality):
///   f0 = normalized position of the constraint's lowest allowed code,
///   f1 = allowed fraction of the domain (the AVI selectivity of the clause).
struct QueryClass {
  uint64_t fss = 0;
  std::vector<float> features;
};

/// Classifies `query` against per-column dictionary domains (`domains[c]` is
/// column c's dictionary size; see data::Table). Deterministic and cheap —
/// one pass over the constraint slots, no model evaluation.
QueryClass ClassifyQuery(const workload::Query& query,
                         std::span<const int32_t> domains);

}  // namespace uae::router
