#include "data/column.h"

#include <algorithm>

namespace uae::data {

Column Column::FromValues(std::string name, const std::vector<Value>& values) {
  Column col;
  col.name_ = std::move(name);
  col.dict_ = values;
  std::sort(col.dict_.begin(), col.dict_.end());
  col.dict_.erase(std::unique(col.dict_.begin(), col.dict_.end()), col.dict_.end());
  col.codes_.reserve(values.size());
  for (const auto& v : values) {
    auto it = std::lower_bound(col.dict_.begin(), col.dict_.end(), v);
    col.codes_.push_back(static_cast<int32_t>(it - col.dict_.begin()));
  }
  return col;
}

Column Column::FromInts(std::string name, const std::vector<int64_t>& values) {
  std::vector<int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  Column col;
  col.name_ = std::move(name);
  col.dict_.reserve(sorted.size());
  for (int64_t v : sorted) col.dict_.emplace_back(v);
  col.codes_.reserve(values.size());
  for (int64_t v : values) {
    auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
    col.codes_.push_back(static_cast<int32_t>(it - sorted.begin()));
  }
  return col;
}

Column Column::FromCodes(std::string name, std::vector<int32_t> codes, int32_t domain) {
  Column col;
  col.name_ = std::move(name);
  col.dict_.reserve(static_cast<size_t>(domain));
  for (int32_t c = 0; c < domain; ++c) col.dict_.emplace_back(static_cast<int64_t>(c));
#ifndef NDEBUG
  for (int32_t c : codes) UAE_DCHECK(c >= 0 && c < domain);
#endif
  col.codes_ = std::move(codes);
  return col;
}

std::optional<int32_t> Column::CodeForValue(const Value& v) const {
  auto it = std::lower_bound(dict_.begin(), dict_.end(), v);
  if (it == dict_.end() || !(*it == v)) return std::nullopt;
  return static_cast<int32_t>(it - dict_.begin());
}

int32_t Column::LowerBoundCode(const Value& v) const {
  auto it = std::lower_bound(dict_.begin(), dict_.end(), v);
  return static_cast<int32_t>(it - dict_.begin());
}

int32_t Column::UpperBoundCode(const Value& v) const {
  auto it = std::upper_bound(dict_.begin(), dict_.end(), v);
  return static_cast<int32_t>(it - dict_.begin());
}

Column Column::Gather(std::span<const size_t> rows) const {
  Column out;
  out.name_ = name_;
  out.dict_ = dict_;
  out.codes_.reserve(rows.size());
  for (size_t r : rows) {
    UAE_DCHECK(r < codes_.size());
    out.codes_.push_back(codes_[r]);
  }
  return out;
}

const std::vector<int64_t>& Column::Frequencies() const {
  if (freq_dirty_) {
    freq_.assign(dict_.size(), 0);
    for (int32_t c : codes_) ++freq_[static_cast<size_t>(c)];
    freq_dirty_ = false;
  }
  return freq_;
}

}  // namespace uae::data
