#include "data/column.h"

#include <algorithm>

namespace uae::data {

Column::~Column() { delete delta_.load(std::memory_order_relaxed); }

void Column::CopyFrom(const Column& other) {
  name_ = other.name_;
  dict_ = other.dict_;
  codes_ = other.codes_;
  freq_ = other.freq_;
  freq_dirty_ = other.freq_dirty_;
  freq_rows_ = other.freq_rows_;
  // Snapshot-copy the delta state: published elements of a live store are
  // immutable, so copying up to the published counts is safe even while
  // `other`'s single writer keeps appending.
  delete delta_.load(std::memory_order_relaxed);
  delta_.store(nullptr, std::memory_order_relaxed);
  const DeltaState* src = other.delta_state();
  if (src != nullptr) {
    const size_t n_codes = src->codes.size();
    const size_t n_over = src->overflow.size();
    if (n_codes > 0 || n_over > 0) {
      auto* mine = new DeltaState();
      mine->codes.CopySnapshotFrom(src->codes, n_codes);
      mine->overflow.CopySnapshotFrom(src->overflow, n_over);
      delta_.store(mine, std::memory_order_release);
    }
  }
}

Column::Column(const Column& other) { CopyFrom(other); }

Column& Column::operator=(const Column& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

Column::Column(Column&& other) noexcept
    : name_(std::move(other.name_)),
      dict_(std::move(other.dict_)),
      codes_(std::move(other.codes_)),
      delta_(other.delta_.exchange(nullptr, std::memory_order_acq_rel)),
      freq_(std::move(other.freq_)),
      freq_dirty_(other.freq_dirty_),
      freq_rows_(other.freq_rows_) {}

Column& Column::operator=(Column&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    dict_ = std::move(other.dict_);
    codes_ = std::move(other.codes_);
    delete delta_.load(std::memory_order_relaxed);
    delta_.store(other.delta_.exchange(nullptr, std::memory_order_acq_rel),
                 std::memory_order_release);
    freq_ = std::move(other.freq_);
    freq_dirty_ = other.freq_dirty_;
    freq_rows_ = other.freq_rows_;
  }
  return *this;
}

Column Column::FromValues(std::string name, const std::vector<Value>& values) {
  Column col;
  col.name_ = std::move(name);
  col.dict_ = values;
  std::sort(col.dict_.begin(), col.dict_.end());
  col.dict_.erase(std::unique(col.dict_.begin(), col.dict_.end()), col.dict_.end());
  col.codes_.reserve(values.size());
  for (const auto& v : values) {
    auto it = std::lower_bound(col.dict_.begin(), col.dict_.end(), v);
    col.codes_.push_back(static_cast<int32_t>(it - col.dict_.begin()));
  }
  return col;
}

Column Column::FromInts(std::string name, const std::vector<int64_t>& values) {
  std::vector<int64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  Column col;
  col.name_ = std::move(name);
  col.dict_.reserve(sorted.size());
  for (int64_t v : sorted) col.dict_.emplace_back(v);
  col.codes_.reserve(values.size());
  for (int64_t v : values) {
    auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
    col.codes_.push_back(static_cast<int32_t>(it - sorted.begin()));
  }
  return col;
}

Column Column::FromCodes(std::string name, std::vector<int32_t> codes, int32_t domain) {
  Column col;
  col.name_ = std::move(name);
  col.dict_.reserve(static_cast<size_t>(domain));
  for (int32_t c = 0; c < domain; ++c) col.dict_.emplace_back(static_cast<int64_t>(c));
#ifndef NDEBUG
  for (int32_t c : codes) UAE_DCHECK(c >= 0 && c < domain);
#endif
  col.codes_ = std::move(codes);
  return col;
}

size_t Column::delta_rows() const {
  const DeltaState* d = delta_state();
  return d == nullptr ? 0 : d->codes.size();
}

int32_t Column::overflow_size() const {
  const DeltaState* d = delta_state();
  return d == nullptr ? 0 : static_cast<int32_t>(d->overflow.size());
}

int32_t Column::DeltaCodeAt(size_t delta_row) const {
  const DeltaState* d = delta_state();
  UAE_DCHECK(d != nullptr && delta_row < d->codes.size());
  return d->codes.at(delta_row);
}

const Value& Column::OverflowValue(int32_t code) const {
  const DeltaState* d = delta_state();
  UAE_DCHECK(d != nullptr);
  UAE_DCHECK(code >= domain() && code < total_domain());
  return d->overflow.at(static_cast<size_t>(code - domain()));
}

Column::DeltaState& Column::EnsureDelta() {
  DeltaState* d = delta_.load(std::memory_order_relaxed);
  if (d == nullptr) {
    d = new DeltaState();
    delta_.store(d, std::memory_order_release);
  }
  return *d;
}

std::optional<int32_t> Column::CodeForValue(const Value& v) const {
  auto it = std::lower_bound(dict_.begin(), dict_.end(), v);
  if (it != dict_.end() && *it == v) {
    return static_cast<int32_t>(it - dict_.begin());
  }
  // Overflow dictionary: arrival-ordered, linear scan (it stays small — the
  // compactor bounds the delta region, and most appended values are seen).
  const DeltaState* d = delta_state();
  if (d != nullptr) {
    const size_t n = d->overflow.size();
    for (size_t i = 0; i < n; ++i) {
      if (d->overflow.at(i) == v) {
        return domain() + static_cast<int32_t>(i);
      }
    }
  }
  return std::nullopt;
}

int32_t Column::LowerBoundCode(const Value& v) const {
  auto it = std::lower_bound(dict_.begin(), dict_.end(), v);
  return static_cast<int32_t>(it - dict_.begin());
}

int32_t Column::UpperBoundCode(const Value& v) const {
  auto it = std::upper_bound(dict_.begin(), dict_.end(), v);
  return static_cast<int32_t>(it - dict_.begin());
}

int32_t Column::CodeForAppend(const Value& v) {
  if (std::optional<int32_t> code = CodeForValue(v)) return *code;
  DeltaState& d = EnsureDelta();
  const int32_t code = domain() + static_cast<int32_t>(d.overflow.size());
  d.overflow.Append(v);
  return code;
}

void Column::AppendDeltaCode(int32_t code) {
  UAE_DCHECK(code >= 0 && code < total_domain());
  EnsureDelta().codes.Append(code);
}

size_t Column::FoldDelta() {
  DeltaState* d = delta_.load(std::memory_order_relaxed);
  if (d == nullptr) return 0;
  const size_t n = d->codes.size();
  codes_.reserve(codes_.size() + n);
  for (size_t i = 0; i < n; ++i) codes_.push_back(d->codes.at(i));
  d->codes.Clear();
  freq_dirty_ = true;
  return n;
}

Column Column::Gather(std::span<const size_t> rows) const {
  Column out;
  out.name_ = name_;
  out.dict_ = dict_;
  [[maybe_unused]] const size_t limit = num_rows();
  out.codes_.reserve(rows.size());
  for (size_t r : rows) {
    UAE_DCHECK(r < limit);
    out.codes_.push_back(code_at(r));
  }
  // Share the overflow dictionary (snapshot): gathered codes above the frozen
  // domain keep decoding to their values in the gathered column.
  const DeltaState* d = delta_state();
  if (d != nullptr && d->overflow.size() > 0) {
    auto* mine = new DeltaState();
    mine->overflow.CopySnapshotFrom(d->overflow, d->overflow.size());
    out.delta_.store(mine, std::memory_order_release);
  }
  return out;
}

const std::vector<int64_t>& Column::Frequencies() const {
  const size_t live_rows = num_rows();
  const size_t dom = static_cast<size_t>(total_domain());
  if (freq_dirty_ || freq_rows_ != live_rows || freq_.size() != dom) {
    freq_.assign(dom, 0);
    for (int32_t c : codes_) ++freq_[static_cast<size_t>(c)];
    const size_t n_delta = live_rows - codes_.size();
    for (size_t i = 0; i < n_delta; ++i) {
      ++freq_[static_cast<size_t>(DeltaCodeAt(i))];
    }
    freq_dirty_ = false;
    freq_rows_ = live_rows;
  }
  return freq_;
}

}  // namespace uae::data
