#include "data/stats.h"

#include <algorithm>

#include "util/mathutil.h"
#include "util/string_util.h"

namespace uae::data {

DatasetStats ComputeStats(const Table& table, int max_pairs) {
  DatasetStats s;
  s.rows = table.num_rows();
  s.cols = table.num_cols();
  s.min_domain = table.column(0).domain();
  s.max_domain = table.column(0).domain();
  double skew_total = 0.0;
  int skew_count = 0;
  for (int i = 0; i < table.num_cols(); ++i) {
    const Column& c = table.column(i);
    s.min_domain = std::min(s.min_domain, c.domain());
    s.max_domain = std::max(s.max_domain, c.domain());
    // Skewness of the row-value distribution, computed on codes (the paper's
    // statistic is over column values; codes are order-preserving).
    std::vector<double> vals(c.codes().begin(), c.codes().end());
    if (c.domain() > 2) {
      skew_total += std::abs(util::Skewness(vals));
      ++skew_count;
    }
  }
  s.skewness = skew_count > 0 ? skew_total / skew_count : 0.0;

  // Pairwise NMI over up to max_pairs adjacent-ish pairs.
  double corr_total = 0.0;
  int corr_count = 0;
  for (int i = 0; i < table.num_cols() && corr_count < max_pairs; ++i) {
    for (int j = i + 1; j < table.num_cols() && corr_count < max_pairs; ++j) {
      corr_total += util::NormalizedMutualInformation(
          table.column(i).codes(), table.column(i).domain(), table.column(j).codes(),
          table.column(j).domain());
      ++corr_count;
    }
  }
  s.correlation = corr_count > 0 ? corr_total / corr_count : 0.0;
  return s;
}

std::string FormatStats(const DatasetStats& s) {
  return util::StrFormat(
      "rows=%zu cols=%d domains=[%d,%d] skew=%.2f corr(NMI)=%.3f", s.rows, s.cols,
      s.min_domain, s.max_domain, s.skewness, s.correlation);
}

}  // namespace uae::data
