// Synthetic dataset generators standing in for the paper's real datasets
// (DMV, Census, Kddcup98 — §5.1.1). Each generator matches its original's
// column count, domain-size ladder, skewness regime and correlation
// structure; see DESIGN.md §2 for the substitution rationale.
#pragma once

#include <cstdint>

#include "data/table.h"
#include "util/rng.h"

namespace uae::data {

/// DMV analog: 11 columns, domains 2..1000, strong Zipf skew and strong
/// functional correlations (paper: skew 4.9, NCIE 0.23).
Table SyntheticDmv(size_t rows, uint64_t seed);

/// Census analog: 14 columns, domains 2..123, mild skew / weak correlation
/// (paper: skew 2.1, NCIE 0.15). Default scale matches the original 48K rows.
Table SyntheticCensus(size_t rows, uint64_t seed);

/// Kddcup98 analog: 100 columns, domains 2..43, clustered correlations with
/// many mutually independent groups (paper: skew 4.7, NCIE 0.32).
Table SyntheticKdd(size_t rows, uint64_t seed);

/// A tiny strongly-correlated 3-column table used by unit tests and the
/// quickstart example (deterministic joint distribution).
Table TinyCorrelated(size_t rows, uint64_t seed);

}  // namespace uae::data
