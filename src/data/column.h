// Dictionary-encoded column with an *order-preserving* dictionary: code order
// equals value order, so range predicates on values become code intervals.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/value.h"
#include "util/common.h"

namespace uae::data {

class Column {
 public:
  Column() = default;
  /// Builds the sorted dictionary from raw values and encodes every row.
  static Column FromValues(std::string name, const std::vector<Value>& values);
  /// Fast path for integer data: dictionary = sorted distinct ints.
  static Column FromInts(std::string name, const std::vector<int64_t>& values);
  /// Builds a column directly from codes with an implicit dictionary 0..domain-1
  /// (codes *are* the values). Used by synthetic generators.
  static Column FromCodes(std::string name, std::vector<int32_t> codes, int32_t domain);

  const std::string& name() const { return name_; }
  size_t num_rows() const { return codes_.size(); }
  int32_t domain() const { return static_cast<int32_t>(dict_.size()); }
  const std::vector<int32_t>& codes() const { return codes_; }
  int32_t code_at(size_t row) const { return codes_[row]; }

  const Value& ValueForCode(int32_t code) const {
    UAE_DCHECK(code >= 0 && code < domain());
    return dict_[static_cast<size_t>(code)];
  }

  /// Exact code for a value, if present.
  std::optional<int32_t> CodeForValue(const Value& v) const;
  /// Smallest code whose value is >= v (== domain() if none).
  int32_t LowerBoundCode(const Value& v) const;
  /// Smallest code whose value is > v (== domain() if none).
  int32_t UpperBoundCode(const Value& v) const;

  /// Per-code frequencies (lazily computed, cached).
  const std::vector<int64_t>& Frequencies() const;

  /// A new column over the selected rows (in the given order) sharing this
  /// column's *full* dictionary, so codes — and therefore compiled query
  /// constraints — mean the same thing in the gathered column even for values
  /// that no selected row carries. This is what horizontal partitioning needs:
  /// every shard answers queries in the global code space.
  Column Gather(std::span<const size_t> rows) const;

  void AppendCode(int32_t code) {
    UAE_DCHECK(code >= 0 && code < domain());
    codes_.push_back(code);
    freq_dirty_ = true;
  }

 private:
  std::string name_;
  std::vector<Value> dict_;  // Sorted ascending.
  std::vector<int32_t> codes_;
  mutable std::vector<int64_t> freq_;
  mutable bool freq_dirty_ = true;
};

}  // namespace uae::data
