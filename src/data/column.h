// Dictionary-encoded column with an *order-preserving* dictionary: code order
// equals value order, so range predicates on values become code intervals.
//
// Streaming ingest adds two regions on top of the frozen base:
//
//   * Delta region — appended row codes live in a block-stable append-only
//     store (data/append_store.h): one external writer (the ingest apply
//     thread) appends, readers index lock-free below the published count.
//     code_at()/num_rows() span base + delta; FoldDelta() (the compactor,
//     under exclusive access) moves delta codes into the base vector.
//   * Overflow dictionary — values never seen at freeze time get stable codes
//     ABOVE the frozen domain() in arrival order. Codes are never remapped:
//     compiled queries and trained models keep meaning the same thing while
//     rows stream in. Overflow codes are NOT order-preserving (equality/IN
//     predicates resolve them exactly; range predicates over them need the
//     value-aware matching in ingest/delta_model).
//
// Thread-safety: appends (AppendDeltaCode / CodeForAppend) are single-writer;
// dictionary lookups and code_at() below a published num_rows() are safe
// concurrently with that writer. FoldDelta() and Frequencies() require
// quiescence (no concurrent readers of rows / no concurrent writer) — the
// ingest layer serializes them behind its table lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/append_store.h"
#include "data/value.h"
#include "util/common.h"

namespace uae::data {

class Column {
 public:
  Column() = default;
  ~Column();
  Column(const Column& other);
  Column& operator=(const Column& other);
  Column(Column&& other) noexcept;
  Column& operator=(Column&& other) noexcept;

  /// Builds the sorted dictionary from raw values and encodes every row.
  static Column FromValues(std::string name, const std::vector<Value>& values);
  /// Fast path for integer data: dictionary = sorted distinct ints.
  static Column FromInts(std::string name, const std::vector<int64_t>& values);
  /// Builds a column directly from codes with an implicit dictionary 0..domain-1
  /// (codes *are* the values). Used by synthetic generators.
  static Column FromCodes(std::string name, std::vector<int32_t> codes, int32_t domain);

  const std::string& name() const { return name_; }
  /// Live row count: base + published delta rows. Under concurrent ingest a
  /// column's count may transiently lead the owning Table's num_rows() (the
  /// table publishes a row only after every column appended); the table's
  /// count is the authoritative bound for row scans.
  size_t num_rows() const { return codes_.size() + delta_rows(); }
  size_t base_rows() const { return codes_.size(); }
  size_t delta_rows() const;

  /// The frozen, order-preserving dictionary size. Codes in [0, domain()) are
  /// value-ordered; trained models and shard maps are built over this space.
  int32_t domain() const { return static_cast<int32_t>(dict_.size()); }
  /// Frozen domain + overflow values: every code ever handed out is below
  /// this. Monotone under ingest, never remapped.
  int32_t total_domain() const { return domain() + overflow_size(); }
  int32_t overflow_size() const;

  /// Base-region codes only (training-time API; delta rows via code_at()).
  const std::vector<int32_t>& codes() const { return codes_; }
  int32_t code_at(size_t row) const {
    return row < codes_.size() ? codes_[row]
                               : DeltaCodeAt(row - codes_.size());
  }

  /// Value for any code ever handed out, including overflow codes.
  const Value& ValueForCode(int32_t code) const {
    if (code >= 0 && code < domain()) return dict_[static_cast<size_t>(code)];
    return OverflowValue(code);
  }

  /// Exact code for a value, if present — checks the frozen dictionary first,
  /// then the overflow dictionary (so a query literal naming a streamed-in
  /// value compiles without any dictionary rebuild).
  std::optional<int32_t> CodeForValue(const Value& v) const;
  /// Smallest code whose value is >= v (== domain() if none). Frozen
  /// dictionary only: overflow codes carry no order.
  int32_t LowerBoundCode(const Value& v) const;
  /// Smallest code whose value is > v (== domain() if none).
  int32_t UpperBoundCode(const Value& v) const;

  /// Code for an appended value: the frozen code if the value is known, the
  /// existing overflow code if it streamed in before, or a freshly assigned
  /// stable code above the frozen domain. Single-writer (the ingest apply
  /// thread); concurrent readers may race CodeForValue safely.
  int32_t CodeForAppend(const Value& v);

  /// Per-code frequencies over all live rows, sized total_domain().
  /// Lazily computed and cached; requires quiescence (no concurrent writer).
  const std::vector<int64_t>& Frequencies() const;

  /// A new column over the selected rows (in the given order) sharing this
  /// column's *full* dictionary — frozen and overflow — so codes, and
  /// therefore compiled query constraints, mean the same thing in the
  /// gathered column even for values that no selected row carries. This is
  /// what horizontal partitioning needs: every shard answers queries in the
  /// global code space. Rows may point into the delta region; the gathered
  /// column materializes them into its base region (a snapshot).
  Column Gather(std::span<const size_t> rows) const;

  /// Base-region append (bulk loading). Must not be mixed with an open delta
  /// region — appended rows would jump the queue ahead of delta rows.
  void AppendCode(int32_t code) {
    UAE_DCHECK(code >= 0 && code < total_domain());
    UAE_DCHECK(delta_rows() == 0);
    codes_.push_back(code);
    freq_dirty_ = true;
  }

  /// Delta-region append: publishes the code before returning. Single-writer.
  void AppendDeltaCode(int32_t code);

  /// Moves every published delta code into the base region, preserving row
  /// order (row indices are unchanged: delta row k becomes base row
  /// base_rows()+k). Requires exclusive access. Returns rows folded.
  size_t FoldDelta();

 private:
  /// Delta-region state, allocated on first streaming append so static
  /// columns pay nothing. The pointer is atomic: readers may race the
  /// writer's first append.
  struct DeltaState {
    /// Appended row codes (single writer, lock-free readers).
    AppendOnlyStore<int32_t, 4096, 4096> codes;
    /// Arrival-ordered unseen values; overflow code = domain() + index.
    AppendOnlyStore<Value, 256, 256> overflow;
  };

  DeltaState* delta_state() const {
    return delta_.load(std::memory_order_acquire);
  }
  DeltaState& EnsureDelta();  ///< Single-writer.
  int32_t DeltaCodeAt(size_t delta_row) const;
  const Value& OverflowValue(int32_t code) const;
  void CopyFrom(const Column& other);

  std::string name_;
  std::vector<Value> dict_;  // Sorted ascending; frozen at build time.
  std::vector<int32_t> codes_;
  std::atomic<DeltaState*> delta_{nullptr};
  mutable std::vector<int64_t> freq_;
  mutable bool freq_dirty_ = true;
  mutable size_t freq_rows_ = 0;  ///< Rows counted when freq_ was cached.
};

}  // namespace uae::data
