#include "data/synthetic.h"

#include <algorithm>
#include <cmath>

namespace uae::data {

namespace {

/// Derives a child code correlated with `parent`: an affine map over the child
/// domain plus Zipf noise applied with probability `noise_p`. Produces strong
/// but non-deterministic dependence.
int32_t Derive(int32_t parent, int32_t parent_domain, int32_t child_domain,
               double noise_p, util::Rng* rng) {
  int64_t mapped =
      static_cast<int64_t>(parent) * child_domain / std::max(1, parent_domain);
  if (rng->Bernoulli(noise_p)) {
    int64_t jitter = rng->Zipf(child_domain, 1.1);
    mapped = (mapped + jitter) % child_domain;
  }
  return static_cast<int32_t>(std::clamp<int64_t>(mapped, 0, child_domain - 1));
}

}  // namespace

Table SyntheticDmv(size_t rows, uint64_t seed) {
  util::Rng rng(seed);
  const int32_t kYearDom = 1000, kWeightDom = 256, kCountyDom = 64, kColorDom = 32,
                kBodyDom = 16, kStateDom = 9, kClassDom = 5, kFuelDom = 3;
  std::vector<int32_t> record_type(rows), reg_class(rows), state(rows), county(rows),
      body_type(rows), fuel_type(rows), color(rows), scofflaw(rows), suspended(rows),
      weight(rows), model_year(rows);
  for (size_t i = 0; i < rows; ++i) {
    // Root draws: heavy Zipf skew as in the real DMV registration data.
    int32_t year = static_cast<int32_t>(rng.Zipf(kYearDom, 1.15));
    int32_t cty = static_cast<int32_t>(rng.Zipf(kCountyDom, 1.2));
    model_year[i] = year;
    county[i] = cty;
    state[i] = static_cast<int32_t>(rng.Zipf(kStateDom, 1.6));
    // Correlated chain: year -> weight -> body -> class -> record type.
    weight[i] = Derive(year, kYearDom, kWeightDom, 0.25, &rng);
    body_type[i] = Derive(weight[i], kWeightDom, kBodyDom, 0.2, &rng);
    reg_class[i] = Derive(body_type[i], kBodyDom, kClassDom, 0.2, &rng);
    record_type[i] = reg_class[i] == 0 ? 0 : (rng.Bernoulli(0.9) ? 1 : 0);
    // Two-parent interactions (beyond what a tree Bayes net can represent),
    // mirroring the real DMV's higher-order dependencies.
    fuel_type[i] = rng.Bernoulli(0.25)
                       ? static_cast<int32_t>(rng.UniformInt(0, kFuelDom - 1))
                       : (year / 128 + state[i]) % kFuelDom;
    color[i] = rng.Bernoulli(0.3)
                   ? static_cast<int32_t>(rng.Zipf(kColorDom, 1.1))
                   : (cty * 7 + body_type[i] * 11) % kColorDom;
    // Rare flags, county-correlated (tail regions for the estimators).
    double flag_p = 0.01 + 0.04 * (static_cast<double>(cty) / kCountyDom);
    scofflaw[i] = rng.Bernoulli(flag_p) ? 1 : 0;
    suspended[i] = rng.Bernoulli(flag_p * (scofflaw[i] ? 4.0 : 1.0)) ? 1 : 0;
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromCodes("record_type", std::move(record_type), 2));
  cols.push_back(Column::FromCodes("reg_class", std::move(reg_class), kClassDom));
  cols.push_back(Column::FromCodes("state", std::move(state), kStateDom));
  cols.push_back(Column::FromCodes("county", std::move(county), kCountyDom));
  cols.push_back(Column::FromCodes("body_type", std::move(body_type), kBodyDom));
  cols.push_back(Column::FromCodes("fuel_type", std::move(fuel_type), kFuelDom));
  cols.push_back(Column::FromCodes("color", std::move(color), kColorDom));
  cols.push_back(Column::FromCodes("scofflaw", std::move(scofflaw), 2));
  cols.push_back(Column::FromCodes("suspended", std::move(suspended), 2));
  cols.push_back(Column::FromCodes("weight", std::move(weight), kWeightDom));
  cols.push_back(Column::FromCodes("model_year", std::move(model_year), kYearDom));
  return Table("dmv_synth", std::move(cols));
}

Table SyntheticCensus(size_t rows, uint64_t seed) {
  util::Rng rng(seed);
  // Domain ladder mirroring the Census mix of categorical/numeric columns.
  const std::vector<std::pair<const char*, int32_t>> spec = {
      {"sex", 2},           {"workclass", 7},  {"education", 16},
      {"marital", 7},       {"occupation", 15}, {"relationship", 6},
      {"race", 5},          {"country", 42},    {"capital_gain", 52},
      {"capital_loss", 21}, {"hours", 75},      {"fnlwgt_bin", 99},
      {"age", 123},         {"income", 10},
  };
  const int n = static_cast<int>(spec.size());
  std::vector<std::vector<int32_t>> codes(static_cast<size_t>(n),
                                          std::vector<int32_t>(rows));
  for (size_t i = 0; i < rows; ++i) {
    // Mild skew (s=0.6) and weak correlations: a couple of noisy derivations.
    int32_t age = static_cast<int32_t>(rng.Zipf(spec[12].second, 0.6));
    codes[12][i] = age;
    codes[2][i] = Derive(age, spec[12].second, spec[2].second, 0.7, &rng);
    codes[10][i] = Derive(age, spec[12].second, spec[10].second, 0.7, &rng);
    codes[13][i] = Derive(codes[2][i], spec[2].second, spec[13].second, 0.6, &rng);
    for (int c : {0, 1, 3, 4, 5, 6, 7, 8, 9, 11}) {
      codes[static_cast<size_t>(c)][i] =
          static_cast<int32_t>(rng.Zipf(spec[static_cast<size_t>(c)].second, 0.6));
    }
  }
  std::vector<Column> cols;
  for (int c = 0; c < n; ++c) {
    cols.push_back(Column::FromCodes(spec[static_cast<size_t>(c)].first,
                                     std::move(codes[static_cast<size_t>(c)]),
                                     spec[static_cast<size_t>(c)].second));
  }
  return Table("census_synth", std::move(cols));
}

Table SyntheticKdd(size_t rows, uint64_t seed) {
  util::Rng rng(seed);
  const int kCols = 100;
  const int kGroupSize = 5;  // 20 independent groups of 5 correlated columns.
  const int32_t kDomains[] = {43, 2, 9, 25, 5};
  std::vector<std::vector<int32_t>> codes(kCols, std::vector<int32_t>(rows));
  for (size_t i = 0; i < rows; ++i) {
    for (int g = 0; g < kCols / kGroupSize; ++g) {
      int base = g * kGroupSize;
      int32_t lead_dom = kDomains[0];
      int32_t lead = static_cast<int32_t>(rng.Zipf(lead_dom, 1.3));
      codes[static_cast<size_t>(base)][i] = lead;
      for (int k = 1; k < kGroupSize; ++k) {
        int32_t dom = kDomains[k];
        codes[static_cast<size_t>(base + k)][i] = Derive(lead, lead_dom, dom, 0.3, &rng);
      }
    }
  }
  std::vector<Column> cols;
  cols.reserve(kCols);
  for (int c = 0; c < kCols; ++c) {
    cols.push_back(Column::FromCodes("f" + std::to_string(c),
                                     std::move(codes[static_cast<size_t>(c)]),
                                     kDomains[c % kGroupSize]));
  }
  return Table("kddcup_synth", std::move(cols));
}

Table TinyCorrelated(size_t rows, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<int32_t> a(rows), b(rows), c(rows);
  for (size_t i = 0; i < rows; ++i) {
    a[i] = static_cast<int32_t>(rng.Zipf(8, 1.0));
    b[i] = rng.Bernoulli(0.85) ? a[i] % 4 : static_cast<int32_t>(rng.UniformInt(0, 3));
    c[i] = rng.Bernoulli(0.7) ? (a[i] + b[i]) % 6 : static_cast<int32_t>(rng.UniformInt(0, 5));
  }
  std::vector<Column> cols;
  cols.push_back(Column::FromCodes("a", std::move(a), 8));
  cols.push_back(Column::FromCodes("b", std::move(b), 4));
  cols.push_back(Column::FromCodes("c", std::move(c), 6));
  return Table("tiny", std::move(cols));
}

}  // namespace uae::data
