// AppendOnlyStore — the storage primitive of the streaming-ingest delta
// region: an append-only sequence with *block-stable* storage.
//
// Concurrency contract (single-writer / many-readers, lock-free reads):
//   * Exactly ONE thread appends (the ingest apply thread; external
//     serialization is the caller's job).
//   * Any number of reader threads may concurrently call size() and at(i)
//     for i < a size() they observed. Elements live in fixed-size heap
//     blocks that are never moved, resized, or freed while the store is
//     alive, so a published element's address is stable forever.
//   * The writer publishes each element with a release store of the size
//     counter; a reader's acquire load of size() is the only synchronization
//     it needs — everything below that index is fully written.
//   * Clear() and CopySnapshotFrom() mutate non-atomically and require
//     exclusive access (the compactor runs them under the ingest write lock).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>

#include "util/common.h"

namespace uae::data {

template <typename T, size_t BlockElems = 4096, size_t MaxBlocks = 4096>
class AppendOnlyStore {
 public:
  AppendOnlyStore() = default;
  ~AppendOnlyStore() {
    for (auto& slot : blocks_) delete slot.load(std::memory_order_relaxed);
  }
  AppendOnlyStore(const AppendOnlyStore&) = delete;
  AppendOnlyStore& operator=(const AppendOnlyStore&) = delete;

  static constexpr size_t capacity() { return BlockElems * MaxBlocks; }

  /// Published element count (acquire: everything below it is readable).
  size_t size() const { return size_.load(std::memory_order_acquire); }

  /// Element i; the caller must have obtained i < size() first.
  const T& at(size_t i) const {
    const Block* b = blocks_[i / BlockElems].load(std::memory_order_acquire);
    UAE_DCHECK(b != nullptr);
    return b->elems[i % BlockElems];
  }

  /// Single-writer append; publishes the element before returning.
  void Append(T v) {
    const size_t i = size_.load(std::memory_order_relaxed);
    UAE_CHECK(i < capacity()) << "AppendOnlyStore full: compact first";
    const size_t slot = i / BlockElems;
    Block* b = blocks_[slot].load(std::memory_order_relaxed);
    if (b == nullptr) {
      b = new Block();
      blocks_[slot].store(b, std::memory_order_release);
    }
    b->elems[i % BlockElems] = std::move(v);
    size_.store(i + 1, std::memory_order_release);
  }

  /// Resets to empty, keeping allocated blocks for reuse. Exclusive access.
  void Clear() { size_.store(0, std::memory_order_release); }

  /// Replaces this store's contents with the first `n` elements of `other`
  /// (n <= other.size()). Exclusive access on *this*; `other` may have a
  /// live writer — its first n elements are immutable once published.
  void CopySnapshotFrom(const AppendOnlyStore& other, size_t n) {
    Clear();
    for (size_t i = 0; i < n; ++i) Append(other.at(i));
  }

 private:
  struct Block {
    std::array<T, BlockElems> elems;
  };
  std::array<std::atomic<Block*>, MaxBlocks> blocks_{};
  std::atomic<size_t> size_{0};
};

}  // namespace uae::data
