#include "data/csv_table.h"

#include <charconv>

#include "util/csv.h"

namespace uae::data {

util::Status WriteTableCsv(const Table& table, const std::string& path) {
  util::CsvDocument doc;
  for (const auto& c : table.columns()) doc.header.push_back(c.name());
  doc.rows.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(static_cast<size_t>(table.num_cols()));
    for (int c = 0; c < table.num_cols(); ++c) {
      const Column& col = table.column(c);
      row.push_back(col.ValueForCode(col.code_at(r)).ToString());
    }
    doc.rows.push_back(std::move(row));
  }
  return util::WriteCsv(path, doc);
}

util::Result<Table> ReadTableCsv(const std::string& path, const std::string& name) {
  auto doc_or = util::ReadCsv(path);
  if (!doc_or.ok()) return doc_or.status();
  const util::CsvDocument& doc = doc_or.value();
  const size_t n_cols = doc.header.size();
  for (const auto& row : doc.rows) {
    if (row.size() != n_cols) {
      return util::Status::InvalidArgument("ragged CSV row in " + path);
    }
  }
  std::vector<Column> cols;
  cols.reserve(n_cols);
  for (size_t c = 0; c < n_cols; ++c) {
    // Probe: does every field parse as an integer?
    bool all_int = true;
    std::vector<int64_t> ints;
    ints.reserve(doc.rows.size());
    for (const auto& row : doc.rows) {
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(row[c].data(), row[c].data() + row[c].size(), v);
      if (ec != std::errc() || ptr != row[c].data() + row[c].size()) {
        all_int = false;
        break;
      }
      ints.push_back(v);
    }
    if (all_int && !doc.rows.empty()) {
      cols.push_back(Column::FromInts(doc.header[c], ints));
    } else {
      std::vector<Value> vals;
      vals.reserve(doc.rows.size());
      for (const auto& row : doc.rows) vals.emplace_back(row[c]);
      cols.push_back(Column::FromValues(doc.header[c], vals));
    }
  }
  return Table(name, std::move(cols));
}

}  // namespace uae::data
