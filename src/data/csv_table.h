// Table <-> CSV conversion for dataset persistence and external inspection.
#pragma once

#include <string>

#include "data/table.h"
#include "util/status.h"

namespace uae::data {

util::Status WriteTableCsv(const Table& table, const std::string& path);

/// Loads a CSV into a dictionary-encoded table. Fields that parse as int64
/// become integer columns; everything else becomes string columns.
util::Result<Table> ReadTableCsv(const std::string& path, const std::string& name);

}  // namespace uae::data
