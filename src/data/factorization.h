// Column factorization for very-large-NDV columns (§4.6): a dictionary code is
// sliced into base-2^b digits (most-significant first), each digit becoming a
// *virtual column* of the autoregressive model. Range predicates on the
// original column are pushed down onto the digit sequence by the samplers
// using tight-lower/tight-upper bound tracking.
//
// The VirtualSchema is the single source of truth mapping original columns to
// virtual columns; the whole core/ module operates on virtual columns.
#pragma once

#include <cstdint>
#include <vector>

#include "data/table.h"

namespace uae::data {

struct VirtualColumn {
  int orig_col = 0;    ///< Index of the original column.
  int sub_index = 0;   ///< 0 = most significant digit; 0 only for unfactorized.
  int num_subs = 1;    ///< Total digits of the original column.
  int shift_bits = 0;  ///< Bits below this digit in the original code.
  int32_t domain = 0;  ///< Distinct values of this virtual column.
};

class VirtualSchema {
 public:
  /// Columns whose domain exceeds `factor_threshold` are split into digits of
  /// `factor_bits` bits. threshold<=0 disables factorization entirely.
  static VirtualSchema Build(const Table& table, int32_t factor_threshold,
                             int factor_bits);

  int num_virtual() const { return static_cast<int>(vcols_.size()); }
  int num_original() const { return static_cast<int>(orig_to_virtual_.size()); }
  const VirtualColumn& vcol(int i) const { return vcols_[static_cast<size_t>(i)]; }
  const std::vector<int>& VirtualsOf(int orig_col) const {
    return orig_to_virtual_[static_cast<size_t>(orig_col)];
  }
  bool IsFactorized(int orig_col) const {
    return orig_to_virtual_[static_cast<size_t>(orig_col)].size() > 1;
  }

  /// Digit of `code` for virtual column `vc`.
  int32_t Digit(int vc, int32_t code) const {
    const VirtualColumn& v = vcols_[static_cast<size_t>(vc)];
    return static_cast<int32_t>((static_cast<uint32_t>(code) >> v.shift_bits) &
                                ((1u << DigitBits(v)) - 1));
  }

  /// Encodes an original-code row into virtual codes (appends to out).
  void EncodeRow(const std::vector<int32_t>& orig_codes,
                 std::vector<int32_t>* virtual_codes) const;

  /// Reassembles an original code from its digit codes (testing).
  int32_t Compose(int orig_col, const std::vector<int32_t>& digits) const;

 private:
  int DigitBits(const VirtualColumn& v) const;

  std::vector<VirtualColumn> vcols_;
  std::vector<std::vector<int>> orig_to_virtual_;
  int factor_bits_ = 0;
};

}  // namespace uae::data
