#include "data/value.h"

#include "util/common.h"

namespace uae::data {

bool Value::operator<(const Value& o) const {
  UAE_CHECK(type() == o.type()) << "comparing values of different types";
  switch (type()) {
    case ValueType::kInt:
      return AsInt() < o.AsInt();
    case ValueType::kDouble:
      return AsDouble() < o.AsDouble();
    case ValueType::kString:
      return AsString() < o.AsString();
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return std::to_string(AsDouble());
    case ValueType::kString:
      return AsString();
  }
  return "";
}

}  // namespace uae::data
