// Dataset statistics the paper reports in §5.1.1: Fisher–Pearson skewness and
// an NCIE-style nonlinear correlation (we use normalized mutual information).
#pragma once

#include <string>
#include <vector>

#include "data/table.h"

namespace uae::data {

struct DatasetStats {
  size_t rows = 0;
  int cols = 0;
  int32_t min_domain = 0;
  int32_t max_domain = 0;
  /// Mean per-column Fisher–Pearson skewness of the value-frequency spectrum.
  double skewness = 0.0;
  /// Mean pairwise normalized mutual information over sampled column pairs.
  double correlation = 0.0;
};

/// Computes the table statistics. `max_pairs` bounds the number of column
/// pairs used for the correlation estimate (important for Kdd's 100 columns).
DatasetStats ComputeStats(const Table& table, int max_pairs = 64);

std::string FormatStats(const DatasetStats& s);

}  // namespace uae::data
