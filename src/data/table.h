// A relation: a set of equally-sized dictionary-encoded columns.
//
// Streaming ingest extends the static relation with a delta region (see
// data/column.h): one external writer appends rows via AppendDeltaRowCodes /
// EncodeAppendRow, readers scan rows below a num_rows() they observed, and
// FoldDelta() (the compactor, under exclusive access) merges the delta into
// the base region without changing any row index or code. num_rows() is the
// authoritative live row count: a delta row is published here only after
// every column holds its code.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/column.h"
#include "util/status.h"

namespace uae::data {

class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<Column> columns);
  Table(const Table& other);
  Table& operator=(const Table& other);
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  const std::string& name() const { return name_; }
  /// Live row count: base rows + fully published delta rows.
  size_t num_rows() const {
    return num_rows_ + delta_rows_.load(std::memory_order_acquire);
  }
  size_t base_rows() const { return num_rows_; }
  size_t delta_rows() const {
    return delta_rows_.load(std::memory_order_acquire);
  }
  int num_cols() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  Column& mutable_column(int i) { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with the given name; -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Codes of one row across all columns.
  std::vector<int32_t> RowCodes(size_t row) const;

  /// The column with the largest domain (the paper's "bounded attribute").
  int LargestDomainColumn() const;

  /// Appends a row to the BASE region given per-column codes (bulk loading /
  /// incremental-data experiments). Validates arity and per-column code
  /// bounds — an out-of-domain code or a wrong-arity vector is rejected with
  /// InvalidArgument instead of silently corrupting the column stores — and
  /// refuses (FailedPrecondition) while a delta region is open, which would
  /// reorder rows. Use AppendDeltaRowCodes on a live table.
  util::Status AppendRowCodes(const std::vector<int32_t>& codes);

  /// Appends a row to the DELTA region: validated like AppendRowCodes
  /// (against total_domain(), so overflow codes are admissible), then
  /// published atomically — concurrent readers either see the whole row or
  /// none of it. Single-writer (the ingest apply thread).
  util::Status AppendDeltaRowCodes(std::span<const int32_t> codes);

  /// Encodes a row of values into codes via each column's CodeForAppend —
  /// unseen values are assigned stable overflow codes. Returns the number of
  /// columns whose value was unseen. Single-writer.
  int EncodeAppendRow(std::span<const Value> values,
                      std::vector<int32_t>* codes);

  /// Compaction: folds every published delta row into the base region.
  /// Row indices, codes, and dictionaries are all unchanged — only the
  /// storage moves — so a snapshot taken before the fold reads identically
  /// after it. Requires exclusive access (no concurrent readers or writer);
  /// the ingest layer serializes this behind its table lock. Returns the
  /// number of rows folded and bumps fold_generation().
  size_t FoldDelta();
  /// Number of completed FoldDelta() calls (generation-atomic compaction
  /// marker: a reader pinning (num_rows, fold_generation) can detect an
  /// intervening compaction).
  uint64_t fold_generation() const {
    return folds_.load(std::memory_order_acquire);
  }

  /// A new table containing rows [begin, end). Dictionaries (frozen and
  /// overflow) are shared with this table, so compiled constraints carry
  /// over — this previously rebuilt an integer dictionary 0..domain-1,
  /// which silently changed what codes meant for non-integer columns.
  Table Slice(size_t begin, size_t end, const std::string& new_name) const;

  /// A new table containing the selected rows (in the given order), with
  /// every column sharing this table's full dictionary (Column::Gather) —
  /// the horizontal-partitioning primitive: shard tables stay addressable in
  /// the global code space. Rows may index the delta region; the gathered
  /// table is a fully materialized snapshot (no delta region of its own).
  Table Gather(std::span<const size_t> rows, const std::string& new_name) const;

 private:
  void CopyFrom(const Table& other);

  std::string name_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;  ///< Base-region rows.
  std::atomic<size_t> delta_rows_{0};
  std::atomic<uint64_t> folds_{0};
};

}  // namespace uae::data
