// A relation: a set of equally-sized dictionary-encoded columns.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "data/column.h"

namespace uae::data {

class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<Column> columns);

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  int num_cols() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[static_cast<size_t>(i)]; }
  Column& mutable_column(int i) { return columns_[static_cast<size_t>(i)]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column with the given name; -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Codes of one row across all columns.
  std::vector<int32_t> RowCodes(size_t row) const;

  /// The column with the largest domain (the paper's "bounded attribute").
  int LargestDomainColumn() const;

  /// Appends a row given per-column codes (for incremental-data experiments).
  void AppendRowCodes(const std::vector<int32_t>& codes);

  /// A new table containing rows [begin, end).
  Table Slice(size_t begin, size_t end, const std::string& new_name) const;

  /// A new table containing the selected rows (in the given order), with
  /// every column sharing this table's full dictionary (Column::Gather) —
  /// the horizontal-partitioning primitive: shard tables stay addressable in
  /// the global code space.
  Table Gather(std::span<const size_t> rows, const std::string& new_name) const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

}  // namespace uae::data
