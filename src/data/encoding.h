// Tuple encoders for the autoregressive model's input (§4.2 "Encoding Tuples").
//
// Each (virtual) column is encoded by an *encoding matrix* with domain+1 rows:
// row c encodes code c; the extra last row encodes the wildcard token used for
// unqueried / skipped columns (§4.6). Binary encoding appends one wildcard
// flag bit; embeddings learn the wildcard row like any other.
//
// A hard input is a row lookup; the DPS soft input is y^T * E (y a relaxed
// one-hot over the first `domain` rows), which is what makes progressive
// sampling differentiable end-to-end.
#pragma once

#include <cstdint>

#include "nn/mat.h"

namespace uae::data {

enum class EncoderKind {
  kBinary,   ///< ceil(log2(domain)) bits + wildcard flag; constant matrix.
  kOneHot,   ///< domain indicator + wildcard flag; constant matrix.
  kEmbedding ///< learned (domain+1) x dim matrix.
};

/// Bits needed for a binary code of `domain` distinct values (>= 1).
int BinaryBits(int32_t domain);

/// Encoded feature width for a column under the given encoder.
int EncodedWidth(EncoderKind kind, int32_t domain, int embed_dim);

/// Builds the constant binary encoding matrix [(domain+1) x (bits+1)]:
/// row c = bit pattern of c (LSB first), wildcard row = zeros with flag 1.
nn::Mat BinaryEncodingMatrix(int32_t domain);

/// Builds the constant one-hot encoding matrix [(domain+1) x (domain+1)].
nn::Mat OneHotEncodingMatrix(int32_t domain);

}  // namespace uae::data
