// A typed cell value. Columns are dictionary-encoded; Value appears only at
// the boundary (building tables, printing, CSV I/O) — the hot paths work on
// int32 dictionary codes.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace uae::data {

enum class ValueType { kInt = 0, kDouble = 1, kString = 2 };

class Value {
 public:
  Value() : v_(int64_t{0}) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  double AsDouble() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// Numeric view: ints and doubles promote; strings are not numeric.
  bool IsNumeric() const { return type() != ValueType::kString; }
  double Numeric() const {
    return type() == ValueType::kInt ? static_cast<double>(AsInt()) : AsDouble();
  }

  /// Total order within one type (used to build order-preserving dictionaries).
  bool operator<(const Value& o) const;
  bool operator==(const Value& o) const { return v_ == o.v_; }

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> v_;
};

}  // namespace uae::data
