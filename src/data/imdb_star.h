// Synthetic IMDB-like star schema and its full-outer-join universe — the
// substrate for the paper's join experiments (Table 5, Figure 6).
//
// Following NeuroCard [77] / DeepDB [31] (the construction UAE §4.6 adopts),
// the cardinality of a join query over a table subset S is expressed over the
// full outer join J of all tables:
//
//   Card_S(q) = sum_{x in J} 1(pred(x) ∧ ind_T(x)=1 ∀ T∈S\{fact}) ·
//               prod_{T ∉ S} 1 / F_T(x)
//
// where ind_T marks rows genuinely matched (vs NULL-extended) and F_T is the
// join fanout of x's fact tuple into T (floored at 1). The universe is small
// enough here to materialize, which gives exact ground truth; estimators train
// on uniform samples of J — exactly what a uniform join sampler (Exact Weight
// [80]) would produce.
//
// The builder is parameterized by the dimension-table list so the same code
// produces the 3-table JOB-light analog (Table 5) and the 6-table JOB-M-like
// schema of the query-optimization study (Figure 6). Base tables are emitted
// alongside the universe for the mini optimizer's hash-join executor.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "util/rng.h"

namespace uae::data {

/// One dimension table hanging off the fact table (N:1 into `title`).
struct DimTableSpec {
  std::string name;
  /// Content columns: (name, domain). Universe copies get +1 domains (NULL).
  std::vector<std::pair<std::string, int32_t>> content;
  int max_fanout = 3;          ///< Rows per title in [0, max_fanout].
  double recent_bias = 0.4;    ///< Extra-fanout probability for recent titles.
  int correlate_with = 0;      ///< Fact column driving the content correlation.
};

struct ImdbStarConfig {
  size_t num_titles = 20000;
  uint64_t seed = 7;
  /// Empty => the default 3-table JOB-light template (mc + mi).
  std::vector<DimTableSpec> dims;
};

/// Per-table metadata inside the join universe.
struct JoinTableInfo {
  std::string name;
  std::vector<int> content_cols;  ///< Universe column indices of this table's columns.
  int indicator_col = -1;         ///< 0/1 matched indicator (-1 for the fact table).
  int fanout_col = -1;            ///< Fanout column F_T, code = F-1 (-1 for fact).
  /// Mapping to the base table (for the optimizer's executor): universe
  /// content col i corresponds to base column base_content_cols[i]; dimension
  /// codes are shifted by +1 in the universe (code 0 = NULL).
  int base_table = -1;
  std::vector<int> base_content_cols;
  int32_t code_shift = 0;
};

struct JoinUniverse {
  Table universe;                      ///< The materialized full outer join J.
  std::vector<JoinTableInfo> tables;   ///< [0] = fact table (title).
  size_t full_join_rows = 0;           ///< |J|.
  /// Base tables: [0] = title (content cols only; row index = title id);
  /// dims have column 0 = movie_id followed by content columns.
  std::vector<Table> base_tables;

  int NumTables() const { return static_cast<int>(tables.size()); }
  /// Fanout value (>=1) for table t at universe row r.
  int FanoutAt(int t, size_t row) const {
    int fc = tables[static_cast<size_t>(t)].fanout_col;
    return fc < 0 ? 1 : universe.column(fc).code_at(row) + 1;
  }
};

/// The default 3-table template of Table 5 (title, movie_companies,
/// movie_info).
std::vector<DimTableSpec> DefaultJobLightDims();

/// Five dimension tables (JOB-M-like complexity) for the Figure 6 study.
std::vector<DimTableSpec> JobMDims();

/// Generates base tables and materializes the full outer join universe.
/// Universe column order: title content (production_year, kind_id, genre,
/// rating), then per dimension [indicator, content...], then all fanouts.
/// NULL-extended dimension values use dedicated code 0, real values shift +1.
JoinUniverse BuildImdbStar(const ImdbStarConfig& config);

}  // namespace uae::data
