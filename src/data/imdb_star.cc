#include "data/imdb_star.h"

#include <algorithm>

namespace uae::data {

namespace {
constexpr int32_t kYearDom = 100;
constexpr int32_t kKindDom = 7;
constexpr int32_t kGenreDom = 24;
constexpr int32_t kRatingDom = 10;

int32_t CorrelatedCode(int32_t parent, int32_t parent_dom, int32_t dom, double noise_p,
                       util::Rng* rng) {
  int64_t mapped = static_cast<int64_t>(parent) * dom / std::max(1, parent_dom);
  if (rng->Bernoulli(noise_p)) {
    mapped = (mapped + rng->Zipf(dom, 1.1)) % dom;
  }
  return static_cast<int32_t>(std::clamp<int64_t>(mapped, 0, dom - 1));
}
}  // namespace

std::vector<DimTableSpec> DefaultJobLightDims() {
  return {
      {"movie_companies", {{"company_id", 200}, {"company_type", 4}}, 3, 0.5, 0},
      {"movie_info", {{"info_type", 20}, {"info_val", 100}}, 4, 0.0, 2},
  };
}

std::vector<DimTableSpec> JobMDims() {
  return {
      {"movie_companies", {{"company_id", 120}, {"company_type", 4}}, 3, 0.5, 0},
      {"movie_info", {{"info_type", 20}, {"info_val", 60}}, 2, 0.0, 2},
      {"movie_keyword", {{"keyword_id", 150}}, 2, 0.3, 2},
      {"cast_info", {{"person_id", 200}, {"role_id", 8}}, 2, 0.2, 0},
      {"movie_language", {{"lang_id", 30}}, 1, 0.0, 1},
  };
}

JoinUniverse BuildImdbStar(const ImdbStarConfig& config) {
  util::Rng rng(config.seed);
  const size_t n = config.num_titles;
  std::vector<DimTableSpec> dims =
      config.dims.empty() ? DefaultJobLightDims() : config.dims;
  const size_t nd = dims.size();

  // ---- Fact table: title ----------------------------------------------------
  const std::vector<std::pair<const char*, int32_t>> fact_spec = {
      {"production_year", kYearDom},
      {"kind_id", kKindDom},
      {"genre", kGenreDom},
      {"rating", kRatingDom}};
  std::vector<std::vector<int32_t>> fact(fact_spec.size(),
                                         std::vector<int32_t>(n));
  for (size_t i = 0; i < n; ++i) {
    int32_t year = static_cast<int32_t>(rng.Zipf(kYearDom, 1.0));
    fact[0][i] = year;
    fact[1][i] = CorrelatedCode(year, kYearDom, kKindDom, 0.4, &rng);
    fact[2][i] = static_cast<int32_t>(rng.Zipf(kGenreDom, 1.1));
    fact[3][i] = CorrelatedCode(fact[2][i], kGenreDom, kRatingDom, 0.5, &rng);
  }

  // ---- Dimension rows per title ---------------------------------------------
  // dim_rows[d][title] = list of content tuples for that title.
  std::vector<std::vector<std::vector<std::vector<int32_t>>>> dim_rows(nd);
  for (size_t d = 0; d < nd; ++d) {
    dim_rows[d].resize(n);
    const DimTableSpec& spec = dims[d];
    for (size_t i = 0; i < n; ++i) {
      double recent = 1.0 - static_cast<double>(fact[0][i]) / kYearDom;
      int cnt = static_cast<int>(rng.UniformInt(0, spec.max_fanout));
      if (rng.Bernoulli(recent * spec.recent_bias)) {
        cnt = std::min(spec.max_fanout, cnt + 1);
      }
      int32_t driver = fact[static_cast<size_t>(spec.correlate_with)][i];
      int32_t driver_dom = fact_spec[static_cast<size_t>(spec.correlate_with)].second;
      for (int j = 0; j < cnt; ++j) {
        std::vector<int32_t> row;
        row.reserve(spec.content.size());
        for (size_t c = 0; c < spec.content.size(); ++c) {
          int32_t dom = spec.content[c].second;
          if (c == 0) {
            row.push_back(CorrelatedCode(driver, driver_dom, dom, 0.35, &rng));
          } else {
            row.push_back(static_cast<int32_t>(rng.Zipf(dom, 0.8)));
          }
        }
        dim_rows[d][i].push_back(std::move(row));
      }
    }
  }

  // ---- Base tables (for the optimizer's executor) ----------------------------
  JoinUniverse uni;
  {
    std::vector<Column> cols;
    for (size_t c = 0; c < fact_spec.size(); ++c) {
      cols.push_back(Column::FromCodes(fact_spec[c].first,
                                       std::vector<int32_t>(fact[c]),
                                       fact_spec[c].second));
    }
    uni.base_tables.push_back(Table("title", std::move(cols)));
  }
  for (size_t d = 0; d < nd; ++d) {
    const DimTableSpec& spec = dims[d];
    std::vector<int32_t> movie_ids;
    std::vector<std::vector<int32_t>> content(spec.content.size());
    for (size_t i = 0; i < n; ++i) {
      for (const auto& row : dim_rows[d][i]) {
        movie_ids.push_back(static_cast<int32_t>(i));
        for (size_t c = 0; c < spec.content.size(); ++c) content[c].push_back(row[c]);
      }
    }
    std::vector<Column> cols;
    cols.push_back(
        Column::FromCodes("movie_id", std::move(movie_ids), static_cast<int32_t>(n)));
    for (size_t c = 0; c < spec.content.size(); ++c) {
      cols.push_back(Column::FromCodes(spec.content[c].first, std::move(content[c]),
                                       spec.content[c].second));
    }
    uni.base_tables.push_back(Table(spec.name, std::move(cols)));
  }

  // ---- Materialize the full outer join ----------------------------------------
  // Universe columns: fact content, then per dim [ind, content...], then fanouts.
  std::vector<std::vector<int32_t>> ucols;
  std::vector<std::pair<std::string, int32_t>> ucol_spec;
  for (size_t c = 0; c < fact_spec.size(); ++c) {
    ucol_spec.emplace_back(fact_spec[c].first, fact_spec[c].second);
  }
  std::vector<int> dim_ind_col(nd), dim_content_start(nd), dim_fanout_col(nd);
  for (size_t d = 0; d < nd; ++d) {
    dim_ind_col[d] = static_cast<int>(ucol_spec.size());
    ucol_spec.emplace_back(dims[d].name + "_ind", 2);
    dim_content_start[d] = static_cast<int>(ucol_spec.size());
    for (const auto& [cname, cdom] : dims[d].content) {
      ucol_spec.emplace_back(dims[d].name + "." + cname, cdom + 1);  // +NULL.
    }
  }
  for (size_t d = 0; d < nd; ++d) {
    dim_fanout_col[d] = static_cast<int>(ucol_spec.size());
    ucol_spec.emplace_back("fanout_" + dims[d].name,
                           std::max(1, dims[d].max_fanout));
  }
  ucols.assign(ucol_spec.size(), {});

  std::vector<size_t> radix(nd), counter(nd);
  for (size_t i = 0; i < n; ++i) {
    size_t combos = 1;
    for (size_t d = 0; d < nd; ++d) {
      radix[d] = std::max<size_t>(1, dim_rows[d][i].size());
      combos *= radix[d];
    }
    std::fill(counter.begin(), counter.end(), 0);
    for (size_t combo = 0; combo < combos; ++combo) {
      // Fact content.
      for (size_t c = 0; c < fact_spec.size(); ++c) ucols[c].push_back(fact[c][i]);
      // Dimensions.
      for (size_t d = 0; d < nd; ++d) {
        bool matched = !dim_rows[d][i].empty();
        ucols[static_cast<size_t>(dim_ind_col[d])].push_back(matched ? 1 : 0);
        for (size_t c = 0; c < dims[d].content.size(); ++c) {
          int32_t v = matched
                          ? dim_rows[d][i][static_cast<size_t>(counter[d])][c] + 1
                          : 0;
          ucols[static_cast<size_t>(dim_content_start[d]) + c].push_back(v);
        }
        ucols[static_cast<size_t>(dim_fanout_col[d])].push_back(
            static_cast<int32_t>(radix[d]) - 1);
      }
      // Mixed-radix increment.
      for (size_t d = 0; d < nd; ++d) {
        if (++counter[d] < radix[d]) break;
        counter[d] = 0;
      }
    }
  }

  std::vector<Column> cols;
  cols.reserve(ucol_spec.size());
  for (size_t c = 0; c < ucol_spec.size(); ++c) {
    cols.push_back(Column::FromCodes(ucol_spec[c].first, std::move(ucols[c]),
                                     ucol_spec[c].second));
  }
  uni.universe = Table("imdb_join_universe", std::move(cols));
  uni.full_join_rows = uni.universe.num_rows();

  // ---- Table metadata ----------------------------------------------------------
  JoinTableInfo title;
  title.name = "title";
  title.content_cols = {0, 1, 2, 3};
  title.base_table = 0;
  title.base_content_cols = {0, 1, 2, 3};
  title.code_shift = 0;
  uni.tables.push_back(title);
  for (size_t d = 0; d < nd; ++d) {
    JoinTableInfo info;
    info.name = dims[d].name;
    for (size_t c = 0; c < dims[d].content.size(); ++c) {
      info.content_cols.push_back(dim_content_start[d] + static_cast<int>(c));
      info.base_content_cols.push_back(static_cast<int>(c) + 1);  // After movie_id.
    }
    info.indicator_col = dim_ind_col[d];
    info.fanout_col = dim_fanout_col[d];
    info.base_table = static_cast<int>(d) + 1;
    info.code_shift = 1;
    uni.tables.push_back(info);
  }
  return uni;
}

}  // namespace uae::data
