#include "data/table.h"

#include <algorithm>
#include <numeric>

namespace uae::data {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  UAE_CHECK(!columns_.empty());
  num_rows_ = columns_[0].base_rows();
  for (const auto& c : columns_) {
    UAE_CHECK_EQ(c.base_rows(), num_rows_) << "ragged columns in table " << name_;
    UAE_CHECK_EQ(c.delta_rows(), size_t{0})
        << "table constructed from a column with an open delta region";
  }
}

void Table::CopyFrom(const Table& other) {
  name_ = other.name_;
  num_rows_ = other.num_rows_;
  // Load the published delta count BEFORE copying columns: each column
  // snapshot then holds at least this many delta codes, so the copied table
  // never claims rows its columns lack. (Column counts may lead the table
  // count; the table count is authoritative.)
  const size_t published = other.delta_rows_.load(std::memory_order_acquire);
  columns_ = other.columns_;
  delta_rows_.store(published, std::memory_order_release);
  folds_.store(other.folds_.load(std::memory_order_acquire),
               std::memory_order_release);
}

Table::Table(const Table& other) { CopyFrom(other); }

Table& Table::operator=(const Table& other) {
  if (this != &other) CopyFrom(other);
  return *this;
}

Table::Table(Table&& other) noexcept
    : name_(std::move(other.name_)),
      columns_(std::move(other.columns_)),
      num_rows_(other.num_rows_),
      delta_rows_(other.delta_rows_.load(std::memory_order_acquire)),
      folds_(other.folds_.load(std::memory_order_acquire)) {}

Table& Table::operator=(Table&& other) noexcept {
  if (this != &other) {
    name_ = std::move(other.name_);
    columns_ = std::move(other.columns_);
    num_rows_ = other.num_rows_;
    delta_rows_.store(other.delta_rows_.load(std::memory_order_acquire),
                      std::memory_order_release);
    folds_.store(other.folds_.load(std::memory_order_acquire),
                 std::memory_order_release);
  }
  return *this;
}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int32_t> Table::RowCodes(size_t row) const {
  UAE_DCHECK(row < num_rows());
  std::vector<int32_t> out(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) out[i] = columns_[i].code_at(row);
  return out;
}

int Table::LargestDomainColumn() const {
  int best = 0;
  for (int i = 1; i < num_cols(); ++i) {
    if (columns_[static_cast<size_t>(i)].domain() >
        columns_[static_cast<size_t>(best)].domain()) {
      best = i;
    }
  }
  return best;
}

util::Status Table::AppendRowCodes(const std::vector<int32_t>& codes) {
  if (codes.size() != columns_.size()) {
    return util::Status::InvalidArgument(
        "AppendRowCodes: got " + std::to_string(codes.size()) +
        " codes for a " + std::to_string(columns_.size()) + "-column table");
  }
  if (delta_rows_.load(std::memory_order_acquire) != 0) {
    return util::Status::FailedPrecondition(
        "AppendRowCodes: table has an open delta region; base appends would "
        "reorder rows (use AppendDeltaRowCodes)");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (codes[i] < 0 || codes[i] >= columns_[i].total_domain()) {
      return util::Status::InvalidArgument(
          "AppendRowCodes: code " + std::to_string(codes[i]) +
          " out of domain [0, " + std::to_string(columns_[i].total_domain()) +
          ") for column " + columns_[i].name());
    }
  }
  for (size_t i = 0; i < columns_.size(); ++i) columns_[i].AppendCode(codes[i]);
  ++num_rows_;
  return util::Status::Ok();
}

util::Status Table::AppendDeltaRowCodes(std::span<const int32_t> codes) {
  if (codes.size() != columns_.size()) {
    return util::Status::InvalidArgument(
        "AppendDeltaRowCodes: got " + std::to_string(codes.size()) +
        " codes for a " + std::to_string(columns_.size()) + "-column table");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (codes[i] < 0 || codes[i] >= columns_[i].total_domain()) {
      return util::Status::InvalidArgument(
          "AppendDeltaRowCodes: code " + std::to_string(codes[i]) +
          " out of domain [0, " + std::to_string(columns_[i].total_domain()) +
          ") for column " + columns_[i].name());
    }
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendDeltaCode(codes[i]);
  }
  // Publish the row only after every column holds its code: a reader that
  // observes the incremented count sees a complete row.
  delta_rows_.fetch_add(1, std::memory_order_release);
  return util::Status::Ok();
}

int Table::EncodeAppendRow(std::span<const Value> values,
                           std::vector<int32_t>* codes) {
  UAE_CHECK_EQ(values.size(), columns_.size());
  codes->resize(columns_.size());
  int unseen = 0;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const int32_t before = columns_[i].total_domain();
    (*codes)[i] = columns_[i].CodeForAppend(values[i]);
    if (columns_[i].total_domain() != before) ++unseen;
  }
  return unseen;
}

size_t Table::FoldDelta() {
  const size_t published = delta_rows_.load(std::memory_order_acquire);
  if (published == 0) return 0;
  for (auto& c : columns_) {
    const size_t folded = c.FoldDelta();
    UAE_CHECK_EQ(folded, published)
        << "FoldDelta under a live writer (column " << c.name() << ")";
  }
  num_rows_ += published;
  delta_rows_.store(0, std::memory_order_release);
  folds_.fetch_add(1, std::memory_order_acq_rel);
  return published;
}

Table Table::Gather(std::span<const size_t> rows,
                    const std::string& new_name) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) cols.push_back(c.Gather(rows));
  return Table(new_name, std::move(cols));
}

Table Table::Slice(size_t begin, size_t end, const std::string& new_name) const {
  UAE_CHECK(begin <= end && end <= num_rows());
  std::vector<size_t> rows(end - begin);
  std::iota(rows.begin(), rows.end(), begin);
  return Gather(rows, new_name);
}

}  // namespace uae::data
