#include "data/table.h"

#include <algorithm>

namespace uae::data {

Table::Table(std::string name, std::vector<Column> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  UAE_CHECK(!columns_.empty());
  num_rows_ = columns_[0].num_rows();
  for (const auto& c : columns_) {
    UAE_CHECK_EQ(c.num_rows(), num_rows_) << "ragged columns in table " << name_;
  }
}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int32_t> Table::RowCodes(size_t row) const {
  UAE_DCHECK(row < num_rows_);
  std::vector<int32_t> out(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) out[i] = columns_[i].code_at(row);
  return out;
}

int Table::LargestDomainColumn() const {
  int best = 0;
  for (int i = 1; i < num_cols(); ++i) {
    if (columns_[static_cast<size_t>(i)].domain() >
        columns_[static_cast<size_t>(best)].domain()) {
      best = i;
    }
  }
  return best;
}

void Table::AppendRowCodes(const std::vector<int32_t>& codes) {
  UAE_CHECK_EQ(codes.size(), columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) columns_[i].AppendCode(codes[i]);
  ++num_rows_;
}

Table Table::Gather(std::span<const size_t> rows,
                    const std::string& new_name) const {
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) cols.push_back(c.Gather(rows));
  return Table(new_name, std::move(cols));
}

Table Table::Slice(size_t begin, size_t end, const std::string& new_name) const {
  UAE_CHECK(begin <= end && end <= num_rows_);
  std::vector<Column> cols;
  cols.reserve(columns_.size());
  for (const auto& c : columns_) {
    std::vector<int32_t> codes(c.codes().begin() + static_cast<ptrdiff_t>(begin),
                               c.codes().begin() + static_cast<ptrdiff_t>(end));
    // Preserve the parent dictionary by re-using domain-sized code dictionary.
    cols.push_back(Column::FromCodes(c.name(), std::move(codes), c.domain()));
  }
  return Table(new_name, std::move(cols));
}

}  // namespace uae::data
