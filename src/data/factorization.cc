#include "data/factorization.h"

#include "data/encoding.h"

namespace uae::data {

int VirtualSchema::DigitBits(const VirtualColumn& v) const {
  // All digits use factor_bits_ except an unfactorized passthrough column.
  return v.num_subs == 1 ? BinaryBits(v.domain) : factor_bits_;
}

VirtualSchema VirtualSchema::Build(const Table& table, int32_t factor_threshold,
                                   int factor_bits) {
  UAE_CHECK_GT(factor_bits, 0);
  VirtualSchema vs;
  vs.factor_bits_ = factor_bits;
  vs.orig_to_virtual_.resize(static_cast<size_t>(table.num_cols()));
  for (int oc = 0; oc < table.num_cols(); ++oc) {
    int32_t domain = table.column(oc).domain();
    bool factorize = factor_threshold > 0 && domain > factor_threshold;
    if (!factorize) {
      VirtualColumn v;
      v.orig_col = oc;
      v.sub_index = 0;
      v.num_subs = 1;
      v.shift_bits = 0;
      v.domain = domain;
      vs.orig_to_virtual_[static_cast<size_t>(oc)].push_back(vs.num_virtual());
      vs.vcols_.push_back(v);
      continue;
    }
    int total_bits = BinaryBits(domain);
    int num_subs = (total_bits + factor_bits - 1) / factor_bits;
    for (int s = 0; s < num_subs; ++s) {
      VirtualColumn v;
      v.orig_col = oc;
      v.sub_index = s;
      v.num_subs = num_subs;
      v.shift_bits = (num_subs - 1 - s) * factor_bits;
      if (s == 0) {
        // Most significant digit: only as many values as the domain requires.
        v.domain = static_cast<int32_t>(((domain - 1) >> v.shift_bits) + 1);
      } else {
        v.domain = 1 << factor_bits;
      }
      vs.orig_to_virtual_[static_cast<size_t>(oc)].push_back(vs.num_virtual());
      vs.vcols_.push_back(v);
    }
  }
  return vs;
}

void VirtualSchema::EncodeRow(const std::vector<int32_t>& orig_codes,
                              std::vector<int32_t>* virtual_codes) const {
  UAE_DCHECK(orig_codes.size() == orig_to_virtual_.size());
  virtual_codes->clear();
  virtual_codes->reserve(vcols_.size());
  for (size_t vc = 0; vc < vcols_.size(); ++vc) {
    const VirtualColumn& v = vcols_[vc];
    int32_t code = orig_codes[static_cast<size_t>(v.orig_col)];
    if (v.num_subs == 1) {
      virtual_codes->push_back(code);
    } else {
      virtual_codes->push_back(Digit(static_cast<int>(vc), code));
    }
  }
}

int32_t VirtualSchema::Compose(int orig_col, const std::vector<int32_t>& digits) const {
  const auto& vcs = orig_to_virtual_[static_cast<size_t>(orig_col)];
  UAE_CHECK_EQ(digits.size(), vcs.size());
  int32_t code = 0;
  for (size_t i = 0; i < vcs.size(); ++i) {
    const VirtualColumn& v = vcols_[static_cast<size_t>(vcs[i])];
    code |= digits[i] << v.shift_bits;
  }
  return code;
}

}  // namespace uae::data
