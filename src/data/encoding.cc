#include "data/encoding.h"

#include "util/common.h"

namespace uae::data {

int BinaryBits(int32_t domain) {
  UAE_CHECK_GT(domain, 0);
  int bits = 1;
  while ((int64_t{1} << bits) < domain) ++bits;
  return bits;
}

int EncodedWidth(EncoderKind kind, int32_t domain, int embed_dim) {
  switch (kind) {
    case EncoderKind::kBinary:
      return BinaryBits(domain) + 1;
    case EncoderKind::kOneHot:
      return domain + 1;
    case EncoderKind::kEmbedding:
      return embed_dim;
  }
  return 0;
}

nn::Mat BinaryEncodingMatrix(int32_t domain) {
  int bits = BinaryBits(domain);
  nn::Mat enc(domain + 1, bits + 1);
  for (int32_t c = 0; c < domain; ++c) {
    for (int b = 0; b < bits; ++b) {
      enc.at(c, b) = (c >> b) & 1 ? 1.f : 0.f;
    }
    enc.at(c, bits) = 0.f;  // Not a wildcard.
  }
  enc.at(domain, bits) = 1.f;  // Wildcard row: zero bits + flag.
  return enc;
}

nn::Mat OneHotEncodingMatrix(int32_t domain) {
  nn::Mat enc(domain + 1, domain + 1);
  for (int32_t c = 0; c <= domain; ++c) enc.at(c, c) = 1.f;
  return enc;
}

}  // namespace uae::data
