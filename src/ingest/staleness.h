// StalenessMonitor — decides WHICH shards have drifted far enough from their
// trained snapshot to be worth refreshing. Mirrors online::DriftMonitor's
// role in the feedback loop, but reads ingest-side signals (what arrived)
// instead of serve-side ones (what mis-estimated): per-shard rows since the
// last refresh, delta/base ratio, and new unseen-value rows. The refresh
// layer retrains ONLY the shards flagged here — everything else keeps
// bit-identical parameters across the refresh cycle.
#pragma once

#include <cstddef>
#include <vector>

#include "ingest/service.h"

namespace uae::ingest {

/// A shard is stale when ANY enabled trigger fires (0 disables a trigger).
struct StalenessConfig {
  /// Fire when rows routed to the shard since its last refresh reach this.
  size_t trigger_rows = 256;
  /// Fire when (pending rows / shard base rows) reaches this.
  double trigger_delta_ratio = 0.10;
  /// Fire when unseen-value rows arrived since the last refresh reach this
  /// (a new tail must be published for them to become queryable).
  size_t trigger_unseen_rows = 64;
};

struct ShardStaleness {
  int shard = 0;
  size_t base_rows = 0;            ///< Shard rows at partition time.
  size_t rows_since_refresh = 0;
  size_t unseen_since_refresh = 0;
  double delta_ratio = 0.0;
  bool stale = false;
};

class StalenessMonitor {
 public:
  /// `service` must outlive the monitor.
  StalenessMonitor(const IngestService* service, const StalenessConfig& config)
      : service_(service), config_(config) {}

  /// Per-shard staleness, computed from the buffers' live counters.
  std::vector<ShardStaleness> Snapshot() const;
  /// Shards whose triggers fired, ascending.
  std::vector<int> StaleShards() const;

  const StalenessConfig& config() const { return config_; }

 private:
  const IngestService* service_;
  StalenessConfig config_;
};

}  // namespace uae::ingest
