#include "ingest/refresh.h"

#include <algorithm>
#include <chrono>

#include "online/controller.h"

namespace uae::ingest {

const char* RefreshOutcomeName(RefreshOutcome outcome) {
  switch (outcome) {
    case RefreshOutcome::kSkippedNoStaleShards:
      return "skipped_no_stale_shards";
    case RefreshOutcome::kSkippedBusy:
      return "skipped_busy";
    case RefreshOutcome::kRejectedByGuard:
      return "rejected_by_guard";
    case RefreshOutcome::kPublished:
      return "published";
  }
  return "?";
}

RefreshController::RefreshController(
    IngestService* ingest, serve::EstimationService* service,
    std::shared_ptr<const shard::ShardedUae> base, const RefreshConfig& config)
    : ingest_(ingest),
      service_(service),
      config_(config),
      monitor_(ingest, config.staleness),
      base_(std::move(base)) {
  UAE_CHECK(ingest_ != nullptr && service_ != nullptr && base_ != nullptr);
  UAE_CHECK_EQ(base_->num_shards(), ingest_->num_shards());
}

RefreshController::~RefreshController() { Stop(); }

std::shared_ptr<const shard::ShardedUae> RefreshController::current_base() const {
  std::lock_guard<std::mutex> lock(base_mu_);
  return base_;
}

RefreshStats RefreshController::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

RefreshResult RefreshController::RefreshIfStale() {
  std::unique_lock<std::mutex> busy(busy_mu_, std::try_to_lock);
  if (!busy.owns_lock()) {
    RefreshResult result;
    result.outcome = RefreshOutcome::kSkippedBusy;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.skipped;
    return result;
  }
  return RunRefresh(monitor_.StaleShards(), std::move(busy));
}

RefreshResult RefreshController::RefreshShards(std::vector<int> shards) {
  std::unique_lock<std::mutex> busy(busy_mu_, std::try_to_lock);
  if (!busy.owns_lock()) {
    RefreshResult result;
    result.outcome = RefreshOutcome::kSkippedBusy;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.skipped;
    return result;
  }
  if (shards.empty()) {
    for (int s = 0; s < ingest_->num_shards(); ++s) {
      if (ingest_->shard_buffer(s).rows_since_refresh() > 0) {
        shards.push_back(s);
      }
    }
  }
  return RunRefresh(std::move(shards), std::move(busy));
}

RefreshResult RefreshController::RunRefresh(std::vector<int> shards,
                                            std::unique_lock<std::mutex> busy) {
  RefreshResult result;
  if (shards.empty()) {
    result.outcome = RefreshOutcome::kSkippedNoStaleShards;
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.skipped;
    return result;
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::sort(shards.begin(), shards.end());

  const int n = ingest_->num_shards();
  std::vector<uint8_t> refresh_set(static_cast<size_t>(n), 0);
  for (int s : shards) refresh_set[static_cast<size_t>(s)] = 1;

  // Snapshot phase, under the table pin (appends continue; compaction waits):
  // cut each buffer, gather pending in-domain rows per stale shard, and
  // collect every overflow row's codes for the tail.
  std::vector<size_t> cuts(static_cast<size_t>(n), 0);
  std::vector<data::Table> deltas;
  std::vector<int> delta_shards;
  std::vector<std::vector<int32_t>> tail;
  {
    auto pin = ingest_->PinTable();
    const data::Table& table = ingest_->table();
    for (int s = 0; s < n; ++s) {
      const DeltaBuffer& buf = ingest_->shard_buffer(s);
      const size_t cut = buf.size();
      cuts[static_cast<size_t>(s)] = cut;
      for (size_t i = 0; i < cut; ++i) {
        if (buf.overflow_at(i)) tail.push_back(table.RowCodes(buf.row_at(i)));
      }
      if (!refresh_set[static_cast<size_t>(s)]) continue;
      std::vector<size_t> rows;
      for (size_t i = buf.watermark(); i < cut; ++i) {
        if (!buf.overflow_at(i)) rows.push_back(buf.row_at(i));
      }
      if (!rows.empty()) {
        deltas.push_back(table.Gather(
            rows, table.name() + "_delta_shard" + std::to_string(s)));
        delta_shards.push_back(s);
        result.rows_ingested += rows.size();
      }
    }
  }
  result.refreshed_shards = shards;
  result.tail_rows = tail.size();

  // Training phase, off the pin: clone the typed lineage head and ingest each
  // stale shard's delta (the other shards' parameters stay bit-identical).
  std::shared_ptr<const shard::ShardedUae> lineage = current_base();
  std::unique_ptr<shard::ShardedUae> candidate = lineage->Clone();
  for (size_t i = 0; i < deltas.size(); ++i) {
    candidate->IngestShardRows(delta_shards[i], deltas[i], config_.data_epochs);
  }
  std::shared_ptr<shard::ShardedUae> refreshed(std::move(candidate));
  std::shared_ptr<core::ServableModel> servable = refreshed;
  if (!tail.empty()) {
    servable = std::make_shared<DeltaAwareModel>(refreshed, &ingest_->table(),
                                                 std::move(tail));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.attempts;
  }

  if (config_.guard_max_ratio > 0 && config_.holdout_provider) {
    const workload::Workload holdout = config_.holdout_provider();
    auto incumbent = service_->CurrentSnapshot();
    const online::GuardVerdict verdict = online::EvaluateCandidate(
        *incumbent->model, *servable, holdout, config_.guard_max_ratio);
    result.incumbent_median = verdict.incumbent_median;
    result.candidate_median = verdict.candidate_median;
    if (!verdict.accept) {
      result.outcome = RefreshOutcome::kRejectedByGuard;
      result.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected;
      return result;
    }
  }

  result.generation = service_->PublishSnapshot(servable);
  for (int s : shards) {
    // Safe concurrently with the apply thread: MarkRefreshed only advances
    // the cut this cycle snapshotted.
    ingest_->mutable_shard_buffer(s).MarkRefreshed(cuts[static_cast<size_t>(s)]);
  }
  {
    std::lock_guard<std::mutex> lock(base_mu_);
    base_ = refreshed;
  }
  result.outcome = RefreshOutcome::kPublished;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.published;
  stats_.rows_ingested += result.rows_ingested;
  stats_.last_published_generation = result.generation;
  return result;
}

void RefreshController::Start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(poll_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { PollLoop(); });
}

void RefreshController::Stop() {
  {
    std::lock_guard<std::mutex> lock(poll_mu_);
    stop_ = true;
  }
  poll_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void RefreshController::PollLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(poll_mu_);
      poll_cv_.wait_for(lock, std::chrono::milliseconds(config_.period_ms),
                        [this] { return stop_; });
      if (stop_) return;
    }
    RefreshIfStale();
  }
}

}  // namespace uae::ingest
