// DeltaAwareModel — a ServableModel decorator that makes streamed-in rows
// carrying OVERFLOW codes (values unseen when the dictionaries froze)
// queryable without any dictionary remapping.
//
// Trained models can never absorb overflow codes: their input masks and
// embeddings cover the frozen code space only (core::Uae::IngestDataRows
// CHECK-rejects codes past the frozen domain). Instead of remapping — which
// would invalidate every compiled query and cached result — the refresh
// layer publishes `model + tail`: the wrapped model answers for all rows
// inside the frozen value space, and the tail is the exact, frozen set of
// overflow-carrying rows counted by direct evaluation. Tails stay small by
// construction (unseen values are the exception, not the rule), and the
// count is exact, so a query naming a brand-new value gets its true
// cardinality the moment a refresh publishes.
//
// Matching a tail row is exact for equality / IN / != / point ranges, since
// overflow codes are stable: the query compiler resolves a literal to the
// same code the ingest path assigned. True ranges (lo < hi) over an overflow
// code fall back to comparing the row's VALUE against the dictionary values
// at the range's frozen endpoints — overflow codes carry no order. This is
// conservative at the open fringes of the interval (a value strictly outside
// the frozen endpoints but inside the original predicate bounds is missed);
// exactness there would need the uncompiled value bounds, which the Query
// does not carry.
//
// Determinism: the tail is frozen at construction, the inner model is
// immutable once published — estimates stay pure functions of (model, query)
// per generation, as the serving layer requires.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/servable.h"
#include "data/table.h"

namespace uae::ingest {

class DeltaAwareModel : public core::ServableModel {
 public:
  /// `tail_rows` holds the overflow-carrying rows, row-major, one code per
  /// table column each. `table` is the live table: only its dictionaries are
  /// read (frozen dict + already-assigned overflow values, both immutable),
  /// never its rows, so concurrent ingest is safe. Both `inner` and `table`
  /// must outlive the model.
  DeltaAwareModel(std::shared_ptr<const core::ServableModel> inner,
                  const data::Table* table,
                  std::vector<std::vector<int32_t>> tail_rows);

  double EstimateCard(const workload::Query& query) const override;
  std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const override;
  bool SupportsJoinQueries() const override {
    return inner_->SupportsJoinQueries();
  }
  /// Joins pass through untouched: tails are single-table row sets and a
  /// JoinUniverse model owns its own (frozen) fact rows.
  double EstimateJoinCard(const workload::JoinQuery& query) const override {
    return inner_->EstimateJoinCard(query);
  }
  std::vector<double> EstimateJoinCards(
      std::span<const workload::JoinQuery> queries) const override {
    return inner_->EstimateJoinCards(queries);
  }

  size_t SizeBytes() const override;
  size_t num_rows() const override { return inner_->num_rows() + tail_->size(); }
  uint64_t seed() const override { return inner_->seed(); }
  std::shared_ptr<core::ServableModel> CloneServable() const override;
  size_t FineTune(const workload::Workload& workload,
                  const core::FineTuneSpec& spec) override;

  const core::ServableModel& inner() const { return *inner_; }
  size_t tail_rows() const { return tail_->size(); }

  /// Exact number of tail rows matching `query` (exposed for tests).
  size_t CountTail(const workload::Query& query) const;

 private:
  std::shared_ptr<const core::ServableModel> inner_;
  const data::Table* table_;
  /// Overflow-carrying rows, frozen at construction; shared with clones.
  std::shared_ptr<const std::vector<std::vector<int32_t>>> tail_;
};

}  // namespace uae::ingest
