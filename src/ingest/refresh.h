// RefreshController — staleness-driven incremental refresh: the ingest-side
// twin of online::AdaptationController. Where the adaptation loop reacts to
// what MIS-ESTIMATED (query feedback), this loop reacts to what ARRIVED
// (per-shard delta buffers), and reuses the same safety rails: a busy
// try-lock (max one refresh in flight), an optional held-out regression
// guard (online::EvaluateCandidate), and publication through the
// generation-keyed snapshot path.
//
// One refresh cycle:
//   1. StalenessMonitor flags the drifted shards (rows / ratio / unseen
//      triggers) — ONLY those shards retrain.
//   2. Under IngestService::PinTable, gather each stale shard's pending
//      in-domain delta rows (global row indices from its DeltaBuffer) into a
//      dictionary-sharing snapshot table, and collect every overflow-carrying
//      row (all shards) into the tail set.
//   3. Clone the current base model (shard::ShardedUae::Clone — bit-identical
//      parameters), then IngestShardRows per stale shard: §4.5 incremental
//      data training on the new rows only. Untouched shards keep bitwise-
//      identical parameters through clone + publish.
//   4. Wrap with ingest::DeltaAwareModel when the tail is non-empty (unseen
//      values answer exactly), guard if configured, PublishSnapshot, and
//      advance the refreshed shards' buffer watermarks.
//
// Lineage: the controller owns the typed model chain (base -> refreshed ->
// refreshed ...). Query-feedback fine-tunes published in between by an
// AdaptationController are superseded by the next data refresh, which clones
// from this chain — the two loops coexist, data refresh being the anchor.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ingest/delta_model.h"
#include "ingest/service.h"
#include "ingest/staleness.h"
#include "serve/service.h"
#include "shard/sharded_uae.h"

namespace uae::ingest {

struct RefreshConfig {
  StalenessConfig staleness;
  /// Unsupervised epochs over each stale shard's new rows (§4.5: a few small
  /// epochs on the delta suffice).
  int data_epochs = 2;
  /// > 0 enables the regression guard: the candidate must keep
  ///   median q-error <= incumbent's * guard_max_ratio
  /// on the holdout workload, or the refresh is rejected (watermarks stay,
  /// so the next cycle retries with more data).
  double guard_max_ratio = 0.0;
  /// Supplies the held-out workload when the guard is enabled (e.g. freshly
  /// labeled queries over the live table).
  std::function<workload::Workload()> holdout_provider;
  uint64_t period_ms = 100;  ///< Background staleness-poll period.
};

enum class RefreshOutcome {
  kSkippedNoStaleShards,  ///< No trigger fired.
  kSkippedBusy,           ///< Another refresh is in flight.
  kRejectedByGuard,       ///< Candidate was worse on the holdout.
  kPublished,             ///< Refreshed model hot-swapped.
};

const char* RefreshOutcomeName(RefreshOutcome outcome);

struct RefreshResult {
  RefreshOutcome outcome = RefreshOutcome::kSkippedNoStaleShards;
  std::vector<int> refreshed_shards;
  size_t rows_ingested = 0;       ///< In-domain delta rows trained on.
  size_t tail_rows = 0;           ///< Overflow rows in the published tail.
  uint64_t generation = 0;        ///< Published generation (kPublished only).
  double incumbent_median = 0.0;  ///< Guard medians (guard runs only).
  double candidate_median = 0.0;
  double seconds = 0.0;
};

struct RefreshStats {
  uint64_t attempts = 0;  ///< Cycles that reached retraining.
  uint64_t published = 0;
  uint64_t rejected = 0;
  uint64_t skipped = 0;
  uint64_t rows_ingested = 0;
  uint64_t last_published_generation = 0;
};

class RefreshController {
 public:
  /// `ingest` and `service` must outlive the controller; `base` is the typed
  /// model the published snapshot was built from (the controller clones it,
  /// never mutates it).
  RefreshController(IngestService* ingest, serve::EstimationService* service,
                    std::shared_ptr<const shard::ShardedUae> base,
                    const RefreshConfig& config = {});
  ~RefreshController();
  UAE_DISALLOW_COPY(RefreshController);

  /// Refreshes the stale shards, if any (synchronous building block).
  RefreshResult RefreshIfStale();
  /// Refreshes an explicit shard set regardless of staleness (empty = all
  /// shards with pending rows). Still subject to the busy lock and guard.
  RefreshResult RefreshShards(std::vector<int> shards);

  /// Autonomous mode: polls RefreshIfStale() every period_ms until Stop().
  void Start();
  void Stop();
  bool running() const { return thread_.joinable(); }

  const StalenessMonitor& monitor() const { return monitor_; }
  /// Head of the typed lineage (latest refreshed model).
  std::shared_ptr<const shard::ShardedUae> current_base() const;
  RefreshStats Stats() const;
  const RefreshConfig& config() const { return config_; }

 private:
  RefreshResult RunRefresh(std::vector<int> shards,
                           std::unique_lock<std::mutex> busy);
  void PollLoop();

  IngestService* ingest_;
  serve::EstimationService* service_;
  const RefreshConfig config_;
  StalenessMonitor monitor_;

  mutable std::mutex base_mu_;
  std::shared_ptr<const shard::ShardedUae> base_;

  std::mutex busy_mu_;  ///< Max one refresh in flight (try_lock).
  mutable std::mutex stats_mu_;
  RefreshStats stats_;

  std::thread thread_;
  std::mutex poll_mu_;
  std::condition_variable poll_cv_;
  bool stop_ = false;
};

}  // namespace uae::ingest
