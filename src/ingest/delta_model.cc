#include "ingest/delta_model.h"

#include <algorithm>

#include "util/common.h"

namespace uae::ingest {

DeltaAwareModel::DeltaAwareModel(
    std::shared_ptr<const core::ServableModel> inner, const data::Table* table,
    std::vector<std::vector<int32_t>> tail_rows)
    : inner_(std::move(inner)),
      table_(table),
      tail_(std::make_shared<const std::vector<std::vector<int32_t>>>(
          std::move(tail_rows))) {
  UAE_CHECK(inner_ != nullptr && table_ != nullptr);
  for (const auto& row : *tail_) {
    UAE_CHECK_EQ(row.size(), static_cast<size_t>(table_->num_cols()));
  }
}

namespace {

bool TailCodeMatches(const workload::Constraint& con, int32_t code,
                     const data::Column& column) {
  const int32_t domain = column.domain();
  if (code < domain) return con.Matches(code);
  // Overflow code: stable but unordered. Equality-shaped constraints resolve
  // exactly by code; true ranges compare values at the frozen endpoints.
  switch (con.kind) {
    case workload::Constraint::Kind::kNone:
      return true;
    case workload::Constraint::Kind::kNotEqual:
      return code != con.neq;
    case workload::Constraint::Kind::kIn:
      return std::binary_search(con.in_codes.begin(), con.in_codes.end(), code);
    case workload::Constraint::Kind::kRange: {
      if (con.lo == con.hi) return code == con.lo;  // Compiled equality.
      const int32_t lo = std::max(con.lo, 0);
      const int32_t hi = std::min(con.hi, domain - 1);
      if (lo > hi || domain == 0) return false;
      const data::Value& v = column.ValueForCode(code);
      return !(v < column.ValueForCode(lo)) && !(column.ValueForCode(hi) < v);
    }
  }
  return false;
}

}  // namespace

size_t DeltaAwareModel::CountTail(const workload::Query& query) const {
  if (tail_->empty()) return 0;
  const int ncols = std::min(query.num_cols(), table_->num_cols());
  size_t count = 0;
  for (const auto& row : *tail_) {
    bool match = true;
    for (int c = 0; c < ncols && match; ++c) {
      const workload::Constraint& con = query.constraint(c);
      if (!con.IsActive()) continue;
      match = TailCodeMatches(con, row[static_cast<size_t>(c)],
                              table_->column(c));
    }
    if (match) ++count;
  }
  return count;
}

double DeltaAwareModel::EstimateCard(const workload::Query& query) const {
  return inner_->EstimateCard(query) +
         static_cast<double>(CountTail(query));
}

std::vector<double> DeltaAwareModel::EstimateCards(
    std::span<const workload::Query> queries) const {
  std::vector<double> out = inner_->EstimateCards(queries);
  for (size_t i = 0; i < queries.size(); ++i) {
    out[i] += static_cast<double>(CountTail(queries[i]));
  }
  return out;
}

size_t DeltaAwareModel::SizeBytes() const {
  size_t tail_bytes = 0;
  for (const auto& row : *tail_) tail_bytes += row.size() * sizeof(int32_t);
  return inner_->SizeBytes() + tail_bytes;
}

std::shared_ptr<core::ServableModel> DeltaAwareModel::CloneServable() const {
  auto clone = std::shared_ptr<DeltaAwareModel>(new DeltaAwareModel(*this));
  clone->inner_ = inner_->CloneServable();
  return clone;
}

size_t DeltaAwareModel::FineTune(const workload::Workload& workload,
                                 const core::FineTuneSpec& spec) {
  // The decorator's inner pointer is const-shared (publish path); fine-tuning
  // goes through CloneServable first, which deep-copies the inner model.
  std::shared_ptr<core::ServableModel> mutable_inner = inner_->CloneServable();
  const size_t used = mutable_inner->FineTune(workload, spec);
  if (used > 0) inner_ = mutable_inner;
  return used;
}

}  // namespace uae::ingest
