// DeltaBuffer — the per-shard ledger of streamed-in rows.
//
// The ingest apply thread routes every appended row to the shard that owns
// its partition-column value (HorizontalPartitioner::ShardForIngestCode) and
// records it here as a packed (global row index, overflow flag) entry. Row
// indices are GLOBAL indices into the live table and stay valid forever:
// rows only ever append, and Table::FoldDelta preserves order — so the
// refresh layer can Gather a shard's pending rows long after the delta they
// arrived in was compacted away.
//
// The overflow flag marks rows carrying at least one code above its column's
// frozen domain. Such rows can never enter a model (trained masks cover the
// frozen code space only); the refresh layer accounts for them exactly via
// ingest::DeltaAwareModel's tail instead.
//
// Concurrency: the ingest apply thread is the only Append caller; the
// refresh thread is the only MarkRefreshed caller; any thread may read the
// counters and published entries. All cross-thread state is atomics or
// AppendOnlyStore publications — no locks.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "data/append_store.h"
#include "util/common.h"

namespace uae::ingest {

class DeltaBuffer {
 public:
  DeltaBuffer() = default;
  UAE_DISALLOW_COPY(DeltaBuffer);

  /// Records an appended row (single writer: the ingest apply thread).
  void Append(size_t row, bool overflow) {
    entries_.Append((static_cast<uint64_t>(row) << 1) |
                    (overflow ? 1u : 0u));
    if (overflow) overflow_rows_.fetch_add(1, std::memory_order_release);
  }

  /// Entries recorded so far (rows routed to this shard).
  size_t size() const { return entries_.size(); }
  /// Entries this shard's model has absorbed (refresh cut; monotone).
  size_t watermark() const { return watermark_.load(std::memory_order_acquire); }
  /// Rows routed here since the last refresh — the primary staleness signal.
  size_t rows_since_refresh() const { return size() - watermark(); }

  /// Total overflow-carrying rows ever routed here.
  size_t overflow_rows() const {
    return overflow_rows_.load(std::memory_order_acquire);
  }
  /// Overflow-carrying rows below the refresh cut (already in a published
  /// tail).
  size_t overflow_refreshed() const {
    return overflow_refreshed_.load(std::memory_order_acquire);
  }
  /// New unseen-value rows since the last refresh — the tail-staleness signal.
  size_t overflow_since_refresh() const {
    return overflow_rows() - overflow_refreshed();
  }

  /// Global table row index of entry i (requires i < a size() you observed).
  size_t row_at(size_t i) const {
    return static_cast<size_t>(entries_.at(i) >> 1);
  }
  /// Whether entry i carries an overflow code.
  bool overflow_at(size_t i) const { return (entries_.at(i) & 1u) != 0; }

  /// Advances the refresh cut to `new_watermark` (refresh thread only),
  /// counting the overflow entries it just consumed.
  void MarkRefreshed(size_t new_watermark) {
    const size_t old = watermark();
    UAE_DCHECK(new_watermark >= old && new_watermark <= size());
    size_t overflow_consumed = 0;
    for (size_t i = old; i < new_watermark; ++i) {
      if (overflow_at(i)) ++overflow_consumed;
    }
    if (overflow_consumed > 0) {
      overflow_refreshed_.fetch_add(overflow_consumed,
                                    std::memory_order_release);
    }
    watermark_.store(new_watermark, std::memory_order_release);
  }

 private:
  data::AppendOnlyStore<uint64_t, 4096, 4096> entries_;
  std::atomic<size_t> overflow_rows_{0};
  std::atomic<size_t> overflow_refreshed_{0};
  std::atomic<size_t> watermark_{0};
};

}  // namespace uae::ingest
