#include "ingest/staleness.h"

namespace uae::ingest {

std::vector<ShardStaleness> StalenessMonitor::Snapshot() const {
  const int n = service_->num_shards();
  std::vector<ShardStaleness> out(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    ShardStaleness& st = out[static_cast<size_t>(s)];
    const DeltaBuffer& buf = service_->shard_buffer(s);
    st.shard = s;
    st.base_rows = service_->shard_base_rows(s);
    st.rows_since_refresh = buf.rows_since_refresh();
    st.unseen_since_refresh = buf.overflow_since_refresh();
    st.delta_ratio = st.base_rows == 0
                         ? (st.rows_since_refresh > 0 ? 1.0 : 0.0)
                         : static_cast<double>(st.rows_since_refresh) /
                               static_cast<double>(st.base_rows);
    const bool by_rows = config_.trigger_rows > 0 &&
                         st.rows_since_refresh >= config_.trigger_rows;
    const bool by_ratio = config_.trigger_delta_ratio > 0 &&
                          st.delta_ratio >= config_.trigger_delta_ratio;
    const bool by_unseen = config_.trigger_unseen_rows > 0 &&
                           st.unseen_since_refresh >= config_.trigger_unseen_rows;
    st.stale = by_rows || by_ratio || by_unseen;
  }
  return out;
}

std::vector<int> StalenessMonitor::StaleShards() const {
  std::vector<int> out;
  for (const ShardStaleness& st : Snapshot()) {
    if (st.stale) out.push_back(st.shard);
  }
  return out;
}

}  // namespace uae::ingest
