#include "ingest/service.h"

#include <algorithm>

namespace uae::ingest {

IngestService::IngestService(data::Table* table,
                             const shard::HorizontalPartitioner* partitioner,
                             const IngestConfig& config)
    : table_(table), partitioner_(partitioner), config_(config) {
  UAE_CHECK(table_ != nullptr && partitioner_ != nullptr);
  UAE_CHECK_GE(config_.queue_capacity, size_t{1});
  UAE_CHECK_GE(config_.max_batch, size_t{1});
  buffers_.reserve(static_cast<size_t>(partitioner_->num_shards()));
  for (int s = 0; s < partitioner_->num_shards(); ++s) {
    buffers_.push_back(std::make_unique<DeltaBuffer>());
  }
  apply_thread_ = std::thread([this] { ApplyLoop(); });
}

IngestService::~IngestService() {
  Close();
  if (apply_thread_.joinable()) apply_thread_.join();
}

bool IngestService::Append(std::vector<data::Value> values) {
  PendingRow row;
  row.values = std::move(values);
  row.encoded = false;
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock,
                 [this] { return closed_ || queue_.size() < config_.queue_capacity; });
  if (closed_) return false;
  row.seq = next_seq_++;
  if (queue_.empty()) oldest_enqueue_ = std::chrono::steady_clock::now();
  queue_.push_back(std::move(row));
  apply_cv_.notify_one();
  return true;
}

bool IngestService::AppendCodes(std::vector<int32_t> codes) {
  PendingRow row;
  row.codes = std::move(codes);
  row.encoded = true;
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock,
                 [this] { return closed_ || queue_.size() < config_.queue_capacity; });
  if (closed_) return false;
  row.seq = next_seq_++;
  if (queue_.empty()) oldest_enqueue_ = std::chrono::steady_clock::now();
  queue_.push_back(std::move(row));
  apply_cv_.notify_one();
  return true;
}

void IngestService::Flush() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  const uint64_t target = next_seq_ - 1;
  flushed_cv_.wait(lock, [this, target] { return applied_seq_ >= target; });
}

void IngestService::Close() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (closed_) return;
    closed_ = true;
  }
  queue_cv_.notify_all();
  apply_cv_.notify_all();
}

size_t IngestService::CompactNow() {
  // writer_mu_ first: a fold must never overlap the apply thread's appends
  // (the delta region is single-writer; FoldDelta consumes the published
  // prefix and resets the count).
  std::lock_guard<std::mutex> writer(writer_mu_);
  return CompactLocked();
}

size_t IngestService::CompactLocked() {
  size_t folded = 0;
  {
    std::unique_lock<std::shared_mutex> exclusive(table_mu_);
    folded = table_->FoldDelta();
  }
  if (folded > 0) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.compactions;
    stats_.folded_rows += folded;
  }
  return folded;
}

IngestStats IngestService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

size_t IngestService::QueueDepth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void IngestService::ApplyLoop() {
  std::vector<PendingRow> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      apply_cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (closed_) return;
        continue;
      }
      // Batch admission, MicroBatcher-style: wait (bounded by max_wait from
      // the oldest queued row) for a full batch, then take up to max_batch.
      const auto deadline = oldest_enqueue_ + config_.max_wait;
      apply_cv_.wait_until(lock, deadline, [this] {
        return closed_ || queue_.size() >= config_.max_batch;
      });
      const size_t take = std::min(queue_.size(), config_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      if (!queue_.empty()) oldest_enqueue_ = std::chrono::steady_clock::now();
    }
    queue_cv_.notify_all();
    {
      std::lock_guard<std::mutex> writer(writer_mu_);
      ApplyBatch(batch);
      MaybeCompact();
    }
    uint64_t applied = batch.back().seq;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      applied_seq_ = std::max(applied_seq_, applied);
    }
    flushed_cv_.notify_all();
  }
}

void IngestService::ApplyBatch(std::vector<PendingRow>& batch) {
  const int pcol = partitioner_->partition_col();
  const data::Column& pcolumn = table_->column(pcol);
  uint64_t appended = 0, rejected = 0, unseen = 0, overflow_rows = 0;
  std::vector<int32_t> codes;
  for (PendingRow& row : batch) {
    const int32_t* row_codes = nullptr;
    size_t arity = 0;
    if (row.encoded) {
      row_codes = row.codes.data();
      arity = row.codes.size();
    } else {
      if (row.values.size() != static_cast<size_t>(table_->num_cols())) {
        ++rejected;
        continue;
      }
      unseen += static_cast<uint64_t>(table_->EncodeAppendRow(row.values, &codes));
      row_codes = codes.data();
      arity = codes.size();
    }
    // The global index of the row about to be appended (single writer: no
    // other append can interleave).
    const size_t global_row = table_->num_rows();
    util::Status status =
        table_->AppendDeltaRowCodes(std::span<const int32_t>(row_codes, arity));
    if (!status.ok()) {
      ++rejected;
      continue;
    }
    bool has_overflow = false;
    for (size_t c = 0; c < arity; ++c) {
      if (row_codes[c] >= table_->column(static_cast<int>(c)).domain()) {
        has_overflow = true;
        break;
      }
    }
    const int shard =
        partitioner_->ShardForIngestCode(row_codes[static_cast<size_t>(pcol)],
                                         pcolumn);
    buffers_[static_cast<size_t>(shard)]->Append(global_row, has_overflow);
    ++appended;
    if (has_overflow) ++overflow_rows;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.rows_appended += appended;
  stats_.rows_rejected += rejected;
  stats_.unseen_values += unseen;
  stats_.overflow_rows += overflow_rows;
  ++stats_.batches;
}

void IngestService::MaybeCompact() {
  if (config_.compact_min_delta == 0) return;
  if (table_->delta_rows() >= config_.compact_min_delta) CompactLocked();
}

}  // namespace uae::ingest
