// IngestService — the streaming append path: a bounded multi-producer queue
// in front of a single apply thread that encodes rows, appends them to the
// live table's delta region, routes them to per-shard DeltaBuffers, and
// compacts the delta into the base region when it grows past a threshold.
//
// Why a single apply thread: the data-layer delta region is single-writer by
// design (lock-free readers synchronize on one published row count). The
// queue gives producers the multi-producer surface — batch admission and
// backpressure exactly like serve::MicroBatcher — while keeping the actual
// mutation serial and therefore cheap.
//
// Locking: appends never block readers. The ONLY reader-disturbing operation
// is compaction (Table::FoldDelta reallocates the base code vectors), so the
// service exposes PinTable(): scans of live rows (refresh gathers, bench
// labeling) hold the shared side; the compactor takes the exclusive side.
// Serving traffic never touches the live table (models own materialized
// shard snapshots) and needs no pin.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "data/table.h"
#include "ingest/delta_buffer.h"
#include "shard/partitioner.h"
#include "util/status.h"

namespace uae::ingest {

struct IngestConfig {
  size_t queue_capacity = 4096;  ///< Producers block (backpressure) above this.
  size_t max_batch = 256;        ///< Rows admitted per apply batch.
  /// An admitted batch waits at most this long (anchored at the oldest queued
  /// row) before applying short.
  std::chrono::microseconds max_wait{500};
  /// Fold the delta region into the base once it holds this many rows
  /// (0 disables auto-compaction; CompactNow() is always available).
  size_t compact_min_delta = 16384;
};

struct IngestStats {
  uint64_t rows_appended = 0;  ///< Rows applied to the table.
  uint64_t rows_rejected = 0;  ///< Pre-encoded rows that failed validation.
  uint64_t unseen_values = 0;  ///< Overflow dictionary entries created.
  uint64_t overflow_rows = 0;  ///< Applied rows carrying >=1 overflow code.
  uint64_t batches = 0;        ///< Apply batches executed.
  uint64_t compactions = 0;    ///< FoldDelta calls.
  uint64_t folded_rows = 0;    ///< Rows moved base-ward by compaction.
};

class IngestService {
 public:
  /// `table` is the live table (the service becomes its single delta writer);
  /// `partitioner` is the shard map the serving models were built on. Both
  /// must outlive the service. Starts the apply thread.
  IngestService(data::Table* table,
                const shard::HorizontalPartitioner* partitioner,
                const IngestConfig& config = {});
  ~IngestService();
  UAE_DISALLOW_COPY(IngestService);

  // ---- Producers (any thread) ----------------------------------------------
  /// Enqueues a row of values (encoded on the apply thread; unseen values get
  /// stable overflow codes). Blocks while the queue is full; returns false
  /// once Close() has been called.
  bool Append(std::vector<data::Value> values);
  /// Enqueues a pre-encoded row. Codes are validated at apply time against
  /// the then-current total domain; invalid rows are dropped and counted in
  /// stats().rows_rejected.
  bool AppendCodes(std::vector<int32_t> codes);

  /// Blocks until every row enqueued before the call has been applied.
  void Flush();
  /// Unblocks producers and stops the apply thread after draining the queue.
  /// Idempotent; the destructor calls it.
  void Close();

  // ---- Compaction ----------------------------------------------------------
  /// Folds the delta region into the base region now (exclusive with pinned
  /// readers). Returns rows folded.
  size_t CompactNow();

  /// Pins the live table against compaction: hold the returned lock while
  /// scanning rows up to a num_rows() observed under it. Appends continue
  /// concurrently (they never disturb readers).
  std::shared_lock<std::shared_mutex> PinTable() const {
    return std::shared_lock<std::shared_mutex>(table_mu_);
  }

  // ---- Introspection -------------------------------------------------------
  const data::Table& table() const { return *table_; }
  int num_shards() const { return partitioner_->num_shards(); }
  const DeltaBuffer& shard_buffer(int s) const {
    return *buffers_[static_cast<size_t>(s)];
  }
  /// Refresh-side handle (MarkRefreshed is the refresh thread's write).
  DeltaBuffer& mutable_shard_buffer(int s) {
    return *buffers_[static_cast<size_t>(s)];
  }
  /// Base rows of shard s at partition time (staleness ratios divide by this).
  size_t shard_base_rows(int s) const {
    return partitioner_->shard(s).rows;
  }
  IngestStats stats() const;
  size_t QueueDepth() const;

 private:
  struct PendingRow {
    std::vector<data::Value> values;  ///< Used when !encoded.
    std::vector<int32_t> codes;       ///< Used when encoded.
    bool encoded = false;
    uint64_t seq = 0;
  };

  void ApplyLoop();
  void ApplyBatch(std::vector<PendingRow>& batch);
  void MaybeCompact();
  size_t CompactLocked();  ///< Caller holds writer_mu_.

  data::Table* table_;
  const shard::HorizontalPartitioner* partitioner_;
  const IngestConfig config_;
  std::vector<std::unique_ptr<DeltaBuffer>> buffers_;

  /// Serializes table mutation: the apply thread holds it across each batch,
  /// and external CompactNow() takes it so a fold never runs concurrently
  /// with the single writer's appends. Readers never touch it. Lock order:
  /// writer_mu_ before table_mu_.
  std::mutex writer_mu_;
  /// Serializes compaction (exclusive) against live-row scans (shared).
  mutable std::shared_mutex table_mu_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;     ///< Producers wait for space.
  std::condition_variable apply_cv_;     ///< Apply thread waits for rows.
  std::condition_variable flushed_cv_;   ///< Flush waits for applied_seq_.
  std::deque<PendingRow> queue_;
  uint64_t next_seq_ = 1;
  uint64_t applied_seq_ = 0;   ///< Highest seq fully applied.
  std::chrono::steady_clock::time_point oldest_enqueue_{};
  bool closed_ = false;

  mutable std::mutex stats_mu_;
  IngestStats stats_;

  std::thread apply_thread_;
};

}  // namespace uae::ingest
