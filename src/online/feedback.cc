#include "online/feedback.h"

#include <utility>

namespace uae::online {

FeedbackCollector::FeedbackCollector(const FeedbackConfig& config)
    : config_(config), rng_(config.seed) {
  UAE_CHECK_GT(config_.capacity, 0u);
  buffer_.reserve(config_.capacity);
}

void FeedbackCollector::Add(FeedbackEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  ++observed_;
  ++since_drain_;
  if (buffer_.size() < config_.capacity) {
    buffer_.push_back(std::move(entry));
    return;
  }
  switch (config_.policy) {
    case FeedbackPolicy::kSlidingWindow:
      // Ring overwrite: ring_next_ is the oldest surviving entry.
      buffer_[ring_next_] = std::move(entry);
      ring_next_ = (ring_next_ + 1) % config_.capacity;
      break;
    case FeedbackPolicy::kReservoir: {
      // Algorithm R: the new entry replaces a uniformly chosen victim with
      // probability capacity/n, keeping the buffer a uniform sample. The
      // denominator counts arrivals since the last Drain() — the stream the
      // current buffer actually represents — not lifetime arrivals, which
      // would freeze the reservoir after the first drain.
      uint64_t j = static_cast<uint64_t>(
          rng_.UniformInt(0, static_cast<int64_t>(since_drain_) - 1));
      if (j < config_.capacity) buffer_[static_cast<size_t>(j)] = std::move(entry);
      break;
    }
  }
}

size_t FeedbackCollector::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffer_.size();
}

uint64_t FeedbackCollector::TotalObserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_;
}

std::vector<FeedbackEntry> FeedbackCollector::OrderedLocked() const {
  // Under the sliding-window policy a full buffer is a ring: the slot about
  // to be overwritten is the oldest entry. Rotate so callers always see
  // arrival order. (Reservoir buffers have no meaningful order beyond
  // insertion; they are returned as stored, which is deterministic.)
  std::vector<FeedbackEntry> out;
  out.reserve(buffer_.size());
  if (config_.policy == FeedbackPolicy::kSlidingWindow &&
      buffer_.size() == config_.capacity) {
    for (size_t i = 0; i < buffer_.size(); ++i) {
      out.push_back(buffer_[(ring_next_ + i) % config_.capacity]);
    }
  } else {
    out = buffer_;
  }
  return out;
}

std::vector<FeedbackEntry> FeedbackCollector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return OrderedLocked();
}

std::vector<FeedbackEntry> FeedbackCollector::Drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FeedbackEntry> out = OrderedLocked();
  buffer_.clear();
  ring_next_ = 0;
  since_drain_ = 0;  // The reservoir restarts over the post-drain stream.
  return out;
}

workload::Workload FeedbackCollector::SnapshotWorkload(size_t num_rows) const {
  return ToWorkload(Snapshot(), num_rows);
}

workload::Workload ToWorkload(const std::vector<FeedbackEntry>& entries,
                              size_t num_rows) {
  std::vector<workload::Query> queries;
  std::vector<double> cards;
  queries.reserve(entries.size());
  cards.reserve(entries.size());
  for (const FeedbackEntry& e : entries) {
    if (e.join_mask != 0) continue;  // Join feedback feeds the subplan memo.
    queries.push_back(e.query);
    cards.push_back(e.true_card);
  }
  return workload::MakeLabeledWorkload(queries, cards, num_rows);
}

}  // namespace uae::online
