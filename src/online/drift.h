// DriftMonitor — notices when the served model has gone stale.
//
// Every feedback observation carries the q-error of a served estimate against
// the ground truth and the snapshot generation that produced the estimate.
// The monitor keeps a rolling window of these (generation, q-error) samples
// and evaluates quantiles (util/quantiles) over the samples of the *newest*
// generation only: a freshly published snapshot starts its evaluation from a
// clean slate instead of inheriting its predecessor's bad tail, and a stale
// model's degradation is judged on its own recent traffic.
//
// Check() fires when the rolling median (or optionally the p95) q-error of
// the current generation exceeds its threshold with at least `min_samples`
// observations — the trigger the AdaptationController polls.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>

#include "util/quantiles.h"

namespace uae::online {

struct DriftConfig {
  size_t window = 512;       ///< Rolling window of recent observations.
  size_t min_samples = 64;   ///< Required per-generation sample count to fire.
  double median_threshold = 3.0;  ///< Fire when the rolling median exceeds this.
  double p95_threshold = 0.0;     ///< Secondary trigger; 0 disables.
};

/// What Check() saw: quantiles over the newest generation's window samples.
struct DriftReport {
  bool fired = false;
  uint64_t generation = 0;  ///< Generation the quantiles describe.
  double median = 1.0;
  double p95 = 1.0;
  size_t samples = 0;       ///< Window samples of that generation.
};

class DriftMonitor {
 public:
  explicit DriftMonitor(const DriftConfig& config = {});

  /// Records one feedback observation (thread-safe).
  void Observe(uint64_t generation, double q_error);

  /// Quantiles + trigger decision over the newest generation's samples.
  DriftReport Check() const;

  /// Rolling q-error summary restricted to one generation's window samples
  /// (empty summary when the generation has aged out of the window).
  util::ErrorSummary SummaryForGeneration(uint64_t generation) const;

  uint64_t TotalObserved() const;
  const DriftConfig& config() const { return config_; }

 private:
  struct Sample {
    uint64_t generation = 0;
    double q_error = 1.0;
  };

  DriftConfig config_;
  mutable std::mutex mu_;
  std::deque<Sample> window_;
  uint64_t observed_ = 0;
  uint64_t newest_generation_ = 0;
};

}  // namespace uae::online
