#include "online/drift.h"

#include <algorithm>
#include <vector>

#include "util/common.h"

namespace uae::online {

DriftMonitor::DriftMonitor(const DriftConfig& config) : config_(config) {
  UAE_CHECK_GT(config_.window, 0u);
  UAE_CHECK_GT(config_.min_samples, 0u);
}

void DriftMonitor::Observe(uint64_t generation, double q_error) {
  std::lock_guard<std::mutex> lock(mu_);
  ++observed_;
  newest_generation_ = std::max(newest_generation_, generation);
  window_.push_back({generation, q_error});
  if (window_.size() > config_.window) window_.pop_front();
}

DriftReport DriftMonitor::Check() const {
  std::lock_guard<std::mutex> lock(mu_);
  DriftReport report;
  report.generation = newest_generation_;
  std::vector<double> errors;
  errors.reserve(window_.size());
  for (const Sample& s : window_) {
    if (s.generation == newest_generation_) errors.push_back(s.q_error);
  }
  report.samples = errors.size();
  if (errors.empty()) return report;
  report.median = util::Quantile(errors, 0.5);
  report.p95 = util::Quantile(std::move(errors), 0.95);
  if (report.samples >= config_.min_samples) {
    report.fired = report.median > config_.median_threshold ||
                   (config_.p95_threshold > 0.0 &&
                    report.p95 > config_.p95_threshold);
  }
  return report;
}

util::ErrorSummary DriftMonitor::SummaryForGeneration(uint64_t generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> errors;
  for (const Sample& s : window_) {
    if (s.generation == generation) errors.push_back(s.q_error);
  }
  return util::Summarize(errors);
}

uint64_t DriftMonitor::TotalObserved() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observed_;
}

}  // namespace uae::online
