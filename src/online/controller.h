// AdaptationController — closes the loop: serve -> feedback -> drift ->
// fine-tune -> hot-swap.
//
// On trigger (DriftMonitor fires on the currently served generation) or on
// demand, the controller drains a labeled mini-workload from the
// FeedbackCollector, splits it into a fine-tune slice and a held-out slice
// (deterministic seeded split), clones the incumbent snapshot, runs
// ServableModel::FineTune on the clone — the UAE-Q refinement of §4.5 for a
// monolithic Uae; per-shard routed fine-tuning for a ShardedUae, so drift
// localized to one partition refits only that shard's model — and publishes
// the candidate through EstimationService::PublishSnapshot.
//
// Safety rails:
//   * regression guard — the candidate is evaluated against the incumbent on
//     the held-out feedback slice; a candidate whose median q-error is worse
//     (beyond `guard_max_ratio`) is rejected, so a bad fine-tune can never
//     dethrone a healthy model;
//   * max-concurrent-finetune = 1 — a try-lock serializes adaptations; a
//     second trigger while one is in flight is skipped, not queued;
//   * cooldown — a minimum number of fresh feedback observations between
//     attempts, so the controller cannot thrash on the same drift signal;
//   * stale-signal suppression — a drift report describing a generation that
//     is no longer the served one is ignored.
//
// Start()/Stop() run the trigger poll on a background thread (the autonomous
// mode); AdaptIfDrifted()/AdaptNow() are the synchronous building blocks and
// are what deterministic tests drive directly.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "core/servable.h"
#include "online/drift.h"
#include "online/feedback.h"
#include "serve/service.h"

namespace uae::online {

struct AdaptationConfig {
  int finetune_steps = 80;        ///< TrainQuerySteps on the drained slice.
  /// When > 0, fine-tune with TrainHybridEpochs (L_data + lambda * L_query,
  /// Alg. 3) for this many epochs instead of pure UAE-Q steps — slower, but
  /// anchors the candidate to the data distribution (less forgetting).
  int hybrid_epochs = 0;
  /// Forwarded to FineTuneSpec.learning_rate: step size for backends with an
  /// explicit fine-tune learning rate (the SPN's multiplicative update).
  /// 0 keeps each model's own default; the UAE ignores it.
  double finetune_learning_rate = 0.0;
  double holdout_fraction = 0.25; ///< Feedback held out for the guard.
  size_t min_feedback = 64;       ///< Don't adapt below this many entries.
  /// Reject the candidate when its held-out median q-error exceeds the
  /// incumbent's times this factor (1.0 = "must not be worse at all").
  double guard_max_ratio = 1.0;
  /// Minimum new monitor observations between adaptation attempts
  /// (observation-counted, not wall-clock, so tests stay deterministic).
  uint64_t cooldown_observations = 0;
  uint64_t period_ms = 100;       ///< Background trigger-poll period.
  uint64_t split_seed = 7;        ///< Train/holdout shuffle seed.
  /// Drain (consume) the buffer on adaptation; false keeps it (reservoir
  /// setups that want one long-lived sample of the stream).
  bool drain_on_adapt = true;
  /// Test seam: runs after fine-tuning, before the guard, while the
  /// adaptation lock is held (lets tests pin an adaptation in flight).
  std::function<void()> finetune_hook;
};

enum class AdaptOutcome {
  kSkippedNoDrift,       ///< Monitor did not fire.
  kSkippedStaleSignal,   ///< Fired on a generation no longer being served.
  kSkippedCooldown,      ///< Not enough fresh observations since last attempt.
  kSkippedNoFeedback,    ///< Buffer below min_feedback.
  kSkippedBusy,          ///< Another fine-tune is in flight.
  /// FineTune could not use any of the training slice (e.g. every feedback
  /// query spans shards of a ShardedUae): the candidate is bit-identical to
  /// the incumbent, so publishing it would only flush the result cache.
  kSkippedUnusableFeedback,
  kRejectedByGuard,      ///< Candidate was worse on the held-out slice.
  kPublished,            ///< Candidate accepted and hot-swapped.
};

const char* AdaptOutcomeName(AdaptOutcome outcome);

/// Everything one adaptation attempt decided and measured.
struct AdaptationResult {
  AdaptOutcome outcome = AdaptOutcome::kSkippedNoDrift;
  uint64_t generation = 0;         ///< Published generation (kPublished only).
  double incumbent_median = 0.0;   ///< Held-out median q-error of the incumbent.
  double candidate_median = 0.0;   ///< ... and of the fine-tuned candidate.
  size_t train_size = 0;
  /// Queries of the training slice FineTune actually used (< train_size when
  /// a sharded model dropped shard-spanning feedback).
  size_t finetuned_size = 0;
  size_t holdout_size = 0;
  double seconds = 0.0;            ///< Wall time of the attempt.
};

struct AdaptationStats {
  uint64_t attempts = 0;   ///< Adaptations that reached fine-tuning.
  uint64_t published = 0;
  uint64_t rejected = 0;   ///< Guard refusals.
  uint64_t skipped = 0;    ///< Any kSkipped* outcome.
  uint64_t last_published_generation = 0;
};

/// The regression guard, standalone and testable: batched-evaluates both
/// models on the held-out slice and accepts the candidate iff
///   candidate_median <= incumbent_median * guard_max_ratio.
/// An empty holdout rejects (nothing proven means no swap).
struct GuardVerdict {
  bool accept = false;
  double incumbent_median = 0.0;
  double candidate_median = 0.0;
};
GuardVerdict EvaluateCandidate(const core::ServableModel& incumbent,
                               const core::ServableModel& candidate,
                               const workload::Workload& holdout,
                               double guard_max_ratio);

class AdaptationController {
 public:
  /// All dependencies outlive the controller; it owns only its poll thread.
  AdaptationController(serve::EstimationService* service,
                       FeedbackCollector* collector, DriftMonitor* monitor,
                       const AdaptationConfig& config = {});
  ~AdaptationController();
  UAE_DISALLOW_COPY(AdaptationController);

  /// Feedback entry point: records the ground truth observed for a served
  /// estimate into the collector and the drift monitor.
  void OnFeedback(const workload::Query& query, const serve::ServeResult& served,
                  double true_card);

  /// Checks the trigger conditions (drift fired on the served generation,
  /// cooldown elapsed, enough feedback) and adapts when they hold.
  AdaptationResult AdaptIfDrifted();

  /// Unconditional adaptation attempt (still subject to min_feedback, the
  /// busy try-lock, and the regression guard).
  AdaptationResult AdaptNow();

  /// Autonomous mode: polls AdaptIfDrifted() every `period_ms` on a
  /// background thread until Stop() (idempotent; the destructor stops too).
  void Start();
  void Stop();
  bool running() const { return thread_.joinable(); }

  AdaptationStats Stats() const;
  const AdaptationConfig& config() const { return config_; }

 private:
  AdaptationResult RunAdaptation(std::unique_lock<std::mutex> adapt_lock);
  void RecordOutcome(const AdaptationResult& result);
  void PollLoop();

  serve::EstimationService* service_;
  FeedbackCollector* collector_;
  DriftMonitor* monitor_;
  const AdaptationConfig config_;

  std::mutex adapt_mu_;  ///< max-concurrent-finetune = 1 (try_lock).
  /// Observation count at the last attempt; guarded by adapt_mu_ for writers,
  /// read under stats_mu_-free atomics would be overkill — reads take
  /// stats_mu_.
  mutable std::mutex stats_mu_;
  AdaptationStats stats_;
  uint64_t last_attempt_observed_ = 0;

  std::thread thread_;
  std::mutex poll_mu_;
  std::condition_variable poll_cv_;
  bool stop_ = false;
};

}  // namespace uae::online
