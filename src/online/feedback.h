// FeedbackCollector — the entry point of the online adaptation loop (§4.5
// deployed continuously): client threads (or the plan executor, once a query
// has actually run) report the true cardinality observed for a served
// estimate, and the collector buffers these labeled (query, true_card) pairs
// until the AdaptationController drains them into a fine-tuning workload.
//
// The buffer is bounded and concurrent. Two retention policies:
//   * kSlidingWindow — a ring that overwrites the oldest entry; the buffer is
//     always the most recent `capacity` observations (best for drift: the
//     newest traffic IS the shifted workload).
//   * kReservoir — seeded reservoir sampling (Algorithm R) over everything
//     ever observed, so the buffer stays a uniform sample of the whole stream
//     (best when adaptation should not forget the old region entirely).
// Both are deterministic given the seed and the arrival order.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "util/rng.h"
#include "workload/query.h"

namespace uae::online {

/// One observed (served estimate, ground truth) pair.
///
/// Join sub-plan feedback from the plan executor rides the same buffer:
/// `join_mask` is the joined-table bitset of the sub-plan (never 0 for
/// joins — it always contains the fact table), with `query` holding the
/// predicate restricted to those tables. join_mask == 0 marks ordinary
/// single-table feedback. Consumers that only understand single-table
/// entries (SnapshotWorkload/ToWorkload) skip join entries; the subplan
/// memo refresher (optimizer/subplan_memo.h) consumes only join entries.
struct FeedbackEntry {
  workload::Query query;
  double true_card = 0.0;       ///< Observed by actually executing the query.
  double estimated_card = 0.0;  ///< What the service answered at the time.
  uint64_t generation = 0;      ///< Snapshot generation that produced it.
  uint32_t join_mask = 0;       ///< 0: single-table; else the sub-plan tables.
};

enum class FeedbackPolicy {
  kSlidingWindow,  ///< Keep the newest `capacity` entries.
  kReservoir,      ///< Keep a uniform sample of the whole stream.
};

struct FeedbackConfig {
  size_t capacity = 4096;
  FeedbackPolicy policy = FeedbackPolicy::kSlidingWindow;
  uint64_t seed = 1;  ///< Drives the reservoir's replacement decisions.
};

class FeedbackCollector {
 public:
  explicit FeedbackCollector(const FeedbackConfig& config = {});
  UAE_DISALLOW_COPY(FeedbackCollector);

  /// Thread-safe append (subject to the retention policy).
  void Add(FeedbackEntry entry);

  /// Entries currently buffered (<= capacity).
  size_t Size() const;
  /// Entries ever offered to Add(), including ones since evicted.
  uint64_t TotalObserved() const;

  /// Copy of the buffer in arrival order (oldest first).
  std::vector<FeedbackEntry> Snapshot() const;
  /// Moves the buffer out and clears it (arrival order).
  std::vector<FeedbackEntry> Drain();

  /// The buffered feedback as a labeled workload; selectivities are derived
  /// from `num_rows` (the served table's row count).
  workload::Workload SnapshotWorkload(size_t num_rows) const;

 private:
  /// Buffer contents in arrival order; caller holds mu_.
  std::vector<FeedbackEntry> OrderedLocked() const;

  const FeedbackConfig config_;
  mutable std::mutex mu_;
  std::vector<FeedbackEntry> buffer_;
  size_t ring_next_ = 0;      ///< Sliding window: next slot to overwrite.
  uint64_t observed_ = 0;     ///< Lifetime arrivals (reporting).
  uint64_t since_drain_ = 0;  ///< Arrivals since Drain(): reservoir denominator.
  util::Rng rng_;
};

/// Labeled workload from parallel (entry) arrays — the buffer -> Workload
/// conversion used by the controller (see workload::MakeLabeledWorkload).
workload::Workload ToWorkload(const std::vector<FeedbackEntry>& entries,
                              size_t num_rows);

}  // namespace uae::online
