#include "online/controller.h"

#include <algorithm>
#include <utility>

#include "util/quantiles.h"
#include "util/stopwatch.h"
#include "workload/metrics.h"

namespace uae::online {

const char* AdaptOutcomeName(AdaptOutcome outcome) {
  switch (outcome) {
    case AdaptOutcome::kSkippedNoDrift:
      return "skipped-no-drift";
    case AdaptOutcome::kSkippedStaleSignal:
      return "skipped-stale-signal";
    case AdaptOutcome::kSkippedCooldown:
      return "skipped-cooldown";
    case AdaptOutcome::kSkippedNoFeedback:
      return "skipped-no-feedback";
    case AdaptOutcome::kSkippedBusy:
      return "skipped-busy";
    case AdaptOutcome::kSkippedUnusableFeedback:
      return "skipped-unusable-feedback";
    case AdaptOutcome::kRejectedByGuard:
      return "rejected-by-guard";
    case AdaptOutcome::kPublished:
      return "published";
  }
  return "?";
}

GuardVerdict EvaluateCandidate(const core::ServableModel& incumbent,
                               const core::ServableModel& candidate,
                               const workload::Workload& holdout,
                               double guard_max_ratio) {
  GuardVerdict verdict;
  if (holdout.empty()) return verdict;  // Nothing proven => no swap.
  std::vector<double> incumbent_errors = workload::EvaluateQErrorsBatched(
      holdout, [&](std::span<const workload::Query> qs) {
        return incumbent.EstimateCards(qs);
      });
  std::vector<double> candidate_errors = workload::EvaluateQErrorsBatched(
      holdout, [&](std::span<const workload::Query> qs) {
        return candidate.EstimateCards(qs);
      });
  verdict.incumbent_median = util::Quantile(std::move(incumbent_errors), 0.5);
  verdict.candidate_median = util::Quantile(std::move(candidate_errors), 0.5);
  verdict.accept =
      verdict.candidate_median <= verdict.incumbent_median * guard_max_ratio;
  return verdict;
}

AdaptationController::AdaptationController(serve::EstimationService* service,
                                           FeedbackCollector* collector,
                                           DriftMonitor* monitor,
                                           const AdaptationConfig& config)
    : service_(service), collector_(collector), monitor_(monitor),
      config_(config) {
  UAE_CHECK(service_ != nullptr);
  UAE_CHECK(collector_ != nullptr);
  UAE_CHECK(monitor_ != nullptr);
  UAE_CHECK_GE(config_.holdout_fraction, 0.0);
  UAE_CHECK_LE(config_.holdout_fraction, 1.0);
}

AdaptationController::~AdaptationController() { Stop(); }

void AdaptationController::OnFeedback(const workload::Query& query,
                                      const serve::ServeResult& served,
                                      double true_card) {
  double q_error = workload::QError(served.card, true_card);
  monitor_->Observe(served.generation, q_error);
  collector_->Add({query, true_card, served.card, served.generation});
}

AdaptationResult AdaptationController::AdaptIfDrifted() {
  AdaptationResult result;
  DriftReport report = monitor_->Check();
  if (!report.fired) {
    result.outcome = AdaptOutcome::kSkippedNoDrift;
    RecordOutcome(result);
    return result;
  }
  // A report about a superseded generation is noise left over from before the
  // last swap: the new snapshot deserves fresh evidence first.
  if (report.generation != service_->CurrentGeneration()) {
    result.outcome = AdaptOutcome::kSkippedStaleSignal;
    RecordOutcome(result);
    return result;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (last_attempt_observed_ > 0 &&
        monitor_->TotalObserved() - last_attempt_observed_ <
            config_.cooldown_observations) {
      result.outcome = AdaptOutcome::kSkippedCooldown;
      ++stats_.skipped;
      return result;
    }
  }
  return AdaptNow();
}

AdaptationResult AdaptationController::AdaptNow() {
  std::unique_lock<std::mutex> lock(adapt_mu_, std::try_to_lock);
  if (!lock.owns_lock()) {
    AdaptationResult result;
    result.outcome = AdaptOutcome::kSkippedBusy;
    RecordOutcome(result);
    return result;
  }
  return RunAdaptation(std::move(lock));
}

AdaptationResult AdaptationController::RunAdaptation(
    std::unique_lock<std::mutex> adapt_lock) {
  util::Stopwatch timer;
  AdaptationResult result;
  if (collector_->Size() < config_.min_feedback) {
    result.outcome = AdaptOutcome::kSkippedNoFeedback;
    RecordOutcome(result);
    return result;
  }

  // The incumbent: everything below trains/evaluates against this one
  // snapshot even if other publishers race (max-concurrent-finetune = 1
  // makes that impossible for adaptations, but direct PublishSnapshot calls
  // are still allowed).
  std::shared_ptr<const serve::ModelSnapshot> snap = service_->CurrentSnapshot();
  std::vector<FeedbackEntry> entries =
      config_.drain_on_adapt ? collector_->Drain() : collector_->Snapshot();
  workload::Workload all = ToWorkload(entries, snap->model->num_rows());
  workload::Workload train, holdout;
  // Seeded by (controller, model, generation): deterministic for a given
  // deployment, decorrelated across deployments and across successive swaps.
  workload::SplitWorkload(all, config_.holdout_fraction,
                          config_.split_seed ^ snap->model->seed() ^
                              snap->generation,
                          &train, &holdout);
  result.train_size = train.size();
  result.holdout_size = holdout.size();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.attempts;
    last_attempt_observed_ = std::max<uint64_t>(1, monitor_->TotalObserved());
  }

  // Fine-tune a clone; the served snapshot keeps answering traffic untouched.
  // FineTune routes by model kind: a monolithic Uae trains on the whole
  // slice, a ShardedUae refits only the shards the feedback targets. The
  // clone is paid before routability is known — an unroutable slice wastes
  // one parameter copy, bounded by the cooldown exactly like a guard
  // rejection wastes one fine-tune.
  std::shared_ptr<core::ServableModel> candidate = snap->model->CloneServable();
  core::FineTuneSpec spec;
  spec.query_steps = config_.finetune_steps;
  spec.hybrid_epochs = config_.hybrid_epochs;
  spec.learning_rate = config_.finetune_learning_rate;
  result.finetuned_size = candidate->FineTune(train, spec);
  if (config_.finetune_hook) config_.finetune_hook();

  // A non-empty slice that trained on nothing (all feedback unroutable for
  // this model kind) leaves the candidate bit-identical: publishing would
  // bump the generation and flush the result cache without repairing
  // anything. Skip; the drained feedback goes back like a guard rejection.
  if (!train.empty() && result.finetuned_size == 0) {
    result.outcome = AdaptOutcome::kSkippedUnusableFeedback;
    if (config_.drain_on_adapt) {
      for (FeedbackEntry& entry : entries) collector_->Add(std::move(entry));
    }
    result.seconds = timer.ElapsedSeconds();
    RecordOutcome(result);
    adapt_lock.unlock();
    return result;
  }

  GuardVerdict verdict = EvaluateCandidate(*snap->model, *candidate, holdout,
                                           config_.guard_max_ratio);
  result.incumbent_median = verdict.incumbent_median;
  result.candidate_median = verdict.candidate_median;
  if (verdict.accept) {
    result.generation = service_->PublishSnapshot(std::move(candidate));
    result.outcome = AdaptOutcome::kPublished;
  } else {
    result.outcome = AdaptOutcome::kRejectedByGuard;
    // The labels were expensive (one exact scan each) and the drift is still
    // unresolved: put drained feedback back so the next attempt does not have
    // to re-accumulate from zero. Entries re-enter through the retention
    // policy, mixing with whatever arrived during the fine-tune.
    if (config_.drain_on_adapt) {
      for (FeedbackEntry& entry : entries) collector_->Add(std::move(entry));
    }
  }
  result.seconds = timer.ElapsedSeconds();
  RecordOutcome(result);
  adapt_lock.unlock();
  return result;
}

void AdaptationController::RecordOutcome(const AdaptationResult& result) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  switch (result.outcome) {
    case AdaptOutcome::kPublished:
      ++stats_.published;
      stats_.last_published_generation = result.generation;
      break;
    case AdaptOutcome::kRejectedByGuard:
      ++stats_.rejected;
      break;
    default:
      ++stats_.skipped;
      break;
  }
}

AdaptationStats AdaptationController::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void AdaptationController::Start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(poll_mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { PollLoop(); });
}

void AdaptationController::Stop() {
  {
    std::lock_guard<std::mutex> lock(poll_mu_);
    stop_ = true;
  }
  poll_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void AdaptationController::PollLoop() {
  std::unique_lock<std::mutex> lock(poll_mu_);
  while (!stop_) {
    poll_cv_.wait_for(lock, std::chrono::milliseconds(config_.period_ms));
    if (stop_) break;
    lock.unlock();
    AdaptIfDrifted();
    lock.lock();
  }
}

}  // namespace uae::online
