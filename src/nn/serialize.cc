#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace uae::nn {

namespace {

constexpr char kMagic[4] = {'U', 'A', 'E', 'W'};
constexpr uint32_t kVersion = 1;

void WriteParams(std::ostream& out, const std::vector<NamedParam>& params) {
  out.write(kMagic, 4);
  uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  uint32_t count = static_cast<uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    uint32_t name_len = static_cast<uint32_t>(p.name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p.name.data(), name_len);
    int32_t rows = p.tensor->rows(), cols = p.tensor->cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.tensor->value().data()),
              static_cast<std::streamsize>(sizeof(float) * p.tensor->value().size()));
  }
}

util::Status ReadParams(std::istream& in, const std::string& origin,
                        std::vector<NamedParam>* params) {
  char magic[4];
  in.read(magic, 4);
  if (!in.good() || std::memcmp(magic, kMagic, 4) != 0) {
    return util::Status::InvalidArgument("bad magic in " + origin);
  }
  uint32_t version = 0, count = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (version != kVersion) return util::Status::InvalidArgument("bad version");
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (count != params->size()) {
    return util::Status::InvalidArgument("parameter count mismatch");
  }
  for (auto& p : *params) {
    uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (name != p.name) {
      return util::Status::InvalidArgument("parameter name mismatch: expected " +
                                           p.name + " got " + name);
    }
    int32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (rows != p.tensor->rows() || cols != p.tensor->cols()) {
      return util::Status::InvalidArgument("shape mismatch for " + p.name);
    }
    in.read(reinterpret_cast<char*>(p.tensor->mutable_value().data()),
            static_cast<std::streamsize>(sizeof(float) * p.tensor->value().size()));
  }
  if (!in.good()) return util::Status::IoError("read failed: " + origin);
  return util::Status::Ok();
}

}  // namespace

util::Status SaveParams(const std::string& path,
                        const std::vector<NamedParam>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  WriteParams(out, params);
  if (!out.good()) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Status LoadParams(const std::string& path, std::vector<NamedParam>* params) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  return ReadParams(in, path, params);
}

std::string SerializeParams(const std::vector<NamedParam>& params) {
  std::ostringstream out(std::ios::binary);
  WriteParams(out, params);
  return std::move(out).str();
}

util::Status DeserializeParams(const std::string& blob,
                               std::vector<NamedParam>* params) {
  std::istringstream in(blob, std::ios::binary);
  return ReadParams(in, "<memory>", params);
}

util::Status CopyParams(const std::vector<NamedParam>& src,
                        std::vector<NamedParam>* dst) {
  if (src.size() != dst->size()) {
    return util::Status::InvalidArgument("parameter count mismatch");
  }
  for (size_t i = 0; i < src.size(); ++i) {
    const NamedParam& s = src[i];
    NamedParam& d = (*dst)[i];
    if (s.name != d.name) {
      return util::Status::InvalidArgument("parameter name mismatch: expected " +
                                           d.name + " got " + s.name);
    }
    if (s.tensor->rows() != d.tensor->rows() ||
        s.tensor->cols() != d.tensor->cols()) {
      return util::Status::InvalidArgument("shape mismatch for " + d.name);
    }
    std::memcpy(d.tensor->mutable_value().data(), s.tensor->value().data(),
                sizeof(float) * s.tensor->value().size());
  }
  return util::Status::Ok();
}

size_t ParamCount(const std::vector<NamedParam>& params) {
  size_t n = 0;
  for (const auto& p : params) n += p.tensor->value().size();
  return n;
}

size_t ParamBytes(const std::vector<NamedParam>& params) {
  return ParamCount(params) * sizeof(float);
}

}  // namespace uae::nn
