#include "nn/serialize.h"

#include <cstdio>
#include <fstream>

namespace uae::nn {

namespace {
constexpr char kMagic[4] = {'U', 'A', 'E', 'W'};
constexpr uint32_t kVersion = 1;
}  // namespace

util::Status SaveParams(const std::string& path,
                        const std::vector<NamedParam>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return util::Status::IoError("cannot open " + path);
  out.write(kMagic, 4);
  uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  uint32_t count = static_cast<uint32_t>(params.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& p : params) {
    uint32_t name_len = static_cast<uint32_t>(p.name.size());
    out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
    out.write(p.name.data(), name_len);
    int32_t rows = p.tensor->rows(), cols = p.tensor->cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
    out.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
    out.write(reinterpret_cast<const char*>(p.tensor->value().data()),
              static_cast<std::streamsize>(sizeof(float) * p.tensor->value().size()));
  }
  if (!out.good()) return util::Status::IoError("write failed: " + path);
  return util::Status::Ok();
}

util::Status LoadParams(const std::string& path, std::vector<NamedParam>* params) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return util::Status::IoError("cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return util::Status::InvalidArgument("bad magic in " + path);
  }
  uint32_t version = 0, count = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (version != kVersion) return util::Status::InvalidArgument("bad version");
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (count != params->size()) {
    return util::Status::InvalidArgument("parameter count mismatch");
  }
  for (auto& p : *params) {
    uint32_t name_len = 0;
    in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (name != p.name) {
      return util::Status::InvalidArgument("parameter name mismatch: expected " +
                                           p.name + " got " + name);
    }
    int32_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof(rows));
    in.read(reinterpret_cast<char*>(&cols), sizeof(cols));
    if (rows != p.tensor->rows() || cols != p.tensor->cols()) {
      return util::Status::InvalidArgument("shape mismatch for " + p.name);
    }
    in.read(reinterpret_cast<char*>(p.tensor->mutable_value().data()),
            static_cast<std::streamsize>(sizeof(float) * p.tensor->value().size()));
  }
  if (!in.good()) return util::Status::IoError("read failed: " + path);
  return util::Status::Ok();
}

size_t ParamCount(const std::vector<NamedParam>& params) {
  size_t n = 0;
  for (const auto& p : params) n += p.tensor->value().size();
  return n;
}

size_t ParamBytes(const std::vector<NamedParam>& params) {
  return ParamCount(params) * sizeof(float);
}

}  // namespace uae::nn
