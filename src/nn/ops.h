// Differentiable graph operations. Every function returns a new Tensor whose
// backward closure accumulates into its parents' gradients.
//
// Shapes follow the convention: activations are [batch, features].
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace uae::nn {

// ---- Elementwise / broadcast arithmetic -----------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
/// x [m,n] + bias [1,n], broadcast over rows.
Tensor AddBias(const Tensor& x, const Tensor& bias);
/// Fused relu(x + bias): one kernel pass instead of AddBias followed by Relu.
Tensor AddBiasRelu(const Tensor& x, const Tensor& bias);
Tensor Scale(const Tensor& a, float s);
/// a + c where c is a non-differentiable constant (Gumbel noise, -inf masks).
Tensor AddConstMat(const Tensor& a, const Mat& c);
/// a (elementwise) * c, c constant (query-region indicator masks).
Tensor MulConstMat(const Tensor& a, const Mat& c);

// ---- Linear algebra ---------------------------------------------------------

/// a [m,k] * b [k,n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// x [m,k] * (w ⊙ mask) [k,n]; mask is constant 0/1 — MADE masked layer.
Tensor MaskedMatMul(const Tensor& x, const Tensor& w, const Mat& mask);

// ---- Nonlinearities ---------------------------------------------------------

Tensor Relu(const Tensor& a);
Tensor SoftmaxRowsOp(const Tensor& a);
Tensor LogSoftmaxRowsOp(const Tensor& a);

// ---- Reductions / reshaping -------------------------------------------------

/// Row sums: [m,n] -> [m,1].
Tensor RowSum(const Tensor& a);
Tensor SumAll(const Tensor& a);
Tensor MeanAll(const Tensor& a);
/// Horizontal concatenation, all inputs share the row count.
Tensor ConcatCols(const std::vector<Tensor>& parts);
/// Rows [r0, r1) of a.
Tensor SliceRows(const Tensor& a, int r0, int r1);
/// Mean over consecutive groups of `group` rows: [m,1] -> [m/group,1].
Tensor SegmentMean(const Tensor& a, int group);

// ---- Lookup -----------------------------------------------------------------

/// out[i,:] = emb[codes[i],:]; gradient scatter-adds into emb.
Tensor EmbeddingLookup(const Tensor& emb, const std::vector<int32_t>& codes);

// ---- Losses -----------------------------------------------------------------

/// Mean over rows of (logsumexp(logits[r]) - logits[r, target[r]]).
/// `row_weight` (optional, size m) rescales each row's contribution.
Tensor CrossEntropyLogits(const Tensor& logits, const std::vector<int32_t>& targets,
                          const std::vector<float>* row_weight = nullptr);

/// Mean Q-error: mean_q max(t_q/p_q, p_q/t_q) with p = sel_hat + floor,
/// t = max(truth, floor). sel_hat and truth are [Q,1]; truth is constant.
Tensor QErrorLoss(const Tensor& sel_hat, const Mat& truth, float floor);

/// Mean squared error against a constant target (same shape).
Tensor MseLoss(const Tensor& pred, const Mat& target);

}  // namespace uae::nn
