// Reference (pre-tiling) kernel implementations, kept verbatim from the
// original scalar kernel layer. They are the ground truth for the parity
// tests in tests/nn_kernels_test.cc and the "before" side of the
// bench_micro_nn speedup report; nothing on a hot path should call them.
#pragma once

#include "nn/kernels.h"
#include "nn/mat.h"

namespace uae::nn::ref {

/// C += A(m,k) * B(k,n). Naive triple loop, parallel over rows of A for
/// large problems (the original dispatch heuristic).
void GemmAccum(const Mat& a, const Mat& b, Mat* c);

/// C += A(m,k) * B(n,k)^T. Naive dot-product loop.
void GemmNtAccum(const Mat& a, const Mat& b, Mat* c);

/// C += A(k,m)^T * B(k,n). Fully serial k-outer loop.
void GemmTnAccum(const Mat& a, const Mat& b, Mat* c);

/// C += A(m,k) * Bq(n,k)^T with the per-row dequant scale applied per
/// element (no epilogue, no lanes): the ground truth for the tolerance-bounded
/// parity test of nn::GemmNtQuantAccum.
void GemmNtQuantAccum(const Mat& a, const QuantizedMat& b, Mat* c);

/// out[r,:] = in[r,:] + bias[0,:].
void AddBiasRows(const Mat& in, const Mat& bias, Mat* out);

/// Row-wise softmax, three sequential passes per row.
void SoftmaxRows(const Mat& in, Mat* out);

/// Row-wise log-softmax, sequential passes.
void LogSoftmaxRows(const Mat& in, Mat* out);

}  // namespace uae::nn::ref
