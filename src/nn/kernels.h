// Low-level compute kernels. All GEMM variants *accumulate* into the output
// (C += ...), which is what backward passes need; callers zero C first when
// they want a plain product.
#pragma once

#include "nn/mat.h"

namespace uae::nn {

/// C += A(m,k) * B(k,n). Parallelized over rows of A for large problems.
void GemmAccum(const Mat& a, const Mat& b, Mat* c);

/// C += A(m,k) * B(n,k)^T.
void GemmNtAccum(const Mat& a, const Mat& b, Mat* c);

/// C += A(k,m)^T * B(k,n).
void GemmTnAccum(const Mat& a, const Mat& b, Mat* c);

/// out[r,:] = in[r,:] + bias[0,:] for every row.
void AddBiasRows(const Mat& in, const Mat& bias, Mat* out);

/// In-place ReLU.
void ReluInplace(Mat* m);

/// Row-wise softmax: out[r,:] = softmax(in[r,:]). Stable.
void SoftmaxRows(const Mat& in, Mat* out);

/// Row-wise log-softmax. Stable.
void LogSoftmaxRows(const Mat& in, Mat* out);

/// out = a (elementwise) * b.
void MulElem(const Mat& a, const Mat& b, Mat* out);

/// out += a (elementwise) * b — used by backward passes.
void MulElemAccum(const Mat& a, const Mat& b, Mat* out);

}  // namespace uae::nn
