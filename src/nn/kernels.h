// Low-level compute kernels. All GEMM variants *accumulate* into the output
// (C += ...), which is what backward passes need; callers zero C first when
// they want a plain product.
//
// Implementation notes (see README "Performance" for the full story):
//  - GEMMs are cache-blocked (k-panels of kGemmKBlock) and register-tiled
//    (kGemmRowTile x kGemmColTile accumulator tiles) so the hot loops compile
//    to wide FMA sequences; C is read/written once per k-panel instead of
//    once per k step.
//  - All three variants share one flop-threshold dispatch that splits work
//    over globally-aligned row blocks of C, so results are bit-identical for
//    any thread count. GemmTnAccum is parallelized over the output-row
//    dimension with per-thread accumulation (each thread owns its C rows).
//  - Tiling reorders float sums relative to the naive kernels in
//    nn/kernels_ref.h; parity is tolerance-bounded (see tests), while any
//    single binary remains deterministic run-to-run.
#pragma once

#include "nn/mat.h"

namespace uae::nn {

/// C rows per register tile (MR). Row blocks are globally aligned to this,
/// which is what makes the parallel split deterministic.
inline constexpr int kGemmRowTile = 4;

/// Columns per register tile (NR): one accumulator tile is
/// kGemmRowTile x kGemmColTile floats held in vector registers across a
/// whole k-panel. Wider on AVX-512 where 32 floats fit in two zmm registers.
#if defined(__AVX512F__)
inline constexpr int kGemmColTile = 32;
#else
inline constexpr int kGemmColTile = 16;
#endif

/// k-panel depth (KC): the A/B working set touched between two consecutive
/// read-modify-writes of a C tile.
inline constexpr int kGemmKBlock = 256;

/// Independent partial-sum lanes used by dot-product style reductions
/// (GemmNtAccum, softmax row sums). Power of two.
inline constexpr int kReduceLanes = 16;

/// C += A(m,k) * B(k,n). Parallelized over row blocks of C for large problems.
void GemmAccum(const Mat& a, const Mat& b, Mat* c);

/// C += A(m,k) * B(n,k)^T.
void GemmNtAccum(const Mat& a, const Mat& b, Mat* c);

/// C += A(k,m)^T * B(k,n).
void GemmTnAccum(const Mat& a, const Mat& b, Mat* c);

/// out[r,:] = in[r,:] + bias[0,:] for every row.
void AddBiasRows(const Mat& in, const Mat& bias, Mat* out);

/// Fused epilogue: out[r,:] = max(in[r,:] + bias[0,:], 0). One pass over the
/// activation instead of the two an AddBiasRows + ReluInplace pair costs.
void AddBiasReluRows(const Mat& in, const Mat& bias, Mat* out);

/// In-place ReLU.
void ReluInplace(Mat* m);

/// Row-wise softmax: out[r,:] = softmax(in[r,:]). Stable. `in` and `*out`
/// may alias (see SoftmaxRowsInplace).
void SoftmaxRows(const Mat& in, Mat* out);

/// Row-wise softmax overwriting `m` — saves the extra output matrix and one
/// pass over the activation on the progressive-sampling hot path.
void SoftmaxRowsInplace(Mat* m);

/// Row-wise log-softmax. Stable.
void LogSoftmaxRows(const Mat& in, Mat* out);

/// Branch-free polynomial exp(x), accurate to ~2e-7 relative over the range
/// softmax can produce (inputs clamped to [-87, 88]). Pure float arithmetic
/// (no libm call), so loops over it auto-vectorize — this is what makes the
/// softmax kernels wide instead of serialized on scalar expf.
float FastExpf(float x);

// ---- Quantized inference kernels (int8 weights, fp32 accumulate) ----------

/// Int8 weight matrix with one fp32 dequantization scale per row. Stored
/// transposed relative to GemmAccum's B operand: row j holds output channel j
/// (length k), so the quantized GEMM runs in dot-product (Nt) form and the
/// per-row scale becomes a per-output-channel epilogue multiply.
struct QuantizedMat {
  int rows = 0;  ///< Output channels.
  int cols = 0;  ///< Input depth (k).
  std::vector<int8_t> q;      ///< rows x cols, row-major codes in [-127, 127].
  std::vector<float> scales;  ///< Per-row dequantization scale, length rows.

  const int8_t* row(int r) const {
    return q.data() + static_cast<size_t>(r) * static_cast<size_t>(cols);
  }
  size_t SizeBytes() const {
    return q.size() * sizeof(int8_t) + scales.size() * sizeof(float);
  }
};

/// Symmetric per-row absmax quantization: scale[r] = absmax(row r)/127 (1 for
/// all-zero rows), codes round-to-nearest, clamped to [-127, 127].
QuantizedMat QuantizePerRowAbsMax(const Mat& w);

/// Transposes [k, n] -> [n, k] then quantizes per row — the natural path for a
/// layer weight whose quantization groups are output channels.
QuantizedMat QuantizeColsAsRows(const Mat& w);

/// Reconstructs the fp32 matrix (same [rows, cols] layout as the codes).
void Dequantize(const QuantizedMat& qm, Mat* out);

/// C[m,n] += A[m,k] * Bq^T with fp32 accumulation and the dequant epilogue:
/// C[i][j] += scales[j] * <A row i, codes row j>. Deterministic per output
/// element for any thread count (same row-block split as GemmNtAccum).
void GemmNtQuantAccum(const Mat& a, const QuantizedMat& b, Mat* c);

/// out = a (elementwise) * b.
void MulElem(const Mat& a, const Mat& b, Mat* out);

/// out += a (elementwise) * b — used by backward passes.
void MulElemAccum(const Mat& a, const Mat& b, Mat* out);

}  // namespace uae::nn
