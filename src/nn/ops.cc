#include "nn/ops.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"

namespace uae::nn {

namespace {

/// Creates the result node; wires parents + closure only in grad mode.
Tensor MakeNode(Mat value, std::vector<Tensor> parents,
                std::function<void(Node&)> backward, const char* op) {
  bool any_grad = false;
  for (const auto& p : parents) any_grad = any_grad || p->requires_grad();
  bool record = GradModeEnabled() && any_grad;
  auto node = std::make_shared<Node>(std::move(value), record, op);
  if (record) {
    node->set_parents(std::move(parents));
    node->set_backward(std::move(backward));
  }
  return node;
}

void AccumAll(Mat* dst, const Mat& src) {
  UAE_DCHECK(dst->SameShape(src));
  float* d = dst->data();
  const float* s = src.data();
  for (size_t i = 0; i < src.size(); ++i) d[i] += s[i];
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  UAE_CHECK(a->value().SameShape(b->value()));
  Mat out = a->value();
  AccumAll(&out, b->value());
  return MakeNode(std::move(out), {a, b},
                  [a, b](Node& n) {
                    if (a->requires_grad()) AccumAll(&a->grad(), n.grad());
                    if (b->requires_grad()) AccumAll(&b->grad(), n.grad());
                  },
                  "add");
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  UAE_CHECK(a->value().SameShape(b->value()));
  Mat out = a->value();
  {
    float* d = out.data();
    const float* s = b->value().data();
    for (size_t i = 0; i < out.size(); ++i) d[i] -= s[i];
  }
  return MakeNode(std::move(out), {a, b},
                  [a, b](Node& n) {
                    if (a->requires_grad()) AccumAll(&a->grad(), n.grad());
                    if (b->requires_grad()) {
                      float* d = b->grad().data();
                      const float* g = n.grad().data();
                      for (size_t i = 0; i < n.grad().size(); ++i) d[i] -= g[i];
                    }
                  },
                  "sub");
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  UAE_CHECK(a->value().SameShape(b->value()));
  Mat out(a->rows(), a->cols());
  MulElem(a->value(), b->value(), &out);
  return MakeNode(std::move(out), {a, b},
                  [a, b](Node& n) {
                    if (a->requires_grad()) MulElemAccum(n.grad(), b->value(), &a->grad());
                    if (b->requires_grad()) MulElemAccum(n.grad(), a->value(), &b->grad());
                  },
                  "mul");
}

Tensor AddBias(const Tensor& x, const Tensor& bias) {
  Mat out(x->rows(), x->cols());
  AddBiasRows(x->value(), bias->value(), &out);
  return MakeNode(std::move(out), {x, bias},
                  [x, bias](Node& n) {
                    if (x->requires_grad()) AccumAll(&x->grad(), n.grad());
                    if (bias->requires_grad()) {
                      float* db = bias->grad().row(0);
                      for (int r = 0; r < n.grad().rows(); ++r) {
                        const float* g = n.grad().row(r);
                        for (int c = 0; c < n.grad().cols(); ++c) db[c] += g[c];
                      }
                    }
                  },
                  "add_bias");
}

Tensor AddBiasRelu(const Tensor& x, const Tensor& bias) {
  Mat out(x->rows(), x->cols());
  AddBiasReluRows(x->value(), bias->value(), &out);
  return MakeNode(std::move(out), {x, bias},
                  [x, bias](Node& n) {
                    // relu gate read off the fused output: y > 0 iff the
                    // pre-activation was positive.
                    const Mat& y = n.value();
                    if (x->requires_grad()) {
                      float* d = x->grad().data();
                      const float* g = n.grad().data();
                      const float* yv = y.data();
                      for (size_t i = 0; i < n.grad().size(); ++i) {
                        if (yv[i] > 0.f) d[i] += g[i];
                      }
                    }
                    if (bias->requires_grad()) {
                      float* db = bias->grad().row(0);
                      for (int r = 0; r < n.grad().rows(); ++r) {
                        const float* g = n.grad().row(r);
                        const float* yr = y.row(r);
                        for (int c = 0; c < n.grad().cols(); ++c) {
                          if (yr[c] > 0.f) db[c] += g[c];
                        }
                      }
                    }
                  },
                  "add_bias_relu");
}

Tensor Scale(const Tensor& a, float s) {
  Mat out = a->value();
  float* d = out.data();
  for (size_t i = 0; i < out.size(); ++i) d[i] *= s;
  return MakeNode(std::move(out), {a},
                  [a, s](Node& n) {
                    if (!a->requires_grad()) return;
                    float* d = a->grad().data();
                    const float* g = n.grad().data();
                    for (size_t i = 0; i < n.grad().size(); ++i) d[i] += s * g[i];
                  },
                  "scale");
}

Tensor AddConstMat(const Tensor& a, const Mat& c) {
  UAE_CHECK(a->value().SameShape(c));
  Mat out = a->value();
  AccumAll(&out, c);
  return MakeNode(std::move(out), {a},
                  [a](Node& n) {
                    if (a->requires_grad()) AccumAll(&a->grad(), n.grad());
                  },
                  "add_const");
}

Tensor MulConstMat(const Tensor& a, const Mat& c) {
  UAE_CHECK(a->value().SameShape(c));
  Mat out(a->rows(), a->cols());
  MulElem(a->value(), c, &out);
  // The backward closure needs c by value: callers often pass temporaries.
  Mat c_copy = c;
  return MakeNode(std::move(out), {a},
                  [a, c_copy = std::move(c_copy)](Node& n) {
                    if (a->requires_grad()) MulElemAccum(n.grad(), c_copy, &a->grad());
                  },
                  "mul_const");
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  Mat out(a->rows(), b->cols());
  GemmAccum(a->value(), b->value(), &out);
  return MakeNode(std::move(out), {a, b},
                  [a, b](Node& n) {
                    if (a->requires_grad()) GemmNtAccum(n.grad(), b->value(), &a->grad());
                    if (b->requires_grad()) GemmTnAccum(a->value(), n.grad(), &b->grad());
                  },
                  "matmul");
}

Tensor MaskedMatMul(const Tensor& x, const Tensor& w, const Mat& mask) {
  UAE_CHECK(w->value().SameShape(mask));
  Mat wm(w->rows(), w->cols());
  MulElem(w->value(), mask, &wm);
  Mat out(x->rows(), w->cols());
  GemmAccum(x->value(), wm, &out);
  Mat mask_copy = mask;
  Mat wm_copy = wm;  // Needed for dX.
  return MakeNode(
      std::move(out), {x, w},
      [x, w, mask_copy = std::move(mask_copy), wm_copy = std::move(wm_copy)](Node& n) {
        if (x->requires_grad()) GemmNtAccum(n.grad(), wm_copy, &x->grad());
        if (w->requires_grad()) {
          Mat dw(w->rows(), w->cols());
          GemmTnAccum(x->value(), n.grad(), &dw);
          MulElemAccum(dw, mask_copy, &w->grad());
        }
      },
      "masked_matmul");
}

Tensor Relu(const Tensor& a) {
  Mat out = a->value();
  ReluInplace(&out);
  return MakeNode(std::move(out), {a},
                  [a](Node& n) {
                    if (!a->requires_grad()) return;
                    float* d = a->grad().data();
                    const float* g = n.grad().data();
                    const float* v = n.value().data();
                    for (size_t i = 0; i < n.grad().size(); ++i) {
                      if (v[i] > 0.f) d[i] += g[i];
                    }
                  },
                  "relu");
}

Tensor SoftmaxRowsOp(const Tensor& a) {
  Mat out(a->rows(), a->cols());
  SoftmaxRows(a->value(), &out);
  return MakeNode(std::move(out), {a},
                  [a](Node& n) {
                    if (!a->requires_grad()) return;
                    // dX[r] = Y[r] * (dY[r] - <dY[r], Y[r]>)
                    for (int r = 0; r < n.rows(); ++r) {
                      const float* y = n.value().row(r);
                      const float* g = n.grad().row(r);
                      float dot = 0.f;
                      for (int c = 0; c < n.cols(); ++c) dot += y[c] * g[c];
                      float* d = a->grad().row(r);
                      for (int c = 0; c < n.cols(); ++c) d[c] += y[c] * (g[c] - dot);
                    }
                  },
                  "softmax_rows");
}

Tensor LogSoftmaxRowsOp(const Tensor& a) {
  Mat out(a->rows(), a->cols());
  LogSoftmaxRows(a->value(), &out);
  return MakeNode(std::move(out), {a},
                  [a](Node& n) {
                    if (!a->requires_grad()) return;
                    // dX[r] = dY[r] - softmax(x)[r] * sum(dY[r])
                    for (int r = 0; r < n.rows(); ++r) {
                      const float* ls = n.value().row(r);
                      const float* g = n.grad().row(r);
                      float gsum = 0.f;
                      for (int c = 0; c < n.cols(); ++c) gsum += g[c];
                      float* d = a->grad().row(r);
                      for (int c = 0; c < n.cols(); ++c) {
                        d[c] += g[c] - std::exp(ls[c]) * gsum;
                      }
                    }
                  },
                  "log_softmax_rows");
}

Tensor RowSum(const Tensor& a) {
  Mat out(a->rows(), 1);
  for (int r = 0; r < a->rows(); ++r) {
    const float* src = a->value().row(r);
    float s = 0.f;
    for (int c = 0; c < a->cols(); ++c) s += src[c];
    out.at(r, 0) = s;
  }
  return MakeNode(std::move(out), {a},
                  [a](Node& n) {
                    if (!a->requires_grad()) return;
                    for (int r = 0; r < a->rows(); ++r) {
                      float g = n.grad().at(r, 0);
                      float* d = a->grad().row(r);
                      for (int c = 0; c < a->cols(); ++c) d[c] += g;
                    }
                  },
                  "row_sum");
}

Tensor SumAll(const Tensor& a) {
  Mat out(1, 1);
  out.at(0, 0) = static_cast<float>(a->value().Sum());
  return MakeNode(std::move(out), {a},
                  [a](Node& n) {
                    if (!a->requires_grad()) return;
                    float g = n.grad().at(0, 0);
                    float* d = a->grad().data();
                    for (size_t i = 0; i < a->grad().size(); ++i) d[i] += g;
                  },
                  "sum_all");
}

Tensor MeanAll(const Tensor& a) {
  float inv = 1.f / static_cast<float>(a->value().size());
  Mat out(1, 1);
  out.at(0, 0) = static_cast<float>(a->value().Sum()) * inv;
  return MakeNode(std::move(out), {a},
                  [a, inv](Node& n) {
                    if (!a->requires_grad()) return;
                    float g = n.grad().at(0, 0) * inv;
                    float* d = a->grad().data();
                    for (size_t i = 0; i < a->grad().size(); ++i) d[i] += g;
                  },
                  "mean_all");
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  UAE_CHECK(!parts.empty());
  int rows = parts[0]->rows();
  int total_cols = 0;
  for (const auto& p : parts) {
    UAE_CHECK_EQ(p->rows(), rows);
    total_cols += p->cols();
  }
  Mat out(rows, total_cols);
  int off = 0;
  for (const auto& p : parts) {
    for (int r = 0; r < rows; ++r) {
      std::memcpy(out.row(r) + off, p->value().row(r),
                  sizeof(float) * static_cast<size_t>(p->cols()));
    }
    off += p->cols();
  }
  std::vector<Tensor> parents = parts;
  return MakeNode(std::move(out), parents,
                  [parents](Node& n) {
                    int off2 = 0;
                    for (const auto& p : parents) {
                      if (p->requires_grad()) {
                        for (int r = 0; r < p->rows(); ++r) {
                          const float* g = n.grad().row(r) + off2;
                          float* d = p->grad().row(r);
                          for (int c = 0; c < p->cols(); ++c) d[c] += g[c];
                        }
                      }
                      off2 += p->cols();
                    }
                  },
                  "concat_cols");
}

Tensor SliceRows(const Tensor& a, int r0, int r1) {
  UAE_CHECK(r0 >= 0 && r1 <= a->rows() && r0 < r1);
  Mat out(r1 - r0, a->cols());
  for (int r = r0; r < r1; ++r) {
    std::memcpy(out.row(r - r0), a->value().row(r),
                sizeof(float) * static_cast<size_t>(a->cols()));
  }
  return MakeNode(std::move(out), {a},
                  [a, r0](Node& n) {
                    if (!a->requires_grad()) return;
                    for (int r = 0; r < n.rows(); ++r) {
                      const float* g = n.grad().row(r);
                      float* d = a->grad().row(r + r0);
                      for (int c = 0; c < n.cols(); ++c) d[c] += g[c];
                    }
                  },
                  "slice_rows");
}

Tensor SegmentMean(const Tensor& a, int group) {
  UAE_CHECK_EQ(a->cols(), 1);
  UAE_CHECK_GT(group, 0);
  UAE_CHECK_EQ(a->rows() % group, 0);
  int out_rows = a->rows() / group;
  Mat out(out_rows, 1);
  float inv = 1.f / static_cast<float>(group);
  for (int q = 0; q < out_rows; ++q) {
    float s = 0.f;
    for (int j = 0; j < group; ++j) s += a->value().at(q * group + j, 0);
    out.at(q, 0) = s * inv;
  }
  return MakeNode(std::move(out), {a},
                  [a, group, inv](Node& n) {
                    if (!a->requires_grad()) return;
                    for (int q = 0; q < n.rows(); ++q) {
                      float g = n.grad().at(q, 0) * inv;
                      for (int j = 0; j < group; ++j) a->grad().at(q * group + j, 0) += g;
                    }
                  },
                  "segment_mean");
}

Tensor EmbeddingLookup(const Tensor& emb, const std::vector<int32_t>& codes) {
  Mat out(static_cast<int>(codes.size()), emb->cols());
  for (size_t i = 0; i < codes.size(); ++i) {
    UAE_DCHECK(codes[i] >= 0 && codes[i] < emb->rows());
    std::memcpy(out.row(static_cast<int>(i)), emb->value().row(codes[i]),
                sizeof(float) * static_cast<size_t>(emb->cols()));
  }
  std::vector<int32_t> codes_copy = codes;
  return MakeNode(std::move(out), {emb},
                  [emb, codes_copy = std::move(codes_copy)](Node& n) {
                    if (!emb->requires_grad()) return;
                    for (size_t i = 0; i < codes_copy.size(); ++i) {
                      const float* g = n.grad().row(static_cast<int>(i));
                      float* d = emb->grad().row(codes_copy[i]);
                      for (int c = 0; c < n.cols(); ++c) d[c] += g[c];
                    }
                  },
                  "embedding_lookup");
}

Tensor CrossEntropyLogits(const Tensor& logits, const std::vector<int32_t>& targets,
                          const std::vector<float>* row_weight) {
  const int m = logits->rows();
  UAE_CHECK_EQ(targets.size(), static_cast<size_t>(m));
  if (row_weight != nullptr) UAE_CHECK_EQ(row_weight->size(), static_cast<size_t>(m));
  // Forward: mean over rows of (lse - logit[target]) * w.
  Mat softmax(m, logits->cols());
  SoftmaxRows(logits->value(), &softmax);
  double total = 0.0;
  for (int r = 0; r < m; ++r) {
    const float* lrow = logits->value().row(r);
    float mx = lrow[0];
    for (int c = 1; c < logits->cols(); ++c) mx = std::max(mx, lrow[c]);
    float sum = 0.f;
    for (int c = 0; c < logits->cols(); ++c) sum += std::exp(lrow[c] - mx);
    float lse = mx + std::log(sum);
    float w = row_weight ? (*row_weight)[r] : 1.f;
    UAE_DCHECK(targets[r] >= 0 && targets[r] < logits->cols());
    total += w * (lse - lrow[targets[r]]);
  }
  Mat out(1, 1);
  out.at(0, 0) = static_cast<float>(total / m);
  std::vector<int32_t> t_copy = targets;
  std::vector<float> w_copy = row_weight ? *row_weight : std::vector<float>();
  return MakeNode(
      std::move(out), {logits},
      [logits, t_copy = std::move(t_copy), w_copy = std::move(w_copy),
       softmax = std::move(softmax)](Node& n) {
        if (!logits->requires_grad()) return;
        const float gscale = n.grad().at(0, 0) / static_cast<float>(logits->rows());
        for (int r = 0; r < logits->rows(); ++r) {
          float w = w_copy.empty() ? 1.f : w_copy[r];
          const float* sm = softmax.row(r);
          float* d = logits->grad().row(r);
          const float gw = gscale * w;
          for (int c = 0; c < logits->cols(); ++c) d[c] += gw * sm[c];
          d[t_copy[r]] -= gw;
        }
      },
      "cross_entropy");
}

Tensor QErrorLoss(const Tensor& sel_hat, const Mat& truth, float floor) {
  UAE_CHECK_EQ(sel_hat->cols(), 1);
  UAE_CHECK(sel_hat->value().SameShape(truth));
  const int q = sel_hat->rows();
  double total = 0.0;
  // Cache which branch each row took for the backward pass.
  std::vector<float> p_vals(q), t_vals(q);
  for (int r = 0; r < q; ++r) {
    float p = sel_hat->value().at(r, 0) + floor;
    float t = std::max(truth.at(r, 0), floor);
    p_vals[r] = p;
    t_vals[r] = t;
    total += std::max(t / p, p / t);
  }
  Mat out(1, 1);
  out.at(0, 0) = static_cast<float>(total / q);
  return MakeNode(std::move(out), {sel_hat},
                  [sel_hat, p_vals = std::move(p_vals), t_vals = std::move(t_vals)](Node& n) {
                    if (!sel_hat->requires_grad()) return;
                    const float g = n.grad().at(0, 0) / static_cast<float>(sel_hat->rows());
                    for (int r = 0; r < sel_hat->rows(); ++r) {
                      float p = p_vals[r], t = t_vals[r];
                      float d = (t / p > p / t) ? (-t / (p * p)) : (1.f / t);
                      sel_hat->grad().at(r, 0) += g * d;
                    }
                  },
                  "qerror_loss");
}

Tensor MseLoss(const Tensor& pred, const Mat& target) {
  UAE_CHECK(pred->value().SameShape(target));
  const size_t n_elems = pred->value().size();
  double total = 0.0;
  const float* p = pred->value().data();
  const float* t = target.data();
  for (size_t i = 0; i < n_elems; ++i) {
    double diff = static_cast<double>(p[i]) - t[i];
    total += diff * diff;
  }
  Mat out(1, 1);
  out.at(0, 0) = static_cast<float>(total / static_cast<double>(n_elems));
  Mat target_copy = target;
  return MakeNode(std::move(out), {pred},
                  [pred, target_copy = std::move(target_copy), n_elems](Node& n) {
                    if (!pred->requires_grad()) return;
                    const float g =
                        2.f * n.grad().at(0, 0) / static_cast<float>(n_elems);
                    float* d = pred->grad().data();
                    const float* pv = pred->value().data();
                    const float* tv = target_copy.data();
                    for (size_t i = 0; i < n_elems; ++i) d[i] += g * (pv[i] - tv[i]);
                  },
                  "mse_loss");
}

}  // namespace uae::nn
