// First-order optimizers over named parameter lists.
#pragma once

#include <vector>

#include "nn/layers.h"

namespace uae::nn {

/// Plain SGD with optional weight decay.
class Sgd {
 public:
  Sgd(std::vector<NamedParam> params, float lr, float weight_decay = 0.f)
      : params_(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

  void Step();
  void ZeroGrad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  std::vector<NamedParam> params_;
  float lr_;
  float weight_decay_;
};

/// Adam (Kingma & Ba) — the paper's training setup uses Adam as in Naru.
class Adam {
 public:
  Adam(std::vector<NamedParam> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.f);

  void Step();
  void ZeroGrad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  int64_t step_count() const { return t_; }

 private:
  std::vector<NamedParam> params_;
  std::vector<Mat> m_;
  std::vector<Mat> v_;
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
};

/// Global-norm gradient clipping; returns the pre-clip norm.
float ClipGradNorm(const std::vector<NamedParam>& params, float max_norm);

}  // namespace uae::nn
