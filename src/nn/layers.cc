#include "nn/layers.h"

namespace uae::nn {

Linear::Linear(int in, int out, const std::string& name, util::Rng* rng)
    : name_(name) {
  w_ = Parameter(Mat::KaimingUniform(in, out, rng));
  b_ = Parameter(Mat::Zeros(1, out));
}

Tensor Linear::Forward(const Tensor& x) const {
  return AddBias(MatMul(x, w_), b_);
}

Tensor Linear::ForwardRelu(const Tensor& x) const {
  return AddBiasRelu(MatMul(x, w_), b_);
}

void Linear::CollectParams(std::vector<NamedParam>* out) const {
  out->push_back({name_ + ".w", w_});
  out->push_back({name_ + ".b", b_});
}

MaskedLinear::MaskedLinear(Mat mask, const std::string& name, util::Rng* rng)
    : mask_(std::move(mask)), name_(name) {
  w_ = Parameter(Mat::KaimingUniform(mask_.rows(), mask_.cols(), rng));
  b_ = Parameter(Mat::Zeros(1, mask_.cols()));
}

Tensor MaskedLinear::Forward(const Tensor& x) const {
  return AddBias(MaskedMatMul(x, w_, mask_), b_);
}

Tensor MaskedLinear::ForwardRelu(const Tensor& x) const {
  return AddBiasRelu(MaskedMatMul(x, w_, mask_), b_);
}

void MaskedLinear::CollectParams(std::vector<NamedParam>* out) const {
  out->push_back({name_ + ".w", w_});
  out->push_back({name_ + ".b", b_});
}

MadeResidualBlock::MadeResidualBlock(const std::vector<int>& degrees,
                                     const std::string& name, util::Rng* rng) {
  Mat mask = HiddenMask(degrees, degrees);
  fc1_ = MaskedLinear(mask, name + ".fc1", rng);
  fc2_ = MaskedLinear(std::move(mask), name + ".fc2", rng);
}

Tensor MadeResidualBlock::Forward(const Tensor& h) const {
  // The entry relu stays separate (h also feeds the residual add); the relu
  // after fc1 is fused into its bias epilogue.
  Tensor t = fc2_.Forward(fc1_.ForwardRelu(Relu(h)));
  return Add(h, t);
}

void MadeResidualBlock::CollectParams(std::vector<NamedParam>* out) const {
  fc1_.CollectParams(out);
  fc2_.CollectParams(out);
}

}  // namespace uae::nn
