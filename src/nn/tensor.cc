#include "nn/tensor.h"

#include <unordered_set>

namespace uae::nn {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

Tensor Parameter(Mat value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/true, "param");
}

Tensor Constant(Mat value) {
  return std::make_shared<Node>(std::move(value), /*requires_grad=*/false, "const");
}

bool GradModeEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

void Backward(const Tensor& loss) {
  UAE_CHECK(loss != nullptr);
  UAE_CHECK(loss->rows() == 1 && loss->cols() == 1)
      << "Backward expects a scalar loss, got " << loss->value().ShapeString();
  // Topological order via iterative DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(loss.get(), 0);
  visited.insert(loss.get());
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents().size()) {
      Node* parent = node->parents()[idx].get();
      ++idx;
      if (parent->requires_grad() && !visited.count(parent)) {
        visited.insert(parent);
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Seed and sweep in reverse topological order.
  loss->grad().at(0, 0) = 1.f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    (*it)->RunBackward();
  }
  // Release the graph; keep gradients on leaves.
  for (Node* n : order) n->DetachGraph();
}

}  // namespace uae::nn
