// Reverse-mode autodiff on a dynamically-built tape.
//
// A Tensor is a shared pointer to a Node holding a float matrix value, an
// optionally-allocated gradient, parent links and a backward closure. Ops in
// ops.h build the graph; Backward(loss) runs a topological sweep.
//
// Grad mode: when GradMode is disabled (see NoGradGuard), ops compute values
// only — no parents, no closures — so the same code paths serve inference.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/mat.h"

namespace uae::nn {

class Node;
using Tensor = std::shared_ptr<Node>;

class Node {
 public:
  Node(Mat value, bool requires_grad, std::string op)
      : value_(std::move(value)), requires_grad_(requires_grad), op_(std::move(op)) {}

  const Mat& value() const { return value_; }
  Mat& mutable_value() { return value_; }
  int rows() const { return value_.rows(); }
  int cols() const { return value_.cols(); }

  bool requires_grad() const { return requires_grad_; }
  const std::string& op() const { return op_; }

  /// Gradient matrix; allocated (zero) on first access.
  Mat& grad() {
    if (grad_.rows() != value_.rows() || grad_.cols() != value_.cols()) {
      grad_ = Mat::Zeros(value_.rows(), value_.cols());
    }
    return grad_;
  }
  bool has_grad() const { return grad_.rows() == value_.rows() && grad_.cols() == value_.cols() && !grad_.empty(); }
  void ZeroGrad() {
    if (has_grad()) grad_.Zero();
  }

  // Graph wiring — used by ops.cc only.
  void set_parents(std::vector<Tensor> parents) { parents_ = std::move(parents); }
  void set_backward(std::function<void(Node&)> fn) { backward_ = std::move(fn); }
  const std::vector<Tensor>& parents() const { return parents_; }
  void RunBackward() {
    if (backward_) backward_(*this);
  }
  /// Drops graph links after backward to free memory.
  void DetachGraph() {
    parents_.clear();
    backward_ = nullptr;
  }

 private:
  Mat value_;
  Mat grad_;
  bool requires_grad_;
  std::string op_;
  std::vector<Tensor> parents_;
  std::function<void(Node&)> backward_;
};

/// Creates a trainable parameter tensor.
Tensor Parameter(Mat value);
/// Creates a constant (non-trainable) tensor.
Tensor Constant(Mat value);

/// Whether newly created ops record the graph. Thread-local.
bool GradModeEnabled();

/// RAII: disables grad recording within scope (inference).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  UAE_DISALLOW_COPY(NoGradGuard);

 private:
  bool prev_;
};

/// Runs backpropagation from a scalar loss node ([1,1]). Seeds dLoss=1,
/// accumulates into grads of all reachable nodes with requires_grad, then
/// releases the graph (parents/backward closures) so memory is reclaimed.
void Backward(const Tensor& loss);

}  // namespace uae::nn
