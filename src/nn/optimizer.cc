#include "nn/optimizer.h"

#include <cmath>

namespace uae::nn {

void Sgd::Step() {
  for (auto& p : params_) {
    if (!p.tensor->has_grad()) continue;
    float* w = p.tensor->mutable_value().data();
    const float* g = p.tensor->grad().data();
    for (size_t i = 0; i < p.tensor->value().size(); ++i) {
      float grad = g[i] + weight_decay_ * w[i];
      w[i] -= lr_ * grad;
    }
  }
}

void Sgd::ZeroGrad() {
  for (auto& p : params_) p.tensor->ZeroGrad();
}

Adam::Adam(std::vector<NamedParam> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.tensor->rows(), p.tensor->cols());
    v_.emplace_back(p.tensor->rows(), p.tensor->cols());
  }
}

void Adam::Step() {
  ++t_;
  const float bc1 = 1.f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    if (!p.tensor->has_grad()) continue;
    float* w = p.tensor->mutable_value().data();
    const float* g = p.tensor->grad().data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const size_t n = p.tensor->value().size();
    for (size_t i = 0; i < n; ++i) {
      float grad = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.f - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.f - beta2_) * grad * grad;
      float mhat = m[i] / bc1;
      float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::ZeroGrad() {
  for (auto& p : params_) p.tensor->ZeroGrad();
}

float ClipGradNorm(const std::vector<NamedParam>& params, float max_norm) {
  double total = 0.0;
  for (const auto& p : params) {
    if (!p.tensor->has_grad()) continue;
    const float* g = p.tensor->grad().data();
    for (size_t i = 0; i < p.tensor->grad().size(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.f) {
    float scale = max_norm / norm;
    for (const auto& p : params) {
      if (!p.tensor->has_grad()) continue;
      float* g = p.tensor->grad().data();
      for (size_t i = 0; i < p.tensor->grad().size(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace uae::nn
