#include "nn/mat.h"

#include <algorithm>
#include <cmath>

namespace uae::nn {

Mat Mat::Uniform(int rows, int cols, float a, util::Rng* rng) {
  Mat m(rows, cols);
  for (auto& v : m.d_) v = static_cast<float>(rng->Uniform(-a, a));
  return m;
}

Mat Mat::Gaussian(int rows, int cols, float stddev, util::Rng* rng) {
  Mat m(rows, cols);
  for (auto& v : m.d_) v = static_cast<float>(rng->Gaussian(0.0, stddev));
  return m;
}

Mat Mat::KaimingUniform(int fan_in, int fan_out, util::Rng* rng) {
  float bound = std::sqrt(6.0f / std::max(1, fan_in));
  return Uniform(fan_in, fan_out, bound, rng);
}

Mat Mat::FromVector(int rows, int cols, std::vector<float> data) {
  UAE_CHECK_EQ(data.size(), size_t(rows) * cols);
  Mat m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.d_ = std::move(data);
  return m;
}

float Mat::AbsMax() const {
  float mx = 0.f;
  for (float v : d_) mx = std::max(mx, std::fabs(v));
  return mx;
}

double Mat::Sum() const {
  double s = 0.0;
  for (float v : d_) s += v;
  return s;
}

std::string Mat::ShapeString() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

}  // namespace uae::nn
