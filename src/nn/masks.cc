#include "nn/masks.h"

#include <algorithm>

namespace uae::nn {

std::vector<int> HiddenDegrees(int hidden_units, int n_cols) {
  UAE_CHECK_GT(hidden_units, 0);
  UAE_CHECK_GT(n_cols, 0);
  std::vector<int> degrees(hidden_units);
  int max_degree = std::max(1, n_cols - 1);
  for (int k = 0; k < hidden_units; ++k) degrees[k] = (k % max_degree) + 1;
  return degrees;
}

Mat InputMask(const std::vector<int>& col_widths,
              const std::vector<int>& hidden_degrees) {
  int total = 0;
  for (int w : col_widths) total += w;
  Mat mask(total, static_cast<int>(hidden_degrees.size()));
  int row = 0;
  for (size_t j = 0; j < col_widths.size(); ++j) {
    int d = static_cast<int>(j) + 1;  // Input degree of column j.
    for (int f = 0; f < col_widths[j]; ++f, ++row) {
      for (size_t k = 0; k < hidden_degrees.size(); ++k) {
        mask.at(row, static_cast<int>(k)) = hidden_degrees[k] >= d ? 1.f : 0.f;
      }
    }
  }
  return mask;
}

Mat HiddenMask(const std::vector<int>& degrees_in, const std::vector<int>& degrees_out) {
  Mat mask(static_cast<int>(degrees_in.size()), static_cast<int>(degrees_out.size()));
  for (size_t i = 0; i < degrees_in.size(); ++i) {
    for (size_t o = 0; o < degrees_out.size(); ++o) {
      mask.at(static_cast<int>(i), static_cast<int>(o)) =
          degrees_out[o] >= degrees_in[i] ? 1.f : 0.f;
    }
  }
  return mask;
}

Mat HeadMask(const std::vector<int>& hidden_degrees, int col_index, int domain) {
  Mat mask(static_cast<int>(hidden_degrees.size()), domain);
  int d = col_index + 1;
  for (size_t k = 0; k < hidden_degrees.size(); ++k) {
    float allowed = hidden_degrees[k] < d ? 1.f : 0.f;
    for (int c = 0; c < domain; ++c) mask.at(static_cast<int>(k), c) = allowed;
  }
  return mask;
}

}  // namespace uae::nn
