// Dense row-major float32 matrix — the storage type of the NN engine.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "util/common.h"
#include "util/rng.h"

namespace uae::nn {

class Mat {
 public:
  Mat() : rows_(0), cols_(0) {}
  Mat(int rows, int cols) : rows_(rows), cols_(cols), d_(size_t(rows) * cols, 0.f) {
    UAE_DCHECK(rows >= 0 && cols >= 0);
  }
  Mat(int rows, int cols, float fill)
      : rows_(rows), cols_(cols), d_(size_t(rows) * cols, fill) {}

  static Mat Zeros(int rows, int cols) { return Mat(rows, cols); }
  static Mat Full(int rows, int cols, float v) { return Mat(rows, cols, v); }
  /// Uniform in [-a, a].
  static Mat Uniform(int rows, int cols, float a, util::Rng* rng);
  /// Gaussian N(0, stddev^2).
  static Mat Gaussian(int rows, int cols, float stddev, util::Rng* rng);
  /// Kaiming-uniform init for a fan_in -> fan_out linear layer.
  static Mat KaimingUniform(int fan_in, int fan_out, util::Rng* rng);
  static Mat FromVector(int rows, int cols, std::vector<float> data);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  size_t size() const { return d_.size(); }
  bool empty() const { return d_.empty(); }

  float& at(int r, int c) {
    UAE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return d_[size_t(r) * cols_ + c];
  }
  float at(int r, int c) const {
    UAE_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return d_[size_t(r) * cols_ + c];
  }
  float* row(int r) { return d_.data() + size_t(r) * cols_; }
  const float* row(int r) const { return d_.data() + size_t(r) * cols_; }
  float* data() { return d_.data(); }
  const float* data() const { return d_.data(); }

  void Fill(float v) { std::fill(d_.begin(), d_.end(), v); }
  void Zero() { Fill(0.f); }
  bool SameShape(const Mat& o) const { return rows_ == o.rows_ && cols_ == o.cols_; }

  /// Frobenius-style helpers used by tests and optimizers.
  float AbsMax() const;
  double Sum() const;

  std::string ShapeString() const;

 private:
  int rows_;
  int cols_;
  std::vector<float> d_;
};

}  // namespace uae::nn
