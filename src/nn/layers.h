// Parameter-owning layers. Layers are thin: they hold weight tensors and build
// graph ops in Forward(); autograd handles the rest.
#pragma once

#include <string>
#include <vector>

#include "nn/masks.h"
#include "nn/ops.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace uae::nn {

/// A named trainable tensor, for optimizers and serialization.
struct NamedParam {
  std::string name;
  Tensor tensor;
};

/// Fully-connected layer: y = x W + b.
class Linear {
 public:
  Linear() = default;
  Linear(int in, int out, const std::string& name, util::Rng* rng);

  Tensor Forward(const Tensor& x) const;
  /// relu(x W + b) with the bias add and relu fused into one kernel pass.
  Tensor ForwardRelu(const Tensor& x) const;
  void CollectParams(std::vector<NamedParam>* out) const;
  int in_features() const { return w_ ? w_->rows() : 0; }
  int out_features() const { return w_ ? w_->cols() : 0; }

 private:
  Tensor w_;
  Tensor b_;
  std::string name_;
};

/// MADE masked fully-connected layer: y = x (W ⊙ M) + b, M constant.
class MaskedLinear {
 public:
  MaskedLinear() = default;
  MaskedLinear(Mat mask, const std::string& name, util::Rng* rng);

  Tensor Forward(const Tensor& x) const;
  /// relu(x (W ⊙ M) + b) with the bias add and relu fused.
  Tensor ForwardRelu(const Tensor& x) const;
  void CollectParams(std::vector<NamedParam>* out) const;
  const Mat& mask() const { return mask_; }
  /// Raw parameters, read-only — the frozen inference plane (core/wavefront)
  /// pre-masks W once instead of re-applying the mask per forward.
  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  Mat mask_;
  Tensor w_;
  Tensor b_;
  std::string name_;
};

/// ResMADE residual block: h + MaskedLinear2(relu(MaskedLinear1(relu(h)))).
/// Both inner layers use hidden->hidden masks, preserving the AR property.
class MadeResidualBlock {
 public:
  MadeResidualBlock() = default;
  MadeResidualBlock(const std::vector<int>& degrees, const std::string& name,
                    util::Rng* rng);

  Tensor Forward(const Tensor& h) const;
  void CollectParams(std::vector<NamedParam>* out) const;
  const MaskedLinear& fc1() const { return fc1_; }
  const MaskedLinear& fc2() const { return fc2_; }

 private:
  MaskedLinear fc1_;
  MaskedLinear fc2_;
};

}  // namespace uae::nn
