// MADE mask construction (Germain et al., 2015) for the left-to-right
// autoregressive ordering used by the paper (§4.2).
//
// Degrees: (virtual) column j has input degree d(j) = j+1 (0-based j).
// Hidden unit k has degree m(k) cycling over {1, ..., n-1}.
// Connectivity rules:
//   input  -> hidden : allowed iff m(k) >= d(input col)      (M[in, hid])
//   hidden -> hidden : allowed iff m(k') >= m(k)
//   hidden -> head j : allowed iff m(k) <  d(j) = j+1
// so the head of column j sees only inputs of columns < j, giving exactly the
// factorization P(x) = prod_j P(x_j | x_<j) of Eq. 1.
#pragma once

#include <vector>

#include "nn/mat.h"

namespace uae::nn {

/// Assigns hidden-unit degrees cycling 1..n_cols-1 (all 1s when n_cols == 1).
std::vector<int> HiddenDegrees(int hidden_units, int n_cols);

/// Mask [total_input_width, hidden] for the first layer. `col_widths[j]` is the
/// encoded width of column j; all features of a column share its degree.
Mat InputMask(const std::vector<int>& col_widths, const std::vector<int>& hidden_degrees);

/// Mask [hidden, hidden] between two hidden layers with the same degree vector.
Mat HiddenMask(const std::vector<int>& degrees_in, const std::vector<int>& degrees_out);

/// Mask [hidden, domain_j] for the output head of column j (0-based).
Mat HeadMask(const std::vector<int>& hidden_degrees, int col_index, int domain);

}  // namespace uae::nn
