#include "nn/kernels_ref.h"

#include <algorithm>
#include <cmath>

#include "util/threadpool.h"

namespace uae::nn::ref {

namespace {
// Below this many multiply-adds a parallel launch costs more than it saves.
constexpr size_t kParallelFlops = 1u << 20;
}  // namespace

void GemmAccum(const Mat& a, const Mat& b, Mat* c) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  UAE_CHECK_EQ(b.rows(), k);
  UAE_CHECK(c->rows() == m && c->cols() == n) << a.ShapeString() << b.ShapeString();
  auto body = [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      float* crow = c->row(static_cast<int>(i));
      const float* arow = a.row(static_cast<int>(i));
      for (int p = 0; p < k; ++p) {
        const float av = arow[p];
        if (av == 0.f) continue;
        const float* brow = b.row(p);
        for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  };
  size_t flops = size_t(m) * k * n;
  if (flops >= kParallelFlops && m > 1) {
    util::ParallelFor(0, static_cast<size_t>(m), body, /*min_parallel_size=*/1);
  } else {
    body(0, static_cast<size_t>(m));
  }
}

void GemmNtQuantAccum(const Mat& a, const QuantizedMat& b, Mat* c) {
  const int m = a.rows(), k = a.cols(), n = b.rows;
  UAE_CHECK_EQ(b.cols, k);
  UAE_CHECK(c->rows() == m && c->cols() == n);
  for (int i = 0; i < m; ++i) {
    const float* arow = a.row(i);
    float* crow = c->row(i);
    for (int j = 0; j < n; ++j) {
      const int8_t* brow = b.row(j);
      const float scale = b.scales[static_cast<size_t>(j)];
      float acc = 0.f;
      for (int p = 0; p < k; ++p) {
        acc += arow[p] * (static_cast<float>(brow[p]) * scale);
      }
      crow[j] += acc;
    }
  }
}

void GemmNtAccum(const Mat& a, const Mat& b, Mat* c) {
  const int m = a.rows(), k = a.cols(), n = b.rows();
  UAE_CHECK_EQ(b.cols(), k);
  UAE_CHECK(c->rows() == m && c->cols() == n);
  auto body = [&](size_t r0, size_t r1) {
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a.row(static_cast<int>(i));
      float* crow = c->row(static_cast<int>(i));
      for (int j = 0; j < n; ++j) {
        const float* brow = b.row(j);
        float acc = 0.f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    }
  };
  size_t flops = size_t(m) * k * n;
  if (flops >= kParallelFlops && m > 1) {
    util::ParallelFor(0, static_cast<size_t>(m), body, 1);
  } else {
    body(0, static_cast<size_t>(m));
  }
}

void GemmTnAccum(const Mat& a, const Mat& b, Mat* c) {
  const int k = a.rows(), m = a.cols(), n = b.cols();
  UAE_CHECK_EQ(b.rows(), k);
  UAE_CHECK(c->rows() == m && c->cols() == n);
  // Serial over the shared k dimension; rows of C are written once per k.
  for (int p = 0; p < k; ++p) {
    const float* arow = a.row(p);
    const float* brow = b.row(p);
    for (int i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.f) continue;
      float* crow = c->row(i);
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void AddBiasRows(const Mat& in, const Mat& bias, Mat* out) {
  UAE_CHECK_EQ(bias.rows(), 1);
  UAE_CHECK_EQ(bias.cols(), in.cols());
  UAE_CHECK(out->SameShape(in));
  const float* b = bias.row(0);
  for (int r = 0; r < in.rows(); ++r) {
    const float* src = in.row(r);
    float* dst = out->row(r);
    for (int c = 0; c < in.cols(); ++c) dst[c] = src[c] + b[c];
  }
}

void SoftmaxRows(const Mat& in, Mat* out) {
  UAE_CHECK(out->SameShape(in));
  for (int r = 0; r < in.rows(); ++r) {
    const float* src = in.row(r);
    float* dst = out->row(r);
    float mx = src[0];
    for (int c = 1; c < in.cols(); ++c) mx = std::max(mx, src[c]);
    float sum = 0.f;
    for (int c = 0; c < in.cols(); ++c) {
      dst[c] = std::exp(src[c] - mx);
      sum += dst[c];
    }
    float inv = 1.f / sum;
    for (int c = 0; c < in.cols(); ++c) dst[c] *= inv;
  }
}

void LogSoftmaxRows(const Mat& in, Mat* out) {
  UAE_CHECK(out->SameShape(in));
  for (int r = 0; r < in.rows(); ++r) {
    const float* src = in.row(r);
    float* dst = out->row(r);
    float mx = src[0];
    for (int c = 1; c < in.cols(); ++c) mx = std::max(mx, src[c]);
    float sum = 0.f;
    for (int c = 0; c < in.cols(); ++c) sum += std::exp(src[c] - mx);
    float lse = mx + std::log(sum);
    for (int c = 0; c < in.cols(); ++c) dst[c] = src[c] - lse;
  }
}

}  // namespace uae::nn::ref
