#include "nn/kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/threadpool.h"

namespace uae::nn {

namespace {

// Below this many multiply-adds a parallel launch costs more than it saves.
// One threshold gates the parallel path of all three GEMM variants.
constexpr size_t kParallelFlops = 1u << 20;

static_assert((kReduceLanes & (kReduceLanes - 1)) == 0,
              "lane tails index with & (kReduceLanes - 1)");

// Unified dispatch: runs `body` over register-tile row blocks of C, in
// parallel when the problem is big enough. Block g always owns C rows
// [g*kGemmRowTile, (g+1)*kGemmRowTile), independent of how ParallelFor chunks
// the block range, so every output element sees the same accumulation order
// for any thread count.
template <typename Body>
void ForEachRowBlock(size_t flops, int rows, const Body& body) {
  const size_t blocks =
      (static_cast<size_t>(rows) + kGemmRowTile - 1) / kGemmRowTile;
  if (flops >= kParallelFlops && blocks > 1) {
    util::ParallelFor(0, blocks, body, /*min_parallel_size=*/1);
  } else {
    body(0, blocks);
  }
}

inline float RowMax(const float* x, int nc) {
  float mx = x[0];
  for (int c = 1; c < nc; ++c) mx = std::max(mx, x[c]);
  return mx;
}

// See FastExpf in kernels.h. exp(x) = 2^n * e^f with n = round(x*log2(e)):
// the integer power is rounded with the magic-constant trick (no SSE4 round
// instruction needed), the residual f = x - n*ln2 is formed with a split
// hi/lo ln2 so no precision is lost at large |x|, e^f comes from a degree-5
// polynomial on [-ln2/2, ln2/2] (Cephes-style), and 2^n is spliced into the
// float exponent bits.
inline float FastExpfImpl(float x) {
  x = std::min(88.0f, std::max(-87.0f, x));
  const float z = x * 1.44269504088896341f;  // x * log2(e)
  // Round-to-nearest of |z| < 2^22 in pure float arithmetic: 1.5 * 2^23.
  const float zi = (z + 12582912.0f) - 12582912.0f;
  float f = x - zi * 0.693359375f;       // ln2 high bits (exact product)
  f -= zi * -2.12194440e-4f;             // ln2 low bits
  float p = 1.9875691500e-4f;
  p = p * f + 1.3981999507e-3f;
  p = p * f + 8.3334519073e-3f;
  p = p * f + 4.1665795894e-2f;
  p = p * f + 1.6666665459e-1f;
  p = p * f + 5.0000001201e-1f;
  p = p * (f * f) + f + 1.0f;
  const int32_t n = static_cast<int32_t>(zi);
  const float scale = std::bit_cast<float>((n + 127) << 23);
  return p * scale;
}

// ---- GemmAccum / GemmTnAccum microkernels ---------------------------------
//
// Both share the same register-tiled shape: a kGemmRowTile x kGemmColTile
// accumulator tile lives in vector registers across a whole k-panel and C is
// read/modified/written once per panel. They differ only in where the four
// A values per k step come from: GemmAccum reads down four rows of A,
// GemmTnAccum reads four adjacent columns (contiguous in the row-major A of
// shape (k, m)). Within a panel the k index ascends for every output element
// in tile, tail and single-row paths alike, so per-element results do not
// depend on how rows were grouped into blocks.

// C[i0..i0+4) += A[i0..i0+4, :] * B.
void GemmPanel4(const Mat& a, const Mat& b, int i0, Mat* c) {
  const int k = a.cols(), n = b.cols();
  const float* a0 = a.row(i0);
  const float* a1 = a.row(i0 + 1);
  const float* a2 = a.row(i0 + 2);
  const float* a3 = a.row(i0 + 3);
  float* c0 = c->row(i0);
  float* c1 = c->row(i0 + 1);
  float* c2 = c->row(i0 + 2);
  float* c3 = c->row(i0 + 3);
  for (int p0 = 0; p0 < k; p0 += kGemmKBlock) {
    const int p1 = std::min(p0 + kGemmKBlock, k);
    int j = 0;
    for (; j + kGemmColTile <= n; j += kGemmColTile) {
      float t0[kGemmColTile] = {}, t1[kGemmColTile] = {};
      float t2[kGemmColTile] = {}, t3[kGemmColTile] = {};
      for (int p = p0; p < p1; ++p) {
        const float av0 = a0[p], av1 = a1[p], av2 = a2[p], av3 = a3[p];
        // Quad-sparse skip: one-hot/binary-encoded inputs give A long runs of
        // all-zero columns, and wildcard batches repeat one row pattern.
        if (av0 == 0.f && av1 == 0.f && av2 == 0.f && av3 == 0.f) continue;
        const float* bp = b.row(p) + j;
        for (int l = 0; l < kGemmColTile; ++l) {
          const float bv = bp[l];
          t0[l] += av0 * bv;
          t1[l] += av1 * bv;
          t2[l] += av2 * bv;
          t3[l] += av3 * bv;
        }
      }
      for (int l = 0; l < kGemmColTile; ++l) {
        c0[j + l] += t0[l];
        c1[j + l] += t1[l];
        c2[j + l] += t2[l];
        c3[j + l] += t3[l];
      }
    }
    for (; j < n; ++j) {  // column tail: same per-element k order as the tile
      float t0 = 0.f, t1 = 0.f, t2 = 0.f, t3 = 0.f;
      for (int p = p0; p < p1; ++p) {
        const float bv = b.row(p)[j];
        t0 += a0[p] * bv;
        t1 += a1[p] * bv;
        t2 += a2[p] * bv;
        t3 += a3[p] * bv;
      }
      c0[j] += t0;
      c1[j] += t1;
      c2[j] += t2;
      c3[j] += t3;
    }
  }
}

// C[i] += A[i, :] * B — remainder rows past the last full quad.
void GemmPanel1(const Mat& a, const Mat& b, int i, Mat* c) {
  const int k = a.cols(), n = b.cols();
  const float* arow = a.row(i);
  float* crow = c->row(i);
  for (int p0 = 0; p0 < k; p0 += kGemmKBlock) {
    const int p1 = std::min(p0 + kGemmKBlock, k);
    int j = 0;
    for (; j + kGemmColTile <= n; j += kGemmColTile) {
      float t[kGemmColTile] = {};
      for (int p = p0; p < p1; ++p) {
        const float av = arow[p];
        if (av == 0.f) continue;
        const float* bp = b.row(p) + j;
        for (int l = 0; l < kGemmColTile; ++l) t[l] += av * bp[l];
      }
      for (int l = 0; l < kGemmColTile; ++l) crow[j + l] += t[l];
    }
    for (; j < n; ++j) {
      float t = 0.f;
      for (int p = p0; p < p1; ++p) t += arow[p] * b.row(p)[j];
      crow[j] += t;
    }
  }
}

// C[i0..i0+4) += A[:, i0..i0+4)^T * B, with A of shape (k, m).
void GemmTnPanel4(const Mat& a, const Mat& b, int i0, Mat* c) {
  const int k = a.rows(), n = b.cols();
  float* c0 = c->row(i0);
  float* c1 = c->row(i0 + 1);
  float* c2 = c->row(i0 + 2);
  float* c3 = c->row(i0 + 3);
  for (int p0 = 0; p0 < k; p0 += kGemmKBlock) {
    const int p1 = std::min(p0 + kGemmKBlock, k);
    int j = 0;
    for (; j + kGemmColTile <= n; j += kGemmColTile) {
      float t0[kGemmColTile] = {}, t1[kGemmColTile] = {};
      float t2[kGemmColTile] = {}, t3[kGemmColTile] = {};
      for (int p = p0; p < p1; ++p) {
        const float* ap = a.row(p) + i0;  // four adjacent columns: contiguous
        const float av0 = ap[0], av1 = ap[1], av2 = ap[2], av3 = ap[3];
        if (av0 == 0.f && av1 == 0.f && av2 == 0.f && av3 == 0.f) continue;
        const float* bp = b.row(p) + j;
        for (int l = 0; l < kGemmColTile; ++l) {
          const float bv = bp[l];
          t0[l] += av0 * bv;
          t1[l] += av1 * bv;
          t2[l] += av2 * bv;
          t3[l] += av3 * bv;
        }
      }
      for (int l = 0; l < kGemmColTile; ++l) {
        c0[j + l] += t0[l];
        c1[j + l] += t1[l];
        c2[j + l] += t2[l];
        c3[j + l] += t3[l];
      }
    }
    for (; j < n; ++j) {
      float t0 = 0.f, t1 = 0.f, t2 = 0.f, t3 = 0.f;
      for (int p = p0; p < p1; ++p) {
        const float* ap = a.row(p) + i0;
        const float bv = b.row(p)[j];
        t0 += ap[0] * bv;
        t1 += ap[1] * bv;
        t2 += ap[2] * bv;
        t3 += ap[3] * bv;
      }
      c0[j] += t0;
      c1[j] += t1;
      c2[j] += t2;
      c3[j] += t3;
    }
  }
}

void GemmTnPanel1(const Mat& a, const Mat& b, int i, Mat* c) {
  const int k = a.rows(), n = b.cols();
  float* crow = c->row(i);
  for (int p0 = 0; p0 < k; p0 += kGemmKBlock) {
    const int p1 = std::min(p0 + kGemmKBlock, k);
    int j = 0;
    for (; j + kGemmColTile <= n; j += kGemmColTile) {
      float t[kGemmColTile] = {};
      for (int p = p0; p < p1; ++p) {
        const float av = a.row(p)[i];
        if (av == 0.f) continue;
        const float* bp = b.row(p) + j;
        for (int l = 0; l < kGemmColTile; ++l) t[l] += av * bp[l];
      }
      for (int l = 0; l < kGemmColTile; ++l) crow[j + l] += t[l];
    }
    for (; j < n; ++j) {
      float t = 0.f;
      for (int p = p0; p < p1; ++p) t += a.row(p)[i] * b.row(p)[j];
      crow[j] += t;
    }
  }
}

// ---- GemmNtAccum microkernel ----------------------------------------------
//
// Dot-product form: C[i][j] = <A row i, B row j>. Four A rows share each
// loaded B row; every dot keeps kReduceLanes independent partial sums (lane
// = p mod kReduceLanes in main loop and tail alike) that vectorize without
// -ffast-math and are reduced in fixed lane order.

void GemmNtRows4(const Mat& a, const Mat& b, int i0, Mat* c) {
  const int k = a.cols(), n = b.rows();
  const float* a0 = a.row(i0);
  const float* a1 = a.row(i0 + 1);
  const float* a2 = a.row(i0 + 2);
  const float* a3 = a.row(i0 + 3);
  float* c0 = c->row(i0);
  float* c1 = c->row(i0 + 1);
  float* c2 = c->row(i0 + 2);
  float* c3 = c->row(i0 + 3);
  for (int j = 0; j < n; ++j) {
    const float* brow = b.row(j);
    float t0[kReduceLanes] = {}, t1[kReduceLanes] = {};
    float t2[kReduceLanes] = {}, t3[kReduceLanes] = {};
    int p = 0;
    for (; p + kReduceLanes <= k; p += kReduceLanes) {
      for (int l = 0; l < kReduceLanes; ++l) {
        const float bv = brow[p + l];
        t0[l] += a0[p + l] * bv;
        t1[l] += a1[p + l] * bv;
        t2[l] += a2[p + l] * bv;
        t3[l] += a3[p + l] * bv;
      }
    }
    for (; p < k; ++p) {
      const float bv = brow[p];
      const int l = p & (kReduceLanes - 1);
      t0[l] += a0[p] * bv;
      t1[l] += a1[p] * bv;
      t2[l] += a2[p] * bv;
      t3[l] += a3[p] * bv;
    }
    float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
    for (int l = 0; l < kReduceLanes; ++l) {
      s0 += t0[l];
      s1 += t1[l];
      s2 += t2[l];
      s3 += t3[l];
    }
    c0[j] += s0;
    c1[j] += s1;
    c2[j] += s2;
    c3[j] += s3;
  }
}

void GemmNtRows1(const Mat& a, const Mat& b, int i, Mat* c) {
  const int k = a.cols(), n = b.rows();
  const float* arow = a.row(i);
  float* crow = c->row(i);
  for (int j = 0; j < n; ++j) {
    const float* brow = b.row(j);
    float t[kReduceLanes] = {};
    int p = 0;
    for (; p + kReduceLanes <= k; p += kReduceLanes) {
      for (int l = 0; l < kReduceLanes; ++l) t[l] += arow[p + l] * brow[p + l];
    }
    for (; p < k; ++p) t[p & (kReduceLanes - 1)] += arow[p] * brow[p];
    float s = 0.f;
    for (int l = 0; l < kReduceLanes; ++l) s += t[l];
    crow[j] += s;
  }
}

}  // namespace

void GemmAccum(const Mat& a, const Mat& b, Mat* c) {
  const int m = a.rows(), k = a.cols(), n = b.cols();
  UAE_CHECK_EQ(b.rows(), k);
  UAE_CHECK(c->rows() == m && c->cols() == n) << a.ShapeString() << b.ShapeString();
  if (m == 0 || n == 0 || k == 0) return;
  auto body = [&](size_t blk0, size_t blk1) {
    for (size_t blk = blk0; blk < blk1; ++blk) {
      const int i0 = static_cast<int>(blk) * kGemmRowTile;
      if (i0 + kGemmRowTile <= m) {
        GemmPanel4(a, b, i0, c);
      } else {
        for (int i = i0; i < m; ++i) GemmPanel1(a, b, i, c);
      }
    }
  };
  ForEachRowBlock(size_t(m) * k * n, m, body);
}

void GemmNtAccum(const Mat& a, const Mat& b, Mat* c) {
  const int m = a.rows(), k = a.cols(), n = b.rows();
  UAE_CHECK_EQ(b.cols(), k);
  UAE_CHECK(c->rows() == m && c->cols() == n);
  if (m == 0 || n == 0 || k == 0) return;
  auto body = [&](size_t blk0, size_t blk1) {
    for (size_t blk = blk0; blk < blk1; ++blk) {
      const int i0 = static_cast<int>(blk) * kGemmRowTile;
      if (i0 + kGemmRowTile <= m) {
        GemmNtRows4(a, b, i0, c);
      } else {
        for (int i = i0; i < m; ++i) GemmNtRows1(a, b, i, c);
      }
    }
  };
  ForEachRowBlock(size_t(m) * k * n, m, body);
}

void GemmTnAccum(const Mat& a, const Mat& b, Mat* c) {
  const int k = a.rows(), m = a.cols(), n = b.cols();
  UAE_CHECK_EQ(b.rows(), k);
  UAE_CHECK(c->rows() == m && c->cols() == n);
  if (m == 0 || n == 0 || k == 0) return;
  // Parallel over blocks of C rows (columns of A): each thread accumulates
  // only into rows it owns, replacing the old serial shared-k loop without
  // any cross-thread reduction step.
  auto body = [&](size_t blk0, size_t blk1) {
    for (size_t blk = blk0; blk < blk1; ++blk) {
      const int i0 = static_cast<int>(blk) * kGemmRowTile;
      if (i0 + kGemmRowTile <= m) {
        GemmTnPanel4(a, b, i0, c);
      } else {
        for (int i = i0; i < m; ++i) GemmTnPanel1(a, b, i, c);
      }
    }
  };
  ForEachRowBlock(size_t(m) * k * n, m, body);
}

void AddBiasRows(const Mat& in, const Mat& bias, Mat* out) {
  UAE_CHECK_EQ(bias.rows(), 1);
  UAE_CHECK_EQ(bias.cols(), in.cols());
  UAE_CHECK(out->SameShape(in));
  const float* b = bias.row(0);
  for (int r = 0; r < in.rows(); ++r) {
    const float* src = in.row(r);
    float* dst = out->row(r);
    for (int c = 0; c < in.cols(); ++c) dst[c] = src[c] + b[c];
  }
}

void AddBiasReluRows(const Mat& in, const Mat& bias, Mat* out) {
  UAE_CHECK_EQ(bias.rows(), 1);
  UAE_CHECK_EQ(bias.cols(), in.cols());
  UAE_CHECK(out->SameShape(in));
  const float* b = bias.row(0);
  for (int r = 0; r < in.rows(); ++r) {
    const float* src = in.row(r);
    float* dst = out->row(r);
    for (int c = 0; c < in.cols(); ++c) {
      const float v = src[c] + b[c];
      dst[c] = v > 0.f ? v : 0.f;
    }
  }
}

void ReluInplace(Mat* m) {
  float* d = m->data();
  for (size_t i = 0; i < m->size(); ++i) d[i] = d[i] > 0.f ? d[i] : 0.f;
}

float FastExpf(float x) { return FastExpfImpl(x); }

void SoftmaxRows(const Mat& in, Mat* out) {
  UAE_CHECK(out->SameShape(in));
  const int nc = in.cols();
  if (nc == 0) return;
  for (int r = 0; r < in.rows(); ++r) {
    const float* src = in.row(r);
    float* dst = out->row(r);
    const float mx = RowMax(src, nc);
    // Fused exp + lane-split sum: FastExpf is branch-free float arithmetic,
    // so the whole pass vectorizes instead of serializing on libm expf.
    float t[kReduceLanes] = {};
    int c = 0;
    for (; c + kReduceLanes <= nc; c += kReduceLanes) {
      for (int l = 0; l < kReduceLanes; ++l) {
        const float e = FastExpfImpl(src[c + l] - mx);
        dst[c + l] = e;
        t[l] += e;
      }
    }
    for (; c < nc; ++c) {
      const float e = FastExpfImpl(src[c] - mx);
      dst[c] = e;
      t[c & (kReduceLanes - 1)] += e;
    }
    float sum = 0.f;
    for (int l = 0; l < kReduceLanes; ++l) sum += t[l];
    const float inv = 1.f / sum;
    for (c = 0; c < nc; ++c) dst[c] *= inv;
  }
}

void SoftmaxRowsInplace(Mat* m) { SoftmaxRows(*m, m); }

void LogSoftmaxRows(const Mat& in, Mat* out) {
  UAE_CHECK(out->SameShape(in));
  const int nc = in.cols();
  if (nc == 0) return;
  for (int r = 0; r < in.rows(); ++r) {
    const float* src = in.row(r);
    float* dst = out->row(r);
    const float mx = RowMax(src, nc);
    float t[kReduceLanes] = {};
    int c = 0;
    for (; c + kReduceLanes <= nc; c += kReduceLanes) {
      for (int l = 0; l < kReduceLanes; ++l) t[l] += FastExpfImpl(src[c + l] - mx);
    }
    for (; c < nc; ++c) t[c & (kReduceLanes - 1)] += FastExpfImpl(src[c] - mx);
    float sum = 0.f;
    for (int l = 0; l < kReduceLanes; ++l) sum += t[l];
    const float lse = mx + std::log(sum);
    for (c = 0; c < nc; ++c) dst[c] = src[c] - lse;
  }
}

namespace {

// ---- Quantized GEMM microkernels ------------------------------------------
//
// Same dot-product shape as GemmNtRows4/1, with the int8 weight row widened
// to float in the inner loop (one cvt per element — vectorizes to pmovsxbd +
// cvtdq2ps) and the per-output-channel dequant scale applied once per dot in
// the epilogue, before the accumulate into C.

void GemmNtQuantRows4(const Mat& a, const QuantizedMat& b, int i0, Mat* c) {
  const int k = a.cols(), n = b.rows;
  const float* a0 = a.row(i0);
  const float* a1 = a.row(i0 + 1);
  const float* a2 = a.row(i0 + 2);
  const float* a3 = a.row(i0 + 3);
  float* c0 = c->row(i0);
  float* c1 = c->row(i0 + 1);
  float* c2 = c->row(i0 + 2);
  float* c3 = c->row(i0 + 3);
  for (int j = 0; j < n; ++j) {
    const int8_t* brow = b.row(j);
    const float scale = b.scales[static_cast<size_t>(j)];
    float t0[kReduceLanes] = {}, t1[kReduceLanes] = {};
    float t2[kReduceLanes] = {}, t3[kReduceLanes] = {};
    int p = 0;
    for (; p + kReduceLanes <= k; p += kReduceLanes) {
      for (int l = 0; l < kReduceLanes; ++l) {
        const float bv = static_cast<float>(brow[p + l]);
        t0[l] += a0[p + l] * bv;
        t1[l] += a1[p + l] * bv;
        t2[l] += a2[p + l] * bv;
        t3[l] += a3[p + l] * bv;
      }
    }
    for (; p < k; ++p) {
      const float bv = static_cast<float>(brow[p]);
      const int l = p & (kReduceLanes - 1);
      t0[l] += a0[p] * bv;
      t1[l] += a1[p] * bv;
      t2[l] += a2[p] * bv;
      t3[l] += a3[p] * bv;
    }
    float s0 = 0.f, s1 = 0.f, s2 = 0.f, s3 = 0.f;
    for (int l = 0; l < kReduceLanes; ++l) {
      s0 += t0[l];
      s1 += t1[l];
      s2 += t2[l];
      s3 += t3[l];
    }
    c0[j] += s0 * scale;
    c1[j] += s1 * scale;
    c2[j] += s2 * scale;
    c3[j] += s3 * scale;
  }
}

void GemmNtQuantRows1(const Mat& a, const QuantizedMat& b, int i, Mat* c) {
  const int k = a.cols(), n = b.rows;
  const float* arow = a.row(i);
  float* crow = c->row(i);
  for (int j = 0; j < n; ++j) {
    const int8_t* brow = b.row(j);
    float t[kReduceLanes] = {};
    int p = 0;
    for (; p + kReduceLanes <= k; p += kReduceLanes) {
      for (int l = 0; l < kReduceLanes; ++l) {
        t[l] += arow[p + l] * static_cast<float>(brow[p + l]);
      }
    }
    for (; p < k; ++p) {
      t[p & (kReduceLanes - 1)] += arow[p] * static_cast<float>(brow[p]);
    }
    float s = 0.f;
    for (int l = 0; l < kReduceLanes; ++l) s += t[l];
    crow[j] += s * b.scales[static_cast<size_t>(j)];
  }
}

}  // namespace

QuantizedMat QuantizePerRowAbsMax(const Mat& w) {
  QuantizedMat out;
  out.rows = w.rows();
  out.cols = w.cols();
  out.q.resize(static_cast<size_t>(w.rows()) * static_cast<size_t>(w.cols()));
  out.scales.resize(static_cast<size_t>(w.rows()));
  for (int r = 0; r < w.rows(); ++r) {
    const float* src = w.row(r);
    float absmax = 0.f;
    for (int c = 0; c < w.cols(); ++c) absmax = std::max(absmax, std::fabs(src[c]));
    const float scale = absmax > 0.f ? absmax / 127.f : 1.f;
    out.scales[static_cast<size_t>(r)] = scale;
    const float inv = 1.f / scale;
    int8_t* dst = out.q.data() + static_cast<size_t>(r) * static_cast<size_t>(w.cols());
    for (int c = 0; c < w.cols(); ++c) {
      const float v = std::nearbyint(src[c] * inv);
      dst[c] = static_cast<int8_t>(std::max(-127.f, std::min(127.f, v)));
    }
  }
  return out;
}

QuantizedMat QuantizeColsAsRows(const Mat& w) {
  Mat t(w.cols(), w.rows());
  for (int r = 0; r < w.rows(); ++r) {
    const float* src = w.row(r);
    for (int c = 0; c < w.cols(); ++c) t.at(c, r) = src[c];
  }
  return QuantizePerRowAbsMax(t);
}

void Dequantize(const QuantizedMat& qm, Mat* out) {
  UAE_CHECK(out->rows() == qm.rows && out->cols() == qm.cols);
  for (int r = 0; r < qm.rows; ++r) {
    const int8_t* src = qm.row(r);
    const float scale = qm.scales[static_cast<size_t>(r)];
    float* dst = out->row(r);
    for (int c = 0; c < qm.cols; ++c) dst[c] = static_cast<float>(src[c]) * scale;
  }
}

void GemmNtQuantAccum(const Mat& a, const QuantizedMat& b, Mat* c) {
  const int m = a.rows(), k = a.cols(), n = b.rows;
  UAE_CHECK_EQ(b.cols, k);
  UAE_CHECK(c->rows() == m && c->cols() == n);
  if (m == 0 || n == 0 || k == 0) return;
  auto body = [&](size_t blk0, size_t blk1) {
    for (size_t blk = blk0; blk < blk1; ++blk) {
      const int i0 = static_cast<int>(blk) * kGemmRowTile;
      if (i0 + kGemmRowTile <= m) {
        GemmNtQuantRows4(a, b, i0, c);
      } else {
        for (int i = i0; i < m; ++i) GemmNtQuantRows1(a, b, i, c);
      }
    }
  };
  ForEachRowBlock(size_t(m) * k * n, m, body);
}

void MulElem(const Mat& a, const Mat& b, Mat* out) {
  UAE_CHECK(a.SameShape(b));
  UAE_CHECK(out->SameShape(a));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  for (size_t i = 0; i < a.size(); ++i) po[i] = pa[i] * pb[i];
}

void MulElemAccum(const Mat& a, const Mat& b, Mat* out) {
  UAE_CHECK(a.SameShape(b));
  UAE_CHECK(out->SameShape(a));
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data();
  for (size_t i = 0; i < a.size(); ++i) po[i] += pa[i] * pb[i];
}

}  // namespace uae::nn
