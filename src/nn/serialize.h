// Binary save/load of named parameter sets (model checkpoints).
//
// Format: magic "UAEW", u32 version, u32 count, then per entry:
//   u32 name_len, name bytes, i32 rows, i32 cols, rows*cols f32 payload.
#pragma once

#include <string>
#include <vector>

#include "nn/layers.h"
#include "util/status.h"

namespace uae::nn {

util::Status SaveParams(const std::string& path, const std::vector<NamedParam>& params);

/// Loads into the given parameter list. Names and shapes must match exactly.
util::Status LoadParams(const std::string& path, std::vector<NamedParam>* params);

/// Total number of scalar weights (for the "Size" column of the tables).
size_t ParamCount(const std::vector<NamedParam>& params);
/// Model size in bytes (float32 storage), as reported by the paper's tables.
size_t ParamBytes(const std::vector<NamedParam>& params);

}  // namespace uae::nn
