// Binary save/load of named parameter sets (model checkpoints).
//
// Format: magic "UAEW", u32 version, u32 count, then per entry:
//   u32 name_len, name bytes, i32 rows, i32 cols, rows*cols f32 payload.
//
// The same format is available in-memory (SerializeParams/DeserializeParams)
// for snapshot transport, and CopyParams transfers values directly between
// two live parameter lists with the same name/shape checking.
#pragma once

#include <string>
#include <vector>

#include "nn/layers.h"
#include "util/status.h"

namespace uae::nn {

util::Status SaveParams(const std::string& path, const std::vector<NamedParam>& params);

/// Loads into the given parameter list. Names and shapes must match exactly.
util::Status LoadParams(const std::string& path, std::vector<NamedParam>* params);

/// Serializes the parameter list to an in-memory checkpoint (same binary
/// format as SaveParams writes to disk).
std::string SerializeParams(const std::vector<NamedParam>& params);

/// Restores parameter values from an in-memory checkpoint produced by
/// SerializeParams. Names and shapes must match exactly.
util::Status DeserializeParams(const std::string& blob,
                               std::vector<NamedParam>* params);

/// Copies parameter values from `src` into `dst` (no serialization round
/// trip). Entry i of both lists must agree on name and shape.
util::Status CopyParams(const std::vector<NamedParam>& src,
                        std::vector<NamedParam>* dst);

/// Total number of scalar weights (for the "Size" column of the tables).
size_t ParamCount(const std::vector<NamedParam>& params);
/// Model size in bytes (float32 storage), as reported by the paper's tables.
size_t ParamBytes(const std::vector<NamedParam>& params);

}  // namespace uae::nn
