// Micro-batching admission queue for the estimation service.
//
// Client threads Push() single-query requests into a bounded queue
// (backpressure: Push blocks while the queue is at capacity). A dispatcher
// thread drains with PopBatch(): it blocks until at least one request is
// queued, then keeps admitting arrivals until either `max_batch` requests are
// collected or `max_wait` has elapsed since the batch's OLDEST request was
// pushed — the classic size-or-deadline coalescing policy, with the deadline
// anchored at admission so a lagging dispatcher cannot extend a request's
// wait beyond max_wait from the moment it entered the queue. Close() wakes
// everyone and makes
// further Push calls fail so the dispatcher can drain and exit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "util/common.h"
#include "workload/query.h"

namespace uae::serve {

/// What the service answers per query.
struct ServeResult {
  double card = 0.0;         ///< Estimated cardinality.
  uint64_t generation = 0;   ///< Snapshot generation that produced the value.
  bool cache_hit = false;
};

/// One in-flight estimation request. The query is copied in so the request
/// outlives the caller's stack frame (needed for the future-based API).
///
/// Join sub-plan requests ride the same queue: `join_mask` is the joined-table
/// bitset of a workload::JoinQuery (non-empty by construction — even a
/// single-table sub-plan over the join universe has its own bit set — so it is
/// never 0), with `query` holding the predicate part. join_mask == 0 means a
/// plain single-table request. Either way `fingerprint` is the cache/RNG key
/// (query.Fingerprint() or workload::JoinFingerprint respectively).
struct EstimateRequest {
  workload::Query query;
  uint32_t join_mask = 0;  ///< 0: single-table; else JoinQuery::table_mask.
  uint64_t fingerprint = 0;
  std::promise<ServeResult> promise;
  /// Stamped by MicroBatcher::Push at admission. Anchors the batch deadline
  /// and feeds the queue-wait observability hooks; callers leave it alone.
  std::chrono::steady_clock::time_point enqueued_at{};
};

class MicroBatcher {
 public:
  MicroBatcher(size_t queue_capacity, size_t max_batch,
               std::chrono::microseconds max_wait);
  UAE_DISALLOW_COPY(MicroBatcher);

  /// Enqueues a request; blocks while the queue is full. Returns false (and
  /// leaves `request` untouched) once Close() has been called.
  bool Push(EstimateRequest&& request);

  /// Dispatcher side: blocks for the next micro-batch. Returns an empty
  /// vector only when the batcher is closed and fully drained.
  std::vector<EstimateRequest> PopBatch();

  /// Unblocks producers and the dispatcher; queued requests still drain.
  void Close();

  // ---- Load observability (the router's degradation probe reads these) ----
  /// Requests currently queued (admitted, not yet popped into a batch).
  size_t Depth() const;
  /// Microseconds the oldest queued request has been waiting; 0 when empty.
  uint64_t OldestWaitMicros() const;

  size_t max_batch() const { return max_batch_; }

 private:
  const size_t capacity_;
  const size_t max_batch_;
  const std::chrono::microseconds max_wait_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<EstimateRequest> queue_;
  bool closed_ = false;
};

}  // namespace uae::serve
