// Sharded LRU cache of estimation results.
//
// Keys are (query fingerprint, snapshot generation) pairs — the same
// fingerprint the estimator derives its per-query RNG from, so a cached value
// is exactly the double the model would recompute. Tying the generation into
// the key makes a snapshot swap an implicit wholesale invalidation: entries
// of older generations can never be served again and age out of the LRU (or
// are dropped eagerly via EvictBelowGeneration).
//
// Sharding bounds contention: each shard has its own mutex, hash map and LRU
// list, and a fingerprint always maps to the same shard.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/common.h"

namespace uae::serve {

struct ResultCacheConfig {
  size_t capacity = 4096;  ///< Total entries across all shards (>= shards).
  size_t shards = 8;       ///< Rounded up to a power of two.
};

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;  ///< Capacity + generation evictions.
};

class ResultCache {
 public:
  explicit ResultCache(const ResultCacheConfig& config);
  UAE_DISALLOW_COPY(ResultCache);

  /// Returns the cached estimate for (fingerprint, generation) and marks the
  /// entry most-recently-used, or nullopt on miss.
  std::optional<double> Lookup(uint64_t fingerprint, uint64_t generation);

  /// Inserts (or refreshes) an entry, evicting the shard's LRU tail at
  /// capacity. Values are pure functions of (model, query), so concurrent
  /// inserts of the same key always carry the same value.
  void Insert(uint64_t fingerprint, uint64_t generation, double value);

  /// Drops every entry with generation < `generation` (eager reclamation
  /// after a snapshot swap; correctness never depends on this being called).
  void EvictBelowGeneration(uint64_t generation);

  size_t Size() const;
  ResultCacheStats Stats() const;

 private:
  using Key = std::pair<uint64_t, uint64_t>;  ///< (fingerprint, generation).
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    double value = 0.0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  ///< Front = most recently used.
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
    uint64_t hits = 0, misses = 0, insertions = 0, evictions = 0;
  };

  Shard& ShardFor(uint64_t fingerprint);

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
  size_t shard_mask_;
};

}  // namespace uae::serve
