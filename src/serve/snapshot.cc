#include "serve/snapshot.h"

#include "util/common.h"

namespace uae::serve {

SnapshotSlot::SnapshotSlot(std::shared_ptr<const core::ServableModel> initial)
    : next_generation_(2) {
  UAE_CHECK(initial != nullptr);
  auto snap = std::make_shared<ModelSnapshot>();
  snap->generation = 1;
  snap->model = std::move(initial);
#ifdef UAE_SNAPSHOT_TSAN
  current_ = std::move(snap);
#else
  current_.store(std::move(snap), std::memory_order_release);
#endif
}

std::shared_ptr<const ModelSnapshot> SnapshotSlot::Current() const {
#ifdef UAE_SNAPSHOT_TSAN
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
#else
  return current_.load(std::memory_order_acquire);
#endif
}

uint64_t SnapshotSlot::Publish(std::shared_ptr<const core::ServableModel> model) {
  UAE_CHECK(model != nullptr);
  auto snap = std::make_shared<ModelSnapshot>();
  snap->model = std::move(model);
  // Generation allocation and the store form one critical section so racing
  // publishers cannot install a lower generation over a higher one; readers
  // go through the atomic pointer and never contend on this mutex.
  std::lock_guard<std::mutex> publish_lock(publish_mu_);
  snap->generation = next_generation_++;
  uint64_t gen = snap->generation;
#ifdef UAE_SNAPSHOT_TSAN
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(snap);
  }
#else
  current_.store(std::move(snap), std::memory_order_release);
#endif
  return gen;
}

}  // namespace uae::serve
