// Lock-free latency histogram for the serving path (the observability gap
// the router's degradation trigger reads: before this, serve/ had request
// counters but no latency distribution at all).
//
// Log-bucketed counters in the HdrHistogram style: values below 8 us get
// exact buckets; above that, each power-of-two octave is split into 8
// sub-buckets, so relative error is bounded by ~12.5% across the whole range
// (up to ~2^34 us ≈ 4.8 hours, far beyond any request latency). Record() is
// a handful of relaxed atomic increments — cheap enough to sit on the
// per-request hot path — and Snapshot() walks the counters to produce
// count / mean / p50 / p95 / p99 / max. Concurrent Record/Snapshot is safe;
// a snapshot taken during recording is some valid interleaving prefix.
#pragma once

#include <atomic>
#include <cstdint>

namespace uae::serve {

struct LatencySnapshot {
  uint64_t count = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  uint64_t max_us = 0;  ///< Exact (tracked outside the buckets).
};

class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one observation, in microseconds.
  void Record(uint64_t micros);

  LatencySnapshot Snapshot() const;

  // Bucket layout, exposed for tests: values < kSub map to exact buckets;
  // larger values to octave (kSub + 8*group + sub) buckets.
  static constexpr int kSubBits = 3;
  static constexpr uint64_t kSub = 1ull << kSubBits;        // 8
  static constexpr size_t kBuckets = kSub + kSub * 31;      // up to 2^34 us
  static size_t BucketFor(uint64_t micros);
  /// Representative value reported for a bucket (its midpoint).
  static uint64_t BucketValue(size_t bucket);

 private:
  std::atomic<uint64_t> counts_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_us_{0};
  std::atomic<uint64_t> max_us_{0};
};

}  // namespace uae::serve
