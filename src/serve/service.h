// EstimationService — the concurrent serving layer over core::Uae.
//
// Many client threads call Estimate()/EstimateAsync() with single queries —
// or EstimateJoin()/EstimateJoinAsync() with join sub-plans from the query
// optimizer; the service coalesces them into micro-batches (MicroBatcher) and
// fans each batch through EstimateCards/EstimateJoinCards, which parallelize
// progressive sampling across the global pool. Because every estimate is a
// pure function of (model, query) — per-query RNG derived from the query
// fingerprint — the served results are bit-identical to sequential
// EstimateCard calls no matter how requests interleave, batch, or hit the
// cache.
//
// A snapshot swap (PublishSnapshot) is a single atomic shared_ptr store: a
// background trainer keeps training its own Uae and publishes Clone()s; every
// response reports the generation of the snapshot that produced it, and the
// result cache keys on (fingerprint, generation) so stale hits are
// impossible by construction.
//
// Deadlock note: a request issued *from a global-pool worker* (e.g. an
// estimator callback inside ParallelFor) is answered inline against the
// current snapshot instead of being queued — if every pool worker blocked on
// the dispatcher, the dispatcher's own ParallelFor fan-out could never run.
#pragma once

#include <array>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/servable.h"
#include "serve/latency.h"
#include "serve/micro_batcher.h"
#include "serve/result_cache.h"
#include "serve/snapshot.h"
#include "workload/join_workload.h"
#include "workload/query.h"

namespace uae::serve {

struct ServiceConfig {
  // Micro-batch admission policy.
  size_t max_batch = 64;       ///< Flush when this many requests coalesced.
  uint64_t max_wait_us = 200;  ///< ... or when the oldest waited this long.
  size_t queue_capacity = 1024;  ///< Bounded queue; Push blocks when full.

  // Result cache.
  bool cache_enabled = true;
  ResultCacheConfig cache;

  /// Eagerly drop cache entries of superseded generations on publish.
  bool evict_stale_on_publish = true;
};

struct ServiceStats {
  uint64_t requests = 0;        ///< Total Estimate/EstimateAsync calls.
  uint64_t cache_hits = 0;      ///< Answered from the result cache.
  uint64_t inline_requests = 0; ///< Answered inline (pool-worker callers).
  uint64_t batches = 0;         ///< Micro-batches executed.
  uint64_t batched_queries = 0; ///< Model-evaluated queries inside batches.
  uint64_t max_batch_observed = 0;
  uint64_t snapshots_published = 0;  ///< Excludes the initial snapshot.
};

class EstimationService {
 public:
  /// Starts the dispatcher thread over the initial model snapshot
  /// (generation 1). The service shares ownership of the model (any
  /// core::ServableModel — monolithic Uae or ShardedUae).
  EstimationService(std::shared_ptr<const core::ServableModel> initial_model,
                    const ServiceConfig& config = {});
  ~EstimationService();
  UAE_DISALLOW_COPY(EstimationService);

  /// Blocking single-query estimate (cardinality + attribution).
  /// Thread-safe; callable from any thread including global-pool workers
  /// (those are answered inline — see the deadlock note above).
  ServeResult Estimate(const workload::Query& query);
  /// Convenience: just the cardinality.
  double EstimateCard(const workload::Query& query) { return Estimate(query).card; }
  /// Non-blocking: the future resolves when the micro-batch containing the
  /// query completes (immediately for cache hits and inline callers).
  std::future<ServeResult> EstimateAsync(const workload::Query& query);

  // ---- Join sub-plan estimation ---------------------------------------------
  // Join requests from the query optimizer share everything with single-table
  // ones: the same micro-batch queue (concurrent planner threads coalesce
  // into shared batches), the same (fingerprint, generation)-keyed result
  // cache (keyed by workload::JoinFingerprint, so a hot-swap invalidates by
  // construction), and the same snapshot slot — a published quantized or
  // fine-tuned snapshot starts answering sub-plan estimates transparently.
  // The published model must return SupportsJoinQueries() == true; routing a
  // join request to one that does not is a CHECK failure.

  /// Blocking join sub-plan estimate. Bit-identical to
  /// model->EstimateJoinCard(query) on the answering generation's snapshot,
  /// regardless of batching, caching, or calling thread.
  ServeResult EstimateJoin(const workload::JoinQuery& query);
  /// Convenience: just the cardinality.
  double EstimateJoinCard(const workload::JoinQuery& query) {
    return EstimateJoin(query).card;
  }
  /// Non-blocking join estimate; same resolution rules as EstimateAsync.
  std::future<ServeResult> EstimateJoinAsync(const workload::JoinQuery& query);

  /// Atomically publishes a new model snapshot; in-flight batches finish on
  /// the snapshot they started with. Returns the new generation.
  uint64_t PublishSnapshot(std::shared_ptr<const core::ServableModel> model);

  uint64_t CurrentGeneration() const { return slot_.CurrentGeneration(); }
  /// The currently-published snapshot (for direct read-side access).
  std::shared_ptr<const ModelSnapshot> CurrentSnapshot() const {
    return slot_.Current();
  }

  ServiceStats Stats() const;
  ResultCacheStats CacheStats() const { return cache_.Stats(); }
  const ServiceConfig& config() const { return config_; }

  // ---- Load / latency observability ----------------------------------------
  // Instantaneous queue signals plus the queue-wait distribution. This is
  // what a router::LoadProbe reads to decide when the serving path is
  // breaching its latency SLO (router/router.h) — before these hooks the
  // serving layer had request counters but no latency visibility at all.
  /// Requests admitted to the micro-batch queue and not yet dispatched.
  size_t QueueDepth() const { return batcher_.Depth(); }
  /// Microseconds the oldest queued request has waited (0 when idle).
  uint64_t OldestQueuedWaitMicros() const { return batcher_.OldestWaitMicros(); }
  /// Distribution of Push -> dispatch queue waits over batched requests.
  LatencySnapshot QueueLatency() const { return queue_latency_.Snapshot(); }

  // Per-generation accounting: every response is attributed to exactly one
  // snapshot generation (the one that produced — or cached — its value), so
  // summing these counters over all generations equals Stats().requests.
  // This is what the online adaptation layer reads to see how much traffic
  // each published snapshot actually answered.
  /// (generation, answered) pairs sorted by generation.
  std::vector<std::pair<uint64_t, uint64_t>> AnsweredByGeneration() const;
  /// Responses attributed to one generation (0 if it never answered).
  uint64_t AnsweredForGeneration(uint64_t generation) const;

 private:
  /// Shared admission path for single-table and join requests: cache fast
  /// path, inline answering for pool workers, then the micro-batch queue.
  /// `request.fingerprint` and `request.join_mask` must already be set.
  std::future<ServeResult> Submit(EstimateRequest request);
  /// Answers one request synchronously on the calling thread (cache-aware);
  /// dispatches on request.join_mask.
  ServeResult EstimateInline(const EstimateRequest& request);
  /// Attributes `count` responses to `generation`.
  void CountAnswered(uint64_t generation, uint64_t count);
  /// Dispatcher: drains micro-batches until the batcher closes.
  void DispatchLoop();
  void RunBatch(std::vector<EstimateRequest> batch);

  ServiceConfig config_;
  SnapshotSlot slot_;
  ResultCache cache_;
  MicroBatcher batcher_;
  std::thread dispatcher_;

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> inline_requests_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_queries_{0};
  std::atomic<uint64_t> max_batch_observed_{0};
  std::atomic<uint64_t> snapshots_published_{0};
  LatencyHistogram queue_latency_;  ///< Push -> dispatch wait per request.

  /// Per-generation response counters, striped by caller thread so the
  /// cache-hit fast path (which bumps once per request) never serializes
  /// clients on one lock; batch responses additionally amortize their bump
  /// over the whole batch. Readers merge all stripes.
  struct GenerationStripe {
    mutable std::mutex mu;
    std::map<uint64_t, uint64_t> answered;
  };
  static constexpr size_t kGenerationStripes = 8;  ///< Power of two.
  mutable std::array<GenerationStripe, kGenerationStripes> generation_stripes_;
};

}  // namespace uae::serve
