// Hot-swappable model snapshots for the estimation service.
//
// A ModelSnapshot is an immutable (generation, frozen model) pair; the model
// is any core::ServableModel — the monolithic Uae or a ShardedUae, whose
// snapshot is a vector of per-shard parameter sets published as one
// generation-atomic unit. The SnapshotSlot holds the currently-published
// snapshot behind an atomic std::shared_ptr: readers grab a reference with
// Current() and keep the model alive for the duration of their batch, while a
// background trainer publishes replacements with Publish() — no locks, no
// torn reads, and in-flight estimates keep running against the snapshot they
// started with.
//
// Generation semantics (the contract every layer above relies on): each
// publish allocates a strictly increasing generation; every served result is
// attributed to exactly one generation; and all caches key on (fingerprint,
// generation), so a hot-swap can never serve a stale value — it only makes
// old entries unreachable. Within one generation, estimates are bitwise
// deterministic (pure functions of the snapshot's model and the query); see
// docs/DETERMINISM.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "core/servable.h"

// ThreadSanitizer cannot see through libstdc++'s lock-free _Sp_atomic (the
// spinlock bit lives inside the control word, so TSan misses its
// acquire/release pairing and reports false races). TSan builds swap in a
// mutex-guarded slot with identical semantics; everything above the slot is
// sanitized unchanged.
#if defined(__SANITIZE_THREAD__)
#define UAE_SNAPSHOT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define UAE_SNAPSHOT_TSAN 1
#endif
#endif

namespace uae::serve {

struct ModelSnapshot {
  /// Monotonically increasing publication counter, starting at 1 for the
  /// snapshot the service was constructed with. Result-cache keys embed this,
  /// so publishing a new snapshot implicitly invalidates stale entries.
  uint64_t generation = 0;
  std::shared_ptr<const core::ServableModel> model;
};

class SnapshotSlot {
 public:
  /// Installs the initial snapshot as generation 1.
  explicit SnapshotSlot(std::shared_ptr<const core::ServableModel> initial);

  /// The currently-published snapshot. Never null; callers hold the returned
  /// shared_ptr for as long as they need the model. Lock-free.
  std::shared_ptr<const ModelSnapshot> Current() const;

  /// Atomically replaces the published snapshot; returns its generation.
  /// Concurrent publishers are serialized (generation allocation and the
  /// store are one critical section), so the installed generation only ever
  /// increases — readers are never blocked.
  uint64_t Publish(std::shared_ptr<const core::ServableModel> model);

  uint64_t CurrentGeneration() const { return Current()->generation; }

 private:
#ifdef UAE_SNAPSHOT_TSAN
  mutable std::mutex mu_;
  std::shared_ptr<const ModelSnapshot> current_;
#else
  std::atomic<std::shared_ptr<const ModelSnapshot>> current_;
#endif
  std::mutex publish_mu_;  ///< Writers only; Current() never takes it.
  uint64_t next_generation_;
};

}  // namespace uae::serve
