#include "serve/service.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/threadpool.h"

namespace uae::serve {

EstimationService::EstimationService(
    std::shared_ptr<const core::ServableModel> initial_model,
    const ServiceConfig& config)
    : config_(config),
      slot_(std::move(initial_model)),
      cache_(config.cache),
      batcher_(config.queue_capacity, config.max_batch,
               std::chrono::microseconds(config.max_wait_us)) {
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

EstimationService::~EstimationService() {
  batcher_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
}

ServeResult EstimationService::EstimateInline(const EstimateRequest& request) {
  std::shared_ptr<const ModelSnapshot> snap = slot_.Current();
  if (config_.cache_enabled) {
    if (auto v = cache_.Lookup(request.fingerprint, snap->generation)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      CountAnswered(snap->generation, 1);
      return {*v, snap->generation, true};
    }
  }
  double card;
  if (request.join_mask != 0) {
    card = snap->model->EstimateJoinCard(
        workload::JoinQuery{request.join_mask, request.query});
  } else {
    card = snap->model->EstimateCard(request.query);
  }
  if (config_.cache_enabled) {
    cache_.Insert(request.fingerprint, snap->generation, card);
  }
  CountAnswered(snap->generation, 1);
  return {card, snap->generation, false};
}

void EstimationService::CountAnswered(uint64_t generation, uint64_t count) {
  // Stripe by caller thread: concurrent clients bump disjoint maps.
  GenerationStripe& stripe = generation_stripes_[std::hash<std::thread::id>{}(
                                                     std::this_thread::get_id()) &
                                                 (kGenerationStripes - 1)];
  std::lock_guard<std::mutex> lock(stripe.mu);
  stripe.answered[generation] += count;
}

std::vector<std::pair<uint64_t, uint64_t>>
EstimationService::AnsweredByGeneration() const {
  std::map<uint64_t, uint64_t> merged;
  for (const GenerationStripe& stripe : generation_stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [gen, count] : stripe.answered) merged[gen] += count;
  }
  return {merged.begin(), merged.end()};
}

uint64_t EstimationService::AnsweredForGeneration(uint64_t generation) const {
  uint64_t total = 0;
  for (const GenerationStripe& stripe : generation_stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.answered.find(generation);
    if (it != stripe.answered.end()) total += it->second;
  }
  return total;
}

namespace {

std::future<ServeResult> ReadyFuture(ServeResult result) {
  std::promise<ServeResult> ready;
  ready.set_value(result);
  return ready.get_future();
}

}  // namespace

std::future<ServeResult> EstimationService::Submit(EstimateRequest request) {
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Fast path: answered from the cache against the current snapshot without
  // touching the queue.
  if (config_.cache_enabled) {
    std::shared_ptr<const ModelSnapshot> snap = slot_.Current();
    if (auto v = cache_.Lookup(request.fingerprint, snap->generation)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      CountAnswered(snap->generation, 1);
      return ReadyFuture({*v, snap->generation, true});
    }
  }

  // A global-pool worker must never block on the dispatcher: the dispatcher
  // fans batches across that same pool, so parking workers on service futures
  // could leave no one to run the batch. Answer on the calling thread.
  if (util::GlobalPool().InThisPool()) {
    inline_requests_.fetch_add(1, std::memory_order_relaxed);
    return ReadyFuture(EstimateInline(request));
  }

  std::future<ServeResult> queued_future = request.promise.get_future();
  if (!batcher_.Push(std::move(request))) {
    // Service is shutting down; degrade to an inline answer. A refused Push
    // leaves `request` untouched, so its promise still backs the future.
    inline_requests_.fetch_add(1, std::memory_order_relaxed);
    request.promise.set_value(EstimateInline(request));
  }
  return queued_future;
}

std::future<ServeResult> EstimationService::EstimateAsync(
    const workload::Query& query) {
  EstimateRequest request;
  request.query = query;
  request.fingerprint = query.Fingerprint();
  return Submit(std::move(request));
}

std::future<ServeResult> EstimationService::EstimateJoinAsync(
    const workload::JoinQuery& query) {
  EstimateRequest request;
  request.query = query.pred;
  request.join_mask = query.table_mask;
  request.fingerprint = workload::JoinFingerprint(query);
  return Submit(std::move(request));
}

ServeResult EstimationService::Estimate(const workload::Query& query) {
  return EstimateAsync(query).get();
}

ServeResult EstimationService::EstimateJoin(const workload::JoinQuery& query) {
  return EstimateJoinAsync(query).get();
}

uint64_t EstimationService::PublishSnapshot(
    std::shared_ptr<const core::ServableModel> model) {
  uint64_t generation = slot_.Publish(std::move(model));
  snapshots_published_.fetch_add(1, std::memory_order_relaxed);
  if (config_.evict_stale_on_publish) {
    cache_.EvictBelowGeneration(generation);
  }
  return generation;
}

void EstimationService::DispatchLoop() {
  for (;;) {
    std::vector<EstimateRequest> batch = batcher_.PopBatch();
    if (batch.empty()) return;  // Closed and drained.
    RunBatch(std::move(batch));
  }
}

void EstimationService::RunBatch(std::vector<EstimateRequest> batch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  uint64_t size = static_cast<uint64_t>(batch.size());
  uint64_t seen = max_batch_observed_.load(std::memory_order_relaxed);
  while (size > seen &&
         !max_batch_observed_.compare_exchange_weak(seen, size,
                                                    std::memory_order_relaxed)) {
  }

  // Queue-wait accounting: how long each request sat between Push and this
  // dispatch (the latency the micro-batcher's deadline bounds).
  const auto dispatched_at = std::chrono::steady_clock::now();
  for (const EstimateRequest& request : batch) {
    const auto wait = dispatched_at - request.enqueued_at;
    queue_latency_.Record(static_cast<uint64_t>(std::max<int64_t>(
        0,
        std::chrono::duration_cast<std::chrono::microseconds>(wait).count())));
  }

  // The whole batch runs against ONE snapshot — grabbed once, held to the
  // end — so every response in it is attributable to a single generation
  // even if a publish lands mid-batch.
  std::shared_ptr<const ModelSnapshot> snap = slot_.Current();
  const uint64_t generation = snap->generation;

  std::vector<ServeResult> results(batch.size());
  std::vector<size_t> miss_index;
  std::vector<workload::Query> miss_queries;
  std::vector<size_t> join_miss_index;
  std::vector<workload::JoinQuery> join_miss_queries;
  miss_index.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    // Re-check the cache under the batch snapshot: an earlier batch (or an
    // inline caller) may have filled the entry since this request enqueued.
    // Duplicates inside one batch are simply evaluated twice — estimates are
    // pure functions of (model, query), so both copies come out identical.
    if (config_.cache_enabled) {
      if (auto v = cache_.Lookup(batch[i].fingerprint, generation)) {
        cache_hits_.fetch_add(1, std::memory_order_relaxed);
        results[i] = {*v, generation, true};
        continue;
      }
    }
    // One queue, two model entry points: join sub-plans and single-table
    // queries coalesce into the same micro-batch but fan out separately.
    if (batch[i].join_mask != 0) {
      join_miss_index.push_back(i);
      join_miss_queries.push_back(
          workload::JoinQuery{batch[i].join_mask, batch[i].query});
    } else {
      miss_index.push_back(i);
      miss_queries.push_back(batch[i].query);
    }
  }

  if (!miss_queries.empty()) {
    std::vector<double> cards = snap->model->EstimateCards(miss_queries);
    batched_queries_.fetch_add(static_cast<uint64_t>(miss_queries.size()),
                               std::memory_order_relaxed);
    for (size_t m = 0; m < miss_index.size(); ++m) {
      results[miss_index[m]] = {cards[m], generation, false};
      if (config_.cache_enabled) {
        cache_.Insert(batch[miss_index[m]].fingerprint, generation, cards[m]);
      }
    }
  }

  if (!join_miss_queries.empty()) {
    std::vector<double> cards = snap->model->EstimateJoinCards(join_miss_queries);
    batched_queries_.fetch_add(static_cast<uint64_t>(join_miss_queries.size()),
                               std::memory_order_relaxed);
    for (size_t m = 0; m < join_miss_index.size(); ++m) {
      results[join_miss_index[m]] = {cards[m], generation, false};
      if (config_.cache_enabled) {
        cache_.Insert(batch[join_miss_index[m]].fingerprint, generation,
                      cards[m]);
      }
    }
  }

  CountAnswered(generation, static_cast<uint64_t>(batch.size()));
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(results[i]);
  }
}

ServiceStats EstimationService::Stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.inline_requests = inline_requests_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  s.max_batch_observed = max_batch_observed_.load(std::memory_order_relaxed);
  s.snapshots_published = snapshots_published_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace uae::serve
