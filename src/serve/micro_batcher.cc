#include "serve/micro_batcher.h"

#include <algorithm>

namespace uae::serve {

MicroBatcher::MicroBatcher(size_t queue_capacity, size_t max_batch,
                           std::chrono::microseconds max_wait)
    : capacity_(std::max<size_t>(1, queue_capacity)),
      max_batch_(std::max<size_t>(1, max_batch)),
      max_wait_(max_wait) {}

bool MicroBatcher::Push(EstimateRequest&& request) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return false;
  request.enqueued_at = std::chrono::steady_clock::now();
  queue_.push_back(std::move(request));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

std::vector<EstimateRequest> MicroBatcher::PopBatch() {
  std::vector<EstimateRequest> batch;
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return batch;  // Closed and drained.

  // The batch's deadline is anchored at its oldest request's ARRIVAL, not at
  // dispatcher wake-up: if the dispatcher lagged (busy with the previous
  // batch), anchoring here at now() would let a request wait up to ~2x
  // max_wait between Push and dispatch. An already-expired deadline just
  // means "flush whatever is queued without parking".
  const auto deadline = queue_.front().enqueued_at + max_wait_;
  for (;;) {
    bool drained = false;
    while (!queue_.empty() && batch.size() < max_batch_) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      drained = true;
    }
    // Wake producers blocked on a full queue *before* parking on the
    // deadline, or a queue_capacity < max_batch configuration would cap
    // every batch at the queue size and stall the dispatcher for the whole
    // max_wait while producers sleep.
    if (drained) not_full_.notify_all();
    if (batch.size() >= max_batch_ || closed_) break;
    if (!not_empty_.wait_until(lock, deadline,
                               [this] { return closed_ || !queue_.empty(); })) {
      break;  // Deadline hit with a partial batch.
    }
    if (queue_.empty()) break;  // Closed while waiting.
  }
  lock.unlock();
  not_full_.notify_all();
  return batch;
}

size_t MicroBatcher::Depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t MicroBatcher::OldestWaitMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return 0;
  const auto wait = std::chrono::steady_clock::now() - queue_.front().enqueued_at;
  return static_cast<uint64_t>(std::max<int64_t>(
      0, std::chrono::duration_cast<std::chrono::microseconds>(wait).count()));
}

void MicroBatcher::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

}  // namespace uae::serve
