#include "serve/result_cache.h"

#include <algorithm>
#include <bit>

#include "util/mathutil.h"

namespace uae::serve {

size_t ResultCache::KeyHash::operator()(const Key& k) const {
  return static_cast<size_t>(
      util::SplitMix64(k.first ^ util::SplitMix64(k.second)));
}

ResultCache::ResultCache(const ResultCacheConfig& config)
    : shards_(std::bit_ceil(std::max<size_t>(1, config.shards))) {
  shard_mask_ = shards_.size() - 1;
  per_shard_capacity_ =
      std::max<size_t>(1, (std::max<size_t>(1, config.capacity) +
                           shards_.size() - 1) /
                              shards_.size());
}

ResultCache::Shard& ResultCache::ShardFor(uint64_t fingerprint) {
  // The low fingerprint bits feed predicate structure straight through; remix
  // so adjacent fingerprints spread across shards.
  return shards_[static_cast<size_t>(util::SplitMix64(fingerprint)) & shard_mask_];
}

std::optional<double> ResultCache::Lookup(uint64_t fingerprint,
                                          uint64_t generation) {
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(Key{fingerprint, generation});
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->value;
}

void ResultCache::Insert(uint64_t fingerprint, uint64_t generation,
                         double value) {
  Shard& shard = ShardFor(fingerprint);
  Key key{fingerprint, generation};
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->value = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, value});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.insertions;
  while (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void ResultCache::EvictBelowGeneration(uint64_t generation) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.begin(); it != shard.lru.end();) {
      if (it->key.second < generation) {
        shard.index.erase(it->key);
        it = shard.lru.erase(it);
        ++shard.evictions;
      } else {
        ++it;
      }
    }
  }
}

size_t ResultCache::Size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.lru.size();
  }
  return n;
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats s;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.insertions += shard.insertions;
    s.evictions += shard.evictions;
  }
  return s;
}

}  // namespace uae::serve
