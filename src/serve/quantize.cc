#include "serve/quantize.h"

#include <utility>

#include "online/controller.h"
#include "util/logging.h"

namespace uae::serve {

QuantizedPublishResult PublishQuantizedSnapshot(
    EstimationService* service,
    std::shared_ptr<const core::ServableModel> candidate,
    const workload::Workload& holdout, const QuantizedPublishOptions& options) {
  UAE_CHECK(service != nullptr);
  UAE_CHECK(candidate != nullptr);
  std::shared_ptr<const ModelSnapshot> snapshot = service->CurrentSnapshot();
  UAE_CHECK(snapshot != nullptr && snapshot->model != nullptr)
      << "PublishQuantizedSnapshot requires a seeded service";
  online::GuardVerdict verdict = online::EvaluateCandidate(
      *snapshot->model, *candidate, holdout, options.guard_max_ratio);
  QuantizedPublishResult result;
  result.incumbent_median = verdict.incumbent_median;
  result.candidate_median = verdict.candidate_median;
  result.published = verdict.accept;
  if (verdict.accept) {
    result.generation = service->PublishSnapshot(std::move(candidate));
  }
  return result;
}

}  // namespace uae::serve
