// Quantized publish path: a frozen int8 candidate (core::QuantizedUae or any
// ServableModel built from the served snapshot) may only replace the fp32
// incumbent after passing the same holdout guard the online adaptation loop
// uses — quantization error must not degrade served q-error beyond the bound.
// On rejection the incumbent keeps serving untouched and no generation is
// consumed.
#pragma once

#include <memory>

#include "core/servable.h"
#include "serve/service.h"
#include "workload/query.h"

namespace uae::serve {

struct QuantizedPublishOptions {
  /// Reject when the candidate's holdout median q-error exceeds the
  /// incumbent's by more than this factor (online::EvaluateCandidate rule;
  /// an empty holdout always rejects).
  double guard_max_ratio = 1.05;
};

struct QuantizedPublishResult {
  bool published = false;
  uint64_t generation = 0;        ///< New generation when published, else 0.
  double incumbent_median = 0.0;  ///< Holdout median q-error, fp32 incumbent.
  double candidate_median = 0.0;  ///< Holdout median q-error, candidate.
};

/// Parity gate + publish: evaluates `candidate` against the currently served
/// model on `holdout` and publishes it through the service's snapshot slot
/// only when the guard accepts. Requires a live snapshot (seeded service).
QuantizedPublishResult PublishQuantizedSnapshot(
    EstimationService* service,
    std::shared_ptr<const core::ServableModel> candidate,
    const workload::Workload& holdout,
    const QuantizedPublishOptions& options = {});

}  // namespace uae::serve
