#include "serve/latency.h"

#include <algorithm>
#include <bit>

namespace uae::serve {

size_t LatencyHistogram::BucketFor(uint64_t micros) {
  if (micros < kSub) return static_cast<size_t>(micros);
  const int msb = 63 - std::countl_zero(micros);
  const size_t group = static_cast<size_t>(msb - kSubBits);
  const size_t sub =
      static_cast<size_t>((micros >> (msb - kSubBits)) & (kSub - 1));
  return std::min(kBuckets - 1, kSub + group * kSub + sub);
}

uint64_t LatencyHistogram::BucketValue(size_t bucket) {
  if (bucket < kSub) return bucket;
  const size_t group = (bucket - kSub) / kSub;
  const size_t sub = (bucket - kSub) % kSub;
  const uint64_t width = 1ull << group;  // Sub-bucket width in this octave.
  const uint64_t lo = (kSub << group) + sub * width;
  return lo + width / 2;
}

void LatencyHistogram::Record(uint64_t micros) {
  counts_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t prev = max_us_.load(std::memory_order_relaxed);
  while (prev < micros &&
         !max_us_.compare_exchange_weak(prev, micros,
                                        std::memory_order_relaxed)) {
  }
}

LatencySnapshot LatencyHistogram::Snapshot() const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  LatencySnapshot snap;
  snap.count = total;
  snap.max_us = max_us_.load(std::memory_order_relaxed);
  if (total == 0) return snap;
  snap.mean_us = static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
                 static_cast<double>(count_.load(std::memory_order_relaxed));

  // Quantile = representative value of the first bucket whose cumulative
  // count reaches ceil(q * total). Bounded by the bucket width (<= 12.5%
  // relative) like any fixed-bucket histogram.
  const auto quantile = [&](double q) -> double {
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.9999999));
    uint64_t cum = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      cum += counts[i];
      if (cum >= target) {
        // Never report beyond the observed max (coarse top buckets).
        return static_cast<double>(
            std::min<uint64_t>(BucketValue(i), snap.max_us));
      }
    }
    return static_cast<double>(snap.max_us);
  };
  snap.p50_us = quantile(0.50);
  snap.p95_us = quantile(0.95);
  snap.p99_us = quantile(0.99);
  return snap;
}

}  // namespace uae::serve
