#include "core/uae.h"

#include <algorithm>
#include <cmath>

#include "core/wavefront.h"
#include "nn/serialize.h"
#include "util/logging.h"
#include "util/mathutil.h"
#include "util/stopwatch.h"
#include "util/threadpool.h"

namespace uae::core {

Uae::Uae(const data::Table& table, const UaeConfig& config) : rng_(config.seed) {
  table_ = &table;
  Init(table, config);
}

Uae::Uae(const data::JoinUniverse& universe, const UaeConfig& config)
    : rng_(config.seed) {
  universe_ = &universe;
  table_ = &universe.universe;
  Init(universe.universe, config);
}

void Uae::Init(const data::Table& table, const UaeConfig& config) {
  config_ = config;
  schema_ = data::VirtualSchema::Build(table, config.factor_threshold,
                                       config.factor_bits);
  model_ = std::make_unique<MadeModel>(&schema_, MakeMadeConfig());

  // Columnar virtual-code store.
  num_rows_ = table.num_rows();
  auto vcodes = std::make_shared<std::vector<std::vector<int32_t>>>(
      static_cast<size_t>(schema_.num_virtual()));
  for (auto& v : *vcodes) v.reserve(num_rows_);
  std::vector<int32_t> orig(static_cast<size_t>(table.num_cols()));
  std::vector<int32_t> virt;
  for (size_t r = 0; r < num_rows_; ++r) {
    for (int c = 0; c < table.num_cols(); ++c) orig[static_cast<size_t>(c)] = table.column(c).code_at(r);
    schema_.EncodeRow(orig, &virt);
    for (int vc = 0; vc < schema_.num_virtual(); ++vc) {
      (*vcodes)[static_cast<size_t>(vc)].push_back(virt[static_cast<size_t>(vc)]);
    }
  }
  vcodes_ = std::move(vcodes);
}

MadeConfig Uae::MakeMadeConfig() const {
  MadeConfig mc;
  mc.hidden = config_.hidden;
  mc.blocks = config_.blocks;
  mc.encoder = config_.encoder;
  mc.embed_dim = config_.embed_dim;
  mc.seed = config_.seed;
  return mc;
}

Uae::Uae(const Uae& other)
    : table_(other.table_),
      universe_(other.universe_),
      config_(other.config_),
      schema_(other.schema_),
      vcodes_(other.vcodes_),  // Shared until either side mutates.
      num_rows_(other.num_rows_),
      rng_(other.rng_) {
  model_ = std::make_unique<MadeModel>(&schema_, MakeMadeConfig());
  util::Status st = CopyParamsFrom(other);
  UAE_CHECK(st.ok()) << st.ToString();
}

std::unique_ptr<Uae> Uae::Clone() const {
  return std::unique_ptr<Uae>(new Uae(*this));
}

std::shared_ptr<ServableModel> Uae::CloneServable() const {
  return std::shared_ptr<ServableModel>(Clone());
}

size_t Uae::FineTune(const workload::Workload& workload, const FineTuneSpec& spec) {
  if (workload.empty()) return 0;
  if (spec.hybrid_epochs > 0) {
    TrainHybridEpochs(workload, spec.hybrid_epochs);
  } else if (spec.query_steps > 0) {
    TrainQuerySteps(workload, spec.query_steps);
  } else {
    return 0;
  }
  return workload.size();
}

util::Status Uae::CopyParamsFrom(const Uae& other) {
  auto params = model_->Parameters();
  util::Status st = nn::CopyParams(other.model_->Parameters(), &params);
  InvalidateFrozen();
  return st;
}

std::shared_ptr<const FrozenMadeBackend> Uae::FrozenBackend() const {
  std::lock_guard<std::mutex> lock(frozen_mu_);
  if (!frozen_) frozen_ = std::make_shared<FrozenMadeBackend>(*model_);
  return frozen_;
}

void Uae::InvalidateFrozen() {
  std::lock_guard<std::mutex> lock(frozen_mu_);
  frozen_.reset();
}

nn::Adam& Uae::Optimizer() {
  if (!optimizer_) {
    optimizer_ = std::make_unique<nn::Adam>(model_->Parameters(), config_.lr);
  }
  return *optimizer_;
}

std::vector<std::vector<int32_t>>& Uae::MutableVcodes() {
  // Copy-on-write: snapshots produced by Clone() share the code store, so
  // detach before the first mutation. The pointee is always created
  // non-const (Init / the copy here), so the const_cast is well-defined.
  if (vcodes_.use_count() != 1) {
    auto fresh =
        std::make_shared<std::vector<std::vector<int32_t>>>(*vcodes_);
    vcodes_ = fresh;
    return *fresh;
  }
  return const_cast<std::vector<std::vector<int32_t>>&>(*vcodes_);
}

double Uae::StepLoss(const nn::Tensor& loss) {
  double value = loss->value().at(0, 0);
  nn::Backward(loss);
  nn::ClipGradNorm(model_->Parameters(), config_.grad_clip);
  nn::Adam& opt = Optimizer();
  opt.Step();
  opt.ZeroGrad();
  InvalidateFrozen();
  return value;
}

nn::Tensor Uae::BuildDataLoss(const std::vector<size_t>& rows) {
  const int n_vc = schema_.num_virtual();
  std::vector<std::vector<int32_t>> in_codes(static_cast<size_t>(n_vc));
  std::vector<std::vector<int32_t>> tgt_codes(static_cast<size_t>(n_vc));
  for (auto& v : in_codes) v.reserve(rows.size());
  for (auto& v : tgt_codes) v.reserve(rows.size());
  // Wildcard-skipping dropout (Naru-style): draw the number of wildcarded
  // columns uniformly in [0, n], then the positions uniformly, so every
  // marginalization pattern gets coverage. All digits of one original column
  // are wildcarded together so the model learns true marginal conditionals.
  const int n_orig = schema_.num_original();
  std::vector<uint8_t> wild(static_cast<size_t>(n_orig));
  std::vector<int> cols_perm(static_cast<size_t>(n_orig));
  for (int oc = 0; oc < n_orig; ++oc) cols_perm[static_cast<size_t>(oc)] = oc;
  for (size_t r : rows) {
    std::fill(wild.begin(), wild.end(), 0);
    int k = static_cast<int>(rng_.UniformInt(0, n_orig));
    for (int i = 0; i < k; ++i) {
      int j = static_cast<int>(rng_.UniformInt(i, n_orig - 1));
      std::swap(cols_perm[static_cast<size_t>(i)], cols_perm[static_cast<size_t>(j)]);
      wild[static_cast<size_t>(cols_perm[static_cast<size_t>(i)])] = 1;
    }
    for (int vc = 0; vc < n_vc; ++vc) {
      int32_t code = (*vcodes_)[static_cast<size_t>(vc)][r];
      tgt_codes[static_cast<size_t>(vc)].push_back(code);
      bool w = wild[static_cast<size_t>(schema_.vcol(vc).orig_col)] != 0;
      in_codes[static_cast<size_t>(vc)].push_back(
          w ? schema_.vcol(vc).domain : code);
    }
  }
  return model_->DataLoss(in_codes, tgt_codes);
}

nn::Tensor Uae::BuildQueryLoss(const std::vector<const QueryTargets*>& targets,
                               const std::vector<double>& sels) {
  DpsConfig dc;
  dc.samples = config_.dps_samples;
  dc.tau = config_.tau;
  dc.sel_floor = 1.f / static_cast<float>(std::max<size_t>(num_rows_, 1));
  return DpsQueryLoss(*model_, targets, sels, dc, &rng_);
}

void Uae::TrainDataEpochs(int epochs, const TrainCallback& cb) {
  const size_t steps =
      (num_rows_ + static_cast<size_t>(config_.data_batch) - 1) /
      static_cast<size_t>(config_.data_batch);
  for (int e = 0; e < epochs; ++e) {
    util::Stopwatch timer;
    double total = 0.0;
    for (size_t s = 0; s < steps; ++s) {
      std::vector<size_t> rows(static_cast<size_t>(config_.data_batch));
      for (auto& r : rows) {
        r = static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(num_rows_) - 1));
      }
      total += StepLoss(BuildDataLoss(rows));
    }
    if (cb) cb({e, total / static_cast<double>(steps), 0.0, timer.ElapsedSeconds()});
  }
}

std::vector<QueryTargets> Uae::CompileTargets(const workload::Workload& w) const {
  std::vector<QueryTargets> out;
  out.reserve(w.size());
  for (const auto& lq : w) out.push_back(BuildTargets(lq.query, *table_, schema_));
  return out;
}

std::vector<QueryTargets> Uae::CompileTargets(const workload::JoinWorkload& w) const {
  UAE_CHECK(universe_ != nullptr) << "join workload on a single-table estimator";
  std::vector<QueryTargets> out;
  out.reserve(w.size());
  for (const auto& lq : w) out.push_back(BuildJoinTargets(lq.query, *universe_, schema_));
  return out;
}

void Uae::QueryLoop(const std::vector<QueryTargets>& targets,
                    const std::vector<double>& sels, int steps,
                    const TrainCallback& cb) {
  UAE_CHECK(!targets.empty());
  util::Stopwatch timer;
  double total = 0.0;
  for (int s = 0; s < steps; ++s) {
    std::vector<const QueryTargets*> batch;
    std::vector<double> batch_sels;
    int qb = std::min<int>(config_.query_batch, static_cast<int>(targets.size()));
    for (int i = 0; i < qb; ++i) {
      size_t pick = static_cast<size_t>(
          rng_.UniformInt(0, static_cast<int64_t>(targets.size()) - 1));
      batch.push_back(&targets[pick]);
      batch_sels.push_back(sels[pick]);
    }
    total += StepLoss(BuildQueryLoss(batch, batch_sels));
    if (cb && (s + 1) % 25 == 0) {
      cb({s + 1, 0.0, total / (s + 1), timer.ElapsedSeconds()});
    }
  }
}

void Uae::TrainQuerySteps(const workload::Workload& workload, int steps,
                          const TrainCallback& cb) {
  std::vector<QueryTargets> targets = CompileTargets(workload);
  std::vector<double> sels;
  sels.reserve(workload.size());
  for (const auto& lq : workload) {
    sels.push_back(lq.card / static_cast<double>(num_rows_));
  }
  QueryLoop(targets, sels, steps, cb);
}

void Uae::TrainQuerySteps(const workload::JoinWorkload& workload, int steps,
                          const TrainCallback& cb) {
  std::vector<QueryTargets> targets = CompileTargets(workload);
  std::vector<double> sels;
  sels.reserve(workload.size());
  for (const auto& lq : workload) {
    sels.push_back(lq.card / static_cast<double>(num_rows_));
  }
  QueryLoop(targets, sels, steps, cb);
}

void Uae::HybridLoop(const std::vector<QueryTargets>& targets,
                     const std::vector<double>& sels, int epochs,
                     const TrainCallback& cb) {
  const size_t steps =
      (num_rows_ + static_cast<size_t>(config_.data_batch) - 1) /
      static_cast<size_t>(config_.data_batch);
  for (int e = 0; e < epochs; ++e) {
    util::Stopwatch timer;
    double d_total = 0.0, q_total = 0.0;
    for (size_t s = 0; s < steps; ++s) {
      // Alg. 3 lines 3-7: one random data batch + one random query batch.
      std::vector<size_t> rows(static_cast<size_t>(config_.data_batch));
      for (auto& r : rows) {
        r = static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(num_rows_) - 1));
      }
      nn::Tensor data_loss = BuildDataLoss(rows);

      std::vector<const QueryTargets*> batch;
      std::vector<double> batch_sels;
      int qb = std::min<int>(config_.query_batch, static_cast<int>(targets.size()));
      for (int i = 0; i < qb; ++i) {
        size_t pick = static_cast<size_t>(
            rng_.UniformInt(0, static_cast<int64_t>(targets.size()) - 1));
        batch.push_back(&targets[pick]);
        batch_sels.push_back(sels[pick]);
      }
      nn::Tensor query_loss = BuildQueryLoss(batch, batch_sels);

      d_total += data_loss->value().at(0, 0);
      q_total += query_loss->value().at(0, 0);
      nn::Tensor loss = nn::Add(data_loss, nn::Scale(query_loss, config_.lambda));
      StepLoss(loss);
    }
    if (cb) {
      cb({e, d_total / static_cast<double>(steps), q_total / static_cast<double>(steps),
          timer.ElapsedSeconds()});
    }
  }
}

void Uae::TrainHybridEpochs(const workload::Workload& workload, int epochs,
                            const TrainCallback& cb) {
  std::vector<QueryTargets> targets = CompileTargets(workload);
  std::vector<double> sels;
  sels.reserve(workload.size());
  for (const auto& lq : workload) {
    sels.push_back(lq.card / static_cast<double>(num_rows_));
  }
  HybridLoop(targets, sels, epochs, cb);
}

void Uae::TrainHybridEpochs(const workload::JoinWorkload& workload, int epochs,
                            const TrainCallback& cb) {
  std::vector<QueryTargets> targets = CompileTargets(workload);
  std::vector<double> sels;
  sels.reserve(workload.size());
  for (const auto& lq : workload) {
    sels.push_back(lq.card / static_cast<double>(num_rows_));
  }
  HybridLoop(targets, sels, epochs, cb);
}

void Uae::IngestDataRows(const data::Table& delta, int epochs) {
  UAE_CHECK_EQ(delta.num_cols(), schema_.num_original());
  size_t first_new = num_rows_;
  std::vector<std::vector<int32_t>>& vcodes = MutableVcodes();
  std::vector<int32_t> orig(static_cast<size_t>(delta.num_cols()));
  std::vector<int32_t> virt;
  for (size_t r = 0; r < delta.num_rows(); ++r) {
    for (int c = 0; c < delta.num_cols(); ++c) {
      int32_t code = delta.column(c).code_at(r);
      UAE_CHECK_LT(code, table_->column(c).domain())
          << "incremental row outside the trained dictionary of column " << c;
      orig[static_cast<size_t>(c)] = code;
    }
    schema_.EncodeRow(orig, &virt);
    for (int vc = 0; vc < schema_.num_virtual(); ++vc) {
      vcodes[static_cast<size_t>(vc)].push_back(virt[static_cast<size_t>(vc)]);
    }
    ++num_rows_;
  }
  // Unsupervised steps drawn from the new rows only (§4.5).
  size_t n_new = num_rows_ - first_new;
  if (n_new == 0) return;
  const size_t steps = std::max<size_t>(
      1, (n_new + static_cast<size_t>(config_.data_batch) - 1) /
             static_cast<size_t>(config_.data_batch));
  for (int e = 0; e < epochs; ++e) {
    for (size_t s = 0; s < steps; ++s) {
      std::vector<size_t> rows(static_cast<size_t>(
          std::min<size_t>(static_cast<size_t>(config_.data_batch), n_new)));
      for (auto& r : rows) {
        r = first_new + static_cast<size_t>(
                            rng_.UniformInt(0, static_cast<int64_t>(n_new) - 1));
      }
      StepLoss(BuildDataLoss(rows));
    }
  }
}

void Uae::IngestWorkload(const workload::Workload& workload, int epochs) {
  int steps_per_epoch = std::max<int>(
      1, static_cast<int>(workload.size()) / std::max(1, config_.query_batch));
  TrainQuerySteps(workload, epochs * steps_per_epoch);
}

util::Rng Uae::EstimationRng(uint64_t fingerprint) const {
  return util::Rng(util::SplitMix64(config_.seed ^ util::SplitMix64(fingerprint)));
}

double Uae::EstimateSelectivity(const workload::Query& query) const {
  QueryTargets targets = BuildTargets(query, *table_, schema_);
  util::Rng rng = EstimationRng(query.Fingerprint());
  return ProgressiveSample(*model_, targets, config_.ps_samples, &rng);
}

double Uae::EstimateCard(const workload::Query& query) const {
  return EstimateSelectivity(query) * static_cast<double>(num_rows_);
}

namespace {

/// Runs `estimate_one(i)` for i in [0, n), fanning across the pool. Batches
/// smaller than the pool fan out over queries poorly while the in-worker
/// inline rule suppresses nested GEMM parallelism, so those run sequentially
/// (with parallel GEMMs) instead. Results are index-deterministic either way.
void ForEachQuery(size_t n, const std::function<void(size_t)>& estimate_one) {
  auto chunk = [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) estimate_one(i);
  };
  if (n < util::GlobalPool().num_threads()) {
    chunk(0, n);
  } else {
    util::ParallelFor(0, n, chunk, /*min_parallel_size=*/1);
  }
}

}  // namespace

std::vector<double> Uae::EstimateSelectivities(
    std::span<const workload::Query> queries) const {
  // Wavefront path: all queries advance column-by-column through shared
  // batched forwards over the frozen backend. Per-query RNG purity keeps
  // every element bit-identical to EstimateSelectivity(queries[i]).
  std::vector<QueryTargets> targets;
  std::vector<util::Rng> rngs;
  targets.reserve(queries.size());
  rngs.reserve(queries.size());
  for (const workload::Query& q : queries) {
    targets.push_back(BuildTargets(q, *table_, schema_));
    rngs.push_back(EstimationRng(q.Fingerprint()));
  }
  WavefrontConfig wc;
  wc.num_samples = config_.ps_samples;
  wc.wave_width = std::max(1, config_.wavefront_width);
  return WavefrontSampleSelectivities(*FrozenBackend(), targets, rngs, wc);
}

std::vector<double> Uae::EstimateCards(
    std::span<const workload::Query> queries) const {
  std::vector<double> cards = EstimateSelectivities(queries);
  for (double& c : cards) c *= static_cast<double>(num_rows_);
  return cards;
}

PsEstimate Uae::EstimateWithError(const workload::Query& query) const {
  QueryTargets targets = BuildTargets(query, *table_, schema_);
  util::Rng rng = EstimationRng(query.Fingerprint());
  return ProgressiveSampleWithError(*model_, targets, config_.ps_samples, &rng);
}

double Uae::EstimateJoinCard(const workload::JoinQuery& query) const {
  UAE_CHECK(universe_ != nullptr);
  QueryTargets targets = BuildJoinTargets(query, *universe_, schema_);
  util::Rng rng = EstimationRng(workload::JoinFingerprint(query));
  double sel = ProgressiveSample(*model_, targets, config_.ps_samples, &rng);
  return sel * static_cast<double>(universe_->full_join_rows);
}

std::vector<double> Uae::EstimateJoinCards(
    std::span<const workload::JoinQuery> queries) const {
  UAE_CHECK(universe_ != nullptr);
  std::vector<double> cards(queries.size(), 0.0);
  ForEachQuery(queries.size(),
               [&](size_t i) { cards[i] = EstimateJoinCard(queries[i]); });
  return cards;
}

std::vector<std::vector<int32_t>> Uae::Sample(int count) const {
  return SampleTuples(*model_, count, &rng_);
}

util::Status Uae::Save(const std::string& path) const {
  return nn::SaveParams(path, model_->Parameters());
}

util::Status Uae::Load(const std::string& path) {
  auto params = model_->Parameters();
  util::Status st = nn::LoadParams(path, &params);
  InvalidateFrozen();
  return st;
}

}  // namespace uae::core
