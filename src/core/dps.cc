#include "core/dps.h"

#include <algorithm>
#include <cmath>

#include "core/gumbel.h"
#include "core/progressive.h"

namespace uae::core {

nn::Tensor DpsQueryLoss(const MadeModel& model,
                        const std::vector<const QueryTargets*>& queries,
                        const std::vector<double>& true_sels, const DpsConfig& config,
                        util::Rng* rng) {
  const data::VirtualSchema& vs = model.schema();
  const int n_vc = model.num_vcols();
  const int q = static_cast<int>(queries.size());
  const int s = config.samples;
  const int b = q * s;
  UAE_CHECK_GT(q, 0);
  UAE_CHECK_EQ(true_sels.size(), static_cast<size_t>(q));

  auto query_of_row = [s](int r) { return r / s; };

  std::vector<nn::Tensor> inputs(static_cast<size_t>(n_vc));
  for (int vc = 0; vc < n_vc; ++vc) {
    inputs[static_cast<size_t>(vc)] = model.WildcardInput(vc, b);
  }
  std::vector<DigitRangeState> states(static_cast<size_t>(b),
                                      DigitRangeState(vs.num_original()));
  nn::Tensor p;  // Running per-row density estimate (Alg. 2 line 6).

  for (int vc = 0; vc < n_vc; ++vc) {
    const data::VirtualColumn& v = vs.vcol(vc);
    const int oc = v.orig_col;
    // Skip the column when *no* query in the batch constrains it.
    bool any = false;
    for (int qi = 0; qi < q; ++qi) {
      if (!queries[static_cast<size_t>(qi)]->cols[static_cast<size_t>(oc)].IsWildcard()) {
        any = true;
        break;
      }
    }
    if (!any) continue;

    const int32_t dom = v.domain;
    nn::Tensor h = model.Trunk(inputs);
    nn::Tensor logits = model.HeadLogits(vc, h);

    // Per-row weight and log-weight matrices (constants in the graph).
    nn::Mat w_mat(b, dom);
    nn::Mat logw_mat(b, dom);
    std::vector<uint8_t> row_constrained(static_cast<size_t>(b), 0);
    for (int r = 0; r < b; ++r) {
      const QueryTargets& qt = *queries[static_cast<size_t>(query_of_row(r))];
      const ColumnTarget& target = qt.cols[static_cast<size_t>(oc)];
      if (target.IsWildcard()) {
        // Unconstrained for this row: mass contribution 1, input stays
        // wildcard. All-ones weights achieve the former.
        float* w = w_mat.row(r);
        for (int32_t c = 0; c < dom; ++c) w[c] = 1.f;
        continue;
      }
      row_constrained[static_cast<size_t>(r)] = 1;
      FillColumnWeights(vs, vc, target, states[static_cast<size_t>(r)], w_mat.row(r),
                        logw_mat.row(r));
    }

    // mass = sum_v probs(v) * w(v); p *= mass.
    nn::Tensor probs = nn::SoftmaxRowsOp(logits);
    nn::Tensor mass = nn::RowSum(nn::MulConstMat(probs, w_mat));
    p = p ? nn::Mul(p, mass) : mass;

    // Gumbel-Softmax relaxed sample from the renormalized restricted
    // distribution (Alg. 1 over Alg. 2 lines 7-9).
    nn::Tensor masked = nn::AddConstMat(logits, logw_mat);
    nn::Tensor logpi = nn::LogSoftmaxRowsOp(masked);
    nn::Mat noise(b, dom);
    FillGumbelNoise(&noise, rng);
    nn::Tensor y =
        nn::SoftmaxRowsOp(nn::Scale(nn::AddConstMat(logpi, noise), 1.f / config.tau));

    // Soft re-encoding for constrained rows, wildcard token for the rest.
    nn::Tensor soft = model.EncodeSoft(vc, y);
    nn::Tensor wild = model.WildcardInput(vc, b);
    const int width = soft->cols();
    nn::Mat keep_soft(b, width);
    nn::Mat keep_wild(b, width);
    for (int r = 0; r < b; ++r) {
      float flag = row_constrained[static_cast<size_t>(r)] ? 1.f : 0.f;
      float* ks = keep_soft.row(r);
      float* kw = keep_wild.row(r);
      for (int c = 0; c < width; ++c) {
        ks[c] = flag;
        kw[c] = 1.f - flag;
      }
    }
    inputs[static_cast<size_t>(vc)] =
        nn::Add(nn::MulConstMat(soft, keep_soft), nn::MulConstMat(wild, keep_wild));

    // Advance digit-range state using the hard (argmax) sample. The hard
    // decision only steers later *masks*; gradients keep flowing through y.
    if (v.num_subs > 1) {
      for (int r = 0; r < b; ++r) {
        if (!row_constrained[static_cast<size_t>(r)]) continue;
        const QueryTargets& qt = *queries[static_cast<size_t>(query_of_row(r))];
        const ColumnTarget& target = qt.cols[static_cast<size_t>(oc)];
        if (target.kind != ColumnTarget::Kind::kRange) continue;
        const float* yr = y->value().row(r);
        int32_t hard = 0;
        for (int32_t c = 1; c < dom; ++c) {
          if (yr[c] > yr[hard]) hard = c;
        }
        states[static_cast<size_t>(r)].Advance(vs, vc, target.lo, target.hi, hard);
      }
    }
  }

  UAE_CHECK(p != nullptr) << "DPS batch contained only unconstrained queries";
  nn::Tensor sel_hat = nn::SegmentMean(p, s);
  nn::Mat truth(q, 1);
  for (int qi = 0; qi < q; ++qi) {
    truth.at(qi, 0) = static_cast<float>(true_sels[static_cast<size_t>(qi)]);
  }
  return nn::QErrorLoss(sel_hat, truth, config.sel_floor);
}

}  // namespace uae::core
