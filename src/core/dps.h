// Differentiable Progressive Sampling (Algorithm 2) — the paper's key
// technical contribution. Builds the supervised query loss L_query (Eq. 5/6)
// as an autograd graph:
//
//   per attribute i (in AR order, batched over queries x samples):
//     logits_i   = model head i on the current soft inputs
//     probs_i    = softmax(logits_i)
//     mass_i     = sum_{v} probs_i(v) * w_q(v)           (line 6; w = region
//                  indicator, or 1/F weights for join fanout downscaling)
//     p         *= mass_i
//     logits'_i  = logits_i + log w_q                    (lines 7-8: -inf
//                  outside the region, then renormalized by log-softmax)
//     y_i        = softmax((log_softmax(logits'_i) + g) / tau)   (Alg. 1)
//     input_i    = y_i^T E_i                              (soft re-encoding)
//
//   sel_hat(q) = mean over the S samples of p             (lines 11-13)
//   L_query    = mean_q Q-error(sel_hat(q), sel(q))       (Eq. 6)
//
// The Gumbel noise g is constant w.r.t. the graph, so gradients flow from
// L_query through y back into every conditional — Fig. 2(3) of the paper.
#pragma once

#include "core/made.h"
#include "core/targets.h"
#include "util/rng.h"

namespace uae::core {

struct DpsConfig {
  int samples = 32;       ///< S in Alg. 2 (paper default 200; scaled for CPU).
  float tau = 1.0f;       ///< Gumbel-Softmax temperature (paper's best: 1.0).
  float sel_floor = 1e-6f;///< Selectivity floor in the Q-error loss.
};

/// Builds the scalar L_query tensor for a batch of queries. `queries` and
/// `true_sels` are parallel arrays. Rows are laid out query-major, S sample
/// rows per query.
nn::Tensor DpsQueryLoss(const MadeModel& model,
                        const std::vector<const QueryTargets*>& queries,
                        const std::vector<double>& true_sels, const DpsConfig& config,
                        util::Rng* rng);

}  // namespace uae::core
