#include "core/quant.h"

#include <algorithm>
#include <cstring>

#include "util/mathutil.h"

namespace uae::core {

namespace {

/// Quantizes the layer's pre-masked weights (W ⊙ M, the exact product the
/// fp32 plane uses) column-major-as-rows, then applies the corruption knob.
nn::QuantizedMat QuantizeLayer(const nn::MaskedLinear& layer,
                               const QuantizeOptions& options) {
  const nn::Mat& w = layer.weight()->value();
  nn::Mat wm(w.rows(), w.cols());
  nn::MulElem(w, layer.mask(), &wm);
  nn::QuantizedMat qm = nn::QuantizeColsAsRows(wm);
  if (options.scale_multiplier != 1.f) {
    for (float& s : qm.scales) s *= options.scale_multiplier;
  }
  return qm;
}

}  // namespace

QuantizedMadeBackend::QuantizedMadeBackend(const MadeModel& model,
                                           const data::VirtualSchema* schema,
                                           const QuantizeOptions& options)
    : InferenceBackend(model, schema) {
  w_in_ = QuantizeLayer(model.input_layer(), options);
  w1_.reserve(model.blocks().size());
  w2_.reserve(model.blocks().size());
  for (const auto& block : model.blocks()) {
    w1_.push_back(QuantizeLayer(block.fc1(), options));
    w2_.push_back(QuantizeLayer(block.fc2(), options));
  }
  head_w_.reserve(static_cast<size_t>(model.num_vcols()));
  for (int vc = 0; vc < model.num_vcols(); ++vc) {
    head_w_.push_back(QuantizeLayer(model.head(vc), options));
  }
}

void QuantizedMadeBackend::ForwardProbs(int vc, const nn::Mat& x,
                                        WavefrontWorkspace* ws) const {
  // Same op sequence as FrozenMadeBackend with the GEMMs swapped for the
  // int8 kernel (fp32 accumulate, per-channel dequant epilogue).
  const int m = x.rows();
  EnsureZeroed(&ws->h, m, hidden_);
  nn::GemmNtQuantAccum(x, w_in_, &ws->h);
  nn::AddBiasRows(ws->h, b_in_, &ws->h);
  for (size_t blk = 0; blk < w1_.size(); ++blk) {
    EnsureShape(&ws->t0, m, hidden_);
    std::memcpy(ws->t0.data(), ws->h.data(), ws->h.size() * sizeof(float));
    nn::ReluInplace(&ws->t0);
    EnsureZeroed(&ws->t1, m, hidden_);
    nn::GemmNtQuantAccum(ws->t0, w1_[blk], &ws->t1);
    nn::AddBiasReluRows(ws->t1, b1_[blk], &ws->t1);
    EnsureZeroed(&ws->t2, m, hidden_);
    nn::GemmNtQuantAccum(ws->t1, w2_[blk], &ws->t2);
    nn::AddBiasRows(ws->t2, b2_[blk], &ws->t2);
    float* h = ws->h.data();
    const float* t = ws->t2.data();
    for (size_t i = 0; i < ws->h.size(); ++i) h[i] += t[i];
  }
  nn::ReluInplace(&ws->h);
  const nn::QuantizedMat& hw = head_w_[static_cast<size_t>(vc)];
  EnsureZeroed(&ws->probs, m, hw.rows);
  nn::GemmNtQuantAccum(ws->h, hw, &ws->probs);
  nn::AddBiasRows(ws->probs, head_b_[static_cast<size_t>(vc)], &ws->probs);
  nn::SoftmaxRowsInplace(&ws->probs);
}

size_t QuantizedMadeBackend::SizeBytes() const {
  size_t total = w_in_.SizeBytes();
  for (const auto& m : encoders_) total += m.size() * sizeof(float);
  for (const auto& m : w1_) total += m.SizeBytes();
  for (const auto& m : w2_) total += m.SizeBytes();
  for (const auto& m : head_w_) total += m.SizeBytes();
  total += b_in_.size() * sizeof(float);
  for (const auto& m : b1_) total += m.size() * sizeof(float);
  for (const auto& m : b2_) total += m.size() * sizeof(float);
  for (const auto& m : head_b_) total += m.size() * sizeof(float);
  return total;
}

QuantizedUae::QuantizedUae(const Uae& source, const QuantizeOptions& options)
    : table_(source.table()),
      universe_(source.universe()),
      config_(source.config()),
      num_rows_(source.num_rows()) {
  UAE_CHECK(table_ != nullptr);
  schema_ = std::make_shared<data::VirtualSchema>(source.schema());
  backend_ =
      std::make_shared<QuantizedMadeBackend>(source.model(), schema_.get(), options);
}

std::vector<double> QuantizedUae::EstimateSelectivities(
    std::span<const workload::Query> queries) const {
  std::vector<QueryTargets> targets;
  std::vector<util::Rng> rngs;
  targets.reserve(queries.size());
  rngs.reserve(queries.size());
  for (const workload::Query& q : queries) {
    targets.push_back(BuildTargets(q, *table_, *schema_));
    // Same (seed, fingerprint) scheme as Uae::EstimationRng: the quantized
    // snapshot consumes the identical per-query stream as its fp32 source.
    rngs.push_back(util::Rng(
        util::SplitMix64(config_.seed ^ util::SplitMix64(q.Fingerprint()))));
  }
  WavefrontConfig wc;
  wc.num_samples = config_.ps_samples;
  wc.wave_width = std::max(1, config_.wavefront_width);
  return WavefrontSampleSelectivities(*backend_, targets, rngs, wc);
}

double QuantizedUae::EstimateSelectivity(const workload::Query& query) const {
  return EstimateSelectivities(std::span<const workload::Query>(&query, 1))[0];
}

double QuantizedUae::EstimateCard(const workload::Query& query) const {
  return EstimateSelectivity(query) * static_cast<double>(num_rows_);
}

std::vector<double> QuantizedUae::EstimateCards(
    std::span<const workload::Query> queries) const {
  std::vector<double> cards = EstimateSelectivities(queries);
  for (double& c : cards) c *= static_cast<double>(num_rows_);
  return cards;
}

std::vector<double> QuantizedUae::EstimateJoinCards(
    std::span<const workload::JoinQuery> queries) const {
  UAE_CHECK(universe_ != nullptr)
      << "join query on a quantized single-table snapshot";
  std::vector<QueryTargets> targets;
  std::vector<util::Rng> rngs;
  targets.reserve(queries.size());
  rngs.reserve(queries.size());
  for (const workload::JoinQuery& q : queries) {
    targets.push_back(BuildJoinTargets(q, *universe_, *schema_));
    // Joins seed from JoinFingerprint (predicate x table-mask mix), the same
    // stream Uae::EstimateJoinCard consumes.
    rngs.push_back(util::Rng(util::SplitMix64(
        config_.seed ^ util::SplitMix64(workload::JoinFingerprint(q)))));
  }
  WavefrontConfig wc;
  wc.num_samples = config_.ps_samples;
  wc.wave_width = std::max(1, config_.wavefront_width);
  std::vector<double> cards = WavefrontSampleSelectivities(*backend_, targets, rngs, wc);
  for (double& c : cards) c *= static_cast<double>(universe_->full_join_rows);
  return cards;
}

double QuantizedUae::EstimateJoinCard(const workload::JoinQuery& query) const {
  return EstimateJoinCards(std::span<const workload::JoinQuery>(&query, 1))[0];
}

std::shared_ptr<ServableModel> QuantizedUae::CloneServable() const {
  return std::shared_ptr<ServableModel>(new QuantizedUae(*this));
}

size_t QuantizedUae::FineTune(const workload::Workload& /*workload*/,
                              const FineTuneSpec& /*spec*/) {
  return 0;  // Frozen: callers treat 0 as "clone still bit-identical".
}

}  // namespace uae::core
