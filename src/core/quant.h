// Quantized serving snapshots: an int8 inference plane (per-output-channel
// symmetric weight scales, fp32 accumulate) over a frozen UAE, wrapped as a
// ServableModel so it publishes through serve::SnapshotSlot/EstimationService
// like any generation. Quantization perturbs estimates, so candidates must be
// parity-gated against their fp32 source before serving — see
// serve::PublishQuantizedSnapshot, which reuses the online guard machinery.
#pragma once

#include <memory>

#include "core/uae.h"
#include "core/wavefront.h"

namespace uae::core {

struct QuantizeOptions {
  /// Multiplies every per-channel dequantization scale; 1 is the faithful
  /// conversion. Values far from 1 deliberately corrupt the candidate — the
  /// publish-guard tests drive the refusal path with this.
  float scale_multiplier = 1.f;
};

/// Int8 inference plane over a frozen ResMADE: weights are stored transposed
/// with per-output-channel absmax scales (nn::QuantizeColsAsRows of the
/// pre-masked fp32 weights); forwards run nn::GemmNtQuantAccum with fp32
/// bias/softmax epilogues. Encoders and biases stay fp32 (they are tiny).
class QuantizedMadeBackend : public InferenceBackend {
 public:
  QuantizedMadeBackend(const MadeModel& model, const data::VirtualSchema* schema,
                       const QuantizeOptions& options = {});

  void ForwardProbs(int vc, const nn::Mat& x,
                    WavefrontWorkspace* ws) const override;
  size_t SizeBytes() const override;

 private:
  nn::QuantizedMat w_in_;
  std::vector<nn::QuantizedMat> w1_, w2_;
  std::vector<nn::QuantizedMat> head_w_;
};

/// QuantizedServableModel: an immutable int8 snapshot of a Uae. Estimates run
/// the wavefront sampler over the quantized backend with the same
/// (seed, query-fingerprint) RNG scheme as the source, so results are pure
/// per query (batch- and thread-independent) — just not bit-equal to fp32,
/// which is why publishing is guarded. FineTune returns 0 ("clone still
/// bit-identical"): a frozen snapshot never trains.
class QuantizedUae : public ServableModel {
 public:
  explicit QuantizedUae(const Uae& source, const QuantizeOptions& options = {});

  double EstimateSelectivity(const workload::Query& query) const;
  double EstimateCard(const workload::Query& query) const override;
  std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const override;
  std::vector<double> EstimateSelectivities(
      std::span<const workload::Query> queries) const;

  /// Join sub-plan estimation is available iff the source Uae had it (i.e. it
  /// was built over a JoinUniverse): the quantized snapshot then serves the
  /// join optimizer through the same wavefront plane, with the RNG seeded
  /// from workload::JoinFingerprint exactly like the fp32 source.
  bool SupportsJoinQueries() const override { return universe_ != nullptr; }
  double EstimateJoinCard(const workload::JoinQuery& query) const override;
  std::vector<double> EstimateJoinCards(
      std::span<const workload::JoinQuery> queries) const override;

  size_t SizeBytes() const override { return backend_->SizeBytes(); }
  size_t num_rows() const override { return num_rows_; }
  uint64_t seed() const override { return config_.seed; }
  /// Shares the immutable backend/schema: a quantized snapshot has no
  /// trainable state, so the "clone" is a cheap aliasing copy.
  std::shared_ptr<ServableModel> CloneServable() const override;
  size_t FineTune(const workload::Workload& workload,
                  const FineTuneSpec& spec) override;

 private:
  QuantizedUae(const QuantizedUae&) = default;

  const data::Table* table_ = nullptr;
  const data::JoinUniverse* universe_ = nullptr;  ///< Null: single-table only.
  UaeConfig config_;
  /// Owned copy shared with clones; backend_ points into it.
  std::shared_ptr<const data::VirtualSchema> schema_;
  std::shared_ptr<const QuantizedMadeBackend> backend_;
  size_t num_rows_ = 0;
};

}  // namespace uae::core
