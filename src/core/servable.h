// ServableModel — the contract between an estimation model and the layers
// that deploy it (serve/ snapshots, online/ adaptation). A snapshot is any
// immutable object that can answer cardinality queries; a candidate for
// hot-swap is any mutable clone that can fine-tune on labeled feedback.
//
// Implementations: the monolithic core::Uae (one autoregressive model over
// one table, the paper's setting), shard::ShardedUae (one model per
// horizontal partition with pruned fan-out), estimators::SpnServable (the
// query-driven SPN backend), shard::ShardedServable (per-shard instances of
// any factory-built servable), router::HybridRouter (a servable fronting a
// zoo of backends), and estimators::ServableEstimatorAdapter (read-only lift
// of a zoo estimator). The serving and adaptation layers are written against
// this interface so any deployment hot-swaps and self-repairs the same way.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "workload/query.h"

namespace uae::workload {
struct JoinQuery;  // join_workload.h; kept out of this header's include graph.
}  // namespace uae::workload

namespace uae::core {

/// How FineTune() should spend its budget (mirrors the knobs of
/// online::AdaptationConfig; see §4.5 of the paper).
struct FineTuneSpec {
  /// Supervised DPS steps on the feedback workload (UAE-Q refinement).
  int query_steps = 80;
  /// When > 0, hybrid L_data + lambda * L_query epochs instead — slower but
  /// anchored to the data distribution (less forgetting).
  int hybrid_epochs = 0;
  /// Step size for backends with an explicit fine-tune learning rate (the
  /// SPN's multiplicative update). 0 means "use the model's default";
  /// gradient backends with their own optimizer schedule (UAE) ignore it.
  double learning_rate = 0.0;
};

class ServableModel {
 public:
  virtual ~ServableModel() = default;

  /// Estimated cardinality of a single-table query. Must be a pure function
  /// of (model, query): independent of call order, batch composition, and
  /// thread count, so served results are reproducible bitwise.
  virtual double EstimateCard(const workload::Query& query) const = 0;
  /// Batched estimation; element i is bit-identical to EstimateCard(queries[i]).
  virtual std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const = 0;

  // ---- Join estimation (optional capability) -------------------------------
  // A model constructed over a data::JoinUniverse can answer sub-plan
  // cardinalities for the join optimizer. The serving layer routes join
  // requests through these exactly like single-table ones (micro-batched,
  // cached per generation), so implementations must keep the same purity
  // contract: EstimateJoinCard is a pure function of (model, join query),
  // seeded from workload::JoinFingerprint.

  /// Whether EstimateJoinCard*/ may be called. Defaults to false; the serving
  /// layer CHECK-fails a join request against a model that returns false.
  virtual bool SupportsJoinQueries() const { return false; }
  /// Estimated cardinality of a join sub-plan. CHECK-fails unless
  /// SupportsJoinQueries(); must be bitwise batch/thread invariant.
  virtual double EstimateJoinCard(const workload::JoinQuery& query) const;
  /// Batched variant; element i is bit-identical to EstimateJoinCard(queries[i]).
  virtual std::vector<double> EstimateJoinCards(
      std::span<const workload::JoinQuery> queries) const;

  virtual size_t SizeBytes() const = 0;
  /// Rows of the underlying table (feedback selectivities derive from this).
  virtual size_t num_rows() const = 0;
  /// The model's construction seed (adaptation controllers mix it into their
  /// train/holdout split seeds).
  virtual uint64_t seed() const = 0;

  /// Independent deep copy with bit-identical parameters; fine-tuning the
  /// clone leaves this model untouched (the hot-swap publish path).
  virtual std::shared_ptr<ServableModel> CloneServable() const = 0;

  /// Fine-tunes on a labeled feedback workload and returns how many of its
  /// queries were actually trained on. Implementations route the work: a
  /// monolithic UAE trains on the whole workload (returns workload.size());
  /// a sharded model refits only the shards the workload's queries target —
  /// queries spanning shards are unattributable and dropped, so the return
  /// value can be less than workload.size(), down to 0 when nothing routed.
  /// Callers deciding whether to publish the result should treat 0 as "the
  /// clone is still bit-identical to its source".
  virtual size_t FineTune(const workload::Workload& workload,
                          const FineTuneSpec& spec) = 0;
};

}  // namespace uae::core
