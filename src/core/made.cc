#include "core/made.h"

#include "nn/kernels.h"
#include "nn/masks.h"
#include "nn/serialize.h"

namespace uae::core {

MadeModel::MadeModel(const data::VirtualSchema* schema, const MadeConfig& config)
    : schema_(schema), config_(config) {
  util::Rng rng(config.seed);
  const int n = schema_->num_virtual();
  UAE_CHECK_GT(n, 0);

  // Per-vcol encoders.
  encoders_.reserve(static_cast<size_t>(n));
  widths_.reserve(static_cast<size_t>(n));
  trainable_encoders_ = config_.encoder == data::EncoderKind::kEmbedding;
  for (int vc = 0; vc < n; ++vc) {
    int32_t dom = vdomain(vc);
    switch (config_.encoder) {
      case data::EncoderKind::kBinary:
        encoders_.push_back(nn::Constant(data::BinaryEncodingMatrix(dom)));
        break;
      case data::EncoderKind::kOneHot:
        encoders_.push_back(nn::Constant(data::OneHotEncodingMatrix(dom)));
        break;
      case data::EncoderKind::kEmbedding:
        encoders_.push_back(
            nn::Parameter(nn::Mat::Gaussian(dom + 1, config_.embed_dim, 0.1f, &rng)));
        break;
    }
    widths_.push_back(encoders_.back()->cols());
  }

  hidden_degrees_ = nn::HiddenDegrees(config_.hidden, n);
  input_layer_ = nn::MaskedLinear(nn::InputMask(widths_, hidden_degrees_),
                                  "made.input", &rng);
  for (int b = 0; b < config_.blocks; ++b) {
    blocks_.emplace_back(hidden_degrees_, "made.block" + std::to_string(b), &rng);
  }
  heads_.reserve(static_cast<size_t>(n));
  for (int vc = 0; vc < n; ++vc) {
    heads_.emplace_back(nn::HeadMask(hidden_degrees_, vc, vdomain(vc)),
                        "made.head" + std::to_string(vc), &rng);
  }
}

nn::Tensor MadeModel::EncodeHard(int vc, const std::vector<int32_t>& codes) const {
  return nn::EmbeddingLookup(encoders_[static_cast<size_t>(vc)], codes);
}

nn::Tensor MadeModel::EncodeSoft(int vc, const nn::Tensor& y) const {
  const nn::Tensor& enc = encoders_[static_cast<size_t>(vc)];
  UAE_CHECK_EQ(y->cols(), vdomain(vc));
  // Drop the wildcard row: y mixes only real values.
  return nn::MatMul(y, nn::SliceRows(enc, 0, vdomain(vc)));
}

nn::Tensor MadeModel::WildcardInput(int vc, int batch) const {
  std::vector<int32_t> codes(static_cast<size_t>(batch), vdomain(vc));
  return EncodeHard(vc, codes);
}

nn::Tensor MadeModel::Trunk(const std::vector<nn::Tensor>& per_vcol_inputs) const {
  UAE_CHECK_EQ(per_vcol_inputs.size(), static_cast<size_t>(num_vcols()));
  nn::Tensor x = nn::ConcatCols(per_vcol_inputs);
  nn::Tensor h = input_layer_.Forward(x);
  for (const auto& block : blocks_) h = block.Forward(h);
  return nn::Relu(h);
}

nn::Tensor MadeModel::HeadLogits(int vc, const nn::Tensor& trunk_out) const {
  return heads_[static_cast<size_t>(vc)].Forward(trunk_out);
}

nn::Tensor MadeModel::HeadProbs(int vc, const nn::Tensor& trunk_out) const {
  UAE_CHECK(!nn::GradModeEnabled())
      << "HeadProbs mutates the logits in place; training paths must use "
         "HeadLogits + SoftmaxRowsOp";
  nn::Tensor logits = HeadLogits(vc, trunk_out);
  nn::SoftmaxRowsInplace(&logits->mutable_value());
  return logits;
}

nn::Tensor MadeModel::DataLoss(
    const std::vector<std::vector<int32_t>>& input_codes,
    const std::vector<std::vector<int32_t>>& target_codes) const {
  const int n = num_vcols();
  UAE_CHECK_EQ(input_codes.size(), static_cast<size_t>(n));
  UAE_CHECK_EQ(target_codes.size(), static_cast<size_t>(n));
  std::vector<nn::Tensor> inputs;
  inputs.reserve(static_cast<size_t>(n));
  for (int vc = 0; vc < n; ++vc) {
    inputs.push_back(EncodeHard(vc, input_codes[static_cast<size_t>(vc)]));
  }
  nn::Tensor h = Trunk(inputs);
  nn::Tensor loss;
  for (int vc = 0; vc < n; ++vc) {
    nn::Tensor ce =
        nn::CrossEntropyLogits(HeadLogits(vc, h), target_codes[static_cast<size_t>(vc)]);
    loss = loss ? nn::Add(loss, ce) : ce;
  }
  return loss;
}

std::vector<nn::NamedParam> MadeModel::Parameters() const {
  std::vector<nn::NamedParam> params;
  if (trainable_encoders_) {
    for (size_t vc = 0; vc < encoders_.size(); ++vc) {
      params.push_back({"made.emb" + std::to_string(vc), encoders_[vc]});
    }
  }
  input_layer_.CollectParams(&params);
  for (const auto& b : blocks_) b.CollectParams(&params);
  for (const auto& head : heads_) head.CollectParams(&params);
  return params;
}

size_t MadeModel::SizeBytes() const { return nn::ParamBytes(Parameters()); }

}  // namespace uae::core
