#include "core/targets.h"

#include <algorithm>

namespace uae::core {

QueryTargets BuildTargets(const workload::Query& query, const data::Table& table,
                          const data::VirtualSchema& schema) {
  UAE_CHECK_EQ(query.num_cols(), table.num_cols());
  QueryTargets targets;
  targets.cols.resize(static_cast<size_t>(table.num_cols()));
  for (int c = 0; c < table.num_cols(); ++c) {
    const workload::Constraint& cons = query.constraint(c);
    ColumnTarget& t = targets.cols[static_cast<size_t>(c)];
    int32_t domain = table.column(c).domain();
    if (!cons.IsActive()) {
      t.kind = ColumnTarget::Kind::kWildcard;
      continue;
    }
    if (cons.kind == workload::Constraint::Kind::kRange) {
      t.kind = ColumnTarget::Kind::kRange;
      t.lo = std::max(cons.lo, 0);
      t.hi = std::min(cons.hi, domain - 1);
      continue;
    }
    UAE_CHECK(!schema.IsFactorized(c))
        << "non-contiguous constraint on factorized column " << c;
    t.kind = ColumnTarget::Kind::kMask;
    t.mask = cons.AllowedMask(domain);
  }
  return targets;
}

QueryTargets BuildJoinTargets(const workload::JoinQuery& query,
                              const data::JoinUniverse& uni,
                              const data::VirtualSchema& schema) {
  QueryTargets targets = BuildTargets(query.pred, uni.universe, schema);
  for (int fc : workload::DownscaleColumns(uni, query.table_mask)) {
    ColumnTarget& t = targets.cols[static_cast<size_t>(fc)];
    UAE_CHECK(t.IsWildcard()) << "fanout column carries a predicate";
    UAE_CHECK(!schema.IsFactorized(fc));
    t.kind = ColumnTarget::Kind::kWeights;
    int32_t domain = uni.universe.column(fc).domain();
    t.weights.resize(static_cast<size_t>(domain));
    for (int32_t v = 0; v < domain; ++v) {
      t.weights[static_cast<size_t>(v)] = 1.f / static_cast<float>(v + 1);
    }
  }
  return targets;
}

void DigitRangeState::DigitBounds(const data::VirtualSchema& schema, int vc,
                                  int32_t range_lo, int32_t range_hi,
                                  int32_t* digit_lo, int32_t* digit_hi) const {
  const data::VirtualColumn& v = schema.vcol(vc);
  size_t oc = static_cast<size_t>(v.orig_col);
  *digit_lo = tight_lo_[oc] ? schema.Digit(vc, range_lo) : 0;
  *digit_hi = tight_hi_[oc] ? schema.Digit(vc, range_hi) : v.domain - 1;
}

void DigitRangeState::Advance(const data::VirtualSchema& schema, int vc,
                              int32_t range_lo, int32_t range_hi, int32_t digit) {
  const data::VirtualColumn& v = schema.vcol(vc);
  size_t oc = static_cast<size_t>(v.orig_col);
  if (tight_lo_[oc] && digit != schema.Digit(vc, range_lo)) tight_lo_[oc] = 0;
  if (tight_hi_[oc] && digit != schema.Digit(vc, range_hi)) tight_hi_[oc] = 0;
}

}  // namespace uae::core
