// Wavefront progressive sampling: every in-flight (query x sample) lane
// advances one virtual column per step through a single batched trunk forward,
// instead of one model forward per query per column. Lanes that hit a
// zero-mass column exit early (they are dropped from subsequent forwards), and
// each query keeps its own deterministic RNG stream, so estimates are
// bit-identical to the per-query sampler in core/progressive.cc for any
// wavefront width and thread count:
//
//   - the per-lane sampling arithmetic is the shared core::SampleLane;
//   - the trunk/head kernels are row-deterministic (output row i depends only
//     on input row i, never on batch composition or thread count);
//   - RNG draws per query happen in the legacy order: constrained virtual
//     columns ascending, live lanes ascending, dead lanes consuming nothing.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/made.h"
#include "core/progressive.h"
#include "core/targets.h"
#include "nn/kernels.h"
#include "nn/mat.h"
#include "util/rng.h"

namespace uae::core {

/// Reusable scratch for frozen forward passes. One per wave worker, so
/// steady-state steps allocate nothing once shapes have stabilized.
struct WavefrontWorkspace {
  nn::Mat x;      ///< Gathered live-lane inputs [m, input_width].
  nn::Mat h;      ///< Trunk activation [m, hidden].
  nn::Mat t0;     ///< relu(h) scratch.
  nn::Mat t1;     ///< fc1 output scratch.
  nn::Mat t2;     ///< fc2 output scratch.
  nn::Mat probs;  ///< Head probabilities [m, vdomain(vc)].
};

/// Reshapes `m` if needed; contents are unspecified afterwards.
inline void EnsureShape(nn::Mat* m, int rows, int cols) {
  if (m->rows() != rows || m->cols() != cols) *m = nn::Mat(rows, cols);
}

/// Reshapes `m` if needed and zeroes it (GEMM accumulation target).
inline void EnsureZeroed(nn::Mat* m, int rows, int cols) {
  if (m->rows() == rows && m->cols() == cols) {
    m->Zero();
  } else {
    *m = nn::Mat(rows, cols);
  }
}

/// A frozen, immutable inference plane over a ResMADE model: snapshots the
/// encoders, biases and layout once so forwards run as raw kernel calls with
/// no autograd graph and no per-op allocation. Implementations must be
/// row-deterministic: probs row i depends only on x row i, for any batch
/// composition and thread count — that property is what lets the wavefront
/// batch lanes of unrelated queries together without perturbing estimates.
class InferenceBackend {
 public:
  virtual ~InferenceBackend() = default;

  const data::VirtualSchema& schema() const { return *schema_; }
  int num_vcols() const { return schema_->num_virtual(); }
  /// Total encoded input width (sum of per-vcol encoder widths).
  int input_width() const { return input_width_; }
  /// Column offset of vcol `vc` inside an encoded input row.
  int col_offset(int vc) const { return offsets_[static_cast<size_t>(vc)]; }
  /// Encoded width of vcol `vc`.
  int col_width(int vc) const { return widths_[static_cast<size_t>(vc)]; }
  /// Encoder row for `code` (code == vdomain(vc) is the wildcard token);
  /// length col_width(vc). Bitwise-equal to the model's EncodeHard rows.
  const float* EncoderRow(int vc, int32_t code) const {
    return encoders_[static_cast<size_t>(vc)].row(code);
  }

  /// Writes softmaxed head-`vc` probabilities for the gathered lane rows of
  /// `x` into ws->probs ([x.rows(), vdomain(vc)]), using ws for
  /// intermediates. Must not retain pointers into ws across calls.
  virtual void ForwardProbs(int vc, const nn::Mat& x,
                            WavefrontWorkspace* ws) const = 0;

  virtual size_t SizeBytes() const = 0;

 protected:
  /// Copies encoders, biases and layout from `model`. `schema` overrides the
  /// schema pointer (pass the owner's long-lived copy); nullptr means
  /// &model.schema(), which must then outlive this backend.
  InferenceBackend(const MadeModel& model, const data::VirtualSchema* schema);

  const data::VirtualSchema* schema_;
  std::vector<nn::Mat> encoders_;  ///< Per vcol, (domain+1) x width copies.
  std::vector<int> offsets_;
  std::vector<int> widths_;
  int input_width_ = 0;
  int hidden_ = 0;
  nn::Mat b_in_;                  ///< Input-layer bias [1, hidden].
  std::vector<nn::Mat> b1_, b2_;  ///< Residual-block biases, per block.
  std::vector<nn::Mat> head_b_;   ///< Head biases, per vcol.
};

/// Fp32 backend: pre-masked weight copies (W ⊙ M computed once, bitwise the
/// same product MaskedMatMul forms per call) plus the exact kernel sequence of
/// MadeModel::Trunk/HeadProbs, so a wavefront estimate is bit-identical to
/// the per-query sampler's.
class FrozenMadeBackend : public InferenceBackend {
 public:
  explicit FrozenMadeBackend(const MadeModel& model,
                             const data::VirtualSchema* schema = nullptr);

  void ForwardProbs(int vc, const nn::Mat& x,
                    WavefrontWorkspace* ws) const override;
  size_t SizeBytes() const override;

 private:
  nn::Mat w_in_;                  ///< Pre-masked input weights [in, hidden].
  std::vector<nn::Mat> w1_, w2_;  ///< Pre-masked block weights, per block.
  std::vector<nn::Mat> head_w_;   ///< Pre-masked head weights, per vcol.
};

struct WavefrontConfig {
  int num_samples = 200;  ///< Progressive-sampling lanes per query.
  int wave_width = 8;     ///< Queries advanced together per wave.
};

/// Runs progressive sampling for all queries, `wave_width` queries at a time,
/// every step batched through one backend forward. `rngs[i]` must be the
/// stream the per-query sampler would use for `targets[i]`; element i of the
/// result is then bit-identical to
/// ProgressiveSample(model, targets[i], num_samples, &rngs[i]) when `backend`
/// is a FrozenMadeBackend over the same model. Waves are independent and may
/// run on pool workers; results do not depend on the thread count.
std::vector<double> WavefrontSampleSelectivities(const InferenceBackend& backend,
                                                 std::span<const QueryTargets> targets,
                                                 std::span<util::Rng> rngs,
                                                 const WavefrontConfig& config);

}  // namespace uae::core
