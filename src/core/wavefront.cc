#include "core/wavefront.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <unordered_map>

#include "util/mathutil.h"
#include "util/threadpool.h"

namespace uae::core {

namespace {

/// W ⊙ M, the same elementwise product MaskedMatMul forms on every call.
nn::Mat PreMask(const nn::MaskedLinear& layer) {
  const nn::Mat& w = layer.weight()->value();
  nn::Mat wm(w.rows(), w.cols());
  nn::MulElem(w, layer.mask(), &wm);
  return wm;
}

size_t MatBytes(const nn::Mat& m) { return m.size() * sizeof(float); }

/// Bitwise content hash of one lane input row (8-byte chunks through
/// SplitMix64). Equal sampled prefixes produce bitwise-equal rows, so hashing
/// raw bytes is exact up to collisions, which the caller resolves by memcmp.
uint64_t HashRow(const float* p, int n) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(p);
  const size_t len = sizeof(float) * static_cast<size_t>(n);
  uint64_t h = 0x9e3779b97f4a7c15ull;
  uint64_t chunk = 0;
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::memcpy(&chunk, bytes + i, 8);
    h = util::SplitMix64(h ^ chunk);
  }
  if (i < len) {
    chunk = 0;
    std::memcpy(&chunk, bytes + i, len - i);
    h = util::SplitMix64(h ^ chunk);
  }
  return h;
}

}  // namespace

InferenceBackend::InferenceBackend(const MadeModel& model,
                                   const data::VirtualSchema* schema)
    : schema_(schema != nullptr ? schema : &model.schema()) {
  const int n_vc = model.num_vcols();
  encoders_.reserve(static_cast<size_t>(n_vc));
  offsets_.reserve(static_cast<size_t>(n_vc));
  widths_.reserve(static_cast<size_t>(n_vc));
  for (int vc = 0; vc < n_vc; ++vc) {
    encoders_.push_back(model.encoder(vc)->value());
    offsets_.push_back(input_width_);
    widths_.push_back(model.encoded_width(vc));
    input_width_ += model.encoded_width(vc);
  }
  b_in_ = model.input_layer().bias()->value();
  hidden_ = b_in_.cols();
  b1_.reserve(model.blocks().size());
  b2_.reserve(model.blocks().size());
  for (const auto& block : model.blocks()) {
    b1_.push_back(block.fc1().bias()->value());
    b2_.push_back(block.fc2().bias()->value());
  }
  head_b_.reserve(static_cast<size_t>(n_vc));
  for (int vc = 0; vc < n_vc; ++vc) head_b_.push_back(model.head(vc).bias()->value());
}

FrozenMadeBackend::FrozenMadeBackend(const MadeModel& model,
                                     const data::VirtualSchema* schema)
    : InferenceBackend(model, schema) {
  w_in_ = PreMask(model.input_layer());
  w1_.reserve(model.blocks().size());
  w2_.reserve(model.blocks().size());
  for (const auto& block : model.blocks()) {
    w1_.push_back(PreMask(block.fc1()));
    w2_.push_back(PreMask(block.fc2()));
  }
  head_w_.reserve(static_cast<size_t>(model.num_vcols()));
  for (int vc = 0; vc < model.num_vcols(); ++vc) {
    head_w_.push_back(PreMask(model.head(vc)));
  }
}

void FrozenMadeBackend::ForwardProbs(int vc, const nn::Mat& x,
                                     WavefrontWorkspace* ws) const {
  // Kernel-for-kernel replay of MadeModel::Trunk + HeadProbs (see layers.cc /
  // ops.cc): same GEMMs over the same pre-masked weights, same bias/relu
  // epilogues, same h + t residual order — hence bitwise-equal probs rows.
  const int m = x.rows();
  EnsureZeroed(&ws->h, m, hidden_);
  nn::GemmAccum(x, w_in_, &ws->h);
  nn::AddBiasRows(ws->h, b_in_, &ws->h);
  for (size_t blk = 0; blk < w1_.size(); ++blk) {
    EnsureShape(&ws->t0, m, hidden_);
    std::memcpy(ws->t0.data(), ws->h.data(), MatBytes(ws->h));
    nn::ReluInplace(&ws->t0);
    EnsureZeroed(&ws->t1, m, hidden_);
    nn::GemmAccum(ws->t0, w1_[blk], &ws->t1);
    nn::AddBiasReluRows(ws->t1, b1_[blk], &ws->t1);
    EnsureZeroed(&ws->t2, m, hidden_);
    nn::GemmAccum(ws->t1, w2_[blk], &ws->t2);
    nn::AddBiasRows(ws->t2, b2_[blk], &ws->t2);
    float* h = ws->h.data();
    const float* t = ws->t2.data();
    for (size_t i = 0; i < ws->h.size(); ++i) h[i] += t[i];
  }
  nn::ReluInplace(&ws->h);
  const nn::Mat& hw = head_w_[static_cast<size_t>(vc)];
  EnsureZeroed(&ws->probs, m, hw.cols());
  nn::GemmAccum(ws->h, hw, &ws->probs);
  nn::AddBiasRows(ws->probs, head_b_[static_cast<size_t>(vc)], &ws->probs);
  nn::SoftmaxRowsInplace(&ws->probs);
}

size_t FrozenMadeBackend::SizeBytes() const {
  size_t total = MatBytes(w_in_) + MatBytes(b_in_);
  for (const auto& m : encoders_) total += MatBytes(m);
  for (const auto& m : w1_) total += MatBytes(m);
  for (const auto& m : w2_) total += MatBytes(m);
  for (const auto& m : b1_) total += MatBytes(m);
  for (const auto& m : b2_) total += MatBytes(m);
  for (const auto& m : head_w_) total += MatBytes(m);
  for (const auto& m : head_b_) total += MatBytes(m);
  return total;
}

namespace {

/// Per-query lane state inside one wave.
struct LaneBlock {
  const QueryTargets* targets = nullptr;
  util::Rng* rng = nullptr;
  double* out = nullptr;
  std::vector<int> alive;              ///< Live lane ids, ascending.
  std::vector<double> p;               ///< Per-lane density products.
  std::vector<DigitRangeState> states;
  int row0 = 0;                        ///< First row of this query in X.
};

}  // namespace

std::vector<double> WavefrontSampleSelectivities(const InferenceBackend& backend,
                                                 std::span<const QueryTargets> targets,
                                                 std::span<util::Rng> rngs,
                                                 const WavefrontConfig& config) {
  const size_t n = targets.size();
  UAE_CHECK_EQ(rngs.size(), n);
  std::vector<double> out(n, 1.0);
  if (n == 0) return out;
  const int s = config.num_samples;
  UAE_CHECK_GT(s, 0);
  const size_t width = static_cast<size_t>(std::max(1, config.wave_width));
  const data::VirtualSchema& vs = backend.schema();
  const int n_vc = backend.num_vcols();
  const int iw = backend.input_width();
  for (const QueryTargets& t : targets) {
    UAE_CHECK_EQ(t.cols.size(), static_cast<size_t>(vs.num_original()));
  }

  // Wildcard prototype row: every vcol at its wildcard token. Lanes start
  // here and overwrite one column slice per sampled step, which reproduces
  // the per-query sampler's WildcardInput/EncodeHard input evolution.
  std::vector<float> proto(static_cast<size_t>(iw));
  for (int vc = 0; vc < n_vc; ++vc) {
    std::memcpy(proto.data() + backend.col_offset(vc),
                backend.EncoderRow(vc, vs.vcol(vc).domain),
                sizeof(float) * static_cast<size_t>(backend.col_width(vc)));
  }

  const size_t num_waves = (n + width - 1) / width;
  auto run_waves = [&](size_t w_lo, size_t w_hi) {
    WavefrontWorkspace ws;
    nn::Mat x_rows;  // Lane input rows for the wave, [wave_queries * s, iw].
    // Prefix-dedup scratch, hoisted across waves of this chunk.
    std::vector<const float*> unique_src;
    std::vector<int> lane_uid;
    std::unordered_map<uint64_t, std::vector<int>> dedup;
    for (size_t w = w_lo; w < w_hi; ++w) {
      const size_t q0 = w * width;
      const size_t q1 = std::min(n, q0 + width);
      const int wq = static_cast<int>(q1 - q0);
      EnsureShape(&x_rows, wq * s, iw);
      for (int r = 0; r < x_rows.rows(); ++r) {
        std::memcpy(x_rows.row(r), proto.data(),
                    sizeof(float) * static_cast<size_t>(iw));
      }
      std::vector<LaneBlock> wave(static_cast<size_t>(wq));
      for (size_t q = q0; q < q1; ++q) {
        LaneBlock& b = wave[q - q0];
        b.targets = &targets[q];
        b.rng = &rngs[q];
        b.out = &out[q];
        b.alive.resize(static_cast<size_t>(s));
        std::iota(b.alive.begin(), b.alive.end(), 0);
        b.p.assign(static_cast<size_t>(s), 1.0);
        b.states.assign(static_cast<size_t>(s),
                        DigitRangeState(vs.num_original()));
        b.row0 = static_cast<int>(q - q0) * s;
      }

      for (int vc = 0; vc < n_vc; ++vc) {
        const data::VirtualColumn& v = vs.vcol(vc);
        auto participates = [&](const LaneBlock& b) {
          // Wildcard skipping (§4.6) — plus early exit for fully-dead queries.
          return !b.targets->cols[static_cast<size_t>(v.orig_col)].IsWildcard() &&
                 !b.alive.empty();
        };
        int m = 0;
        for (const LaneBlock& b : wave) {
          if (participates(b)) m += static_cast<int>(b.alive.size());
        }
        if (m == 0) continue;

        // Gather live lanes (query order, lanes ascending), deduplicating
        // bitwise-identical input rows across the whole wavefront: MADE's
        // autoregressive masking makes the probs row a pure function of the
        // input row, and the kernels are row-deterministic (output rows do
        // not depend on batch composition), so lanes sharing a sampled
        // prefix — all of them at a query's first constrained column —
        // share one forward row with bitwise-equal results. This is where
        // the wavefront's throughput comes from: the batched forward runs
        // over unique prefixes, not raw lanes.
        const size_t row_bytes = sizeof(float) * static_cast<size_t>(iw);
        unique_src.clear();
        lane_uid.clear();
        dedup.clear();
        for (const LaneBlock& b : wave) {
          if (!participates(b)) continue;
          for (int lane : b.alive) {
            const float* src = x_rows.row(b.row0 + lane);
            auto& bucket = dedup[HashRow(src, iw)];
            int uid = -1;
            for (int cand : bucket) {
              if (std::memcmp(unique_src[static_cast<size_t>(cand)], src,
                              row_bytes) == 0) {
                uid = cand;
                break;
              }
            }
            if (uid < 0) {
              uid = static_cast<int>(unique_src.size());
              unique_src.push_back(src);
              bucket.push_back(uid);
            }
            lane_uid.push_back(uid);
          }
        }
        EnsureShape(&ws.x, static_cast<int>(unique_src.size()), iw);
        for (size_t u = 0; u < unique_src.size(); ++u) {
          std::memcpy(ws.x.row(static_cast<int>(u)), unique_src[u], row_bytes);
        }
        backend.ForwardProbs(vc, ws.x, &ws);

        size_t pos = 0;
        for (LaneBlock& b : wave) {
          if (!participates(b)) continue;
          const ColumnTarget& target =
              b.targets->cols[static_cast<size_t>(v.orig_col)];
          size_t keep = 0;
          for (size_t ai = 0; ai < b.alive.size(); ++ai) {
            const int lane = b.alive[ai];
            LaneStep step =
                SampleLane(vs, vc, target, b.states[static_cast<size_t>(lane)],
                           ws.probs.row(lane_uid[pos++]), b.rng);
            b.p[static_cast<size_t>(lane)] *= step.mass;
            if (step.mass <= 0.0) {
              // Zero-mass early exit: the lane leaves the wavefront.
              b.p[static_cast<size_t>(lane)] = 0.0;
              continue;
            }
            b.alive[keep++] = lane;
            if (v.num_subs > 1 && target.kind == ColumnTarget::Kind::kRange) {
              b.states[static_cast<size_t>(lane)].Advance(vs, vc, target.lo,
                                                          target.hi, step.pick);
            }
            std::memcpy(x_rows.row(b.row0 + lane) + backend.col_offset(vc),
                        backend.EncoderRow(vc, step.pick),
                        sizeof(float) * static_cast<size_t>(backend.col_width(vc)));
          }
          b.alive.resize(keep);
        }
      }

      for (LaneBlock& b : wave) {
        double total = 0.0;
        for (double pv : b.p) total += pv;
        *b.out = total / static_cast<double>(s);
      }
    }
  };

  if (num_waves > 1) {
    util::ParallelFor(0, num_waves, run_waves, /*min_parallel_size=*/1);
  } else {
    run_waves(0, num_waves);
  }
  return out;
}

}  // namespace uae::core
