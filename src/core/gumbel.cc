#include "core/gumbel.h"

#include <algorithm>
#include <cmath>

#include "util/common.h"

namespace uae::core {

std::vector<float> GsSample(const std::vector<float>& pi, float tau, util::Rng* rng) {
  UAE_CHECK(!pi.empty());
  UAE_CHECK_GT(tau, 0.f);
  std::vector<float> h(pi.size());
  float mx = -1e30f;
  for (size_t j = 0; j < pi.size(); ++j) {
    float logp = pi[j] > 0.f ? std::log(pi[j]) : -1e9f;
    h[j] = (logp + static_cast<float>(rng->Gumbel())) / tau;
    mx = std::max(mx, h[j]);
  }
  float sum = 0.f;
  for (float& v : h) {
    v = std::exp(v - mx);
    sum += v;
  }
  for (float& v : h) v /= sum;
  return h;
}

void FillGumbelNoise(nn::Mat* out, util::Rng* rng) {
  float* d = out->data();
  for (size_t i = 0; i < out->size(); ++i) {
    d[i] = static_cast<float>(rng->Gumbel());
  }
}

}  // namespace uae::core
