// The Gumbel-Softmax trick (Algorithm 1 / Eq. 8-10): draws a *differentiable*
// relaxed one-hot sample from a categorical distribution. The standalone
// helper here is used by tests; DPS builds the same computation with graph
// ops so gradients flow.
#pragma once

#include <vector>

#include "nn/mat.h"
#include "util/rng.h"

namespace uae::core {

/// Relaxed one-hot sample from unnormalized class probabilities `pi`:
/// y = softmax((log pi + g) / tau), g_j ~ Gumbel(0,1).
std::vector<float> GsSample(const std::vector<float>& pi, float tau, util::Rng* rng);

/// Fills `out` [rows x cols] with i.i.d. Gumbel(0,1) noise (Eq. 9).
void FillGumbelNoise(nn::Mat* out, util::Rng* rng);

}  // namespace uae::core
