// Progressive sampling (§4.2, following Naru [78]): Monte-Carlo estimation of
// a range query's selectivity by sampling each attribute in order from the
// model's conditional distribution restricted to the query region, multiplying
// the in-region probability masses. Runs with autograd disabled.
#pragma once

#include "core/made.h"
#include "core/targets.h"
#include "util/rng.h"

namespace uae::core {

/// Estimated selectivity of the query described by `targets` using
/// `num_samples` progressive samples. Unbiased for range queries.
double ProgressiveSample(const MadeModel& model, const QueryTargets& targets,
                         int num_samples, util::Rng* rng);

/// Point estimate plus Monte-Carlo diagnostics of the progressive-sampling
/// estimator: the standard error of the mean over the per-sample density
/// estimates (selectivity units).
struct PsEstimate {
  double selectivity = 0.0;
  double std_error = 0.0;   ///< sqrt(Var(p_s)/S); 0 for wildcard-only queries.
  int samples = 0;
};
PsEstimate ProgressiveSampleWithError(const MadeModel& model,
                                      const QueryTargets& targets, int num_samples,
                                      util::Rng* rng);

/// Draws `count` tuples from the learned joint distribution (unconstrained
/// ancestral sampling) and returns original-column codes per tuple. This is
/// the generative capability highlighted for UAE-Q (§6: database generation).
std::vector<std::vector<int32_t>> SampleTuples(const MadeModel& model, int count,
                                               util::Rng* rng);

/// Shared helper: fills the per-code weight vector w (length vdomain(vc)) and
/// optionally log-weights (0 allowed / -1e9 excluded / log w for weights) for
/// one virtual column under a target, honoring digit-range state on
/// factorized columns.
void FillColumnWeights(const data::VirtualSchema& schema, int vc,
                       const ColumnTarget& target, const DigitRangeState& state,
                       float* w, float* logw);

/// One lane-step of progressive sampling: the in-region mass of `probs_row`
/// under the target and, when the mass is positive, a code drawn from the
/// restricted distribution (one Uniform consumed; none when the lane dies).
struct LaneStep {
  double mass = 0.0;   ///< sum over codes of float(probs * weight), in order.
  int32_t pick = 0;    ///< Sampled code; meaningful only when mass > 0.
};

/// Fused FillColumnWeights + mass accumulation + Rng::CategoricalF for one
/// sample lane. Bitwise-equivalent to the unfused sequence (same float
/// products, same double accumulation order, same single Uniform(0, mass)
/// draw and first-crossing scan, same degenerate fallback of vdomain(vc)-1)
/// while touching only the target's support for range targets — this is the
/// shared sampling step that keeps the per-query and wavefront samplers
/// bit-identical by construction.
LaneStep SampleLane(const data::VirtualSchema& schema, int vc,
                    const ColumnTarget& target, const DigitRangeState& state,
                    const float* probs_row, util::Rng* rng);

}  // namespace uae::core
