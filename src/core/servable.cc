#include "core/servable.h"

#include "util/common.h"
#include "workload/join_workload.h"

namespace uae::core {

// Defaults for models without a join universe: reaching these is a caller
// bug (the serving layer checks SupportsJoinQueries() before routing).
double ServableModel::EstimateJoinCard(const workload::JoinQuery& query) const {
  (void)query;
  UAE_CHECK(false) << "EstimateJoinCard on a model without join support";
  return 0.0;
}

std::vector<double> ServableModel::EstimateJoinCards(
    std::span<const workload::JoinQuery> queries) const {
  (void)queries;
  UAE_CHECK(false) << "EstimateJoinCards on a model without join support";
  return {};
}

}  // namespace uae::core
