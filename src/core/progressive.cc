#include "core/progressive.h"

#include <algorithm>
#include <cmath>

#include "nn/kernels.h"

namespace uae::core {

void FillColumnWeights(const data::VirtualSchema& schema, int vc,
                       const ColumnTarget& target, const DigitRangeState& state,
                       float* w, float* logw) {
  const data::VirtualColumn& v = schema.vcol(vc);
  const int32_t dom = v.domain;
  auto set_mask = [&](auto&& allowed) {
    for (int32_t c = 0; c < dom; ++c) {
      bool a = allowed(c);
      w[c] = a ? 1.f : 0.f;
      if (logw != nullptr) logw[c] = a ? 0.f : -1e9f;
    }
  };
  switch (target.kind) {
    case ColumnTarget::Kind::kWildcard:
      set_mask([](int32_t) { return true; });
      break;
    case ColumnTarget::Kind::kRange: {
      if (v.num_subs == 1) {
        set_mask([&](int32_t c) { return c >= target.lo && c <= target.hi; });
      } else {
        int32_t dlo = 0, dhi = 0;
        state.DigitBounds(schema, vc, target.lo, target.hi, &dlo, &dhi);
        set_mask([&](int32_t c) { return c >= dlo && c <= dhi; });
      }
      break;
    }
    case ColumnTarget::Kind::kMask:
      UAE_DCHECK(v.num_subs == 1);
      UAE_DCHECK(target.mask.size() == static_cast<size_t>(dom));
      set_mask([&](int32_t c) { return target.mask[static_cast<size_t>(c)] != 0; });
      break;
    case ColumnTarget::Kind::kWeights:
      UAE_DCHECK(v.num_subs == 1);
      UAE_DCHECK(target.weights.size() == static_cast<size_t>(dom));
      for (int32_t c = 0; c < dom; ++c) {
        float wt = target.weights[static_cast<size_t>(c)];
        w[c] = wt;
        if (logw != nullptr) logw[c] = wt > 0.f ? std::log(wt) : -1e9f;
      }
      break;
  }
}

namespace {

/// Shared core: runs the per-attribute sampling loop and returns the
/// per-sample density estimates p_s (Alg. 2 lines 2-12, hard sampling).
std::vector<double> RunProgressiveSamples(const MadeModel& model,
                                          const QueryTargets& targets,
                                          int num_samples, util::Rng* rng);

/// Mass + categorical pick over the support [lo, hi] with a per-code weight
/// functor. Bitwise-mirrors the unfused FillColumnWeights + CategoricalF
/// sequence: products rounded to float before the double accumulation (in
/// ascending code order — codes outside the support contribute exactly +0
/// there, so restricting the scan changes nothing), one Uniform(0, mass)
/// draw, first-crossing selection, dom-1 fallback.
template <typename WeightFn>
LaneStep MassAndPick(const float* pr, int32_t dom, int32_t lo, int32_t hi,
                     const WeightFn& weight, util::Rng* rng) {
  LaneStep step;
  double mass = 0.0;
  for (int32_t c = lo; c <= hi; ++c) {
    const float prod = pr[c] * weight(c);
    mass += prod;
  }
  step.mass = mass;
  if (mass <= 0.0) return step;  // Dead lane: CategoricalF is never reached.
  const double r = rng->Uniform(0.0, mass);
  double acc = 0.0;
  for (int32_t c = lo; c <= hi; ++c) {
    const float prod = pr[c] * weight(c);
    acc += prod;
    if (r < acc) {
      step.pick = c;
      return step;
    }
  }
  step.pick = dom - 1;  // CategoricalF's rounding fallback.
  return step;
}

}  // namespace

LaneStep SampleLane(const data::VirtualSchema& schema, int vc,
                    const ColumnTarget& target, const DigitRangeState& state,
                    const float* probs_row, util::Rng* rng) {
  const data::VirtualColumn& v = schema.vcol(vc);
  const int32_t dom = v.domain;
  auto one = [](int32_t) { return 1.f; };
  switch (target.kind) {
    case ColumnTarget::Kind::kWildcard:
      // Unrestricted draw (the SampleTuples case); samplers skip wildcards.
      return MassAndPick(probs_row, dom, 0, dom - 1, one, rng);
    case ColumnTarget::Kind::kRange: {
      int32_t lo = target.lo, hi = target.hi;
      if (v.num_subs > 1) {
        state.DigitBounds(schema, vc, target.lo, target.hi, &lo, &hi);
      }
      lo = std::max<int32_t>(lo, 0);
      hi = std::min<int32_t>(hi, dom - 1);
      if (lo > hi) return LaneStep{};  // Empty support: zero mass, no draw.
      return MassAndPick(probs_row, dom, lo, hi, one, rng);
    }
    case ColumnTarget::Kind::kMask:
      UAE_DCHECK(target.mask.size() == static_cast<size_t>(dom));
      return MassAndPick(
          probs_row, dom, 0, dom - 1,
          [&](int32_t c) {
            return target.mask[static_cast<size_t>(c)] != 0 ? 1.f : 0.f;
          },
          rng);
    case ColumnTarget::Kind::kWeights:
      UAE_DCHECK(target.weights.size() == static_cast<size_t>(dom));
      return MassAndPick(
          probs_row, dom, 0, dom - 1,
          [&](int32_t c) { return target.weights[static_cast<size_t>(c)]; }, rng);
  }
  return LaneStep{};
}

double ProgressiveSample(const MadeModel& model, const QueryTargets& targets,
                         int num_samples, util::Rng* rng) {
  std::vector<double> p = RunProgressiveSamples(model, targets, num_samples, rng);
  double total = 0.0;
  for (double v : p) total += v;
  return total / static_cast<double>(p.size());
}

PsEstimate ProgressiveSampleWithError(const MadeModel& model,
                                      const QueryTargets& targets, int num_samples,
                                      util::Rng* rng) {
  std::vector<double> p = RunProgressiveSamples(model, targets, num_samples, rng);
  PsEstimate est;
  est.samples = static_cast<int>(p.size());
  double total = 0.0;
  for (double v : p) total += v;
  est.selectivity = total / static_cast<double>(p.size());
  double var = 0.0;
  for (double v : p) var += (v - est.selectivity) * (v - est.selectivity);
  if (p.size() > 1) {
    var /= static_cast<double>(p.size() - 1);
    est.std_error = std::sqrt(var / static_cast<double>(p.size()));
  }
  return est;
}

namespace {

std::vector<double> RunProgressiveSamples(const MadeModel& model,
                                          const QueryTargets& targets,
                                          int num_samples, util::Rng* rng) {
  nn::NoGradGuard no_grad;
  const data::VirtualSchema& vs = model.schema();
  const int n_vc = model.num_vcols();
  const int s = num_samples;
  UAE_CHECK_GT(s, 0);
  UAE_CHECK_EQ(targets.cols.size(), static_cast<size_t>(vs.num_original()));

  std::vector<nn::Tensor> inputs(static_cast<size_t>(n_vc));
  for (int vc = 0; vc < n_vc; ++vc) inputs[static_cast<size_t>(vc)] = model.WildcardInput(vc, s);

  std::vector<double> p(static_cast<size_t>(s), 1.0);
  std::vector<uint8_t> dead(static_cast<size_t>(s), 0);
  std::vector<DigitRangeState> states(static_cast<size_t>(s),
                                      DigitRangeState(vs.num_original()));

  for (int vc = 0; vc < n_vc; ++vc) {
    const data::VirtualColumn& v = vs.vcol(vc);
    const ColumnTarget& target = targets.cols[static_cast<size_t>(v.orig_col)];
    if (target.IsWildcard()) continue;  // Wildcard skipping (§4.6).

    nn::Tensor h = model.Trunk(inputs);
    nn::Tensor probs_t = model.HeadProbs(vc, h);  // softmax in place, no copy
    const nn::Mat& probs = probs_t->value();

    std::vector<int32_t> sampled(static_cast<size_t>(s), 0);
    for (int r = 0; r < s; ++r) {
      if (dead[static_cast<size_t>(r)]) continue;
      LaneStep step = SampleLane(vs, vc, target, states[static_cast<size_t>(r)],
                                 probs.row(r), rng);
      p[static_cast<size_t>(r)] *= step.mass;
      if (step.mass <= 0.0) {
        dead[static_cast<size_t>(r)] = 1;
        p[static_cast<size_t>(r)] = 0.0;
        continue;
      }
      sampled[static_cast<size_t>(r)] = step.pick;
      if (v.num_subs > 1 && target.kind == ColumnTarget::Kind::kRange) {
        states[static_cast<size_t>(r)].Advance(vs, vc, target.lo, target.hi,
                                               step.pick);
      }
    }
    inputs[static_cast<size_t>(vc)] = model.EncodeHard(vc, sampled);
  }
  return p;
}

}  // namespace

std::vector<std::vector<int32_t>> SampleTuples(const MadeModel& model, int count,
                                               util::Rng* rng) {
  nn::NoGradGuard no_grad;
  const data::VirtualSchema& vs = model.schema();
  const int n_vc = model.num_vcols();
  std::vector<nn::Tensor> inputs(static_cast<size_t>(n_vc));
  for (int vc = 0; vc < n_vc; ++vc) {
    inputs[static_cast<size_t>(vc)] = model.WildcardInput(vc, count);
  }
  std::vector<std::vector<int32_t>> vcodes(
      static_cast<size_t>(n_vc), std::vector<int32_t>(static_cast<size_t>(count)));
  for (int vc = 0; vc < n_vc; ++vc) {
    nn::Tensor h = model.Trunk(inputs);
    nn::Tensor probs_t = model.HeadProbs(vc, h);
    const nn::Mat& probs = probs_t->value();
    std::vector<int32_t> sampled(static_cast<size_t>(count));
    for (int r = 0; r < count; ++r) {
      sampled[static_cast<size_t>(r)] = static_cast<int32_t>(rng->CategoricalF(
          probs.row(r), static_cast<size_t>(model.vdomain(vc))));
    }
    vcodes[static_cast<size_t>(vc)] = sampled;
    inputs[static_cast<size_t>(vc)] = model.EncodeHard(vc, sampled);
  }
  // Re-assemble original-column codes per tuple.
  std::vector<std::vector<int32_t>> tuples(
      static_cast<size_t>(count),
      std::vector<int32_t>(static_cast<size_t>(vs.num_original()), 0));
  for (int oc = 0; oc < vs.num_original(); ++oc) {
    const auto& vlist = vs.VirtualsOf(oc);
    for (int r = 0; r < count; ++r) {
      if (vlist.size() == 1) {
        tuples[static_cast<size_t>(r)][static_cast<size_t>(oc)] =
            vcodes[static_cast<size_t>(vlist[0])][static_cast<size_t>(r)];
      } else {
        std::vector<int32_t> digits;
        digits.reserve(vlist.size());
        for (int vc : vlist) {
          digits.push_back(vcodes[static_cast<size_t>(vc)][static_cast<size_t>(r)]);
        }
        tuples[static_cast<size_t>(r)][static_cast<size_t>(oc)] =
            vs.Compose(oc, digits);
      }
    }
  }
  return tuples;
}

}  // namespace uae::core
