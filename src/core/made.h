// ResMADE — the deep autoregressive density model of §4.2 ([53] architecture):
// a masked MLP with residual blocks and one output head per (virtual) column,
// factorizing P(x) = prod_i P(x_i | x_<i) without independence assumptions.
//
// The model operates over the VirtualSchema (original columns possibly split
// into digit sub-columns). Every virtual column has an encoding matrix with
// domain+1 rows — the last row is the wildcard token for unqueried columns
// (§4.6) — which is constant for binary/one-hot encodings and trainable for
// embeddings (the large-NDV option of §4.6).
#pragma once

#include <cstdint>
#include <vector>

#include "data/encoding.h"
#include "data/factorization.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "util/rng.h"

namespace uae::core {

struct MadeConfig {
  int hidden = 64;                    ///< Hidden width (paper: 128).
  int blocks = 1;                     ///< Residual blocks (paper: 2x128 MLP).
  data::EncoderKind encoder = data::EncoderKind::kBinary;
  int embed_dim = 16;                 ///< Used when encoder == kEmbedding.
  uint64_t seed = 1;
};

class MadeModel {
 public:
  /// `schema` must outlive the model.
  MadeModel(const data::VirtualSchema* schema, const MadeConfig& config);

  int num_vcols() const { return schema_->num_virtual(); }
  int32_t vdomain(int vc) const { return schema_->vcol(vc).domain; }
  const data::VirtualSchema& schema() const { return *schema_; }
  const MadeConfig& config() const { return config_; }

  /// Encodes hard codes (wildcard = vdomain(vc)) for one virtual column.
  nn::Tensor EncodeHard(int vc, const std::vector<int32_t>& codes) const;
  /// Encodes a relaxed one-hot y [batch, vdomain] — the DPS soft input.
  nn::Tensor EncodeSoft(int vc, const nn::Tensor& y) const;
  /// Wildcard-token input rows for one virtual column.
  nn::Tensor WildcardInput(int vc, int batch) const;

  /// Trunk forward: per-vcol inputs -> final hidden activation [batch, hidden].
  nn::Tensor Trunk(const std::vector<nn::Tensor>& per_vcol_inputs) const;
  /// Logits of the head for virtual column vc: [batch, vdomain(vc)].
  nn::Tensor HeadLogits(int vc, const nn::Tensor& trunk_out) const;
  /// Head probabilities, inference only: softmax applied in place over the
  /// head logits so the progressive-sampling hot path does one fewer pass
  /// (and one fewer allocation) per sampled column. Requires NoGradGuard.
  nn::Tensor HeadProbs(int vc, const nn::Tensor& trunk_out) const;

  /// Unsupervised loss L_data (Eq. 2): sum over columns of the mean
  /// cross-entropy, with `input_codes` possibly wildcarded (§4.6 wildcard
  /// skipping) while `target_codes` carry the true values.
  nn::Tensor DataLoss(const std::vector<std::vector<int32_t>>& input_codes,
                      const std::vector<std::vector<int32_t>>& target_codes) const;

  std::vector<nn::NamedParam> Parameters() const;
  size_t SizeBytes() const;

  // Read-only structure access for frozen inference planes (core/wavefront,
  // core/quant): they snapshot weights/encoders once instead of walking the
  // autograd graph per forward.
  const nn::Tensor& encoder(int vc) const { return encoders_[static_cast<size_t>(vc)]; }
  int encoded_width(int vc) const { return widths_[static_cast<size_t>(vc)]; }
  const nn::MaskedLinear& input_layer() const { return input_layer_; }
  const std::vector<nn::MadeResidualBlock>& blocks() const { return blocks_; }
  const nn::MaskedLinear& head(int vc) const { return heads_[static_cast<size_t>(vc)]; }

 private:
  const data::VirtualSchema* schema_;
  MadeConfig config_;
  std::vector<nn::Tensor> encoders_;   ///< Per vcol, (domain+1) x width.
  std::vector<int> widths_;            ///< Encoded width per vcol.
  std::vector<int> hidden_degrees_;
  nn::MaskedLinear input_layer_;
  std::vector<nn::MadeResidualBlock> blocks_;
  std::vector<nn::MaskedLinear> heads_;
  bool trainable_encoders_ = false;
};

}  // namespace uae::core
