// Query targets: the per-original-column sampling directives consumed by
// progressive sampling (inference) and DPS (training).
//
// A column is either unconstrained (wildcard-skipped, §4.6), restricted to an
// allowed set (range / arbitrary mask), or — for join estimation over the
// full-outer-join universe — carries a *weight vector* w(v) = 1/F implementing
// NeuroCard-style fanout downscaling. The "zero-out probabilities outside R"
// step of Alg. 2 (line 7) is the special case w(v) = 1(v in R).
#pragma once

#include <cstdint>
#include <vector>

#include "data/factorization.h"
#include "data/imdb_star.h"
#include "workload/join_workload.h"
#include "workload/query.h"

namespace uae::core {

struct ColumnTarget {
  enum class Kind {
    kWildcard,  ///< Unconstrained: skipped entirely.
    kRange,     ///< Codes in [lo, hi] — the only kind valid on factorized cols.
    kMask,      ///< Arbitrary allowed set (!=, IN).
    kWeights,   ///< Per-code weights (join fanout downscaling).
  };
  Kind kind = Kind::kWildcard;
  int32_t lo = 0;
  int32_t hi = -1;
  std::vector<uint8_t> mask;    ///< kMask: length = original domain.
  std::vector<float> weights;   ///< kWeights: length = original domain.

  bool IsWildcard() const { return kind == Kind::kWildcard; }
};

/// Per-original-column targets for one query.
struct QueryTargets {
  std::vector<ColumnTarget> cols;
};

/// Compiles a single-table query. Non-contiguous constraints (!=, IN) on
/// factorized columns are unsupported (checked).
QueryTargets BuildTargets(const workload::Query& query, const data::Table& table,
                          const data::VirtualSchema& schema);

/// Compiles a join query over the universe: predicates + indicator constraints
/// from `query.pred`, plus 1/F weight targets on the fanout columns of tables
/// outside the join subset.
QueryTargets BuildJoinTargets(const workload::JoinQuery& query,
                              const data::JoinUniverse& uni,
                              const data::VirtualSchema& schema);

/// Tracks tight-lower/tight-upper digit state for factorized range targets
/// during sequential sampling. One instance per sample row.
class DigitRangeState {
 public:
  explicit DigitRangeState(int num_original_cols)
      : tight_lo_(static_cast<size_t>(num_original_cols), 1),
        tight_hi_(static_cast<size_t>(num_original_cols), 1) {}

  /// Allowed digit interval of virtual column `vc` under a kRange target.
  void DigitBounds(const data::VirtualSchema& schema, int vc, int32_t range_lo,
                   int32_t range_hi, int32_t* digit_lo, int32_t* digit_hi) const;

  /// Updates tightness after sampling `digit` for virtual column `vc`.
  void Advance(const data::VirtualSchema& schema, int vc, int32_t range_lo,
               int32_t range_hi, int32_t digit);

 private:
  std::vector<uint8_t> tight_lo_;
  std::vector<uint8_t> tight_hi_;
};

}  // namespace uae::core
