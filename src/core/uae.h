// UAE — the unified deep autoregressive estimator (§4). One ResMADE model,
// three training modes sharing the same parameters:
//
//   * UAE-D  (TrainData...)   : unsupervised L_data only — equivalent to Naru.
//   * UAE-Q  (TrainQuery...)  : supervised L_query via DPS only.
//   * UAE    (TrainHybrid...) : L = L_data + lambda * L_query  (Alg. 3).
//
// The same object also ingests incremental data (more L_data steps on the new
// tuples) and incremental query workloads (more L_query steps) — §4.5 — and
// supports join cardinalities when constructed over a JoinUniverse (§4.6).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>

#include "core/dps.h"
#include "core/made.h"
#include "core/progressive.h"
#include "core/servable.h"
#include "core/targets.h"
#include "data/imdb_star.h"
#include "data/table.h"
#include "nn/optimizer.h"
#include "util/status.h"
#include "workload/join_workload.h"
#include "workload/query.h"

namespace uae::core {

class FrozenMadeBackend;

struct UaeConfig {
  // Model architecture.
  int hidden = 64;
  int blocks = 1;
  data::EncoderKind encoder = data::EncoderKind::kBinary;
  int embed_dim = 16;
  int32_t factor_threshold = 2048;  ///< Domains above this are factorized.
  int factor_bits = 8;

  // Optimization.
  float lr = 2e-3f;
  int data_batch = 512;
  /// Wildcard skipping (§4.6) is always on, Naru-style: per training row the
  /// number of wildcarded columns is drawn uniformly in [0, n]. This field is
  /// kept for API stability; it no longer changes behaviour.
  float wildcard_prob = 0.25f;
  float grad_clip = 8.f;

  // Supervised part (UAE-Q / hybrid).
  int dps_samples = 32;    ///< S (paper: 200; scaled for the CPU substrate).
  int query_batch = 16;    ///< Queries per DPS step.
  float tau = 1.0f;        ///< Gumbel-Softmax temperature.
  float lambda = 1e-4f;    ///< Trade-off hyper-parameter (Eq. 11).

  // Inference.
  int ps_samples = 200;    ///< Progressive-sampling estimate samples.
  /// Queries advanced together by the wavefront sampler in the batched
  /// estimate paths. Any width produces bit-identical estimates (per-query
  /// RNG purity); the width only trades GEMM batch size against memory.
  int wavefront_width = 8;

  uint64_t seed = 1;
};

/// Per-epoch progress report passed to training callbacks.
struct TrainStats {
  int epoch = 0;
  double data_loss = 0.0;
  double query_loss = 0.0;
  double seconds = 0.0;
};
using TrainCallback = std::function<void(const TrainStats&)>;

class Uae : public ServableModel {
 public:
  /// Single-table estimator over `table` (must outlive the estimator).
  Uae(const data::Table& table, const UaeConfig& config);
  /// Join estimator over a full-outer-join universe (must outlive this).
  Uae(const data::JoinUniverse& universe, const UaeConfig& config);

  // ---- Training -------------------------------------------------------------
  /// UAE-D / Naru: unsupervised epochs over the data.
  void TrainDataEpochs(int epochs, const TrainCallback& cb = nullptr);
  /// UAE-Q: supervised DPS steps over a labeled workload.
  void TrainQuerySteps(const workload::Workload& workload, int steps,
                       const TrainCallback& cb = nullptr);
  void TrainQuerySteps(const workload::JoinWorkload& workload, int steps,
                       const TrainCallback& cb = nullptr);
  /// UAE hybrid (Alg. 3): each step draws a data batch and a query batch and
  /// minimizes L_data + lambda * L_query.
  void TrainHybridEpochs(const workload::Workload& workload, int epochs,
                         const TrainCallback& cb = nullptr);
  void TrainHybridEpochs(const workload::JoinWorkload& workload, int epochs,
                         const TrainCallback& cb = nullptr);

  // ---- Incremental ingestion (§4.5) ----------------------------------------
  /// Appends new tuples and runs unsupervised epochs on the new data only.
  void IngestDataRows(const data::Table& delta, int epochs);
  /// Adapts to a shifted workload with a few supervised epochs (10-20 small
  /// epochs suffice to avoid catastrophic forgetting, per §4.5).
  void IngestWorkload(const workload::Workload& workload, int epochs);

  // ---- Estimation -----------------------------------------------------------
  // Estimates draw progressive samples from an RNG seeded per query from
  // (config.seed, query fingerprint), so every estimate is a pure function of
  // the model and the query: independent of call order, batch composition,
  // and thread count. Batched variants fan queries across the global pool.
  double EstimateSelectivity(const workload::Query& query) const;
  double EstimateCard(const workload::Query& query) const override;
  /// ServableModel: join estimation is available iff this estimator was
  /// constructed over a JoinUniverse (the serving layer checks this before
  /// routing join sub-plan requests here).
  bool SupportsJoinQueries() const override { return universe_ != nullptr; }
  double EstimateJoinCard(const workload::JoinQuery& query) const override;
  /// Batched parallel estimation; element i corresponds to queries[i] and is
  /// bit-identical to EstimateCard(queries[i]).
  std::vector<double> EstimateCards(
      std::span<const workload::Query> queries) const override;
  std::vector<double> EstimateSelectivities(
      std::span<const workload::Query> queries) const;
  /// Batched join estimation; element i is bit-identical to
  /// EstimateJoinCard(queries[i]) (same per-query RNG purity contract).
  std::vector<double> EstimateJoinCards(
      std::span<const workload::JoinQuery> queries) const override;
  /// Estimate plus the progressive-sampling Monte-Carlo standard error.
  PsEstimate EstimateWithError(const workload::Query& query) const;

  /// Generative sampling of tuples (original-column codes).
  std::vector<std::vector<int32_t>> Sample(int count) const;

  // ---- Snapshotting ----------------------------------------------------------
  /// Deep copy: an independent estimator with bit-identical parameters over
  /// the same table/universe. The clone re-derives its masks from the config
  /// seed and imports the weight values (via nn/serialize's CopyParams), so
  /// its estimates are bit-identical to this model's at clone time while
  /// further training of either side leaves the other untouched. Optimizer
  /// moments are not cloned (a snapshot serves inference; a clone that keeps
  /// training warms its Adam state afresh).
  std::unique_ptr<Uae> Clone() const;
  /// ServableModel: Clone() behind the serving interface.
  std::shared_ptr<ServableModel> CloneServable() const override;
  /// ServableModel: TrainQuerySteps (or TrainHybridEpochs when
  /// spec.hybrid_epochs > 0) on the feedback workload; no-op when empty or
  /// when the spec allots zero steps (returns 0 then).
  size_t FineTune(const workload::Workload& workload,
                  const FineTuneSpec& spec) override;
  /// Imports parameter values from `other` (names and shapes must match —
  /// i.e. same schema and architecture config).
  util::Status CopyParamsFrom(const Uae& other);

  // ---- Introspection / persistence ------------------------------------------
  size_t SizeBytes() const override { return model_->SizeBytes(); }
  size_t num_rows() const override { return num_rows_; }
  uint64_t seed() const override { return config_.seed; }
  /// The construction config (fine-tune controllers read seeds/knobs off it).
  const UaeConfig& config() const { return config_; }
  const MadeModel& model() const { return *model_; }
  const data::VirtualSchema& schema() const { return schema_; }
  /// The estimation table: the construction table for single-table
  /// estimators, the full-outer-join universe table for join estimators.
  const data::Table* table() const { return table_; }
  /// Null for single-table estimators; the join universe otherwise.
  const data::JoinUniverse* universe() const { return universe_; }
  /// Frozen fp32 inference plane over the current parameters (lazily built,
  /// cached until the next parameter mutation). Backs the wavefront batched
  /// estimate paths; safe to call concurrently.
  std::shared_ptr<const FrozenMadeBackend> FrozenBackend() const;
  util::Status Save(const std::string& path) const;
  util::Status Load(const std::string& path);

 private:
  /// Clone() plumbing: copies the trained state of `other` without
  /// re-encoding the table into vcodes (the code store is shared
  /// copy-on-write, so snapshots cost one model's weights, not one table).
  Uae(const Uae& other);

  void Init(const data::Table& table, const UaeConfig& config);
  MadeConfig MakeMadeConfig() const;
  /// Training-only state is built lazily: inference snapshots never pay for
  /// Adam moment buffers.
  nn::Adam& Optimizer();
  /// Detaches vcodes_ from any snapshot sharing it before mutation.
  std::vector<std::vector<int32_t>>& MutableVcodes();
  /// Independent estimation RNG for one query (seed x fingerprint mix).
  util::Rng EstimationRng(uint64_t fingerprint) const;
  /// Drops the cached frozen backend; every parameter mutation calls this.
  void InvalidateFrozen();
  /// One optimizer step for the given loss graph.
  double StepLoss(const nn::Tensor& loss);
  nn::Tensor BuildDataLoss(const std::vector<size_t>& rows);
  nn::Tensor BuildQueryLoss(const std::vector<const QueryTargets*>& targets,
                            const std::vector<double>& sels);
  /// Compiles (and caches nothing — cheap) targets for a workload.
  std::vector<QueryTargets> CompileTargets(const workload::Workload& w) const;
  std::vector<QueryTargets> CompileTargets(const workload::JoinWorkload& w) const;
  void HybridLoop(const std::vector<QueryTargets>& targets,
                  const std::vector<double>& sels, int epochs,
                  const TrainCallback& cb);
  void QueryLoop(const std::vector<QueryTargets>& targets,
                 const std::vector<double>& sels, int steps, const TrainCallback& cb);

  const data::Table* table_ = nullptr;
  const data::JoinUniverse* universe_ = nullptr;
  UaeConfig config_;
  data::VirtualSchema schema_;
  std::unique_ptr<MadeModel> model_;
  std::unique_ptr<nn::Adam> optimizer_;  ///< Lazy; see Optimizer().
  /// Columnar virtual-code store of the training rows, shared between an
  /// estimator and its Clone()s (copy-on-write via MutableVcodes()).
  std::shared_ptr<const std::vector<std::vector<int32_t>>> vcodes_;
  size_t num_rows_ = 0;
  mutable util::Rng rng_;
  /// Cached frozen inference plane for the wavefront estimate paths;
  /// invalidated on every parameter mutation (StepLoss / Load /
  /// CopyParamsFrom).
  mutable std::mutex frozen_mu_;
  mutable std::shared_ptr<const FrozenMadeBackend> frozen_;
};

}  // namespace uae::core
