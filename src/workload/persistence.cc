#include "workload/persistence.h"

#include <charconv>

#include "util/csv.h"
#include "util/string_util.h"

namespace uae::workload {

namespace {
const char* KindName(Constraint::Kind kind) {
  switch (kind) {
    case Constraint::Kind::kNone:
      return "none";
    case Constraint::Kind::kRange:
      return "range";
    case Constraint::Kind::kNotEqual:
      return "neq";
    case Constraint::Kind::kIn:
      return "in";
  }
  return "?";
}

util::Result<int64_t> ParseInt(const std::string& s) {
  int64_t v = 0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) {
    return util::Status::InvalidArgument("bad integer: " + s);
  }
  return v;
}

util::Result<double> ParseDouble(const std::string& s) {
  double v = 0.0;
  auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || p != s.data() + s.size()) {
    return util::Status::InvalidArgument("bad double: " + s);
  }
  return v;
}
}  // namespace

util::Status SaveWorkload(const Workload& workload, int num_cols,
                          const std::string& path) {
  util::CsvDocument doc;
  doc.header = {"query_id", "col", "kind", "lo", "hi", "neq", "in_codes"};
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const LabeledQuery& lq = workload[qi];
    if (lq.query.num_cols() != num_cols) {
      return util::Status::InvalidArgument("query/table column count mismatch");
    }
    for (int c = 0; c < num_cols; ++c) {
      const Constraint& cons = lq.query.constraint(c);
      if (!cons.IsActive()) continue;
      std::vector<std::string> in_strs;
      for (int32_t code : cons.in_codes) in_strs.push_back(std::to_string(code));
      doc.rows.push_back({std::to_string(qi), std::to_string(c),
                          KindName(cons.kind), std::to_string(cons.lo),
                          std::to_string(cons.hi), std::to_string(cons.neq),
                          util::Join(in_strs, "|")});
    }
    doc.rows.push_back({std::to_string(qi), "-1", "card",
                        util::StrFormat("%.17g", lq.card),
                        util::StrFormat("%.17g", lq.selectivity), "", ""});
  }
  return util::WriteCsv(path, doc);
}

util::Result<Workload> LoadWorkload(const std::string& path, int num_cols) {
  auto doc_or = util::ReadCsv(path);
  if (!doc_or.ok()) return doc_or.status();
  const util::CsvDocument& doc = doc_or.value();
  Workload out;
  LabeledQuery current;
  current.query = Query(num_cols);
  int64_t current_id = 0;
  for (const auto& row : doc.rows) {
    if (row.size() != 7) return util::Status::InvalidArgument("bad workload row");
    auto qid_or = ParseInt(row[0]);
    if (!qid_or.ok()) return qid_or.status();
    if (qid_or.value() != current_id) {
      return util::Status::InvalidArgument("workload rows out of order");
    }
    if (row[2] == "card") {
      auto card = ParseDouble(row[3]);
      auto sel = ParseDouble(row[4]);
      if (!card.ok()) return card.status();
      if (!sel.ok()) return sel.status();
      current.card = card.value();
      current.selectivity = sel.value();
      out.push_back(std::move(current));
      current = LabeledQuery{};
      current.query = Query(num_cols);
      ++current_id;
      continue;
    }
    auto col_or = ParseInt(row[1]);
    if (!col_or.ok()) return col_or.status();
    int col = static_cast<int>(col_or.value());
    if (col < 0 || col >= num_cols) {
      return util::Status::InvalidArgument("column index out of range");
    }
    Constraint& cons = current.query.mutable_constraint(col);
    if (row[2] == "range") {
      cons.kind = Constraint::Kind::kRange;
      auto lo = ParseInt(row[3]);
      auto hi = ParseInt(row[4]);
      if (!lo.ok() || !hi.ok()) return util::Status::InvalidArgument("bad range");
      cons.lo = static_cast<int32_t>(lo.value());
      cons.hi = static_cast<int32_t>(hi.value());
    } else if (row[2] == "neq") {
      cons.kind = Constraint::Kind::kNotEqual;
      auto v = ParseInt(row[5]);
      if (!v.ok()) return v.status();
      cons.neq = static_cast<int32_t>(v.value());
    } else if (row[2] == "in") {
      cons.kind = Constraint::Kind::kIn;
      for (const std::string& s : util::Split(row[6], '|')) {
        if (s.empty()) continue;
        auto v = ParseInt(s);
        if (!v.ok()) return v.status();
        cons.in_codes.push_back(static_cast<int32_t>(v.value()));
      }
    } else {
      return util::Status::InvalidArgument("unknown constraint kind: " + row[2]);
    }
  }
  return out;
}

}  // namespace uae::workload
