// A small predicate-expression parser so applications (and tests) can write
// queries as text instead of assembling Predicate structs:
//
//   "model_year >= 1990 AND county = 7 AND color != 3"
//   "age BETWEEN 20 AND 30 AND occupation IN (1, 5, 9)"
//
// Grammar (case-insensitive keywords):
//   expr     := clause ("AND" clause)*
//   clause   := ident op literal
//             | ident "BETWEEN" literal "AND" literal
//             | ident "IN" "(" literal ("," literal)* ")"
//   op       := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
//   literal  := integer | quoted string
// Literals are resolved against the column's dictionary; range operators on
// values absent from the dictionary snap to the nearest code boundary.
#pragma once

#include <string>

#include "data/table.h"
#include "util/status.h"
#include "workload/query.h"

namespace uae::workload {

/// Parses `text` into a query over `table`. Returns InvalidArgument on syntax
/// errors, unknown columns, or (for equality/IN) literals absent from the
/// dictionary.
util::Result<Query> ParseQuery(const data::Table& table, const std::string& text);

/// The inverse of ParseQuery: renders `query` as predicate-expression text
/// that parses back to a *bitwise-identical* query (same constraint kinds,
/// bounds and IN-lists) — the round-trip the property tests pin. An
/// unconstrained query renders as "" (which ParseQuery accepts as
/// unconstrained). Returns InvalidArgument when a constraint is not
/// expressible in the grammar: a column name that is not an identifier, a
/// string literal containing both quote characters, a double literal that
/// needs exponent notation, or constraint codes outside the dictionary.
util::Result<std::string> FormatQuery(const data::Table& table, const Query& query);

}  // namespace uae::workload
