// A small predicate-expression parser so applications (and tests) can write
// queries as text instead of assembling Predicate structs:
//
//   "model_year >= 1990 AND county = 7 AND color != 3"
//   "age BETWEEN 20 AND 30 AND occupation IN (1, 5, 9)"
//
// Grammar (case-insensitive keywords):
//   expr     := clause ("AND" clause)*
//   clause   := ident op literal
//             | ident "BETWEEN" literal "AND" literal
//             | ident "IN" "(" literal ("," literal)* ")"
//   op       := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
//   literal  := integer | quoted string
// Literals are resolved against the column's dictionary; range operators on
// values absent from the dictionary snap to the nearest code boundary.
#pragma once

#include <string>

#include "data/table.h"
#include "util/status.h"
#include "workload/query.h"

namespace uae::workload {

/// Parses `text` into a query over `table`. Returns InvalidArgument on syntax
/// errors, unknown columns, or (for equality/IN) literals absent from the
/// dictionary.
util::Result<Query> ParseQuery(const data::Table& table, const std::string& text);

}  // namespace uae::workload
