#include "workload/executor.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "util/threadpool.h"

namespace uae::workload {

namespace {

/// Constrained columns ordered by increasing allowed fraction, so the scan
/// fails fast on the most selective predicate.
std::vector<int> OrderedConstrainedCols(const data::Table& table, const Query& query) {
  std::vector<std::pair<double, int>> sel_cols;
  for (int c = 0; c < query.num_cols(); ++c) {
    const Constraint& cons = query.constraint(c);
    if (!cons.IsActive()) continue;
    double frac = static_cast<double>(cons.AllowedCount(table.column(c).domain())) /
                  std::max<int32_t>(1, table.column(c).domain());
    sel_cols.emplace_back(frac, c);
  }
  std::sort(sel_cols.begin(), sel_cols.end());
  std::vector<int> out;
  out.reserve(sel_cols.size());
  for (const auto& [frac, c] : sel_cols) out.push_back(c);
  return out;
}

/// Matching rows of [lo, hi) — the scan kernel shared by the sequential and
/// the chunk-parallel entry points, so their results are identical by
/// construction (integer sums commute).
int64_t CountRange(const data::Table& table, const Query& query,
                   const std::vector<int>& cols, size_t lo, size_t hi) {
  int64_t local = 0;
  for (size_t r = lo; r < hi; ++r) {
    bool ok = true;
    for (int c : cols) {
      if (!query.constraint(c).Matches(table.column(c).code_at(r))) {
        ok = false;
        break;
      }
    }
    local += ok ? 1 : 0;
  }
  return local;
}

}  // namespace

int64_t ExecuteCount(const data::Table& table, const Query& query) {
  UAE_CHECK_EQ(query.num_cols(), table.num_cols());
  std::vector<int> cols = OrderedConstrainedCols(table, query);
  if (cols.empty()) return static_cast<int64_t>(table.num_rows());
  std::atomic<int64_t> total{0};
  util::ParallelFor(0, table.num_rows(), [&](size_t lo, size_t hi) {
    total.fetch_add(CountRange(table, query, cols, lo, hi),
                    std::memory_order_relaxed);
  });
  return total.load();
}

int64_t ExecuteCountSequential(const data::Table& table, const Query& query) {
  UAE_CHECK_EQ(query.num_cols(), table.num_cols());
  std::vector<int> cols = OrderedConstrainedCols(table, query);
  if (cols.empty()) return static_cast<int64_t>(table.num_rows());
  return CountRange(table, query, cols, 0, table.num_rows());
}

std::vector<int64_t> ExecuteCounts(const data::Table& table,
                                   std::span<const Query> queries) {
  std::vector<int64_t> counts(queries.size());
  // One parallel grain per query: inter-query parallelism beats splitting the
  // row range when many queries are labeled at once, and each worker's scan
  // stays a cache-friendly sequential pass.
  util::ParallelFor(
      0, queries.size(),
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          counts[i] = ExecuteCountSequential(table, queries[i]);
        }
      },
      /*min_parallel_size=*/2);
  return counts;
}

double ExecuteWeightedCount(const data::Table& table, const Query& query,
                            const std::vector<int>& inverse_weight_cols) {
  UAE_CHECK_EQ(query.num_cols(), table.num_cols());
  std::vector<int> cols = OrderedConstrainedCols(table, query);
  std::mutex mu;
  double total = 0.0;
  util::ParallelFor(0, table.num_rows(), [&](size_t lo, size_t hi) {
    double local = 0.0;
    for (size_t r = lo; r < hi; ++r) {
      bool ok = true;
      for (int c : cols) {
        if (!query.constraint(c).Matches(table.column(c).code_at(r))) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      double w = 1.0;
      for (int wc : inverse_weight_cols) {
        w /= static_cast<double>(table.column(wc).code_at(r) + 1);
      }
      local += w;
    }
    std::lock_guard<std::mutex> lock(mu);
    total += local;
  });
  return total;
}

std::vector<uint8_t> MatchBitmap(const data::Table& table, const Query& query,
                                 size_t limit) {
  limit = std::min(limit, table.num_rows());
  std::vector<uint8_t> bits(limit, 0);
  for (size_t r = 0; r < limit; ++r) {
    bits[r] = query.MatchesRow(table, r) ? 1 : 0;
  }
  return bits;
}

}  // namespace uae::workload
