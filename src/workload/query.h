// Query model (§3): a conjunction of per-attribute constraints. Because
// dictionaries are order-preserving, every value-space predicate compiles to a
// constraint over dictionary codes:
//   =  v        -> range [c, c]
//   <, <=, >, >= v -> one-sided code range
//   != v        -> kNotEqual
//   IN {v...}   -> kIn (sorted code set)
// Multiple predicates on one attribute intersect.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "data/table.h"

namespace uae::workload {

enum class Op { kEq, kNeq, kLt, kLe, kGt, kGe, kIn };

const char* OpName(Op op);

/// One predicate in code space. For kIn, `in_codes` holds the sorted codes.
struct Predicate {
  int col = 0;
  Op op = Op::kEq;
  int32_t code = 0;
  std::vector<int32_t> in_codes;
};

/// The compiled per-column constraint.
struct Constraint {
  enum class Kind { kNone, kRange, kNotEqual, kIn };
  Kind kind = Kind::kNone;
  int32_t lo = 0;          ///< kRange: inclusive lower code.
  int32_t hi = 0;          ///< kRange: inclusive upper code.
  int32_t neq = -1;        ///< kNotEqual.
  std::vector<int32_t> in_codes;  ///< kIn, sorted ascending.

  bool IsActive() const { return kind != Kind::kNone; }
  bool Matches(int32_t code) const;
  /// True when the allowed set is a contiguous code interval (incl. kNone).
  bool IsContiguous() const { return kind == Kind::kNone || kind == Kind::kRange; }
  /// Number of allowed codes out of `domain`.
  int64_t AllowedCount(int32_t domain) const;
  /// Dense 0/1 allowed mask of length `domain`.
  std::vector<uint8_t> AllowedMask(int32_t domain) const;
  /// Whether no code can match (empty range / empty IN).
  bool IsEmpty(int32_t domain) const { return AllowedCount(domain) == 0; }
};

/// A conjunctive query over one table: one constraint slot per column.
class Query {
 public:
  Query() = default;
  explicit Query(int num_cols) : cols_(static_cast<size_t>(num_cols)) {}

  int num_cols() const { return static_cast<int>(cols_.size()); }
  const Constraint& constraint(int col) const { return cols_[static_cast<size_t>(col)]; }
  Constraint& mutable_constraint(int col) { return cols_[static_cast<size_t>(col)]; }
  int NumConstrained() const;

  /// Adds a predicate, intersecting with any existing constraint on that
  /// column. `domain` is the column's dictionary size.
  void AddPredicate(const Predicate& pred, int32_t domain);

  bool MatchesRow(const data::Table& table, size_t row) const;

  /// Stable fingerprint (for train/test dedup as required by §5.1.2).
  uint64_t Fingerprint() const;

  std::string ToString(const data::Table& table) const;

 private:
  std::vector<Constraint> cols_;
};

/// Intersection of two per-column constraints over a common domain.
Constraint IntersectConstraints(const Constraint& a, const Constraint& b,
                                int32_t domain);

/// Conjunction of two queries over the same table (per-column intersection).
Query IntersectQueries(const Query& a, const Query& b, const data::Table& table);

/// A query labeled with its true cardinality.
struct LabeledQuery {
  Query query;
  double card = 0.0;  ///< True cardinality (double: join cards are weighted).
  double selectivity = 0.0;
};

using Workload = std::vector<LabeledQuery>;

/// Builds a labeled workload from parallel (query, true cardinality) arrays —
/// the feedback-buffer -> Workload conversion of the online adaptation loop.
/// Selectivities are derived from `num_rows` (the table's row count).
Workload MakeLabeledWorkload(std::span<const Query> queries,
                             std::span<const double> cards, size_t num_rows);

/// Deterministic seeded split into a train slice and a held-out slice.
/// `holdout_fraction` of the (shuffled) queries land in `holdout`, the rest in
/// `train`; when the fraction is positive and there are >= 2 queries, both
/// sides are guaranteed non-empty.
void SplitWorkload(const Workload& all, double holdout_fraction, uint64_t seed,
                   Workload* train, Workload* holdout);

/// Cardinality of a *disjunction* of conjunctive queries via the
/// inclusion-exclusion principle (§3: "the estimator can also support
/// disjunctions"): |q1 ∨ ... ∨ qk| = Σ_∅≠S (-1)^{|S|+1} est(∧_{i∈S} q_i).
/// `estimate` is any conjunctive-cardinality oracle (UAE, a baseline, or the
/// exact executor). Exponential in k; intended for small k (checked k <= 12).
double EstimateDisjunctionCard(const std::vector<Query>& disjuncts,
                               const data::Table& table,
                               const std::function<double(const Query&)>& estimate);

}  // namespace uae::workload
