#include "workload/join_workload.h"

#include <algorithm>

#include "util/mathutil.h"
#include "workload/executor.h"

namespace uae::workload {

std::vector<int> DownscaleColumns(const data::JoinUniverse& uni, uint32_t table_mask) {
  std::vector<int> cols;
  for (int t = 0; t < uni.NumTables(); ++t) {
    if (table_mask & (1u << t)) continue;
    int fc = uni.tables[static_cast<size_t>(t)].fanout_col;
    if (fc >= 0) cols.push_back(fc);
  }
  return cols;
}

double JoinTrueCard(const data::JoinUniverse& uni, const JoinQuery& q) {
  return ExecuteWeightedCount(uni.universe, q.pred, DownscaleColumns(uni, q.table_mask));
}

uint64_t JoinFingerprint(const JoinQuery& q) {
  // Must stay bit-identical to the historical core/uae.cc mix: the per-query
  // estimation RNG is seeded from this value, so changing it would change
  // every join estimate.
  return util::SplitMix64(q.pred.Fingerprint() ^
                          (static_cast<uint64_t>(q.table_mask) << 32));
}

JoinQuery RestrictToSubset(const data::JoinUniverse& uni, const JoinQuery& q,
                           uint32_t submask) {
  UAE_CHECK_EQ(submask & ~q.table_mask, 0u) << "submask not a subset";
  JoinQuery out;
  out.table_mask = submask;
  out.pred = Query(uni.universe.num_cols());
  for (int t = 0; t < uni.NumTables(); ++t) {
    if (!(submask & (1u << t))) continue;
    const data::JoinTableInfo& info = uni.tables[static_cast<size_t>(t)];
    for (int c : info.content_cols) {
      out.pred.mutable_constraint(c) = q.pred.constraint(c);
    }
    if (info.indicator_col >= 0) {
      out.pred.mutable_constraint(info.indicator_col) =
          q.pred.constraint(info.indicator_col);
    }
  }
  return out;
}

JoinQueryGenerator::JoinQueryGenerator(const data::JoinUniverse& uni,
                                       JoinGeneratorConfig config, uint64_t seed)
    : uni_(uni), config_(config), rng_(seed) {}

JoinQuery JoinQueryGenerator::Generate() {
  const data::Table& u = uni_.universe;
  JoinQuery jq;
  jq.pred = Query(u.num_cols());

  // Table subset: focused => the full 3-table template; random => fact table
  // plus a random non-empty subset of dimension tables.
  if (config_.focused) {
    jq.table_mask = (1u << uni_.NumTables()) - 1;
  } else {
    uint32_t dims = 0;
    while (dims == 0) {
      dims = static_cast<uint32_t>(
          rng_.UniformInt(1, (1 << (uni_.NumTables() - 1)) - 1));
    }
    jq.table_mask = 1u | (dims << 1);
  }

  // Indicator constraints: joined dimension tables must be matched.
  for (int t = 1; t < uni_.NumTables(); ++t) {
    if (!(jq.table_mask & (1u << t))) continue;
    int ind = uni_.tables[static_cast<size_t>(t)].indicator_col;
    jq.pred.AddPredicate(Predicate{ind, Op::kEq, 1, {}}, u.column(ind).domain());
  }

  // Bounded attribute (production_year = universe column 0) for focused mode.
  int32_t year_lo = 0, year_hi = u.column(0).domain() - 1;
  if (config_.focused) {
    const data::Column& yc = u.column(0);
    int32_t domain = yc.domain();
    auto clamp = [domain](int64_t v) {
      return static_cast<int32_t>(std::clamp<int64_t>(v, 0, domain - 1));
    };
    int32_t lo_c = clamp(static_cast<int64_t>(config_.center_min * domain));
    int32_t hi_c = clamp(static_cast<int64_t>(config_.center_max * domain) - 1);
    if (hi_c < lo_c) hi_c = lo_c;
    int32_t center = static_cast<int32_t>(rng_.UniformInt(lo_c, hi_c));
    int32_t hw = std::max<int32_t>(
        1, static_cast<int32_t>(config_.target_volume * domain / 2.0));
    year_lo = clamp(center - hw);
    year_hi = clamp(center + hw);
    jq.pred.AddPredicate(Predicate{0, Op::kGe, year_lo, {}}, domain);
    jq.pred.AddPredicate(Predicate{0, Op::kLe, year_hi, {}}, domain);
  }

  // Literal source: a universe row fully matched for the selected tables and
  // inside the bounded year range, so the content filters describe tuples the
  // query actually targets.
  size_t row = 0;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    row = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(u.num_rows()) - 1));
    bool ok = u.column(0).code_at(row) >= year_lo && u.column(0).code_at(row) <= year_hi;
    for (int t = 1; ok && t < uni_.NumTables(); ++t) {
      if (!(jq.table_mask & (1u << t))) continue;
      int ind = uni_.tables[static_cast<size_t>(t)].indicator_col;
      if (u.column(ind).code_at(row) != 1) ok = false;
    }
    if (ok) break;
  }

  // Content filters on the columns of selected tables (skip col 0 if bounded).
  std::vector<int> candidates;
  for (int t = 0; t < uni_.NumTables(); ++t) {
    if (!(jq.table_mask & (1u << t))) continue;
    for (int c : uni_.tables[static_cast<size_t>(t)].content_cols) {
      if (config_.focused && c == 0) continue;
      candidates.push_back(c);
    }
  }
  rng_.Shuffle(&candidates);
  int nf = static_cast<int>(rng_.UniformInt(config_.min_filters, config_.max_filters));
  nf = std::min<int>(nf, static_cast<int>(candidates.size()));
  for (int i = 0; i < nf; ++i) {
    int col = candidates[static_cast<size_t>(i)];
    const data::Column& dc = u.column(col);
    int32_t literal = dc.code_at(row);
    double uu = rng_.Uniform();
    Op op = uu < 0.4 ? Op::kEq : (uu < 0.7 ? Op::kLe : Op::kGe);
    if (dc.domain() <= 3) op = Op::kEq;
    jq.pred.AddPredicate(Predicate{col, op, literal, {}}, dc.domain());
  }
  return jq;
}

JoinWorkload JoinQueryGenerator::GenerateLabeled(
    size_t count, std::unordered_set<uint64_t>* exclude) {
  JoinWorkload out;
  out.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = count * 50 + 1000;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    JoinQuery q = Generate();
    uint64_t fp = q.pred.Fingerprint() * 31 + q.table_mask;
    if (exclude != nullptr && exclude->count(fp)) continue;
    if (exclude != nullptr) exclude->insert(fp);
    LabeledJoinQuery lq;
    lq.card = JoinTrueCard(uni_, q);
    lq.query = std::move(q);
    out.push_back(std::move(lq));
  }
  UAE_CHECK_EQ(out.size(), count) << "join generator exhausted attempts";
  return out;
}

}  // namespace uae::workload
